// Schema checker for the observability artifacts:
//
//   check_trace <trace.json> [metrics.json]
//
// Validates that <trace.json> is well-formed JSON in the Chrome
// trace_event format ("traceEvents" array of event objects; every
// event carries name/ph/pid/tid, "X" events carry numeric ts/dur >= 0,
// args when present are objects) and prints a one-line summary. With a
// second argument, also validates the util::Metrics snapshot schema
// (counters/gauges/histograms objects; each histogram has count, sum,
// min, max and a buckets array of {le, count} pairs) and checks that
// the instruments the campaign benches promise — the Newton-iteration
// and steal-count histograms — are present.
//
// Deliberately self-contained (util::JsonObject is flat-only by
// design), with a minimal recursive-descent JSON parser. Exit 0 on a
// valid file, 1 on any violation — the ctest job `trace_validate`
// drives it over a fresh `table1_fault_coverage --trace` capture.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

// --- minimal JSON value + recursive-descent parser --------------------

struct JsonValue;
using JsonValuePtr = std::unique_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValuePtr> arr;
  std::vector<std::pair<std::string, JsonValuePtr>> obj;  // insertion order

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValuePtr parse() {
    JsonValuePtr v = value();
    if (!v) return nullptr;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing garbage after top-level value");
    return v;
  }

  const std::string& error() const { return error_; }

 private:
  JsonValuePtr fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " (offset " + std::to_string(pos_) + ")";
    }
    return nullptr;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValuePtr value() {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') {
      auto v = std::make_unique<JsonValue>();
      v->kind = JsonValue::Kind::kBool;
      v->b = (c == 't');
      if (!literal(c == 't' ? "true" : "false")) return fail("bad literal");
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      return std::make_unique<JsonValue>();
    }
    return number();
  }

  JsonValuePtr number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    bool dot = false;
    bool exp = false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        digits = true;
      } else if (c == '.' && !dot && !exp) {
        dot = true;
      } else if ((c == 'e' || c == 'E') && digits && !exp) {
        exp = true;
        if (pos_ + 1 < s_.size() && (s_[pos_ + 1] == '-' || s_[pos_ + 1] == '+')) ++pos_;
      } else {
        break;
      }
      ++pos_;
    }
    if (!digits) return fail("malformed number");
    auto v = std::make_unique<JsonValue>();
    v->kind = JsonValue::Kind::kNumber;
    v->num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  JsonValuePtr string_value() {
    std::string out;
    if (!parse_string(out)) return nullptr;
    auto v = std::make_unique<JsonValue>();
    v->kind = JsonValue::Kind::kString;
    v->str = std::move(out);
    return v;
  }

  bool parse_string(std::string& out) {
    if (s_[pos_] != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) break;
        const char esc = s_[pos_ + 1];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 5 >= s_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            out += '?';  // code point identity is irrelevant to schema checks
            pos_ += 4;
            break;
          }
          default:
            fail("bad escape");
            return false;
        }
        pos_ += 2;
        continue;
      }
      out += c;
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  JsonValuePtr array() {
    auto v = std::make_unique<JsonValue>();
    v->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      JsonValuePtr elem = value();
      if (!elem) return nullptr;
      v->arr.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return v;
      }
      return fail("expected ',' or ']'");
    }
  }

  JsonValuePtr object() {
    auto v = std::make_unique<JsonValue>();
    v->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return nullptr;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      JsonValuePtr val = value();
      if (!val) return nullptr;
      v->obj.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return v;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

int g_violations = 0;

void violation(const std::string& what) {
  std::fprintf(stderr, "SCHEMA VIOLATION: %s\n", what.c_str());
  ++g_violations;
}

bool is_num(const JsonValue* v) { return v != nullptr && v->kind == JsonValue::Kind::kNumber; }
bool is_str(const JsonValue* v) { return v != nullptr && v->kind == JsonValue::Kind::kString; }

// --- trace_event schema -----------------------------------------------

void check_trace_events(const JsonValue& root) {
  if (root.kind != JsonValue::Kind::kObject) {
    violation("trace root is not an object");
    return;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    violation("missing \"traceEvents\" array");
    return;
  }

  std::size_t complete = 0;
  std::size_t metadata = 0;
  std::map<double, std::size_t> events_per_tid;
  for (std::size_t i = 0; i < events->arr.size(); ++i) {
    const JsonValue& e = *events->arr[i];
    const std::string at = "event " + std::to_string(i);
    if (e.kind != JsonValue::Kind::kObject) {
      violation(at + " is not an object");
      continue;
    }
    const JsonValue* ph = e.find("ph");
    if (!is_str(ph)) {
      violation(at + ": missing string \"ph\"");
      continue;
    }
    if (!is_str(e.find("name"))) violation(at + ": missing string \"name\"");
    if (!is_num(e.find("pid"))) violation(at + ": missing numeric \"pid\"");
    if (!is_num(e.find("tid"))) violation(at + ": missing numeric \"tid\"");
    const JsonValue* args = e.find("args");
    if (args != nullptr && args->kind != JsonValue::Kind::kObject) {
      violation(at + ": \"args\" is not an object");
    }
    if (ph->str == "X") {
      ++complete;
      const JsonValue* ts = e.find("ts");
      const JsonValue* dur = e.find("dur");
      if (!is_num(ts)) violation(at + ": X event missing numeric \"ts\"");
      if (!is_num(dur)) {
        violation(at + ": X event missing numeric \"dur\"");
      } else if (dur->num < 0.0) {
        violation(at + ": negative \"dur\"");
      }
      if (is_num(ts) && is_num(e.find("tid"))) ++events_per_tid[e.find("tid")->num];
    } else if (ph->str == "M") {
      ++metadata;
    }
    // Other phases (B/E/i/C/...) are legal trace_event; the exporter
    // only emits X and M, but don't fail files that carry more.
  }
  if (complete == 0) violation("no \"X\" (complete) events in trace");
  std::printf("trace: %zu events (%zu spans, %zu metadata) across %zu thread(s)\n",
              events->arr.size(), complete, metadata, events_per_tid.size());
}

// --- metrics snapshot schema ------------------------------------------

void check_histogram(const std::string& name, const JsonValue& h) {
  if (h.kind != JsonValue::Kind::kObject) {
    violation("histogram \"" + name + "\" is not an object");
    return;
  }
  for (const char* field : {"count", "sum", "min", "max"}) {
    if (!is_num(h.find(field))) {
      violation("histogram \"" + name + "\" missing numeric \"" + field + "\"");
    }
  }
  const JsonValue* buckets = h.find("buckets");
  if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray) {
    violation("histogram \"" + name + "\" missing \"buckets\" array");
    return;
  }
  double prev_le = -1.0;
  double bucket_total = 0.0;
  for (const auto& b : buckets->arr) {
    const JsonValue* le = b->find("le");
    const JsonValue* count = b->find("count");
    if (b->kind != JsonValue::Kind::kObject || !is_num(le) || !is_num(count)) {
      violation("histogram \"" + name + "\": bucket is not {le, count}");
      return;
    }
    if (le->num <= prev_le) violation("histogram \"" + name + "\": bucket edges not increasing");
    prev_le = le->num;
    bucket_total += count->num;
  }
  const JsonValue* count = h.find("count");
  if (is_num(count) && bucket_total != count->num) {
    violation("histogram \"" + name + "\": bucket counts do not sum to count");
  }
}

void check_metrics(const JsonValue& root) {
  if (root.kind != JsonValue::Kind::kObject) {
    violation("metrics root is not an object");
    return;
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* s = root.find(section);
    if (s == nullptr || s->kind != JsonValue::Kind::kObject) {
      violation(std::string("missing \"") + section + "\" object");
      continue;
    }
    for (const auto& [name, v] : s->obj) {
      if (std::strcmp(section, "histograms") == 0) {
        check_histogram(name, *v);
      } else if (!is_num(v.get())) {
        violation(std::string(section) + " entry \"" + name + "\" is not a number");
      }
    }
  }
  // The instruments the campaign benches advertise (docs/OBSERVABILITY.md).
  const JsonValue* hists = root.find("histograms");
  if (hists != nullptr && hists->kind == JsonValue::Kind::kObject) {
    for (const char* required : {"solver.dc.newton_per_solve", "campaign.steals_per_worker"}) {
      if (hists->find(required) == nullptr) {
        violation(std::string("expected histogram \"") + required + "\" not in snapshot");
      }
    }
    std::printf("metrics: %zu histograms, schema ok\n", hists->obj.size());
  }
}

int check_file(const char* path, bool metrics) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "error: cannot read %s\n", path);
    return 1;
  }
  Parser parser(text);
  const JsonValuePtr root = parser.parse();
  if (!root) {
    std::fprintf(stderr, "error: %s: invalid JSON: %s\n", path, parser.error().c_str());
    return 1;
  }
  if (metrics) {
    check_metrics(*root);
  } else {
    check_trace_events(*root);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: check_trace <trace.json> [metrics.json]\n");
    return 2;
  }
  int rc = check_file(argv[1], /*metrics=*/false);
  if (argc == 3 && rc == 0) rc = check_file(argv[2], /*metrics=*/true);
  if (rc != 0) return rc;
  if (g_violations > 0) {
    std::fprintf(stderr, "%d schema violation(s)\n", g_violations);
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
