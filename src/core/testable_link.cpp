#include "core/testable_link.hpp"

#include "dft/bist_test.hpp"
#include "dft/dc_test.hpp"
#include "dft/scan_test.hpp"

namespace lsl::core {

TestableLink::TestableLink(const TestableLinkConfig& config)
    : config_(config), frontend_(config.analog) {}

SelfTestResult TestableLink::self_test() const {
  SelfTestResult r;

  // DC test runs with the coarse loop closed (mission operating point).
  cells::LinkFrontendSpec closed = config_.analog;
  closed.close_coarse_loop = true;
  const cells::LinkFrontend fe_closed(closed);
  const dft::DcTestReference dc_ref = dft::dc_test_reference(fe_closed);
  if (dc_ref.valid) {
    const auto dc = dft::run_dc_test(fe_closed, dc_ref);
    r.dc_pass = !dc.detected;
  }

  const dft::ScanTestReference scan_ref = dft::scan_test_reference(frontend_);
  const auto scan = dft::run_scan_test(frontend_, scan_ref);
  r.scan_pass = !scan.detected;

  const dft::BistTestReference bist_ref = dft::bist_test_reference(frontend_, config_.behavioral);
  if (bist_ref.valid) {
    const auto bist = dft::run_bist_test(frontend_, bist_ref);
    r.bist_pass = !bist.detected;
  }
  return r;
}

dft::CampaignReport TestableLink::run_fault_campaign(const dft::CampaignOptions& opts) const {
  return dft::run_campaign(frontend_, opts);
}

digital::StuckCampaignResult TestableLink::run_digital_campaign(std::size_t patterns,
                                                                std::uint64_t seed) const {
  return dft::run_digital_campaign(patterns, seed);
}

std::vector<dft::OverheadRow> TestableLink::overhead() const { return dft::table2_rows(); }

behav::SyncResult TestableLink::lock_transient(double vc0, std::size_t phase0, std::size_t max_ui,
                                               std::uint64_t seed) const {
  lsl::link::Link link(config_.behavioral);
  behav::Synchronizer sync(config_.behavioral.sync, link.eye_center(), vc0, phase0);
  util::Pcg32 rng(seed);
  return sync.run(max_ui, rng, /*record_trace=*/true);
}

behav::EyeResult TestableLink::eye(double ffe_kick, std::size_t n_bits) const {
  behav::ChannelParams p = config_.behavioral.channel;
  if (ffe_kick >= 0.0) p.ffe_kick = ffe_kick;
  return behav::analyze_eye(p, n_bits);
}

lsl::link::TrafficResult TestableLink::run_traffic(std::size_t n_bits, std::uint64_t seed) const {
  lsl::link::Link link(config_.behavioral);
  return link.run_traffic(n_bits, util::PrbsOrder::kPrbs15, seed);
}

lsl::link::BistVerdict TestableLink::run_bist(std::uint64_t seed) const {
  lsl::link::LinkParams p = config_.behavioral;
  p.phase0 = 5;  // the BIST scan-preloads a far-off coarse phase
  lsl::link::Link link(p);
  return link.run_bist(seed);
}

}  // namespace lsl::core
