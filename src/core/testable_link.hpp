// Public facade of the library: one object owning the full testable
// link — the SPICE-level analog frontend with its DFT observers, the
// gate-level digital control with its two scan chains, and the
// behavioral at-speed engine — plus every test the paper defines.
//
// Typical use:
//
//   lsl::core::TestableLink link;
//   auto health = link.self_test();            // DC + scan + BIST, golden
//   auto report = link.run_fault_campaign();   // Table I / Section IV
//   auto trace  = link.lock_transient(0.95, 3);// Fig 2 waveform
//
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "behav/channel.hpp"
#include "behav/synchronizer.hpp"
#include "cells/link_frontend.hpp"
#include "dft/campaign.hpp"
#include "dft/digital_top.hpp"
#include "dft/overhead.hpp"
#include "link/link.hpp"

namespace lsl::core {

/// Golden self-test outcome: every test procedure run on the healthy
/// link, as a production part would see at time zero.
struct SelfTestResult {
  bool dc_pass = false;
  bool scan_pass = false;
  bool bist_pass = false;
  bool all_pass() const { return dc_pass && scan_pass && bist_pass; }
};

/// Configuration of the whole testable link.
struct TestableLinkConfig {
  cells::LinkFrontendSpec analog;
  lsl::link::LinkParams behavioral;
  std::size_t dll_phases = 10;
};

class TestableLink {
 public:
  explicit TestableLink(const TestableLinkConfig& config = {});

  /// Runs the three test procedures on the healthy link.
  SelfTestResult self_test() const;

  /// Full structural-fault campaign (Table I, Section IV).
  dft::CampaignReport run_fault_campaign(const dft::CampaignOptions& opts = {}) const;

  /// Stuck-at campaign over the digital control logic (the paper's
  /// "100% coverage" claim for the scan-tested digital blocks).
  digital::StuckCampaignResult run_digital_campaign(std::size_t patterns = 128,
                                                    std::uint64_t seed = 1) const;

  /// Table II overhead rows, counted from the DFT-inserted construction.
  std::vector<dft::OverheadRow> overhead() const;

  /// Fig 2: synchronizer acquisition from (vc0, phase0), with the trace.
  behav::SyncResult lock_transient(double vc0, std::size_t phase0,
                                   std::size_t max_ui = 8000, std::uint64_t seed = 1) const;

  /// Eye analysis of the behavioral channel (FFE on by default).
  behav::EyeResult eye(double ffe_kick = -1.0, std::size_t n_bits = 2000) const;

  /// Normal traffic through the link.
  lsl::link::TrafficResult run_traffic(std::size_t n_bits, std::uint64_t seed = 1) const;

  /// At-speed BIST on the healthy link.
  lsl::link::BistVerdict run_bist(std::uint64_t seed = 1) const;

  const cells::LinkFrontend& frontend() const { return frontend_; }
  const TestableLinkConfig& config() const { return config_; }

 private:
  TestableLinkConfig config_;
  cells::LinkFrontend frontend_;
};

}  // namespace lsl::core
