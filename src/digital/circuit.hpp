// Gate-level synchronous circuit model.
//
// A Circuit is a set of nets driven by combinational gates, transparent
// latches, and edge-triggered flip-flops in a single clock domain. The
// paper's digital control blocks (control FSM, UP/DN ring counter,
// switch matrix, lock detector) are built on these primitives, then scan
// chains are stitched through the flip-flops by the DFT layer.
//
// Evaluation is sweep-to-fixpoint over the combinational elements
// (latches included while transparent); `step()` then commits flip-flop
// state. Nets that fail to settle are driven to X, so combinational
// feedback degrades safely instead of hanging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "digital/logic.hpp"

namespace lsl::digital {

using NetId = std::size_t;

enum class GateType {
  kBuf,
  kInv,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux2,   // inputs: {sel, d0, d1}
  kConst0,
  kConst1,
};

struct Gate {
  GateType type = GateType::kBuf;
  std::vector<NetId> inputs;
  NetId output = 0;
};

/// Rising-edge D flip-flop with asynchronous active-high reset (to 0)
/// and an optional built-in scan path: when `scan_en` (a net) is 1, the
/// flop captures `scan_in` instead of `d`, exactly like a mux-D scan
/// cell.
struct FlipFlop {
  NetId d = 0;
  NetId q = 0;
  std::optional<NetId> scan_en;
  std::optional<NetId> scan_in;
  std::optional<NetId> reset;
  /// Clock domain (0..31). step() only captures flops whose domain bit
  /// is in the mask — the paper's chain A and chain B live in different
  /// clock domains, so shifting one must not clock the other.
  unsigned domain = 0;
};

/// Level-sensitive latch: transparent while `en` is 1.
struct Latch {
  NetId d = 0;
  NetId q = 0;
  NetId en = 0;
};

class Circuit {
 public:
  /// Creates a named net. Names must be unique.
  NetId net(const std::string& name);
  /// Get-or-create by name.
  NetId net_or_new(const std::string& name);
  std::optional<NetId> find_net(const std::string& name) const;
  const std::string& net_name(NetId id) const;
  std::size_t net_count() const { return net_names_.size(); }

  /// Marks a net as a primary input (settable via set_input).
  void make_input(NetId n);
  bool is_input(NetId n) const;

  void add_gate(GateType type, std::vector<NetId> inputs, NetId output);
  std::size_t add_flipflop(FlipFlop ff);
  std::size_t add_latch(Latch l);

  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<FlipFlop>& flipflops() const { return flipflops_; }
  const std::vector<Latch>& latches() const { return latches_; }
  /// Mutable flip-flop access for scan stitching (DFT insertion edits
  /// the scan hookup of existing flops).
  FlipFlop& flipflop(std::size_t i) { return flipflops_.at(i); }

  // ---- simulation state ----

  /// Resets every net to X and flip-flop/latch state to X (power-on).
  void power_on();
  /// Applies asynchronous reset: flops with a reset net asserted go to 0.
  /// (Evaluates combinational logic first so reset nets are known.)
  void apply_reset();

  void set_input(NetId n, Logic v);
  void set_input(NetId n, bool v) { set_input(n, from_bool(v)); }
  Logic value(NetId n) const;

  /// Settles combinational logic (and transparent latches) to fixpoint.
  /// Called automatically by step(); exposed for "peek before clocking".
  void settle();

  /// One clock cycle: settle, capture flip-flops on the rising edge,
  /// settle again with the new state. Only flops whose domain bit is set
  /// in `domain_mask` capture (default: every domain).
  void step(std::uint32_t domain_mask = 0xffffffffu);

  /// Direct flip-flop state access (used by scan preload in tests and by
  /// the DFT layer to model preloaded chains).
  Logic ff_state(std::size_t ff_index) const;
  void set_ff_state(std::size_t ff_index, Logic v);
  Logic latch_state(std::size_t latch_index) const;

  // ---- fault support ----

  /// Forces a net to a stuck value during every evaluation (single
  /// stuck-at model). Clears with clear_faults().
  void set_stuck(NetId n, Logic v);
  void clear_faults();
  bool has_fault() const { return stuck_net_.has_value(); }

 private:
  Logic read(NetId n) const { return values_[n]; }
  /// Writes a net value respecting an active stuck fault.
  void write(NetId n, Logic v);
  Logic eval_gate(const Gate& g) const;

  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::vector<bool> input_flag_;
  std::vector<Gate> gates_;
  std::vector<FlipFlop> flipflops_;
  std::vector<Latch> latches_;

  std::vector<Logic> values_;
  std::vector<Logic> ff_q_;
  std::vector<Logic> latch_q_;

  std::optional<NetId> stuck_net_;
  Logic stuck_value_ = Logic::kX;
};

}  // namespace lsl::digital
