#include "digital/compaction.hpp"

#include <algorithm>

namespace lsl::digital {

namespace {

/// detection[p][f] = pattern p hard-detects fault f.
std::vector<std::vector<bool>> detection_matrix(Circuit& c,
                                                const std::vector<const ScanChain*>& chains,
                                                const std::vector<MultiScanPattern>& candidates,
                                                const std::vector<StuckFault>& faults,
                                                const std::vector<NetId>& observe_nets) {
  c.clear_faults();
  std::vector<std::vector<Logic>> golden;
  golden.reserve(candidates.size());
  for (const auto& p : candidates) {
    c.power_on();
    golden.push_back(apply_pattern_multi(c, chains, p, observe_nets));
  }

  std::vector<std::vector<bool>> detects(candidates.size(),
                                         std::vector<bool>(faults.size(), false));
  for (std::size_t f = 0; f < faults.size(); ++f) {
    c.set_stuck(faults[f].net, faults[f].value);
    for (std::size_t p = 0; p < candidates.size(); ++p) {
      c.power_on();
      const auto resp = apply_pattern_multi(c, chains, candidates[p], observe_nets);
      bool hard = false;
      for (std::size_t i = 0; i < resp.size() && !hard; ++i) {
        hard = is_known(golden[p][i]) && is_known(resp[i]) && golden[p][i] != resp[i];
      }
      detects[p][f] = hard;
    }
    c.clear_faults();
  }
  return detects;
}

}  // namespace

CompactionResult compact_patterns(Circuit& c, const std::vector<const ScanChain*>& chains,
                                  const std::vector<MultiScanPattern>& candidates,
                                  const std::vector<StuckFault>& faults,
                                  const std::vector<NetId>& observe_nets) {
  const auto detects = detection_matrix(c, chains, candidates, faults, observe_nets);

  CompactionResult result;
  std::vector<bool> covered(faults.size(), false);
  std::vector<bool> used(candidates.size(), false);
  std::size_t n_covered = 0;

  for (;;) {
    std::size_t best = candidates.size();
    std::size_t best_gain = 0;
    for (std::size_t p = 0; p < candidates.size(); ++p) {
      if (used[p]) continue;
      std::size_t gain = 0;
      for (std::size_t f = 0; f < faults.size(); ++f) {
        if (detects[p][f] && !covered[f]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = p;
      }
    }
    if (best == candidates.size()) break;  // nothing adds coverage
    used[best] = true;
    result.selected.push_back(best);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (detects[best][f] && !covered[f]) {
        covered[f] = true;
        ++n_covered;
      }
    }
    result.coverage_curve.push_back(100.0 * static_cast<double>(n_covered) /
                                    static_cast<double>(faults.size()));
  }

  for (std::size_t f = 0; f < faults.size(); ++f) result.coverage.add(covered[f]);
  return result;
}

std::vector<double> coverage_vs_pattern_count(Circuit& c,
                                              const std::vector<const ScanChain*>& chains,
                                              const std::vector<MultiScanPattern>& candidates,
                                              const std::vector<StuckFault>& faults,
                                              const std::vector<NetId>& observe_nets) {
  const auto detects = detection_matrix(c, chains, candidates, faults, observe_nets);
  std::vector<bool> covered(faults.size(), false);
  std::size_t n_covered = 0;
  std::vector<double> curve;
  curve.reserve(candidates.size());
  for (std::size_t p = 0; p < candidates.size(); ++p) {
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (detects[p][f] && !covered[f]) {
        covered[f] = true;
        ++n_covered;
      }
    }
    curve.push_back(100.0 * static_cast<double>(n_covered) / static_cast<double>(faults.size()));
  }
  return curve;
}

}  // namespace lsl::digital
