#include "digital/circuit.hpp"

#include <stdexcept>

namespace lsl::digital {

NetId Circuit::net(const std::string& name) {
  if (net_by_name_.count(name) != 0) throw std::invalid_argument("duplicate net: " + name);
  const NetId id = net_names_.size();
  net_names_.push_back(name);
  net_by_name_.emplace(name, id);
  input_flag_.push_back(false);
  values_.push_back(Logic::kX);
  return id;
}

NetId Circuit::net_or_new(const std::string& name) {
  const auto it = net_by_name_.find(name);
  if (it != net_by_name_.end()) return it->second;
  return net(name);
}

std::optional<NetId> Circuit::find_net(const std::string& name) const {
  const auto it = net_by_name_.find(name);
  if (it == net_by_name_.end()) return std::nullopt;
  return it->second;
}

const std::string& Circuit::net_name(NetId id) const { return net_names_.at(id); }

void Circuit::make_input(NetId n) { input_flag_.at(n) = true; }

bool Circuit::is_input(NetId n) const { return input_flag_.at(n); }

void Circuit::add_gate(GateType type, std::vector<NetId> inputs, NetId output) {
  gates_.push_back(Gate{type, std::move(inputs), output});
}

std::size_t Circuit::add_flipflop(FlipFlop ff) {
  flipflops_.push_back(ff);
  ff_q_.push_back(Logic::kX);
  return flipflops_.size() - 1;
}

std::size_t Circuit::add_latch(Latch l) {
  latches_.push_back(l);
  latch_q_.push_back(Logic::kX);
  return latches_.size() - 1;
}

void Circuit::power_on() {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (!input_flag_[i]) values_[i] = Logic::kX;
  }
  for (auto& q : ff_q_) q = Logic::kX;
  for (auto& q : latch_q_) q = Logic::kX;
}

void Circuit::apply_reset() {
  settle();
  for (std::size_t i = 0; i < flipflops_.size(); ++i) {
    const auto& ff = flipflops_[i];
    if (ff.reset.has_value() && read(*ff.reset) == Logic::k1) ff_q_[i] = Logic::k0;
  }
  settle();
}

void Circuit::set_input(NetId n, Logic v) {
  if (!input_flag_.at(n)) throw std::invalid_argument("not an input: " + net_names_.at(n));
  values_[n] = v;
}

Logic Circuit::value(NetId n) const { return values_.at(n); }

void Circuit::write(NetId n, Logic v) {
  if (stuck_net_.has_value() && *stuck_net_ == n) v = stuck_value_;
  values_[n] = v;
}

Logic Circuit::eval_gate(const Gate& g) const {
  auto in = [&](std::size_t i) { return read(g.inputs.at(i)); };
  switch (g.type) {
    case GateType::kBuf: return in(0);
    case GateType::kInv: return logic_not(in(0));
    case GateType::kConst0: return Logic::k0;
    case GateType::kConst1: return Logic::k1;
    case GateType::kMux2: return logic_mux(in(0), in(1), in(2));
    case GateType::kAnd:
    case GateType::kNand: {
      Logic acc = Logic::k1;
      for (const NetId n : g.inputs) acc = logic_and(acc, read(n));
      return g.type == GateType::kAnd ? acc : logic_not(acc);
    }
    case GateType::kOr:
    case GateType::kNor: {
      Logic acc = Logic::k0;
      for (const NetId n : g.inputs) acc = logic_or(acc, read(n));
      return g.type == GateType::kOr ? acc : logic_not(acc);
    }
    case GateType::kXor:
    case GateType::kXnor: {
      Logic acc = Logic::k0;
      for (const NetId n : g.inputs) acc = logic_xor(acc, read(n));
      return g.type == GateType::kXor ? acc : logic_not(acc);
    }
  }
  return Logic::kX;
}

void Circuit::settle() {
  // Apply the stuck fault to an input net too (inputs are written
  // directly by set_input and bypass write()).
  if (stuck_net_.has_value() && input_flag_.at(*stuck_net_)) values_[*stuck_net_] = stuck_value_;

  // Flip-flop outputs present their held state.
  for (std::size_t i = 0; i < flipflops_.size(); ++i) write(flipflops_[i].q, ff_q_[i]);

  const std::size_t sweep_limit = 2 * (gates_.size() + latches_.size()) + 4;
  bool changed = true;
  std::size_t sweeps = 0;
  while (changed && sweeps < sweep_limit) {
    changed = false;
    ++sweeps;
    for (const Gate& g : gates_) {
      const Logic v = eval_gate(g);
      const Logic before = values_[g.output];
      write(g.output, v);  // may be overridden by a stuck fault
      if (values_[g.output] != before) changed = true;
    }
    for (std::size_t i = 0; i < latches_.size(); ++i) {
      const Latch& l = latches_[i];
      const Logic en = read(l.en);
      Logic q = latch_q_[i];
      if (en == Logic::k1) {
        q = read(l.d);
      } else if (en == Logic::kX) {
        // Unknown enable: output known only if held state and input agree.
        q = (latch_q_[i] == read(l.d)) ? latch_q_[i] : Logic::kX;
      }
      latch_q_[i] = q;
      const Logic before = values_[l.q];
      write(l.q, q);
      if (values_[l.q] != before) changed = true;
    }
  }
  if (changed) {
    // Combinational oscillation: X out every gate/latch output.
    for (const Gate& g : gates_) write(g.output, Logic::kX);
    for (const Latch& l : latches_) write(l.q, Logic::kX);
  }
}

void Circuit::step(std::uint32_t domain_mask) {
  settle();
  // Rising edge: capture D (or scan-in) into every clocked flop
  // simultaneously.
  std::vector<Logic> next = ff_q_;
  for (std::size_t i = 0; i < flipflops_.size(); ++i) {
    const auto& ff = flipflops_[i];
    if ((domain_mask & (1u << ff.domain)) == 0) continue;
    if (ff.reset.has_value() && read(*ff.reset) == Logic::k1) {
      next[i] = Logic::k0;
      continue;
    }
    Logic d = read(ff.d);
    if (ff.scan_en.has_value()) {
      d = logic_mux(read(*ff.scan_en), d, read(*ff.scan_in));
    }
    next[i] = d;
  }
  ff_q_ = std::move(next);
  settle();
}

Logic Circuit::ff_state(std::size_t ff_index) const { return ff_q_.at(ff_index); }

void Circuit::set_ff_state(std::size_t ff_index, Logic v) { ff_q_.at(ff_index) = v; }

Logic Circuit::latch_state(std::size_t latch_index) const { return latch_q_.at(latch_index); }

void Circuit::set_stuck(NetId n, Logic v) {
  stuck_net_ = n;
  stuck_value_ = v;
}

void Circuit::clear_faults() { stuck_net_.reset(); }

}  // namespace lsl::digital
