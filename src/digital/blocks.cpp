#include "digital/blocks.hpp"

namespace lsl::digital {

RingCounterBlock build_ring_counter(Circuit& c, const std::string& prefix, std::size_t n,
                                    NetId enable, NetId dir) {
  RingCounterBlock b;
  b.q.reserve(n);
  for (std::size_t i = 0; i < n; ++i) b.q.push_back(c.net(prefix + "_q" + std::to_string(i)));

  for (std::size_t i = 0; i < n; ++i) {
    // Shift up: bit i takes from i-1. Shift down: from i+1.
    const NetId from_below = b.q[(i + n - 1) % n];
    const NetId from_above = b.q[(i + 1) % n];
    const NetId shifted = c.net(prefix + "_sh" + std::to_string(i));
    c.add_gate(GateType::kMux2, {dir, from_above, from_below}, shifted);
    const NetId d = c.net(prefix + "_d" + std::to_string(i));
    c.add_gate(GateType::kMux2, {enable, b.q[i], shifted}, d);
    b.flops.push_back(c.add_flipflop(FlipFlop{d, b.q[i], {}, {}, {}}));
  }
  return b;
}

SaturatingCounterBlock build_saturating_counter(Circuit& c, const std::string& prefix,
                                                std::size_t bits, NetId inc, NetId reset) {
  SaturatingCounterBlock b;
  for (std::size_t i = 0; i < bits; ++i) b.q.push_back(c.net(prefix + "_q" + std::to_string(i)));

  // saturated = AND of all bits.
  b.saturated = c.net(prefix + "_sat");
  c.add_gate(GateType::kAnd, b.q, b.saturated);

  // effective increment = inc AND NOT saturated.
  const NetId not_sat = c.net(prefix + "_nsat");
  c.add_gate(GateType::kInv, {b.saturated}, not_sat);
  NetId carry = c.net(prefix + "_c0");
  c.add_gate(GateType::kAnd, {inc, not_sat}, carry);

  for (std::size_t i = 0; i < bits; ++i) {
    const NetId d = c.net(prefix + "_d" + std::to_string(i));
    c.add_gate(GateType::kXor, {b.q[i], carry}, d);
    b.flops.push_back(c.add_flipflop(FlipFlop{d, b.q[i], {}, {}, reset}));
    if (i + 1 < bits) {
      const NetId next_carry = c.net(prefix + "_c" + std::to_string(i + 1));
      c.add_gate(GateType::kAnd, {carry, b.q[i]}, next_carry);
      carry = next_carry;
    }
  }
  return b;
}

CoarseFsmBlock build_coarse_fsm(Circuit& c, const std::string& prefix, NetId cmp_hi,
                                NetId cmp_lo) {
  CoarseFsmBlock b;
  b.cap_hi = c.net(prefix + "_cap_hi");
  b.cap_lo = c.net(prefix + "_cap_lo");
  b.flops.push_back(c.add_flipflop(FlipFlop{cmp_hi, b.cap_hi, {}, {}, {}}));
  b.flops.push_back(c.add_flipflop(FlipFlop{cmp_lo, b.cap_lo, {}, {}, {}}));

  b.enable = c.net(prefix + "_en");
  c.add_gate(GateType::kOr, {b.cap_hi, b.cap_lo}, b.enable);
  b.dir = c.net(prefix + "_dir");
  c.add_gate(GateType::kBuf, {b.cap_hi}, b.dir);
  // Vc above VH: discharge strongly (DNst); below VL: charge (UPst).
  b.dnst = c.net(prefix + "_dnst");
  c.add_gate(GateType::kBuf, {b.cap_hi}, b.dnst);
  b.upst = c.net(prefix + "_upst");
  c.add_gate(GateType::kBuf, {b.cap_lo}, b.upst);
  return b;
}

SwitchMatrixBlock build_switch_matrix(Circuit& c, const std::string& prefix,
                                      const std::vector<NetId>& phases,
                                      const std::vector<NetId>& sel) {
  SwitchMatrixBlock b;
  std::vector<NetId> terms;
  terms.reserve(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const NetId t = c.net(prefix + "_t" + std::to_string(i));
    c.add_gate(GateType::kAnd, {phases[i], sel[i]}, t);
    terms.push_back(t);
  }
  b.out = c.net(prefix + "_out");
  c.add_gate(GateType::kOr, terms, b.out);
  return b;
}

DividerBlock build_divider(Circuit& c, const std::string& prefix, std::size_t bits) {
  DividerBlock b;
  for (std::size_t i = 0; i < bits; ++i) b.q.push_back(c.net(prefix + "_q" + std::to_string(i)));

  NetId carry = c.net(prefix + "_one");
  c.add_gate(GateType::kConst1, {}, carry);
  for (std::size_t i = 0; i < bits; ++i) {
    const NetId d = c.net(prefix + "_d" + std::to_string(i));
    c.add_gate(GateType::kXor, {b.q[i], carry}, d);
    b.flops.push_back(c.add_flipflop(FlipFlop{d, b.q[i], {}, {}, {}}));
    if (i + 1 < bits) {
      const NetId next_carry = c.net(prefix + "_cy" + std::to_string(i + 1));
      c.add_gate(GateType::kAnd, {carry, b.q[i]}, next_carry);
      carry = next_carry;
    }
  }
  b.tick = b.q.back();
  return b;
}

AlexanderPdBlock build_alexander_pd(Circuit& c, const std::string& prefix, NetId data_in,
                                    NetId edge_in) {
  AlexanderPdBlock b;
  const NetId cur = c.net(prefix + "_cur");
  const NetId edge = c.net(prefix + "_edge");
  const NetId prev = c.net(prefix + "_prev");
  b.flops.push_back(c.add_flipflop(FlipFlop{data_in, cur, {}, {}, {}}));
  b.flops.push_back(c.add_flipflop(FlipFlop{edge_in, edge, {}, {}, {}}));
  b.flops.push_back(c.add_flipflop(FlipFlop{cur, prev, {}, {}, {}}));

  // Bang-bang decode on a data transition (prev != cur): if the clock is
  // early the edge sample still equals prev, so edge^cur = 1 -> UP (add
  // VCDL delay); if late the edge sample equals cur, so prev^edge = 1 ->
  // DN. With no transition both stay 0 (no pump activity).
  b.up = c.net(prefix + "_up");
  c.add_gate(GateType::kXor, {edge, cur}, b.up);
  b.dn = c.net(prefix + "_dn");
  c.add_gate(GateType::kXor, {prev, edge}, b.dn);

  b.retimed = c.net(prefix + "_retimed");
  b.flops.push_back(c.add_flipflop(FlipFlop{cur, b.retimed, {}, {}, {}}));
  return b;
}

}  // namespace lsl::digital
