#include "digital/stuck.hpp"

namespace lsl::digital {

std::string StuckFault::describe(const Circuit& c) const {
  return c.net_name(net) + (value == Logic::k0 ? " s@0" : " s@1");
}

std::vector<StuckFault> enumerate_stuck_faults(const Circuit& c,
                                               const std::vector<std::string>& exclude_prefixes) {
  // Tie cells make one polarity redundant: a constant-1 net stuck at 1
  // is not a fault. Standard ATPG excludes these from the universe.
  std::vector<Logic> tied(c.net_count(), Logic::kX);
  for (const auto& g : c.gates()) {
    if (g.type == GateType::kConst0) tied[g.output] = Logic::k0;
    if (g.type == GateType::kConst1) tied[g.output] = Logic::k1;
  }
  auto excluded = [&](NetId n) {
    const std::string& name = c.net_name(n);
    for (const auto& p : exclude_prefixes) {
      if (name.rfind(p, 0) == 0) return true;
    }
    return false;
  };
  std::vector<StuckFault> out;
  out.reserve(c.net_count() * 2);
  for (NetId n = 0; n < c.net_count(); ++n) {
    if (excluded(n)) continue;
    if (tied[n] != Logic::k0) out.push_back({n, Logic::k0});
    if (tied[n] != Logic::k1) out.push_back({n, Logic::k1});
  }
  return out;
}

std::vector<Logic> apply_pattern(Circuit& c, const ScanChain& chain, const ScanPattern& p) {
  chain.load_flop_order(c, p.chain_load);
  for (const auto& [net, v] : p.pi_values) c.set_input(net, v);
  for (int k = 0; k < p.capture_cycles; ++k) chain.capture(c);
  return chain.read_flop_order(c);
}

namespace {

enum class Detect { kNone, kPossible, kHard };

Detect classify(const std::vector<Logic>& good, const std::vector<Logic>& bad) {
  Detect d = Detect::kNone;
  for (std::size_t i = 0; i < good.size(); ++i) {
    if (!is_known(good[i])) continue;
    if (is_known(bad[i])) {
      if (good[i] != bad[i]) return Detect::kHard;
    } else {
      d = Detect::kPossible;
    }
  }
  return d;
}

}  // namespace

StuckCampaignResult run_stuck_campaign(Circuit& c, const ScanChain& chain,
                                       const std::vector<ScanPattern>& patterns,
                                       const std::vector<StuckFault>& faults) {
  // Fault-free responses, one per pattern.
  c.clear_faults();
  std::vector<std::vector<Logic>> golden;
  golden.reserve(patterns.size());
  for (const auto& p : patterns) {
    c.power_on();
    golden.push_back(apply_pattern(c, chain, p));
  }

  StuckCampaignResult result;
  for (const auto& f : faults) {
    Detect best = Detect::kNone;
    c.set_stuck(f.net, f.value);
    for (std::size_t pi = 0; pi < patterns.size() && best != Detect::kHard; ++pi) {
      c.power_on();
      const auto resp = apply_pattern(c, chain, patterns[pi]);
      const Detect d = classify(golden[pi], resp);
      if (static_cast<int>(d) > static_cast<int>(best)) best = d;
    }
    c.clear_faults();
    result.hard.add(best == Detect::kHard);
    result.combined.add(best != Detect::kNone);
    if (best == Detect::kNone) result.undetected.push_back(f);
  }
  return result;
}

std::vector<Logic> apply_pattern_multi(Circuit& c, const std::vector<const ScanChain*>& chains,
                                       const MultiScanPattern& p,
                                       const std::vector<NetId>& observe_nets) {
  for (std::size_t i = 0; i < chains.size(); ++i) {
    chains[i]->load_flop_order(c, p.chain_loads.at(i));
  }
  for (const auto& [net, v] : p.pi_values) c.set_input(net, v);
  std::vector<Logic> out;
  for (int k = 0; k < p.capture_cycles; ++k) {
    chains.front()->capture(c);
    // Primary outputs are strobed on every functional cycle.
    for (const NetId n : observe_nets) out.push_back(c.value(n));
  }
  for (const auto* chain : chains) {
    const auto r = chain->read_flop_order(c);
    out.insert(out.end(), r.begin(), r.end());
  }
  return out;
}

StuckCampaignResult run_stuck_campaign_multi(Circuit& c,
                                             const std::vector<const ScanChain*>& chains,
                                             const std::vector<MultiScanPattern>& patterns,
                                             const std::vector<StuckFault>& faults,
                                             const std::vector<NetId>& observe_nets) {
  c.clear_faults();
  std::vector<std::vector<Logic>> golden;
  golden.reserve(patterns.size());
  for (const auto& p : patterns) {
    c.power_on();
    golden.push_back(apply_pattern_multi(c, chains, p, observe_nets));
  }

  StuckCampaignResult result;
  for (const auto& f : faults) {
    Detect best = Detect::kNone;
    c.set_stuck(f.net, f.value);
    for (std::size_t pi = 0; pi < patterns.size() && best != Detect::kHard; ++pi) {
      c.power_on();
      const auto resp = apply_pattern_multi(c, chains, patterns[pi], observe_nets);
      const Detect d = classify(golden[pi], resp);
      if (static_cast<int>(d) > static_cast<int>(best)) best = d;
    }
    c.clear_faults();
    result.hard.add(best == Detect::kHard);
    result.combined.add(best != Detect::kNone);
    if (best == Detect::kNone) result.undetected.push_back(f);
  }
  return result;
}

std::vector<MultiScanPattern> random_patterns_multi(const std::vector<const ScanChain*>& chains,
                                                    const std::vector<NetId>& pis,
                                                    std::size_t count, util::Pcg32& rng) {
  std::vector<MultiScanPattern> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    MultiScanPattern p;
    for (const auto* chain : chains) {
      std::vector<Logic> load(chain->length());
      for (auto& b : load) b = from_bool(rng.next_bool());
      p.chain_loads.push_back(std::move(load));
    }
    for (const NetId pi : pis) p.pi_values.emplace_back(pi, from_bool(rng.next_bool()));
    p.capture_cycles = 1 + static_cast<int>(rng.next_below(3));
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<ScanPattern> random_patterns(const Circuit& c, const ScanChain& chain,
                                         const std::vector<NetId>& pis, std::size_t count,
                                         util::Pcg32& rng) {
  (void)c;
  std::vector<ScanPattern> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    ScanPattern p;
    p.chain_load.resize(chain.length());
    for (auto& b : p.chain_load) b = from_bool(rng.next_bool());
    for (const NetId pi : pis) p.pi_values.emplace_back(pi, from_bool(rng.next_bool()));
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace lsl::digital
