#include "digital/scan.hpp"

#include <stdexcept>

namespace lsl::digital {

ScanChain::ScanChain(Circuit& circuit, std::string prefix, std::vector<std::size_t> ff_indices)
    : ffs_(std::move(ff_indices)) {
  si_ = circuit.net(prefix + "_si");
  se_ = circuit.net(prefix + "_se");
  circuit.make_input(si_);
  circuit.make_input(se_);
  circuit.set_input(si_, Logic::k0);
  circuit.set_input(se_, Logic::k0);

  // Flip-flop internals are not directly editable through the public
  // API by design; stitching goes through a dedicated hook.
  NetId prev_q = si_;
  for (const std::size_t fi : ffs_) {
    FlipFlop& ff = circuit.flipflop(fi);
    if (ff.scan_en.has_value()) throw std::invalid_argument("flop already in a scan chain");
    ff.scan_en = se_;
    ff.scan_in = prev_q;
    prev_q = ff.q;
    domain_mask_ |= 1u << ff.domain;
  }
  so_ = prev_q;
}

std::vector<Logic> ScanChain::shift(Circuit& circuit, const std::vector<Logic>& vec) const {
  if (vec.size() != ffs_.size()) throw std::invalid_argument("scan vector length mismatch");
  std::vector<Logic> out;
  out.reserve(vec.size());
  circuit.set_input(se_, Logic::k1);
  // FIFO semantics: vec[0] is presented first, travels deepest, and is
  // the first bit to emerge on a subsequent read. In flop terms vec[i]
  // lands in chain flop (length-1-i).
  for (std::size_t k = 0; k < vec.size(); ++k) {
    circuit.settle();
    out.push_back(circuit.value(so_));
    circuit.set_input(si_, vec[k]);
    // Only this chain's clock domain toggles during its shift (the
    // paper's chains live in separate clock domains).
    circuit.step(domain_mask_);
  }
  circuit.set_input(se_, Logic::k0);
  circuit.settle();
  return out;
}

void ScanChain::load_flop_order(Circuit& circuit, const std::vector<Logic>& vec) const {
  std::vector<Logic> rev(vec.rbegin(), vec.rend());
  shift(circuit, rev);
}

std::vector<Logic> ScanChain::read_flop_order(Circuit& circuit) const {
  std::vector<Logic> fifo = read(circuit);
  return std::vector<Logic>(fifo.rbegin(), fifo.rend());
}

void ScanChain::capture(Circuit& circuit) const {
  circuit.set_input(se_, Logic::k0);
  circuit.step();
}

std::vector<Logic> ScanChain::read(Circuit& circuit) const {
  return shift(circuit, std::vector<Logic>(ffs_.size(), Logic::k0));
}

std::vector<Logic> ScanChain::load_capture_read(Circuit& circuit,
                                                const std::vector<Logic>& pattern) const {
  shift(circuit, pattern);
  capture(circuit);
  return read(circuit);
}

std::vector<Logic> logic_vector(const std::string& bits) {
  std::vector<Logic> out;
  out.reserve(bits.size());
  for (const char c : bits) {
    switch (c) {
      case '0': out.push_back(Logic::k0); break;
      case '1': out.push_back(Logic::k1); break;
      case 'x':
      case 'X': out.push_back(Logic::kX); break;
      default: throw std::invalid_argument("bad logic char");
    }
  }
  return out;
}

std::string logic_string(const std::vector<Logic>& v) {
  std::string s;
  s.reserve(v.size());
  for (const Logic b : v) s.push_back(logic_char(b));
  return s;
}

}  // namespace lsl::digital
