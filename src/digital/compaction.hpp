// Test-set compaction: given a pool of candidate scan patterns, pick a
// minimal subset that keeps full fault coverage (greedy set cover over
// the per-pattern detection sets). Production test time is dominated by
// scan shifting, so a compact set is the difference between a cheap and
// an expensive part — the flip side of the paper's low-overhead DFT.
#pragma once

#include <cstdint>
#include <vector>

#include "digital/circuit.hpp"
#include "digital/scan.hpp"
#include "digital/stuck.hpp"

namespace lsl::digital {

struct CompactionResult {
  /// Indices into the candidate pool, in greedy-selection order.
  std::vector<std::size_t> selected;
  /// Hard-detect coverage of the selected subset.
  util::Coverage coverage;
  /// Coverage after each successive selected pattern (the coverage
  /// curve; same length as `selected`).
  std::vector<double> coverage_curve;
};

/// Builds the pattern x fault hard-detection matrix by serial fault
/// simulation (no fault dropping: every pattern's full detection set is
/// needed for set cover), then greedily selects patterns until no
/// pattern adds coverage.
CompactionResult compact_patterns(Circuit& c, const std::vector<const ScanChain*>& chains,
                                  const std::vector<MultiScanPattern>& candidates,
                                  const std::vector<StuckFault>& faults,
                                  const std::vector<NetId>& observe_nets = {});

/// Convenience: coverage achieved by the first k patterns of a fixed
/// (uncompacted) sequence, for k = 1..n — the random-pattern baseline
/// the compactor is judged against.
std::vector<double> coverage_vs_pattern_count(Circuit& c,
                                              const std::vector<const ScanChain*>& chains,
                                              const std::vector<MultiScanPattern>& candidates,
                                              const std::vector<StuckFault>& faults,
                                              const std::vector<NetId>& observe_nets = {});

}  // namespace lsl::digital
