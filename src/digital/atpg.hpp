// Simulation-based ATPG: deterministic test generation for single
// stuck-at faults by hill-climbing on the fault's error spread.
//
// For a candidate pattern, the good and faulty machines are simulated
// side by side; the score counts the nets where they provably differ,
// with a decisive bonus when the difference reaches an observation
// point (scan capture or PO strobe). Bit-flip hill climbing with random
// restarts then walks a random pattern toward one that detects the
// fault. This is the classic simulation-driven alternative to PODEM:
// the fault simulator itself is the oracle, so latches, X-states and
// multi-cycle capture come for free.
#pragma once

#include <cstdint>
#include <vector>

#include "digital/circuit.hpp"
#include "digital/scan.hpp"
#include "digital/stuck.hpp"
#include "util/rng.hpp"

namespace lsl::digital {

struct AtpgOptions {
  std::size_t restarts = 4;     // random restarts per fault
  std::size_t max_passes = 6;   // full bit-sweep passes per restart
  int capture_cycles = 2;
  std::uint64_t seed = 1;
};

struct AtpgResult {
  std::vector<MultiScanPattern> patterns;  // generated tests, one per newly-detected fault group
  util::Coverage coverage;                 // over the requested fault list
  std::vector<StuckFault> undetected;      // faults no pattern could reach
};

/// Generates tests for `faults`. Faults already detected by an earlier
/// generated pattern are skipped (fault dropping), so the result is a
/// compact incremental test set.
AtpgResult generate_tests(Circuit& c, const std::vector<const ScanChain*>& chains,
                          const std::vector<StuckFault>& faults,
                          const std::vector<NetId>& pi_inputs,
                          const std::vector<NetId>& observe_nets, const AtpgOptions& opts = {});

/// Score of a pattern against a fault: number of nets where the good and
/// faulty machines provably differ after application, plus a large bonus
/// when an observed response bit differs (i.e. the fault is detected).
/// Exposed for tests.
std::size_t atpg_score(Circuit& c, const std::vector<const ScanChain*>& chains,
                       const MultiScanPattern& p, const StuckFault& fault,
                       const std::vector<NetId>& observe_nets, bool& detected);

}  // namespace lsl::digital
