#include "digital/logic.hpp"

#include <stdexcept>

namespace lsl::digital {

bool to_bool(Logic v) {
  if (v == Logic::kX) throw std::logic_error("to_bool on X");
  return v == Logic::k1;
}

Logic logic_not(Logic a) {
  if (a == Logic::kX) return Logic::kX;
  return a == Logic::k0 ? Logic::k1 : Logic::k0;
}

Logic logic_and(Logic a, Logic b) {
  if (a == Logic::k0 || b == Logic::k0) return Logic::k0;
  if (a == Logic::k1 && b == Logic::k1) return Logic::k1;
  return Logic::kX;
}

Logic logic_or(Logic a, Logic b) {
  if (a == Logic::k1 || b == Logic::k1) return Logic::k1;
  if (a == Logic::k0 && b == Logic::k0) return Logic::k0;
  return Logic::kX;
}

Logic logic_xor(Logic a, Logic b) {
  if (a == Logic::kX || b == Logic::kX) return Logic::kX;
  return from_bool(to_bool(a) != to_bool(b));
}

Logic logic_mux(Logic sel, Logic d0, Logic d1) {
  if (sel == Logic::k0) return d0;
  if (sel == Logic::k1) return d1;
  if (d0 == d1 && is_known(d0)) return d0;
  return Logic::kX;
}

char logic_char(Logic v) {
  switch (v) {
    case Logic::k0: return '0';
    case Logic::k1: return '1';
    case Logic::kX: return 'X';
  }
  return '?';
}

std::string logic_str(Logic v) { return std::string(1, logic_char(v)); }

}  // namespace lsl::digital
