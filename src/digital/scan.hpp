// Scan-chain stitching and the shift/capture test protocol.
//
// A ScanChain is an ordered list of flip-flop indices within a Circuit,
// plus the nets carrying scan-enable, scan-in, and scan-out. Stitching
// wires each flop's scan_in to the previous flop's Q (mux-D style), which
// is exactly the paper's "Scan chain A / Scan chain B" construction.
#pragma once

#include <string>
#include <vector>

#include "digital/circuit.hpp"

namespace lsl::digital {

class ScanChain {
 public:
  /// Stitches `ff_indices` (scan order, scan-in first) into a chain on
  /// `circuit`. Creates nets `<prefix>_si`, `<prefix>_so`, `<prefix>_se`.
  /// The flops must not already have scan hookups.
  ScanChain(Circuit& circuit, std::string prefix, std::vector<std::size_t> ff_indices);

  std::size_t length() const { return ffs_.size(); }
  NetId scan_in() const { return si_; }
  NetId scan_out() const { return so_; }
  NetId scan_enable() const { return se_; }
  const std::vector<std::size_t>& flops() const { return ffs_; }

  /// Shifts the full vector in with FIFO semantics: vec[0] enters first
  /// (and emerges first on the next read); vec[i] lands in chain flop
  /// length()-1-i. Returns the length() bits shifted out, oldest first.
  std::vector<Logic> shift(Circuit& circuit, const std::vector<Logic>& vec) const;

  /// Loads `vec` expressed in *flop order*: vec[i] ends up in flops()[i].
  void load_flop_order(Circuit& circuit, const std::vector<Logic>& vec) const;
  /// Reads the chain and returns bits in *flop order*.
  std::vector<Logic> read_flop_order(Circuit& circuit) const;

  /// One functional capture cycle (scan-enable low).
  void capture(Circuit& circuit) const;

  /// Reads the chain by shifting out length() bits (shifts zeros in).
  std::vector<Logic> read(Circuit& circuit) const;

  /// Convenience: loads a pattern, pulses one capture, reads the result.
  std::vector<Logic> load_capture_read(Circuit& circuit, const std::vector<Logic>& pattern) const;

 private:
  std::vector<std::size_t> ffs_;
  NetId si_ = 0;
  NetId so_ = 0;
  NetId se_ = 0;
  std::uint32_t domain_mask_ = 0;
};

/// Helpers for building Logic vectors from 0/1 strings ("0110", X allowed).
std::vector<Logic> logic_vector(const std::string& bits);
std::string logic_string(const std::vector<Logic>& v);

}  // namespace lsl::digital
