#include "digital/atpg.hpp"

namespace lsl::digital {

namespace {

/// Applies a pattern and snapshots every net value after the final
/// capture settle, along with the observable response.
struct Application {
  std::vector<Logic> nets;
  std::vector<Logic> response;
};

Application apply_and_snapshot(Circuit& c, const std::vector<const ScanChain*>& chains,
                               const MultiScanPattern& p,
                               const std::vector<NetId>& observe_nets) {
  Application out;
  c.power_on();
  for (std::size_t i = 0; i < chains.size(); ++i) {
    chains[i]->load_flop_order(c, p.chain_loads.at(i));
  }
  for (const auto& [net, v] : p.pi_values) c.set_input(net, v);
  for (int k = 0; k < p.capture_cycles; ++k) {
    chains.front()->capture(c);
    for (const NetId n : observe_nets) out.response.push_back(c.value(n));
  }
  // Snapshot BEFORE the destructive chain read-out: this is where the
  // error spread (the hill-climbing gradient) lives.
  out.nets.reserve(c.net_count());
  for (NetId n = 0; n < c.net_count(); ++n) out.nets.push_back(c.value(n));
  for (const auto* chain : chains) {
    const auto r = chain->read_flop_order(c);
    out.response.insert(out.response.end(), r.begin(), r.end());
  }
  return out;
}

bool known_differs(Logic a, Logic b) { return is_known(a) && is_known(b) && a != b; }

}  // namespace

std::size_t atpg_score(Circuit& c, const std::vector<const ScanChain*>& chains,
                       const MultiScanPattern& p, const StuckFault& fault,
                       const std::vector<NetId>& observe_nets, bool& detected) {
  c.clear_faults();
  const Application good = apply_and_snapshot(c, chains, p, observe_nets);
  c.set_stuck(fault.net, fault.value);
  const Application bad = apply_and_snapshot(c, chains, p, observe_nets);
  c.clear_faults();

  std::size_t spread = 0;
  for (std::size_t n = 0; n < good.nets.size(); ++n) {
    if (known_differs(good.nets[n], bad.nets[n])) ++spread;
  }
  detected = false;
  for (std::size_t i = 0; i < good.response.size(); ++i) {
    if (known_differs(good.response[i], bad.response[i])) {
      detected = true;
      break;
    }
  }
  // Detection dominates any spread improvement.
  return spread + (detected ? 1000000 : 0);
}

AtpgResult generate_tests(Circuit& c, const std::vector<const ScanChain*>& chains,
                          const std::vector<StuckFault>& faults,
                          const std::vector<NetId>& pi_inputs,
                          const std::vector<NetId>& observe_nets, const AtpgOptions& opts) {
  AtpgResult result;
  util::Pcg32 rng(opts.seed);

  auto random_pattern = [&] {
    MultiScanPattern p;
    for (const auto* chain : chains) {
      std::vector<Logic> load(chain->length());
      for (auto& b : load) b = from_bool(rng.next_bool());
      p.chain_loads.push_back(std::move(load));
    }
    for (const NetId pi : pi_inputs) p.pi_values.emplace_back(pi, from_bool(rng.next_bool()));
    p.capture_cycles = opts.capture_cycles;
    return p;
  };

  // All mutable bits of a pattern, as (chain index or -1 for PI, position).
  auto flip_bit = [&](MultiScanPattern& p, std::size_t bit) {
    for (auto& load : p.chain_loads) {
      if (bit < load.size()) {
        load[bit] = logic_not(load[bit]);
        return;
      }
      bit -= load.size();
    }
    auto& [net, v] = p.pi_values.at(bit);
    v = logic_not(v);
  };
  std::size_t n_bits = 0;
  {
    for (const auto* chain : chains) n_bits += chain->length();
    n_bits += pi_inputs.size();
  }

  auto detected_by_existing = [&](const StuckFault& f) {
    bool det = false;
    for (const auto& p : result.patterns) {
      atpg_score(c, chains, p, f, observe_nets, det);
      if (det) return true;
    }
    return false;
  };

  for (const auto& f : faults) {
    if (detected_by_existing(f)) {
      result.coverage.add(true);
      continue;
    }

    bool found = false;
    for (std::size_t restart = 0; restart < opts.restarts && !found; ++restart) {
      MultiScanPattern p = random_pattern();
      bool det = false;
      std::size_t best = atpg_score(c, chains, p, f, observe_nets, det);
      if (det) {
        result.patterns.push_back(p);
        found = true;
        break;
      }
      // Bit-flip hill climbing: accept any flip that raises the error
      // spread; stop a pass early the moment detection lands.
      for (std::size_t pass = 0; pass < opts.max_passes && !det; ++pass) {
        bool improved = false;
        for (std::size_t bit = 0; bit < n_bits && !det; ++bit) {
          MultiScanPattern q = p;
          flip_bit(q, bit);
          bool qdet = false;
          const std::size_t score = atpg_score(c, chains, q, f, observe_nets, qdet);
          if (score > best) {
            best = score;
            p = std::move(q);
            det = qdet;
            improved = true;
          }
        }
        if (!improved) break;  // local optimum
      }
      if (det) {
        result.patterns.push_back(p);
        found = true;
      }
    }
    result.coverage.add(found);
    if (!found) result.undetected.push_back(f);
  }
  return result;
}

}  // namespace lsl::digital
