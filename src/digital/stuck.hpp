// Single stuck-at fault universe and serial fault simulation for the
// scan-tested digital control logic. The paper reports 100% stuck-at
// coverage on these blocks ("the circuits are logically simple"); the
// campaign here demonstrates that claim instead of asserting it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "digital/circuit.hpp"
#include "digital/scan.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lsl::digital {

/// One stuck-at fault site: a net forced to a constant.
struct StuckFault {
  NetId net = 0;
  Logic value = Logic::k0;
  std::string describe(const Circuit& c) const;
};

/// Every net x {s@0, s@1}, minus redundant tie-cell polarities and any
/// net whose name starts with one of `exclude_prefixes` (e.g. blocks the
/// design tests separately, or clock nets outside the stuck-at model).
std::vector<StuckFault> enumerate_stuck_faults(
    const Circuit& c, const std::vector<std::string>& exclude_prefixes = {});

/// A scan test pattern: chain load value + primary-input values applied
/// during the capture cycle.
struct ScanPattern {
  std::vector<Logic> chain_load;                  // flop order
  std::vector<std::pair<NetId, Logic>> pi_values; // applied before capture
  int capture_cycles = 1;
};

/// Applies one pattern through `chain` and returns the unloaded response
/// (flop order).
std::vector<Logic> apply_pattern(Circuit& c, const ScanChain& chain, const ScanPattern& p);

/// Result of a stuck-at campaign. "Hard" detection is a known-vs-known
/// response mismatch; "possible" detection means the faulty machine
/// produced X where the good machine is known (on silicon the X resolves
/// to some value, so repeated application exposes the fault — standard
/// ATPG partial-credit category).
struct StuckCampaignResult {
  util::Coverage hard;      // hard detects over the full universe
  util::Coverage combined;  // hard + possible detects
  std::vector<StuckFault> undetected;  // not even possibly detected
};

/// Serial stuck-at fault simulation: for each fault, applies the pattern
/// set until a response differs from the fault-free response (fault
/// dropping on hard detects).
StuckCampaignResult run_stuck_campaign(Circuit& c, const ScanChain& chain,
                                       const std::vector<ScanPattern>& patterns,
                                       const std::vector<StuckFault>& faults);

/// Generates `count` random scan patterns (uniform chain load and PI
/// values over the given primary inputs).
std::vector<ScanPattern> random_patterns(const Circuit& c, const ScanChain& chain,
                                         const std::vector<NetId>& pis, std::size_t count,
                                         util::Pcg32& rng);

// ---- multi-chain variants (designs with separate data / control scan
// chains, like the paper's chain A and chain B) ----

struct MultiScanPattern {
  std::vector<std::vector<Logic>> chain_loads;  // one per chain, flop order
  std::vector<std::pair<NetId, Logic>> pi_values;
  int capture_cycles = 1;
};

/// Loads every chain, applies PIs, captures, reads every chain; returns
/// the concatenated responses. `observe_nets` are primary outputs (or
/// analog hand-off points like the PD's UP/DN) sampled after the capture
/// settle and appended to the response.
std::vector<Logic> apply_pattern_multi(Circuit& c, const std::vector<const ScanChain*>& chains,
                                       const MultiScanPattern& p,
                                       const std::vector<NetId>& observe_nets = {});

StuckCampaignResult run_stuck_campaign_multi(Circuit& c,
                                             const std::vector<const ScanChain*>& chains,
                                             const std::vector<MultiScanPattern>& patterns,
                                             const std::vector<StuckFault>& faults,
                                             const std::vector<NetId>& observe_nets = {});

std::vector<MultiScanPattern> random_patterns_multi(const std::vector<const ScanChain*>& chains,
                                                    const std::vector<NetId>& pis,
                                                    std::size_t count, util::Pcg32& rng);

}  // namespace lsl::digital
