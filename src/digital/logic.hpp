// Three-valued logic (0 / 1 / X) for the gate-level simulator. X models
// both unknown power-on state and oscillation cut-off, which matters for
// scan tests: a fault is only "detected" by a vector if the observed
// value is a *known* value that differs from the good machine.
#pragma once

#include <cstdint>
#include <string>

namespace lsl::digital {

enum class Logic : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

inline Logic from_bool(bool b) { return b ? Logic::k1 : Logic::k0; }
inline bool is_known(Logic v) { return v != Logic::kX; }
/// Requires a known value.
bool to_bool(Logic v);

Logic logic_not(Logic a);
Logic logic_and(Logic a, Logic b);
Logic logic_or(Logic a, Logic b);
Logic logic_xor(Logic a, Logic b);
/// 2:1 multiplexer with X-pessimism: when the select is X, the result is
/// known only if both data inputs agree.
Logic logic_mux(Logic sel, Logic d0, Logic d1);

char logic_char(Logic v);
std::string logic_str(Logic v);

}  // namespace lsl::digital
