// Gate-level builders for the paper's digital control blocks (Fig 1 and
// Fig 8): the one-hot UP/DN ring counter driving the DLL switch matrix,
// the coarse-control FSM, the 3-bit saturating lock-detector counter,
// the synchronous clock divider, and the Alexander phase detector's
// flop/XOR structure. Each builder adds gates/flops to an existing
// Circuit under a name prefix and returns the interface nets plus the
// flop indices (so the DFT layer can stitch scan chains through them).
#pragma once

#include <string>
#include <vector>

#include "digital/circuit.hpp"

namespace lsl::digital {

/// Bidirectional one-hot ring counter ("UP DOWN Counter" of Fig 1).
/// While `enable` is 1, the hot bit moves up (dir=1) or down (dir=0)
/// each clock; otherwise it holds.
struct RingCounterBlock {
  std::vector<NetId> q;  // one-hot phase-select outputs
  std::vector<std::size_t> flops;
};
RingCounterBlock build_ring_counter(Circuit& c, const std::string& prefix, std::size_t n,
                                    NetId enable, NetId dir);

/// Saturating binary UP counter (the BIST lock detector; the paper uses
/// 3 bits for a 10-phase DLL). Increments while `inc` is 1 until all
/// ones, then holds. `reset` is the flop asynchronous reset net.
struct SaturatingCounterBlock {
  std::vector<NetId> q;  // LSB first
  NetId saturated;       // all-ones flag
  std::vector<std::size_t> flops;
};
SaturatingCounterBlock build_saturating_counter(Circuit& c, const std::string& prefix,
                                                std::size_t bits, NetId inc, NetId reset);

/// Coarse-loop control FSM (Fig 8): captures the window-comparator
/// outputs and derives the ring-counter enable/direction plus the
/// strong-charge-pump UPst/DNst requests.
///   cmp_hi = 1 when Vc rose above VH -> step phase up, discharge Vc.
///   cmp_lo = 1 when Vc fell below VL -> step phase down, charge Vc.
struct CoarseFsmBlock {
  NetId cap_hi;  // captured comparator bits (scan-observable flops)
  NetId cap_lo;
  NetId enable;  // ring-counter enable (coarse correction request)
  NetId dir;     // ring-counter direction (1 = up)
  NetId upst;    // strong pump charge request
  NetId dnst;    // strong pump discharge request
  std::vector<std::size_t> flops;
};
CoarseFsmBlock build_coarse_fsm(Circuit& c, const std::string& prefix, NetId cmp_hi, NetId cmp_lo);

/// Switch matrix: AND-OR select of one of `phases` by the one-hot `sel`.
struct SwitchMatrixBlock {
  NetId out;
};
SwitchMatrixBlock build_switch_matrix(Circuit& c, const std::string& prefix,
                                      const std::vector<NetId>& phases,
                                      const std::vector<NetId>& sel);

/// Synchronous divide-by-2^bits counter; `tick` is the MSB (the divided
/// clock enable for the coarse loop).
struct DividerBlock {
  std::vector<NetId> q;  // LSB first
  NetId tick;
  std::vector<std::size_t> flops;
};
DividerBlock build_divider(Circuit& c, const std::string& prefix, std::size_t bits);

/// Alexander (bang-bang) phase detector flop/XOR structure of Fig 7:
/// current-sample, edge-sample and previous-sample flops, XOR decoding
/// to UP/DN, plus the retiming flop that closes scan chain A.
struct AlexanderPdBlock {
  NetId up;
  NetId dn;
  NetId retimed;  // retimed data output (scan chain A tail)
  std::vector<std::size_t> flops;
};
AlexanderPdBlock build_alexander_pd(Circuit& c, const std::string& prefix, NetId data_in,
                                    NetId edge_in);

}  // namespace lsl::digital
