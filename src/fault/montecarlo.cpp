#include "fault/montecarlo.hpp"

#include <cmath>

#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace lsl::fault {

double vt_sigma(const spice::Mosfet& m, const MismatchSpec& spec) {
  return spec.a_vt / std::sqrt(m.w * m.l);
}

std::size_t apply_vt_mismatch(spice::Netlist& nl, const std::vector<std::string>& prefixes,
                              const MismatchSpec& spec, util::Pcg32& rng) {
  auto matches = [&](const std::string& name) {
    if (prefixes.empty()) return true;
    for (const auto& p : prefixes) {
      if (name.rfind(p, 0) == 0) return true;
    }
    return false;
  };
  std::size_t count = 0;
  for (auto& dev : nl.devices()) {
    if (!dev.enabled || !matches(dev.name)) continue;
    if (auto* mos = std::get_if<spice::Mosfet>(&dev.impl)) {
      mos->vt_delta = vt_sigma(*mos, spec) * rng.next_gaussian();
      ++count;
    }
  }
  return count;
}

std::size_t McTally::failures() const {
  std::size_t n = 0;
  for (const auto& [st, c] : failed) n += c;
  return n;
}

double McTally::yield() const {
  const std::size_t n = trials();
  return n == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(n);
}

std::string McTally::summary() const {
  std::string s =
      std::to_string(ok) + "/" + std::to_string(trials()) + " solved";
  if (!failed.empty()) {
    s += " (";
    bool first = true;
    for (const auto& [st, c] : failed) {
      if (!first) s += ", ";
      first = false;
      s += std::to_string(c) + " " + spice::to_string(st);
    }
    s += ")";
  }
  return s;
}

McTally run_mc_trials(std::size_t trials, const McRunOptions& opts,
                      const std::function<spice::SolveStatus(std::size_t, util::Pcg32&)>& trial) {
  std::vector<spice::SolveStatus> statuses(trials, spice::SolveStatus::kConverged);
  const std::size_t n = util::ThreadPool::resolve_threads(opts.num_threads);
  util::TraceSpan run_span("run_mc_trials", "montecarlo");
  run_span.arg("trials", static_cast<double>(trials));
  util::ThreadPool pool(n <= 1 ? 0 : n);  // 1 thread = inline on the caller
  pool.for_each(trials, [&](std::size_t t, std::size_t w) {
    util::TraceSpan span("mc_trial", "montecarlo");
    span.arg("trial", static_cast<double>(t));
    span.arg("worker", static_cast<double>(w));
    // One independent PCG32 stream per trial: the draw sequence depends
    // only on (seed, t), never on which worker ran the trial or when.
    util::Pcg32 rng(opts.seed, static_cast<std::uint64_t>(t));
    statuses[t] = trial(t, rng);
  });
  util::metrics().counter("mc.steals").add(static_cast<std::int64_t>(pool.total_steals()));
  McTally tally;
  for (const auto st : statuses) tally.record(st);
  util::metrics().counter("mc.trials").add(static_cast<std::int64_t>(tally.trials()));
  util::metrics().counter("mc.failed_trials").add(static_cast<std::int64_t>(tally.failures()));
  return tally;
}

}  // namespace lsl::fault
