// Manufacturing-mismatch Monte Carlo: Pelgrom-model threshold-voltage
// variation applied per transistor. The paper's DC-test comparators rely
// on a *deliberate* geometric offset being "sufficient to overcome any
// mismatch due to the manufacturing process" — this utility is how that
// claim gets checked on the reproduction's netlists.
#pragma once

#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "util/rng.hpp"

namespace lsl::fault {

struct MismatchSpec {
  /// Pelgrom VT-matching coefficient (V * m). ~3.5 mV*um for a
  /// 130 nm-class process.
  double a_vt = 3.5e-9;
};

/// Applies an independent Gaussian vt_delta to every enabled MOSFET
/// whose name starts with one of `prefixes` (empty = all), with
/// sigma = a_vt / sqrt(W * L) per device. Returns the number of devices
/// perturbed. Deltas REPLACE any prior vt_delta.
std::size_t apply_vt_mismatch(spice::Netlist& nl, const std::vector<std::string>& prefixes,
                              const MismatchSpec& spec, util::Pcg32& rng);

/// Per-device sigma for reporting.
double vt_sigma(const spice::Mosfet& m, const MismatchSpec& spec);

}  // namespace lsl::fault
