// Manufacturing-mismatch Monte Carlo: Pelgrom-model threshold-voltage
// variation applied per transistor. The paper's DC-test comparators rely
// on a *deliberate* geometric offset being "sufficient to overcome any
// mismatch due to the manufacturing process" — this utility is how that
// claim gets checked on the reproduction's netlists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "spice/solve_status.hpp"
#include "util/rng.hpp"

namespace lsl::fault {

struct MismatchSpec {
  /// Pelgrom VT-matching coefficient (V * m). ~3.5 mV*um for a
  /// 130 nm-class process.
  double a_vt = 3.5e-9;
};

/// Applies an independent Gaussian vt_delta to every enabled MOSFET
/// whose name starts with one of `prefixes` (empty = all), with
/// sigma = a_vt / sqrt(W * L) per device. Returns the number of devices
/// perturbed. Deltas REPLACE any prior vt_delta.
std::size_t apply_vt_mismatch(spice::Netlist& nl, const std::vector<std::string>& prefixes,
                              const MismatchSpec& spec, util::Pcg32& rng);

/// Per-device sigma for reporting.
double vt_sigma(const spice::Mosfet& m, const MismatchSpec& spec);

/// Tally of per-trial solver outcomes for Monte-Carlo sweeps. Mismatch
/// corners can push a circuit into the same degenerate operating points
/// structural faults do; trials whose solves fail are classified by
/// SolveStatus instead of being silently dropped, so yield figures stay
/// honest about how many corners were actually simulated.
struct McTally {
  std::size_t ok = 0;
  std::map<spice::SolveStatus, std::size_t> failed;  // by failure status

  void record(spice::SolveStatus st) {
    if (spice::solve_ok(st)) {
      ++ok;
    } else {
      ++failed[st];
    }
  }
  std::size_t failures() const;
  std::size_t trials() const { return ok + failures(); }
  /// Fraction of trials that produced a usable solution (0..1).
  double yield() const;
  /// One-line rendering, e.g. "58/60 solved (2 max_iterations)".
  std::string summary() const;
};

/// Execution knobs for run_mc_trials.
struct McRunOptions {
  /// 0 = hardware_concurrency, 1 = serial on the calling thread.
  std::size_t num_threads = 1;
  /// Base seed; trial t draws from an independent PCG32 stream
  /// Pcg32(seed, t), so results are bit-identical at any thread count.
  std::uint64_t seed = 1;
};

/// Runs `trials` independent Monte-Carlo trials on a thread pool and
/// merges the per-trial solver statuses into a tally in trial order.
/// `trial` receives the trial index and a generator private to that
/// trial; it must not share mutable state between invocations except
/// through per-trial slots it owns (e.g. writing measurement t into its
/// own element of a pre-sized vector — the pool guarantees each index
/// runs exactly once).
McTally run_mc_trials(std::size_t trials, const McRunOptions& opts,
                      const std::function<spice::SolveStatus(std::size_t trial, util::Pcg32& rng)>& trial);

}  // namespace lsl::fault
