#include "fault/characterize.hpp"

#include <algorithm>
#include <cmath>

namespace lsl::fault {

using cells::LinkFrontend;
using spice::DcResult;
using spice::kGround;
using spice::VSource;

namespace {

/// Adds a clamp VSource on Vc and solves. Returns the result plus the
/// clamp branch current (positive = current flows from Vc into the
/// clamp, i.e. the pump is sourcing).
struct ClampedSolve {
  bool converged = false;
  double i_clamp = 0.0;
  DcResult r;
};

ClampedSolve solve_with_vc_clamp(LinkFrontend fe, double vc_value,
                                 const spice::DcOptions& solve,
                                 const spice::SolveHints* hints = nullptr,
                                 const char* seed_key = nullptr) {
  auto& nl = fe.netlist();
  nl.add("char.clamp_vc", VSource{fe.cp_ports().vc, kGround, vc_value});
  ClampedSolve out;
  if (seed_key != nullptr) spice::arm_warm_start(hints, seed_key, nl);
  out.r = fe.solve(solve);
  out.converged = out.r.converged;
  if (out.converged) {
    if (seed_key != nullptr) spice::capture_seed(hints, seed_key, nl, out.r.x);
    out.i_clamp = out.r.i(nl, "char.clamp_vc");
  }
  return out;
}

}  // namespace

FrontendMeasurements measure_frontend(const cells::LinkFrontend& fe_in,
                                      const spice::DcOptions& solve_in,
                                      const spice::SolveHints* hints) {
  FrontendMeasurements m;
  spice::DcOptions solve = solve_in;
  if (hints != nullptr) solve.overlay = hints->overlay;
  const double vmid_window = 0.6;
  const double th = fe_in.spec().vdd / 2.0;

  // Records a failed solve's status (first failure wins).
  const auto fail = [&m](spice::SolveStatus st) {
    m.converged = false;
    if (m.status == spice::SolveStatus::kConverged) m.status = st;
  };

  // --- line differential, both vectors ---------------------------------
  {
    LinkFrontend fe = fe_in;
    fe.set_data(true, true);
    spice::arm_warm_start(hints, "char.line.1", fe.netlist());
    const DcResult r1 = fe.solve(solve);
    if (r1.converged) spice::capture_seed(hints, "char.line.1", fe.netlist(), r1.x);
    fe.set_data(false, false);
    spice::arm_warm_start(hints, "char.line.0", fe.netlist());
    const DcResult r0 = fe.solve(solve);
    if (r0.converged) spice::capture_seed(hints, "char.line.0", fe.netlist(), r0.x);
    m.iterations += r1.iterations + r0.iterations;
    if (!r1.converged || !r0.converged) {
      fail(!r1.converged ? r1.status : r0.status);
      return m;
    }
    fe.set_data(true, true);  // restore for callers reusing fe (value copy anyway)
    m.diff1 = fe.line_diff(r1);
    m.diff0 = fe.line_diff(r0);
  }

  // --- pump currents with Vc clamped mid-window ------------------------
  {
    LinkFrontend fe = fe_in;
    fe.set_pump(true, false);
    const ClampedSolve up = solve_with_vc_clamp(fe, vmid_window, solve, hints, "char.pump.up");
    fe.set_pump(false, true);
    const ClampedSolve dn = solve_with_vc_clamp(fe, vmid_window, solve, hints, "char.pump.dn");
    fe.set_pump(false, false);
    const ClampedSolve idle =
        solve_with_vc_clamp(fe, vmid_window, solve, hints, "char.pump.idle");
    fe.set_strong_pump(true, false);
    const ClampedSolve upst =
        solve_with_vc_clamp(fe, vmid_window, solve, hints, "char.pump.upst");
    fe.set_strong_pump(false, true);
    const ClampedSolve dnst =
        solve_with_vc_clamp(fe, vmid_window, solve, hints, "char.pump.dnst");
    m.iterations += up.r.iterations + dn.r.iterations + idle.r.iterations +
                    upst.r.iterations + dnst.r.iterations;
    for (const ClampedSolve* s : {&up, &dn, &idle, &upst, &dnst}) {
      if (!s->converged) {
        fail(s->r.status);
        return m;
      }
    }
    // The clamp sinks what the pump sources.
    m.leak = idle.i_clamp;
    m.i_up = up.i_clamp - idle.i_clamp;
    m.i_dn = -(dn.i_clamp - idle.i_clamp);
    m.i_upst = upst.i_clamp - idle.i_clamp;
    m.i_dnst = -(dnst.i_clamp - idle.i_clamp);
    m.vp_at_mid = idle.r.v(fe_in.netlist(), fe_in.cp_ports().vp);
  }

  // --- window comparator decisions at forced Vc -------------------------
  {
    LinkFrontend fe = fe_in;
    const auto obs_at = [&](double vc, const char* seed_key) {
      const ClampedSolve s = solve_with_vc_clamp(fe, vc, solve, hints, seed_key);
      m.iterations += s.r.iterations;
      struct {
        bool ok, hi, lo;
        spice::SolveStatus st;
      } o{s.converged, false, false, s.r.status};
      if (s.converged) {
        o.hi = s.r.v(fe.netlist(), fe.cp_ports().cmp_hi) > th;
        o.lo = s.r.v(fe.netlist(), fe.cp_ports().cmp_lo) > th;
      }
      return o;
    };
    const auto high = obs_at(1.05, "char.win.high");  // above VH = 0.8
    const auto mid = obs_at(0.6, "char.win.mid");
    const auto low = obs_at(0.15, "char.win.low");    // below VL = 0.4
    if (!high.ok || !mid.ok || !low.ok) {
      fail(!high.ok ? high.st : (!mid.ok ? mid.st : low.st));
      return m;
    }
    m.win_hi_at_high = high.hi;
    m.win_hi_at_mid = mid.hi;
    m.win_lo_at_low = low.lo;
    m.win_lo_at_mid = mid.lo;
  }
  return m;
}

BehavioralSignature derive_signature(const FrontendMeasurements& golden,
                                     const FrontendMeasurements& faulty) {
  BehavioralSignature sig;
  if (!faulty.converged) {
    sig.characterized = false;
    sig.status = faulty.status;
    return sig;
  }

  const double g_swing = golden.diff1 - golden.diff0;
  const double f_swing = faulty.diff1 - faulty.diff0;
  sig.swing_scale = (g_swing != 0.0) ? f_swing / g_swing : 0.0;
  sig.offset_shift = 0.5 * ((faulty.diff1 + faulty.diff0) - (golden.diff1 + golden.diff0));

  auto scale = [](double f, double g) { return g > 1e-12 ? std::max(f, 0.0) / g : 1.0; };
  sig.i_up_scale = scale(faulty.i_up, golden.i_up);
  sig.i_dn_scale = scale(faulty.i_dn, golden.i_dn);
  sig.strong_scale =
      0.5 * (scale(faulty.i_upst, golden.i_upst) + scale(faulty.i_dnst, golden.i_dnst));
  sig.leak = faulty.leak - golden.leak;

  sig.vp_offset = faulty.vp_at_mid - golden.vp_at_mid;
  sig.balance_broken = std::fabs(sig.vp_offset) > 0.3;

  // Window comparator behaviour -> synchronizer fault flags.
  sig.sync_faults.window_hi_stuck = faulty.win_hi_at_mid && !golden.win_hi_at_mid;
  sig.sync_faults.window_lo_stuck = faulty.win_lo_at_mid && !golden.win_lo_at_mid;
  const bool hi_dead = golden.win_hi_at_high && !faulty.win_hi_at_high;
  const bool lo_dead = golden.win_lo_at_low && !faulty.win_lo_at_low;
  sig.sync_faults.window_dead = hi_dead && lo_dead;
  if (hi_dead && !lo_dead) {
    // One-sided dead comparator: model as the healthy side stuck off by
    // folding into window_dead only when both die; a single dead side
    // slows acquisition from one direction, approximated by halving the
    // strong pump (it only ever fires one way).
    sig.strong_scale *= 0.5;
  }
  return sig;
}

lsl::link::LinkParams apply_signature(const lsl::link::LinkParams& base,
                                      const BehavioralSignature& sig) {
  lsl::link::LinkParams p = base;
  p.channel.drive_scale_p = sig.swing_scale;
  p.channel.drive_scale_n = sig.swing_scale;
  p.slicer_offset = base.slicer_offset + sig.offset_shift;
  p.sync.pump.i_up *= sig.i_up_scale;
  p.sync.pump.i_dn *= sig.i_dn_scale;
  p.sync.pump.strong_ratio *= std::max(sig.strong_scale, 1e-3);
  p.sync.pump.leak += sig.leak;
  p.sync.pump.vp_offset += sig.vp_offset;
  p.sync.pump.balance_broken = p.sync.pump.balance_broken || sig.balance_broken;
  if (sig.balance_broken) {
    // A broken balance path lets Vp drift toward the rail the residual
    // offset points at.
    p.sync.pump.vp_drift = sig.vp_offset >= 0.0 ? 1e6 : -1e6;
  }
  p.sync.faults.window_hi_stuck |= sig.sync_faults.window_hi_stuck;
  p.sync.faults.window_lo_stuck |= sig.sync_faults.window_lo_stuck;
  p.sync.faults.window_dead |= sig.sync_faults.window_dead;
  return p;
}

}  // namespace lsl::fault
