// Structural fault model for the analog circuits, after Kim & Soma's
// fault-based test methodology (the paper's reference [10]) and the
// paper's Table I taxonomy:
//
//   per MOSFET:  gate open, drain open, source open,
//                gate-drain short, gate-source short, drain-source short
//   per capacitor: short
//
// Opens disconnect the terminal entirely (the solver's gmin defines the
// floating level); shorts bridge two terminals with a small resistance.
//
// Gate opens get special treatment: a floating gate's potential is
// process- and history-dependent, so a gate-open fault is simulated once
// with the floating gate leaking toward GND and once toward VDD, and it
// counts as DETECTED only if the test flags BOTH variants. This
// pessimism is why gate opens come out as the hardest class in Table I.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "spice/stamp.hpp"

namespace lsl::fault {

enum class FaultClass {
  kGateOpen,
  kDrainOpen,
  kSourceOpen,
  kGateDrainShort,
  kGateSourceShort,
  kDrainSourceShort,
  kCapacitorShort,
};

constexpr std::array<FaultClass, 7> kAllFaultClasses = {
    FaultClass::kGateOpen,        FaultClass::kDrainOpen,       FaultClass::kSourceOpen,
    FaultClass::kGateDrainShort,  FaultClass::kGateSourceShort, FaultClass::kDrainSourceShort,
    FaultClass::kCapacitorShort,
};

std::string fault_class_name(FaultClass c);

/// Inverse of fault_class_name (checkpoint parsing). Returns false for
/// unknown names, leaving `out` untouched.
bool fault_class_from_name(const std::string& name, FaultClass& out);

/// Floating-node leakage direction for gate opens.
enum class OpenLeak { kToGround, kToVdd };

struct StructuralFault {
  std::string device;  // device name in the netlist
  FaultClass cls = FaultClass::kDrainSourceShort;

  std::string describe() const { return device + " " + fault_class_name(cls); }
  /// Gate opens need both leak variants simulated.
  bool needs_leak_variants() const { return cls == FaultClass::kGateOpen; }
};

struct InjectionSpec {
  double r_short = 1.0;    // bridge resistance for shorts
  double r_leak = 100e9;   // floating-gate leak to the chosen rail

  /// Filled by inject() (cleared first): the MNA voltage-unknown
  /// indices — in the *injected* netlist's ordering — of every node
  /// whose matrix row or column the fault edit adds, removes, or
  /// modifies. Shorts touch the two bridged nodes; opens touch the
  /// severed node, the fresh dangling node, and the device terminals
  /// whose Jacobian columns moved. Deduplicated, ascending, ground
  /// excluded. Sized k ≤ 4 for shorts — the basis of the low-rank
  /// (Sherman–Morrison–Woodbury) solve path; opens change the unknown
  /// *count* and are therefore never low-rank-expressible.
  std::vector<std::size_t>& touched_unknowns() const { return touched_; }

 private:
  mutable std::vector<std::size_t> touched_;
};

/// Physics-based leak direction for a floating gate: junction leakage
/// pulls it toward the device's bulk — substrate (GND) for NMOS, n-well
/// (VDD) for PMOS — i.e. toward the state that turns the device off.
OpenLeak bulk_leak(const spice::Netlist& nl, const StructuralFault& fault);

/// Enumerates the structural fault universe of a netlist. Only device
/// names starting with one of `prefixes` are considered (empty = all),
/// minus any matching `exclude_prefixes`. MOSFETs yield the six
/// transistor classes; capacitors yield shorts.
std::vector<StructuralFault> enumerate_structural_faults(
    const spice::Netlist& nl, const std::vector<std::string>& prefixes = {},
    const std::vector<std::string>& exclude_prefixes = {});

/// The device-name prefixes of the *test* circuitry inside the link
/// frontend (DC-test/bias/CP-BIST comparators and their bias generator).
/// The paper's Table-I universe is the functional analog circuit; the
/// observers count as overhead (Table II), not as circuit under test.
const std::vector<std::string>& test_circuitry_prefixes();

/// Applies `fault` to `nl` in place (the caller passes a copy of the
/// golden netlist). For gate opens, `leak` picks the floating-gate
/// variant; it is ignored for the other classes. `vdd_node` is required
/// for the kToVdd leak. Returns false if the device is missing or of the
/// wrong kind.
bool inject(spice::Netlist& nl, const StructuralFault& fault, OpenLeak leak,
            spice::NodeId vdd_node, const InjectionSpec& spec = {});

/// Counts faults per class (for reporting).
std::size_t count_class(const std::vector<StructuralFault>& faults, FaultClass c);

/// Low-rank description of `fault` as already injected into `nl` (i.e.
/// call inject() first, then this on the faulted netlist): the injected
/// bridge resistor as a rank-1 conductance update over the golden
/// structure, suitable for the workspace's Sherman–Morrison–Woodbury
/// path. Only shorts qualify — opens add unknowns (dimension change)
/// and gate opens additionally rewire a terminal, so they return
/// nullopt and take the ordinary full-stamp path. A short between two
/// aliases of the same node degenerates to a rank-0 overlay (skip the
/// device, no terms), which is still exact.
std::optional<spice::LowRankOverlay> low_rank_overlay(const spice::Netlist& nl,
                                                      const StructuralFault& fault);

/// One structural-equivalence class of the fault universe: every member
/// fault produces a netlist identical to the representative's up to
/// device *names* (which stamp nothing), so one simulation decides the
/// whole class. `proof` states the membership argument for the log.
struct FaultGroup {
  std::size_t representative = 0;      // lowest member index
  std::vector<std::size_t> members;    // ascending fault indices, incl. representative
  std::string proof;                   // why the members are equivalent (multi-member only)
};

/// Partitions `faults` (indices into the vector) into structural
/// equivalence classes against golden netlist `nl`: two shorts collapse
/// when they bridge the same unordered node pair with the same
/// `spec.r_short` — e.g. the gate-source short of M1 and the
/// drain-source short of a diode-tied M2 sharing both nodes. Opens
/// never collapse (each creates its own fresh node). Returns the full
/// partition — singletons included — ordered by representative index.
std::vector<FaultGroup> collapse_equivalences(const spice::Netlist& nl,
                                              const std::vector<StructuralFault>& faults,
                                              const InjectionSpec& spec = {});

}  // namespace lsl::fault
