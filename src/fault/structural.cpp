#include "fault/structural.hpp"

#include <array>

namespace lsl::fault {

using spice::Capacitor;
using spice::kGround;
using spice::Mosfet;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;

std::string fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kGateOpen: return "gate-open";
    case FaultClass::kDrainOpen: return "drain-open";
    case FaultClass::kSourceOpen: return "source-open";
    case FaultClass::kGateDrainShort: return "gate-drain-short";
    case FaultClass::kGateSourceShort: return "gate-source-short";
    case FaultClass::kDrainSourceShort: return "drain-source-short";
    case FaultClass::kCapacitorShort: return "capacitor-short";
  }
  return "?";
}

bool fault_class_from_name(const std::string& name, FaultClass& out) {
  for (const FaultClass c : kAllFaultClasses) {
    if (fault_class_name(c) == name) {
      out = c;
      return true;
    }
  }
  return false;
}

namespace {

bool has_prefix(const std::string& name, const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

}  // namespace

const std::vector<std::string>& test_circuitry_prefixes() {
  // The VH/VL window comparator (cp.cmp_*) stays IN the universe: the
  // mission-mode coarse loop needs it, so it is functional circuitry.
  static const std::vector<std::string> kPrefixes = {
      "term.wdata", "term.wbias", "cp.bist", "bias.",
  };
  return kPrefixes;
}

std::vector<StructuralFault> enumerate_structural_faults(
    const Netlist& nl, const std::vector<std::string>& prefixes,
    const std::vector<std::string>& exclude_prefixes) {
  std::vector<StructuralFault> out;
  for (const auto& dev : nl.devices()) {
    if (!dev.enabled) continue;
    if (!prefixes.empty() && !has_prefix(dev.name, prefixes)) continue;
    if (has_prefix(dev.name, exclude_prefixes)) continue;
    if (std::holds_alternative<Mosfet>(dev.impl)) {
      for (const FaultClass c :
           {FaultClass::kGateOpen, FaultClass::kDrainOpen, FaultClass::kSourceOpen,
            FaultClass::kGateDrainShort, FaultClass::kGateSourceShort,
            FaultClass::kDrainSourceShort}) {
        out.push_back({dev.name, c});
      }
    } else if (std::holds_alternative<Capacitor>(dev.impl)) {
      out.push_back({dev.name, FaultClass::kCapacitorShort});
    }
  }
  return out;
}

bool inject(Netlist& nl, const StructuralFault& fault, OpenLeak leak, NodeId vdd_node,
            const InjectionSpec& spec) {
  const auto di = nl.find_device(fault.device);
  if (!di.has_value()) return false;
  auto& dev = nl.device(*di);

  if (fault.cls == FaultClass::kCapacitorShort) {
    const auto* cap = std::get_if<Capacitor>(&dev.impl);
    if (cap == nullptr) return false;
    nl.add("flt." + fault.device + ".short", Resistor{cap->a, cap->b, spec.r_short});
    return true;
  }

  auto* mos = std::get_if<Mosfet>(&dev.impl);
  if (mos == nullptr) return false;

  // An open is a true disconnection: the dangling terminal keeps no path
  // to its former node. The solver's gmin holds the floating node (it
  // settles toward ground), which is the deterministic-pessimistic
  // reading of an undriven node.
  auto open_terminal = [&](NodeId& term, const char* tag) {
    const NodeId dangling = nl.fresh_node("flt." + fault.device + "." + tag);
    term = dangling;
    return dangling;
  };

  switch (fault.cls) {
    case FaultClass::kGateOpen: {
      // A floating gate's level is set by junction leakage toward a rail
      // — unknown in practice, hence the two leak variants.
      const NodeId dangling = open_terminal(mos->g, "g");
      const NodeId rail = (leak == OpenLeak::kToVdd) ? vdd_node : kGround;
      nl.add("flt." + fault.device + ".g.leak", Resistor{dangling, rail, spec.r_leak});
      return true;
    }
    case FaultClass::kDrainOpen:
      open_terminal(mos->d, "d");
      return true;
    case FaultClass::kSourceOpen:
      open_terminal(mos->s, "s");
      return true;
    case FaultClass::kGateDrainShort:
      nl.add("flt." + fault.device + ".gd", Resistor{mos->g, mos->d, spec.r_short});
      return true;
    case FaultClass::kGateSourceShort:
      nl.add("flt." + fault.device + ".gs", Resistor{mos->g, mos->s, spec.r_short});
      return true;
    case FaultClass::kDrainSourceShort:
      nl.add("flt." + fault.device + ".ds", Resistor{mos->d, mos->s, spec.r_short});
      return true;
    case FaultClass::kCapacitorShort:
      break;  // handled above
  }
  return false;
}

OpenLeak bulk_leak(const Netlist& nl, const StructuralFault& fault) {
  const auto di = nl.find_device(fault.device);
  if (di.has_value()) {
    if (const auto* mos = std::get_if<Mosfet>(&nl.device(*di).impl)) {
      return mos->type == spice::MosType::kNmos ? OpenLeak::kToGround : OpenLeak::kToVdd;
    }
  }
  return OpenLeak::kToGround;
}

std::size_t count_class(const std::vector<StructuralFault>& faults, FaultClass c) {
  std::size_t n = 0;
  for (const auto& f : faults) {
    if (f.cls == c) ++n;
  }
  return n;
}

}  // namespace lsl::fault
