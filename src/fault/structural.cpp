#include "fault/structural.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <utility>

namespace lsl::fault {

using spice::Capacitor;
using spice::kGround;
using spice::Mosfet;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;

std::string fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kGateOpen: return "gate-open";
    case FaultClass::kDrainOpen: return "drain-open";
    case FaultClass::kSourceOpen: return "source-open";
    case FaultClass::kGateDrainShort: return "gate-drain-short";
    case FaultClass::kGateSourceShort: return "gate-source-short";
    case FaultClass::kDrainSourceShort: return "drain-source-short";
    case FaultClass::kCapacitorShort: return "capacitor-short";
  }
  return "?";
}

bool fault_class_from_name(const std::string& name, FaultClass& out) {
  for (const FaultClass c : kAllFaultClasses) {
    if (fault_class_name(c) == name) {
      out = c;
      return true;
    }
  }
  return false;
}

namespace {

bool has_prefix(const std::string& name, const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

// Records the voltage-unknown indices of `nodes` (in the *current*,
// post-injection netlist) into the spec's touched list: deduplicated,
// ascending, ground excluded. See InjectionSpec::touched_unknowns().
void record_touched(const Netlist& nl, const InjectionSpec& spec,
                    std::initializer_list<NodeId> nodes) {
  auto& touched = spec.touched_unknowns();
  nl.reindex();
  for (const NodeId n : nodes) {
    if (n == kGround) continue;
    touched.push_back(nl.voltage_index(n));
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
}

}  // namespace

const std::vector<std::string>& test_circuitry_prefixes() {
  // The VH/VL window comparator (cp.cmp_*) stays IN the universe: the
  // mission-mode coarse loop needs it, so it is functional circuitry.
  static const std::vector<std::string> kPrefixes = {
      "term.wdata", "term.wbias", "cp.bist", "bias.",
  };
  return kPrefixes;
}

std::vector<StructuralFault> enumerate_structural_faults(
    const Netlist& nl, const std::vector<std::string>& prefixes,
    const std::vector<std::string>& exclude_prefixes) {
  std::vector<StructuralFault> out;
  for (const auto& dev : nl.devices()) {
    if (!dev.enabled) continue;
    if (!prefixes.empty() && !has_prefix(dev.name, prefixes)) continue;
    if (has_prefix(dev.name, exclude_prefixes)) continue;
    if (std::holds_alternative<Mosfet>(dev.impl)) {
      for (const FaultClass c :
           {FaultClass::kGateOpen, FaultClass::kDrainOpen, FaultClass::kSourceOpen,
            FaultClass::kGateDrainShort, FaultClass::kGateSourceShort,
            FaultClass::kDrainSourceShort}) {
        out.push_back({dev.name, c});
      }
    } else if (std::holds_alternative<Capacitor>(dev.impl)) {
      out.push_back({dev.name, FaultClass::kCapacitorShort});
    }
  }
  return out;
}

bool inject(Netlist& nl, const StructuralFault& fault, OpenLeak leak, NodeId vdd_node,
            const InjectionSpec& spec) {
  spec.touched_unknowns().clear();
  const auto di = nl.find_device(fault.device);
  if (!di.has_value()) return false;
  auto& dev = nl.device(*di);

  if (fault.cls == FaultClass::kCapacitorShort) {
    const auto* cap = std::get_if<Capacitor>(&dev.impl);
    if (cap == nullptr) return false;
    const NodeId a = cap->a;
    const NodeId b = cap->b;
    nl.add("flt." + fault.device + ".short", Resistor{a, b, spec.r_short});
    record_touched(nl, spec, {a, b});
    return true;
  }

  auto* mos = std::get_if<Mosfet>(&dev.impl);
  if (mos == nullptr) return false;

  // An open is a true disconnection: the dangling terminal keeps no path
  // to its former node. The solver's gmin holds the floating node (it
  // settles toward ground), which is the deterministic-pessimistic
  // reading of an undriven node.
  auto open_terminal = [&](NodeId& term, const char* tag) {
    const NodeId dangling = nl.fresh_node("flt." + fault.device + "." + tag);
    term = dangling;
    return dangling;
  };

  const NodeId g = mos->g;
  const NodeId d = mos->d;
  const NodeId s = mos->s;

  switch (fault.cls) {
    case FaultClass::kGateOpen: {
      // A floating gate's level is set by junction leakage toward a rail
      // — unknown in practice, hence the two leak variants.
      const NodeId dangling = open_terminal(mos->g, "g");
      const NodeId rail = (leak == OpenLeak::kToVdd) ? vdd_node : kGround;
      nl.add("flt." + fault.device + ".g.leak", Resistor{dangling, rail, spec.r_leak});
      record_touched(nl, spec, {g, dangling, rail, d, s});
      return true;
    }
    case FaultClass::kDrainOpen: {
      const NodeId dangling = open_terminal(mos->d, "d");
      record_touched(nl, spec, {d, dangling, g, s});
      return true;
    }
    case FaultClass::kSourceOpen: {
      const NodeId dangling = open_terminal(mos->s, "s");
      record_touched(nl, spec, {s, dangling, g, d});
      return true;
    }
    case FaultClass::kGateDrainShort:
      nl.add("flt." + fault.device + ".gd", Resistor{g, d, spec.r_short});
      record_touched(nl, spec, {g, d});
      return true;
    case FaultClass::kGateSourceShort:
      nl.add("flt." + fault.device + ".gs", Resistor{g, s, spec.r_short});
      record_touched(nl, spec, {g, s});
      return true;
    case FaultClass::kDrainSourceShort:
      nl.add("flt." + fault.device + ".ds", Resistor{d, s, spec.r_short});
      record_touched(nl, spec, {d, s});
      return true;
    case FaultClass::kCapacitorShort:
      break;  // handled above
  }
  return false;
}

OpenLeak bulk_leak(const Netlist& nl, const StructuralFault& fault) {
  const auto di = nl.find_device(fault.device);
  if (di.has_value()) {
    if (const auto* mos = std::get_if<Mosfet>(&nl.device(*di).impl)) {
      return mos->type == spice::MosType::kNmos ? OpenLeak::kToGround : OpenLeak::kToVdd;
    }
  }
  return OpenLeak::kToGround;
}

std::size_t count_class(const std::vector<StructuralFault>& faults, FaultClass c) {
  std::size_t n = 0;
  for (const auto& f : faults) {
    if (f.cls == c) ++n;
  }
  return n;
}

namespace {

// The injected-device name suffix for a short-class fault, or nullptr
// for the open classes (which are not expressible as rank-k updates).
const char* short_suffix(FaultClass c) {
  switch (c) {
    case FaultClass::kCapacitorShort: return ".short";
    case FaultClass::kGateDrainShort: return ".gd";
    case FaultClass::kGateSourceShort: return ".gs";
    case FaultClass::kDrainSourceShort: return ".ds";
    default: return nullptr;
  }
}

// The unordered node pair a short-class fault would bridge in golden
// netlist `nl`, or nullopt for opens / missing / wrong-kind devices.
std::optional<std::pair<NodeId, NodeId>> short_bridge(const Netlist& nl,
                                                      const StructuralFault& fault) {
  const auto di = nl.find_device(fault.device);
  if (!di.has_value()) return std::nullopt;
  const auto& dev = nl.devices()[*di];
  NodeId a = kGround;
  NodeId b = kGround;
  if (fault.cls == FaultClass::kCapacitorShort) {
    const auto* cap = std::get_if<Capacitor>(&dev.impl);
    if (cap == nullptr) return std::nullopt;
    a = cap->a;
    b = cap->b;
  } else {
    const auto* mos = std::get_if<Mosfet>(&dev.impl);
    if (mos == nullptr) return std::nullopt;
    switch (fault.cls) {
      case FaultClass::kGateDrainShort: a = mos->g; b = mos->d; break;
      case FaultClass::kGateSourceShort: a = mos->g; b = mos->s; break;
      case FaultClass::kDrainSourceShort: a = mos->d; b = mos->s; break;
      default: return std::nullopt;
    }
  }
  if (a > b) std::swap(a, b);
  return std::make_pair(a, b);
}

}  // namespace

std::optional<spice::LowRankOverlay> low_rank_overlay(const Netlist& nl,
                                                      const StructuralFault& fault) {
  const char* suffix = short_suffix(fault.cls);
  if (suffix == nullptr) return std::nullopt;
  const auto di = nl.find_device("flt." + fault.device + suffix);
  if (!di.has_value()) return std::nullopt;
  const auto& dev = nl.devices()[*di];
  if (!dev.enabled) return std::nullopt;
  const auto* r = std::get_if<Resistor>(&dev.impl);
  if (r == nullptr || !(r->ohms > 0.0)) return std::nullopt;

  nl.reindex();
  spice::LowRankOverlay ov;
  ov.skip_devices.push_back(*di);
  if (r->a != r->b) {
    spice::LowRankOverlay::Term t;
    t.a = (r->a == kGround) ? -1
                            : static_cast<std::ptrdiff_t>(nl.voltage_index(r->a));
    t.b = (r->b == kGround) ? -1
                            : static_cast<std::ptrdiff_t>(nl.voltage_index(r->b));
    t.g = 1.0 / r->ohms;
    ov.terms.push_back(t);
  }
  return ov;
}

std::vector<FaultGroup> collapse_equivalences(const Netlist& nl,
                                              const std::vector<StructuralFault>& faults,
                                              const InjectionSpec& spec) {
  // Key = the unordered bridged node pair. spec.r_short is shared by
  // every short in one campaign, so within a single call the pair alone
  // decides equivalence; it is named in the proof for the log.
  std::map<std::pair<NodeId, NodeId>, std::vector<std::size_t>> by_bridge;
  std::vector<FaultGroup> out;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto bridge = short_bridge(nl, faults[i]);
    if (!bridge.has_value()) {
      // Opens (fresh dangling node each) and unresolvable faults never
      // collapse: singleton class, no proof needed.
      FaultGroup g;
      g.representative = i;
      g.members = {i};
      out.push_back(std::move(g));
      continue;
    }
    by_bridge[*bridge].push_back(i);
  }
  for (auto& [bridge, members] : by_bridge) {
    FaultGroup g;
    g.representative = members.front();  // insertion order is ascending
    g.members = std::move(members);
    if (g.members.size() > 1) {
      std::string proof = "bridge " + nl.node_name(bridge.first) + "-" +
                          nl.node_name(bridge.second) + " @ r_short=" +
                          std::to_string(spec.r_short) + ": ";
      for (std::size_t j = 0; j < g.members.size(); ++j) {
        if (j != 0) proof += ", ";
        proof += faults[g.members[j]].describe();
      }
      proof += " stamp identical conductance between the same node pair";
      g.proof = std::move(proof);
    }
    out.push_back(std::move(g));
  }
  std::sort(out.begin(), out.end(), [](const FaultGroup& a, const FaultGroup& b) {
    return a.representative < b.representative;
  });
  return out;
}

}  // namespace lsl::fault
