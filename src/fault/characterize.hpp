// Analog fault characterization: measures a (possibly faulted) SPICE-
// level link frontend with a handful of DC solves and maps the result
// onto the behavioral model's parameters. This is the industry-standard
// mixed-signal fault-simulation flow: structural fidelity at the cell
// level, loop dynamics at the behavioral level.
//
// Measurements:
//  - line differential for both data vectors  -> swing scale / offset
//  - pump currents with Vc clamped mid-window -> weak/strong current scales
//  - clamp leakage with pumps idle            -> Vc leakage
//  - balance node voltage                     -> Vp offset / broken balance
//  - window comparator decisions at forced Vc -> stuck / dead flags
#pragma once

#include "behav/pump.hpp"
#include "behav/synchronizer.hpp"
#include "cells/link_frontend.hpp"
#include "link/link.hpp"
#include "spice/seed.hpp"
#include "spice/solve_status.hpp"

namespace lsl::fault {

/// Raw electrical measurements of a frontend.
struct FrontendMeasurements {
  bool converged = true;   // every solve converged
  /// Status of the first failed solve (kConverged when all passed).
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  /// Total Newton iterations across all measurement solves.
  long iterations = 0;
  double diff1 = 0.0;      // line differential, data = 1
  double diff0 = 0.0;      // line differential, data = 0
  double i_up = 0.0;       // weak pump source current into clamped Vc (A)
  double i_dn = 0.0;       // weak pump sink current out of clamped Vc (A)
  double i_upst = 0.0;     // strong pump currents
  double i_dnst = 0.0;
  double leak = 0.0;       // idle current into Vc (A, positive charges up)
  double vp_at_mid = 0.0;  // balance node with Vc clamped mid-window
  bool win_hi_at_high = false;  // window comparator decisions
  bool win_hi_at_mid = false;
  bool win_lo_at_low = false;
  bool win_lo_at_mid = false;
};

/// Measures a frontend (golden or faulted). `solve` threads per-fault
/// budgets (timeout, fallback policy) into every measurement solve.
/// `hints` (optional) supplies golden warm-start seeds / seed capture
/// and the fault's low-rank overlay (seed keys "char.line.*",
/// "char.pump.*", "char.win.*"); measurement values are identical with
/// or without it.
FrontendMeasurements measure_frontend(const cells::LinkFrontend& fe,
                                      const spice::DcOptions& solve = {},
                                      const spice::SolveHints* hints = nullptr);

/// Behavioral parameter overrides derived from faulty-vs-golden
/// measurements.
struct BehavioralSignature {
  bool characterized = true;  // false when solves failed to converge
  /// Propagated solver status from the faulty measurements.
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  double swing_scale = 1.0;
  double offset_shift = 0.0;  // differential offset at the slicer (V)
  double i_up_scale = 1.0;
  double i_dn_scale = 1.0;
  double strong_scale = 1.0;
  double leak = 0.0;          // A
  double vp_offset = 0.0;     // V
  bool balance_broken = false;
  behav::SyncFaults sync_faults;
};

BehavioralSignature derive_signature(const FrontendMeasurements& golden,
                                     const FrontendMeasurements& faulty);

/// Applies a signature to link parameters (starting from the healthy
/// defaults) for the behavioral BIST run.
lsl::link::LinkParams apply_signature(const lsl::link::LinkParams& base,
                                      const BehavioralSignature& sig);

}  // namespace lsl::fault
