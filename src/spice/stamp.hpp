// Modified-nodal-analysis stamping: turns a Netlist plus a linearization
// point into the Newton-iteration linear system G*x = b.
//
// Unknown ordering: node voltages for nodes 1..N-1 (ground excluded),
// followed by one branch current per enabled VSource/Vcvs, in device
// order (see Netlist::reindex).
#pragma once

#include <unordered_map>
#include <vector>

#include "spice/matrix.hpp"
#include "spice/netlist.hpp"

namespace lsl::spice {

/// Large-signal square-law MOSFET evaluation result: drain current
/// (flowing d -> s through the channel, negative for PMOS in normal
/// operation) and its partial derivatives w.r.t. the three terminal
/// voltages. The general 3-terminal Jacobian handles reverse conduction
/// (vds < 0) without special-casing in the stamp.
struct MosEval {
  double id = 0.0;
  double d_vd = 0.0;
  double d_vg = 0.0;
  double d_vs = 0.0;
};

/// Evaluates the level-1 model at terminal voltages (vd, vg, vs).
MosEval eval_mosfet(const Mosfet& m, const ModelCard& card, double vd, double vg, double vs);

/// Companion-model integration method for capacitors in transient
/// analysis. Backward Euler is L-stable and the campaign default;
/// trapezoidal is second-order accurate and the cross-check the
/// MNA-invariant property tests lean on (two independent
/// discretizations agreeing on an analytic waveform).
enum class Integrator { kBackwardEuler, kTrapezoidal };

/// Low-rank description of a small topological edit (a fault short) on
/// top of a base netlist: the listed devices are *excluded* from the
/// matrix stamps, and each term contributes the rank-1 conductance
/// update g·u·uᵀ with u = e_a − e_b (index −1 = ground, dropping that
/// component). The overlay is a pure optimization hint for the sparse
/// solve path: the excluded devices are still physically present in the
/// netlist, so any overlay-unaware path (dense fallback, stamp_system,
/// the transient stepper) stamps them normally and produces the exact
/// same system. Contract: terms.size() <= 4, every g > 0, and the
/// skipped devices must not precede any MOSFET in device order (the
/// workspace shares per-structure MOSFET slot tables across
/// hash-equal netlists by raw device index).
struct LowRankOverlay {
  struct Term {
    std::ptrdiff_t a = -1;  // MNA unknown index, -1 = ground
    std::ptrdiff_t b = -1;
    double g = 0.0;         // conductance (siemens)
  };
  std::vector<std::size_t> skip_devices;
  std::vector<Term> terms;
};

/// Inputs shared by DC and transient stamping.
struct StampContext {
  const Netlist* nl = nullptr;
  /// Conductance from every node to ground; keeps floating nodes (e.g.
  /// open-fault gates) well-posed and aids Newton convergence.
  double gmin = 1e-12;
  /// Scale factor applied to all independent sources (source stepping).
  double source_scale = 1.0;
  /// Timestep for the capacitor companion models; 0 selects DC
  /// (capacitors open).
  double dt = 0.0;
  /// Companion-model discretization used when dt > 0.
  Integrator integrator = Integrator::kBackwardEuler;
  /// Node voltages (indexed by NodeId) at the previous accepted time
  /// point. Required when dt > 0.
  const std::vector<double>* prev_node_v = nullptr;
  /// Capacitor branch currents i(a->b) at the previous accepted time
  /// point, indexed by device index. Required when dt > 0 and the
  /// integrator is trapezoidal (the trapezoidal companion carries the
  /// previous current as part of its history term).
  const std::vector<double>* prev_cap_i = nullptr;
  /// Per-device value overrides for VSource elements (waveform drive),
  /// keyed by device index.
  const std::unordered_map<std::size_t, double>* vsrc_override = nullptr;
  /// Optional low-rank edit: skip the listed devices in the matrix
  /// stamps and account for the terms via Sherman–Morrison–Woodbury
  /// (sparse path) or by the devices' own stamps (dense path, which
  /// ignores the overlay and stamps the full netlist — same system).
  const LowRankOverlay* overlay = nullptr;
};

/// Voltage of `node` under MNA solution vector `x`.
double node_voltage(const Netlist& nl, const std::vector<double>& x, NodeId node);

/// Builds the linearized MNA system about solution estimate `x`.
/// G and b are resized and zeroed internally.
void stamp_system(const StampContext& ctx, const std::vector<double>& x, Matrix& g,
                  std::vector<double>& b);

/// True nonlinear MNA residual r = G(x)·x − b(x) evaluated at `x`: the
/// stamp folds each device's affine remainder into b, so at the
/// linearization point the linear combination reproduces the device's
/// actual current and r is the exact KCL/constraint residual — node
/// rows in amperes (including the gmin leak of the system being
/// solved), branch rows in volts.
std::vector<double> mna_residual(const StampContext& ctx, const std::vector<double>& x);

/// Max |r| over the node-voltage (KCL) rows of mna_residual, in
/// amperes. The invariant the property tests assert on every accepted
/// DC and transient solution.
double kcl_residual_norm(const StampContext& ctx, const std::vector<double>& x);

}  // namespace lsl::spice
