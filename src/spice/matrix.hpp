// Dense linear algebra for the MNA solver. Circuit matrices in this
// project are small (tens of unknowns per analog cell), so dense LU with
// partial pivoting is both simpler and faster than a sparse package.
#pragma once

#include <cstddef>
#include <vector>

namespace lsl::spice {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void fill(double v);
  void resize(std::size_t rows, std::size_t cols);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b destructively: factors `a` in place (LU with partial
/// pivoting, rows of `b` permuted in tandem) and overwrites `b` with the
/// solution. Performs no heap allocations — this is the hot-loop
/// entry point; SolverWorkspace owns the buffers. Returns false if the
/// matrix is numerically singular (pivot below `pivot_floor`); `a` and
/// `b` hold partial factorization state in that case.
bool lu_solve_inplace(Matrix& a, std::vector<double>& b, double pivot_floor = 1e-18);

/// Convenience wrapper over lu_solve_inplace taking copies, preserving
/// the original signature: `x` is only written on success.
bool lu_solve(Matrix a, std::vector<double> b, std::vector<double>& x,
              double pivot_floor = 1e-18);

}  // namespace lsl::spice
