#include "spice/dc.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "spice/matrix.hpp"
#include "spice/stamp.hpp"
#include "spice/workspace.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace lsl::spice {

double DcResult::v(const Netlist& nl, NodeId node) const {
  return node_voltage(nl, x, node);
}

double DcResult::v(const Netlist& nl, const std::string& node_name) const {
  const auto id = nl.find_node(node_name);
  if (!id.has_value()) throw std::invalid_argument("unknown node: " + node_name);
  return node_voltage(nl, x, *id);
}

double DcResult::i(const Netlist& nl, const std::string& device_name) const {
  const auto di = nl.find_device(device_name);
  if (!di.has_value()) throw std::invalid_argument("unknown device: " + device_name);
  return x.at(nl.branch_index(*di));
}

namespace {

using Clock = std::chrono::steady_clock;

struct Deadline {
  bool armed = false;
  Clock::time_point at{};

  static Deadline from_timeout(double timeout_sec, Clock::time_point start) {
    Deadline d;
    if (timeout_sec > 0.0) {
      d.armed = true;
      d.at = start + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_sec));
    }
    return d;
  }
  bool expired() const { return armed && Clock::now() >= at; }
};

/// One damped Newton loop at fixed gmin / source scale. x is updated in
/// place with the best iterate whatever the outcome. Diagnostics track
/// the last iteration's worst voltage update and its unknown index.
/// All matrix/vector state lives in `ws`: after the workspace has seen
/// this topology once, the loop body performs no heap allocations.
SolveStatus newton_loop(const Netlist& nl, double gmin, double source_scale,
                        const DcOptions& opts, const Deadline& deadline, SolverWorkspace& ws,
                        std::vector<double>& x, SolveDiagnostics& diag) {
  std::vector<double>& x_new = ws.iterate_scratch();
  StampContext ctx;
  ctx.nl = &nl;
  ctx.gmin = gmin;
  ctx.source_scale = source_scale;
  ctx.overlay = opts.overlay;

  const std::size_t n = nl.unknown_count();
  if (x.size() != n) x.assign(n, 0.0);
  const std::size_t n_volts = nl.node_count() - 1;

  // The worst-update node is tracked by unknown index and resolved to a
  // name once, on exit — node_name() returns a std::string and the loop
  // body must stay allocation-free.
  bool have_worst = false;
  std::size_t worst = 0;
  const auto resolve_worst = [&] {
    // Unknown k is the voltage of node k+1 (Netlist::voltage_index).
    if (have_worst) diag.worst_node = nl.node_name(static_cast<NodeId>(worst + 1));
  };

  for (int it = 0; it < opts.max_iterations; ++it) {
    if (deadline.expired()) {
      resolve_worst();
      return SolveStatus::kTimeout;
    }
    ++diag.iterations;
    if (!ws.solve_newton_system(ctx, x, x_new, &diag)) {
      resolve_worst();
      return SolveStatus::kSingularMatrix;
    }

    // Damp voltage updates; branch currents follow freely.
    double max_dv = 0.0;
    std::size_t it_worst = 0;
    for (std::size_t k = 0; k < n_volts; ++k) {
      double dv = x_new[k] - x[k];
      if (!std::isfinite(dv)) {
        resolve_worst();
        return SolveStatus::kNonFinite;
      }
      if (std::fabs(dv) > max_dv) {
        max_dv = std::fabs(dv);
        it_worst = k;
      }
      dv = std::clamp(dv, -opts.damping_limit, opts.damping_limit);
      x[k] += dv;
    }
    for (std::size_t k = n_volts; k < n; ++k) {
      if (!std::isfinite(x_new[k])) {
        resolve_worst();
        return SolveStatus::kNonFinite;
      }
      x[k] = x_new[k];
    }

    if (n_volts > 0) {
      worst = it_worst;
      have_worst = true;
    }
    diag.final_max_dv = max_dv;
    if (max_dv < opts.abs_tol) {
      resolve_worst();
      return SolveStatus::kConverged;
    }
  }
  resolve_worst();
  return SolveStatus::kMaxIterations;
}

/// gmin continuation: solve a heavily leaky circuit, then tighten.
/// `warm` (optional) seeds the first continuation level — the campaign's
/// golden operating point is usually far closer to the faulted solution
/// than the flat start, and every level still converges to the same
/// per-level tolerance, so the seed changes cost, not meaning.
SolveStatus gmin_stepping(const Netlist& nl, const DcOptions& opts, const Deadline& deadline,
                          SolverWorkspace& ws, std::vector<double>& x, SolveDiagnostics& diag,
                          const std::vector<double>* warm = nullptr) {
  if (warm != nullptr && warm->size() == nl.unknown_count()) {
    x = *warm;
  } else {
    x.assign(nl.unknown_count(), 0.0);
  }
  SolveStatus st = SolveStatus::kConverged;
  for (double gmin = opts.gmin_start; gmin >= opts.gmin_final * 0.99; gmin *= 0.1) {
    st = newton_loop(nl, gmin, 1.0, opts, deadline, ws, x, diag);
    if (st != SolveStatus::kConverged) return st;
  }
  return st;
}

/// Source-stepping homotopy: ramp all independent sources from 0.
SolveStatus source_stepping(const Netlist& nl, const DcOptions& opts, const Deadline& deadline,
                            SolverWorkspace& ws, std::vector<double>& x, SolveDiagnostics& diag) {
  x.assign(nl.unknown_count(), 0.0);
  SolveStatus st = SolveStatus::kConverged;
  for (double scale = 0.1; scale <= 1.0001; scale += 0.1) {
    st = newton_loop(nl, opts.gmin_final, std::min(scale, 1.0), opts, deadline, ws, x, diag);
    if (st != SolveStatus::kConverged) return st;
  }
  return st;
}

}  // namespace

namespace {

/// One counter per ladder rung, so the snapshot shows how often each
/// fallback actually earns its keep. The rung names are a small closed
/// set, so each gets a cached handle — the generic string-concat lookup
/// only runs for a name this table has never seen.
util::Counter& rung_counter(const char* rung) {
  auto& m = util::metrics();
  static util::Counter& newton = m.counter("solver.dc.rung.newton");
  static util::Counter& warm_start = m.counter("solver.dc.rung.golden-warm-start");
  static util::Counter& golden_gmin = m.counter("solver.dc.rung.golden-gmin");
  static util::Counter& gmin_step = m.counter("solver.dc.rung.gmin-step");
  static util::Counter& source_step = m.counter("solver.dc.rung.source-step");
  static util::Counter& heavy_damping = m.counter("solver.dc.rung.heavy-damping");
  static util::Counter& relaxed_tol = m.counter("solver.dc.rung.relaxed-tol");
  static util::Counter& exhausted = m.counter("solver.dc.rung.exhausted");
  if (std::strcmp(rung, "newton") == 0) return newton;
  if (std::strcmp(rung, "golden-warm-start") == 0) return warm_start;
  if (std::strcmp(rung, "golden-gmin") == 0) return golden_gmin;
  if (std::strcmp(rung, "gmin-step") == 0) return gmin_step;
  if (std::strcmp(rung, "source-step") == 0) return source_step;
  if (std::strcmp(rung, "heavy-damping") == 0) return heavy_damping;
  if (std::strcmp(rung, "relaxed-tol") == 0) return relaxed_tol;
  if (std::strcmp(rung, "exhausted") == 0) return exhausted;
  return m.counter(std::string("solver.dc.rung.") + rung);
}

/// Per-solve bookkeeping into the metrics registry. Instrument handles
/// are resolved once and cached — the per-solve cost is a handful of
/// relaxed atomic adds. Instrument names: docs/OBSERVABILITY.md.
void record_dc_metrics(const DcResult& result, const char* rung,
                       const SolverWorkspace::Stats& ws_before,
                       const SolverWorkspace::Stats& ws_after) {
  auto& m = util::metrics();
  static util::Counter& solves = m.counter("solver.dc.solves");
  static util::Counter& failures = m.counter("solver.dc.failures");
  static util::Counter& iterations = m.counter("solver.dc.newton_iterations");
  static util::MetricHistogram& per_solve = m.histogram("solver.dc.newton_per_solve");
  static util::MetricHistogram& seconds = m.histogram("solver.dc.solve_seconds");
  static util::MetricHistogram& rung_depth = m.histogram("solver.dc.rung_depth");
  static util::Counter& symbolic_builds = m.counter("solver.dc.symbolic_builds");
  static util::Counter& symbolic_reuse = m.counter("solver.dc.symbolic_reuse");
  static util::Counter& linear_stamp_builds = m.counter("solver.dc.linear_stamp_builds");
  static util::Counter& linear_stamp_reuse = m.counter("solver.dc.linear_stamp_reuse");
  static util::Counter& sparse_solves = m.counter("solver.dc.sparse_solves");
  static util::Counter& dense_solves = m.counter("solver.dc.dense_solves");
  static util::Counter& dense_fallbacks = m.counter("solver.dc.dense_fallbacks");
  static util::Counter& refinement_steps = m.counter("solver.dc.refinement_steps");
  static util::Counter& smw_solves = m.counter("campaign.smw.solves");
  static util::Counter& smw_fallbacks = m.counter("campaign.smw.fallbacks");
  solves.add(1);
  if (!result.converged) failures.add(1);
  iterations.add(result.diag.iterations);
  per_solve.observe(static_cast<double>(result.diag.iterations));
  seconds.observe(result.diag.elapsed_sec);
  rung_depth.observe(static_cast<double>(result.diag.fallback_depth));
  rung_counter(rung).add(1);
  symbolic_builds.add(ws_after.symbolic_builds - ws_before.symbolic_builds);
  symbolic_reuse.add(ws_after.symbolic_reuse - ws_before.symbolic_reuse);
  linear_stamp_builds.add(ws_after.linear_stamp_builds - ws_before.linear_stamp_builds);
  linear_stamp_reuse.add(ws_after.linear_stamp_reuse - ws_before.linear_stamp_reuse);
  sparse_solves.add(ws_after.sparse_solves - ws_before.sparse_solves);
  dense_solves.add(ws_after.dense_solves - ws_before.dense_solves);
  dense_fallbacks.add(ws_after.dense_fallbacks - ws_before.dense_fallbacks);
  refinement_steps.add(ws_after.refinement_steps - ws_before.refinement_steps);
  smw_solves.add(ws_after.smw_solves - ws_before.smw_solves);
  smw_fallbacks.add(ws_after.smw_fallbacks - ws_before.smw_fallbacks);
  if (util::Metrics::detailed_timing()) {
    static util::MetricHistogram& stamp = m.histogram("solver.dc.stamp_seconds");
    static util::MetricHistogram& factor = m.histogram("solver.dc.factor_seconds");
    stamp.observe(result.diag.stamp_sec);
    factor.observe(result.diag.factor_sec);
  }
}

}  // namespace

DcResult solve_dc(const Netlist& nl, const DcOptions& opts) {
  return solve_dc(nl, opts, SolverWorkspace::tls());
}

DcResult solve_dc(const Netlist& nl, const DcOptions& opts, SolverWorkspace& ws) {
  nl.reindex();
  util::TraceSpan solve_span("solve_dc", "solver");
  const auto start = Clock::now();
  const Deadline deadline = Deadline::from_timeout(opts.timeout_sec, start);
  const SolverWorkspace::Stats ws_before = ws.stats();

  // A pending golden seed is taken — and thereby cleared — from the
  // workspace unconditionally, so a stale seed can never leak into a
  // later, unrelated solve on this workspace.
  std::vector<double> seed;
  const bool have_seed = ws.take_pending_seed(seed);
  ws.reset_smw_suppression();

  DcResult result;
  result.x = opts.initial_guess;

  const auto finish = [&](SolveStatus st, int depth, const char* rung) {
    result.status = st;
    result.converged = (st == SolveStatus::kConverged);
    result.diag.fallback_depth = depth;
    result.diag.fallback = rung;
    result.diag.elapsed_sec = std::chrono::duration<double>(Clock::now() - start).count();
    result.iterations = result.diag.iterations;
    solve_span.arg("iterations", static_cast<double>(result.diag.iterations));
    solve_span.arg("rung", static_cast<double>(depth));
    record_dc_metrics(result, rung, ws_before, ws.stats());
    if (!result.converged) {
      util::log_warn("solve_dc: " + to_string(st) + " after " +
                     std::to_string(result.diag.iterations) + " Newton iterations (rung: " +
                     std::string(rung) + ", worst node: " + result.diag.worst_node + ")");
    }
    return result;
  };

  // Rung 0a — golden warm start (campaign): plain Newton from the
  // shared golden operating point. Only runs when the caller supplied
  // no explicit guess; on failure it falls through to the unchanged
  // ladder, so the rung can only add an attempt, never remove one.
  bool seed_usable = false;
  if (have_seed && result.x.empty()) {
    auto& m = util::metrics();
    static util::Counter& warm_hits = m.counter("campaign.warm_start.hits");
    static util::Counter& warm_rejects = m.counter("campaign.warm_start.rejects");
    if (seed.size() == nl.unknown_count()) {
      seed_usable = true;
      util::TraceSpan span("dc.rung.golden-warm-start", "solver");
      result.x = seed;  // keep the seed: the golden-gmin rung reuses it
      const SolveStatus st =
          newton_loop(nl, opts.gmin_final, 1.0, opts, deadline, ws, result.x, result.diag);
      if (st == SolveStatus::kConverged) {
        warm_hits.add(1);
        return finish(st, 0, "golden-warm-start");
      }
      if (st == SolveStatus::kTimeout) return finish(st, 0, "golden-warm-start");
      warm_rejects.add(1);
      result.x.clear();  // deeper rungs restart from zero, as before
    } else {
      // Seed built for a different structure (e.g. an open fault added
      // unknowns the golden solution cannot know about).
      warm_rejects.add(1);
    }
  }

  // Rung 0 — plain Newton from the supplied guess: cheap and usually
  // enough when warm-starting sweeps.
  if (!result.x.empty()) {
    util::TraceSpan span("dc.rung.newton", "solver");
    const SolveStatus st =
        newton_loop(nl, opts.gmin_final, 1.0, opts, deadline, ws, result.x, result.diag);
    if (st == SolveStatus::kConverged) return finish(st, 0, "newton");
    if (st == SolveStatus::kTimeout) return finish(st, 0, "newton");
  }

  // Rung 1a — gmin stepping from the golden operating point. A fault
  // whose plain warm start diverges usually still sits much closer to
  // the golden solution than to zero; continuation from the seed cuts
  // the ladder's dominant cost. A failure falls through to the flat
  // start, so the rung can only add an attempt.
  SolveStatus st;
  if (seed_usable) {
    util::TraceSpan span("dc.rung.golden-gmin", "solver");
    st = gmin_stepping(nl, opts, deadline, ws, result.x, result.diag, &seed);
    if (st == SolveStatus::kConverged || st == SolveStatus::kTimeout) {
      return finish(st, 1, "golden-gmin");
    }
  }

  // Rung 1 — gmin stepping.
  {
    util::TraceSpan span("dc.rung.gmin-step", "solver");
    st = gmin_stepping(nl, opts, deadline, ws, result.x, result.diag);
  }
  if (st == SolveStatus::kConverged || st == SolveStatus::kTimeout) {
    return finish(st, 1, "gmin-step");
  }
  SolveStatus last = st;

  // Rung 2 — source stepping.
  if (opts.allow_source_stepping) {
    util::TraceSpan span("dc.rung.source-step", "solver");
    st = source_stepping(nl, opts, deadline, ws, result.x, result.diag);
    if (st == SolveStatus::kConverged || st == SolveStatus::kTimeout) {
      return finish(st, 2, "source-step");
    }
    last = st;
  }

  // Rung 3 — heavier damping: small, safe steps with a bigger budget.
  if (opts.allow_heavy_damping) {
    util::TraceSpan span("dc.rung.heavy-damping", "solver");
    DcOptions damped = opts;
    damped.damping_limit = opts.damping_limit / 8.0;
    damped.max_iterations = opts.max_iterations * 3;
    st = gmin_stepping(nl, damped, deadline, ws, result.x, result.diag);
    if (st == SolveStatus::kConverged || st == SolveStatus::kTimeout) {
      return finish(st, 3, "heavy-damping");
    }
    last = st;
  }

  // Rung 4 — relaxed tolerance on top of the heavy damping. A looser
  // operating point still classifies most faults correctly; callers can
  // see the rung in the diagnostics and weigh the result accordingly.
  if (opts.allow_relaxed_tol) {
    util::TraceSpan span("dc.rung.relaxed-tol", "solver");
    DcOptions relaxed = opts;
    relaxed.damping_limit = opts.damping_limit / 8.0;
    relaxed.max_iterations = opts.max_iterations * 3;
    relaxed.abs_tol = opts.abs_tol * opts.relaxed_tol_factor;
    st = gmin_stepping(nl, relaxed, deadline, ws, result.x, result.diag);
    if (st == SolveStatus::kConverged || st == SolveStatus::kTimeout) {
      return finish(st, 4, "relaxed-tol");
    }
    last = st;
  }

  return finish(last, 4, "exhausted");
}

std::vector<DcResult> dc_sweep(const Netlist& nl, const std::string& vsrc_name,
                               const std::vector<double>& values, const DcOptions& opts) {
  return dc_sweep(nl, vsrc_name, values, opts, SolverWorkspace::tls());
}

std::vector<DcResult> dc_sweep(const Netlist& nl, const std::string& vsrc_name,
                               const std::vector<double>& values, const DcOptions& opts,
                               SolverWorkspace& ws) {
  const auto di = nl.find_device(vsrc_name);
  if (!di.has_value()) throw std::invalid_argument("unknown source: " + vsrc_name);

  Netlist work = nl;  // value copy; we mutate the source value per point
  if (std::get_if<VSource>(&work.devices()[*di].impl) == nullptr) {
    throw std::invalid_argument(vsrc_name + " is not a VSource");
  }

  std::vector<DcResult> out;
  out.reserve(values.size());
  DcOptions point_opts = opts;
  for (const double v : values) {
    // Value-only edit: the solver rereads source values every iteration,
    // so the sweep reuses one symbolic factorization across all points.
    work.set_vsource_volts(*di, v);
    DcResult r = solve_dc(work, point_opts, ws);
    point_opts.initial_guess = r.x;  // warm start the next point
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace lsl::spice
