#include "spice/dc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/matrix.hpp"
#include "spice/stamp.hpp"
#include "util/log.hpp"

namespace lsl::spice {

double DcResult::v(const Netlist& nl, NodeId node) const {
  return node_voltage(nl, x, node);
}

double DcResult::v(const Netlist& nl, const std::string& node_name) const {
  const auto id = nl.find_node(node_name);
  if (!id.has_value()) throw std::invalid_argument("unknown node: " + node_name);
  return node_voltage(nl, x, *id);
}

double DcResult::i(const Netlist& nl, const std::string& device_name) const {
  const auto di = nl.find_device(device_name);
  if (!di.has_value()) throw std::invalid_argument("unknown device: " + device_name);
  return x.at(nl.branch_index(*di));
}

namespace {

/// One damped Newton loop at fixed gmin / source scale. Returns true on
/// convergence; x is updated in place with the best iterate either way.
bool newton_loop(const Netlist& nl, double gmin, double source_scale, const DcOptions& opts,
                 std::vector<double>& x, int& iterations_used) {
  Matrix g;
  std::vector<double> b;
  std::vector<double> x_new;
  StampContext ctx;
  ctx.nl = &nl;
  ctx.gmin = gmin;
  ctx.source_scale = source_scale;

  const std::size_t n = nl.unknown_count();
  if (x.size() != n) x.assign(n, 0.0);
  const std::size_t n_volts = nl.node_count() - 1;

  for (int it = 0; it < opts.max_iterations; ++it) {
    ++iterations_used;
    stamp_system(ctx, x, g, b);
    if (!lu_solve(g, b, x_new)) return false;

    // Damp voltage updates; branch currents follow freely.
    double max_dv = 0.0;
    for (std::size_t k = 0; k < n_volts; ++k) {
      double dv = x_new[k] - x[k];
      max_dv = std::max(max_dv, std::fabs(dv));
      dv = std::clamp(dv, -opts.damping_limit, opts.damping_limit);
      x[k] += dv;
    }
    for (std::size_t k = n_volts; k < n; ++k) x[k] = x_new[k];

    if (max_dv < opts.abs_tol) return true;
  }
  return false;
}

}  // namespace

DcResult solve_dc(const Netlist& nl, const DcOptions& opts) {
  nl.reindex();
  DcResult result;
  result.x = opts.initial_guess;

  // Plain Newton from the supplied guess first: cheap and usually enough
  // when warm-starting sweeps.
  if (!result.x.empty() &&
      newton_loop(nl, opts.gmin_final, 1.0, opts, result.x, result.iterations)) {
    result.converged = true;
    return result;
  }

  // gmin stepping: solve an easy (heavily leaky) circuit, then tighten.
  result.x.assign(nl.unknown_count(), 0.0);
  bool ok = true;
  for (double gmin = opts.gmin_start; gmin >= opts.gmin_final * 0.99; gmin *= 0.1) {
    ok = newton_loop(nl, gmin, 1.0, opts, result.x, result.iterations);
    if (!ok) break;
  }
  if (ok) {
    result.converged = true;
    return result;
  }

  if (opts.allow_source_stepping) {
    // Source stepping homotopy: ramp all independent sources from 0.
    result.x.assign(nl.unknown_count(), 0.0);
    ok = true;
    for (double scale = 0.1; scale <= 1.0001; scale += 0.1) {
      ok = newton_loop(nl, opts.gmin_final, std::min(scale, 1.0), opts, result.x,
                       result.iterations);
      if (!ok) break;
    }
    if (ok) {
      result.converged = true;
      return result;
    }
  }

  util::log_warn("solve_dc: failed to converge (" + std::to_string(result.iterations) +
                 " total Newton iterations)");
  result.converged = false;
  return result;
}

std::vector<DcResult> dc_sweep(const Netlist& nl, const std::string& vsrc_name,
                               const std::vector<double>& values, const DcOptions& opts) {
  const auto di = nl.find_device(vsrc_name);
  if (!di.has_value()) throw std::invalid_argument("unknown source: " + vsrc_name);

  Netlist work = nl;  // value copy; we mutate the source value per point
  auto* src = std::get_if<VSource>(&work.device(*di).impl);
  if (src == nullptr) throw std::invalid_argument(vsrc_name + " is not a VSource");

  std::vector<DcResult> out;
  out.reserve(values.size());
  DcOptions point_opts = opts;
  for (const double v : values) {
    src->volts = v;
    DcResult r = solve_dc(work, point_opts);
    point_opts.initial_guess = r.x;  // warm start the next point
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace lsl::spice
