#include "spice/netlist.hpp"

#include <atomic>
#include <stdexcept>

namespace lsl::spice {

namespace {

/// Process-wide monotonic source of generation stamps. Relaxed is
/// enough: uniqueness is all the caches need, not ordering.
std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void Netlist::touch() { generation_ = next_generation(); }

Netlist::Netlist() : generation_(next_generation()) {
  node_names_.push_back("0");
  node_by_name_.emplace("0", kGround);
}

Netlist::Netlist(const Netlist& other)
    : node_names_(other.node_names_),
      node_by_name_(other.node_by_name_),
      devices_(other.devices_),
      device_by_name_(other.device_by_name_),
      model_(other.model_),
      fresh_counter_(other.fresh_counter_),
      generation_(next_generation()),
      branch_of_device_(other.branch_of_device_),
      n_unknowns_(other.n_unknowns_),
      index_valid_(other.index_valid_) {}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this == &other) return *this;
  node_names_ = other.node_names_;
  node_by_name_ = other.node_by_name_;
  devices_ = other.devices_;
  device_by_name_ = other.device_by_name_;
  model_ = other.model_;
  fresh_counter_ = other.fresh_counter_;
  generation_ = next_generation();
  branch_of_device_ = other.branch_of_device_;
  n_unknowns_ = other.n_unknowns_;
  index_valid_ = other.index_valid_;
  return *this;
}

Netlist::Netlist(Netlist&& other) noexcept
    : node_names_(std::move(other.node_names_)),
      node_by_name_(std::move(other.node_by_name_)),
      devices_(std::move(other.devices_)),
      device_by_name_(std::move(other.device_by_name_)),
      model_(other.model_),
      fresh_counter_(other.fresh_counter_),
      // The destination is content-identical to the pre-move source, so
      // it may keep the stamp (warm caches stay warm across a move);
      // the gutted source gets a fresh one so it can never alias.
      generation_(other.generation_),
      branch_of_device_(std::move(other.branch_of_device_)),
      n_unknowns_(other.n_unknowns_),
      index_valid_(other.index_valid_) {
  other.generation_ = next_generation();
  other.index_valid_ = false;
}

Netlist& Netlist::operator=(Netlist&& other) noexcept {
  if (this == &other) return *this;
  node_names_ = std::move(other.node_names_);
  node_by_name_ = std::move(other.node_by_name_);
  devices_ = std::move(other.devices_);
  device_by_name_ = std::move(other.device_by_name_);
  model_ = other.model_;
  fresh_counter_ = other.fresh_counter_;
  generation_ = other.generation_;
  branch_of_device_ = std::move(other.branch_of_device_);
  n_unknowns_ = other.n_unknowns_;
  index_valid_ = other.index_valid_;
  other.generation_ = next_generation();
  other.index_valid_ = false;
  return *this;
}

NodeId Netlist::node(const std::string& name) {
  const auto it = node_by_name_.find(name);
  if (it != node_by_name_.end()) return it->second;
  touch();
  const NodeId id = node_names_.size();
  node_names_.push_back(name);
  node_by_name_.emplace(name, id);
  return id;
}

std::optional<NodeId> Netlist::find_node(const std::string& name) const {
  const auto it = node_by_name_.find(name);
  if (it == node_by_name_.end()) return std::nullopt;
  return it->second;
}

NodeId Netlist::fresh_node(const std::string& hint) {
  for (;;) {
    const std::string name = hint + "#" + std::to_string(fresh_counter_++);
    if (node_by_name_.find(name) == node_by_name_.end()) return node(name);
  }
}

const std::string& Netlist::node_name(NodeId id) const { return node_names_.at(id); }

std::size_t Netlist::add(std::string name, DeviceImpl impl) {
  if (device_by_name_.count(name) != 0) {
    throw std::invalid_argument("duplicate device name: " + name);
  }
  touch();
  const std::size_t idx = devices_.size();
  device_by_name_.emplace(name, idx);
  devices_.push_back(Device{std::move(name), std::move(impl), true});
  index_valid_ = false;
  return idx;
}

void Netlist::set_vsource_volts(std::size_t i, double volts) {
  auto* vs = std::get_if<VSource>(&devices_.at(i).impl);
  if (vs == nullptr) {
    throw std::invalid_argument("not a VSource: " + devices_.at(i).name);
  }
  vs->volts = volts;
}

std::optional<std::size_t> Netlist::find_device(const std::string& name) const {
  const auto it = device_by_name_.find(name);
  if (it == device_by_name_.end()) return std::nullopt;
  return it->second;
}

void Netlist::reindex() const {
  branch_of_device_.assign(devices_.size(), static_cast<std::size_t>(-1));
  std::size_t next = node_names_.size() - 1;  // voltages occupy [0, N-2]
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const Device& d = devices_[i];
    if (!d.enabled) continue;
    if (std::holds_alternative<VSource>(d.impl) || std::holds_alternative<Vcvs>(d.impl)) {
      branch_of_device_[i] = next++;
    }
  }
  n_unknowns_ = next;
  index_valid_ = true;
}

std::size_t Netlist::unknown_count() const {
  if (!index_valid_) reindex();
  return n_unknowns_;
}

std::size_t Netlist::voltage_index(NodeId n) const {
  if (n == kGround) throw std::invalid_argument("ground has no voltage unknown");
  return n - 1;
}

std::size_t Netlist::branch_index(std::size_t device_idx) const {
  if (!index_valid_) reindex();
  const std::size_t b = branch_of_device_.at(device_idx);
  if (b == static_cast<std::size_t>(-1)) {
    throw std::invalid_argument("device has no branch current: " + devices_.at(device_idx).name);
  }
  return b;
}

}  // namespace lsl::spice
