// Circuit netlist representation for the MNA engine.
//
// Devices are plain value types held in a std::variant, so a Netlist has
// full value semantics: the fault injector copies the golden netlist and
// edits the copy (insert series opens, bridge shorts) without any
// clone-hierarchy machinery. Node 0 is always ground.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace lsl::spice {

using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

/// Two-terminal linear resistor.
struct Resistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double ohms = 1.0;
};

/// Two-terminal linear capacitor. Open circuit at DC.
struct Capacitor {
  NodeId a = kGround;
  NodeId b = kGround;
  double farads = 1e-15;
};

/// Independent voltage source; adds one MNA branch-current unknown.
/// In transient analysis the value can be overridden per time point via
/// a waveform callback registered on the simulator.
struct VSource {
  NodeId p = kGround;
  NodeId n = kGround;
  double volts = 0.0;
};

/// Independent current source; positive current flows from `p` through
/// the source to `n` (SPICE convention).
struct ISource {
  NodeId p = kGround;
  NodeId n = kGround;
  double amps = 0.0;
};

/// Voltage-controlled voltage source (E element): v(p,n) = gain * v(cp,cn).
/// Used for the charge-pump balancing amplifier.
struct Vcvs {
  NodeId p = kGround;
  NodeId n = kGround;
  NodeId cp = kGround;
  NodeId cn = kGround;
  double gain = 1.0;
};

enum class MosType { kNmos, kPmos };

/// Square-law (SPICE level-1) MOSFET, bulk tied to the rail implicitly.
/// `vt_delta` lets a cell model deliberate threshold skew on top of the
/// model card (used nowhere in the golden design — the paper's offsets
/// come from W/L mismatch — but exposed for experiments).
struct Mosfet {
  NodeId d = kGround;
  NodeId g = kGround;
  NodeId s = kGround;
  MosType type = MosType::kNmos;
  double w = 0.5e-6;
  double l = 0.5e-6;
  double vt_delta = 0.0;
};

using DeviceImpl = std::variant<Resistor, Capacitor, VSource, ISource, Vcvs, Mosfet>;

/// Named device instance. `enabled == false` removes the device from all
/// stamps — used by tests and by open-fault edits that delete elements.
struct Device {
  std::string name;
  DeviceImpl impl;
  bool enabled = true;
};

/// Process model card for the square-law MOSFETs. Defaults approximate a
/// 130 nm-class process at 1.2 V (the paper's UMC 130 nm operating point):
/// |VT| ~ 0.34/0.36 V and transconductance factors scaled so that a
/// 0.5u/0.5u device carries tens of microamps in saturation.
struct ModelCard {
  double kp_n = 320e-6;     // NMOS mu*Cox (A/V^2)
  double kp_p = 110e-6;     // PMOS mu*Cox (A/V^2)
  double vt_n = 0.34;       // NMOS threshold (V)
  double vt_p = -0.36;      // PMOS threshold (V)
  double lambda_n = 0.15;   // NMOS channel-length modulation (1/V)
  double lambda_p = 0.18;   // PMOS channel-length modulation (1/V)
};

/// Flat netlist with string-named nodes (node 0 = "0" = ground).
///
/// Every netlist carries a process-unique *generation* stamp that the
/// solver workspaces key their per-topology caches (sparsity pattern,
/// symbolic LU, linear stamp base) on. Any mutable access — add(),
/// node creation, the non-const device()/devices()/model() accessors —
/// assigns a fresh stamp, conservatively invalidating those caches.
/// Copies always get a fresh stamp, so no two distinct netlists ever
/// share one. The single deliberate carve-out: mutating a device
/// parameter through a *retained* reference (without re-calling an
/// accessor) is only supported for values the solver re-reads on every
/// solve — VSource::volts (dc_sweep does exactly this). Retained-pointer
/// mutation of matrix-shaping values (Resistor::ohms, Capacitor::farads,
/// Vcvs::gain, Device::enabled) must go through device()/devices().
class Netlist {
 public:
  Netlist();
  Netlist(const Netlist& other);
  Netlist& operator=(const Netlist& other);
  Netlist(Netlist&& other) noexcept;
  Netlist& operator=(Netlist&& other) noexcept;

  /// Returns the node with this name, creating it if absent.
  NodeId node(const std::string& name);
  /// Looks up an existing node; nullopt if never created.
  std::optional<NodeId> find_node(const std::string& name) const;
  /// Creates a fresh node with a unique generated name (fault edits).
  NodeId fresh_node(const std::string& hint);
  const std::string& node_name(NodeId id) const;
  std::size_t node_count() const { return node_names_.size(); }

  /// Adds a device; returns its index. Names must be unique.
  std::size_t add(std::string name, DeviceImpl impl);

  /// Device access for analyses and fault edits. The non-const
  /// overloads assume the caller will mutate and refresh generation().
  std::vector<Device>& devices() {
    touch();
    return devices_;
  }
  const std::vector<Device>& devices() const { return devices_; }
  Device& device(std::size_t i) {
    touch();
    return devices_.at(i);
  }
  const Device& device(std::size_t i) const { return devices_.at(i); }
  /// Index of the device with this name; nullopt if absent.
  std::optional<std::size_t> find_device(const std::string& name) const;

  ModelCard& model() {
    touch();
    return model_;
  }
  const ModelCard& model() const { return model_; }

  /// Cache key for solver-side per-topology state. Unique across all
  /// netlists in the process; refreshed by every mutable access.
  std::uint64_t generation() const { return generation_; }

  /// Sets the value of VSource device `i` WITHOUT refreshing the
  /// generation stamp. Source values only ever enter the MNA right-hand
  /// side, which the solver rebuilds from the netlist on every Newton
  /// iteration, so this mutation cannot stale any cached matrix state.
  /// This is the fast path for drive toggling between solves (the DFT
  /// stages flip a dozen sources per fault). Throws if `i` is not a
  /// VSource.
  void set_vsource_volts(std::size_t i, double volts);

  /// Number of MNA unknowns: node voltages (excluding ground) plus one
  /// branch current per enabled VSource/Vcvs.
  std::size_t unknown_count() const;
  /// MNA index of a node voltage (node must not be ground).
  std::size_t voltage_index(NodeId n) const;
  /// MNA index of the branch current of device `i` (must be V/E source).
  std::size_t branch_index(std::size_t device_idx) const;

  /// Recomputes branch-current index assignments. Called automatically by
  /// the analyses; cheap, so also safe to call after edits.
  void reindex() const;

 private:
  void touch();

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_by_name_;
  std::vector<Device> devices_;
  std::unordered_map<std::string, std::size_t> device_by_name_;
  ModelCard model_;
  std::size_t fresh_counter_ = 0;
  std::uint64_t generation_ = 0;

  mutable std::vector<std::size_t> branch_of_device_;  // device idx -> MNA idx
  mutable std::size_t n_unknowns_ = 0;
  mutable bool index_valid_ = false;
};

}  // namespace lsl::spice
