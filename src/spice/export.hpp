// SPICE-deck export of a Netlist: lets any external simulator
// cross-check the circuits this library builds (and makes faulted
// netlists diffable/debuggable as text).
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace lsl::spice {

struct ExportOptions {
  std::string title = "lsl netlist";
  /// Include a .MODEL card pair matching the level-1 ModelCard.
  bool with_models = true;
  /// Comment out disabled devices instead of dropping them.
  bool keep_disabled_as_comments = true;
};

/// Renders the netlist as a SPICE deck (one device per line, node names
/// sanitized to SPICE-friendly identifiers).
std::string export_spice(const Netlist& nl, const ExportOptions& opts = {});

/// Sanitizes a node name for SPICE (ground -> 0, punctuation -> '_').
std::string spice_node_name(const Netlist& nl, NodeId id);

}  // namespace lsl::spice
