// Golden-solution seeds and per-solve hints for the incremental fault
// campaign.
//
// A fault campaign solves thousands of near-identical MNA systems: the
// golden netlist plus one small topological edit, under a handful of
// stage stimuli. A SolutionSeed captures one converged golden solution
// *by name* (node voltages keyed by node name, branch currents keyed by
// device name), so it can re-seed a Newton solve on any netlist that
// shares those names — including faulted copies whose unknown ordering
// shifted because the fault edit added nodes or devices. Unmatched
// unknowns start at 0, exactly the cold-start value.
//
// A SeedBank maps stage-stimulus keys ("dc.1", "scan.cp.drive.2", ...)
// to seeds. The campaign builds one bank while computing the golden
// reference signatures and then shares it read-only (via
// std::shared_ptr<const SeedBank>) across all pool workers — the bank
// is immutable after construction, so the sharing cannot reintroduce
// the mutable-reindex-cache race that forced per-worker golden clones.
//
// SolveHints is the one optional knob the DFT stages thread through to
// the solver: where to find seeds (warm starts), where to record them
// (golden reference capture), and an optional low-rank overlay
// describing the fault edit (see spice/stamp.hpp). All pointers may be
// null; a null hints pointer means "behave exactly as before".
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "spice/netlist.hpp"

namespace lsl::spice {

struct LowRankOverlay;

/// One converged MNA solution, keyed by node / device names so it can
/// warm-start a solve on any name-compatible netlist.
class SolutionSeed {
 public:
  /// Records solution `x` of `nl` (x must be a full MNA vector for nl;
  /// anything else yields an empty seed).
  static SolutionSeed capture(const Netlist& nl, const std::vector<double>& x);

  /// Maps the seed onto `target`'s unknown ordering. Nodes / branch
  /// devices absent from the seed start at 0 (the cold-start value).
  std::vector<double> initial_guess_for(const Netlist& target) const;

  bool empty() const { return node_v_.empty() && branch_i_.empty(); }

 private:
  std::unordered_map<std::string, double> node_v_;
  std::unordered_map<std::string, double> branch_i_;
};

/// Immutable-after-construction map from stage-stimulus key to seed.
class SeedBank {
 public:
  void put(const std::string& key, SolutionSeed seed);
  /// nullptr when the key was never captured.
  const SolutionSeed* find(const std::string& key) const;
  std::size_t size() const { return seeds_.size(); }

 private:
  std::unordered_map<std::string, SolutionSeed> seeds_;
};

/// Optional per-solve context the DFT stages pass down to the solver.
/// Plain pointers, all nullable; the pointees must outlive the solve.
struct SolveHints {
  /// Read side: golden seeds to warm-start from (campaign fault loop).
  const SeedBank* seeds = nullptr;
  /// Write side: bank to record converged solutions into (golden
  /// reference construction). Mutually exclusive with `seeds` in
  /// practice, but nothing enforces it.
  SeedBank* capture = nullptr;
  /// Low-rank description of the fault edit for the SMW solve path.
  const LowRankOverlay* overlay = nullptr;
};

/// Arms the calling thread's SolverWorkspace with seed `key` (if hints,
/// hints->seeds, and the key all exist) so the next solve_dc on that
/// workspace tries a golden warm start before its normal ladder.
/// No-op when anything is missing.
void arm_warm_start(const SolveHints* hints, const std::string& key, const Netlist& target);

/// Records solution `x` of `nl` into hints->capture under `key`.
/// No-op when hints or hints->capture is null or x is not a full MNA
/// vector for nl.
void capture_seed(const SolveHints* hints, const std::string& key, const Netlist& nl,
                  const std::vector<double>& x);

}  // namespace lsl::spice
