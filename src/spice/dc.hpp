// DC operating-point solver: damped Newton–Raphson over the MNA system
// behind a retry/fallback ladder — gmin stepping, source stepping,
// heavier damping, relaxed tolerances. Faulted netlists (floating
// gates, rail shorts) are exactly the hard cases the continuation
// methods are there for; the ladder plus the structured SolveStatus
// result mean a pathological circuit is classified, never thrown or
// silently dropped.
#pragma once

#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "spice/solve_status.hpp"

namespace lsl::spice {

class SolverWorkspace;
struct LowRankOverlay;

struct DcOptions {
  int max_iterations = 200;
  double abs_tol = 1e-9;        // volts; convergence on max |dV|
  double damping_limit = 0.4;   // max per-iteration voltage step (V)
  double gmin_final = 1e-12;    // target gmin after stepping
  double gmin_start = 1e-3;     // initial gmin for stepping
  bool allow_source_stepping = true;
  /// Deeper ladder rungs, tried only after gmin and source stepping
  /// fail: re-run gmin stepping with the damping limit cut 8x and the
  /// iteration budget tripled, then once more with abs_tol relaxed by
  /// `relaxed_tol_factor` (the result is still useful for fault
  /// *classification* even when the last digit is not trustworthy).
  bool allow_heavy_damping = true;
  bool allow_relaxed_tol = true;
  double relaxed_tol_factor = 100.0;
  /// Wall-clock budget for the whole solve, every rung included.
  /// 0 = unlimited. Exceeding it returns SolveStatus::kTimeout.
  double timeout_sec = 0.0;
  /// Optional initial guess for the MNA vector (e.g. previous solve).
  std::vector<double> initial_guess;
  /// Optional low-rank fault edit (see spice/stamp.hpp): the solve
  /// treats the listed devices as a rank-k update over the base
  /// structure and uses the Sherman–Morrison–Woodbury path where it
  /// passes the backward-error gate. Results are identical with or
  /// without it — the overlay only redirects *how* the same system is
  /// solved. The pointee must outlive the solve.
  const LowRankOverlay* overlay = nullptr;
};

struct DcResult {
  bool converged = false;
  SolveStatus status = SolveStatus::kMaxIterations;
  /// MNA solution: node voltages then branch currents. On failure this
  /// holds the last iterate of the deepest ladder rung attempted.
  std::vector<double> x;
  int iterations = 0;  // total Newton iterations (mirrors diag.iterations)
  SolveDiagnostics diag;

  /// Node voltage lookup (requires the netlist used for the solve).
  double v(const Netlist& nl, NodeId node) const;
  double v(const Netlist& nl, const std::string& node_name) const;
  /// Branch current through voltage-source-like device `name`
  /// (positive current flows p -> n through the source).
  double i(const Netlist& nl, const std::string& device_name) const;
};

/// Solves the DC operating point. Never throws on numerical failure:
/// the result's status says what went wrong (singular system, iteration
/// budget, non-finite values, timeout) and the diagnostics say where.
/// Solver state (sparsity pattern, symbolic LU, linear stamp base,
/// iteration buffers) lives in `ws` and is reused across calls; the
/// default is the calling thread's workspace (SolverWorkspace::tls()).
/// A pending seed parked on `ws` via SolverWorkspace::seed_from() is
/// consumed (and always cleared) by the solve: when no explicit
/// initial_guess is given and the seed's size matches, it runs as an
/// extra first ladder rung ("golden-warm-start") ahead of the normal
/// ladder; a failed warm start falls through to the unchanged ladder,
/// so the rung can only add an attempt, never remove one.
DcResult solve_dc(const Netlist& nl, const DcOptions& opts, SolverWorkspace& ws);
DcResult solve_dc(const Netlist& nl, const DcOptions& opts = {});

/// Sweeps the value of voltage source `vsrc_name` over `values`, warm
/// starting each point from the previous solution. Returns one DcResult
/// per point (unconverged points flagged, not dropped). The whole sweep
/// shares one workspace — and, because the source value is mutated
/// without touching the topology, one symbolic factorization.
std::vector<DcResult> dc_sweep(const Netlist& nl, const std::string& vsrc_name,
                               const std::vector<double>& values, const DcOptions& opts,
                               SolverWorkspace& ws);
std::vector<DcResult> dc_sweep(const Netlist& nl, const std::string& vsrc_name,
                               const std::vector<double>& values, const DcOptions& opts = {});

}  // namespace lsl::spice
