// DC operating-point solver: damped Newton–Raphson over the MNA system
// with gmin stepping, and source stepping as a fallback homotopy. Faulted
// netlists (floating gates, rail shorts) are exactly the hard cases the
// continuation methods are there for.
#pragma once

#include <string>
#include <vector>

#include "spice/netlist.hpp"

namespace lsl::spice {

struct DcOptions {
  int max_iterations = 200;
  double abs_tol = 1e-9;        // volts; convergence on max |dV|
  double damping_limit = 0.4;   // max per-iteration voltage step (V)
  double gmin_final = 1e-12;    // target gmin after stepping
  double gmin_start = 1e-3;     // initial gmin for stepping
  bool allow_source_stepping = true;
  /// Optional initial guess for the MNA vector (e.g. previous solve).
  std::vector<double> initial_guess;
};

struct DcResult {
  bool converged = false;
  /// MNA solution: node voltages then branch currents.
  std::vector<double> x;
  int iterations = 0;

  /// Node voltage lookup (requires the netlist used for the solve).
  double v(const Netlist& nl, NodeId node) const;
  double v(const Netlist& nl, const std::string& node_name) const;
  /// Branch current through voltage-source-like device `name`
  /// (positive current flows p -> n through the source).
  double i(const Netlist& nl, const std::string& device_name) const;
};

/// Solves the DC operating point.
DcResult solve_dc(const Netlist& nl, const DcOptions& opts = {});

/// Sweeps the value of voltage source `vsrc_name` over `values`, warm
/// starting each point from the previous solution. Returns one DcResult
/// per point (unconverged points flagged, not dropped).
std::vector<DcResult> dc_sweep(const Netlist& nl, const std::string& vsrc_name,
                               const std::vector<double>& values, const DcOptions& opts = {});

}  // namespace lsl::spice
