#include "spice/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace lsl::spice {

Matrix::Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

bool lu_solve_inplace(Matrix& a, std::vector<double>& b, double pivot_floor) {
  const std::size_t n = a.rows();
  if (n == 0 || a.cols() != n || b.size() != n) return false;

  // Doolittle LU with partial pivoting, factoring in place. Rows of b
  // are swapped in tandem with the pivot rows, so no permutation vector
  // is needed — and therefore no allocation.
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::fabs(a.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double cand = std::fabs(a.at(r, k));
      if (cand > best) {
        best = cand;
        piv = r;
      }
    }
    if (best < pivot_floor) return false;
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(k, c), a.at(piv, c));
      std::swap(b[k], b[piv]);
    }
    const double inv_pivot = 1.0 / a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a.at(r, k) * inv_pivot;
      if (factor == 0.0) continue;
      a.at(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) a.at(r, c) -= factor * a.at(k, c);
      b[r] -= factor * b[k];
    }
  }

  // Back substitution, in place: b[ri] for ri below the current row
  // already holds the solution entries it reads.
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * b[c];
    b[ri] = sum / a.at(ri, ri);
  }
  return true;
}

bool lu_solve(Matrix a, std::vector<double> b, std::vector<double>& x, double pivot_floor) {
  if (!lu_solve_inplace(a, b, pivot_floor)) return false;
  x = std::move(b);
  return true;
}

}  // namespace lsl::spice
