#include "spice/solve_status.hpp"

#include <array>
#include <utility>

namespace lsl::spice {

namespace {

constexpr std::array<std::pair<SolveStatus, const char*>, 6> kNames = {{
    {SolveStatus::kConverged, "converged"},
    {SolveStatus::kSingularMatrix, "singular_matrix"},
    {SolveStatus::kMaxIterations, "max_iterations"},
    {SolveStatus::kTimestepUnderflow, "timestep_underflow"},
    {SolveStatus::kNonFinite, "non_finite"},
    {SolveStatus::kTimeout, "timeout"},
}};

}  // namespace

std::string to_string(SolveStatus s) {
  for (const auto& [status, name] : kNames) {
    if (status == s) return name;
  }
  return "unknown";
}

bool solve_status_from_string(const std::string& text, SolveStatus& out) {
  for (const auto& [status, name] : kNames) {
    if (text == name) {
      out = status;
      return true;
    }
  }
  return false;
}

}  // namespace lsl::spice
