// Structured solver outcome taxonomy. Fault campaigns feed the solvers
// deliberately broken circuits — floating nodes, rail shorts, dead
// feedback loops — so "did not converge" is an expected, classifiable
// event, not an error path. Every analysis (DC, transient, AC) returns
// one of these statuses plus per-solve diagnostics instead of a silent
// boolean, so the campaign layer can retry, fall back, or quarantine.
#pragma once

#include <string>

namespace lsl::spice {

enum class SolveStatus {
  kConverged,          // solution found within tolerance
  kSingularMatrix,     // LU pivot below floor: no unique solution exists
  kMaxIterations,      // Newton exhausted its budget on every ladder rung
  kTimestepUnderflow,  // transient step halving hit the dt floor
  kNonFinite,          // NaN/Inf appeared in the solution vector
  kTimeout,            // wall-clock budget exceeded
};

constexpr bool solve_ok(SolveStatus s) { return s == SolveStatus::kConverged; }

/// Stable machine-readable name ("converged", "singular_matrix", ...),
/// used in logs and JSONL checkpoints.
std::string to_string(SolveStatus s);

/// Inverse of to_string. Returns false (out untouched) on unknown text.
bool solve_status_from_string(const std::string& text, SolveStatus& out);

/// Per-solve diagnostics carried alongside every result. The fallback
/// fields record how deep into the retry ladder the solve had to go —
/// campaigns log them to spot circuits that are about to tip over.
struct SolveDiagnostics {
  int iterations = 0;         // Newton iterations summed over all rungs
  int fallback_depth = 0;     // 0 = plain Newton succeeded (or no attempt)
  std::string fallback;       // name of the rung that produced the result
  double final_max_dv = 0.0;  // worst per-node voltage update, last iteration (V)
  std::string worst_node;     // node with that worst final update
  double elapsed_sec = 0.0;
  /// Where the Newton time went, split between building the linearized
  /// MNA system and LU-factoring/solving it. Only populated when
  /// util::Metrics::detailed_timing() is on (the extra clock reads sit
  /// inside the inner loop); 0.0 otherwise.
  double stamp_sec = 0.0;
  double factor_sec = 0.0;
};

}  // namespace lsl::spice
