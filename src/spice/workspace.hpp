// SolverWorkspace: reusable per-thread state for the MNA solve path.
//
// Every Newton iteration in this repo used to reallocate an n×n dense
// matrix, re-stamp every linear device, copy the system by value into
// lu_solve, and run dense O(n³) elimination on a matrix that is ~95%
// zeros. The workspace removes all of that, with reuse at three levels:
//
//  1. **Buffers** — matrices, RHS vectors, and scratch are owned by the
//     workspace and recycled, so the Newton inner loop performs zero
//     heap allocations after warm-up.
//  2. **Split linear/nonlinear stamping** — the linear skeleton
//     (resistors, capacitor companions' conductances, V/E incidence,
//     gmin) is stamped once per (topology, gmin, dt, integrator)
//     configuration into a cached base; each iteration memcpys the base
//     and stamps only the MOSFET Jacobians and the RHS.
//  3. **Sparse LU with cached symbolic analysis** — the sparsity
//     pattern, fill-reducing ordering, and fill pattern are computed
//     once per netlist *structure* and reused across all Newton
//     iterations, timesteps, sweep points, and retry-ladder rungs;
//     only the numeric refactorization runs per iteration. A
//     pivot-health check plus an O(nnz) residual verification route any
//     questionable solve to the dense partial-pivot fallback, so
//     singular-matrix semantics are exactly the dense engine's.
//
// Cache keying: entries are keyed by a structural hash of the netlist
// (node count, model card, and every device's kind/terminals/
// matrix-shaping values — names and RHS-only source values excluded),
// minus any devices excluded by the solve's LowRankOverlay. Distinct
// netlists with identical structure — the thousands of per-fault copies
// a campaign makes of the same golden stage stimulus — therefore share
// one symbolic analysis, one fill pattern, and one linear base. A memo
// ring keyed on Netlist::generation() makes the hash itself a cheap
// lookup on the warm path. Hash-equal structures produce bit-identical
// stamps, so sharing never changes results; a collision (same hash,
// different structure) is caught by the unknown-count check and simply
// rebuilds the entry.
//
// For campaign warm starts, seed_from() parks a pending initial guess
// on the workspace; the next solve_dc on this workspace consumes it as
// an extra first ladder rung ("golden-warm-start"). With a
// LowRankOverlay in the StampContext, the sparse path factors the
// *base* structure and applies the fault's rank-k edit via
// Sherman–Morrison–Woodbury, gated by the same backward-error test as
// every other sparse solve (reject ⇒ retry on the ordinary sparse path
// of the full netlist, which is exact and itself guarded by the dense
// fallback).
//
// Ownership: one workspace per thread. The default instance is
// thread-local (SolverWorkspace::tls()), which gives every campaign /
// Monte-Carlo pool worker its own warm workspace for free; explicit
// instances can be passed to solve_dc / dc_sweep / run_transient /
// run_ac for tests and benchmarks. A workspace may be reused across
// arbitrarily many netlists. Caches never change results: a warm solve
// is numerically identical to a cold solve of the same system.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "spice/matrix.hpp"
#include "spice/solve_status.hpp"
#include "spice/sparse.hpp"
#include "spice/stamp.hpp"

namespace lsl::spice {

/// Process-wide solver tuning knobs. Read on every solve; mutate only
/// while no solves are in flight (tests and benches flip force_dense
/// for A/B comparisons).
struct SolverTuning {
  /// Systems with fewer unknowns than this stay on the dense path —
  /// at tiny n dense partial-pivot LU is both faster and the most
  /// battle-tested code, and the unit-test circuits live there.
  std::size_t dense_crossover = 16;
  /// Force every solve onto the dense path (A/B benchmarking, and the
  /// reference side of the sparse/dense equivalence tests).
  bool force_dense = false;
  /// Force the sparse path even below the crossover (tests).
  bool force_sparse = false;
  /// Per-row relative residual bound for post-solve verification; a
  /// sparse solve whose residual exceeds it falls back to dense. This
  /// is the sole numerical-quality gate for the no-pivot sparse
  /// factorization (the factor itself only enforces an absolute
  /// ~1e-18 pivot floor) and for the Sherman–Morrison–Woodbury
  /// low-rank solve.
  double sparse_residual_rel_tol = 1e-8;
};

SolverTuning& solver_tuning();

class SolverWorkspace {
 public:
  SolverWorkspace() = default;
  SolverWorkspace(const SolverWorkspace&) = delete;
  SolverWorkspace& operator=(const SolverWorkspace&) = delete;

  /// The calling thread's default workspace. Campaign and Monte-Carlo
  /// pool workers each see their own instance.
  static SolverWorkspace& tls();

  /// Monotonic instrumentation, cheap plain counters (the workspace is
  /// single-threaded). The solver layers flush per-solve deltas into
  /// the metrics registry (docs/OBSERVABILITY.md).
  struct Stats {
    std::uint64_t symbolic_builds = 0;    // pattern + ordering + fill computed
    std::uint64_t symbolic_reuse = 0;     // iterations served by a cached pattern
    std::uint64_t linear_stamp_builds = 0;  // linear base (re)stamped
    std::uint64_t linear_stamp_reuse = 0;   // iterations served by a cached base
    std::uint64_t sparse_solves = 0;      // iterations solved sparse
    std::uint64_t dense_solves = 0;       // iterations solved dense by design
    std::uint64_t dense_fallbacks = 0;    // sparse attempt rejected -> dense
    std::uint64_t pivot_rejects = 0;      // ...because a pivot failed the health check
    std::uint64_t residual_rejects = 0;   // ...because the solve failed verification
    std::uint64_t refinement_steps = 0;   // O(nnz) refinements that rescued a solve
    std::uint64_t smw_solves = 0;         // iterations solved via the low-rank SMW path
    std::uint64_t smw_fallbacks = 0;      // SMW rejects retried on the full-netlist path
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Drops every cached topology (tests; never required for
  /// correctness — structural keys make stale reuse impossible).
  void clear();

  /// Parks an initial guess for the next solve_dc on this workspace
  /// (the campaign's golden warm start). Consumed — and always cleared
  /// — by exactly one solve; a guess whose size does not match that
  /// solve's unknown count is discarded.
  void seed_from(const std::vector<double>& x);
  void seed_from(std::vector<double>&& x);
  /// Takes (and clears) the pending seed. False when none is armed.
  bool take_pending_seed(std::vector<double>& out);

  /// Re-enables the low-rank (SMW) path for a new solve. After a gate
  /// reject, the workspace stops attempting SMW for the rest of the
  /// current solve (later iterations would reject identically); solve_dc
  /// calls this at entry so every solve gets a fresh attempt.
  void reset_smw_suppression() { smw_suppressed_ = false; }

  /// One Newton linear solve: builds the linearized MNA system about
  /// iterate `x` (cached linear base + fresh nonlinear/RHS stamps) and
  /// solves G·x_new = b. Returns false when the system is singular
  /// (decided by the dense partial-pivot fallback, exactly as before).
  /// When `diag` is non-null and detailed timing is on, stamp/factor
  /// time is accumulated into it. Allocation-free after warm-up.
  bool solve_newton_system(const StampContext& ctx, const std::vector<double>& x,
                           std::vector<double>& x_new, SolveDiagnostics* diag = nullptr);

  /// O(nnz) nonlinear MNA residual r = G(x)·x − b(x) (same definition
  /// as the free mna_residual, minus the dense row sweep and the
  /// per-call allocations). `r` is resized to the unknown count.
  void mna_residual(const StampContext& ctx, const std::vector<double>& x,
                    std::vector<double>& r);

  /// Max |r| over the node-voltage rows, via the sparse pattern.
  double kcl_residual_norm(const StampContext& ctx, const std::vector<double>& x);

  /// Per-solve iterate scratch shared by the Newton drivers (dc and
  /// transient), so repeated solves recycle one x_new buffer.
  std::vector<double>& iterate_scratch() { return iterate_scratch_; }

  /// Scratch for the complex AC solves (run_ac reuses these across
  /// frequency points instead of reallocating n² per point).
  std::vector<std::complex<double>>& ac_matrix() { return ac_g_; }
  std::vector<std::complex<double>>& ac_rhs() { return ac_b_; }
  std::vector<std::complex<double>>& ac_solution() { return ac_x_; }

 private:
  struct MosSlots {
    std::size_t device = 0;
    // Unknown indices of the terminals, -1 = ground.
    std::ptrdiff_t xd = -1, xg = -1, xs = -1;
    // Value slots for row d / row s across columns d, g, s.
    std::size_t dd = kNoSlot, dg = kNoSlot, ds = kNoSlot;
    std::size_t sd = kNoSlot, sg = kNoSlot, ss = kNoSlot;
  };

  static constexpr std::size_t kSmwMaxRank = 4;

  struct Entry {
    bool used = false;
    std::uint64_t key = 0;  // structural hash (netlist minus overlay skips)
    std::uint64_t last_use = 0;
    std::size_t n = 0;
    std::size_t n_volts = 0;
    SparseMatrix mat;  // pattern fixed; values restamped per iteration
    SparseLu lu;
    std::vector<std::size_t> diag_slot;
    std::vector<MosSlots> mos;
    // Cached linear stamp base and the configuration that shaped it.
    bool base_valid = false;
    double base_gmin = 0.0;
    double base_dt = 0.0;
    Integrator base_integrator = Integrator::kBackwardEuler;
    std::vector<double> base_values;
    // Per-iteration staging.
    std::vector<double> b;
    // Iterative-refinement scratch (residual and correction).
    std::vector<double> refine_r;
    std::vector<double> refine_dx;
    // Sherman–Morrison–Woodbury scratch: W = A⁻¹U columns, the k×k
    // capacitance matrix S = C⁻¹ + UᵀW factored in place, and a z
    // vector for A⁻¹ applications. Rebuilt per numeric factorization.
    std::array<std::vector<double>, kSmwMaxRank> smw_w;
    std::vector<double> smw_z;
    std::vector<double> smw_rhs;
    std::array<double, kSmwMaxRank * kSmwMaxRank> smw_s{};
    std::array<int, kSmwMaxRank> smw_piv{};
    std::size_t smw_k = 0;
  };

  std::uint64_t entry_key(const StampContext& ctx);
  Entry& entry_for(const StampContext& ctx);
  void build_entry(Entry& e, const StampContext& ctx);
  void ensure_linear_base(Entry& e, const StampContext& ctx);
  void stamp_rhs(Entry& e, const StampContext& ctx);
  void stamp_nonlinear(Entry& e, const StampContext& ctx, const std::vector<double>& x);
  bool smw_prepare(Entry& e, const LowRankOverlay& ov);
  void smw_apply(Entry& e, const LowRankOverlay& ov, const std::vector<double>& rhs,
                 std::vector<double>& out);
  bool residual_acceptable(const Entry& e, const LowRankOverlay* ov,
                           const std::vector<double>& x_new) const;
  void refine(Entry& e, const LowRankOverlay* ov, std::vector<double>& x_new);
  bool dense_solve(const StampContext& ctx, const std::vector<double>& x,
                   std::vector<double>& x_new);

  static constexpr std::size_t kMaxEntries = 16;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::uint64_t lru_tick_ = 0;
  Stats stats_;

  // Memo ring for the structural hash: (generation, overlay skip
  // signature) → key, so the warm path never rehashes the device list.
  struct KeyMemo {
    bool valid = false;
    std::uint64_t generation = 0;
    std::uint64_t skip_sig = 0;
    std::uint64_t key = 0;
  };
  std::array<KeyMemo, 32> key_memo_{};
  std::size_t key_memo_next_ = 0;

  // Pending campaign warm-start seed (see seed_from).
  std::vector<double> pending_seed_;
  bool has_pending_seed_ = false;

  // Set on an overlay gate reject; skips further SMW attempts until the
  // next solve (see reset_smw_suppression).
  bool smw_suppressed_ = false;

  // Dense path / fallback buffers.
  Matrix dense_g_;
  std::vector<double> dense_b_;
  std::vector<double> iterate_scratch_;

  // AC scratch.
  std::vector<std::complex<double>> ac_g_;
  std::vector<std::complex<double>> ac_b_;
  std::vector<std::complex<double>> ac_x_;
};

}  // namespace lsl::spice
