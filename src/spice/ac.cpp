#include "spice/ac.hpp"

#include <cmath>
#include <stdexcept>

#include "spice/stamp.hpp"
#include "spice/workspace.hpp"
#include "util/log.hpp"

namespace lsl::spice {

namespace {

using Complex = std::complex<double>;

/// Minimal dense complex LU solve, in place (mirrors lu_solve_inplace
/// for doubles): factors `a`, permutes `b` in tandem, writes the
/// solution into `x`. Allocation-free when `x` is pre-sized.
bool lu_solve_complex(std::vector<Complex>& a, std::vector<Complex>& b, std::size_t n,
                      std::vector<Complex>& x) {
  auto at = [&](std::size_t r, std::size_t c) -> Complex& { return a[r * n + c]; };
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::abs(at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::abs(at(r, k)) > best) {
        best = std::abs(at(r, k));
        piv = r;
      }
    }
    if (best < 1e-18) return false;
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(at(k, c), at(piv, c));
      std::swap(b[k], b[piv]);
    }
    const Complex inv_pivot = 1.0 / at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex factor = at(r, k) * inv_pivot;
      if (factor == Complex{}) continue;
      for (std::size_t c = k + 1; c < n; ++c) at(r, c) -= factor * at(k, c);
      b[r] -= factor * b[k];
    }
  }
  x.assign(n, Complex{});
  for (std::size_t ri = n; ri-- > 0;) {
    Complex sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a[ri * n + c] * x[c];
    x[ri] = sum / a[ri * n + ri];
  }
  return true;
}

}  // namespace

const std::vector<std::complex<double>>& AcResult::probe(const std::string& name) const {
  const auto it = v.find(name);
  if (it == v.end()) throw std::invalid_argument("no such AC probe: " + name);
  return it->second;
}

double AcResult::mag(const std::string& name, std::size_t i) const {
  return std::abs(probe(name).at(i));
}

double AcResult::mag_db(const std::string& name, std::size_t i) const {
  return 20.0 * std::log10(std::max(mag(name, i), 1e-30));
}

double AcResult::phase_deg(const std::string& name, std::size_t i) const {
  return std::arg(probe(name).at(i)) * 180.0 / M_PI;
}

std::vector<double> log_frequencies(double f_lo, double f_hi, std::size_t points) {
  std::vector<double> out;
  out.reserve(points);
  const double ratio = std::log10(f_hi / f_lo);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac = points == 1 ? 0.0 : static_cast<double>(i) / (points - 1);
    out.push_back(f_lo * std::pow(10.0, ratio * frac));
  }
  return out;
}

AcResult run_ac(const Netlist& nl, const std::string& ac_source_name,
                const std::vector<double>& freqs, const std::vector<std::string>& probes,
                const AcOptions& opts) {
  return run_ac(nl, ac_source_name, freqs, probes, opts, SolverWorkspace::tls());
}

AcResult run_ac(const Netlist& nl, const std::string& ac_source_name,
                const std::vector<double>& freqs, const std::vector<std::string>& probes,
                const AcOptions& opts, SolverWorkspace& ws) {
  nl.reindex();
  AcResult result;

  const auto src_idx = nl.find_device(ac_source_name);
  if (!src_idx.has_value() ||
      !std::holds_alternative<VSource>(nl.device(*src_idx).impl)) {
    throw std::invalid_argument("AC source must be an existing VSource: " + ac_source_name);
  }

  // Operating point.
  const DcResult op = solve_dc(nl, opts.op, ws);
  result.op_diag = op.diag;
  if (!op.converged) {
    result.status = op.status;
    util::log_warn("run_ac: operating point failed to converge (" + to_string(op.status) + ")");
    return result;
  }

  // Probe set.
  std::vector<std::pair<std::string, NodeId>> probe_nodes;
  if (probes.empty()) {
    for (NodeId id = 1; id < nl.node_count(); ++id) probe_nodes.emplace_back(nl.node_name(id), id);
  } else {
    for (const auto& name : probes) {
      const auto id = nl.find_node(name);
      if (!id.has_value()) throw std::invalid_argument("unknown AC probe node: " + name);
      probe_nodes.emplace_back(name, *id);
    }
  }
  for (const auto& [name, id] : probe_nodes) result.v.emplace(name, std::vector<Complex>{});

  const std::size_t n = nl.unknown_count();
  auto v_of = [&](NodeId node) { return node_voltage(nl, op.x, node); };

  // Workspace-owned complex buffers, reused across frequency points
  // (the per-point cost used to include an n² allocation + zero fill of
  // a fresh matrix; now it is just the zero fill).
  std::vector<Complex>& g = ws.ac_matrix();
  std::vector<Complex>& b = ws.ac_rhs();
  std::vector<Complex>& x = ws.ac_solution();

  for (const double f : freqs) {
    const double w = 2.0 * M_PI * f;
    g.assign(n * n, Complex{});
    b.assign(n, Complex{});
    auto gat = [&](std::size_t r, std::size_t c) -> Complex& { return g[r * n + c]; };

    auto add_adm = [&](NodeId a, NodeId bn, Complex y) {
      if (a != kGround) {
        gat(nl.voltage_index(a), nl.voltage_index(a)) += y;
        if (bn != kGround) gat(nl.voltage_index(a), nl.voltage_index(bn)) -= y;
      }
      if (bn != kGround) {
        gat(nl.voltage_index(bn), nl.voltage_index(bn)) += y;
        if (a != kGround) gat(nl.voltage_index(bn), nl.voltage_index(a)) -= y;
      }
    };

    // Small gmin for numerical robustness.
    for (NodeId node = 1; node < nl.node_count(); ++node) {
      gat(nl.voltage_index(node), nl.voltage_index(node)) += 1e-12;
    }

    const auto& devices = nl.devices();
    for (std::size_t di = 0; di < devices.size(); ++di) {
      const Device& dev = devices[di];
      if (!dev.enabled) continue;

      if (const auto* r = std::get_if<Resistor>(&dev.impl)) {
        add_adm(r->a, r->b, Complex{1.0 / r->ohms, 0.0});
      } else if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
        add_adm(c->a, c->b, Complex{0.0, w * c->farads});
      } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
        const std::size_t bi = nl.branch_index(di);
        if (vs->p != kGround) {
          gat(nl.voltage_index(vs->p), bi) += 1.0;
          gat(bi, nl.voltage_index(vs->p)) += 1.0;
        }
        if (vs->n != kGround) {
          gat(nl.voltage_index(vs->n), bi) -= 1.0;
          gat(bi, nl.voltage_index(vs->n)) -= 1.0;
        }
        b[bi] = (di == *src_idx) ? Complex{1.0, 0.0} : Complex{};
      } else if (std::get_if<ISource>(&dev.impl) != nullptr) {
        // Independent current sources are AC opens.
      } else if (const auto* e = std::get_if<Vcvs>(&dev.impl)) {
        const std::size_t bi = nl.branch_index(di);
        if (e->p != kGround) {
          gat(nl.voltage_index(e->p), bi) += 1.0;
          gat(bi, nl.voltage_index(e->p)) += 1.0;
        }
        if (e->n != kGround) {
          gat(nl.voltage_index(e->n), bi) -= 1.0;
          gat(bi, nl.voltage_index(e->n)) -= 1.0;
        }
        if (e->cp != kGround) gat(bi, nl.voltage_index(e->cp)) -= e->gain;
        if (e->cn != kGround) gat(bi, nl.voltage_index(e->cn)) += e->gain;
      } else if (const auto* m = std::get_if<Mosfet>(&dev.impl)) {
        // Linearize at the operating point: general 3-terminal Jacobian,
        // same stamps as DC but without the affine remainder.
        const MosEval ev = eval_mosfet(*m, nl.model(), v_of(m->d), v_of(m->g), v_of(m->s));
        auto stamp_row = [&](NodeId row, double sign) {
          if (row == kGround) return;
          const std::size_t ri = nl.voltage_index(row);
          if (m->d != kGround) gat(ri, nl.voltage_index(m->d)) += sign * ev.d_vd;
          if (m->g != kGround) gat(ri, nl.voltage_index(m->g)) += sign * ev.d_vg;
          if (m->s != kGround) gat(ri, nl.voltage_index(m->s)) += sign * ev.d_vs;
        };
        stamp_row(m->d, +1.0);
        stamp_row(m->s, -1.0);
      }
    }

    if (!lu_solve_complex(g, b, n, x)) {
      result.status = SolveStatus::kSingularMatrix;
      result.failed_freq = f;
      util::log_warn("run_ac: singular system at f=" + std::to_string(f));
      return result;
    }
    result.freq.push_back(f);
    for (const auto& [name, id] : probe_nodes) {
      result.v[name].push_back(id == kGround ? Complex{} : x[nl.voltage_index(id)]);
    }
  }
  result.ok = true;
  result.status = SolveStatus::kConverged;
  return result;
}

}  // namespace lsl::spice
