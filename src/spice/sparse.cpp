#include "spice/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lsl::spice {

// --- SparseMatrix ------------------------------------------------------

void SparseMatrix::begin_pattern(std::size_t n) {
  n_ = n;
  building_ = true;
  coords_.clear();
  coords_.reserve(8 * n);
  // The diagonal is always present: gmin lands there for node rows, and
  // the LU elimination needs every pivot slot to exist (branch-row
  // diagonals are structural zeros that *receive* fill).
  for (std::size_t i = 0; i < n; ++i) coords_.emplace_back(i, i);
}

void SparseMatrix::note(std::size_t r, std::size_t c) {
  if (!building_) throw std::logic_error("SparseMatrix::note outside pattern phase");
  if (r >= n_ || c >= n_) throw std::out_of_range("SparseMatrix::note out of range");
  coords_.emplace_back(r, c);
}

void SparseMatrix::finalize_pattern() {
  building_ = false;
  std::sort(coords_.begin(), coords_.end());
  coords_.erase(std::unique(coords_.begin(), coords_.end()), coords_.end());

  row_ptr_.assign(n_ + 1, 0);
  col_idx_.clear();
  col_idx_.reserve(coords_.size());
  for (const auto& [r, c] : coords_) {
    ++row_ptr_[r + 1];
    col_idx_.push_back(c);
  }
  for (std::size_t i = 0; i < n_; ++i) row_ptr_[i + 1] += row_ptr_[i];
  values_.assign(col_idx_.size(), 0.0);
  coords_.clear();
  coords_.shrink_to_fit();
}

std::size_t SparseMatrix::slot(std::size_t r, std::size_t c) const {
  const auto first = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto last = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return kNoSlot;
  return static_cast<std::size_t>(it - col_idx_.begin());
}

void SparseMatrix::accumulate_residual(const std::vector<double>& x,
                                       const std::vector<double>& b,
                                       std::vector<double>& r) const {
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = -b[i];
    for (std::size_t s = row_ptr_[i]; s < row_ptr_[i + 1]; ++s) {
      acc += values_[s] * x[col_idx_[s]];
    }
    r[i] += acc;
  }
}

// --- SparseLu ----------------------------------------------------------

namespace {

/// Sorted-unique union of `dst` and `src` excluding `skip`; `tmp` is
/// scratch. Used by the minimum-degree elimination-graph updates.
void merge_into(std::vector<std::size_t>& dst, const std::vector<std::size_t>& src,
                std::size_t skip, std::vector<std::size_t>& tmp) {
  tmp.clear();
  tmp.reserve(dst.size() + src.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < dst.size() || j < src.size()) {
    std::size_t v;
    if (j >= src.size() || (i < dst.size() && dst[i] <= src[j])) {
      v = dst[i++];
      if (j < src.size() && src[j] == v) ++j;
    } else {
      v = src[j++];
    }
    if (v != skip && (tmp.empty() || tmp.back() != v)) tmp.push_back(v);
  }
  dst.swap(tmp);
}

}  // namespace

void SparseLu::analyze(const SparseMatrix& a, std::size_t n_volts) {
  n_ = a.dim();
  analyzed_ = false;
  if (n_volts > n_) throw std::invalid_argument("SparseLu::analyze: n_volts > dim");

  // Symmetrized adjacency (structure of A + A^T, diagonal excluded).
  std::vector<std::vector<std::size_t>> adj(n_);
  {
    const auto& rp = a.row_ptr();
    const auto& ci = a.col_idx();
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t s = rp[r]; s < rp[r + 1]; ++s) {
        const std::size_t c = ci[s];
        if (c == r) continue;
        adj[r].push_back(c);
        adj[c].push_back(r);
      }
    }
    for (auto& row : adj) {
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
    }
  }

  // Minimum-degree over the node block. Classic elimination-graph
  // update: eliminating v turns its uneliminated neighbors into a
  // clique. Lowest index wins ties, so the ordering is deterministic.
  perm_.clear();
  perm_.reserve(n_);
  std::vector<char> eliminated(n_, 0);
  std::vector<std::size_t> nbrs;
  std::vector<std::size_t> tmp;
  for (std::size_t step = 0; step < n_volts; ++step) {
    std::size_t best = kNoSlot;
    std::size_t best_deg = static_cast<std::size_t>(-1);
    for (std::size_t v = 0; v < n_volts; ++v) {
      if (eliminated[v]) continue;
      std::size_t deg = 0;
      for (const std::size_t u : adj[v]) deg += !eliminated[u];
      if (deg < best_deg) {
        best_deg = deg;
        best = v;
      }
    }
    const std::size_t v = best;
    perm_.push_back(v);
    eliminated[v] = 1;
    nbrs.clear();
    for (const std::size_t u : adj[v]) {
      if (!eliminated[u]) nbrs.push_back(u);
    }
    for (const std::size_t u : nbrs) merge_into(adj[u], nbrs, u, tmp);
  }
  for (std::size_t v = n_volts; v < n_; ++v) perm_.push_back(v);

  pinv_.assign(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) pinv_[perm_[i]] = i;

  // Symbolic fill of P·A·P^T: process permuted rows top-down; row i
  // inherits the U-part (columns > k) of every earlier row k it has an
  // L entry in. Scanning k in ascending order makes the propagation a
  // single pass — fill at column j < i introduced while processing
  // k < j is picked up when the scan reaches j.
  std::vector<std::vector<std::size_t>> urows(n_);  // U part per row, sorted
  lu_row_ptr_.assign(n_ + 1, 0);
  lu_col_idx_.clear();
  diag_pos_.assign(n_, 0);
  std::vector<char> w(n_, 0);
  std::vector<std::size_t> rowcols;
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  for (std::size_t i = 0; i < n_; ++i) {
    rowcols.clear();
    const std::size_t orig = perm_[i];
    for (std::size_t s = rp[orig]; s < rp[orig + 1]; ++s) {
      const std::size_t c = pinv_[ci[s]];
      if (!w[c]) {
        w[c] = 1;
        rowcols.push_back(c);
      }
    }
    if (!w[i]) {  // diagonal always in the pattern, but belt and braces
      w[i] = 1;
      rowcols.push_back(i);
    }
    for (std::size_t k = 0; k < i; ++k) {
      if (!w[k]) continue;
      for (const std::size_t j : urows[k]) {
        if (!w[j]) {
          w[j] = 1;
          rowcols.push_back(j);
        }
      }
    }
    std::sort(rowcols.begin(), rowcols.end());
    for (const std::size_t c : rowcols) {
      if (c == i) diag_pos_[i] = lu_col_idx_.size();
      if (c > i) urows[i].push_back(c);
      lu_col_idx_.push_back(c);
      w[c] = 0;
    }
    lu_row_ptr_[i + 1] = lu_col_idx_.size();
  }

  lu_values_.assign(lu_col_idx_.size(), 0.0);
  work_.assign(n_, 0.0);
  analyzed_ = true;
}

bool SparseLu::factor(const SparseMatrix& a, double pivot_floor) {
  if (!analyzed_ || n_ == 0 || a.dim() != n_) return false;
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& av = a.values();

  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t row_begin = lu_row_ptr_[i];
    const std::size_t row_end = lu_row_ptr_[i + 1];
    // Scatter permuted row i of A over the LU row pattern.
    for (std::size_t s = row_begin; s < row_end; ++s) work_[lu_col_idx_[s]] = 0.0;
    const std::size_t orig = perm_[i];
    for (std::size_t s = rp[orig]; s < rp[orig + 1]; ++s) {
      work_[pinv_[ci[s]]] += av[s];
    }
    // Up-looking elimination: L columns in ascending order.
    for (std::size_t s = row_begin; s < diag_pos_[i]; ++s) {
      const std::size_t k = lu_col_idx_[s];
      const double lik = work_[k] / lu_values_[diag_pos_[k]];
      work_[k] = lik;
      if (lik == 0.0) continue;
      for (std::size_t t = diag_pos_[k] + 1; t < lu_row_ptr_[k + 1]; ++t) {
        work_[lu_col_idx_[t]] -= lik * lu_values_[t];
      }
    }
    // Pivot health: absolute floor only (the comparison also rejects
    // NaN), mirroring the dense singular test. A relative-to-row test
    // would misfire here: eliminating a gmin-pivoted node (e.g. a
    // source-driven MOSFET gate) legitimately puts ~1/gmin-scale
    // multipliers and fill into downstream rows, dwarfing healthy
    // pivots. Numerical quality is instead judged after the solve by
    // the caller's O(nnz) residual verification, which falls back to
    // dense partial-pivot LU on any doubt.
    const double pivot = work_[i];
    if (!(std::fabs(pivot) >= pivot_floor)) return false;
    // Gather the finished row.
    for (std::size_t s = row_begin; s < row_end; ++s) {
      lu_values_[s] = work_[lu_col_idx_[s]];
    }
  }
  return true;
}

void SparseLu::solve(const std::vector<double>& b, std::vector<double>& x) const {
  // work_ = P b, then forward/backward substitution in place.
  for (std::size_t i = 0; i < n_; ++i) work_[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = work_[i];
    for (std::size_t s = lu_row_ptr_[i]; s < diag_pos_[i]; ++s) {
      sum -= lu_values_[s] * work_[lu_col_idx_[s]];
    }
    work_[i] = sum;
  }
  for (std::size_t i = n_; i-- > 0;) {
    double sum = work_[i];
    for (std::size_t s = diag_pos_[i] + 1; s < lu_row_ptr_[i + 1]; ++s) {
      sum -= lu_values_[s] * work_[lu_col_idx_[s]];
    }
    work_[i] = sum / lu_values_[diag_pos_[i]];
  }
  for (std::size_t i = 0; i < n_; ++i) x[perm_[i]] = work_[i];
}

}  // namespace lsl::spice
