#include "spice/transient.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "spice/matrix.hpp"
#include "spice/stamp.hpp"
#include "spice/workspace.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace lsl::spice {

const std::vector<double>& TransientResult::probe(const std::string& name) const {
  const auto it = v.find(name);
  if (it == v.end()) throw std::invalid_argument("no such probe: " + name);
  return it->second;
}

double TransientResult::final_v(const std::string& name) const {
  const auto& samples = probe(name);
  if (samples.empty()) throw std::logic_error("empty probe: " + name);
  return samples.back();
}

Waveform dc_wave(double volts) {
  return [volts](double) { return volts; };
}

Waveform square_wave(double v_lo, double v_hi, double period, double delay) {
  return [=](double t) {
    if (t < delay) return v_lo;
    const double phase = std::fmod(t - delay, period);
    return phase < 0.5 * period ? v_hi : v_lo;
  };
}

Waveform pwl_wave(std::vector<std::pair<double, double>> points) {
  return [pts = std::move(points)](double t) {
    if (pts.empty()) return 0.0;
    if (t <= pts.front().first) return pts.front().second;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (t <= pts[i].first) {
        const auto& [t0, v0] = pts[i - 1];
        const auto& [t1, v1] = pts[i];
        // Duplicate (or unsorted) timestamps are a vertical edge: snap
        // to the later point instead of dividing by zero.
        if (t1 - t0 <= 0.0) return v1;
        const double f = (t - t0) / (t1 - t0);
        return v0 + f * (v1 - v0);
      }
    }
    return pts.back().second;
  };
}

namespace {

using Clock = std::chrono::steady_clock;

/// Newton iteration for one transient step (or the t=0 operating point
/// when ctx.dt == 0). Matrix/vector state lives in `ws`; after warm-up
/// the loop body performs no heap allocations (worst-node naming is
/// deferred to exit for the same reason).
SolveStatus step_newton(const Netlist& nl, const StampContext& ctx, const DcOptions& opts,
                        SolverWorkspace& ws, std::vector<double>& x, SolveDiagnostics& diag) {
  std::vector<double>& x_new = ws.iterate_scratch();
  const std::size_t n = nl.unknown_count();
  if (x.size() != n) x.assign(n, 0.0);
  const std::size_t n_volts = nl.node_count() - 1;

  bool have_worst = false;
  std::size_t worst = 0;
  const auto resolve_worst = [&] {
    if (have_worst) diag.worst_node = nl.node_name(static_cast<NodeId>(worst + 1));
  };

  for (int it = 0; it < opts.max_iterations; ++it) {
    ++diag.iterations;
    if (!ws.solve_newton_system(ctx, x, x_new, &diag)) {
      resolve_worst();
      return SolveStatus::kSingularMatrix;
    }
    double max_dv = 0.0;
    std::size_t it_worst = 0;
    for (std::size_t k = 0; k < n_volts; ++k) {
      double dv = x_new[k] - x[k];
      if (!std::isfinite(dv)) {
        resolve_worst();
        return SolveStatus::kNonFinite;
      }
      if (std::fabs(dv) > max_dv) {
        max_dv = std::fabs(dv);
        it_worst = k;
      }
      dv = std::clamp(dv, -opts.damping_limit, opts.damping_limit);
      x[k] += dv;
    }
    for (std::size_t k = n_volts; k < n; ++k) {
      if (!std::isfinite(x_new[k])) {
        resolve_worst();
        return SolveStatus::kNonFinite;
      }
      x[k] = x_new[k];
    }
    if (n_volts > 0) {
      worst = it_worst;
      have_worst = true;
    }
    diag.final_max_dv = max_dv;
    if (max_dv < opts.abs_tol) {
      resolve_worst();
      return SolveStatus::kConverged;
    }
  }
  resolve_worst();
  return SolveStatus::kMaxIterations;
}

}  // namespace

namespace {

/// Per-run metrics (instrument names: docs/OBSERVABILITY.md). The
/// per-step Newton histogram is recorded inline in the step loop; the
/// aggregates here close out one run_transient call.
void record_transient_metrics(const TransientResult& result,
                              const SolverWorkspace::Stats& ws_before,
                              const SolverWorkspace::Stats& ws_after) {
  auto& m = util::metrics();
  static util::Counter& runs = m.counter("solver.transient.runs");
  static util::Counter& failures = m.counter("solver.transient.failures");
  static util::Counter& steps = m.counter("solver.transient.steps_accepted");
  static util::Counter& halvings = m.counter("solver.transient.step_halvings");
  static util::Counter& iterations = m.counter("solver.transient.newton_iterations");
  static util::Counter& symbolic_builds = m.counter("solver.transient.symbolic_builds");
  static util::Counter& symbolic_reuse = m.counter("solver.transient.symbolic_reuse");
  static util::Counter& sparse_solves = m.counter("solver.transient.sparse_solves");
  static util::Counter& dense_fallbacks = m.counter("solver.transient.dense_fallbacks");
  runs.add(1);
  if (!result.ok) failures.add(1);
  steps.add(static_cast<std::int64_t>(result.steps_accepted));
  halvings.add(static_cast<std::int64_t>(result.step_halvings));
  iterations.add(result.newton_iterations);
  symbolic_builds.add(ws_after.symbolic_builds - ws_before.symbolic_builds);
  symbolic_reuse.add(ws_after.symbolic_reuse - ws_before.symbolic_reuse);
  sparse_solves.add(ws_after.sparse_solves - ws_before.sparse_solves);
  dense_fallbacks.add(ws_after.dense_fallbacks - ws_before.dense_fallbacks);
}

}  // namespace

TransientResult run_transient(const Netlist& nl,
                              const std::unordered_map<std::string, Waveform>& drives,
                              const TransientOptions& opts) {
  return run_transient(nl, drives, opts, SolverWorkspace::tls());
}

TransientResult run_transient(const Netlist& nl,
                              const std::unordered_map<std::string, Waveform>& drives,
                              const TransientOptions& opts, SolverWorkspace& ws) {
  nl.reindex();
  util::TraceSpan run_span("run_transient", "solver");
  const auto start = Clock::now();
  const SolverWorkspace::Stats ws_stats_before = ws.stats();
  TransientResult result;

  // Resolve waveform drives to device indices.
  std::vector<std::pair<std::size_t, const Waveform*>> drive_list;
  for (const auto& [name, wave] : drives) {
    const auto di = nl.find_device(name);
    if (!di.has_value()) throw std::invalid_argument("unknown drive source: " + name);
    if (!std::holds_alternative<VSource>(nl.device(*di).impl)) {
      throw std::invalid_argument(name + " is not a VSource");
    }
    drive_list.emplace_back(*di, &wave);
  }

  // Probe set.
  std::vector<std::pair<std::string, NodeId>> probes;
  if (opts.probes.empty()) {
    for (NodeId id = 1; id < nl.node_count(); ++id) probes.emplace_back(nl.node_name(id), id);
  } else {
    for (const auto& name : opts.probes) {
      const auto id = nl.find_node(name);
      if (!id.has_value()) throw std::invalid_argument("unknown probe node: " + name);
      probes.emplace_back(name, *id);
    }
  }
  for (const auto& [name, id] : probes) result.v.emplace(name, std::vector<double>{});

  std::unordered_map<std::size_t, double> overrides;
  auto set_overrides = [&](double t) {
    for (const auto& [di, wave] : drive_list) overrides[di] = (*wave)(t);
  };

  const auto fail = [&](SolveStatus st, double t) {
    result.status = st;
    result.diag.elapsed_sec = std::chrono::duration<double>(Clock::now() - start).count();
    record_transient_metrics(result, ws_stats_before, ws.stats());
    run_span.arg("steps", static_cast<double>(result.steps_accepted));
    run_span.arg("halvings", static_cast<double>(result.step_halvings));
    util::log_warn("run_transient: " + to_string(st) + " at t=" + std::to_string(t) +
                   " (worst node: " + result.diag.worst_node + ", " +
                   std::to_string(result.step_halvings) + " halvings)");
    return result;  // result.ok stays false; partial waveform retained
  };

  // Initial operating point at t = 0 (capacitors open, drives at t=0).
  set_overrides(0.0);
  StampContext ctx;
  ctx.nl = &nl;
  ctx.gmin = opts.newton.gmin_final;
  ctx.dt = 0.0;
  ctx.vsrc_override = &overrides;

  std::vector<double> x;
  {
    // Reuse the robust DC path by baking the t=0 drive values into a
    // netlist copy (continuation methods do not support overrides).
    Netlist op = nl;
    for (const auto& [di, wave] : drive_list) {
      std::get<VSource>(op.device(di).impl).volts = (*wave)(0.0);
    }
    const DcResult dc = solve_dc(op, opts.newton, ws);
    result.newton_iterations += dc.iterations;
    if (!dc.converged) {
      result.diag = dc.diag;
      util::log_warn("run_transient: t=0 operating point failed to converge");
      return fail(dc.status, 0.0);
    }
    x = dc.x;
  }

  // Node-indexed voltage history for the capacitor companions, plus the
  // per-capacitor branch currents the trapezoidal companion carries.
  // The t=0 operating point is a DC steady state, so capacitor currents
  // start at zero.
  std::vector<double> prev_node_v(nl.node_count(), 0.0);
  std::vector<double> prev_cap_i(nl.devices().size(), 0.0);
  auto capture_node_v = [&] {
    for (NodeId id = 1; id < nl.node_count(); ++id) prev_node_v[id] = node_voltage(nl, x, id);
  };
  capture_node_v();
  // Updates the capacitor-current history after a step of `dt_sub` is
  // accepted (prev_node_v still holds the pre-step voltages).
  auto update_cap_currents = [&](double dt_sub) {
    const auto& devices = nl.devices();
    for (std::size_t di = 0; di < devices.size(); ++di) {
      if (!devices[di].enabled) continue;
      const auto* c = std::get_if<Capacitor>(&devices[di].impl);
      if (c == nullptr) continue;
      const double vab_new = node_voltage(nl, x, c->a) - node_voltage(nl, x, c->b);
      const double vab_prev = prev_node_v[c->a] - prev_node_v[c->b];
      if (opts.integrator == Integrator::kTrapezoidal) {
        prev_cap_i[di] = (2.0 * c->farads / dt_sub) * (vab_new - vab_prev) - prev_cap_i[di];
      } else {
        prev_cap_i[di] = (c->farads / dt_sub) * (vab_new - vab_prev);
      }
    }
  };

  auto record = [&](double t) {
    result.time.push_back(t);
    for (const auto& [name, id] : probes) result.v[name].push_back(node_voltage(nl, x, id));
  };
  record(0.0);

  ctx.integrator = opts.integrator;
  ctx.prev_node_v = &prev_node_v;
  ctx.prev_cap_i = &prev_cap_i;
  const bool timed = opts.timeout_sec > 0.0;
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(timed ? opts.timeout_sec : 0.0));

  // Outer loop over the fixed output grid; inner loop adaptively
  // sub-steps from one grid point to the next, halving the timestep on
  // Newton failure. Samples land exactly on the k*dt grid, so consumers
  // that index by time/dt are unaffected by the sub-stepping.
  const auto n_steps = static_cast<std::size_t>(std::ceil(opts.t_stop / opts.dt));
  const double dt_floor = opts.dt / static_cast<double>(1 << std::max(opts.max_step_halvings, 0));
  std::vector<double> x_try;
  // Predictor state: the solution one accepted sub-step back and that
  // step's size, for the linear extrapolation of the next initial guess.
  std::vector<double> x_prev_accept;
  double prev_accept_dt = 0.0;
  // Per-step distributions. Newton-per-step costs nothing extra (the
  // count is already in hand); per-step wall time needs clock reads and
  // is gated with the rest of the detailed timing.
  auto& newton_per_step = util::metrics().histogram("solver.transient.newton_per_step");
  auto& step_seconds = util::metrics().histogram("solver.transient.step_seconds");
  const bool detailed = util::Metrics::detailed_timing();
  for (std::size_t step = 1; step <= n_steps; ++step) {
    const double t_grid = static_cast<double>(step) * opts.dt;
    double t = static_cast<double>(step - 1) * opts.dt;
    double sub_dt = opts.dt;

    while (t < t_grid - 0.5 * dt_floor) {
      if (timed && Clock::now() >= deadline) return fail(SolveStatus::kTimeout, t);
      sub_dt = std::min(sub_dt, t_grid - t);
      const double t_next = t + sub_dt;
      set_overrides(t_next);
      ctx.dt = sub_dt;
      x_try = x;
      if (opts.predictor && prev_accept_dt > 0.0 && x_prev_accept.size() == x.size()) {
        // First-order extrapolation through the last two accepted
        // points, scaled for the (possibly halved) current step size.
        const double a = sub_dt / prev_accept_dt;
        for (std::size_t i = 0; i < x_try.size(); ++i) {
          x_try[i] = x[i] + a * (x[i] - x_prev_accept[i]);
        }
      }
      SolveDiagnostics step_diag;
      const Clock::time_point step_t0 = detailed ? Clock::now() : Clock::time_point{};
      const SolveStatus st = step_newton(nl, ctx, opts.newton, ws, x_try, step_diag);
      if (detailed) {
        step_seconds.observe(std::chrono::duration<double>(Clock::now() - step_t0).count());
      }
      newton_per_step.observe(static_cast<double>(step_diag.iterations));
      result.newton_iterations += step_diag.iterations;
      if (st == SolveStatus::kConverged) {
        prev_accept_dt = sub_dt;
        std::swap(x_prev_accept, x);  // keep the outgoing point for the predictor
        x = std::move(x_try);
        // Residual and current history both need the PRE-step voltages
        // still in prev_node_v, so they run before capture_node_v.
        if (opts.record_kcl_residual) {
          // O(nnz) via the workspace's cached pattern (the free-function
          // kcl_residual_norm would stamp a dense matrix per sub-step).
          result.max_kcl_residual =
              std::max(result.max_kcl_residual, ws.kcl_residual_norm(ctx, x));
        }
        update_cap_currents(sub_dt);
        t = t_next;
        ++result.steps_accepted;
        result.t_reached = t;
        capture_node_v();
        continue;
      }
      result.diag = step_diag;
      if (sub_dt * 0.5 < dt_floor) {
        // The floor is the backstop against infinite halving; report
        // underflow unless the failure is structural (singular /
        // non-finite), which no smaller step will fix.
        const bool structural =
            st == SolveStatus::kSingularMatrix || st == SolveStatus::kNonFinite;
        return fail(structural ? st : SolveStatus::kTimestepUnderflow, t);
      }
      sub_dt *= 0.5;
      ++result.step_halvings;
    }
    record(t_grid);
  }
  result.ok = true;
  result.status = SolveStatus::kConverged;
  result.diag.elapsed_sec = std::chrono::duration<double>(Clock::now() - start).count();
  record_transient_metrics(result, ws_stats_before, ws.stats());
  run_span.arg("steps", static_cast<double>(result.steps_accepted));
  run_span.arg("halvings", static_cast<double>(result.step_halvings));
  return result;
}

}  // namespace lsl::spice
