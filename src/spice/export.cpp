#include "spice/export.hpp"

#include <cctype>
#include <sstream>

namespace lsl::spice {

std::string spice_node_name(const Netlist& nl, NodeId id) {
  if (id == kGround) return "0";
  std::string out;
  for (const char c : nl.node_name(id)) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

namespace {

std::string sanitize_device(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

std::string eng(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

std::string export_spice(const Netlist& nl, const ExportOptions& opts) {
  std::ostringstream os;
  os << "* " << opts.title << "\n";

  if (opts.with_models) {
    const ModelCard& m = nl.model();
    os << ".MODEL lsl_nmos NMOS (LEVEL=1 KP=" << eng(m.kp_n) << " VTO=" << eng(m.vt_n)
       << " LAMBDA=" << eng(m.lambda_n) << ")\n";
    os << ".MODEL lsl_pmos PMOS (LEVEL=1 KP=" << eng(m.kp_p) << " VTO=" << eng(m.vt_p)
       << " LAMBDA=" << eng(m.lambda_p) << ")\n";
  }

  for (const auto& dev : nl.devices()) {
    std::ostringstream line;
    const std::string dn = sanitize_device(dev.name);
    if (const auto* r = std::get_if<Resistor>(&dev.impl)) {
      line << "R" << dn << " " << spice_node_name(nl, r->a) << " " << spice_node_name(nl, r->b)
           << " " << eng(r->ohms);
    } else if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
      line << "C" << dn << " " << spice_node_name(nl, c->a) << " " << spice_node_name(nl, c->b)
           << " " << eng(c->farads);
    } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
      line << "V" << dn << " " << spice_node_name(nl, vs->p) << " " << spice_node_name(nl, vs->n)
           << " DC " << eng(vs->volts);
    } else if (const auto* is = std::get_if<ISource>(&dev.impl)) {
      line << "I" << dn << " " << spice_node_name(nl, is->p) << " " << spice_node_name(nl, is->n)
           << " DC " << eng(is->amps);
    } else if (const auto* e = std::get_if<Vcvs>(&dev.impl)) {
      line << "E" << dn << " " << spice_node_name(nl, e->p) << " " << spice_node_name(nl, e->n)
           << " " << spice_node_name(nl, e->cp) << " " << spice_node_name(nl, e->cn) << " "
           << eng(e->gain);
    } else if (const auto* m = std::get_if<Mosfet>(&dev.impl)) {
      // Bulk tied to the source rail (the model's implicit convention).
      const char* model = m->type == MosType::kNmos ? "lsl_nmos" : "lsl_pmos";
      line << "M" << dn << " " << spice_node_name(nl, m->d) << " " << spice_node_name(nl, m->g)
           << " " << spice_node_name(nl, m->s) << " " << spice_node_name(nl, m->s) << " " << model
           << " W=" << eng(m->w) << " L=" << eng(m->l);
    }
    if (!dev.enabled) {
      if (opts.keep_disabled_as_comments) os << "* (disabled) " << line.str() << "\n";
      continue;
    }
    os << line.str() << "\n";
  }
  os << ".END\n";
  return os.str();
}

}  // namespace lsl::spice
