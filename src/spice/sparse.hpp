// Sparse linear algebra for the MNA solver: a CSR matrix whose sparsity
// pattern is fixed once per netlist topology, plus an LU factorization
// that separates the one-off *symbolic* work (fill-reducing ordering,
// fill pattern) from the per-Newton-iteration *numeric* refactorization.
//
// MNA systems here are overwhelmingly sparse (a handful of entries per
// row) but small (tens to a few hundred unknowns), so the design favors
// simplicity with the right asymptotics over supernodal machinery:
//
//  - Ordering: minimum-degree over the node-voltage unknowns (their
//    diagonals are structurally nonzero thanks to gmin), with the
//    branch-current unknowns of V/E sources appended in natural order.
//    Eliminating branch rows last matters twice over: their diagonals
//    are structural zeros (a voltage source contributes no (bi,bi)
//    entry), and the ±1 incidence entries guarantee they *receive*
//    diagonal fill once their node neighbors are eliminated.
//  - Numeric factorization: up-looking row LU on the static pattern, no
//    pivoting. A per-row pivot-health check (absolute floor plus a
//    relative row test) rejects factorizations that static ordering
//    cannot handle; the caller then falls back to dense partial-pivot
//    LU, which preserves the existing singular-matrix semantics.
#pragma once

#include <cstddef>
#include <vector>

namespace lsl::spice {

inline constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/// Row-major CSR matrix with a two-phase life cycle: a pattern phase
/// (note every coordinate the stamps will ever touch; duplicates fine)
/// followed by a value phase (zero / add into resolved slots). The
/// diagonal is always part of the pattern. Re-entering the pattern
/// phase (begin_pattern) is the only way to change the structure.
class SparseMatrix {
 public:
  // --- pattern phase (cold: once per netlist topology) ---
  void begin_pattern(std::size_t n);
  void note(std::size_t r, std::size_t c);
  void finalize_pattern();

  std::size_t dim() const { return n_; }
  std::size_t nnz() const { return col_idx_.size(); }
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }

  /// Slot of entry (r, c), or kNoSlot if outside the pattern. Binary
  /// search — cold-path only; hot paths precompute slots.
  std::size_t slot(std::size_t r, std::size_t c) const;

  // --- value phase (hot: every Newton iteration) ---
  void zero() { std::fill(values_.begin(), values_.end(), 0.0); }
  void add(std::size_t slot, double v) { values_[slot] += v; }
  std::vector<double>& values() { return values_; }
  const std::vector<double>& values() const { return values_; }

  /// r += A·x - b over the pattern (the O(nnz) residual walk). `r` must
  /// be pre-sized to dim() and zeroed by the caller.
  void accumulate_residual(const std::vector<double>& x, const std::vector<double>& b,
                           std::vector<double>& r) const;

 private:
  std::size_t n_ = 0;
  bool building_ = false;
  std::vector<std::pair<std::size_t, std::size_t>> coords_;  // pattern phase
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// LU factorization of a SparseMatrix with cached symbolic analysis.
/// analyze() once per pattern; factor()/solve() every iteration.
class SparseLu {
 public:
  /// Symbolic phase: fill-reducing ordering plus fill pattern.
  /// Unknowns [0, n_volts) are node voltages (minimum-degree ordered);
  /// unknowns [n_volts, n) are branch currents, kept last in natural
  /// order. Allocates; never called from the hot loop.
  void analyze(const SparseMatrix& a, std::size_t n_volts);

  bool analyzed() const { return analyzed_; }
  std::size_t fill_nnz() const { return lu_col_idx_.size(); }

  /// Numeric refactorization of `a` (same pattern as analyzed) on the
  /// cached symbolic structure. Allocation-free. Returns false when a
  /// pivot falls below the absolute floor (or is NaN) — the
  /// static-order factorization is then untrustworthy and the caller
  /// should use the dense fallback. Quality beyond that is the
  /// caller's job: verify the solve's residual, since static ordering
  /// has no partial pivoting to bound element growth.
  bool factor(const SparseMatrix& a, double pivot_floor);

  /// Solves A x = b using the last successful factor(). Allocation-free;
  /// `x` must be pre-sized to dim(). `x` and `b` may not alias.
  void solve(const std::vector<double>& b, std::vector<double>& x) const;

 private:
  std::size_t n_ = 0;
  bool analyzed_ = false;
  std::vector<std::size_t> perm_;  // permuted row i <- original perm_[i]
  std::vector<std::size_t> pinv_;  // original r -> permuted position
  // LU pattern over permuted indices, rows sorted; diag_pos_[i] is the
  // slot of the diagonal inside row i (L strictly left, U from there).
  std::vector<std::size_t> lu_row_ptr_;
  std::vector<std::size_t> lu_col_idx_;
  std::vector<std::size_t> diag_pos_;
  std::vector<double> lu_values_;
  mutable std::vector<double> work_;  // dense scatter row / solve scratch
};

}  // namespace lsl::spice
