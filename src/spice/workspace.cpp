#include "spice/workspace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/metrics.hpp"

namespace lsl::spice {

SolverTuning& solver_tuning() {
  static SolverTuning tuning;
  return tuning;
}

SolverWorkspace& SolverWorkspace::tls() {
  thread_local SolverWorkspace ws;
  return ws;
}

void SolverWorkspace::clear() {
  entries_.clear();
  lru_tick_ = 0;
}

void SolverWorkspace::seed_from(const std::vector<double>& x) {
  pending_seed_ = x;
  has_pending_seed_ = true;
}

void SolverWorkspace::seed_from(std::vector<double>&& x) {
  pending_seed_ = std::move(x);
  has_pending_seed_ = true;
}

bool SolverWorkspace::take_pending_seed(std::vector<double>& out) {
  if (!has_pending_seed_) return false;
  out.swap(pending_seed_);
  pending_seed_.clear();
  has_pending_seed_ = false;
  return true;
}

namespace {

inline std::ptrdiff_t unknown_of(const Netlist& nl, NodeId node) {
  if (node == kGround) return -1;
  return static_cast<std::ptrdiff_t>(nl.voltage_index(node));
}

/// True when the overlay excludes device `di` from the matrix stamps.
inline bool overlay_skips(const LowRankOverlay* ov, std::size_t di) {
  if (ov == nullptr) return false;
  for (const std::size_t s : ov->skip_devices) {
    if (s == di) return true;
  }
  return false;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

inline void mix_double(std::uint64_t& h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  mix(h, bits);
}

/// FNV-1a over everything that shapes the MNA matrix: node count, model
/// card, and each non-skipped device's kind, enabled flag, terminals,
/// and matrix-entering values — in device order, so the sequence itself
/// is part of the key. Deliberately excluded: device *names* (fault
/// copies rename nothing else) and RHS-only values (VSource::volts,
/// ISource::amps), which the solver rereads every iteration. Disabled
/// devices still contribute their kind/terminals so that enabling one
/// changes the key.
std::uint64_t structural_key(const Netlist& nl, const LowRankOverlay* ov) {
  std::uint64_t h = kFnvOffset;
  mix(h, nl.node_count());
  const ModelCard& mc = nl.model();
  mix_double(h, mc.kp_n);
  mix_double(h, mc.kp_p);
  mix_double(h, mc.vt_n);
  mix_double(h, mc.vt_p);
  mix_double(h, mc.lambda_n);
  mix_double(h, mc.lambda_p);
  const auto& devices = nl.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    if (overlay_skips(ov, di)) continue;
    const Device& dev = devices[di];
    mix(h, (static_cast<std::uint64_t>(dev.impl.index()) << 1) | (dev.enabled ? 1u : 0u));
    if (const auto* r = std::get_if<Resistor>(&dev.impl)) {
      mix(h, r->a);
      mix(h, r->b);
      mix_double(h, r->ohms);
    } else if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
      mix(h, c->a);
      mix(h, c->b);
      mix_double(h, c->farads);
    } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
      mix(h, vs->p);
      mix(h, vs->n);
    } else if (const auto* is = std::get_if<ISource>(&dev.impl)) {
      mix(h, is->p);
      mix(h, is->n);
    } else if (const auto* vcvs = std::get_if<Vcvs>(&dev.impl)) {
      mix(h, vcvs->p);
      mix(h, vcvs->n);
      mix(h, vcvs->cp);
      mix(h, vcvs->cn);
      mix_double(h, vcvs->gain);
    } else if (const auto* mos = std::get_if<Mosfet>(&dev.impl)) {
      mix(h, mos->d);
      mix(h, mos->g);
      mix(h, mos->s);
      mix(h, mos->type == MosType::kNmos ? 1u : 2u);
      mix_double(h, mos->w);
      mix_double(h, mos->l);
      mix_double(h, mos->vt_delta);
    }
  }
  return h;
}

std::uint64_t skip_signature(const LowRankOverlay* ov) {
  if (ov == nullptr || ov->skip_devices.empty()) return 0;
  std::uint64_t h = kFnvOffset;
  for (const std::size_t s : ov->skip_devices) mix(h, s);
  return h;
}

/// Dense k×k LU with partial pivoting, in place, k <= 4. Returns false
/// on a zero (or NaN) pivot.
bool small_lu_factor(double* s, int* piv, std::size_t k) {
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t p = col;
    for (std::size_t row = col + 1; row < k; ++row) {
      if (std::fabs(s[row * k + col]) > std::fabs(s[p * k + col])) p = row;
    }
    if (!(std::fabs(s[p * k + col]) > 0.0)) return false;  // zero or NaN
    piv[col] = static_cast<int>(p);
    if (p != col) {
      for (std::size_t c = 0; c < k; ++c) std::swap(s[p * k + c], s[col * k + c]);
    }
    const double d = s[col * k + col];
    for (std::size_t row = col + 1; row < k; ++row) {
      const double f = s[row * k + col] / d;
      s[row * k + col] = f;
      for (std::size_t c = col + 1; c < k; ++c) s[row * k + c] -= f * s[col * k + c];
    }
  }
  return true;
}

void small_lu_solve(const double* s, const int* piv, std::size_t k, double* y) {
  for (std::size_t col = 0; col < k; ++col) {
    const std::size_t p = static_cast<std::size_t>(piv[col]);
    if (p != col) std::swap(y[p], y[col]);
    for (std::size_t row = col + 1; row < k; ++row) y[row] -= s[row * k + col] * y[col];
  }
  for (std::size_t col = k; col-- > 0;) {
    y[col] /= s[col * k + col];
    for (std::size_t row = 0; row < col; ++row) y[row] -= s[row * k + col] * y[col];
  }
}

}  // namespace

std::uint64_t SolverWorkspace::entry_key(const StampContext& ctx) {
  const std::uint64_t gen = ctx.nl->generation();
  const std::uint64_t sig = skip_signature(ctx.overlay);
  for (const KeyMemo& m : key_memo_) {
    if (m.valid && m.generation == gen && m.skip_sig == sig) return m.key;
  }
  const std::uint64_t key = structural_key(*ctx.nl, ctx.overlay);
  KeyMemo& slot = key_memo_[key_memo_next_];
  key_memo_next_ = (key_memo_next_ + 1) % key_memo_.size();
  slot.valid = true;
  slot.generation = gen;
  slot.skip_sig = sig;
  slot.key = key;
  return key;
}

SolverWorkspace::Entry& SolverWorkspace::entry_for(const StampContext& ctx) {
  const std::uint64_t key = entry_key(ctx);
  ++lru_tick_;
  for (auto& e : entries_) {
    if (!e->used || e->key != key) continue;
    if (e->n == ctx.nl->unknown_count() && e->n_volts == ctx.nl->node_count() - 1) {
      e->last_use = lru_tick_;
      ++stats_.symbolic_reuse;
      return *e;
    }
    // Hash collision (same key, different structure): rebuild in place
    // so two entries never share a key.
    build_entry(*e, ctx);
    e->last_use = lru_tick_;
    ++stats_.symbolic_builds;
    return *e;
  }
  Entry* slot = nullptr;
  if (entries_.size() < kMaxEntries) {
    entries_.push_back(std::make_unique<Entry>());
    slot = entries_.back().get();
  } else {
    slot = entries_.front().get();
    for (auto& e : entries_) {
      if (e->last_use < slot->last_use) slot = e.get();
    }
  }
  build_entry(*slot, ctx);
  slot->key = key;
  slot->used = true;
  slot->last_use = lru_tick_;
  ++stats_.symbolic_builds;
  return *slot;
}

void SolverWorkspace::build_entry(Entry& e, const StampContext& ctx) {
  const Netlist& nl = *ctx.nl;
  const LowRankOverlay* ov = ctx.overlay;
  const std::size_t n = nl.unknown_count();  // reindexes if needed
  e.n = n;
  e.n_volts = nl.node_count() - 1;
  e.base_valid = false;
  e.smw_k = 0;
  e.mos.clear();

  // Pattern: every coordinate any stamp configuration can touch. The
  // capacitor slots are noted unconditionally so the same pattern (and
  // symbolic factorization) serves DC (dt = 0) and every timestep.
  // Overlay-skipped devices are excluded — the pattern describes the
  // *base* structure the SMW path factors.
  SparseMatrix& m = e.mat;
  m.begin_pattern(n);
  auto note_pair = [&](NodeId a, NodeId b) {
    const std::ptrdiff_t ia = unknown_of(nl, a);
    const std::ptrdiff_t ib = unknown_of(nl, b);
    if (ia >= 0 && ib >= 0) {
      m.note(static_cast<std::size_t>(ia), static_cast<std::size_t>(ib));
      m.note(static_cast<std::size_t>(ib), static_cast<std::size_t>(ia));
    }
    // Diagonals are in the pattern implicitly.
  };
  const auto& devices = nl.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled || overlay_skips(ov, di)) continue;
    if (const auto* r = std::get_if<Resistor>(&dev.impl)) {
      note_pair(r->a, r->b);
    } else if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
      note_pair(c->a, c->b);
    } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      if (vs->p != kGround) {
        m.note(nl.voltage_index(vs->p), bi);
        m.note(bi, nl.voltage_index(vs->p));
      }
      if (vs->n != kGround) {
        m.note(nl.voltage_index(vs->n), bi);
        m.note(bi, nl.voltage_index(vs->n));
      }
    } else if (std::get_if<ISource>(&dev.impl) != nullptr) {
      // RHS only.
    } else if (const auto* vcvs = std::get_if<Vcvs>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      if (vcvs->p != kGround) {
        m.note(nl.voltage_index(vcvs->p), bi);
        m.note(bi, nl.voltage_index(vcvs->p));
      }
      if (vcvs->n != kGround) {
        m.note(nl.voltage_index(vcvs->n), bi);
        m.note(bi, nl.voltage_index(vcvs->n));
      }
      if (vcvs->cp != kGround) m.note(bi, nl.voltage_index(vcvs->cp));
      if (vcvs->cn != kGround) m.note(bi, nl.voltage_index(vcvs->cn));
    } else if (const auto* mos = std::get_if<Mosfet>(&dev.impl)) {
      const std::ptrdiff_t xd = unknown_of(nl, mos->d);
      const std::ptrdiff_t xg = unknown_of(nl, mos->g);
      const std::ptrdiff_t xs = unknown_of(nl, mos->s);
      for (const std::ptrdiff_t row : {xd, xs}) {
        if (row < 0) continue;
        for (const std::ptrdiff_t col : {xd, xg, xs}) {
          if (col >= 0) m.note(static_cast<std::size_t>(row), static_cast<std::size_t>(col));
        }
      }
    }
  }
  m.finalize_pattern();

  e.diag_slot.resize(n);
  for (std::size_t i = 0; i < n; ++i) e.diag_slot[i] = m.slot(i, i);

  // Precomputed MOSFET stamp slots (the only per-iteration matrix work).
  // Device indices are raw — hash-equal netlists must agree on them,
  // which the LowRankOverlay contract (skips never precede a MOSFET)
  // guarantees for fault copies.
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled || overlay_skips(ov, di)) continue;
    const auto* mos = std::get_if<Mosfet>(&dev.impl);
    if (mos == nullptr) continue;
    MosSlots ms;
    ms.device = di;
    ms.xd = unknown_of(nl, mos->d);
    ms.xg = unknown_of(nl, mos->g);
    ms.xs = unknown_of(nl, mos->s);
    auto row_slots = [&](std::ptrdiff_t row, std::size_t& sd, std::size_t& sg, std::size_t& ss) {
      if (row < 0) return;
      const std::size_t r = static_cast<std::size_t>(row);
      if (ms.xd >= 0) sd = m.slot(r, static_cast<std::size_t>(ms.xd));
      if (ms.xg >= 0) sg = m.slot(r, static_cast<std::size_t>(ms.xg));
      if (ms.xs >= 0) ss = m.slot(r, static_cast<std::size_t>(ms.xs));
    };
    row_slots(ms.xd, ms.dd, ms.dg, ms.ds);
    row_slots(ms.xs, ms.sd, ms.sg, ms.ss);
    e.mos.push_back(ms);
  }

  e.lu.analyze(m, e.n_volts);
  e.base_values.assign(m.nnz(), 0.0);
  e.b.assign(n, 0.0);
  e.refine_r.assign(n, 0.0);
  e.refine_dx.assign(n, 0.0);
}

void SolverWorkspace::ensure_linear_base(Entry& e, const StampContext& ctx) {
  if (e.base_valid && e.base_gmin == ctx.gmin && e.base_dt == ctx.dt &&
      e.base_integrator == ctx.integrator) {
    ++stats_.linear_stamp_reuse;
    return;
  }
  const Netlist& nl = *ctx.nl;
  const LowRankOverlay* ov = ctx.overlay;
  SparseMatrix& m = e.mat;
  std::fill(e.base_values.begin(), e.base_values.end(), 0.0);
  // Stamp the linear skeleton directly into base_values via the pattern
  // slots. slot() is a binary search, but this runs once per (topology,
  // gmin, dt, integrator) configuration, not per iteration.
  auto base_add = [&](std::size_t r, std::size_t c, double v) {
    e.base_values[m.slot(r, c)] += v;
  };
  auto add_g = [&](NodeId a, NodeId b, double cond) {
    const std::ptrdiff_t ia = unknown_of(nl, a);
    const std::ptrdiff_t ib = unknown_of(nl, b);
    if (ia >= 0) {
      e.base_values[e.diag_slot[static_cast<std::size_t>(ia)]] += cond;
      if (ib >= 0) base_add(static_cast<std::size_t>(ia), static_cast<std::size_t>(ib), -cond);
    }
    if (ib >= 0) {
      e.base_values[e.diag_slot[static_cast<std::size_t>(ib)]] += cond;
      if (ia >= 0) base_add(static_cast<std::size_t>(ib), static_cast<std::size_t>(ia), -cond);
    }
  };

  for (std::size_t i = 0; i < e.n_volts; ++i) e.base_values[e.diag_slot[i]] += ctx.gmin;

  const auto& devices = nl.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled || overlay_skips(ov, di)) continue;
    if (const auto* r = std::get_if<Resistor>(&dev.impl)) {
      if (r->ohms <= 0.0) throw std::invalid_argument("non-positive resistance: " + dev.name);
      add_g(r->a, r->b, 1.0 / r->ohms);
    } else if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
      if (ctx.dt > 0.0) {
        const double gc = (ctx.integrator == Integrator::kTrapezoidal ? 2.0 : 1.0) * c->farads /
                          ctx.dt;
        add_g(c->a, c->b, gc);
      }
    } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      if (vs->p != kGround) {
        base_add(nl.voltage_index(vs->p), bi, 1.0);
        base_add(bi, nl.voltage_index(vs->p), 1.0);
      }
      if (vs->n != kGround) {
        base_add(nl.voltage_index(vs->n), bi, -1.0);
        base_add(bi, nl.voltage_index(vs->n), -1.0);
      }
    } else if (const auto* vcvs = std::get_if<Vcvs>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      if (vcvs->p != kGround) {
        base_add(nl.voltage_index(vcvs->p), bi, 1.0);
        base_add(bi, nl.voltage_index(vcvs->p), 1.0);
      }
      if (vcvs->n != kGround) {
        base_add(nl.voltage_index(vcvs->n), bi, -1.0);
        base_add(bi, nl.voltage_index(vcvs->n), -1.0);
      }
      if (vcvs->cp != kGround) base_add(bi, nl.voltage_index(vcvs->cp), -vcvs->gain);
      if (vcvs->cn != kGround) base_add(bi, nl.voltage_index(vcvs->cn), vcvs->gain);
    }
    // ISource: RHS only. Mosfet: nonlinear, stamped per iteration.
  }

  e.base_valid = true;
  e.base_gmin = ctx.gmin;
  e.base_dt = ctx.dt;
  e.base_integrator = ctx.integrator;
  ++stats_.linear_stamp_builds;
}

void SolverWorkspace::stamp_rhs(Entry& e, const StampContext& ctx) {
  const Netlist& nl = *ctx.nl;
  const LowRankOverlay* ov = ctx.overlay;
  std::fill(e.b.begin(), e.b.end(), 0.0);
  auto add_i = [&](NodeId p, NodeId nn, double i) {
    if (p != kGround) e.b[nl.voltage_index(p)] -= i;
    if (nn != kGround) e.b[nl.voltage_index(nn)] += i;
  };
  const auto& devices = nl.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled || overlay_skips(ov, di)) continue;
    if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
      if (ctx.dt > 0.0) {
        const double vab_prev = ctx.prev_node_v->at(c->a) - ctx.prev_node_v->at(c->b);
        if (ctx.integrator == Integrator::kTrapezoidal) {
          const double gc = 2.0 * c->farads / ctx.dt;
          add_i(c->b, c->a, gc * vab_prev + ctx.prev_cap_i->at(di));
        } else {
          const double gc = c->farads / ctx.dt;
          add_i(c->b, c->a, gc * vab_prev);
        }
      }
    } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
      double value = vs->volts;
      if (ctx.vsrc_override != nullptr) {
        const auto it = ctx.vsrc_override->find(di);
        if (it != ctx.vsrc_override->end()) value = it->second;
      }
      e.b[nl.branch_index(di)] = value * ctx.source_scale;
    } else if (const auto* is = std::get_if<ISource>(&dev.impl)) {
      add_i(is->p, is->n, is->amps * ctx.source_scale);
    }
    // Mosfet ieq is folded in by stamp_nonlinear.
  }
}

void SolverWorkspace::stamp_nonlinear(Entry& e, const StampContext& ctx,
                                      const std::vector<double>& x) {
  const Netlist& nl = *ctx.nl;
  std::vector<double>& vals = e.mat.values();
  const auto& devices = nl.devices();
  for (const MosSlots& ms : e.mos) {
    const auto& mos = std::get<Mosfet>(devices[ms.device].impl);
    const double vd = ms.xd >= 0 ? x[static_cast<std::size_t>(ms.xd)] : 0.0;
    const double vg = ms.xg >= 0 ? x[static_cast<std::size_t>(ms.xg)] : 0.0;
    const double vs = ms.xs >= 0 ? x[static_cast<std::size_t>(ms.xs)] : 0.0;
    const MosEval ev = eval_mosfet(mos, nl.model(), vd, vg, vs);
    if (ms.xd >= 0) {
      vals[ms.dd] += ev.d_vd;
      if (ms.xg >= 0) vals[ms.dg] += ev.d_vg;
      if (ms.xs >= 0) vals[ms.ds] += ev.d_vs;
    }
    if (ms.xs >= 0) {
      if (ms.xd >= 0) vals[ms.sd] -= ev.d_vd;
      if (ms.xg >= 0) vals[ms.sg] -= ev.d_vg;
      vals[ms.ss] -= ev.d_vs;
    }
    const double ieq = ev.id - ev.d_vd * vd - ev.d_vg * vg - ev.d_vs * vs;
    if (ms.xd >= 0) e.b[static_cast<std::size_t>(ms.xd)] -= ieq;
    if (ms.xs >= 0) e.b[static_cast<std::size_t>(ms.xs)] += ieq;
  }
}

bool SolverWorkspace::smw_prepare(Entry& e, const LowRankOverlay& ov) {
  // W = A⁻¹U (one triangular-solve pair per term) and the k×k capacitance
  // matrix S = C⁻¹ + UᵀW, C = diag(g), factored in place for reuse by
  // the solve and every refinement step of this iteration.
  const std::size_t k = ov.terms.size();
  e.smw_k = 0;
  if (e.smw_rhs.size() != e.n) e.smw_rhs.assign(e.n, 0.0);
  if (e.smw_z.size() != e.n) e.smw_z.assign(e.n, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    const LowRankOverlay::Term& t = ov.terms[j];
    if (!(t.g > 0.0)) return false;
    std::vector<double>& wj = e.smw_w[j];
    if (wj.size() != e.n) wj.assign(e.n, 0.0);
    std::fill(e.smw_rhs.begin(), e.smw_rhs.end(), 0.0);
    if (t.a >= 0) e.smw_rhs[static_cast<std::size_t>(t.a)] += 1.0;
    if (t.b >= 0) e.smw_rhs[static_cast<std::size_t>(t.b)] -= 1.0;
    e.lu.solve(e.smw_rhs, wj);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const LowRankOverlay::Term& ti = ov.terms[i];
    for (std::size_t j = 0; j < k; ++j) {
      const std::vector<double>& wj = e.smw_w[j];
      double acc = (i == j) ? 1.0 / ti.g : 0.0;
      if (ti.a >= 0) acc += wj[static_cast<std::size_t>(ti.a)];
      if (ti.b >= 0) acc -= wj[static_cast<std::size_t>(ti.b)];
      e.smw_s[i * k + j] = acc;
    }
  }
  if (!small_lu_factor(e.smw_s.data(), e.smw_piv.data(), k)) return false;
  e.smw_k = k;
  return true;
}

void SolverWorkspace::smw_apply(Entry& e, const LowRankOverlay& ov, const std::vector<double>& rhs,
                                std::vector<double>& out) {
  // x = A_f⁻¹ rhs = z − W·S⁻¹·(Uᵀz), z = A⁻¹ rhs (Woodbury identity).
  const std::size_t k = e.smw_k;
  e.lu.solve(rhs, e.smw_z);
  double m[kSmwMaxRank] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t j = 0; j < k; ++j) {
    const LowRankOverlay::Term& t = ov.terms[j];
    double acc = 0.0;
    if (t.a >= 0) acc += e.smw_z[static_cast<std::size_t>(t.a)];
    if (t.b >= 0) acc -= e.smw_z[static_cast<std::size_t>(t.b)];
    m[j] = acc;
  }
  small_lu_solve(e.smw_s.data(), e.smw_piv.data(), k, m);
  if (out.size() != e.n) out.assign(e.n, 0.0);
  std::copy(e.smw_z.begin(), e.smw_z.end(), out.begin());
  for (std::size_t j = 0; j < k; ++j) {
    if (m[j] == 0.0) continue;
    const std::vector<double>& wj = e.smw_w[j];
    for (std::size_t i = 0; i < e.n; ++i) out[i] -= m[j] * wj[i];
  }
}

bool SolverWorkspace::residual_acceptable(const Entry& e, const LowRankOverlay* ov,
                                          const std::vector<double>& x_new) const {
  // Row-wise backward-error test: |A x - b|_i against the row's own
  // magnitude scale, with a small absolute slack. The slack matters:
  // fault edits leave near-isolated nodes whose rows are numerically
  // zero (scale ~1e-30); their residual carries no information and a
  // pure relative test would reject a perfectly good solve. With an
  // overlay, the test is against the *faulted* system A_f = A + UCUᵀ —
  // the terms' conductance contributions join both acc and scale, so
  // the gate is exactly as strict as PR 4's on a directly stamped A_f.
  const double rel = solver_tuning().sparse_residual_rel_tol;
  const auto& rp = e.mat.row_ptr();
  const auto& ci = e.mat.col_idx();
  const auto& av = e.mat.values();
  for (std::size_t i = 0; i < e.n; ++i) {
    double acc = -e.b[i];
    double scale = std::fabs(e.b[i]);
    for (std::size_t s = rp[i]; s < rp[i + 1]; ++s) {
      const double term = av[s] * x_new[ci[s]];
      acc += term;
      scale += std::fabs(term);
    }
    if (ov != nullptr) {
      const std::ptrdiff_t row = static_cast<std::ptrdiff_t>(i);
      for (const LowRankOverlay::Term& t : ov->terms) {
        if (row != t.a && row != t.b) continue;
        const double xa = t.a >= 0 ? x_new[static_cast<std::size_t>(t.a)] : 0.0;
        const double xb = t.b >= 0 ? x_new[static_cast<std::size_t>(t.b)] : 0.0;
        acc += (row == t.a) ? t.g * (xa - xb) : t.g * (xb - xa);
        scale += std::fabs(t.g * xa) + std::fabs(t.g * xb);
      }
    }
    if (!(std::fabs(acc) <= rel * scale + 1e-30)) return false;  // NaN fails too
  }
  return true;
}

void SolverWorkspace::refine(Entry& e, const LowRankOverlay* ov, std::vector<double>& x_new) {
  // One step of iterative refinement on the existing factorization:
  // r = G·x − b in working precision, then x −= G⁻¹r. O(nnz) — far
  // cheaper than the dense fallback, and recovers the digits lost to
  // element growth in the no-pivot factorization (fault circuits mix
  // short conductances ~1e3 S with gmin ~1e-12 S in one matrix). Under
  // an overlay, both the residual and the correction are taken against
  // the faulted system (the correction via the same Woodbury applies).
  const auto& rp = e.mat.row_ptr();
  const auto& ci = e.mat.col_idx();
  const auto& av = e.mat.values();
  for (std::size_t i = 0; i < e.n; ++i) {
    double acc = -e.b[i];
    for (std::size_t s = rp[i]; s < rp[i + 1]; ++s) acc += av[s] * x_new[ci[s]];
    e.refine_r[i] = acc;
  }
  if (ov != nullptr) {
    for (const LowRankOverlay::Term& t : ov->terms) {
      const double xa = t.a >= 0 ? x_new[static_cast<std::size_t>(t.a)] : 0.0;
      const double xb = t.b >= 0 ? x_new[static_cast<std::size_t>(t.b)] : 0.0;
      const double d = t.g * (xa - xb);
      if (t.a >= 0) e.refine_r[static_cast<std::size_t>(t.a)] += d;
      if (t.b >= 0) e.refine_r[static_cast<std::size_t>(t.b)] -= d;
    }
  }
  if (ov != nullptr && e.smw_k > 0) {
    smw_apply(e, *ov, e.refine_r, e.refine_dx);
  } else {
    e.lu.solve(e.refine_r, e.refine_dx);
  }
  for (std::size_t i = 0; i < e.n; ++i) x_new[i] -= e.refine_dx[i];
}

bool SolverWorkspace::dense_solve(const StampContext& ctx, const std::vector<double>& x,
                                  std::vector<double>& x_new) {
  // stamp_system knows nothing of overlays and stamps the full netlist
  // — including any overlay-skipped devices — which is exactly the
  // faulted system, so the dense path is always an exact reference.
  stamp_system(ctx, x, dense_g_, dense_b_);
  if (!lu_solve_inplace(dense_g_, dense_b_)) return false;
  x_new = dense_b_;
  return true;
}

bool SolverWorkspace::solve_newton_system(const StampContext& ctx, const std::vector<double>& x,
                                          std::vector<double>& x_new, SolveDiagnostics* diag) {
  const Netlist& nl = *ctx.nl;
  const std::size_t n = nl.unknown_count();
  if (n == 0) return false;

  const SolverTuning& t = solver_tuning();
  const bool timing = diag != nullptr && util::Metrics::detailed_timing();
  using Clock = std::chrono::steady_clock;

  if (t.force_dense || (n < t.dense_crossover && !t.force_sparse)) {
    const auto t0 = timing ? Clock::now() : Clock::time_point{};
    const bool ok = dense_solve(ctx, x, x_new);
    ++stats_.dense_solves;
    if (timing) {
      // The dense path interleaves stamping and factoring; attribute it
      // all to factor time, matching the dominant cost.
      diag->factor_sec += std::chrono::duration<double>(Clock::now() - t0).count();
    }
    return ok;
  }

  // Once a solve rejects an overlay, every later iteration of the same
  // solve would reject it for the same reason (the bridge conductance
  // does not change between iterations) — skip the doomed attempt and
  // go straight to the full-netlist path instead of paying for both.
  if (ctx.overlay != nullptr && smw_suppressed_) {
    ++stats_.smw_fallbacks;
    StampContext full = ctx;
    full.overlay = nullptr;
    return solve_newton_system(full, x, x_new, diag);
  }

  const auto t0 = timing ? Clock::now() : Clock::time_point{};
  Entry& e = entry_for(ctx);
  ensure_linear_base(e, ctx);
  std::copy(e.base_values.begin(), e.base_values.end(), e.mat.values().begin());
  stamp_rhs(e, ctx);
  stamp_nonlinear(e, ctx, x);
  const auto t1 = timing ? Clock::now() : Clock::time_point{};
  if (timing) diag->stamp_sec += std::chrono::duration<double>(t1 - t0).count();

  const LowRankOverlay* ov = ctx.overlay;
  const std::size_t k = ov != nullptr ? ov->terms.size() : 0;
  e.smw_k = 0;
  bool ok = false;
  if (k <= kSmwMaxRank) {
    if (e.lu.factor(e.mat, 1e-18)) {
      const bool smw_ok = (k == 0) || smw_prepare(e, *ov);
      if (smw_ok) {
        if (x_new.size() != n) x_new.assign(n, 0.0);
        if (k > 0) {
          smw_apply(e, *ov, e.b, x_new);
        } else {
          e.lu.solve(e.b, x_new);
        }
        // Backward-error gate with a few O(nnz) refinement rescues.
        // Moderate element growth (no partial pivoting) contracts to the
        // gate in one or two steps; catastrophic growth (fault circuits
        // mixing ~1e3 S shorts with ~1e-12 S opens can hit ~1e15) leaves
        // the residual near 1.0 where refinement cannot help — those rows
        // genuinely need partial pivoting and take the dense fallback.
        ok = residual_acceptable(e, k > 0 ? ov : nullptr, x_new);
        for (int step = 0; !ok && step < 4; ++step) {
          refine(e, k > 0 ? ov : nullptr, x_new);
          ++stats_.refinement_steps;
          ok = residual_acceptable(e, k > 0 ? ov : nullptr, x_new);
        }
        if (!ok) ++stats_.residual_rejects;
      }
    } else {
      ++stats_.pivot_rejects;
    }
  }
  // k > kSmwMaxRank: the cached pattern excludes the skipped devices and
  // the rank is too wide for Woodbury — only the dense path (which
  // stamps the full netlist) represents this system exactly.
  if (ok) {
    ++stats_.sparse_solves;
    if (k > 0) ++stats_.smw_solves;
  } else if (k > 0) {
    // A rejected low-rank solve retries on the ordinary sparse path of
    // the *full* faulted netlist (the overlay-skipped devices stamped
    // for real) — exact, far cheaper than the dense reference, and
    // still guarded by the dense fallback inside the recursive call.
    ++stats_.smw_fallbacks;
    smw_suppressed_ = true;
    if (timing) diag->factor_sec += std::chrono::duration<double>(Clock::now() - t1).count();
    StampContext full = ctx;
    full.overlay = nullptr;
    return solve_newton_system(full, x, x_new, diag);
  } else {
    ++stats_.dense_fallbacks;
    ok = dense_solve(ctx, x, x_new);
  }
  if (timing) diag->factor_sec += std::chrono::duration<double>(Clock::now() - t1).count();
  return ok;
}

void SolverWorkspace::mna_residual(const StampContext& ctx, const std::vector<double>& x,
                                   std::vector<double>& r) {
  const std::size_t n = ctx.nl->unknown_count();
  Entry& e = entry_for(ctx);
  ensure_linear_base(e, ctx);
  std::copy(e.base_values.begin(), e.base_values.end(), e.mat.values().begin());
  stamp_rhs(e, ctx);
  stamp_nonlinear(e, ctx, x);
  if (r.size() != n) r.resize(n);
  std::fill(r.begin(), r.end(), 0.0);
  e.mat.accumulate_residual(x, e.b, r);
  if (ctx.overlay != nullptr) {
    for (const LowRankOverlay::Term& t : ctx.overlay->terms) {
      const double xa = t.a >= 0 ? x[static_cast<std::size_t>(t.a)] : 0.0;
      const double xb = t.b >= 0 ? x[static_cast<std::size_t>(t.b)] : 0.0;
      const double d = t.g * (xa - xb);
      if (t.a >= 0) r[static_cast<std::size_t>(t.a)] += d;
      if (t.b >= 0) r[static_cast<std::size_t>(t.b)] -= d;
    }
  }
}

double SolverWorkspace::kcl_residual_norm(const StampContext& ctx, const std::vector<double>& x) {
  Entry& e = entry_for(ctx);
  ensure_linear_base(e, ctx);
  std::copy(e.base_values.begin(), e.base_values.end(), e.mat.values().begin());
  stamp_rhs(e, ctx);
  stamp_nonlinear(e, ctx, x);
  // Residual of the node (KCL) rows only, without materializing r.
  const LowRankOverlay* ov = ctx.overlay;
  const auto& rp = e.mat.row_ptr();
  const auto& ci = e.mat.col_idx();
  const auto& av = e.mat.values();
  double worst = 0.0;
  for (std::size_t i = 0; i < e.n_volts; ++i) {
    double acc = -e.b[i];
    for (std::size_t s = rp[i]; s < rp[i + 1]; ++s) acc += av[s] * x[ci[s]];
    if (ov != nullptr) {
      const std::ptrdiff_t row = static_cast<std::ptrdiff_t>(i);
      for (const LowRankOverlay::Term& t : ov->terms) {
        if (row != t.a && row != t.b) continue;
        const double xa = t.a >= 0 ? x[static_cast<std::size_t>(t.a)] : 0.0;
        const double xb = t.b >= 0 ? x[static_cast<std::size_t>(t.b)] : 0.0;
        acc += (row == t.a) ? t.g * (xa - xb) : t.g * (xb - xa);
      }
    }
    worst = std::max(worst, std::fabs(acc));
  }
  return worst;
}

}  // namespace lsl::spice
