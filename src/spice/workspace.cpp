#include "spice/workspace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "util/metrics.hpp"

namespace lsl::spice {

SolverTuning& solver_tuning() {
  static SolverTuning tuning;
  return tuning;
}

SolverWorkspace& SolverWorkspace::tls() {
  thread_local SolverWorkspace ws;
  return ws;
}

void SolverWorkspace::clear() {
  entries_.clear();
  lru_tick_ = 0;
}

namespace {

inline std::ptrdiff_t unknown_of(const Netlist& nl, NodeId node) {
  if (node == kGround) return -1;
  return static_cast<std::ptrdiff_t>(nl.voltage_index(node));
}

}  // namespace

SolverWorkspace::Entry& SolverWorkspace::entry_for(const StampContext& ctx) {
  const std::uint64_t gen = ctx.nl->generation();
  ++lru_tick_;
  for (auto& e : entries_) {
    if (e->generation == gen) {
      e->last_use = lru_tick_;
      ++stats_.symbolic_reuse;
      return *e;
    }
  }
  Entry* slot = nullptr;
  if (entries_.size() < kMaxEntries) {
    entries_.push_back(std::make_unique<Entry>());
    slot = entries_.back().get();
  } else {
    slot = entries_.front().get();
    for (auto& e : entries_) {
      if (e->last_use < slot->last_use) slot = e.get();
    }
  }
  build_entry(*slot, ctx);
  slot->generation = gen;
  slot->last_use = lru_tick_;
  ++stats_.symbolic_builds;
  return *slot;
}

void SolverWorkspace::build_entry(Entry& e, const StampContext& ctx) {
  const Netlist& nl = *ctx.nl;
  const std::size_t n = nl.unknown_count();  // reindexes if needed
  e.n = n;
  e.n_volts = nl.node_count() - 1;
  e.base_valid = false;
  e.mos.clear();

  // Pattern: every coordinate any stamp configuration can touch. The
  // capacitor slots are noted unconditionally so the same pattern (and
  // symbolic factorization) serves DC (dt = 0) and every timestep.
  SparseMatrix& m = e.mat;
  m.begin_pattern(n);
  auto note_pair = [&](NodeId a, NodeId b) {
    const std::ptrdiff_t ia = unknown_of(nl, a);
    const std::ptrdiff_t ib = unknown_of(nl, b);
    if (ia >= 0 && ib >= 0) {
      m.note(static_cast<std::size_t>(ia), static_cast<std::size_t>(ib));
      m.note(static_cast<std::size_t>(ib), static_cast<std::size_t>(ia));
    }
    // Diagonals are in the pattern implicitly.
  };
  const auto& devices = nl.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled) continue;
    if (const auto* r = std::get_if<Resistor>(&dev.impl)) {
      note_pair(r->a, r->b);
    } else if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
      note_pair(c->a, c->b);
    } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      if (vs->p != kGround) {
        m.note(nl.voltage_index(vs->p), bi);
        m.note(bi, nl.voltage_index(vs->p));
      }
      if (vs->n != kGround) {
        m.note(nl.voltage_index(vs->n), bi);
        m.note(bi, nl.voltage_index(vs->n));
      }
    } else if (std::get_if<ISource>(&dev.impl) != nullptr) {
      // RHS only.
    } else if (const auto* vcvs = std::get_if<Vcvs>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      if (vcvs->p != kGround) {
        m.note(nl.voltage_index(vcvs->p), bi);
        m.note(bi, nl.voltage_index(vcvs->p));
      }
      if (vcvs->n != kGround) {
        m.note(nl.voltage_index(vcvs->n), bi);
        m.note(bi, nl.voltage_index(vcvs->n));
      }
      if (vcvs->cp != kGround) m.note(bi, nl.voltage_index(vcvs->cp));
      if (vcvs->cn != kGround) m.note(bi, nl.voltage_index(vcvs->cn));
    } else if (const auto* mos = std::get_if<Mosfet>(&dev.impl)) {
      const std::ptrdiff_t xd = unknown_of(nl, mos->d);
      const std::ptrdiff_t xg = unknown_of(nl, mos->g);
      const std::ptrdiff_t xs = unknown_of(nl, mos->s);
      for (const std::ptrdiff_t row : {xd, xs}) {
        if (row < 0) continue;
        for (const std::ptrdiff_t col : {xd, xg, xs}) {
          if (col >= 0) m.note(static_cast<std::size_t>(row), static_cast<std::size_t>(col));
        }
      }
    }
  }
  m.finalize_pattern();

  e.diag_slot.resize(n);
  for (std::size_t i = 0; i < n; ++i) e.diag_slot[i] = m.slot(i, i);

  // Precomputed MOSFET stamp slots (the only per-iteration matrix work).
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled) continue;
    const auto* mos = std::get_if<Mosfet>(&dev.impl);
    if (mos == nullptr) continue;
    MosSlots ms;
    ms.device = di;
    ms.xd = unknown_of(nl, mos->d);
    ms.xg = unknown_of(nl, mos->g);
    ms.xs = unknown_of(nl, mos->s);
    auto row_slots = [&](std::ptrdiff_t row, std::size_t& sd, std::size_t& sg, std::size_t& ss) {
      if (row < 0) return;
      const std::size_t r = static_cast<std::size_t>(row);
      if (ms.xd >= 0) sd = m.slot(r, static_cast<std::size_t>(ms.xd));
      if (ms.xg >= 0) sg = m.slot(r, static_cast<std::size_t>(ms.xg));
      if (ms.xs >= 0) ss = m.slot(r, static_cast<std::size_t>(ms.xs));
    };
    row_slots(ms.xd, ms.dd, ms.dg, ms.ds);
    row_slots(ms.xs, ms.sd, ms.sg, ms.ss);
    e.mos.push_back(ms);
  }

  e.lu.analyze(m, e.n_volts);
  e.base_values.assign(m.nnz(), 0.0);
  e.b.assign(n, 0.0);
  e.refine_r.assign(n, 0.0);
  e.refine_dx.assign(n, 0.0);
}

void SolverWorkspace::ensure_linear_base(Entry& e, const StampContext& ctx) {
  if (e.base_valid && e.base_gmin == ctx.gmin && e.base_dt == ctx.dt &&
      e.base_integrator == ctx.integrator) {
    ++stats_.linear_stamp_reuse;
    return;
  }
  const Netlist& nl = *ctx.nl;
  SparseMatrix& m = e.mat;
  std::fill(e.base_values.begin(), e.base_values.end(), 0.0);
  // Stamp the linear skeleton directly into base_values via the pattern
  // slots. slot() is a binary search, but this runs once per (topology,
  // gmin, dt, integrator) configuration, not per iteration.
  auto base_add = [&](std::size_t r, std::size_t c, double v) {
    e.base_values[m.slot(r, c)] += v;
  };
  auto add_g = [&](NodeId a, NodeId b, double cond) {
    const std::ptrdiff_t ia = unknown_of(nl, a);
    const std::ptrdiff_t ib = unknown_of(nl, b);
    if (ia >= 0) {
      e.base_values[e.diag_slot[static_cast<std::size_t>(ia)]] += cond;
      if (ib >= 0) base_add(static_cast<std::size_t>(ia), static_cast<std::size_t>(ib), -cond);
    }
    if (ib >= 0) {
      e.base_values[e.diag_slot[static_cast<std::size_t>(ib)]] += cond;
      if (ia >= 0) base_add(static_cast<std::size_t>(ib), static_cast<std::size_t>(ia), -cond);
    }
  };

  for (std::size_t i = 0; i < e.n_volts; ++i) e.base_values[e.diag_slot[i]] += ctx.gmin;

  const auto& devices = nl.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled) continue;
    if (const auto* r = std::get_if<Resistor>(&dev.impl)) {
      if (r->ohms <= 0.0) throw std::invalid_argument("non-positive resistance: " + dev.name);
      add_g(r->a, r->b, 1.0 / r->ohms);
    } else if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
      if (ctx.dt > 0.0) {
        const double gc = (ctx.integrator == Integrator::kTrapezoidal ? 2.0 : 1.0) * c->farads /
                          ctx.dt;
        add_g(c->a, c->b, gc);
      }
    } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      if (vs->p != kGround) {
        base_add(nl.voltage_index(vs->p), bi, 1.0);
        base_add(bi, nl.voltage_index(vs->p), 1.0);
      }
      if (vs->n != kGround) {
        base_add(nl.voltage_index(vs->n), bi, -1.0);
        base_add(bi, nl.voltage_index(vs->n), -1.0);
      }
    } else if (const auto* vcvs = std::get_if<Vcvs>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      if (vcvs->p != kGround) {
        base_add(nl.voltage_index(vcvs->p), bi, 1.0);
        base_add(bi, nl.voltage_index(vcvs->p), 1.0);
      }
      if (vcvs->n != kGround) {
        base_add(nl.voltage_index(vcvs->n), bi, -1.0);
        base_add(bi, nl.voltage_index(vcvs->n), -1.0);
      }
      if (vcvs->cp != kGround) base_add(bi, nl.voltage_index(vcvs->cp), -vcvs->gain);
      if (vcvs->cn != kGround) base_add(bi, nl.voltage_index(vcvs->cn), vcvs->gain);
    }
    // ISource: RHS only. Mosfet: nonlinear, stamped per iteration.
  }

  e.base_valid = true;
  e.base_gmin = ctx.gmin;
  e.base_dt = ctx.dt;
  e.base_integrator = ctx.integrator;
  ++stats_.linear_stamp_builds;
}

void SolverWorkspace::stamp_rhs(Entry& e, const StampContext& ctx) {
  const Netlist& nl = *ctx.nl;
  std::fill(e.b.begin(), e.b.end(), 0.0);
  auto add_i = [&](NodeId p, NodeId nn, double i) {
    if (p != kGround) e.b[nl.voltage_index(p)] -= i;
    if (nn != kGround) e.b[nl.voltage_index(nn)] += i;
  };
  const auto& devices = nl.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled) continue;
    if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
      if (ctx.dt > 0.0) {
        const double vab_prev = ctx.prev_node_v->at(c->a) - ctx.prev_node_v->at(c->b);
        if (ctx.integrator == Integrator::kTrapezoidal) {
          const double gc = 2.0 * c->farads / ctx.dt;
          add_i(c->b, c->a, gc * vab_prev + ctx.prev_cap_i->at(di));
        } else {
          const double gc = c->farads / ctx.dt;
          add_i(c->b, c->a, gc * vab_prev);
        }
      }
    } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
      double value = vs->volts;
      if (ctx.vsrc_override != nullptr) {
        const auto it = ctx.vsrc_override->find(di);
        if (it != ctx.vsrc_override->end()) value = it->second;
      }
      e.b[nl.branch_index(di)] = value * ctx.source_scale;
    } else if (const auto* is = std::get_if<ISource>(&dev.impl)) {
      add_i(is->p, is->n, is->amps * ctx.source_scale);
    }
    // Mosfet ieq is folded in by stamp_nonlinear.
  }
}

void SolverWorkspace::stamp_nonlinear(Entry& e, const StampContext& ctx,
                                      const std::vector<double>& x) {
  const Netlist& nl = *ctx.nl;
  std::vector<double>& vals = e.mat.values();
  const auto& devices = nl.devices();
  for (const MosSlots& ms : e.mos) {
    const auto& mos = std::get<Mosfet>(devices[ms.device].impl);
    const double vd = ms.xd >= 0 ? x[static_cast<std::size_t>(ms.xd)] : 0.0;
    const double vg = ms.xg >= 0 ? x[static_cast<std::size_t>(ms.xg)] : 0.0;
    const double vs = ms.xs >= 0 ? x[static_cast<std::size_t>(ms.xs)] : 0.0;
    const MosEval ev = eval_mosfet(mos, nl.model(), vd, vg, vs);
    if (ms.xd >= 0) {
      vals[ms.dd] += ev.d_vd;
      if (ms.xg >= 0) vals[ms.dg] += ev.d_vg;
      if (ms.xs >= 0) vals[ms.ds] += ev.d_vs;
    }
    if (ms.xs >= 0) {
      if (ms.xd >= 0) vals[ms.sd] -= ev.d_vd;
      if (ms.xg >= 0) vals[ms.sg] -= ev.d_vg;
      vals[ms.ss] -= ev.d_vs;
    }
    const double ieq = ev.id - ev.d_vd * vd - ev.d_vg * vg - ev.d_vs * vs;
    if (ms.xd >= 0) e.b[static_cast<std::size_t>(ms.xd)] -= ieq;
    if (ms.xs >= 0) e.b[static_cast<std::size_t>(ms.xs)] += ieq;
  }
}

bool SolverWorkspace::residual_acceptable(const Entry& e, const std::vector<double>& x_new) const {
  // Row-wise backward-error test: |A x - b|_i against the row's own
  // magnitude scale, with a small absolute slack. The slack matters:
  // fault edits leave near-isolated nodes whose rows are numerically
  // zero (scale ~1e-30); their residual carries no information and a
  // pure relative test would reject a perfectly good solve.
  const double rel = solver_tuning().sparse_residual_rel_tol;
  const auto& rp = e.mat.row_ptr();
  const auto& ci = e.mat.col_idx();
  const auto& av = e.mat.values();
  for (std::size_t i = 0; i < e.n; ++i) {
    double acc = -e.b[i];
    double scale = std::fabs(e.b[i]);
    for (std::size_t s = rp[i]; s < rp[i + 1]; ++s) {
      const double term = av[s] * x_new[ci[s]];
      acc += term;
      scale += std::fabs(term);
    }
    if (!(std::fabs(acc) <= rel * scale + 1e-30)) return false;  // NaN fails too
  }
  return true;
}

void SolverWorkspace::refine(Entry& e, std::vector<double>& x_new) {
  // One step of iterative refinement on the existing factorization:
  // r = G·x − b in working precision, then x −= G⁻¹r. O(nnz) — far
  // cheaper than the dense fallback, and recovers the digits lost to
  // element growth in the no-pivot factorization (fault circuits mix
  // short conductances ~1e3 S with gmin ~1e-12 S in one matrix).
  const auto& rp = e.mat.row_ptr();
  const auto& ci = e.mat.col_idx();
  const auto& av = e.mat.values();
  for (std::size_t i = 0; i < e.n; ++i) {
    double acc = -e.b[i];
    for (std::size_t s = rp[i]; s < rp[i + 1]; ++s) acc += av[s] * x_new[ci[s]];
    e.refine_r[i] = acc;
  }
  e.lu.solve(e.refine_r, e.refine_dx);
  for (std::size_t i = 0; i < e.n; ++i) x_new[i] -= e.refine_dx[i];
}

bool SolverWorkspace::dense_solve(const StampContext& ctx, const std::vector<double>& x,
                                  std::vector<double>& x_new) {
  stamp_system(ctx, x, dense_g_, dense_b_);
  if (!lu_solve_inplace(dense_g_, dense_b_)) return false;
  x_new = dense_b_;
  return true;
}

bool SolverWorkspace::solve_newton_system(const StampContext& ctx, const std::vector<double>& x,
                                          std::vector<double>& x_new, SolveDiagnostics* diag) {
  const Netlist& nl = *ctx.nl;
  const std::size_t n = nl.unknown_count();
  if (n == 0) return false;

  const SolverTuning& t = solver_tuning();
  const bool timing = diag != nullptr && util::Metrics::detailed_timing();
  using Clock = std::chrono::steady_clock;

  if (t.force_dense || (n < t.dense_crossover && !t.force_sparse)) {
    const auto t0 = timing ? Clock::now() : Clock::time_point{};
    const bool ok = dense_solve(ctx, x, x_new);
    ++stats_.dense_solves;
    if (timing) {
      // The dense path interleaves stamping and factoring; attribute it
      // all to factor time, matching the dominant cost.
      diag->factor_sec += std::chrono::duration<double>(Clock::now() - t0).count();
    }
    return ok;
  }

  const auto t0 = timing ? Clock::now() : Clock::time_point{};
  Entry& e = entry_for(ctx);
  ensure_linear_base(e, ctx);
  std::copy(e.base_values.begin(), e.base_values.end(), e.mat.values().begin());
  stamp_rhs(e, ctx);
  stamp_nonlinear(e, ctx, x);
  const auto t1 = timing ? Clock::now() : Clock::time_point{};
  if (timing) diag->stamp_sec += std::chrono::duration<double>(t1 - t0).count();

  bool ok = false;
  if (e.lu.factor(e.mat, 1e-18)) {
    if (x_new.size() != n) x_new.assign(n, 0.0);
    e.lu.solve(e.b, x_new);
    // Backward-error gate with a few O(nnz) refinement rescues.
    // Moderate element growth (no partial pivoting) contracts to the
    // gate in one or two steps; catastrophic growth (fault circuits
    // mixing ~1e3 S shorts with ~1e-12 S opens can hit ~1e15) leaves
    // the residual near 1.0 where refinement cannot help — those rows
    // genuinely need partial pivoting and take the dense fallback.
    ok = residual_acceptable(e, x_new);
    for (int step = 0; !ok && step < 4; ++step) {
      refine(e, x_new);
      ++stats_.refinement_steps;
      ok = residual_acceptable(e, x_new);
    }
    if (!ok) ++stats_.residual_rejects;
  } else {
    ++stats_.pivot_rejects;
  }
  if (ok) {
    ++stats_.sparse_solves;
  } else {
    ++stats_.dense_fallbacks;
    ok = dense_solve(ctx, x, x_new);
  }
  if (timing) diag->factor_sec += std::chrono::duration<double>(Clock::now() - t1).count();
  return ok;
}

void SolverWorkspace::mna_residual(const StampContext& ctx, const std::vector<double>& x,
                                   std::vector<double>& r) {
  const std::size_t n = ctx.nl->unknown_count();
  Entry& e = entry_for(ctx);
  ensure_linear_base(e, ctx);
  std::copy(e.base_values.begin(), e.base_values.end(), e.mat.values().begin());
  stamp_rhs(e, ctx);
  stamp_nonlinear(e, ctx, x);
  if (r.size() != n) r.resize(n);
  std::fill(r.begin(), r.end(), 0.0);
  e.mat.accumulate_residual(x, e.b, r);
}

double SolverWorkspace::kcl_residual_norm(const StampContext& ctx, const std::vector<double>& x) {
  Entry& e = entry_for(ctx);
  ensure_linear_base(e, ctx);
  std::copy(e.base_values.begin(), e.base_values.end(), e.mat.values().begin());
  stamp_rhs(e, ctx);
  stamp_nonlinear(e, ctx, x);
  // Residual of the node (KCL) rows only, without materializing r.
  const auto& rp = e.mat.row_ptr();
  const auto& ci = e.mat.col_idx();
  const auto& av = e.mat.values();
  double worst = 0.0;
  for (std::size_t i = 0; i < e.n_volts; ++i) {
    double acc = -e.b[i];
    for (std::size_t s = rp[i]; s < rp[i + 1]; ++s) acc += av[s] * x[ci[s]];
    worst = std::max(worst, std::fabs(acc));
  }
  return worst;
}

}  // namespace lsl::spice
