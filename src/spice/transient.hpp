// Transient analysis on a fixed output grid (backward Euler companion
// models, Newton at every step) with adaptive sub-stepping: a grid step
// whose Newton fails is retried at half the timestep, down to an
// underflow floor, so sharp edges and faulted circuits degrade into a
// classified SolveStatus instead of a truncated waveform. Used for
// cell-level dynamic tests: the clocked window comparator at scan
// frequency, charge-pump step response, and the transmission-gate
// dynamic-mismatch faults that DC cannot expose.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "spice/solve_status.hpp"
#include "spice/stamp.hpp"

namespace lsl::spice {

/// Time-varying drive for a VSource: called with absolute time, returns
/// the source voltage at that instant.
using Waveform = std::function<double(double t)>;

struct TransientOptions {
  double t_stop = 1e-6;
  double dt = 1e-10;
  DcOptions newton;  // per-step Newton settings
  /// Nodes to record (by name). Empty records every node.
  std::vector<std::string> probes;
  /// Max halvings of one grid step before declaring kTimestepUnderflow
  /// (the sub-step floor is dt / 2^max_step_halvings).
  int max_step_halvings = 12;
  /// Wall-clock budget for the whole run. 0 = unlimited.
  double timeout_sec = 0.0;
  /// Capacitor companion-model discretization. Backward Euler (default)
  /// is L-stable; trapezoidal is second-order and used by the property
  /// tests as an independent cross-check.
  Integrator integrator = Integrator::kBackwardEuler;
  /// Record the max KCL residual over every accepted solution into
  /// TransientResult::max_kcl_residual (one extra stamp per accepted
  /// sub-step; off by default so campaigns pay nothing).
  bool record_kcl_residual = false;
  /// Seed each sub-step's Newton iteration with a linear extrapolation
  /// of the last two accepted solutions instead of the flat previous
  /// point. Every step still converges to the same per-step tolerance —
  /// the predictor changes iteration count, not meaning. Off: plain
  /// previous-step start (the pre-predictor behavior).
  bool predictor = true;
};

struct TransientResult {
  bool ok = false;
  SolveStatus status = SolveStatus::kMaxIterations;
  std::vector<double> time;
  /// probe name -> sampled voltages, one per time point.
  std::unordered_map<std::string, std::vector<double>> v;

  double t_reached = 0.0;    // last accepted time (partial on failure)
  int steps_accepted = 0;    // accepted sub-steps (>= grid steps)
  int step_halvings = 0;     // total halvings across the run
  long newton_iterations = 0;
  /// Max KCL residual (amps) over accepted solutions; only populated
  /// when TransientOptions::record_kcl_residual is set.
  double max_kcl_residual = 0.0;
  SolveDiagnostics diag;     // from the failing (or final) step

  const std::vector<double>& probe(const std::string& name) const;
  /// Value of a probe at the last time point.
  double final_v(const std::string& name) const;
};

/// Simple waveform builders.
Waveform dc_wave(double volts);
/// 50%-duty square wave between v_lo and v_hi with the given period;
/// first edge (to v_hi) at t = delay.
Waveform square_wave(double v_lo, double v_hi, double period, double delay = 0.0);
/// Piecewise-linear waveform over (t, v) breakpoints (clamps outside).
/// Duplicate timestamps encode a vertical edge: the wave snaps to the
/// later point's value.
Waveform pwl_wave(std::vector<std::pair<double, double>> points);

/// Runs transient analysis. `drives` maps VSource device names to
/// waveforms; sources not listed keep their netlist value. The initial
/// condition is the DC operating point with all drives evaluated at t=0.
/// Samples land exactly on the k*dt output grid regardless of any
/// internal sub-stepping. Numerical failure never throws: the result
/// carries the partial waveform plus the status and diagnostics.
/// Solver state (symbolic LU, stamp caches, iteration buffers) lives in
/// `ws` and is shared with the t=0 DC solve; the default overload uses
/// the calling thread's workspace (SolverWorkspace::tls()).
TransientResult run_transient(const Netlist& nl,
                              const std::unordered_map<std::string, Waveform>& drives,
                              const TransientOptions& opts, SolverWorkspace& ws);
TransientResult run_transient(const Netlist& nl,
                              const std::unordered_map<std::string, Waveform>& drives,
                              const TransientOptions& opts);

}  // namespace lsl::spice
