#include "spice/seed.hpp"

#include <utility>
#include <variant>

#include "spice/workspace.hpp"

namespace lsl::spice {

SolutionSeed SolutionSeed::capture(const Netlist& nl, const std::vector<double>& x) {
  SolutionSeed seed;
  nl.reindex();
  if (x.size() != nl.unknown_count()) return seed;
  for (NodeId node = 1; node < nl.node_count(); ++node) {
    seed.node_v_.emplace(nl.node_name(node), x[nl.voltage_index(node)]);
  }
  const auto& devices = nl.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled) continue;
    if (std::holds_alternative<VSource>(dev.impl) || std::holds_alternative<Vcvs>(dev.impl)) {
      seed.branch_i_.emplace(dev.name, x[nl.branch_index(di)]);
    }
  }
  return seed;
}

std::vector<double> SolutionSeed::initial_guess_for(const Netlist& target) const {
  target.reindex();
  std::vector<double> x(target.unknown_count(), 0.0);
  for (NodeId node = 1; node < target.node_count(); ++node) {
    const auto it = node_v_.find(target.node_name(node));
    if (it != node_v_.end()) x[target.voltage_index(node)] = it->second;
  }
  const auto& devices = target.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled) continue;
    if (std::holds_alternative<VSource>(dev.impl) || std::holds_alternative<Vcvs>(dev.impl)) {
      const auto it = branch_i_.find(dev.name);
      if (it != branch_i_.end()) x[target.branch_index(di)] = it->second;
    }
  }
  return x;
}

void SeedBank::put(const std::string& key, SolutionSeed seed) {
  seeds_[key] = std::move(seed);
}

const SolutionSeed* SeedBank::find(const std::string& key) const {
  const auto it = seeds_.find(key);
  return it == seeds_.end() ? nullptr : &it->second;
}

void arm_warm_start(const SolveHints* hints, const std::string& key, const Netlist& target) {
  if (hints == nullptr || hints->seeds == nullptr) return;
  const SolutionSeed* seed = hints->seeds->find(key);
  if (seed == nullptr || seed->empty()) return;
  SolverWorkspace::tls().seed_from(seed->initial_guess_for(target));
}

void capture_seed(const SolveHints* hints, const std::string& key, const Netlist& nl,
                  const std::vector<double>& x) {
  if (hints == nullptr || hints->capture == nullptr) return;
  SolutionSeed seed = SolutionSeed::capture(nl, x);
  if (seed.empty()) return;
  hints->capture->put(key, std::move(seed));
}

}  // namespace lsl::spice
