// Small-signal AC analysis: linearizes the circuit at its DC operating
// point (MOSFETs become their gm/gds stamps, capacitors become jwC) and
// solves the complex MNA system per frequency point. Used to
// characterize the interconnect transfer function — the RC pole and the
// feed-forward equalizer's compensating zero that the paper's link
// design rests on.
#pragma once

#include <complex>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "spice/solve_status.hpp"

namespace lsl::spice {

struct AcOptions {
  DcOptions op;  // operating-point solve settings
};

struct AcResult {
  bool ok = false;
  SolveStatus status = SolveStatus::kMaxIterations;
  /// Frequency at which the linearized system went singular (only
  /// meaningful when status == kSingularMatrix).
  double failed_freq = 0.0;
  /// Operating-point diagnostics (iterations, fallback rung, worst node).
  SolveDiagnostics op_diag;
  std::vector<double> freq;  // Hz
  /// probe node name -> complex voltage per frequency point.
  std::unordered_map<std::string, std::vector<std::complex<double>>> v;

  const std::vector<std::complex<double>>& probe(const std::string& name) const;
  /// |V| at point i.
  double mag(const std::string& name, std::size_t i) const;
  /// 20*log10|V| at point i.
  double mag_db(const std::string& name, std::size_t i) const;
  /// Phase in degrees at point i.
  double phase_deg(const std::string& name, std::size_t i) const;
};

/// Runs AC analysis with a unit AC drive superposed on VSource
/// `ac_source_name` (all other independent sources are AC grounds).
/// `probes` empty records every node. The workspace overload shares
/// solver state with the operating-point solve and reuses its complex
/// buffers across frequency points; the default uses the calling
/// thread's workspace (SolverWorkspace::tls()).
AcResult run_ac(const Netlist& nl, const std::string& ac_source_name,
                const std::vector<double>& freqs, const std::vector<std::string>& probes,
                const AcOptions& opts, SolverWorkspace& ws);
AcResult run_ac(const Netlist& nl, const std::string& ac_source_name,
                const std::vector<double>& freqs, const std::vector<std::string>& probes = {},
                const AcOptions& opts = {});

/// Log-spaced frequency grid [f_lo, f_hi] with `points` entries.
std::vector<double> log_frequencies(double f_lo, double f_hi, std::size_t points);

}  // namespace lsl::spice
