#include "spice/stamp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/workspace.hpp"

namespace lsl::spice {

namespace {

/// Square-law NMOS-referred evaluation: current f(vgs, vds) for vds >= 0
/// with partials (f1 = df/dvgs, f2 = df/dvds).
struct FwdEval {
  double i = 0.0;
  double f1 = 0.0;
  double f2 = 0.0;
};

FwdEval eval_forward(double beta, double vt, double lambda, double vgs, double vds) {
  FwdEval r;
  const double vov = vgs - vt;
  if (vov <= 0.0) {
    // Cutoff. A tiny residual conductance smooths the Newton iteration
    // across the cutoff boundary (subthreshold stand-in).
    r.i = 0.0;
    r.f1 = 0.0;
    r.f2 = 1e-12;
    return r;
  }
  const double clm = 1.0 + lambda * vds;
  if (vds < vov) {
    // Triode.
    r.i = beta * (vov - 0.5 * vds) * vds * clm;
    r.f1 = beta * vds * clm;
    r.f2 = beta * ((vov - vds) * clm + (vov - 0.5 * vds) * vds * lambda);
  } else {
    // Saturation.
    const double half = 0.5 * beta * vov * vov;
    r.i = half * clm;
    r.f1 = beta * vov * clm;
    r.f2 = half * lambda;
  }
  return r;
}

}  // namespace

MosEval eval_mosfet(const Mosfet& m, const ModelCard& card, double vd, double vg, double vs) {
  const bool nmos = m.type == MosType::kNmos;
  const double kp = nmos ? card.kp_n : card.kp_p;
  const double vt_mag = std::fabs((nmos ? card.vt_n : card.vt_p) + m.vt_delta);
  const double lambda = nmos ? card.lambda_n : card.lambda_p;
  const double beta = kp * (m.w / m.l);

  // Map to an NMOS-referred frame: for PMOS negate all voltages. Within
  // that frame, if vds < 0 the physical source/drain roles swap.
  double fd = nmos ? vd : -vd;
  double fg = nmos ? vg : -vg;
  double fs = nmos ? vs : -vs;

  bool swapped = false;
  if (fd < fs) {
    std::swap(fd, fs);
    swapped = true;
  }
  const FwdEval f = eval_forward(beta, vt_mag, lambda, fg - fs, fd - fs);

  // Current in the NMOS frame flows (frame-drain -> frame-source); undo
  // the swap and the PMOS negation while propagating derivatives.
  double i = f.i;
  // Partials w.r.t. frame terminals.
  double d_fd = f.f2;
  double d_fg = f.f1;
  double d_fs = -f.f1 - f.f2;
  if (swapped) {
    i = -i;
    // Swap roles of the frame drain/source in the derivative vector and
    // negate (current direction flipped).
    const double t = d_fd;
    d_fd = -d_fs;
    d_fs = -t;
    d_fg = -d_fg;
  }
  MosEval out;
  if (nmos) {
    out.id = i;
    out.d_vd = d_fd;
    out.d_vg = d_fg;
    out.d_vs = d_fs;
  } else {
    // Frame voltages are negated terminal voltages: d/dv = -d/dfv, and
    // the frame current direction maps to -(d->s) in real terms.
    out.id = -i;
    out.d_vd = d_fd;
    out.d_vg = d_fg;
    out.d_vs = d_fs;
  }
  return out;
}

double node_voltage(const Netlist& nl, const std::vector<double>& x, NodeId node) {
  if (node == kGround) return 0.0;
  return x.at(nl.voltage_index(node));
}

void stamp_system(const StampContext& ctx, const std::vector<double>& x, Matrix& g,
                  std::vector<double>& b) {
  const Netlist& nl = *ctx.nl;
  const std::size_t n = nl.unknown_count();
  g.resize(n, n);
  b.assign(n, 0.0);

  auto v_of = [&](NodeId node) { return node_voltage(nl, x, node); };
  auto add_g = [&](NodeId a, NodeId bn, double cond) {
    if (a != kGround) {
      g.at(nl.voltage_index(a), nl.voltage_index(a)) += cond;
      if (bn != kGround) g.at(nl.voltage_index(a), nl.voltage_index(bn)) -= cond;
    }
    if (bn != kGround) {
      g.at(nl.voltage_index(bn), nl.voltage_index(bn)) += cond;
      if (a != kGround) g.at(nl.voltage_index(bn), nl.voltage_index(a)) -= cond;
    }
  };
  // Current `i` flowing from node p through an element to node n.
  auto add_i = [&](NodeId p, NodeId nn, double i) {
    if (p != kGround) b[nl.voltage_index(p)] -= i;
    if (nn != kGround) b[nl.voltage_index(nn)] += i;
  };

  // gmin to ground on every non-ground node.
  for (NodeId node = 1; node < nl.node_count(); ++node) {
    g.at(nl.voltage_index(node), nl.voltage_index(node)) += ctx.gmin;
  }

  const auto& devices = nl.devices();
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const Device& dev = devices[di];
    if (!dev.enabled) continue;

    if (const auto* r = std::get_if<Resistor>(&dev.impl)) {
      if (r->ohms <= 0.0) throw std::invalid_argument("non-positive resistance: " + dev.name);
      add_g(r->a, r->b, 1.0 / r->ohms);
    } else if (const auto* c = std::get_if<Capacitor>(&dev.impl)) {
      if (ctx.dt > 0.0) {
        const double vab_prev = ctx.prev_node_v->at(c->a) - ctx.prev_node_v->at(c->b);
        if (ctx.integrator == Integrator::kTrapezoidal) {
          // Trapezoidal companion: i(a->b) = (2C/dt)*(vab - vab_prev)
          // - i_prev; conductance 2C/dt with the previous voltage AND
          // the previous current in the history source.
          const double gc = 2.0 * c->farads / ctx.dt;
          add_g(c->a, c->b, gc);
          add_i(c->b, c->a, gc * vab_prev + ctx.prev_cap_i->at(di));
        } else {
          // Backward-Euler companion: i(a->b) = gc*(vab - vab_prev); the
          // history term is a current source b -> a of gc*vab_prev.
          const double gc = c->farads / ctx.dt;
          add_g(c->a, c->b, gc);
          add_i(c->b, c->a, gc * vab_prev);
        }
      }
      // DC: capacitor is open; gmin keeps isolated nodes defined.
    } else if (const auto* vs = std::get_if<VSource>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      double value = vs->volts;
      if (ctx.vsrc_override != nullptr) {
        const auto it = ctx.vsrc_override->find(di);
        if (it != ctx.vsrc_override->end()) value = it->second;
      }
      if (vs->p != kGround) {
        g.at(nl.voltage_index(vs->p), bi) += 1.0;
        g.at(bi, nl.voltage_index(vs->p)) += 1.0;
      }
      if (vs->n != kGround) {
        g.at(nl.voltage_index(vs->n), bi) -= 1.0;
        g.at(bi, nl.voltage_index(vs->n)) -= 1.0;
      }
      b[bi] = value * ctx.source_scale;
    } else if (const auto* is = std::get_if<ISource>(&dev.impl)) {
      add_i(is->p, is->n, is->amps * ctx.source_scale);
    } else if (const auto* e = std::get_if<Vcvs>(&dev.impl)) {
      const std::size_t bi = nl.branch_index(di);
      if (e->p != kGround) {
        g.at(nl.voltage_index(e->p), bi) += 1.0;
        g.at(bi, nl.voltage_index(e->p)) += 1.0;
      }
      if (e->n != kGround) {
        g.at(nl.voltage_index(e->n), bi) -= 1.0;
        g.at(bi, nl.voltage_index(e->n)) -= 1.0;
      }
      if (e->cp != kGround) g.at(bi, nl.voltage_index(e->cp)) -= e->gain;
      if (e->cn != kGround) g.at(bi, nl.voltage_index(e->cn)) += e->gain;
    } else if (const auto* m = std::get_if<Mosfet>(&dev.impl)) {
      const double vd = v_of(m->d);
      const double vg = v_of(m->g);
      const double vsv = v_of(m->s);
      const MosEval ev = eval_mosfet(*m, nl.model(), vd, vg, vsv);
      // Linearized drain current: id ~= id0 + J . (v - v0). Stamp the
      // Jacobian terms and fold the affine remainder into the RHS.
      auto stamp_row = [&](NodeId row, double sign) {
        if (row == kGround) return;
        const std::size_t ri = nl.voltage_index(row);
        if (m->d != kGround) g.at(ri, nl.voltage_index(m->d)) += sign * ev.d_vd;
        if (m->g != kGround) g.at(ri, nl.voltage_index(m->g)) += sign * ev.d_vg;
        if (m->s != kGround) g.at(ri, nl.voltage_index(m->s)) += sign * ev.d_vs;
      };
      stamp_row(m->d, +1.0);
      stamp_row(m->s, -1.0);
      const double ieq = ev.id - ev.d_vd * vd - ev.d_vg * vg - ev.d_vs * vsv;
      add_i(m->d, m->s, ieq);
    }
  }
}

std::vector<double> mna_residual(const StampContext& ctx, const std::vector<double>& x) {
  // O(nnz) via the calling thread's solver workspace: the sparse stamp
  // produces the same G and b entries as stamp_system, and the residual
  // walk touches only the pattern instead of every (i, j) pair.
  std::vector<double> r;
  SolverWorkspace::tls().mna_residual(ctx, x, r);
  return r;
}

double kcl_residual_norm(const StampContext& ctx, const std::vector<double>& x) {
  return SolverWorkspace::tls().kcl_residual_norm(ctx, x);
}

}  // namespace lsl::spice
