#include "cells/termination.hpp"

namespace lsl::cells {

using spice::Capacitor;
using spice::kGround;
using spice::Mosfet;
using spice::MosType;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;

namespace {

/// Transmission-gate resistor: NMOS gated to VDD, PMOS gated to GND,
/// both permanently on, in parallel between a and b.
void build_tgate_resistor(Netlist& nl, const std::string& prefix, NodeId vdd, NodeId a, NodeId b,
                          const TerminationSpec& spec) {
  nl.add(prefix + ".m_tgn", Mosfet{a, vdd, b, MosType::kNmos, spec.w_tgate_n, spec.l_tgate, 0.0});
  nl.add(prefix + ".m_tgp", Mosfet{a, kGround, b, MosType::kPmos, spec.w_tgate_p, spec.l_tgate, 0.0});
}

}  // namespace

TerminationPorts build_termination(Netlist& nl, const std::string& prefix, NodeId vdd,
                                   NodeId vbn, NodeId line_p, NodeId line_n, NodeId vmid_cr,
                                   const TerminationSpec& spec) {
  TerminationPorts p;
  p.line_p = line_p;
  p.line_n = line_n;
  p.vmid_cr = vmid_cr;

  // Receiver bias divider with decoupling.
  p.vmid_rx = nl.node(prefix + ".vmid");
  nl.add(prefix + ".r_divt", Resistor{vdd, p.vmid_rx, spec.r_div_top});
  nl.add(prefix + ".r_divb", Resistor{p.vmid_rx, kGround, spec.r_div_bot});
  nl.add(prefix + ".c_dec", Capacitor{p.vmid_rx, kGround, spec.c_decouple});

  // Transmission-gate terminations.
  build_tgate_resistor(nl, prefix + ".termp", vdd, line_p, p.vmid_rx, spec);
  build_tgate_resistor(nl, prefix + ".termn", vdd, line_n, p.vmid_rx, spec);

  // Per-arm DC-test windows against the receiver bias (four Fig-5
  // comparators): single-arm faults shrink that arm's 30 mV-class
  // excursion below the programmed offset and trip the observer.
  const WindowComparatorPorts wp =
      build_window_comparator(nl, prefix + ".wdata_p", vdd, vbn, line_p, p.vmid_rx, spec.line_cmp);
  p.cmp_p_hi = wp.out_hi;
  p.cmp_p_lo = wp.out_lo;
  const WindowComparatorPorts wn =
      build_window_comparator(nl, prefix + ".wdata_n", vdd, vbn, line_n, p.vmid_rx, spec.line_cmp);
  p.cmp_n_hi = wn.out_hi;
  p.cmp_n_lo = wn.out_lo;

  // Bias window comparator (Fig 6), clocked at scan frequency.
  const WindowComparatorPorts bias =
      build_window_comparator(nl, prefix + ".wbias", vdd, vbn, p.vmid_rx, vmid_cr, spec.bias_cmp);
  p.cmp_bias_hi = bias.out_hi;
  p.cmp_bias_lo = bias.out_lo;
  return p;
}

}  // namespace lsl::cells
