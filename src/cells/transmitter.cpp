#include "cells/transmitter.hpp"

namespace lsl::cells {

using spice::Capacitor;
using spice::kGround;
using spice::Mosfet;
using spice::MosType;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;

TransmitterArmPorts build_transmitter_arm(Netlist& nl, const std::string& prefix, NodeId vdd,
                                          NodeId tap_main, NodeId tap_alpha, NodeId drv_in,
                                          NodeId line, const TransmitterSpec& spec) {
  TransmitterArmPorts p;
  p.tap_main = tap_main;
  p.tap_alpha = tap_alpha;
  p.drv_in = drv_in;
  p.line = line;

  // Series equalizer capacitors (the FFE taps).
  nl.add(prefix + ".c_main", Capacitor{tap_main, line, spec.c_main});
  nl.add(prefix + ".c_alpha", Capacitor{tap_alpha, line, spec.c_alpha});

  // Weak driver: push-pull inverter into a large series resistor, which
  // approximates the paper's current-source-limited shunt driver.
  p.drv_out = nl.node(prefix + ".drv");
  nl.add(prefix + ".m_drvp", Mosfet{p.drv_out, drv_in, vdd, MosType::kPmos, spec.w_drv_p, spec.l, 0.0});
  nl.add(prefix + ".m_drvn",
         Mosfet{p.drv_out, drv_in, kGround, MosType::kNmos, spec.w_drv_n, spec.l, 0.0});
  nl.add(prefix + ".r_weak", Resistor{p.drv_out, line, spec.r_weak});
  return p;
}

void build_rc_line(Netlist& nl, const std::string& prefix, NodeId from, NodeId to,
                   const RcLineSpec& spec) {
  const double r_sec = spec.r_total / spec.sections;
  const double c_sec = spec.c_total / spec.sections;
  NodeId prev = from;
  for (int i = 0; i < spec.sections; ++i) {
    const NodeId next = (i + 1 == spec.sections) ? to : nl.node(prefix + ".n" + std::to_string(i));
    nl.add(prefix + ".r" + std::to_string(i), Resistor{prev, next, r_sec});
    nl.add(prefix + ".c" + std::to_string(i), Capacitor{next, kGround, c_sec});
    prev = next;
  }
}

}  // namespace lsl::cells
