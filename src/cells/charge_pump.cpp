#include "cells/charge_pump.hpp"

namespace lsl::cells {

using spice::Capacitor;
using spice::kGround;
using spice::Mosfet;
using spice::MosType;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;

namespace {

/// Transmission gate between a and b: on when `en_n` (NMOS gate) is high
/// and `en_p` (PMOS gate) is low.
void add_tgate(Netlist& nl, const std::string& prefix, NodeId a, NodeId b, NodeId en_n,
               NodeId en_p, double w, double l) {
  nl.add(prefix + ".m_tn", Mosfet{a, en_n, b, MosType::kNmos, w, l, 0.0});
  nl.add(prefix + ".m_tp", Mosfet{a, en_p, b, MosType::kPmos, 2.0 * w, l, 0.0});
}

}  // namespace

ChargePumpPorts build_charge_pump(Netlist& nl, const std::string& prefix, NodeId vdd,
                                  const ChargePumpControls& ctl, const ChargePumpSpec& spec) {
  ChargePumpPorts p;
  p.vc = nl.node(prefix + ".vc");
  p.vp = nl.node(prefix + ".vp");
  nl.add(prefix + ".c_vc", Capacitor{p.vc, kGround, spec.c_vc});
  nl.add(prefix + ".c_vp", Capacitor{p.vp, kGround, spec.c_vp});

  // --- bias generators with scan-mode collapse -------------------------
  // Generators produce vbp_gen / vbn_gen; series switches (on in normal
  // mode) connect them to the pump gates vbp / vbn; pull switches (on in
  // scan mode) drag the gates to the rails, making the sources plain
  // switches.
  p.vbp = nl.node(prefix + ".vbp");
  p.vbn = nl.node(prefix + ".vbn");
  const NodeId vbp_gen = nl.node(prefix + ".vbp_gen");
  const NodeId vbn_gen = nl.node(prefix + ".vbn_gen");
  nl.add(prefix + ".m_bpd", Mosfet{vbp_gen, vbp_gen, vdd, MosType::kPmos, 0.5e-6, spec.l, 0.0});
  nl.add(prefix + ".r_bp", Resistor{vbp_gen, kGround, spec.r_bias_p});
  nl.add(prefix + ".r_bn", Resistor{vdd, vbn_gen, spec.r_bias_n});
  nl.add(prefix + ".m_bnd", Mosfet{vbn_gen, vbn_gen, kGround, MosType::kNmos, 1.0e-6, spec.l, 0.0});
  // Series connect switches (normal mode): PMOS for vbp (gate = sen),
  // NMOS for vbn (gate = sen_b).
  nl.add(prefix + ".m_serp",
         Mosfet{p.vbp, ctl.sen, vbp_gen, MosType::kPmos, spec.w_scan_sw, spec.l, 0.0});
  nl.add(prefix + ".m_sern",
         Mosfet{p.vbn, ctl.sen_b, vbn_gen, MosType::kNmos, spec.w_scan_sw, spec.l, 0.0});
  // Pull switches (scan mode): vbp -> GND, vbn -> VDD.
  nl.add(prefix + ".m_pullp",
         Mosfet{p.vbp, ctl.sen, kGround, MosType::kNmos, spec.w_scan_sw, spec.l, 0.0});
  nl.add(prefix + ".m_pulln",
         Mosfet{p.vbn, ctl.sen_b, vdd, MosType::kPmos, spec.w_scan_sw, spec.l, 0.0});

  // --- weak (fine) charge pump with current steering -------------------
  const NodeId np = nl.node(prefix + ".np");
  const NodeId nn = nl.node(prefix + ".nn");
  nl.add(prefix + ".m_srcp", Mosfet{np, p.vbp, vdd, MosType::kPmos, spec.w_src, spec.l, 0.0});
  nl.add(prefix + ".m_srcn", Mosfet{nn, p.vbn, kGround, MosType::kNmos, spec.w_src, spec.l, 0.0});
  nl.add(prefix + ".m_swup", Mosfet{p.vc, ctl.up_gate, np, MosType::kPmos, spec.w_sw, spec.l, 0.0});
  nl.add(prefix + ".m_swdn", Mosfet{p.vc, ctl.dn_gate, nn, MosType::kNmos, spec.w_sw, spec.l, 0.0});
  // Steering branch into the balance node keeps the sources conducting
  // when the main switches are off.
  nl.add(prefix + ".m_swupb",
         Mosfet{p.vp, ctl.up_b_gate, np, MosType::kPmos, spec.w_sw, spec.l, 0.0});
  nl.add(prefix + ".m_swdnb",
         Mosfet{p.vp, ctl.dn_b_gate, nn, MosType::kNmos, spec.w_sw, spec.l, 0.0});

  // --- charge-balancing amplifier (5T OTA, unity feedback on vp) ------
  const NodeId a1 = nl.node(prefix + ".a1");
  const NodeId atail = nl.node(prefix + ".atail");
  nl.add(prefix + ".m_a_inp", Mosfet{a1, p.vc, atail, MosType::kNmos, 1.0e-6, spec.l, 0.0});
  nl.add(prefix + ".m_a_inn", Mosfet{p.vp, p.vp, atail, MosType::kNmos, 1.0e-6, spec.l, 0.0});
  nl.add(prefix + ".m_a_ld1", Mosfet{a1, a1, vdd, MosType::kPmos, 1.0e-6, spec.l, 0.0});
  nl.add(prefix + ".m_a_ld2", Mosfet{p.vp, a1, vdd, MosType::kPmos, 1.0e-6, spec.l, 0.0});
  nl.add(prefix + ".m_a_tail",
         Mosfet{atail, p.vbn, kGround, MosType::kNmos, 1.0e-6, spec.l, 0.0});

  // --- strong (coarse) charge pump -------------------------------------
  const double ws = spec.w_src * spec.strong_ratio;
  const double wsw = spec.w_sw * spec.strong_ratio;
  const NodeId nps = nl.node(prefix + ".nps");
  const NodeId nns = nl.node(prefix + ".nns");
  nl.add(prefix + ".m_stsrcp", Mosfet{nps, p.vbp, vdd, MosType::kPmos, ws, spec.l, 0.0});
  nl.add(prefix + ".m_stsrcn", Mosfet{nns, p.vbn, kGround, MosType::kNmos, ws, spec.l, 0.0});
  nl.add(prefix + ".m_swupst",
         Mosfet{p.vc, ctl.upst_gate, nps, MosType::kPmos, wsw, spec.l, 0.0});
  nl.add(prefix + ".m_swdnst",
         Mosfet{p.vc, ctl.dnst_gate, nns, MosType::kNmos, wsw, spec.l, 0.0});

  // --- VH / VL reference ladder ----------------------------------------
  p.vh = nl.node(prefix + ".vh");
  p.vl = nl.node(prefix + ".vl");
  p.vmid = nl.node(prefix + ".vmid");
  nl.add(prefix + ".r_top", Resistor{vdd, p.vh, spec.r_top});
  nl.add(prefix + ".r_mid1", Resistor{p.vh, p.vmid, spec.r_mid / 2.0});
  nl.add(prefix + ".r_mid2", Resistor{p.vmid, p.vl, spec.r_mid / 2.0});
  nl.add(prefix + ".r_bot", Resistor{p.vl, kGround, spec.r_bot});

  // --- window comparator on Vc with scan input mux ----------------------
  // cmp_in = vc in normal mode, vmid in scan mode (forces output "00").
  const NodeId cmp_in = nl.node(prefix + ".cmp_in");
  add_tgate(nl, prefix + ".sw_vc", p.vc, cmp_in, ctl.sen_b, ctl.sen, 1.0e-6, spec.l);
  add_tgate(nl, prefix + ".sw_md", p.vmid, cmp_in, ctl.sen, ctl.sen_b, 1.0e-6, spec.l);

  ComparatorSpec wc = spec.window_cmp;
  wc.w_offset = wc.w_input;  // symmetric: thresholds come from VH/VL
  const NodeId vbn_cmp = build_nbias(nl, prefix + ".cbias", vdd);
  const ComparatorPorts hi =
      build_offset_comparator(nl, prefix + ".cmp_hi", vdd, vbn_cmp, cmp_in, p.vh, wc);
  const ComparatorPorts lo =
      build_offset_comparator(nl, prefix + ".cmp_lo", vdd, vbn_cmp, p.vl, cmp_in, wc);
  p.cmp_hi = hi.out;
  p.cmp_lo = lo.out;

  // --- CP-BIST window comparator on |Vp - Vc| (Fig 9) -------------------
  const WindowComparatorPorts bist =
      build_window_comparator(nl, prefix + ".bist", vdd, vbn_cmp, p.vp, p.vc, spec.bist_cmp);
  p.bist_hi = bist.out_hi;
  p.bist_lo = bist.out_lo;
  return p;
}

}  // namespace lsl::cells
