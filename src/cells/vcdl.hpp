// Transistor-level voltage-controlled delay line: a chain of
// current-starved inverters. The starving footer's gate is the control
// voltage, so MORE control voltage means MORE tail current and LESS
// delay — the structural sign is opposite to the behavioral model's
// (delay rising with Vc); the loop polarity absorbs it through the
// charge-pump orientation, and the characterization below reports the
// signed gain so the mapping is explicit.
//
// The paper excludes the DLL/VCDL from its interconnect BIST ("can be
// treated as a stand-alone unit" testable per its refs [11][12]); the
// dll_test helpers below implement that stand-alone check: per-tap delay
// spacing uniformity over a characterized (possibly mismatched) line.
#pragma once

#include <string>
#include <vector>

#include "spice/netlist.hpp"

namespace lsl::cells {

struct VcdlSpec {
  int stages = 4;            // inverting stages (even = non-inverting line)
  double w_inv_p = 1.0e-6;
  double w_inv_n = 0.5e-6;
  double w_starve = 0.6e-6;  // footer current source
  double l = 0.13e-6;
  double c_stage = 20e-15;   // load per stage
};

struct VcdlPorts {
  spice::NodeId in = spice::kGround;
  spice::NodeId out = spice::kGround;
  spice::NodeId vctl = spice::kGround;
  std::vector<spice::NodeId> taps;  // per-stage outputs (DLL phases)
};

/// Builds the delay line between existing nodes. `vctl` gates every
/// starving footer.
VcdlPorts build_vcdl(spice::Netlist& nl, const std::string& prefix, spice::NodeId vdd,
                     spice::NodeId vctl, spice::NodeId in, spice::NodeId out,
                     const VcdlSpec& spec = {});

/// Measures the propagation delay (input rising edge to output crossing
/// vdd/2) of a standalone VCDL instance at control voltage `vctl` via
/// transient simulation. Returns a negative value on failure.
double measure_vcdl_delay(const VcdlSpec& spec, double vctl, double vdd = 1.2);

/// Per-tap delays of one instance (for the DLL uniformity test).
std::vector<double> measure_tap_delays(const VcdlSpec& spec, double vctl, double vdd = 1.2);

/// Stand-alone DLL tap check per the paper's refs [11][12]: taps must be
/// strictly ordered and their spacings within `tolerance` (fractional)
/// of the mean spacing. Returns true when the line is healthy.
bool dll_taps_uniform(const std::vector<double>& tap_delays, double tolerance = 0.35);

}  // namespace lsl::cells
