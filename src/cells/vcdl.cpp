#include "cells/vcdl.hpp"

#include <cmath>

#include "spice/transient.hpp"

namespace lsl::cells {

using spice::Capacitor;
using spice::kGround;
using spice::Mosfet;
using spice::MosType;
using spice::Netlist;
using spice::NodeId;
using spice::VSource;

VcdlPorts build_vcdl(Netlist& nl, const std::string& prefix, NodeId vdd, NodeId vctl, NodeId in,
                     NodeId out, const VcdlSpec& spec) {
  VcdlPorts p;
  p.in = in;
  p.out = out;
  p.vctl = vctl;

  NodeId prev = in;
  for (int s = 0; s < spec.stages; ++s) {
    const bool last = s + 1 == spec.stages;
    const NodeId stage_out = last ? out : nl.node(prefix + ".s" + std::to_string(s));
    const NodeId tail = nl.node(prefix + ".t" + std::to_string(s));
    const std::string sn = std::to_string(s);
    nl.add(prefix + ".m_p" + sn, Mosfet{stage_out, prev, vdd, MosType::kPmos, spec.w_inv_p,
                                        spec.l, 0.0});
    nl.add(prefix + ".m_n" + sn,
           Mosfet{stage_out, prev, tail, MosType::kNmos, spec.w_inv_n, spec.l, 0.0});
    nl.add(prefix + ".m_s" + sn,
           Mosfet{tail, vctl, kGround, MosType::kNmos, spec.w_starve, spec.l, 0.0});
    nl.add(prefix + ".c" + sn, Capacitor{stage_out, kGround, spec.c_stage});
    p.taps.push_back(stage_out);
    prev = stage_out;
  }
  return p;
}

namespace {

/// Builds a standalone instance with driven control and input.
struct InstrumentedVcdl {
  Netlist nl;
  VcdlPorts ports;

  InstrumentedVcdl(const VcdlSpec& spec, double vctl, double vdd) {
    const NodeId nvdd = nl.node("vdd");
    nl.add("v_vdd", VSource{nvdd, kGround, vdd});
    const NodeId nctl = nl.node("vctl");
    nl.add("v_ctl", VSource{nctl, kGround, vctl});
    const NodeId nin = nl.node("in");
    nl.add("v_in", VSource{nin, kGround, 0.0});
    const NodeId nout = nl.node("out");
    ports = build_vcdl(nl, "vcdl", nvdd, nctl, nin, nout, spec);
  }
};

/// First time `probe` crosses vdd/2 in the direction implied by its
/// final level, after `t_edge`. Negative if it never crosses.
double crossing_time(const spice::TransientResult& res, const std::string& probe, double t_edge,
                     double vdd) {
  const auto& t = res.time;
  const auto& v = res.probe(probe);
  const double final_v = v.back();
  const bool rising = final_v > vdd / 2.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] <= t_edge) continue;
    if ((rising && v[i - 1] < vdd / 2.0 && v[i] >= vdd / 2.0) ||
        (!rising && v[i - 1] > vdd / 2.0 && v[i] <= vdd / 2.0)) {
      return t[i];
    }
  }
  return -1.0;
}

spice::TransientResult step_response(InstrumentedVcdl& inst, double vdd,
                                     const std::vector<std::string>& probes, double t_stop) {
  spice::TransientOptions opts;
  opts.t_stop = t_stop;
  opts.dt = 2e-12;
  opts.probes = probes;
  return spice::run_transient(
      inst.nl, {{"v_in", spice::pwl_wave({{0.0, 0.0}, {1e-9, 0.0}, {1.02e-9, vdd}})}}, opts);
}

}  // namespace

double measure_vcdl_delay(const VcdlSpec& spec, double vctl, double vdd) {
  InstrumentedVcdl inst(spec, vctl, vdd);
  const auto res = step_response(inst, vdd, {"out"}, 8e-9);
  if (!res.ok) return -1.0;
  const double tc = crossing_time(res, "out", 1.0e-9, vdd);
  return tc < 0.0 ? -1.0 : tc - 1.01e-9;
}

std::vector<double> measure_tap_delays(const VcdlSpec& spec, double vctl, double vdd) {
  InstrumentedVcdl inst(spec, vctl, vdd);
  std::vector<std::string> probes;
  for (const auto tap : inst.ports.taps) probes.push_back(inst.nl.node_name(tap));
  const auto res = step_response(inst, vdd, probes, 8e-9);
  std::vector<double> delays;
  if (!res.ok) return delays;
  for (const auto& name : probes) {
    const double tc = crossing_time(res, name, 1.0e-9, vdd);
    if (tc < 0.0) return {};
    delays.push_back(tc - 1.01e-9);
  }
  return delays;
}

bool dll_taps_uniform(const std::vector<double>& tap_delays, double tolerance) {
  if (tap_delays.size() < 2) return false;
  std::vector<double> spacings;
  for (std::size_t i = 1; i < tap_delays.size(); ++i) {
    const double s = tap_delays[i] - tap_delays[i - 1];
    if (s <= 0.0) return false;  // non-monotonic: a stage is broken
    spacings.push_back(s);
  }
  double mean = 0.0;
  for (const double s : spacings) mean += s;
  mean /= static_cast<double>(spacings.size());
  for (const double s : spacings) {
    if (std::fabs(s - mean) > tolerance * mean) return false;
  }
  return true;
}

}  // namespace lsl::cells
