// Fig 4: receiver-side termination of the differential interconnect.
//
// Each line terminates through a transmission-gate resistor to the
// receiver bias Vmid_rx (a resistive divider with a decoupling cap).
// The DFT additions of the paper live here too: the offset comparators
// (Fig 5) observing the differential line for the DC test, and the
// clocked window comparator (Fig 6) comparing the receiver bias against
// the clock-recovery bias so bias-network faults are observable.
//
// A transmission gate deliberately terminates each line: a drain open in
// *one* of its two devices leaves DC behaviour almost intact (the other
// device still conducts) but changes the dynamic impedance — exactly the
// fault class the paper flags as "not detectable at DC", caught by the
// toggling scan-frequency test.
#pragma once

#include <string>

#include "cells/comparator.hpp"
#include "spice/netlist.hpp"

namespace lsl::cells {

struct TerminationSpec {
  double w_tgate_n = 0.6e-6;  // termination tgate NMOS
  double w_tgate_p = 1.6e-6;  // termination tgate PMOS
  double l_tgate = 0.5e-6;
  double r_div_top = 12e3;    // bias divider vdd -> vmid
  double r_div_bot = 20e3;    // bias divider vmid -> gnd  (vmid ~ 0.75 V)
  double c_decouple = 1e-12;
  /// DC-test comparators observing each arm against the bias. The
  /// offset is sized to HALF the fault-free arm excursion (the paper's
  /// 15 mV against a 30 mV input): any fault that kills an arm's drive
  /// trips the observer. 0.65u in our square-law 130 nm-class model
  /// plays the role of the paper's 0.8u in UMC 130 nm.
  ComparatorSpec line_cmp = [] {
    ComparatorSpec s;
    s.w_offset = 0.65e-6;
    return s;
  }();
  ComparatorSpec bias_cmp;    // window comparator on the bias nodes
};

struct TerminationPorts {
  spice::NodeId line_p = spice::kGround;
  spice::NodeId line_n = spice::kGround;
  spice::NodeId vmid_rx = spice::kGround;   // receiver termination bias
  spice::NodeId vmid_cr = spice::kGround;   // clock-recovery bias (input)
  // Per-arm DC-test window comparators (4 comparators = Table II's
  // "Comparators (DC)"): p_hi trips when line_p sits above the bias by
  // more than the offset, p_lo when below by more; likewise for the N
  // arm. Healthy link, data=1: p_hi & n_lo; data=0: p_lo & n_hi.
  spice::NodeId cmp_p_hi = spice::kGround;
  spice::NodeId cmp_p_lo = spice::kGround;
  spice::NodeId cmp_n_hi = spice::kGround;
  spice::NodeId cmp_n_lo = spice::kGround;
  // Bias window comparator outputs (clocked at scan frequency).
  spice::NodeId cmp_bias_hi = spice::kGround;
  spice::NodeId cmp_bias_lo = spice::kGround;
};

/// Builds the termination between existing line-end nodes. `vmid_cr` is
/// the bias produced in the clock-recovery circuit (built by the charge
/// pump cell); pass the node so the window comparator can compare them.
TerminationPorts build_termination(spice::Netlist& nl, const std::string& prefix,
                                   spice::NodeId vdd, spice::NodeId vbn, spice::NodeId line_p,
                                   spice::NodeId line_n, spice::NodeId vmid_cr,
                                   const TerminationSpec& spec = {});

}  // namespace lsl::cells
