// Fig 8: the coarse/fine charge-pump block of the clock synchronizer.
//
// Contents:
//  - weak (fine-loop) charge pump: PMOS source / NMOS sink behind UP/DN
//    switches, with a current-steering second branch into the
//    charge-balancing node Vp and a 5-transistor unity amplifier forcing
//    Vp ~= Vc (keeps the current sources in saturation between pulses);
//  - strong (coarse-loop) charge pump on UPst/DNst that slews Vc back
//    inside the window on a coarse correction;
//  - VH/VL reference ladder and the window comparator watching Vc, with
//    the scan-mode input switches that force the comparator input to the
//    middle of the thresholds ("00" output) during shift;
//  - scan-mode bias collapse: series switches disconnect the bias
//    generators while pull switches drag the PMOS-source gate to GND and
//    the NMOS-sink gate to VDD, turning the pump into the combinational
//    element the paper's scan test drives;
//  - the CP-BIST window comparator (Fig 9) checking |Vp - Vc| < ~150 mV
//    once the loop is locked.
#pragma once

#include <string>

#include "cells/comparator.hpp"
#include "spice/netlist.hpp"

namespace lsl::cells {

struct ChargePumpSpec {
  double w_src = 1.0e-6;      // weak pump current source/sink width
  double w_sw = 1.0e-6;       // weak pump switches
  double strong_ratio = 4.0;  // strong pump device multiplier
  double l = 0.5e-6;
  double c_vc = 1.0e-12;      // loop-filter capacitor on Vc
  double c_vp = 0.5e-12;      // balance capacitor on Vp
  double r_bias_p = 180e3;    // vbp generator: the PMOS source runs
                              // ~20% hotter than the NMOS sink, so the
                              // balance node is amplifier-dominated —
                              // if the amp dies, Vp drifts to a rail
                              // (the CP-BIST failure signature) instead
                              // of the steering branches coincidentally
                              // balancing it mid-rail
  double r_bias_n = 130e3;    // vbn generator
  double w_scan_sw = 2.0e-6;  // scan collapse/pull switches
  // Reference ladder: vdd - r_top - VH - r_mid - VL - r_bot - gnd, with
  // the comparator scan input tapped at the middle of r_mid.
  double r_top = 10e3;
  double r_mid = 10e3;
  double r_bot = 10e3;
  ComparatorSpec window_cmp;         // Vc window comparator (no offset)
  ComparatorSpec bist_cmp = cp_bist_spec();  // Fig-9 CP-BIST comparator
};

/// Control inputs the harness drives as rail-level VSources.
struct ChargePumpControls {
  spice::NodeId up_gate = spice::kGround;    // weak UP switch, PMOS, active low
  spice::NodeId up_b_gate = spice::kGround;  // steering complement (active low)
  spice::NodeId dn_gate = spice::kGround;    // weak DN switch, NMOS, active high
  spice::NodeId dn_b_gate = spice::kGround;  // steering complement (active high)
  spice::NodeId upst_gate = spice::kGround;  // strong UP switch, PMOS, active low
  spice::NodeId dnst_gate = spice::kGround;  // strong DN switch, NMOS, active high
  spice::NodeId sen = spice::kGround;        // scan enable (1 = scan mode)
  spice::NodeId sen_b = spice::kGround;      // its complement
};

struct ChargePumpPorts {
  spice::NodeId vc = spice::kGround;   // fine control voltage (loop filter)
  spice::NodeId vp = spice::kGround;   // charge-balancing node
  spice::NodeId vbp = spice::kGround;  // PMOS source bias (post-collapse node)
  spice::NodeId vbn = spice::kGround;  // NMOS sink bias
  spice::NodeId vh = spice::kGround;   // window upper threshold
  spice::NodeId vl = spice::kGround;   // window lower threshold
  spice::NodeId vmid = spice::kGround; // middle of the thresholds (scan ref)
  spice::NodeId cmp_hi = spice::kGround;  // Vc window comparator outputs
  spice::NodeId cmp_lo = spice::kGround;
  spice::NodeId bist_hi = spice::kGround;  // CP-BIST comparator outputs
  spice::NodeId bist_lo = spice::kGround;
};

ChargePumpPorts build_charge_pump(spice::Netlist& nl, const std::string& prefix,
                                  spice::NodeId vdd, const ChargePumpControls& ctl,
                                  const ChargePumpSpec& spec = {});

}  // namespace lsl::cells
