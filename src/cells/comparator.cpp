#include "cells/comparator.hpp"

namespace lsl::cells {

using spice::Capacitor;
using spice::kGround;
using spice::Mosfet;
using spice::MosType;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;

ComparatorPorts build_offset_comparator(Netlist& nl, const std::string& prefix, NodeId vdd,
                                        NodeId vbn, NodeId in_p, NodeId in_n,
                                        const ComparatorSpec& spec) {
  ComparatorPorts p;
  p.in_p = in_p;
  p.in_n = in_n;

  const NodeId tail = nl.node(prefix + ".tail");
  const NodeId n1 = nl.node(prefix + ".n1");  // mirror (diode) side
  const NodeId n2 = nl.node(prefix + ".n2");  // output side
  p.out_pre = n2;
  p.out = nl.node(prefix + ".out");

  // Input pair: in- pulls the diode (mirror reference) side, in+ pulls
  // the output side, so raising in+ drags n2 low and the inverter output
  // trips HIGH. With the wide device on in-, the mirrored reference
  // current exceeds the in+ current at equal drive, holding n2 high:
  // in+ must exceed in- by the programmed offset before the output trips.
  const double w_p_side = spec.offset_on_minus ? spec.w_input : spec.w_offset;
  const double w_n_side = spec.offset_on_minus ? spec.w_offset : spec.w_input;
  nl.add(prefix + ".m_inp", Mosfet{n2, in_p, tail, MosType::kNmos, w_p_side, spec.l, 0.0});
  nl.add(prefix + ".m_inn", Mosfet{n1, in_n, tail, MosType::kNmos, w_n_side, spec.l, 0.0});

  // PMOS current-mirror load.
  nl.add(prefix + ".m_ld1", Mosfet{n1, n1, vdd, MosType::kPmos, spec.w_load, spec.l, 0.0});
  nl.add(prefix + ".m_ld2", Mosfet{n2, n1, vdd, MosType::kPmos, spec.w_load, spec.l, 0.0});

  // Tail current source.
  nl.add(prefix + ".m_tail", Mosfet{tail, vbn, kGround, MosType::kNmos, spec.w_tail, spec.l, 0.0});

  // Output inverter restores rail-to-rail levels.
  nl.add(prefix + ".m_invp", Mosfet{p.out, n2, vdd, MosType::kPmos, spec.w_inv_p, spec.l, 0.0});
  nl.add(prefix + ".m_invn", Mosfet{p.out, n2, kGround, MosType::kNmos, spec.w_inv_n, spec.l, 0.0});
  return p;
}

WindowComparatorPorts build_window_comparator(Netlist& nl, const std::string& prefix, NodeId vdd,
                                              NodeId vbn, NodeId in_p, NodeId in_n,
                                              const ComparatorSpec& spec) {
  WindowComparatorPorts w;
  w.in_p = in_p;
  w.in_n = in_n;

  // Upper comparator: trips when in_p exceeds in_n by +offset.
  ComparatorSpec hi = spec;
  hi.offset_on_minus = true;
  const ComparatorPorts chi = build_offset_comparator(nl, prefix + ".hi", vdd, vbn, in_p, in_n, hi);
  w.out_hi = chi.out;

  // Lower comparator: inputs swapped, trips when in_n exceeds in_p by
  // +offset, i.e. (in_p - in_n) < -offset.
  ComparatorSpec lo = spec;
  lo.offset_on_minus = true;
  const ComparatorPorts clo = build_offset_comparator(nl, prefix + ".lo", vdd, vbn, in_n, in_p, lo);
  w.out_lo = clo.out;
  return w;
}

ComparatorSpec cp_bist_spec() {
  ComparatorSpec s;
  // Fig 9: 1u/0.2u against the nominal device, widening the offset to
  // ~150 mV for the charge-balance window.
  s.w_input = 0.2e-6;
  s.w_offset = 1.0e-6;
  s.l = 0.35e-6;
  return s;
}

NodeId build_nbias(Netlist& nl, const std::string& prefix, NodeId vdd, double r_ohms, double w,
                   double l) {
  const NodeId vbn = nl.node(prefix + ".vbn");
  nl.add(prefix + ".r_bias", Resistor{vdd, vbn, r_ohms});
  nl.add(prefix + ".m_bias", Mosfet{vbn, vbn, kGround, MosType::kNmos, w, l, 0.0});
  return vbn;
}

}  // namespace lsl::cells
