// Transistor-level comparator cells from the paper:
//  - Fig 5: single-stage OTA with a deliberately mismatched input pair
//    (0.8u/0.5u vs 0.5u/0.5u -> programmed offset) plus an output
//    inverter. Used 4x as the DC-test comparators.
//  - Fig 6: window comparator = two offset comparators with the wide
//    device on opposite inputs (+offset / -offset), OR-decoded outside.
//  - Fig 9: CP-BIST window comparator with a 1u/0.2u vs 0.2u/0.5u-class
//    mismatch for a ~150 mV window around the charge-balance node.
//
// Builders append devices to an existing spice::Netlist under a name
// prefix so cells compose into one flat link netlist for fault
// enumeration. All device names are prefixed, which the fault layer uses
// to attribute faults to cells.
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace lsl::cells {

/// Geometry knobs for the Fig-5 comparator. Defaults follow the paper:
/// un-labelled devices 0.5u/0.5u, the offset device 0.8u/0.5u.
struct ComparatorSpec {
  double w_input = 0.5e-6;   // nominal input device width
  double w_offset = 0.8e-6;  // widened input device width
  double l = 0.5e-6;
  double w_load = 1.0e-6;    // PMOS mirror loads
  double w_tail = 1.0e-6;    // tail current source
  double w_inv_p = 1.0e-6;   // output inverter
  double w_inv_n = 0.5e-6;
  /// True puts the wide device on the in- side: the comparator then
  /// trips at (in+ - in-) = +offset. False mirrors it to -offset.
  bool offset_on_minus = true;
};

/// Interface nodes of a built comparator.
struct ComparatorPorts {
  spice::NodeId in_p = spice::kGround;
  spice::NodeId in_n = spice::kGround;
  spice::NodeId out = spice::kGround;      // rail-to-rail decision
  spice::NodeId out_pre = spice::kGround;  // OTA output, pre-inverter
};

/// Builds the Fig-5 offset comparator between existing supply nodes.
/// `vbn` biases the tail current source.
ComparatorPorts build_offset_comparator(spice::Netlist& nl, const std::string& prefix,
                                        spice::NodeId vdd, spice::NodeId vbn,
                                        spice::NodeId in_p, spice::NodeId in_n,
                                        const ComparatorSpec& spec = {});

/// Window comparator (Fig 6 / Fig 9): out_hi trips when (in_p - in_n)
/// exceeds +offset, out_lo when it falls below -offset. Both low means
/// "inside the window".
struct WindowComparatorPorts {
  spice::NodeId in_p = spice::kGround;
  spice::NodeId in_n = spice::kGround;
  spice::NodeId out_hi = spice::kGround;
  spice::NodeId out_lo = spice::kGround;
};

WindowComparatorPorts build_window_comparator(spice::Netlist& nl, const std::string& prefix,
                                              spice::NodeId vdd, spice::NodeId vbn,
                                              spice::NodeId in_p, spice::NodeId in_n,
                                              const ComparatorSpec& spec = {});

/// Fig-9 variant: wider mismatch (1u vs 0.2u-class) giving the ~150 mV
/// window used by the CP-BIST around the charge-balancing node.
ComparatorSpec cp_bist_spec();

/// NMOS bias generator: resistor + diode-connected NMOS producing the
/// tail bias `vbn` shared by the comparator cells.
spice::NodeId build_nbias(spice::Netlist& nl, const std::string& prefix, spice::NodeId vdd,
                          double r_ohms = 60e3, double w = 1.0e-6, double l = 0.5e-6);

}  // namespace lsl::cells
