// The assembled analog section of the link, as one flat netlist:
//
//   TX FFE arms (Fig 3, differential)  ->  RC interconnect  ->
//   termination + DC-test comparators (Fig 4/5/6)  +  charge pump with
//   window comparator and CP-BIST (Fig 8/9)  +  clock-recovery bias.
//
// The digital rails (data taps, UP/DN switch gates, scan enables) appear
// as VSources so test procedures steer them like the surrounding logic
// would. This is the netlist the structural-fault campaign copies and
// mutilates.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "cells/charge_pump.hpp"
#include "cells/termination.hpp"
#include "cells/transmitter.hpp"
#include "spice/dc.hpp"
#include "spice/netlist.hpp"

namespace lsl::cells {

struct LinkFrontendSpec {
  double vdd = 1.2;
  TransmitterSpec tx;
  RcLineSpec line;
  TerminationSpec term;
  ChargePumpSpec cp;
  /// Closes the coarse feedback combinationally: the window comparator
  /// outputs gate the strong pump (as the FSM does every divided cycle),
  /// so the DC operating point has Vc regulated at the window edge. The
  /// DC test runs with the loop closed; the scan procedures need the
  /// strong-pump gates externally drivable and run open-loop.
  bool close_coarse_loop = false;
};

/// Digital observation points: every comparator decision the DFT logic
/// can capture into a scan flop. Raw output voltages are kept so that
/// comparisons can demand a *strong* 1-vs-0 disagreement: a comparator
/// balancing in its linear region (e.g. the Vc window comparator at the
/// closed-loop regulation point) must not register as a detection.
struct LinkObservation {
  enum Bit : std::size_t {
    kPHi = 0,   // P-arm window comparator vs bias
    kPLo,
    kNHi,       // N-arm window comparator vs bias
    kNLo,
    kBiasHi,    // termination-vs-CR bias window comparator
    kBiasLo,
    kVcHi,      // Vc window comparator (coarse loop)
    kVcLo,
    kBistHi,    // CP-BIST |Vp-Vc| window comparator
    kBistLo,
    kBitCount,
  };
  std::array<double, kBitCount> volts{};
  double vdd = 1.2;

  bool is_high(Bit b) const { return volts[b] > vdd / 2.0; }
  bool p_hi() const { return is_high(kPHi); }
  bool p_lo() const { return is_high(kPLo); }
  bool n_hi() const { return is_high(kNHi); }
  bool n_lo() const { return is_high(kNLo); }
  bool bias_hi() const { return is_high(kBiasHi); }
  bool bias_lo() const { return is_high(kBiasLo); }
  bool vc_hi() const { return is_high(kVcHi); }
  bool vc_lo() const { return is_high(kVcLo); }
  bool bist_hi() const { return is_high(kBistHi); }
  bool bist_lo() const { return is_high(kBistLo); }

  /// True when one voltage is a solid 1 and the other a solid 0 (guard
  /// bands at 2/3 and 1/3 of the rail).
  static bool strong_mismatch(double a, double b, double vdd);

  /// Comparison over the bits the DC and scan tests can strobe (the
  /// CP-BIST comparator only carries meaning after lock, so the at-speed
  /// BIST owns it). True when NO strobed bit strongly mismatches.
  bool same_static(const LinkObservation& o) const;

  std::string str() const;
};

/// Value-semantic assembly of the analog link front end. Copy it, edit
/// the copy's netlist, and re-solve: that is the fault-injection flow.
class LinkFrontend {
 public:
  explicit LinkFrontend(const LinkFrontendSpec& spec = {});

  spice::Netlist& netlist() { return nl_; }
  const spice::Netlist& netlist() const { return nl_; }

  /// Drives the transmitter rails for data bit `d` with previous bit
  /// `d_prev` (the FFE tap). DC vectors use d_prev == d.
  void set_data(bool d, bool d_prev);
  /// Scan mode: collapses the charge-pump biases and muxes the window
  /// comparator input to the threshold midpoint.
  void set_scan_mode(bool scan);
  /// Weak pump switches. `up`/`dn` are logical (active-high) values; the
  /// builder handles PMOS polarity and the steering complements.
  void set_pump(bool up, bool dn);
  /// Strong pump switches.
  void set_strong_pump(bool up, bool dn);

  /// Solves the DC operating point. Returns converged flag.
  spice::DcResult solve(const spice::DcOptions& opts = {}) const;

  /// Extracts the comparator decisions from a solved operating point
  /// (threshold at vdd/2).
  LinkObservation observe(const spice::DcResult& r) const;

  /// Differential line voltage at the receiver, for characterization.
  double line_diff(const spice::DcResult& r) const;
  double vc(const spice::DcResult& r) const;
  double vp(const spice::DcResult& r) const;

  const LinkFrontendSpec& spec() const { return spec_; }
  const TerminationPorts& term_ports() const { return term_; }
  const ChargePumpPorts& cp_ports() const { return cp_; }
  spice::NodeId line_p() const { return line_p_rx_; }
  spice::NodeId line_n() const { return line_n_rx_; }

  /// Names of the drive sources (for transient tests that wiggle them).
  const std::string& src_tap_main_p() const { return s_tap_main_p_; }
  const std::string& src_tap_main_n() const { return s_tap_main_n_; }
  const std::string& src_drv_in_p() const { return s_drv_in_p_; }
  const std::string& src_drv_in_n() const { return s_drv_in_n_; }

 private:
  void set_source(const std::string& name, double volts);

  LinkFrontendSpec spec_;
  spice::Netlist nl_;
  TerminationPorts term_;
  ChargePumpPorts cp_;
  spice::NodeId line_p_rx_ = spice::kGround;
  spice::NodeId line_n_rx_ = spice::kGround;

  std::string s_tap_main_p_, s_tap_alpha_p_, s_drv_in_p_;
  std::string s_tap_main_n_, s_tap_alpha_n_, s_drv_in_n_;
  std::string s_up_, s_upb_, s_dn_, s_dnb_, s_upst_, s_dnst_, s_sen_, s_senb_;
};

}  // namespace lsl::cells
