// Fig 3: capacitive 2-tap feed-forward equalizer with weak driver.
//
// Per differential arm the transmitter couples the current data bit
// through a series capacitor Cs and the delayed+inverted bit through
// Cs*alpha (the 2-tap FIR de-emphasis), while a weak push-pull driver
// behind a large series resistor (the "-gm cell with a current source"
// of the paper) holds the DC level so arbitrarily low activity factors
// work. The rail-level tap voltages come from the digital flops; in this
// analog netlist they appear as driven VSource nodes owned by the
// harness.
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace lsl::cells {

struct TransmitterSpec {
  double c_main = 120e-15;   // Cs
  double c_alpha = 45e-15;   // Cs * alpha (worst-case optimized in [7])
  double r_weak = 100e3;     // weak-driver series resistance
  double w_drv_p = 1.0e-6;   // weak driver inverter PMOS
  double w_drv_n = 0.4e-6;   // weak driver inverter NMOS
  double l = 0.5e-6;
};

/// One arm of the transmitter. The caller provides the rail tap nodes:
///  - tap_main: current-bit rail level
///  - tap_alpha: delayed, inverted bit rail level
///  - drv_in: weak-driver input (inverted data, so the driver output
///    polarity matches the data)
struct TransmitterArmPorts {
  spice::NodeId tap_main = spice::kGround;
  spice::NodeId tap_alpha = spice::kGround;
  spice::NodeId drv_in = spice::kGround;
  spice::NodeId drv_out = spice::kGround;  // weak inverter output, pre-resistor
  spice::NodeId line = spice::kGround;     // line launch node
};

TransmitterArmPorts build_transmitter_arm(spice::Netlist& nl, const std::string& prefix,
                                          spice::NodeId vdd, spice::NodeId tap_main,
                                          spice::NodeId tap_alpha, spice::NodeId drv_in,
                                          spice::NodeId line, const TransmitterSpec& spec = {});

/// Distributed RC interconnect model: `sections` L-sections totalling
/// r_total / c_total between `from` and `to`.
struct RcLineSpec {
  int sections = 4;
  double r_total = 2.0e3;   // ~10 mm of minimum-width wire
  double c_total = 2.0e-12;
};

void build_rc_line(spice::Netlist& nl, const std::string& prefix, spice::NodeId from,
                   spice::NodeId to, const RcLineSpec& spec = {});

}  // namespace lsl::cells
