#include "cells/link_frontend.hpp"

#include <sstream>

namespace lsl::cells {

using spice::kGround;
using spice::Mosfet;
using spice::MosType;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;
using spice::VSource;

bool LinkObservation::strong_mismatch(double a, double b, double vdd) {
  const double hi = 2.0 * vdd / 3.0;
  const double lo = vdd / 3.0;
  return (a > hi && b < lo) || (a < lo && b > hi);
}

bool LinkObservation::same_static(const LinkObservation& o) const {
  for (std::size_t b = kPHi; b <= kVcLo; ++b) {
    if (strong_mismatch(volts[b], o.volts[b], vdd)) return false;
  }
  return true;
}

std::string LinkObservation::str() const {
  std::ostringstream os;
  auto c = [&](Bit b) { return is_high(b) ? '1' : '0'; };
  os << "p:" << c(kPHi) << c(kPLo) << " n:" << c(kNHi) << c(kNLo) << " bias:" << c(kBiasHi)
     << c(kBiasLo) << " vc:" << c(kVcHi) << c(kVcLo) << " bist:" << c(kBistHi) << c(kBistLo);
  return os.str();
}

LinkFrontend::LinkFrontend(const LinkFrontendSpec& spec) : spec_(spec) {
  const NodeId vdd = nl_.node("vdd");
  nl_.add("v_vdd", VSource{vdd, kGround, spec_.vdd});

  // Shared comparator tail bias for the termination comparators.
  const NodeId vbn = build_nbias(nl_, "bias", vdd, 130e3);

  // Rails driven by the digital side. Each drive has a realistic source
  // impedance (a minimum-size driver is ~kOhms), so a short at a driven
  // gate wins at the transistor terminal instead of being masked by an
  // ideal source.
  auto rail = [&](const std::string& name) {
    const NodeId n = nl_.node(name);
    const NodeId raw = nl_.node(name + "_drv");
    nl_.add("v_" + name, VSource{raw, kGround, 0.0});
    nl_.add("rdrv_" + name, Resistor{raw, n, 2e3});
    return n;
  };
  const NodeId tap_main_p = rail("tx_tap_main_p");
  const NodeId tap_alpha_p = rail("tx_tap_alpha_p");
  const NodeId drv_in_p = rail("tx_drv_in_p");
  const NodeId tap_main_n = rail("tx_tap_main_n");
  const NodeId tap_alpha_n = rail("tx_tap_alpha_n");
  const NodeId drv_in_n = rail("tx_drv_in_n");
  s_tap_main_p_ = "v_tx_tap_main_p";
  s_tap_alpha_p_ = "v_tx_tap_alpha_p";
  s_drv_in_p_ = "v_tx_drv_in_p";
  s_tap_main_n_ = "v_tx_tap_main_n";
  s_tap_alpha_n_ = "v_tx_tap_alpha_n";
  s_drv_in_n_ = "v_tx_drv_in_n";

  // Arms and interconnect.
  const NodeId launch_p = nl_.node("line_p_tx");
  const NodeId launch_n = nl_.node("line_n_tx");
  line_p_rx_ = nl_.node("line_p_rx");
  line_n_rx_ = nl_.node("line_n_rx");
  build_transmitter_arm(nl_, "tx.p", vdd, tap_main_p, tap_alpha_p, drv_in_p, launch_p, spec_.tx);
  build_transmitter_arm(nl_, "tx.n", vdd, tap_main_n, tap_alpha_n, drv_in_n, launch_n, spec_.tx);
  build_rc_line(nl_, "line.p", launch_p, line_p_rx_, spec_.line);
  build_rc_line(nl_, "line.n", launch_n, line_n_rx_, spec_.line);

  // Charge pump controls (driven rails). With the coarse loop closed,
  // the strong-pump gates are driven by the window comparator instead of
  // external rails (wired up after the pump is built).
  ChargePumpControls ctl;
  ctl.up_gate = rail("cp_up_g");
  ctl.up_b_gate = rail("cp_upb_g");
  ctl.dn_gate = rail("cp_dn_g");
  ctl.dn_b_gate = rail("cp_dnb_g");
  if (spec_.close_coarse_loop) {
    ctl.upst_gate = nl_.node("cp_upst_g");
    ctl.dnst_gate = nl_.node("cp_dnst_g");
  } else {
    ctl.upst_gate = rail("cp_upst_g");
    ctl.dnst_gate = rail("cp_dnst_g");
  }
  ctl.sen = rail("cp_sen");
  ctl.sen_b = rail("cp_senb");
  s_up_ = "v_cp_up_g";
  s_upb_ = "v_cp_upb_g";
  s_dn_ = "v_cp_dn_g";
  s_dnb_ = "v_cp_dnb_g";
  s_upst_ = "v_cp_upst_g";
  s_dnst_ = "v_cp_dnst_g";
  s_sen_ = "v_cp_sen";
  s_senb_ = "v_cp_senb";

  cp_ = build_charge_pump(nl_, "cp", vdd, ctl, spec_.cp);

  if (spec_.close_coarse_loop) {
    // The FSM's combinational view: Vc below VL -> UPst (PMOS gate low
    // via an inverter); Vc above VH -> DNst (NMOS gate follows cmp_hi).
    // These stand in for the digital FSM path and are excluded from the
    // analog fault universe ("fsm." prefix).
    nl_.add("fsm.m_invp",
            Mosfet{ctl.upst_gate, cp_.cmp_lo, vdd, MosType::kPmos, 1.0e-6, 0.5e-6, 0.0});
    nl_.add("fsm.m_invn",
            Mosfet{ctl.upst_gate, cp_.cmp_lo, kGround, MosType::kNmos, 0.5e-6, 0.5e-6, 0.0});
    nl_.add("fsm.r_dnst", Resistor{cp_.cmp_hi, ctl.dnst_gate, 10.0});
  }

  // Clock-recovery bias replica compared against the termination bias.
  const NodeId vmid_cr = nl_.node("cr.vmid");
  nl_.add("cr.r_top", Resistor{vdd, vmid_cr, spec_.term.r_div_top});
  nl_.add("cr.r_bot", Resistor{vmid_cr, kGround, spec_.term.r_div_bot});

  term_ = build_termination(nl_, "term", vdd, vbn, line_p_rx_, line_n_rx_, vmid_cr, spec_.term);

  // Neutral defaults: normal mode, pumps idle, data = 0.
  set_scan_mode(false);
  set_pump(false, false);
  if (!spec_.close_coarse_loop) set_strong_pump(false, false);
  set_data(false, false);
}

void LinkFrontend::set_source(const std::string& name, double volts) {
  const auto di = nl_.find_device(name);
  // Value-only edit: keeps the solver workspace's per-topology caches
  // (sparsity pattern, symbolic LU) warm across drive toggles.
  nl_.set_vsource_volts(*di, volts);
}

void LinkFrontend::set_data(bool d, bool d_prev) {
  const double hi = spec_.vdd;
  // P arm: main tap follows d; alpha tap carries the delayed bit
  // inverted; the weak driver input is the data complement (it inverts).
  set_source(s_tap_main_p_, d ? hi : 0.0);
  set_source(s_tap_alpha_p_, d_prev ? 0.0 : hi);
  set_source(s_drv_in_p_, d ? 0.0 : hi);
  // N arm: complement everything.
  set_source(s_tap_main_n_, d ? 0.0 : hi);
  set_source(s_tap_alpha_n_, d_prev ? hi : 0.0);
  set_source(s_drv_in_n_, d ? hi : 0.0);
}

void LinkFrontend::set_scan_mode(bool scan) {
  set_source(s_sen_, scan ? spec_.vdd : 0.0);
  set_source(s_senb_, scan ? 0.0 : spec_.vdd);
}

void LinkFrontend::set_pump(bool up, bool dn) {
  // PMOS UP switch: active low. Steering branch gets the complements.
  set_source(s_up_, up ? 0.0 : spec_.vdd);
  set_source(s_upb_, up ? spec_.vdd : 0.0);
  set_source(s_dn_, dn ? spec_.vdd : 0.0);
  set_source(s_dnb_, dn ? 0.0 : spec_.vdd);
}

void LinkFrontend::set_strong_pump(bool up, bool dn) {
  if (spec_.close_coarse_loop) {
    throw std::logic_error("strong pump is comparator-driven with the coarse loop closed");
  }
  set_source(s_upst_, up ? 0.0 : spec_.vdd);
  set_source(s_dnst_, dn ? spec_.vdd : 0.0);
}

spice::DcResult LinkFrontend::solve(const spice::DcOptions& opts) const {
  return spice::solve_dc(nl_, opts);
}

LinkObservation LinkFrontend::observe(const spice::DcResult& r) const {
  LinkObservation o;
  o.vdd = spec_.vdd;
  o.volts[LinkObservation::kPHi] = r.v(nl_, term_.cmp_p_hi);
  o.volts[LinkObservation::kPLo] = r.v(nl_, term_.cmp_p_lo);
  o.volts[LinkObservation::kNHi] = r.v(nl_, term_.cmp_n_hi);
  o.volts[LinkObservation::kNLo] = r.v(nl_, term_.cmp_n_lo);
  o.volts[LinkObservation::kBiasHi] = r.v(nl_, term_.cmp_bias_hi);
  o.volts[LinkObservation::kBiasLo] = r.v(nl_, term_.cmp_bias_lo);
  o.volts[LinkObservation::kVcHi] = r.v(nl_, cp_.cmp_hi);
  o.volts[LinkObservation::kVcLo] = r.v(nl_, cp_.cmp_lo);
  o.volts[LinkObservation::kBistHi] = r.v(nl_, cp_.bist_hi);
  o.volts[LinkObservation::kBistLo] = r.v(nl_, cp_.bist_lo);
  return o;
}

double LinkFrontend::line_diff(const spice::DcResult& r) const {
  return r.v(nl_, line_p_rx_) - r.v(nl_, line_n_rx_);
}

double LinkFrontend::vc(const spice::DcResult& r) const { return r.v(nl_, cp_.vc); }

double LinkFrontend::vp(const spice::DcResult& r) const { return r.v(nl_, cp_.vp); }

}  // namespace lsl::cells
