#include "util/prbs.hpp"

namespace lsl::util {

namespace {

struct Taps {
  std::uint32_t a;
  std::uint32_t b;
};

Taps taps_for(PrbsOrder order) {
  switch (order) {
    case PrbsOrder::kPrbs7: return {7, 6};
    case PrbsOrder::kPrbs9: return {9, 5};
    case PrbsOrder::kPrbs15: return {15, 14};
    case PrbsOrder::kPrbs23: return {23, 18};
    case PrbsOrder::kPrbs31: return {31, 28};
  }
  return {7, 6};
}

}  // namespace

PrbsGenerator::PrbsGenerator(PrbsOrder order, std::uint32_t seed) : order_(order), state_(seed) {
  const Taps t = taps_for(order);
  tap_a_ = t.a;
  tap_b_ = t.b;
  const int n = static_cast<int>(order);
  mask_ = (n >= 32) ? 0xffffffffu : ((1u << n) - 1u);
  state_ &= mask_;
  if (state_ == 0) state_ = 1;  // avoid the LFSR lockup state
}

bool PrbsGenerator::next_bit() {
  // Polynomial x^n + x^m + 1 gives the recurrence a_k = a_{k-n} ^ a_{k-m}.
  // With bit 1 holding a_t (the output) and bit j holding a_{t+j-1}, the
  // bit shifted in at position n is a_{t+n} = a_t ^ a_{t+n-m}, i.e.
  // bit 1 XOR bit (n-m+1).
  const std::uint32_t bit_out = state_ & 1u;
  const std::uint32_t bit_mid = (state_ >> (tap_a_ - tap_b_)) & 1u;
  const std::uint32_t fb = bit_out ^ bit_mid;
  state_ = ((state_ >> 1) | (fb << (tap_a_ - 1))) & mask_;
  return bit_out != 0;
}

std::vector<bool> PrbsGenerator::bits(std::size_t n) {
  std::vector<bool> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next_bit());
  return out;
}

std::uint64_t PrbsGenerator::period() const {
  return (1ULL << static_cast<int>(order_)) - 1ULL;
}

}  // namespace lsl::util
