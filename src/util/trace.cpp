#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace lsl::util {

namespace trace_detail {
std::atomic<bool> g_enabled{false};
}  // namespace trace_detail

namespace {

using Clock = std::chrono::steady_clock;

/// Session state shared by all threads. Generation bumps on every
/// start(); a thread ring lazily re-arms itself when it notices its
/// generation is stale, so start() never has to touch other threads'
/// buffers while they might be recording.
std::atomic<std::uint64_t> g_generation{0};
std::atomic<std::size_t> g_capacity{1u << 16};
std::atomic<std::int64_t> g_t0_ns{0};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
      .count();
}

/// Per-thread event ring. Owned jointly by the registry (for flush
/// after the thread exits) and the thread itself (so the pointer never
/// dangles if the registry were ever cleared).
struct ThreadBuffer {
  std::vector<TraceEvent> ring;
  std::size_t next = 0;       // next write slot
  std::size_t count = 0;      // valid events (<= ring.size())
  std::uint64_t dropped = 0;  // overwritten events this session
  std::uint64_t generation = 0;
  std::uint32_t tid = 0;
  std::string name;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: thread buffers must outlive exit order
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> tl;
  if (!tl) {
    tl = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    tl->tid = static_cast<std::uint32_t>(r.buffers.size());
    r.buffers.push_back(tl);
  }
  return *tl;
}

/// Re-arms a stale ring for the current session (allocates once per
/// thread per session; never on the per-span path afterwards).
void rearm(ThreadBuffer& b) {
  b.ring.assign(g_capacity.load(std::memory_order_relaxed), TraceEvent{});
  b.next = 0;
  b.count = 0;
  b.dropped = 0;
  b.generation = g_generation.load(std::memory_order_relaxed);
}

void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_json_arg(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::start(std::size_t events_per_thread) {
#if LSL_TRACE_ENABLED
  g_capacity.store(std::max<std::size_t>(events_per_thread, 1), std::memory_order_relaxed);
  g_t0_ns.store(now_ns(), std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_relaxed);
  trace_detail::g_enabled.store(true, std::memory_order_release);
#else
  (void)events_per_thread;
  std::fprintf(stderr, "[warn ] tracer: compiled out (LSL_TRACE_ENABLED=0); start() ignored\n");
#endif
}

void Tracer::stop() { trace_detail::g_enabled.store(false, std::memory_order_release); }

std::vector<TraceEvent> Tracer::drain() {
  std::vector<TraceEvent> out;
  const std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& b : r.buffers) {
    if (b->generation != gen || b->count == 0) continue;
    // Ring order: oldest surviving event first.
    const std::size_t n = b->ring.size();
    const std::size_t first = b->count < n ? 0 : b->next;
    for (std::size_t k = 0; k < b->count; ++k) out.push_back(b->ring[(first + k) % n]);
    b->next = 0;
    b->count = 0;
    b->dropped = 0;
  }
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;  // enclosing spans first
    return a.tid < b.tid;
  });
  return out;
}

std::uint64_t Tracer::dropped() const {
  const std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::uint64_t n = 0;
  for (const auto& b : r.buffers) {
    if (b->generation == gen) n += b->dropped;
  }
  return n;
}

std::string Tracer::json() {
  const std::vector<TraceEvent> events = drain();

  // Thread-name metadata for every thread that ever set one.
  std::vector<std::pair<std::uint32_t, std::string>> names;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& b : r.buffers) {
      if (!b->name.empty()) names.emplace_back(b->tid, b->name);
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : names) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_json_escaped(out, name);
    out += "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.tid) + ",\"name\":\"";
    append_json_escaped(out, e.name != nullptr ? e.name : "");
    out += "\",\"cat\":\"";
    append_json_escaped(out, e.cat != nullptr && e.cat[0] != '\0' ? e.cat : "default");
    out += "\",\"ts\":";
    append_json_double(out, e.ts_us);
    out += ",\"dur\":";
    append_json_double(out, e.dur_us);
    if (e.arg1_key != nullptr) {
      out += ",\"args\":{\"";
      append_json_escaped(out, e.arg1_key);
      out += "\":";
      append_json_arg(out, e.arg1);
      if (e.arg2_key != nullptr) {
        out += ",\"";
        append_json_escaped(out, e.arg2_key);
        out += "\":";
        append_json_arg(out, e.arg2);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) {
  const std::string body = json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

void Tracer::set_thread_name(const std::string& name) {
  ThreadBuffer& b = local_buffer();
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);  // name is read under the registry lock in json()
  b.name = name;
}

void TraceSpan::begin(const char* name, const char* cat) {
  active_ = true;
  name_ = name;
  cat_ = cat;
  start_ns_ = now_ns();
}

void TraceSpan::end() {
  const std::int64_t end_ns = now_ns();
  ThreadBuffer& b = local_buffer();
  if (b.generation != g_generation.load(std::memory_order_relaxed)) rearm(b);
  TraceEvent& e = b.ring[b.next];
  e.name = name_;
  e.cat = cat_;
  const std::int64_t t0 = g_t0_ns.load(std::memory_order_relaxed);
  e.ts_us = static_cast<double>(start_ns_ - t0) * 1e-3;
  e.dur_us = static_cast<double>(end_ns - start_ns_) * 1e-3;
  e.tid = b.tid;
  e.arg1_key = arg1_key_;
  e.arg1 = arg1_;
  e.arg2_key = arg2_key_;
  e.arg2 = arg2_;
  b.next = (b.next + 1) % b.ring.size();
  if (b.count < b.ring.size()) {
    ++b.count;
  } else {
    ++b.dropped;
  }
}

}  // namespace lsl::util
