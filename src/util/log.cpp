#include "util/log.hpp"

#include <cstdio>

namespace lsl::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff: return "";
  }
  return "";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "%s%s\n", prefix(level), msg.c_str());
}

void log_debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
void log_info(const std::string& msg) { log(LogLevel::kInfo, msg); }
void log_warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
void log_error(const std::string& msg) { log(LogLevel::kError, msg); }

}  // namespace lsl::util
