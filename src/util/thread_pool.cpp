#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/trace.hpp"

namespace lsl::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  queues_.resize(std::max<std::size_t>(num_threads, 1));
  steals_.resize(queues_.size(), 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::vector<std::size_t> ThreadPool::steal_counts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return steals_;
}

std::size_t ThreadPool::total_steals() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const std::size_t s : steals_) n += s;
  return n;
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  Task wrapped([fn = std::move(task)](std::size_t) { fn(); });
  std::future<void> fut = wrapped.get_future();
  if (workers_.empty()) {
    wrapped(0);  // inline mode: run on the submitting thread, worker 0
    return fut;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    queues_[next_queue_].push_back(std::move(wrapped));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++queued_;
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::for_each(std::size_t count,
                          const std::function<void(std::size_t, std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) {
      Task t([&fn, i](std::size_t worker) { fn(i, worker); });
      futures.push_back(t.get_future());
      t(0);
    }
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t i = 0; i < count; ++i) {
        Task t([&fn, i](std::size_t worker) { fn(i, worker); });
        futures.push_back(t.get_future());
        queues_[i % queues_.size()].push_back(std::move(t));
        ++queued_;
      }
    }
    cv_.notify_all();
  }
  // Wait for everything, then surface the lowest-indexed failure so the
  // observable outcome does not depend on scheduling order.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

bool ThreadPool::pop_locked(std::size_t self, Task& out) {
  if (!queues_[self].empty()) {
    out = std::move(queues_[self].front());
    queues_[self].pop_front();
    --queued_;
    return true;
  }
  // Steal from the back of the fullest other deque.
  std::size_t victim = queues_.size();
  std::size_t best = 0;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (q != self && queues_[q].size() > best) {
      best = queues_[q].size();
      victim = q;
    }
  }
  if (victim == queues_.size()) return false;
  out = std::move(queues_[victim].back());
  queues_[victim].pop_back();
  --queued_;
  ++steals_[self];
  return true;
}

void ThreadPool::worker_main(std::size_t self) {
  if (Tracer::instance().enabled()) {
    Tracer::set_thread_name("pool-worker-" + std::to_string(self));
  }
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return queued_ > 0 || stopping_; });
      if (!pop_locked(self, task)) {
        if (stopping_) return;  // drained: queued work always completes
        continue;
      }
    }
    task(self);
  }
}

}  // namespace lsl::util
