// Process-wide metrics registry: counters, gauges, and histograms with
// fixed log-scale buckets, all lock-free on the record path (plain
// relaxed atomics). Instruments are created on first use by name and
// live for the life of the process — hot paths cache the returned
// reference (e.g. in a function-local static) and pay one atomic RMW
// per record. Metrics::reset() zeroes values but never invalidates
// references, so cached handles stay usable across test cases.
//
// snapshot_json() exports everything as one nested JSON document; the
// schema and the full instrument-name catalogue are documented in
// docs/OBSERVABILITY.md.
//
// Metrics never influence simulation results — recording is
// write-only from the instrumented code — so leaving them always-on
// cannot perturb byte-identity of canonical campaign output. The one
// exception is *detailed timing* (extra steady_clock reads inside the
// Newton loop, e.g. stamp-vs-factorization attribution), which is
// gated behind set_detailed_timing() because clock reads in the inner
// loop cost real time even though they still cannot change results.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace lsl::util {

class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over 64 fixed power-of-two buckets. Bucket i counts
/// observations v with bucket_edge(i-1) < v <= bucket_edge(i), where
/// bucket_edge(i) = 2^(kMinExp + i). With kMinExp = -30 the edges run
/// from ~9.3e-10 to ~8.6e9 — nanoseconds-to-hours when observing
/// seconds, and 1-to-billions when observing counts. Values at or
/// below the first edge (including 0 and negatives) land in bucket 0;
/// values above the last edge clamp into the last bucket. Edges are
/// compile-time constants, so two processes always agree on them.
class MetricHistogram {
 public:
  static constexpr int kBucketCount = 64;
  static constexpr int kMinExp = -30;

  static double bucket_edge(int i);
  static int bucket_index(double v);

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::array<std::uint64_t, kBucketCount> buckets{};
  };
  Snapshot snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// The registry. counter()/gauge()/histogram() take a mutex for the
/// name lookup — cache the reference when recording from a hot loop.
class Metrics {
 public:
  static Metrics& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  MetricHistogram& histogram(const std::string& name);

  /// Nested JSON: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with instruments sorted by name and zero-count histogram buckets
  /// omitted. See docs/OBSERVABILITY.md for the full schema.
  std::string snapshot_json() const;

  /// Writes snapshot_json() to `path`. Returns false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Zeroes every registered instrument. References previously
  /// returned by counter()/gauge()/histogram() remain valid.
  void reset();

  /// Opt-in fine-grained timing (extra clock reads on solver inner
  /// loops: stamp/factorization split, per-step wall time). Off by
  /// default; the --metrics/--trace bench flags switch it on.
  static bool detailed_timing() {
    return g_detailed_timing.load(std::memory_order_relaxed);
  }
  static void set_detailed_timing(bool on) {
    g_detailed_timing.store(on, std::memory_order_relaxed);
  }

 private:
  Metrics() = default;
  static std::atomic<bool> g_detailed_timing;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
};

/// Shorthand for Metrics::instance().
inline Metrics& metrics() { return Metrics::instance(); }

}  // namespace lsl::util
