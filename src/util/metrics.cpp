#include "util/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace lsl::util {

std::atomic<bool> Metrics::g_detailed_timing{false};

double MetricHistogram::bucket_edge(int i) { return std::ldexp(1.0, kMinExp + i); }

int MetricHistogram::bucket_index(double v) {
  // NaN, negatives, zero, and anything at or below the first edge all
  // collapse into bucket 0 (the "!(v > edge)" form catches NaN too).
  if (!(v > bucket_edge(0))) return 0;
  if (v > bucket_edge(kBucketCount - 1)) return kBucketCount - 1;
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  // v in (2^(e-1), 2^e) maps to the bucket whose upper edge is 2^e;
  // an exact power of two (m == 0.5) sits ON the lower edge and
  // belongs to the bucket below ("le" semantics).
  int idx = e - kMinExp;
  if (m == 0.5) --idx;
  if (idx < 0) return 0;
  if (idx >= kBucketCount) return kBucketCount - 1;
  return idx;
}

void MetricHistogram::observe(double v) {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

MetricHistogram::Snapshot MetricHistogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBucketCount; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

void MetricHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

Metrics& Metrics::instance() {
  static Metrics* m = new Metrics();  // leaked: instrument refs may be cached in statics
  return *m;
}

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

MetricHistogram& Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<MetricHistogram>();
  return *slot;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_number(std::string& out, double v) {
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  } else {
    out += "0";  // min/max of an empty histogram; count 0 disambiguates
  }
}

}  // namespace

std::string Metrics::snapshot_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    append_escaped(out, name);
    out += "\":" + std::to_string(c->value());
  }
  out += "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    append_escaped(out, name);
    out += "\":";
    append_number(out, g->value());
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    const MetricHistogram::Snapshot s = h->snapshot();
    out += "\n\"";
    append_escaped(out, name);
    out += "\":{\"count\":" + std::to_string(s.count) + ",\"sum\":";
    append_number(out, s.sum);
    out += ",\"min\":";
    append_number(out, s.count > 0 ? s.min : 0.0);
    out += ",\"max\":";
    append_number(out, s.count > 0 ? s.max : 0.0);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < MetricHistogram::kBucketCount; ++i) {
      const std::uint64_t n = s.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;  // sparse: zero-count buckets omitted
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += "{\"le\":";
      append_number(out, MetricHistogram::bucket_edge(i));
      out += ",\"count\":" + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += "\n}\n}\n";
  return out;
}

bool Metrics::write_json(const std::string& path) const {
  const std::string body = snapshot_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace lsl::util
