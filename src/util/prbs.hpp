// Pseudo-random binary sequence generators used as at-speed BIST stimulus
// and for eye-diagram workloads. Implemented as Fibonacci LFSRs with the
// standard ITU-T polynomials.
#pragma once

#include <cstdint>
#include <vector>

namespace lsl::util {

/// PRBS polynomial selection. The value is the sequence order n; the
/// sequence repeats every 2^n - 1 bits.
enum class PrbsOrder : int {
  kPrbs7 = 7,    // x^7 + x^6 + 1
  kPrbs9 = 9,    // x^9 + x^5 + 1
  kPrbs15 = 15,  // x^15 + x^14 + 1
  kPrbs23 = 23,  // x^23 + x^18 + 1
  kPrbs31 = 31,  // x^31 + x^28 + 1
};

/// Fibonacci LFSR PRBS generator. Never emits the all-zero lockup state.
class PrbsGenerator {
 public:
  explicit PrbsGenerator(PrbsOrder order, std::uint32_t seed = 1u);

  /// Next bit of the sequence.
  bool next_bit();

  /// Generates `n` bits into a vector (convenience for workloads).
  std::vector<bool> bits(std::size_t n);

  /// Sequence period, 2^order - 1.
  std::uint64_t period() const;

  PrbsOrder order() const { return order_; }

 private:
  PrbsOrder order_;
  std::uint32_t state_;
  std::uint32_t tap_a_;  // feedback tap positions (1-based bit index)
  std::uint32_t tap_b_;
  std::uint32_t mask_;
};

/// Square-wave (1010...) pattern source, the paper's "simple toggling
/// data pattern" used during scan to expose dynamic-mismatch faults.
class TogglePattern {
 public:
  explicit TogglePattern(bool start = false) : next_(start) {}
  bool next_bit() {
    const bool b = next_;
    next_ = !next_;
    return b;
  }

 private:
  bool next_;
};

}  // namespace lsl::util
