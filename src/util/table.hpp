// ASCII table printer. The bench harnesses use it to emit rows in the
// same layout as the paper's tables so paper-vs-measured comparison is a
// visual diff.
#pragma once

#include <string>
#include <vector>

namespace lsl::util {

/// Column-aligned ASCII table with a header row and optional title.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with `prec` decimals.
  static std::string num(double v, int prec = 1);
  /// Convenience: "87.8%" style percentage.
  static std::string pct(double v, int prec = 1);

  std::string str() const;
  void print() const;  // to stdout

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lsl::util
