// Minimal flat-JSON-object reader/writer for JSONL checkpoint files.
// Campaign checkpoints are append-only, one object per line, with only
// string / number / bool fields — so a dependency-free ~150-line
// implementation beats dragging in a JSON library the container does
// not have. Nested objects and arrays are deliberately unsupported.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace lsl::util {

/// Ordered flat JSON object. Writing preserves insertion order so
/// checkpoint lines diff cleanly; reading is order-insensitive.
class JsonObject {
 public:
  using Value = std::variant<std::string, double, bool>;

  void set(const std::string& key, const std::string& v) { fields_.emplace_back(key, v); }
  void set(const std::string& key, const char* v) { fields_.emplace_back(key, std::string(v)); }
  void set(const std::string& key, double v) { fields_.emplace_back(key, v); }
  void set(const std::string& key, std::int64_t v) {
    fields_.emplace_back(key, static_cast<double>(v));
  }
  void set(const std::string& key, std::size_t v) {
    fields_.emplace_back(key, static_cast<double>(v));
  }
  void set(const std::string& key, int v) { fields_.emplace_back(key, static_cast<double>(v)); }
  void set(const std::string& key, bool v) { fields_.emplace_back(key, v); }

  bool get_string(const std::string& key, std::string& out) const;
  bool get_number(const std::string& key, double& out) const;
  bool get_uint(const std::string& key, std::size_t& out) const;
  bool get_bool(const std::string& key, bool& out) const;
  bool has(const std::string& key) const;
  std::size_t size() const { return fields_.size(); }

  /// Serializes to one {"k":v,...} line (no trailing newline).
  std::string str() const;

  /// Parses a single flat JSON object. Returns false on malformed input
  /// or on nested objects/arrays; `out` is cleared first either way.
  static bool parse(const std::string& line, JsonObject& out);

 private:
  const Value* find(const std::string& key) const;
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Escapes a string for embedding in JSON (quotes not included).
std::string json_escape(const std::string& s);

/// Appends `line` + '\n' to `path`, creating the file if needed, and
/// flushes to disk before returning (checkpoints must survive a kill).
/// Returns false on I/O failure.
bool append_line(const std::string& path, const std::string& line);

/// Reads all non-empty lines of `path`. Missing file yields an empty
/// vector (a fresh campaign with no checkpoint is not an error).
std::vector<std::string> read_lines(const std::string& path);

}  // namespace lsl::util
