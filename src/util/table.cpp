#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace lsl::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string Table::pct(double v, int prec) { return num(v, prec) + "%"; }

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto hline = [&] {
    std::string s = "+";
    for (const auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      s += " " + v + std::string(widths[c] - v.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += hline();
  out += line(header_);
  out += hline();
  for (const auto& row : rows_) out += line(row);
  out += hline();
  return out;
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace lsl::util
