// Low-overhead scoped-span tracer with Chrome trace_event JSON export.
// Hot paths (one span per DC solve, per campaign fault, per MC trial)
// open a TraceSpan whose constructor is a single relaxed atomic load
// when tracing is off — no locks, no allocation, no clock read. When
// tracing is on, each thread appends completed spans to its own
// fixed-capacity ring buffer (oldest events overwritten, drop count
// kept), and the buffers are merged and time-sorted only at flush.
//
// Output is the Chrome trace_event format ("X" complete events plus
// "M" thread_name metadata), loadable in chrome://tracing and Perfetto
// (ui.perfetto.dev). docs/OBSERVABILITY.md walks through a capture.
//
// Concurrency contract: spans may begin/end on any thread (a span must
// end on the thread it began on). stop()/drain()/write_json() must be
// called while no other thread is inside a span — in practice after
// worker pools have joined, which is how the benches use it. Tracing
// never feeds back into simulation results, so enabling it cannot
// perturb canonical campaign output.
//
// Compile-time kill switch: build with LSL_TRACE_ENABLED=0 (CMake
// -DLSL_TRACE=OFF) and every span compiles to an empty inline body;
// Tracer::start() then refuses to enable.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#ifndef LSL_TRACE_ENABLED
#define LSL_TRACE_ENABLED 1
#endif

namespace lsl::util {

namespace trace_detail {
/// Runtime flag, read on every span open with a relaxed load.
extern std::atomic<bool> g_enabled;
}  // namespace trace_detail

/// One completed span. `name`/`cat` and arg keys must be string
/// literals (or otherwise outlive the tracer) — events store the
/// pointers, never copies, so the record fast path allocates nothing.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  double ts_us = 0.0;   // span start, microseconds since Tracer::start()
  double dur_us = 0.0;  // span duration, microseconds
  std::uint32_t tid = 0;
  const char* arg1_key = nullptr;
  double arg1 = 0.0;
  const char* arg2_key = nullptr;
  double arg2 = 0.0;
};

/// Process-wide tracer. All methods are safe to call when tracing has
/// never been started; start()/stop() toggle recording globally.
class Tracer {
 public:
  static Tracer& instance();

  /// Enables recording. Each thread that records gets its own ring of
  /// `events_per_thread` events; older events are overwritten (and
  /// counted in dropped()) once a ring is full. Clears any events left
  /// over from a previous session. No-op when compiled out.
  void start(std::size_t events_per_thread = 1u << 16);

  /// Disables recording. Already-captured events stay buffered until
  /// drain()/write_json().
  void stop();

  bool enabled() const { return trace_detail::g_enabled.load(std::memory_order_relaxed); }

  /// Merges every thread's buffer into one list sorted by start time
  /// (ties: longer span first, then tid) and clears the buffers.
  std::vector<TraceEvent> drain();

  /// Events overwritten because a thread ring filled up (current
  /// session, not yet drained).
  std::uint64_t dropped() const;

  /// Chrome trace_event JSON for the current buffers (drains them).
  std::string json();

  /// Writes json() to `path`. Returns false on I/O failure.
  bool write_json(const std::string& path);

  /// Names the calling thread in the exported trace ("M" metadata
  /// event). Safe to call whether or not tracing is enabled.
  static void set_thread_name(const std::string& name);

 private:
  Tracer() = default;
};

/// RAII scoped span. Construction when tracing is disabled is a single
/// relaxed atomic load; recording happens at destruction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "") {
#if LSL_TRACE_ENABLED
    if (trace_detail::g_enabled.load(std::memory_order_relaxed)) begin(name, cat);
#else
    (void)name;
    (void)cat;
#endif
  }
  ~TraceSpan() {
#if LSL_TRACE_ENABLED
    if (active_) end();
#endif
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span now instead of at scope exit (idempotent) — for the
  /// occasional phase whose lifetime is shorter than its variables'.
  void close() {
#if LSL_TRACE_ENABLED
    if (active_) {
      end();
      active_ = false;
    }
#endif
  }

  /// Attaches a numeric argument (at most two per span; extras are
  /// dropped). `key` must be a string literal. No-op when inactive.
  void arg(const char* key, double value) {
#if LSL_TRACE_ENABLED
    if (!active_) return;
    if (arg1_key_ == nullptr) {
      arg1_key_ = key;
      arg1_ = value;
    } else if (arg2_key_ == nullptr) {
      arg2_key_ = key;
      arg2_ = value;
    }
#else
    (void)key;
    (void)value;
#endif
  }

 private:
  void begin(const char* name, const char* cat);
  void end();

  bool active_ = false;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t start_ns_ = 0;
  const char* arg1_key_ = nullptr;
  double arg1_ = 0.0;
  const char* arg2_key_ = nullptr;
  double arg2_ = 0.0;
};

}  // namespace lsl::util
