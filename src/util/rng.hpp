// Deterministic pseudo-random number generation for reproducible
// simulation campaigns. PCG32 (O'Neill): small state, good statistical
// quality, and — unlike std::mt19937 — a stable stream across standard
// library implementations, so fault-campaign results are bit-identical
// everywhere.
#pragma once

#include <cstdint>

namespace lsl::util {

/// 32-bit permuted congruential generator (PCG-XSH-RR).
class Pcg32 {
 public:
  /// Seeds the generator. `seq` selects one of 2^63 independent streams.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi);

  /// Fair coin flip.
  bool next_bool();

  /// Standard-normal variate (Box–Muller, one value per call).
  double next_gaussian();

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace lsl::util
