// Work-stealing thread pool for the embarrassingly parallel layers of
// the repo: the structural-fault campaign (one task per fault), the
// Monte-Carlo mismatch sweeps (one task per trial), and the benches that
// drive them. Each worker owns a deque; submission round-robins tasks
// across the deques and an idle worker steals from the back of the
// busiest one. Tasks here are coarse (whole SPICE solves, milliseconds
// to seconds each), so the deques share one lock — contention is
// unmeasurable at that granularity and a single mutex keeps the stealing
// protocol trivially correct under TSan.
//
// Determinism contract: the pool schedules tasks in an arbitrary order
// on arbitrary workers. Callers that need deterministic results (the
// campaign's coverage reports must be byte-identical at any thread
// count) must make each task independent — per-worker scratch state,
// results written to per-task slots — and merge by task index, never by
// completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace lsl::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is the inline degenerate mode: no
  /// threads are created and every task runs on the submitting thread at
  /// submission time (useful for tests and as a guaranteed-serial path).
  explicit ThreadPool(std::size_t num_threads);

  /// Completes every queued task, then joins the workers. Queued work is
  /// drained, not dropped: a future obtained from submit() is always
  /// satisfied (with a value or an exception) by the time the destructor
  /// returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in inline mode).
  std::size_t thread_count() const { return workers_.size(); }
  /// Number of distinct worker indices tasks can observe: thread_count()
  /// or 1 in inline mode. Size per-worker scratch arrays with this.
  std::size_t worker_slots() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Maps the user-facing thread-count knob to a concrete count:
  /// 0 -> hardware_concurrency (at least 1), anything else unchanged.
  static std::size_t resolve_threads(std::size_t requested);

  /// Tasks each worker ran that were submitted to a DIFFERENT worker's
  /// deque — the work-stealing traffic. Indexed like worker_slots();
  /// all zeros in inline mode. Monotone over the pool's lifetime.
  std::vector<std::size_t> steal_counts() const;
  /// Sum of steal_counts().
  std::size_t total_steals() const;

  /// Enqueues a task. The future carries any exception the task throws.
  /// In inline mode the task has already run when submit returns.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(index, worker) for every index in [0, count), distributed
  /// dynamically across the workers (an idle worker steals, so one slow
  /// index never serializes the rest). `worker` is in [0, worker_slots())
  /// and is stable for the duration of one call, so fn may use it to
  /// index per-worker scratch state without locking. Blocks until every
  /// index has run; if any invocation threw, rethrows the exception of
  /// the lowest-indexed failing task (deterministic regardless of
  /// scheduling).
  void for_each(std::size_t count,
                const std::function<void(std::size_t index, std::size_t worker)>& fn);

 private:
  /// One task: runs with the executing worker's index (0 inline).
  using Task = std::packaged_task<void(std::size_t)>;

  void worker_main(std::size_t self);
  /// Pops own front, else steals the back of another deque. Caller holds mu_.
  bool pop_locked(std::size_t self, Task& out);

  std::vector<std::deque<Task>> queues_;  // one per worker
  std::vector<std::size_t> steals_;       // per-worker steal counters (guarded by mu_)
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t next_queue_ = 0;  // round-robin submission cursor
  std::size_t queued_ = 0;      // tasks sitting in deques
  bool stopping_ = false;
};

}  // namespace lsl::util
