// Minimal leveled logger. Campaign runs simulate thousands of faulted
// circuits; the default level keeps them quiet while still surfacing
// convergence failures.
#pragma once

#include <string>

namespace lsl::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& msg);

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace lsl::util
