#include "util/jsonl.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace lsl::util {

namespace {

/// Formats a double the way checkpoints want it: integers without a
/// fractional part (fault indices, counts), everything else round-trip.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct Parser {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i >= s.size()) return false;
        const char esc = s[i++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // Checkpoint strings are ASCII device names; decode only the
            // Latin-1 subset and reject anything wider.
            if (i + 4 > s.size()) return false;
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code > 0xff) return false;
            out.push_back(static_cast<char>(code));
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonObject::Value& out) {
    skip_ws();
    if (i >= s.size()) return false;
    if (s[i] == '"') {
      std::string str;
      if (!parse_string(str)) return false;
      out = std::move(str);
      return true;
    }
    if (s.compare(i, 4, "true") == 0) {
      i += 4;
      out = true;
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      i += 5;
      out = false;
      return true;
    }
    if (s.compare(i, 4, "null") == 0) {
      i += 4;
      out = std::string();  // null reads back as the empty string
      return true;
    }
    // Number.
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return false;
    i += static_cast<std::size_t>(end - begin);
    out = v;
    return true;
  }
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const JsonObject::Value* JsonObject::find(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonObject::has(const std::string& key) const { return find(key) != nullptr; }

bool JsonObject::get_string(const std::string& key, std::string& out) const {
  const Value* v = find(key);
  if (v == nullptr || !std::holds_alternative<std::string>(*v)) return false;
  out = std::get<std::string>(*v);
  return true;
}

bool JsonObject::get_number(const std::string& key, double& out) const {
  const Value* v = find(key);
  if (v == nullptr || !std::holds_alternative<double>(*v)) return false;
  out = std::get<double>(*v);
  return true;
}

bool JsonObject::get_uint(const std::string& key, std::size_t& out) const {
  double d = 0.0;
  if (!get_number(key, d) || d < 0.0 || d != std::floor(d)) return false;
  out = static_cast<std::size_t>(d);
  return true;
}

bool JsonObject::get_bool(const std::string& key, bool& out) const {
  const Value* v = find(key);
  if (v == nullptr || !std::holds_alternative<bool>(*v)) return false;
  out = std::get<bool>(*v);
  return true;
}

std::string JsonObject::str() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += json_escape(k);
    out += "\":";
    if (std::holds_alternative<std::string>(v)) {
      out.push_back('"');
      out += json_escape(std::get<std::string>(v));
      out.push_back('"');
    } else if (std::holds_alternative<bool>(v)) {
      out += std::get<bool>(v) ? "true" : "false";
    } else {
      out += format_number(std::get<double>(v));
    }
  }
  out.push_back('}');
  return out;
}

bool JsonObject::parse(const std::string& line, JsonObject& out) {
  out.fields_.clear();
  Parser p{line};
  if (!p.eat('{')) return false;
  if (p.eat('}')) {
    p.skip_ws();
    return p.i >= line.size();
  }
  while (true) {
    std::string key;
    p.skip_ws();
    if (!p.parse_string(key)) return false;
    if (!p.eat(':')) return false;
    p.skip_ws();
    if (p.peek('{') || p.peek('[')) return false;  // nesting unsupported
    Value v;
    if (!p.parse_value(v)) return false;
    out.fields_.emplace_back(std::move(key), std::move(v));
    if (p.eat(',')) continue;
    if (p.eat('}')) break;
    return false;
  }
  p.skip_ws();
  return p.i >= line.size();
}

bool append_line(const std::string& path, const std::string& line) {
  std::ofstream f(path, std::ios::app | std::ios::binary);
  if (!f.is_open()) return false;
  f << line << '\n';
  f.flush();
  return f.good();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return out;
  std::string line;
  while (std::getline(f, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

}  // namespace lsl::util
