// Streaming statistics and histograms used by the benchmark harnesses
// (eye opening, lock time distributions, coverage accounting).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace lsl::util {

/// Welford-style running statistics: numerically stable mean/variance
/// plus min/max, O(1) per sample.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Value below which `q` (0..1) of the mass lies (bin-midpoint estimate).
  double quantile(double q) const;
  /// Compact ASCII rendering for bench output.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Ratio accumulator for coverage figures: detected / total, printed as %.
struct Coverage {
  std::size_t detected = 0;
  std::size_t total = 0;
  void add(bool was_detected) {
    ++total;
    if (was_detected) ++detected;
  }
  void merge(const Coverage& o) {
    detected += o.detected;
    total += o.total;
  }
  double percent() const { return total == 0 ? 0.0 : 100.0 * static_cast<double>(detected) / static_cast<double>(total); }
};

}  // namespace lsl::util
