#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lsl::util {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(std::floor(frac * static_cast<double>(counts_.size())));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return 0.5 * (bin_low(i) + bin_high(i));
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = peak == 0 ? 0 : counts_[i] * width / peak;
    os << "[" << bin_low(i) << ", " << bin_high(i) << ") " << std::string(bar, '#') << " "
       << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace lsl::util
