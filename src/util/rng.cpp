#include "util/rng.hpp"

#include <cmath>

namespace lsl::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t seq) : state_(0), inc_((seq << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  // Lemire-style rejection keeps the distribution exactly uniform.
  const std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::next_double() {
  return next_u32() * (1.0 / 4294967296.0);
}

double Pcg32::next_range(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Pcg32::next_bool() {
  return (next_u32() & 1u) != 0;
}

double Pcg32::next_gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = next_range(-1.0, 1.0);
    v = next_range(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

}  // namespace lsl::util
