// Behavioral charge pumps and loop filter.
//
// The weak pump integrates bang-bang phase-detector decisions onto the
// loop capacitor; the strong pump slews Vc back inside the window after
// a coarse correction. The charge-balancing node Vp nominally tracks Vc;
// balance-path faults appear as a Vp offset or drift, which is exactly
// what the CP-BIST window comparator (Fig 9) watches.
//
// Every parameter is a fault hook: the analog fault characterization
// maps a structurally faulted SPICE-level pump onto scaled currents,
// leakage, or a Vp offset.
#pragma once

namespace lsl::behav {

struct PumpParams {
  double c_loop = 1.0e-12;     // loop filter capacitance (F)
  double i_up = 8e-6;          // weak pump source current (A)
  double i_dn = 8e-6;          // weak pump sink current (A)
  double strong_ratio = 4.0;   // strong pump current multiplier
  double pulse_width = 200e-12;  // pump-on time per PD decision (s)
  double v_rail = 1.2;
  double leak = 0.0;           // parasitic leakage current on Vc (A, +up)
  // Balance path: vp = vc + vp_offset, drifting at vp_drift when the
  // balancing amplifier or steering branch is broken.
  double vp_offset = 0.0;
  double vp_drift = 0.0;       // V/s
  bool balance_broken = false;
  /// Charge-sharing parasitic at the steering nodes. When the balance
  /// node departs from Vc, every pump pulse must slew the parked source
  /// node across |Vp - Vc|, injecting a glitch charge of roughly
  /// glitch_cap * (Vp - Vc) with data-dependent sign — the paper's
  /// "increased jitter in the recovered clock" from a failing balance
  /// path. With Vp tracking Vc (healthy), the glitch vanishes.
  double glitch_cap = 25e-15;
};

/// Integrating pump + loop filter state.
class ChargePump {
 public:
  explicit ChargePump(const PumpParams& p = {}, double vc0 = 0.6);

  double vc() const { return vc_; }
  double vp() const { return vp_; }
  void set_vc(double v);

  /// One PD decision interval: applies up/dn for pulse_width, leakage for
  /// the whole dt, then updates the balance node. `noise` is a
  /// unit-variance sample modulating the delivered charge in proportion
  /// to the balance-node imbalance (see imbalance_noise_gain).
  void pump(bool up, bool dn, double dt, double noise = 0.0);

  /// Strong pump slew for dt (up = charge, dn = discharge).
  void strong(bool up, bool dn, double dt);

  const PumpParams& params() const { return p_; }

 private:
  void clamp();
  void update_vp(double dt);

  PumpParams p_;
  double vc_;
  double vp_;
};

}  // namespace lsl::behav
