#include "behav/pump.hpp"

#include <algorithm>
#include <cmath>

namespace lsl::behav {

ChargePump::ChargePump(const PumpParams& p, double vc0) : p_(p), vc_(vc0), vp_(vc0 + p.vp_offset) {}

void ChargePump::set_vc(double v) {
  vc_ = v;
  clamp();
  vp_ = vc_ + p_.vp_offset;
}

void ChargePump::clamp() { vc_ = std::clamp(vc_, 0.0, p_.v_rail); }

void ChargePump::update_vp(double dt) {
  if (p_.balance_broken) {
    vp_ += p_.vp_drift * dt;
    vp_ = std::clamp(vp_, 0.0, p_.v_rail);
  } else {
    vp_ = std::clamp(vc_ + p_.vp_offset, 0.0, p_.v_rail);
  }
}

void ChargePump::pump(bool up, bool dn, double dt, double noise) {
  const double t_on = std::min(p_.pulse_width, dt);
  double dq = 0.0;
  if (up) dq += p_.i_up * t_on;
  if (dn) dq -= p_.i_dn * t_on;
  // Charge sharing: steering a pulse slews the parked source node across
  // the balance imbalance, injecting a data-dependent glitch charge.
  if (up || dn) dq += p_.glitch_cap * (vp_ - vc_) * noise;
  dq += p_.leak * dt;
  vc_ += dq / p_.c_loop;
  clamp();
  update_vp(dt);
}

void ChargePump::strong(bool up, bool dn, double dt) {
  double dq = 0.0;
  if (up) dq += p_.i_up * p_.strong_ratio * dt;
  if (dn) dq -= p_.i_dn * p_.strong_ratio * dt;
  vc_ += dq / p_.c_loop;
  clamp();
  update_vp(dt);
}

}  // namespace lsl::behav
