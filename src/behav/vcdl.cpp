#include "behav/vcdl.hpp"

#include <algorithm>
#include <stdexcept>

namespace lsl::behav {

double Vcdl::delay(double vc) const {
  const double v = std::max(vc, 0.0);
  return p_.delay_min + p_.extra_delay + p_.gain * p_.gain_scale * v;
}

double Vcdl::range(double v_lo, double v_hi) const {
  return delay(v_hi) - delay(v_lo);
}

double Dll::phase_offset(std::size_t k) const {
  if (k >= p_.n_phases) throw std::out_of_range("DLL phase index");
  return static_cast<double>(k) * phase_step();
}

}  // namespace lsl::behav
