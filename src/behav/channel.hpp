// Behavioral differential channel: dominant-pole RC interconnect with
// capacitive feed-forward equalization.
//
// The line is RC-dominated (tau of several UI at 2.5 Gb/s), which is the
// regime that motivates equalization in the paper: without the FFE the
// eye collapses from inter-symbol interference; the series caps inject a
// transition kick that restores the high-frequency content. The model is
// a single-pole response toward the weak-driver DC target plus an
// instantaneous capacitive kick per transition — the same first-order
// behaviour the SPICE-level frontend exhibits, with parameters that the
// fault layer can re-characterize from a faulted netlist.
#pragma once

#include <cstdint>
#include <vector>

#include "util/prbs.hpp"
#include "util/rng.hpp"

namespace lsl::behav {

struct ChannelParams {
  double ui = 400e-12;         // unit interval (2.5 Gb/s)
  double tau = 1.5e-9;         // dominant RC time constant
  double swing = 0.078;        // differential DC swing (weak driver target +-swing/2)
  /// Transition kick as a fraction of the swing. The physical value is
  /// the series-cap divider Cs/(Cs+Cline) * Vdd referred to the swing
  /// (~1.7 for the default geometry); 1.2 gives a well-centred eye.
  double ffe_kick = 1.2;
  int oversample = 16;         // waveform samples per UI
  /// Additive Gaussian noise per recorded sample (V): thermal +
  /// supply-coupled noise at the slicer input. ~2 mV rms against the
  /// ~60 mV-class eye.
  double noise_rms = 2e-3;
  /// Fault hooks: per-arm weak-driver scaling unbalances the swing.
  double drive_scale_p = 1.0;
  double drive_scale_n = 1.0;
  double kick_scale = 1.0;     // FFE cap degradation
};

/// Streaming waveform simulation of the differential line.
class Channel {
 public:
  explicit Channel(const ChannelParams& p = {}, std::uint64_t noise_seed = 1);

  /// Feeds one bit; advances one UI of waveform.
  void push_bit(bool b);

  /// Differential line voltage now (end of the last pushed UI).
  double value() const { return v_; }

  /// The oversampled waveform of the last UI (index 0 = just after the
  /// bit boundary).
  const std::vector<double>& last_ui_waveform() const { return last_ui_; }

  const ChannelParams& params() const { return p_; }

 private:
  double target_for(bool b) const;

  ChannelParams p_;
  util::Pcg32 rng_;
  double v_ = 0.0;
  bool prev_bit_ = false;
  bool has_prev_ = false;
  std::vector<double> last_ui_;
};

/// Eye-diagram analysis result for one sampling phase.
struct EyeAtPhase {
  double phase_frac = 0.0;  // sampling phase within the UI, 0..1
  double height = 0.0;      // min(ones) - max(zeros); negative = closed
  double level_one = 0.0;   // worst-case one level
  double level_zero = 0.0;  // worst-case zero level
};

struct EyeResult {
  std::vector<EyeAtPhase> phases;       // one entry per oversample step
  double best_height = 0.0;
  double best_phase_frac = 0.0;         // the eye center
  double width_frac = 0.0;              // fraction of UI with open eye
};

/// Runs `n_bits` of PRBS through a channel and measures the eye.
EyeResult analyze_eye(const ChannelParams& params, std::size_t n_bits,
                      util::PrbsOrder order = util::PrbsOrder::kPrbs7,
                      std::uint32_t seed = 1);

}  // namespace lsl::behav
