#include "behav/channel.hpp"

#include <algorithm>
#include <cmath>

namespace lsl::behav {

Channel::Channel(const ChannelParams& p, std::uint64_t noise_seed)
    : p_(p), rng_(noise_seed), last_ui_(static_cast<std::size_t>(p.oversample), 0.0) {}

double Channel::target_for(bool b) const {
  // Each arm contributes half the differential swing; scaling one arm
  // (weak-driver fault) shrinks the total target symmetrically in this
  // differential view.
  const double amplitude = p_.swing * 0.5 * (p_.drive_scale_p + p_.drive_scale_n);
  return b ? amplitude : -amplitude;
}

void Channel::push_bit(bool b) {
  const double h = p_.ui / p_.oversample;
  // Capacitive FFE: instantaneous kick on a transition.
  if (has_prev_ && b != prev_bit_) {
    const double dir = b ? 1.0 : -1.0;
    v_ += dir * p_.ffe_kick * p_.kick_scale * p_.swing;
  }
  const double target = target_for(b);
  const double alpha = 1.0 - std::exp(-h / p_.tau);
  for (int k = 0; k < p_.oversample; ++k) {
    v_ += (target - v_) * alpha;
    double sample = v_;
    if (p_.noise_rms > 0.0) sample += p_.noise_rms * rng_.next_gaussian();
    last_ui_[static_cast<std::size_t>(k)] = sample;
  }
  prev_bit_ = b;
  has_prev_ = true;
}

EyeResult analyze_eye(const ChannelParams& params, std::size_t n_bits, util::PrbsOrder order,
                      std::uint32_t seed) {
  Channel ch(params, seed);
  util::PrbsGenerator prbs(order, seed);

  const auto os = static_cast<std::size_t>(params.oversample);
  std::vector<double> min_one(os, 1e9);
  std::vector<double> max_zero(os, -1e9);

  const std::size_t warmup = std::min<std::size_t>(32, n_bits / 4);
  for (std::size_t i = 0; i < n_bits; ++i) {
    const bool b = prbs.next_bit();
    ch.push_bit(b);
    if (i < warmup) continue;
    const auto& wave = ch.last_ui_waveform();
    for (std::size_t k = 0; k < os; ++k) {
      if (b) {
        min_one[k] = std::min(min_one[k], wave[k]);
      } else {
        max_zero[k] = std::max(max_zero[k], wave[k]);
      }
    }
  }

  EyeResult r;
  r.phases.resize(os);
  std::size_t open_count = 0;
  for (std::size_t k = 0; k < os; ++k) {
    EyeAtPhase& e = r.phases[k];
    e.phase_frac = static_cast<double>(k) / static_cast<double>(os);
    e.level_one = min_one[k];
    e.level_zero = max_zero[k];
    e.height = min_one[k] - max_zero[k];
    if (e.height > 0.0) ++open_count;
    if (e.height > r.best_height) {
      r.best_height = e.height;
      r.best_phase_frac = e.phase_frac;
    }
  }
  r.width_frac = static_cast<double>(open_count) / static_cast<double>(os);
  return r;
}

}  // namespace lsl::behav
