#include "behav/synchronizer.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace lsl::behav {

Synchronizer::Synchronizer(const SyncParams& p, double eye_center, double vc0, std::size_t phase0)
    : p_(p), dll_(p.dll), vcdl_(p.vcdl), eye_center_(eye_center), vc0_(vc0), phase0_(phase0) {}

double Synchronizer::sampling_offset(std::size_t k, double vc) const {
  const double t = dll_.phase_offset(k) + vcdl_.delay(vc);
  return std::fmod(t, dll_.clock_period());
}

double Synchronizer::wrap_err(double err) const {
  const double period = dll_.clock_period();
  err = std::fmod(err, period);
  if (err > period / 2.0) err -= period;
  if (err < -period / 2.0) err += period;
  return err;
}

SyncResult Synchronizer::run(std::size_t max_ui, util::Pcg32& rng, bool record_trace) {
  SyncResult res;
  const double ui = dll_.clock_period();

  ChargePump pump(p_.pump, vc0_);
  std::size_t k = phase0_;
  const int lock_counter_max = (1 << p_.lock_counter_bits) - 1;

  // FSM hysteresis: a coarse step is issued on the first divided-clock
  // tick with Vc outside the window; the strong pump then owns Vc until
  // it reaches the reset target, and only afterwards can a new coarse
  // step be issued. The FSM commits to at least one divided cycle of
  // strong pumping (it cannot react faster) — a grossly over-strong pump
  // (e.g. a shorted current source) therefore overshoots the window and
  // ping-pongs, saturating the lock detector.
  bool resetting = false;
  bool reset_upward = false;  // strong pump direction during reset
  double reset_target = 0.0;
  std::size_t reset_ui = 0;   // UIs spent in the current reset

  std::size_t in_lock_run = 0;

  if (p_.faults.switch_matrix_dead) {
    // No sampling clock at all: the loop state freezes where it started.
    res.final_phase = k;
    res.final_vc = pump.vc();
    res.final_phase_error = wrap_err(eye_center_ - sampling_offset(k, pump.vc()));
    res.cp_bist_flag = std::fabs(pump.vp() - pump.vc()) > p_.cp_bist_window;
    if (record_trace) res.trace.push_back({0.0, pump.vc(), k, false});
    return res;
  }

  bool ever_locked = false;
  util::RunningStats jitter_stats;

  for (std::size_t n = 0; n < max_ui; ++n) {
    const double t = static_cast<double>(n) * ui;
    // Environmental drift moves the eye during operation.
    const double eye_now = eye_center_ + p_.eye_drift_rate * t;
    const bool frozen = p_.freeze_after_lock && ever_locked;

    // ---- fine loop: Alexander PD on a data transition ----------------
    bool up = false;
    bool dn = false;
    const bool transition = rng.next_double() < p_.activity;
    if (!p_.faults.pd_dead && transition && !frozen) {
      const double err = wrap_err(eye_now - sampling_offset(k, pump.vc())) +
                         p_.jitter_rms * rng.next_gaussian();
      up = err > 0.0;  // sampling early: add delay
      dn = !up;
    }
    if (p_.faults.pd_up_stuck) {
      up = true;
      dn = false;
    } else if (p_.faults.pd_dn_stuck) {
      up = false;
      dn = true;
    }

    if (resetting) {
      pump.strong(reset_upward, !reset_upward, ui);
      ++reset_ui;
      if (reset_ui >= p_.divider && ((reset_upward && pump.vc() >= reset_target) ||
                                     (!reset_upward && pump.vc() <= reset_target))) {
        resetting = false;
      }
    } else {
      pump.pump(up, dn, ui, rng.next_gaussian());
    }

    // ---- coarse loop on the divided clock -----------------------------
    bool coarse_event = false;
    if (n % p_.divider == 0 && !resetting && !frozen) {
      bool above = pump.vc() > p_.vh;
      bool below = pump.vc() < p_.vl;
      if (p_.faults.window_dead) {
        above = false;
        below = false;
      }
      if (p_.faults.window_hi_stuck) above = true;
      if (p_.faults.window_lo_stuck) below = true;

      if (above || below) {
        coarse_event = true;
        ++res.coarse_corrections;
        if (res.lock_counter < lock_counter_max) {
          ++res.lock_counter;
        } else {
          res.lock_counter_saturated = true;
        }
        if (!p_.faults.counter_stuck) {
          const std::size_t np = dll_.n_phases();
          k = above ? (k + 1) % np : (k + np - 1) % np;
        }
        // Strong pump resets Vc across the window toward the opposite
        // threshold (the Fig-2 sawtooth).
        resetting = true;
        reset_ui = 0;
        reset_upward = below;
        const double span = p_.vh - p_.vl;
        reset_target = below ? p_.vh - p_.reset_depth * span : p_.vl + p_.reset_depth * span;
      }
    }

    // ---- lock bookkeeping ---------------------------------------------
    const double err_now = wrap_err(eye_now - sampling_offset(k, pump.vc()));
    const bool in_window = pump.vc() > p_.vl && pump.vc() < p_.vh;
    const double err_limit = p_.lock_err_frac * dll_.phase_step();
    if (!resetting && in_window && std::fabs(err_now) < err_limit) {
      ++in_lock_run;
    } else {
      in_lock_run = 0;
    }
    // Lock reflects the *surviving* run: leaving the locked condition
    // (e.g. a stuck-UP pump dragging Vc onward) clears it again. A
    // frozen (foreground-calibrated) receiver keeps its one-shot lock
    // status by definition — the drift damage shows up in the eye
    // bookkeeping instead.
    if (in_lock_run >= p_.lock_run_ui) {
      if (!res.locked) res.lock_time = t;
      res.locked = true;
      ever_locked = true;
    } else if (!frozen) {
      res.locked = false;
    }

    if (ever_locked) {
      res.max_err_after_lock = std::max(res.max_err_after_lock, std::fabs(err_now));
      if (std::fabs(err_now) > p_.eye_half_width) ++res.ui_outside_eye_after_lock;
      jitter_stats.add(err_now);
    }

    if (record_trace && (coarse_event || n % 8 == 0)) {
      res.trace.push_back({t, pump.vc(), k, coarse_event});
    }
  }

  if (jitter_stats.count() > 1) {
    res.jitter_rms = jitter_stats.stddev();
    res.jitter_pp = jitter_stats.max() - jitter_stats.min();
  }
  res.final_phase = k;
  res.final_vc = pump.vc();
  const double eye_end = eye_center_ + p_.eye_drift_rate * static_cast<double>(max_ui) * ui;
  res.final_phase_error = wrap_err(eye_end - sampling_offset(k, pump.vc()));
  res.cp_bist_flag = std::fabs(pump.vp() - pump.vc()) > p_.cp_bist_window;
  return res;
}

}  // namespace lsl::behav
