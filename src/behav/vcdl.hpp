// Behavioral voltage-controlled delay line and DLL phase generator.
//
// The receiver of the paper generates ten DLL phases of the receiver
// clock; the switch matrix picks one and the VCDL adds a fine,
// continuous delay controlled by Vc. The VCDL tuning range exceeds one
// DLL phase step over the window-comparator span [VL, VH], so the fine
// loop can always bridge between adjacent coarse phases.
#pragma once

#include <cstddef>

namespace lsl::behav {

struct VcdlParams {
  double delay_min = 20e-12;   // delay at vc = 0 (s)
  double gain = 150e-12;       // delay slope (s/V)
  /// Fault hooks: a faulted VCDL shows up as gain loss or a stuck delay.
  double gain_scale = 1.0;
  double extra_delay = 0.0;
};

/// Maps the control voltage to delay. Clamps below vc = 0.
class Vcdl {
 public:
  explicit Vcdl(const VcdlParams& p = {}) : p_(p) {}
  double delay(double vc) const;
  const VcdlParams& params() const { return p_; }
  /// Tuning range over a control span (for the range > phase-step check).
  double range(double v_lo, double v_hi) const;

 private:
  VcdlParams p_;
};

struct DllParams {
  std::size_t n_phases = 10;
  double clock_period = 400e-12;  // 2.5 Gb/s receiver clock
};

/// Evenly spaced DLL phases of the receiver clock.
class Dll {
 public:
  explicit Dll(const DllParams& p = {}) : p_(p) {}
  std::size_t n_phases() const { return p_.n_phases; }
  double phase_step() const { return p_.clock_period / static_cast<double>(p_.n_phases); }
  /// Offset of phase k from the receiver clock edge.
  double phase_offset(std::size_t k) const;
  double clock_period() const { return p_.clock_period; }

 private:
  DllParams p_;
};

}  // namespace lsl::behav
