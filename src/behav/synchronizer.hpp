// Behavioral model of the clock-synchronizing receiver (Fig 1):
//
//   coarse loop:  window comparator on Vc -> control FSM -> one-hot ring
//                 counter -> switch matrix picks one of the DLL phases;
//                 the strong charge pump resets Vc across the window on
//                 every coarse step.
//   fine loop:    Alexander PD on data transitions -> weak charge pump
//                 -> Vc -> VCDL delay of the sampling clock.
//
// The simulation runs at UI granularity in the timing domain: the state
// is (Vc, coarse phase index), the sampling instant is
// phase_offset(k) + vcdl(Vc), and the loop converges when the sampling
// instant lands on the data-eye center. The recorded trace is exactly
// the paper's Fig 2 (Vc and chosen DLL phase vs time).
//
// Fault hooks live in the component parameter structs (PumpParams,
// VcdlParams) plus SyncFaults below; the analog characterization maps
// structural faults onto them.
#pragma once

#include <cstddef>
#include <vector>

#include "behav/pump.hpp"
#include "behav/vcdl.hpp"
#include "util/rng.hpp"

namespace lsl::behav {

/// Fault hooks that do not belong to a single component model.
struct SyncFaults {
  bool pd_up_stuck = false;        // PD asserts UP regardless of timing
  bool pd_dn_stuck = false;
  bool pd_dead = false;            // PD never fires
  bool window_hi_stuck = false;    // window comparator outputs stuck
  bool window_lo_stuck = false;
  bool window_dead = false;        // never requests coarse correction
  bool counter_stuck = false;      // ring counter never advances
  bool switch_matrix_dead = false; // no phase selected: no sampling clock
};

struct SyncParams {
  DllParams dll;
  VcdlParams vcdl;
  PumpParams pump;
  double vh = 0.8;              // window comparator thresholds
  double vl = 0.4;
  double activity = 0.5;        // data transition density (PRBS ~ 0.5)
  double jitter_rms = 4e-12;    // PD timing noise (s)
  std::size_t divider = 8;      // coarse loop clock divide ratio
  /// Strong-pump reset depth: after a coarse step the strong pump drives
  /// Vc this far into the window (fraction from the opposite threshold).
  double reset_depth = 0.15;
  /// Lock declaration: |phase error| below this fraction of a DLL phase
  /// step for `lock_run_ui` consecutive UIs with Vc inside the window.
  double lock_err_frac = 0.6;
  std::size_t lock_run_ui = 200;
  std::size_t lock_counter_bits = 3;  // BIST lock-detector width
  double cp_bist_window = 0.15;       // |Vp - Vc| limit (Fig 9)
  /// Environmental drift of the data-eye position (s of delay per s of
  /// time): temperature/voltage ramps move the link latency. The
  /// background loop must track this during normal operation — the
  /// paper's argument against foreground calibration.
  double eye_drift_rate = 0.0;
  /// Foreground-calibration model: once lock is first achieved, freeze
  /// both loops (one-shot calibration). With drift, the frozen receiver
  /// walks out of the eye.
  bool freeze_after_lock = false;
  /// Half-width of the open data eye in time (s): sampling farther than
  /// this from the eye center risks bit errors (drift bookkeeping).
  double eye_half_width = 100e-12;
  SyncFaults faults;
};

struct SyncTracePoint {
  double t = 0.0;
  double vc = 0.0;
  std::size_t phase = 0;
  bool coarse_event = false;
};

struct SyncResult {
  bool locked = false;
  double lock_time = 0.0;            // s from start
  std::size_t final_phase = 0;
  double final_vc = 0.0;
  double final_phase_error = 0.0;    // s, sampling instant vs eye center
  int coarse_corrections = 0;
  int lock_counter = 0;              // saturating BIST counter value
  bool lock_counter_saturated = false;
  bool cp_bist_flag = false;         // CP-BIST comparator tripped at end
  /// Largest |phase error| observed after the first lock (tracking
  /// quality under drift; 0 if lock never happened).
  double max_err_after_lock = 0.0;
  /// UIs spent with |phase error| beyond half the (healthy) eye width
  /// after first lock — each is a potential bit error under drift.
  std::size_t ui_outside_eye_after_lock = 0;
  /// Recovered sampling-clock jitter after lock: rms and peak-to-peak of
  /// the sampling instant about its post-lock mean (s).
  double jitter_rms = 0.0;
  double jitter_pp = 0.0;
  std::vector<SyncTracePoint> trace;
};

class Synchronizer {
 public:
  /// `eye_center` is the absolute offset of the data-eye center within
  /// the receiver clock period (the unknown link latency modulo T).
  Synchronizer(const SyncParams& p, double eye_center, double vc0, std::size_t phase0 = 0);

  /// Runs up to `max_ui` unit intervals. Stops early only on the
  /// switch-matrix-dead fault (no clock, nothing can change).
  SyncResult run(std::size_t max_ui, util::Pcg32& rng, bool record_trace = false);

  /// Current sampling offset within the clock period for state (k, vc).
  double sampling_offset(std::size_t k, double vc) const;

 private:
  double wrap_err(double err) const;

  SyncParams p_;
  Dll dll_;
  Vcdl vcdl_;
  double eye_center_;
  double vc0_;
  std::size_t phase0_;
};

}  // namespace lsl::behav
