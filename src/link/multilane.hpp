// Multi-lane link: a wide on-chip bus of repeaterless lanes, each with
// its own synchronizing receiver, sharing one clock divider as the paper
// notes ("the divider ... can be shared across multiple such receivers
// in the chip and tested separately").
//
// Each lane sees its own latency (routing skew), so each locks to its
// own coarse phase — the whole point of per-lane mesochronous
// synchronization. The test scheduler models production test time:
// scan procedures serialize on the shared scan infrastructure, while
// the at-speed BIST can run on all lanes concurrently.
#pragma once

#include <cstddef>
#include <vector>

#include "link/link.hpp"

namespace lsl::link {

struct MultiLaneParams {
  std::size_t lanes = 8;
  LinkParams base;
  /// Per-lane routing skew added to the base latency (s per lane index).
  double skew_per_lane = 55e-12;
  /// Scan test cost per lane (s): patterns x chain shifts at 100 MHz.
  double scan_time_per_lane = 10 * 26 * 10e-9;
  /// BIST run length per lane (s): the paper's 2 us budget plus readout.
  double bist_time_per_lane = 2.5e-6;
};

struct LaneResult {
  std::size_t lane = 0;
  BistVerdict bist;
  TrafficResult traffic;
  std::size_t locked_phase = 0;
};

struct MultiLaneReport {
  std::vector<LaneResult> lanes;
  bool all_pass = false;
  /// Distinct coarse phases chosen across lanes (skew really absorbed).
  std::size_t distinct_phases = 0;
  /// Production test time under the two schedules.
  double test_time_sequential = 0.0;  // scan then BIST, lane by lane
  double test_time_scheduled = 0.0;   // scan serialized, BIST concurrent
};

class MultiLaneLink {
 public:
  explicit MultiLaneLink(const MultiLaneParams& p = {});

  /// Per-lane parameters (base + this lane's skew).
  LinkParams lane_params(std::size_t lane) const;

  /// Runs BIST and a traffic burst on every lane; fills the scheduling
  /// figures.
  MultiLaneReport test_all(std::size_t traffic_bits = 2000, std::uint64_t seed = 1) const;

  const MultiLaneParams& params() const { return params_; }

 private:
  MultiLaneParams params_;
};

}  // namespace lsl::link
