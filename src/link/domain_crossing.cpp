#include "link/domain_crossing.hpp"

#include <cmath>

namespace lsl::link {

CrossingDecision decide_crossing(double sampling_offset, double period) {
  CrossingDecision d;
  const double s = std::fmod(std::fmod(sampling_offset, period) + period, period);

  // Distance from the sample to the next rising phi_rx edge (at period).
  const double to_full_edge = period - s;
  // Distance to the next falling edge (at period/2, or 3*period/2).
  const double to_half_edge = s < period / 2.0 ? period / 2.0 - s : 3.0 * period / 2.0 - s;

  // The paper's rule: if the sampling clock is less than half a cycle
  // from the receiver clock, retime on the inverted clock first.
  if (to_full_edge < period / 2.0) {
    d.mode = RetimeMode::kHalfCycle;
    d.slack = to_half_edge;
    d.latency_cycles = 0.5;
  } else {
    d.mode = RetimeMode::kFullCycle;
    d.slack = to_full_edge;
    d.latency_cycles = 1.0;
  }
  return d;
}

bool crossing_is_safe(const CrossingDecision& d, double min_slack) {
  return d.slack >= min_slack;
}

}  // namespace lsl::link
