// The assembled repeaterless low-swing link (Fig 1, behavioural level):
// PRBS/user data -> capacitive-FFE transmitter + RC channel (Channel) ->
// slicer sampled by the synchronized clock -> retiming into the receiver
// clock domain. This is the engine behind the BIST (at-speed random data,
// lock detector) and the BER/eye benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "behav/channel.hpp"
#include "behav/synchronizer.hpp"
#include "link/domain_crossing.hpp"
#include "util/prbs.hpp"
#include "util/rng.hpp"

namespace lsl::link {

struct LinkParams {
  behav::ChannelParams channel;
  behav::SyncParams sync;
  /// Extra fixed link latency (wire flight time), folded into the eye
  /// center the synchronizer must find.
  double latency = 130e-12;
  /// Receiver slicer decision offset (V); a faulted comparator shows up
  /// here.
  double slicer_offset = 0.0;
  /// Optional TX half-cycle delay latch (the paper's PD test hook).
  bool tx_half_cycle_delay = false;
  /// Initial conditions for acquisition.
  double vc0 = 0.6;
  std::size_t phase0 = 0;
  std::size_t acquisition_ui = 5000;  // the paper's 2 us lock budget
};

struct TrafficResult {
  behav::SyncResult sync;
  CrossingDecision crossing;
  std::size_t bits = 0;
  std::size_t errors = 0;
  double ber() const {
    return bits == 0 ? 0.0 : static_cast<double>(errors) / static_cast<double>(bits);
  }
};

/// BIST verdict per the paper's Section III: the receiver must lock
/// within the budget, the lock-detector counter must not saturate, and
/// the CP-BIST comparator must stay quiet after lock.
struct BistVerdict {
  bool locked_in_budget = false;
  bool lock_counter_ok = false;
  bool cp_bist_ok = false;
  bool data_ok = false;  // random traffic after lock is error-free
  bool pass() const { return locked_in_budget && lock_counter_ok && cp_bist_ok && data_ok; }
};

class Link {
 public:
  explicit Link(const LinkParams& p = {});

  /// Where the data-eye center sits within the receiver clock period,
  /// combining channel group delay, fixed latency and the optional TX
  /// half-cycle latch.
  double eye_center() const;

  /// Acquires lock, then runs `n_bits` of PRBS traffic and counts errors
  /// against the transmitted sequence.
  TrafficResult run_traffic(std::size_t n_bits, util::PrbsOrder order, std::uint64_t seed);

  /// At-speed BIST: random data, lock budget, lock detector, CP-BIST
  /// comparator, then a short error-checked burst.
  BistVerdict run_bist(std::uint64_t seed);

  const LinkParams& params() const { return params_; }

 private:
  LinkParams params_;
};

}  // namespace lsl::link
