// Mesochronous domain crossing at the receiver.
//
// Once the synchronizer locks, the coarse control word tells (to within
// the VCDL range) where the sampling clock sits relative to the receiver
// clock. Data sampled close to the receiver clock edge would violate
// setup/hold when retimed directly, so the paper inserts a half-cycle
// delay (clocking the final flop on the inverted receiver clock) when
// the sampling instant is within half a cycle of the receiver edge.
#pragma once

#include <cstddef>

namespace lsl::link {

/// Decision for the final retiming flop.
enum class RetimeMode {
  kFullCycle,  // final flop on phi_rx
  kHalfCycle,  // final flop on the inverted phi_rx (adds half a cycle)
};

struct CrossingDecision {
  RetimeMode mode = RetimeMode::kFullCycle;
  /// Timing slack from the sampling instant to the chosen capture edge.
  double slack = 0.0;
  /// Total retime latency added, in cycles (0.5 or 1.0).
  double latency_cycles = 1.0;
};

/// Decides the retime mode from the locked sampling offset.
/// `sampling_offset` is the sampling instant within the receiver clock
/// period [0, period); the receiver clock edge is at 0 (== period).
CrossingDecision decide_crossing(double sampling_offset, double period);

/// Margin check used in tests: true when the chosen edge leaves at least
/// `min_slack` before the capture edge.
bool crossing_is_safe(const CrossingDecision& d, double min_slack);

}  // namespace lsl::link
