#include "link/link.hpp"

#include <cmath>

namespace lsl::link {

Link::Link(const LinkParams& p) : params_(p) {}

double Link::eye_center() const {
  // Channel group delay to the eye center: measure once on the healthy
  // waveform model.
  const behav::EyeResult eye = behav::analyze_eye(params_.channel, 600);
  double center = params_.latency + eye.best_phase_frac * params_.channel.ui;
  if (params_.tx_half_cycle_delay) center += 0.5 * params_.channel.ui;
  const double period = params_.sync.dll.clock_period;
  return std::fmod(std::fmod(center, period) + period, period);
}

TrafficResult Link::run_traffic(std::size_t n_bits, util::PrbsOrder order, std::uint64_t seed) {
  TrafficResult res;

  // --- acquisition ------------------------------------------------------
  behav::Synchronizer sync(params_.sync, eye_center(), params_.vc0, params_.phase0);
  util::Pcg32 rng(seed);
  res.sync = sync.run(params_.acquisition_ui, rng);
  const double period = params_.sync.dll.clock_period;
  const double sample_offset =
      sync.sampling_offset(res.sync.final_phase, res.sync.final_vc);
  res.crossing = decide_crossing(sample_offset, period);
  if (!res.sync.locked) {
    // Count traffic as failed: every bit is suspect without lock.
    res.bits = n_bits;
    res.errors = n_bits;
    return res;
  }

  // --- traffic ----------------------------------------------------------
  // Sample the waveform at the locked phase. The sampling instant within
  // the UI is (eye_center + residual phase error) in channel coordinates.
  behav::Channel ch(params_.channel, seed ^ 0x9e3779b97f4a7c15ULL);
  util::PrbsGenerator prbs(order, static_cast<std::uint32_t>(seed) | 1u);

  // Phase error of the locked loop: sample = eye_center - err.
  const double err = res.sync.final_phase_error;
  const behav::EyeResult eye = behav::analyze_eye(params_.channel, 600);
  double phase_in_ui = eye.best_phase_frac - err / params_.channel.ui;
  phase_in_ui = phase_in_ui - std::floor(phase_in_ui);
  const auto sample_idx = static_cast<std::size_t>(
      std::fmod(phase_in_ui * params_.channel.oversample, params_.channel.oversample));

  const std::size_t warmup = 32;
  for (std::size_t i = 0; i < n_bits + warmup; ++i) {
    const bool b = prbs.next_bit();
    ch.push_bit(b);
    if (i < warmup) continue;
    const double v = ch.last_ui_waveform()[sample_idx];
    const bool decided = v > params_.slicer_offset;
    ++res.bits;
    if (decided != b) ++res.errors;
  }
  return res;
}

BistVerdict Link::run_bist(std::uint64_t seed) {
  BistVerdict v;
  const TrafficResult t = run_traffic(4096, util::PrbsOrder::kPrbs15, seed);
  v.locked_in_budget = t.sync.locked && t.sync.lock_time <= 2e-6;
  v.lock_counter_ok = !t.sync.lock_counter_saturated;
  v.cp_bist_ok = !t.sync.cp_bist_flag;
  v.data_ok = t.sync.locked && t.errors == 0;
  return v;
}

}  // namespace lsl::link
