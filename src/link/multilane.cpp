#include "link/multilane.hpp"

#include <set>

namespace lsl::link {

MultiLaneLink::MultiLaneLink(const MultiLaneParams& p) : params_(p) {}

LinkParams MultiLaneLink::lane_params(std::size_t lane) const {
  LinkParams p = params_.base;
  p.latency += static_cast<double>(lane) * params_.skew_per_lane;
  // The BIST preloads a far-off coarse phase on every lane.
  p.phase0 = 5;
  return p;
}

MultiLaneReport MultiLaneLink::test_all(std::size_t traffic_bits, std::uint64_t seed) const {
  MultiLaneReport report;
  report.all_pass = true;
  std::set<std::size_t> phases;

  for (std::size_t lane = 0; lane < params_.lanes; ++lane) {
    LaneResult r;
    r.lane = lane;
    Link link(lane_params(lane));
    r.bist = link.run_bist(seed + lane);
    r.traffic = link.run_traffic(traffic_bits, util::PrbsOrder::kPrbs15, seed + 131 * lane);
    r.locked_phase = r.traffic.sync.final_phase;
    phases.insert(r.locked_phase);
    report.all_pass = report.all_pass && r.bist.pass() && r.traffic.errors == 0;
    report.lanes.push_back(std::move(r));
  }
  report.distinct_phases = phases.size();

  const auto n = static_cast<double>(params_.lanes);
  report.test_time_sequential = n * (params_.scan_time_per_lane + params_.bist_time_per_lane);
  // Scan shifts share the tester interface and serialize; the BIST is
  // self-contained per lane and runs everywhere at once.
  report.test_time_scheduled = n * params_.scan_time_per_lane + params_.bist_time_per_lane;
  return report;
}

}  // namespace lsl::link
