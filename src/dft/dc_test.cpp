#include "dft/dc_test.hpp"

namespace lsl::dft {

DcTestReference dc_test_reference(const cells::LinkFrontend& golden) {
  DcTestReference ref;
  cells::LinkFrontend fe = golden;
  fe.set_data(true, true);
  const auto r1 = fe.solve();
  fe.set_data(false, false);
  const auto r0 = fe.solve();
  if (!r1.converged || !r0.converged) return ref;
  ref.obs1 = fe.observe(r1);
  ref.obs0 = fe.observe(r0);
  ref.valid = true;
  return ref;
}

DcTestOutcome run_dc_test(const cells::LinkFrontend& fe_in, const DcTestReference& ref,
                          const spice::DcOptions& solve) {
  DcTestOutcome out;
  cells::LinkFrontend fe = fe_in;

  fe.set_data(true, true);
  const auto r1 = fe.solve(solve);
  out.iterations += r1.iterations;
  if (!r1.converged) {
    out.anomalous = true;
    out.status = r1.status;
    return out;
  }
  if (!fe.observe(r1).same_static(ref.obs1)) {
    out.detected = true;
    return out;
  }

  fe.set_data(false, false);
  const auto r0 = fe.solve(solve);
  out.iterations += r0.iterations;
  if (!r0.converged) {
    out.anomalous = true;
    out.status = r0.status;
    return out;
  }
  out.detected = !fe.observe(r0).same_static(ref.obs0);
  return out;
}

}  // namespace lsl::dft
