#include "dft/dc_test.hpp"

namespace lsl::dft {

DcTestReference dc_test_reference(const cells::LinkFrontend& golden,
                                  const spice::SolveHints* hints) {
  DcTestReference ref;
  cells::LinkFrontend fe = golden;
  fe.set_data(true, true);
  const auto r1 = fe.solve();
  if (r1.converged) spice::capture_seed(hints, "dc.1", fe.netlist(), r1.x);
  fe.set_data(false, false);
  const auto r0 = fe.solve();
  if (r0.converged) spice::capture_seed(hints, "dc.0", fe.netlist(), r0.x);
  if (!r1.converged || !r0.converged) return ref;
  ref.obs1 = fe.observe(r1);
  ref.obs0 = fe.observe(r0);
  ref.valid = true;
  return ref;
}

DcTestOutcome run_dc_test(const cells::LinkFrontend& fe_in, const DcTestReference& ref,
                          const spice::DcOptions& solve, const spice::SolveHints* hints) {
  DcTestOutcome out;
  cells::LinkFrontend fe = fe_in;
  spice::DcOptions opts = solve;
  if (hints != nullptr) opts.overlay = hints->overlay;

  fe.set_data(true, true);
  spice::arm_warm_start(hints, "dc.1", fe.netlist());
  const auto r1 = fe.solve(opts);
  out.iterations += r1.iterations;
  if (!r1.converged) {
    out.anomalous = true;
    out.status = r1.status;
    return out;
  }
  if (!fe.observe(r1).same_static(ref.obs1)) {
    out.detected = true;
    return out;
  }

  fe.set_data(false, false);
  spice::arm_warm_start(hints, "dc.0", fe.netlist());
  const auto r0 = fe.solve(opts);
  out.iterations += r0.iterations;
  if (!r0.converged) {
    out.anomalous = true;
    out.status = r0.status;
    return out;
  }
  out.detected = !fe.observe(r0).same_static(ref.obs0);
  return out;
}

}  // namespace lsl::dft
