#include "dft/campaign.hpp"

#include "util/log.hpp"

namespace lsl::dft {

using fault::FaultClass;
using fault::OpenLeak;
using fault::StructuralFault;

std::vector<const FaultOutcome*> CampaignReport::undetected() const {
  std::vector<const FaultOutcome*> out;
  for (const auto& o : outcomes) {
    if (!o.detected_any()) out.push_back(&o);
  }
  return out;
}

namespace {

struct StageResults {
  bool dc = false;
  bool scan = false;
  bool bist = false;
  bool anomalous = false;
};

StageResults run_stages(const cells::LinkFrontend& faulty_closed,
                        const cells::LinkFrontend& faulty, const DcTestReference& dc_ref,
                        const ScanTestReference& scan_ref, const BistTestReference& bist_ref,
                        const CampaignOptions& opts) {
  StageResults r;
  const DcTestOutcome dc = run_dc_test(faulty_closed, dc_ref);
  r.dc = dc.detected;
  r.anomalous |= dc.anomalous;

  const ScanTestOutcome scan = run_scan_test(faulty, scan_ref, opts.toggle);
  r.scan = scan.detected;
  r.anomalous |= scan.anomalous;

  if (opts.with_bist) {
    const BistTestOutcome bist = run_bist_test(faulty, bist_ref);
    r.bist = bist.detected;
    r.anomalous |= bist.anomalous;
  }
  return r;
}

void account(ClassStats& s, const FaultOutcome& o) {
  s.dc.add(o.dc);
  s.scan.add(o.scan);
  s.bist.add(o.bist);
  s.cum_dc.add(o.dc);
  s.cum_scan.add(o.dc || o.scan);
  s.cum_all.add(o.detected_any());
}

}  // namespace

CampaignReport run_campaign(const cells::LinkFrontend& golden, const CampaignOptions& opts) {
  CampaignReport report;

  const auto vdd = *golden.netlist().find_node("vdd");
  const std::vector<std::string> excludes =
      opts.functional_circuit_only ? fault::test_circuitry_prefixes() : std::vector<std::string>{};
  auto faults = fault::enumerate_structural_faults(golden.netlist(), opts.prefixes, excludes);
  if (opts.max_faults != 0 && faults.size() > opts.max_faults) faults.resize(opts.max_faults);

  // The DC test runs with the coarse loop closed (mission-mode DC
  // operating point: Vc regulated at the window edge, strong pump and
  // window comparator active). Scan and BIST need the pump gates
  // drivable and run on the open-loop frontend.
  cells::LinkFrontendSpec closed_spec = golden.spec();
  closed_spec.close_coarse_loop = true;
  const cells::LinkFrontend golden_closed(closed_spec);
  const auto vdd_closed = *golden_closed.netlist().find_node("vdd");

  const DcTestReference dc_ref = dc_test_reference(golden_closed);
  ScanTestReference scan_ref = scan_test_reference(golden, opts.with_scan_toggle, opts.toggle);
  BistTestReference bist_ref;
  if (opts.with_bist) {
    bist_ref = bist_test_reference(golden);
    if (!bist_ref.valid) {
      util::log_warn("campaign: golden BIST reference does not pass; BIST detections disabled");
    }
  }

  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (opts.progress) opts.progress(i, faults.size());
    const StructuralFault& f = faults[i];
    FaultOutcome outcome;
    outcome.fault = f;

    const auto run_variant = [&](OpenLeak leak) {
      cells::LinkFrontend faulty = golden;
      cells::LinkFrontend faulty_closed = golden_closed;
      if (!fault::inject(faulty.netlist(), f, leak, vdd) ||
          !fault::inject(faulty_closed.netlist(), f, leak, vdd_closed)) {
        util::log_error("campaign: failed to inject " + f.describe());
        return StageResults{};
      }
      return run_stages(faulty_closed, faulty, dc_ref, scan_ref, bist_ref, opts);
    };

    if (f.needs_leak_variants() && opts.pessimistic_gate_opens) {
      // Pessimistic convention: a floating gate's level is unknowable,
      // so only faults flagged under BOTH leakage assumptions count.
      const StageResults a = run_variant(OpenLeak::kToGround);
      const StageResults b = run_variant(OpenLeak::kToVdd);
      outcome.dc = a.dc && b.dc;
      outcome.scan = a.scan && b.scan;
      outcome.bist = a.bist && b.bist;
      outcome.anomalous = a.anomalous || b.anomalous;
    } else {
      // Gate opens leak toward the device bulk; other opens have no
      // leak dependence (the argument is ignored).
      const OpenLeak leak = f.needs_leak_variants()
                                ? fault::bulk_leak(golden.netlist(), f)
                                : OpenLeak::kToGround;
      const StageResults r = run_variant(leak);
      outcome.dc = r.dc;
      outcome.scan = r.scan;
      outcome.bist = r.bist;
      outcome.anomalous = r.anomalous;
    }

    if (outcome.anomalous) ++report.anomalous;
    account(report.per_class[f.cls], outcome);
    account(report.total, outcome);
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

}  // namespace lsl::dft
