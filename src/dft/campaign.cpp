#include "dft/campaign.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "dft/dictionary.hpp"
#include "spice/seed.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace lsl::dft {

using fault::FaultClass;
using fault::OpenLeak;
using fault::StructuralFault;

std::string fault_verdict_name(FaultVerdict v) {
  switch (v) {
    case FaultVerdict::kDetected: return "detected";
    case FaultVerdict::kUndetected: return "undetected";
    case FaultVerdict::kQuarantined: return "quarantined";
  }
  return "?";
}

bool fault_verdict_from_name(const std::string& name, FaultVerdict& out) {
  for (const FaultVerdict v :
       {FaultVerdict::kDetected, FaultVerdict::kUndetected, FaultVerdict::kQuarantined}) {
    if (fault_verdict_name(v) == name) {
      out = v;
      return true;
    }
  }
  return false;
}

std::vector<const FaultOutcome*> CampaignReport::undetected() const {
  std::vector<const FaultOutcome*> out;
  for (const auto& o : outcomes) {
    if (o.verdict == FaultVerdict::kUndetected) out.push_back(&o);
  }
  return out;
}

std::vector<const FaultOutcome*> CampaignReport::quarantined_faults() const {
  std::vector<const FaultOutcome*> out;
  for (const auto& o : outcomes) {
    if (o.verdict == FaultVerdict::kQuarantined) out.push_back(&o);
  }
  return out;
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct StageResults {
  bool dc = false;
  bool scan = false;
  bool bist = false;
  bool anomalous = false;
  bool budget_blown = false;
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  long iterations = 0;
  unsigned stages_run = 0;
};

/// Folds a stage's failure status into the running worst (first failure
/// wins — later stages usually fail the same way for the same reason).
void note_status(StageResults& r, bool anomalous, spice::SolveStatus st) {
  if (!anomalous) return;
  r.anomalous = true;
  if (r.status == spice::SolveStatus::kConverged) r.status = st;
}

/// Stage identifiers in canonical order (the default execution order and
/// the tie-break order for adaptive reordering).
enum StageId { kStageDc = 0, kStageScan = 1, kStageBist = 2 };
using StageOrder = std::array<StageId, 3>;

constexpr StageOrder kCanonicalOrder = {kStageDc, kStageScan, kStageBist};

/// Stage order for one fault class: stages sorted by expected
/// detections per unit cost, descending; exact ties keep canonical
/// order. Pure function of (priors, class) — no runtime feedback — so
/// every thread, resume, and re-run orders identically.
StageOrder stage_order_for(const StagePriors& priors, FaultClass cls) {
  StagePriors::Rates rates;
  if (const auto it = priors.rates.find(cls); it != priors.rates.end()) rates = it->second;
  const std::array<double, 3> score = {
      rates.dc / (priors.cost_dc > 0.0 ? priors.cost_dc : 1.0),
      rates.scan / (priors.cost_scan > 0.0 ? priors.cost_scan : 1.0),
      rates.bist / (priors.cost_bist > 0.0 ? priors.cost_bist : 1.0),
  };
  StageOrder order = kCanonicalOrder;
  std::stable_sort(order.begin(), order.end(),
                   [&score](StageId a, StageId b) { return score[a] > score[b]; });
  return order;
}

StageResults run_stages(const cells::LinkFrontend& faulty_closed,
                        const cells::LinkFrontend& faulty, const DcTestReference& dc_ref,
                        const ScanTestReference& scan_ref, const BistTestReference& bist_ref,
                        const CampaignOptions& opts, Clock::time_point start,
                        const StageOrder& order, bool short_circuit,
                        const spice::SolveHints* hints_closed,
                        const spice::SolveHints* hints_open) {
  StageResults r;

  // Remaining wall clock for this fault; every solve inside a stage gets
  // it as a hard timeout. Returns false once the budget is blown.
  const auto remaining = [&](double& left) {
    if (opts.budget.per_fault_sec <= 0.0) {
      left = 0.0;  // 0 = unlimited for the solver layer
      return true;
    }
    left = opts.budget.per_fault_sec - seconds_since(start);
    return left > 0.0;
  };
  const auto iter_budget_ok = [&]() {
    return opts.budget.max_newton_per_fault <= 0 ||
           r.iterations <= opts.budget.max_newton_per_fault;
  };

  static util::Counter& stage_skips = util::metrics().counter("campaign.stage_skips");

  spice::DcOptions solve;
  double left = 0.0;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const StageId stage = order[pos];
    if (stage == kStageBist && !opts.with_bist) continue;
    if (!remaining(left) || !iter_budget_ok()) {
      r.budget_blown = true;
      return r;
    }
    solve.timeout_sec = left;
    switch (stage) {
      case kStageDc: {
        const DcTestOutcome dc = run_dc_test(faulty_closed, dc_ref, solve, hints_closed);
        r.dc = dc.detected;
        r.iterations += dc.iterations;
        note_status(r, dc.anomalous, dc.status);
        r.stages_run |= kStageBitDc;
        break;
      }
      case kStageScan: {
        ToggleOptions toggle = opts.toggle;
        toggle.timeout_sec = left;
        const ScanTestOutcome scan = run_scan_test(faulty, scan_ref, toggle, solve, hints_open);
        r.scan = scan.detected;
        r.iterations += scan.iterations;
        note_status(r, scan.anomalous, scan.status);
        r.stages_run |= kStageBitScan;
        break;
      }
      case kStageBist: {
        const BistTestOutcome bist = run_bist_test(faulty, bist_ref, solve, hints_open);
        r.bist = bist.detected;
        r.iterations += bist.iterations;
        note_status(r, bist.anomalous, bist.status);
        r.stages_run |= kStageBitBist;
        break;
      }
    }
    // A detection in hand makes every remaining stage redundant for the
    // verdict: detected_any() already wins classification regardless of
    // what they would report, so skipping them cannot move the fault
    // between partitions (DESIGN.md).
    if (short_circuit && (r.dc || r.scan || r.bist)) {
      std::int64_t skipped = 0;
      for (std::size_t rest = pos + 1; rest < order.size(); ++rest) {
        if (order[rest] == kStageBist && !opts.with_bist) continue;
        ++skipped;
      }
      if (skipped > 0) stage_skips.add(skipped);
      break;
    }
  }
  if (!iter_budget_ok()) r.budget_blown = true;
  return r;
}

FaultVerdict classify(const FaultOutcome& o) {
  // A genuine signature mismatch is conclusive even when another stage
  // failed to solve or the budget ran out afterwards.
  if (o.detected_any()) return FaultVerdict::kDetected;
  if (o.anomalous || o.budget_blown) return FaultVerdict::kQuarantined;
  return FaultVerdict::kUndetected;
}

void account(ClassStats& s, const FaultOutcome& o) {
  if (o.verdict == FaultVerdict::kQuarantined) {
    // Quarantined faults never produced a trustworthy verdict: they are
    // excluded from the denominator, not silently counted either way.
    ++s.quarantined;
    return;
  }
  s.dc.add(o.dc);
  s.scan.add(o.scan);
  s.bist.add(o.bist);
  s.cum_dc.add(o.dc);
  s.cum_scan.add(o.dc || o.scan);
  s.cum_all.add(o.detected_any());
}

// --- JSONL checkpointing ---------------------------------------------

std::string outcome_to_json(const FaultOutcome& o) {
  util::JsonObject j;
  j.set("index", o.index);
  j.set("device", o.fault.device);
  j.set("class", fault::fault_class_name(o.fault.cls));
  j.set("verdict", fault_verdict_name(o.verdict));
  j.set("status", spice::to_string(o.status));
  j.set("dc", o.dc);
  j.set("scan", o.scan);
  j.set("bist", o.bist);
  j.set("anomalous", o.anomalous);
  j.set("budget_blown", o.budget_blown);
  j.set("elapsed_sec", o.elapsed_sec);
  j.set("newton_iterations", static_cast<std::int64_t>(o.newton_iterations));
  j.set("stages_run", static_cast<std::size_t>(o.stages_run));
  // Only present for folded class members: keeps the line (and the
  // canonical JSONL) identical to a collapsing-off run everywhere else.
  if (o.collapsed_into.has_value()) j.set("collapsed_into", *o.collapsed_into);
  return j.str();
}

bool outcome_from_json(const std::string& line, FaultOutcome& o) {
  util::JsonObject j;
  if (!util::JsonObject::parse(line, j)) return false;
  std::string cls;
  std::string verdict;
  std::string status;
  double elapsed = 0.0;
  double iters = 0.0;
  if (!j.get_uint("index", o.index) || !j.get_string("device", o.fault.device) ||
      !j.get_string("class", cls) || !j.get_string("verdict", verdict) ||
      !j.get_string("status", status) || !j.get_bool("dc", o.dc) ||
      !j.get_bool("scan", o.scan) || !j.get_bool("bist", o.bist) ||
      !j.get_bool("anomalous", o.anomalous) || !j.get_bool("budget_blown", o.budget_blown) ||
      !j.get_number("elapsed_sec", elapsed) || !j.get_number("newton_iterations", iters)) {
    return false;
  }
  if (!fault::fault_class_from_name(cls, o.fault.cls)) return false;
  if (!fault_verdict_from_name(verdict, o.verdict)) return false;
  if (!spice::solve_status_from_string(status, o.status)) return false;
  o.elapsed_sec = elapsed;
  o.newton_iterations = static_cast<long>(iters);
  // Optional fields (absent from pre-incremental checkpoints): keep the
  // defaults when missing so old checkpoint files still resume.
  std::size_t stages = 0;
  if (j.get_uint("stages_run", stages)) o.stages_run = static_cast<unsigned>(stages);
  std::size_t rep = 0;
  if (j.get_uint("collapsed_into", rep)) o.collapsed_into = rep;
  return true;
}

/// Loads checkpointed outcomes, keyed by fault index. Lines that fail to
/// parse (e.g. the torn tail of a killed run) or that disagree with the
/// enumerated universe are skipped with a warning — the fault simply
/// re-runs.
std::unordered_map<std::size_t, FaultOutcome> load_checkpoint(
    const std::string& path, const std::vector<StructuralFault>& faults) {
  std::unordered_map<std::size_t, FaultOutcome> done;
  for (const auto& line : util::read_lines(path)) {
    FaultOutcome o;
    if (!outcome_from_json(line, o)) {
      util::log_warn("campaign: skipping malformed checkpoint line");
      continue;
    }
    if (o.index >= faults.size() || faults[o.index].device != o.fault.device ||
        faults[o.index].cls != o.fault.cls) {
      util::log_warn("campaign: checkpoint line does not match fault universe; re-running " +
                     o.fault.describe());
      continue;
    }
    done[o.index] = std::move(o);  // later lines win
  }
  return done;
}

/// Everything one fault simulation reads. Shared read-only across the
/// serial run; each pool worker gets its own instance pointing at its
/// own cloned frontends so no netlist (with its mutable index cache)
/// is ever touched from two threads.
struct FaultSimContext {
  const cells::LinkFrontend* golden = nullptr;
  const cells::LinkFrontend* golden_closed = nullptr;
  spice::NodeId vdd = spice::kGround;
  spice::NodeId vdd_closed = spice::kGround;
  const DcTestReference* dc_ref = nullptr;
  const ScanTestReference* scan_ref = nullptr;
  const BistTestReference* bist_ref = nullptr;
  const CampaignOptions* opts = nullptr;
  /// Golden warm-start seeds, immutable and shared read-only across
  /// every worker (null when reuse_golden is off).
  const spice::SeedBank* seeds = nullptr;
  /// Per-class stage execution order (null => canonical for all).
  const std::map<FaultClass, StageOrder>* stage_order = nullptr;
};

/// Simulates one fault through all enabled stages. Deterministic given
/// the fault and context (modulo wall-clock budgets) and fully
/// self-contained: copies the goldens, injects, runs stages, classifies.
FaultOutcome simulate_fault(const FaultSimContext& ctx, const StructuralFault& f,
                            std::size_t index, std::size_t worker) {
  const CampaignOptions& opts = *ctx.opts;
  FaultOutcome outcome;
  outcome.fault = f;
  outcome.index = index;
  util::TraceSpan span("fault", "campaign");
  span.arg("index", static_cast<double>(index));
  span.arg("worker", static_cast<double>(worker));
  const Clock::time_point fault_start = Clock::now();

  StageOrder order = kCanonicalOrder;
  if (ctx.stage_order != nullptr) {
    if (const auto it = ctx.stage_order->find(f.cls); it != ctx.stage_order->end()) {
      order = it->second;
    }
  }
  // Pessimistic gate opens AND their detection bits across the two leak
  // variants: a per-variant short-circuit could zero a bit the other
  // variant needs, flipping the AND — so they always run every stage.
  const bool short_circuit = opts.adaptive_stage_order &&
                             !(f.needs_leak_variants() && opts.pessimistic_gate_opens);

  const auto run_variant = [&](OpenLeak leak) {
    cells::LinkFrontend faulty = *ctx.golden;
    cells::LinkFrontend faulty_closed = *ctx.golden_closed;
    if (!fault::inject(faulty.netlist(), f, leak, ctx.vdd) ||
        !fault::inject(faulty_closed.netlist(), f, leak, ctx.vdd_closed)) {
      util::log_error("campaign: failed to inject " + f.describe());
      return StageResults{};
    }
    // Low-rank overlays live on this frame; the hints only carry
    // pointers, and every solve they reach completes inside run_stages.
    std::optional<spice::LowRankOverlay> ov_open;
    std::optional<spice::LowRankOverlay> ov_closed;
    if (opts.low_rank_injection) {
      ov_open = fault::low_rank_overlay(faulty.netlist(), f);
      ov_closed = fault::low_rank_overlay(faulty_closed.netlist(), f);
    }
    spice::SolveHints hints_open;
    hints_open.seeds = ctx.seeds;
    hints_open.overlay = ov_open.has_value() ? &*ov_open : nullptr;
    spice::SolveHints hints_closed;
    hints_closed.seeds = ctx.seeds;
    hints_closed.overlay = ov_closed.has_value() ? &*ov_closed : nullptr;
    return run_stages(faulty_closed, faulty, *ctx.dc_ref, *ctx.scan_ref, *ctx.bist_ref, opts,
                      fault_start, order, short_circuit, &hints_closed, &hints_open);
  };

  // Survival guarantee: nothing a single fault does — divergence,
  // singularity, or an unexpected exception — may abort the campaign.
  try {
    if (f.needs_leak_variants() && opts.pessimistic_gate_opens) {
      // Pessimistic convention: a floating gate's level is unknowable,
      // so only faults flagged under BOTH leakage assumptions count.
      const StageResults a = run_variant(OpenLeak::kToGround);
      const StageResults b = run_variant(OpenLeak::kToVdd);
      outcome.dc = a.dc && b.dc;
      outcome.scan = a.scan && b.scan;
      outcome.bist = a.bist && b.bist;
      outcome.anomalous = a.anomalous || b.anomalous;
      outcome.budget_blown = a.budget_blown || b.budget_blown;
      outcome.status = a.anomalous ? a.status : b.status;
      outcome.newton_iterations = a.iterations + b.iterations;
      outcome.stages_run = a.stages_run | b.stages_run;
    } else {
      // Gate opens leak toward the device bulk; other opens have no
      // leak dependence (the argument is ignored).
      const OpenLeak leak = f.needs_leak_variants() ? fault::bulk_leak(ctx.golden->netlist(), f)
                                                    : OpenLeak::kToGround;
      const StageResults r = run_variant(leak);
      outcome.dc = r.dc;
      outcome.scan = r.scan;
      outcome.bist = r.bist;
      outcome.anomalous = r.anomalous;
      outcome.budget_blown = r.budget_blown;
      outcome.status = r.status;
      outcome.newton_iterations = r.iterations;
      outcome.stages_run = r.stages_run;
    }
  } catch (const std::exception& e) {
    util::log_error("campaign: exception on " + f.describe() + ": " + e.what());
    outcome.anomalous = true;
    outcome.status = spice::SolveStatus::kNonFinite;
  } catch (...) {
    util::log_error("campaign: unknown exception on " + f.describe());
    outcome.anomalous = true;
    outcome.status = spice::SolveStatus::kNonFinite;
  }

  outcome.elapsed_sec = seconds_since(fault_start);
  outcome.verdict = classify(outcome);

  auto& m = util::metrics();
  static util::Counter& faults = m.counter("campaign.faults");
  static util::Counter& quarantined = m.counter("campaign.faults_quarantined");
  static util::MetricHistogram& fault_seconds = m.histogram("campaign.fault_seconds");
  static util::MetricHistogram& newton_per_fault = m.histogram("campaign.newton_per_fault");
  faults.add(1);
  if (outcome.verdict == FaultVerdict::kQuarantined) quarantined.add(1);
  fault_seconds.observe(outcome.elapsed_sec);
  newton_per_fault.observe(static_cast<double>(outcome.newton_iterations));
  return outcome;
}

/// Checkpoint append with write-latency accounting — the fsync inside
/// util::append_line is the campaign's only disk dependency, so its
/// tail is worth watching (docs/OBSERVABILITY.md's walkthrough).
void checkpointed_append(const std::string& path, const FaultOutcome& outcome) {
  static util::MetricHistogram& write_seconds =
      util::metrics().histogram("campaign.checkpoint_write_seconds");
  const Clock::time_point t0 = Clock::now();
  const bool ok = util::append_line(path, outcome_to_json(outcome));
  write_seconds.observe(seconds_since(t0));
  if (!ok) {
    util::log_warn("campaign: failed to append checkpoint line to " + path);
  }
}

// --- Structural fault collapsing --------------------------------------

/// Memoized result of one equivalence class's simulation. The mutex is
/// held for the duration of the representative simulation: a second
/// member of the same class arriving on another worker blocks until the
/// result is in, then copies it. Members of different classes never
/// contend.
struct GroupSlot {
  std::mutex mu;
  bool done = false;
  FaultOutcome result;  // fault/index/collapsed_into are per-member
};

/// The collapsing plan: for each fault, the index of its class
/// representative (== the fault itself for singletons) and, for
/// multi-member classes, a shared memo slot.
struct CollapsePlan {
  std::vector<std::size_t> rep;              // rep[i] == i => not folded
  std::vector<GroupSlot*> slot;              // null for singletons
  std::vector<std::unique_ptr<GroupSlot>> slots;
  std::size_t classes = 0;                   // multi-member classes
  std::size_t folded = 0;                    // members beyond the reps
};

/// Intersects the equivalence partitions of the open- and closed-loop
/// golden frontends: two faults may only collapse when they are
/// equivalent in BOTH netlists (the DC test runs on the closed-loop
/// wiring, where e.g. the coarse-loop switches connect different node
/// pairs). Membership proofs for every multi-member class are logged.
CollapsePlan build_collapse_plan(const cells::LinkFrontend& golden,
                                 const cells::LinkFrontend& golden_closed,
                                 const std::vector<StructuralFault>& faults) {
  CollapsePlan plan;
  plan.rep.resize(faults.size());
  plan.slot.resize(faults.size(), nullptr);
  for (std::size_t i = 0; i < faults.size(); ++i) plan.rep[i] = i;

  const auto open_groups = fault::collapse_equivalences(golden.netlist(), faults);
  const auto closed_groups = fault::collapse_equivalences(golden_closed.netlist(), faults);
  std::vector<std::size_t> open_gid(faults.size(), 0);
  std::vector<std::size_t> closed_gid(faults.size(), 0);
  for (std::size_t g = 0; g < open_groups.size(); ++g) {
    for (const std::size_t m : open_groups[g].members) open_gid[m] = g;
  }
  for (std::size_t g = 0; g < closed_groups.size(); ++g) {
    for (const std::size_t m : closed_groups[g].members) closed_gid[m] = g;
  }

  // Intersection: members sharing BOTH group ids form the final class.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>> final_groups;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    final_groups[{open_gid[i], closed_gid[i]}].push_back(i);
  }
  for (const auto& [key, members] : final_groups) {
    if (members.size() < 2) continue;
    const std::size_t rep = members.front();  // ascending => lowest index
    auto slot = std::make_unique<GroupSlot>();
    for (const std::size_t m : members) {
      plan.rep[m] = rep;
      plan.slot[m] = slot.get();
    }
    plan.slots.push_back(std::move(slot));
    ++plan.classes;
    plan.folded += members.size() - 1;
    // Log the membership proof (the open-loop group's argument; the
    // closed-loop partition only ever splits classes, never adds).
    const auto& proof = open_groups[key.first].proof;
    util::log_info("campaign: collapsed " + std::to_string(members.size()) +
                   " faults into #" + std::to_string(rep) +
                   (proof.empty() ? "" : " [" + proof + "]"));
  }

  auto& m = util::metrics();
  m.counter("campaign.collapse.classes").add(static_cast<std::int64_t>(plan.classes));
  m.counter("campaign.collapse.faults_folded").add(static_cast<std::int64_t>(plan.folded));
  if (plan.classes > 0) {
    util::log_info("campaign: fault collapsing folded " + std::to_string(plan.folded) +
                   " of " + std::to_string(faults.size()) + " faults into " +
                   std::to_string(plan.classes) + " class representatives");
  }
  return plan;
}

/// simulate_fault with collapse memoization: the first member of a
/// multi-member class to arrive simulates it; every other member copies
/// the bit-identical result (equivalent faulted netlists differ only in
/// device names, which stamp nothing) and records the representative in
/// collapsed_into. Per-fault work units (progress, abort polls,
/// checkpoint lines) are preserved exactly.
FaultOutcome simulate_with_collapse(const FaultSimContext& ctx, const CollapsePlan* plan,
                                    const StructuralFault& f, std::size_t index,
                                    std::size_t worker) {
  GroupSlot* slot = (plan != nullptr) ? plan->slot[index] : nullptr;
  if (slot == nullptr) return simulate_fault(ctx, f, index, worker);

  std::lock_guard<std::mutex> lk(slot->mu);
  if (!slot->done) {
    slot->result = simulate_fault(ctx, f, index, worker);
    slot->done = true;
    FaultOutcome outcome = slot->result;
    if (plan->rep[index] != index) outcome.collapsed_into = plan->rep[index];
    return outcome;
  }
  const Clock::time_point t0 = Clock::now();
  FaultOutcome outcome = slot->result;
  outcome.fault = f;
  outcome.index = index;
  if (plan->rep[index] != index) outcome.collapsed_into = plan->rep[index];
  outcome.elapsed_sec = seconds_since(t0);  // the fold is (nearly) free
  return outcome;
}

}  // namespace

StagePriors stage_priors_from_dictionary(const FaultDictionary& dict) {
  StagePriors priors;
  const std::string& golden = dict.golden_signature();
  // Signature layout (dictionary.cpp): DC observables are the first
  // 2 * LinkObservation::kBitCount = 20 characters, the BIST readout and
  // verdict flags are the last 6 + 4 = 10, and everything in between is
  // the scan captures (cp scan + static scan + optional toggle strobes).
  constexpr std::size_t kDcLen = 20;
  constexpr std::size_t kBistLen = 10;
  struct Tally {
    std::size_t dc_hit = 0, scan_hit = 0, bist_hit = 0, count = 0;
  };
  std::map<fault::FaultClass, Tally> tallies;
  for (const DictionaryEntry& e : dict.entries()) {
    const std::string& sig = e.signature;
    if (sig.size() != golden.size() || sig.size() < kDcLen + kBistLen) continue;
    Tally& t = tallies[e.fault.cls];
    ++t.count;
    const auto differs = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        if (sig[i] != golden[i]) return true;
      }
      return false;
    };
    if (differs(0, kDcLen)) ++t.dc_hit;
    if (differs(kDcLen, sig.size() - kBistLen)) ++t.scan_hit;
    if (differs(sig.size() - kBistLen, sig.size())) ++t.bist_hit;
  }
  // Laplace-smoothed detection rates: (hits + 1) / (count + 2) keeps
  // unseen classes at the uninformative 0.5 and never pins a stage to
  // exactly 0 or 1 off a small sample.
  for (const auto& [cls, t] : tallies) {
    StagePriors::Rates r;
    r.dc = static_cast<double>(t.dc_hit + 1) / static_cast<double>(t.count + 2);
    r.scan = static_cast<double>(t.scan_hit + 1) / static_cast<double>(t.count + 2);
    r.bist = static_cast<double>(t.bist_hit + 1) / static_cast<double>(t.count + 2);
    priors.rates[cls] = r;
  }
  return priors;
}

CampaignReport run_campaign(const cells::LinkFrontend& golden, const CampaignOptions& opts) {
  CampaignReport report;
  util::TraceSpan campaign_span("run_campaign", "campaign");
  const Clock::time_point campaign_start = Clock::now();

  const auto vdd = *golden.netlist().find_node("vdd");
  const std::vector<std::string> excludes =
      opts.functional_circuit_only ? fault::test_circuitry_prefixes() : std::vector<std::string>{};
  auto faults = fault::enumerate_structural_faults(golden.netlist(), opts.prefixes, excludes);
  if (opts.max_faults != 0 && faults.size() > opts.max_faults) faults.resize(opts.max_faults);
  campaign_span.arg("faults", static_cast<double>(faults.size()));

  std::unordered_map<std::size_t, FaultOutcome> done;
  if (opts.resume && !opts.checkpoint_path.empty()) {
    util::TraceSpan span("campaign.load_checkpoint", "campaign");
    done = load_checkpoint(opts.checkpoint_path, faults);
    if (!done.empty()) {
      util::log_info("campaign: resumed " + std::to_string(done.size()) + "/" +
                     std::to_string(faults.size()) + " faults from checkpoint");
    }
  }

  // The DC test runs with the coarse loop closed (mission-mode DC
  // operating point: Vc regulated at the window edge, strong pump and
  // window comparator active). Scan and BIST need the pump gates
  // drivable and run on the open-loop frontend.
  cells::LinkFrontendSpec closed_spec = golden.spec();
  closed_spec.close_coarse_loop = true;
  util::TraceSpan ref_span("campaign.references", "campaign");
  const cells::LinkFrontend golden_closed(closed_spec);
  const auto vdd_closed = *golden_closed.netlist().find_node("vdd");

  // Golden-state reuse: the reference builders solve every stage
  // stimulus once on the healthy netlist anyway; capture those converged
  // solutions into a seed bank so every faulted solve can warm-start
  // from the matching golden operating point. The bank is written only
  // here, then frozen behind a const pointer and shared read-only by
  // every worker (see spice/seed.hpp for the immutability contract).
  std::shared_ptr<spice::SeedBank> seed_bank;
  spice::SolveHints capture_hints;
  const spice::SolveHints* ref_hints = nullptr;
  if (opts.reuse_golden) {
    seed_bank = std::make_shared<spice::SeedBank>();
    capture_hints.capture = seed_bank.get();
    ref_hints = &capture_hints;
  }

  const DcTestReference dc_ref = dc_test_reference(golden_closed, ref_hints);
  ScanTestReference scan_ref =
      scan_test_reference(golden, opts.with_scan_toggle, opts.toggle, ref_hints);
  BistTestReference bist_ref;
  if (opts.with_bist) {
    bist_ref = bist_test_reference(golden, {}, ref_hints);
    if (!bist_ref.valid) {
      util::log_warn("campaign: golden BIST reference does not pass; BIST detections disabled");
    }
  }
  ref_span.close();
  // Freeze the bank: from here on only const access, safe to share.
  const std::shared_ptr<const spice::SeedBank> frozen_seeds = seed_bank;
  if (frozen_seeds != nullptr) {
    util::log_info("campaign: golden seed bank holds " + std::to_string(frozen_seeds->size()) +
                   " operating points");
  }

  // Adaptive stage ordering: one fixed order per fault class, computed
  // up front from the priors. Because nothing feeds back at runtime the
  // schedule is identical across thread counts and resumes.
  std::map<FaultClass, StageOrder> order_map;
  if (opts.adaptive_stage_order) {
    for (const FaultClass cls : fault::kAllFaultClasses) {
      order_map[cls] = stage_order_for(opts.priors, cls);
    }
  }

  // Structural fault collapsing: partition the universe into provable
  // equivalence classes before any simulation.
  std::optional<CollapsePlan> collapse_plan;
  if (opts.collapse_faults) {
    util::TraceSpan span("campaign.collapse", "campaign");
    collapse_plan = build_collapse_plan(golden, golden_closed, faults);
  }
  const CollapsePlan* plan = collapse_plan.has_value() ? &*collapse_plan : nullptr;

  const std::size_t n_threads = util::ThreadPool::resolve_threads(opts.num_threads);
  report.exec.threads_used = n_threads;

  if (n_threads <= 1) {
    // Serial path: the classic loop, on the calling thread.
    FaultSimContext ctx;
    ctx.golden = &golden;
    ctx.golden_closed = &golden_closed;
    ctx.vdd = vdd;
    ctx.vdd_closed = vdd_closed;
    ctx.dc_ref = &dc_ref;
    ctx.scan_ref = &scan_ref;
    ctx.bist_ref = &bist_ref;
    ctx.opts = &opts;
    ctx.seeds = frozen_seeds.get();
    ctx.stage_order = opts.adaptive_stage_order ? &order_map : nullptr;

    std::size_t fresh = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (opts.progress) opts.progress(i, faults.size());
      if (const auto it = done.find(i); it != done.end()) {
        report.outcomes.push_back(it->second);
        continue;
      }
      if (opts.abort_check && opts.abort_check()) {
        report.complete = false;
        break;
      }
      FaultOutcome outcome = simulate_with_collapse(ctx, plan, faults[i], i, 0);
      ++fresh;
      report.exec.fault_cpu_sec += outcome.elapsed_sec;
      report.exec.newton_iterations += outcome.newton_iterations;
      if (!opts.checkpoint_path.empty()) checkpointed_append(opts.checkpoint_path, outcome);
      report.outcomes.push_back(std::move(outcome));
    }
    report.exec.per_worker_faults = {fresh};
  } else {
    // Parallel path: per-worker cloned goldens (a Netlist carries a
    // mutable index cache, so no frontend may be shared between
    // threads), dynamic work distribution via the pool, a single
    // mutex-guarded funnel for checkpoint appends and user callbacks,
    // and a merge ordered by fault index regardless of completion
    // order.
    util::ThreadPool pool(n_threads);

    struct WorkerState {
      cells::LinkFrontend golden;
      cells::LinkFrontend golden_closed;
      FaultSimContext ctx;
      std::size_t fresh = 0;
      double cpu_sec = 0.0;
      long newton = 0;
    };
    std::vector<std::unique_ptr<WorkerState>> workers;
    workers.reserve(pool.worker_slots());
    for (std::size_t w = 0; w < pool.worker_slots(); ++w) {
      auto ws = std::make_unique<WorkerState>(WorkerState{golden, golden_closed, {}, 0, 0.0, 0});
      ws->ctx.golden = &ws->golden;
      ws->ctx.golden_closed = &ws->golden_closed;
      ws->ctx.vdd = vdd;
      ws->ctx.vdd_closed = vdd_closed;
      ws->ctx.dc_ref = &dc_ref;
      ws->ctx.scan_ref = &scan_ref;
      ws->ctx.bist_ref = &bist_ref;
      ws->ctx.opts = &opts;
      ws->ctx.seeds = frozen_seeds.get();
      ws->ctx.stage_order = opts.adaptive_stage_order ? &order_map : nullptr;
      workers.push_back(std::move(ws));
    }

    std::vector<std::optional<FaultOutcome>> slots(faults.size());
    std::mutex writer_mu;  // checkpoint funnel + callback serialization
    std::atomic<bool> aborted{false};

    pool.for_each(faults.size(), [&](std::size_t i, std::size_t w) {
      WorkerState& ws = *workers[w];
      if (opts.progress) {
        std::lock_guard<std::mutex> lk(writer_mu);
        opts.progress(i, faults.size());
      }
      if (const auto it = done.find(i); it != done.end()) {
        slots[i] = it->second;
        return;
      }
      if (aborted.load(std::memory_order_relaxed)) return;
      if (opts.abort_check) {
        std::lock_guard<std::mutex> lk(writer_mu);
        if (opts.abort_check()) {
          aborted.store(true, std::memory_order_relaxed);
          return;
        }
      }
      FaultOutcome outcome = simulate_with_collapse(ws.ctx, plan, faults[i], i, w);
      ++ws.fresh;
      ws.cpu_sec += outcome.elapsed_sec;
      ws.newton += outcome.newton_iterations;
      if (!opts.checkpoint_path.empty()) {
        std::lock_guard<std::mutex> lk(writer_mu);
        checkpointed_append(opts.checkpoint_path, outcome);
      }
      slots[i] = std::move(outcome);
    });

    report.complete = !aborted.load();
    {
      util::TraceSpan merge_span("campaign.merge", "campaign");
      for (auto& slot : slots) {
        if (slot.has_value()) report.outcomes.push_back(std::move(*slot));
      }
    }
    for (const auto& ws : workers) {
      report.exec.per_worker_faults.push_back(ws->fresh);
      report.exec.fault_cpu_sec += ws->cpu_sec;
      report.exec.newton_iterations += ws->newton;
    }
    report.exec.per_worker_steals = pool.steal_counts();
    auto& steal_hist = util::metrics().histogram("campaign.steals_per_worker");
    for (const std::size_t s : report.exec.per_worker_steals) {
      report.exec.steals += s;
      steal_hist.observe(static_cast<double>(s));
    }
    util::metrics().counter("campaign.steals").add(
        static_cast<std::int64_t>(report.exec.steals));
  }

  report.exec.wall_clock_sec = seconds_since(campaign_start);
  report.exec.metrics_json = util::metrics().snapshot_json();

  // Statistics are recomputed from the index-ordered outcome list —
  // resumed, serial, and parallel runs therefore produce identical
  // reports for identical outcome sets.
  for (const FaultOutcome& o : report.outcomes) {
    if (o.anomalous) ++report.anomalous;
    if (o.verdict == FaultVerdict::kQuarantined) ++report.quarantined;
    account(report.per_class[o.fault.cls], o);
    account(report.total, o);
  }
  return report;
}

std::string outcome_canonical_json(const FaultOutcome& o) {
  FaultOutcome canonical = o;
  canonical.elapsed_sec = 0.0;  // wall clock is the one machine-dependent field
  return outcome_to_json(canonical);
}

std::string report_canonical_jsonl(const CampaignReport& report) {
  std::vector<const FaultOutcome*> ordered;
  ordered.reserve(report.outcomes.size());
  for (const auto& o : report.outcomes) ordered.push_back(&o);
  std::sort(ordered.begin(), ordered.end(),
            [](const FaultOutcome* a, const FaultOutcome* b) { return a->index < b->index; });
  std::string out;
  for (const auto* o : ordered) {
    out += outcome_canonical_json(*o);
    out += '\n';
  }
  return out;
}

}  // namespace lsl::dft
