// The paper's DC test: two static vectors (interconnect data at logic 1
// and at logic 0) applied to the full analog link, observed through the
// offset comparators that the DFT adds at the receiver (Fig 4/5) and
// the charge-pump/CP-BIST comparators whose outputs land in scan flops.
// A fault is detected when any captured comparator decision differs from
// the fault-free machine on either vector. A solve that fails leaves
// `detected` false and flags the outcome anomalous with the structured
// solver status — the campaign layer decides whether to quarantine.
#pragma once

#include <optional>

#include "cells/link_frontend.hpp"
#include "spice/seed.hpp"
#include "spice/solve_status.hpp"

namespace lsl::dft {

/// Fault-free reference for the DC test (one solve pass, reused across
/// the whole campaign). `hints` (optional) records the golden operating
/// points into hints->capture under the "dc.1"/"dc.0" seed keys for the
/// incremental campaign's warm starts.
struct DcTestReference {
  cells::LinkObservation obs1;  // data = 1
  cells::LinkObservation obs0;  // data = 0
  bool valid = false;
};

DcTestReference dc_test_reference(const cells::LinkFrontend& golden,
                                  const spice::SolveHints* hints = nullptr);

struct DcTestOutcome {
  /// Genuine signature mismatch against the golden reference.
  bool detected = false;
  /// A faulty-machine solve failed: the circuit is pathological and the
  /// verdict is not trustworthy either way.
  bool anomalous = false;
  /// Worst solver status across the stage's solves.
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  /// Newton iterations spent in this stage (campaign budget accounting).
  long iterations = 0;
};

/// Runs the two-vector DC test on a (faulted) frontend. `solve` lets
/// the campaign thread per-fault budgets (timeout) into every solve.
/// `hints` (optional) supplies golden warm-start seeds and the fault's
/// low-rank overlay; results are identical with or without it.
DcTestOutcome run_dc_test(const cells::LinkFrontend& fe, const DcTestReference& ref,
                          const spice::DcOptions& solve = {},
                          const spice::SolveHints* hints = nullptr);

}  // namespace lsl::dft
