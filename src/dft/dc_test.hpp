// The paper's DC test: two static vectors (interconnect data at logic 1
// and at logic 0) applied to the full analog link, observed through the
// offset comparators that the DFT adds at the receiver (Fig 4/5) and
// the charge-pump/CP-BIST comparators whose outputs land in scan flops.
// A fault is detected when any captured comparator decision differs from
// the fault-free machine on either vector.
#pragma once

#include <optional>

#include "cells/link_frontend.hpp"

namespace lsl::dft {

/// Fault-free reference for the DC test (one solve pass, reused across
/// the whole campaign).
struct DcTestReference {
  cells::LinkObservation obs1;  // data = 1
  cells::LinkObservation obs0;  // data = 0
  bool valid = false;
};

DcTestReference dc_test_reference(const cells::LinkFrontend& golden);

struct DcTestOutcome {
  bool detected = false;
  /// The faulty operating point failed to converge: the circuit is
  /// pathological (reported separately, counted as detected).
  bool anomalous = false;
};

/// Runs the two-vector DC test on a (faulted) frontend.
DcTestOutcome run_dc_test(const cells::LinkFrontend& fe, const DcTestReference& ref);

}  // namespace lsl::dft
