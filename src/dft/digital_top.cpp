#include "dft/digital_top.hpp"

namespace lsl::dft {

using digital::Circuit;
using digital::FlipFlop;
using digital::GateType;
using digital::Latch;
using digital::Logic;
using digital::NetId;

DigitalTop build_digital_top(std::size_t n_phases) {
  DigitalTop t;
  Circuit& c = t.c;

  // ---- primary inputs --------------------------------------------------
  t.data_in = c.net("data_in");
  t.ten = c.net("ten");            // control signal #1 (Table II)
  t.half_sel = c.net("half_sel");  // control signal #2
  t.cmp_hi = c.net("cmp_hi");
  t.cmp_lo = c.net("cmp_lo");
  t.cmp_term = c.net("cmp_term");
  t.bist_hi = c.net("bist_hi");
  t.bist_lo = c.net("bist_lo");
  for (const NetId n : {t.data_in, t.ten, t.half_sel, t.cmp_hi, t.cmp_lo, t.cmp_term, t.bist_hi,
                        t.bist_lo}) {
    c.make_input(n);
  }
  t.overhead.control_signals = 2;  // Ten + the shared scan enable

  // ---- transmitter (Fig 3) ---------------------------------------------
  // Two functional FFE tap flops.
  const NetId tx1_q = c.net("tx1_q");
  const NetId tx2_q = c.net("tx2_q");
  const std::size_t tx1 = c.add_flipflop(FlipFlop{t.data_in, tx1_q, {}, {}, {}});
  const std::size_t tx2 = c.add_flipflop(FlipFlop{tx1_q, tx2_q, {}, {}, {}});

  // DFT: probe flops on the driver side of the series capacitors.
  const NetId pr1_q = c.net("probe1_q");
  const NetId pr2_q = c.net("probe2_q");
  const std::size_t pr1 = c.add_flipflop(FlipFlop{tx1_q, pr1_q, {}, {}, {}});
  const std::size_t pr2 = c.add_flipflop(FlipFlop{tx2_q, pr2_q, {}, {}, {}});
  t.overhead.flip_flops += 2;

  // DFT: the optional half-cycle delay in the data path (the Fig-3
  // latch). Transparent in normal operation; in test mode (ten AND
  // half_sel) it delays the launched data by half a cycle. In this
  // cycle-accurate model the half-cycle shift is what flips which side
  // of the PD's edge sample the data transition lands on, so the latch
  // selects between the fresh tap (tx1) and the delayed tap (tx2).
  const NetId hold = c.net("tx_hold");
  c.add_gate(GateType::kAnd, {t.ten, t.half_sel}, hold);
  t.overhead.logic_gates += 1;
  const NetId line_pre = c.net("line_pre");
  c.add_gate(GateType::kMux2, {hold, tx1_q, tx2_q}, line_pre);
  const NetId en_one = c.net("latch_en1");
  c.add_gate(GateType::kConst1, {}, en_one);
  t.line_out = c.net("line_out");
  t.tx_latch = c.add_latch(Latch{line_pre, t.line_out, en_one});
  t.overhead.d_latches += 1;

  // ---- receiver PD (Fig 7) ----------------------------------------------
  // At scan frequency the boundary (edge) sample resolves to the value
  // launched one cycle earlier; with the half-cycle latch transparent
  // the PD therefore always asserts UP on transitions, and with the
  // latch delaying the data it always asserts DN — the paper's two-pass
  // test.
  const NetId edge_in = c.net("edge_in");
  c.add_gate(GateType::kBuf, {tx2_q}, edge_in);
  t.pd = digital::build_alexander_pd(c, "pd", t.line_out, edge_in);

  // DFT: the retiming flop clock select (phi_rx vs inverted) is a mux in
  // the clock path; modelled as a data mux between the retimed output
  // and a half-cycle (latch) version.
  const NetId retime_latch_q = c.net("retime_half_q");
  c.add_latch(Latch{t.pd.retimed, retime_latch_q, t.half_sel});
  t.retimed_out = c.net("retimed_out");
  c.add_gate(GateType::kMux2, {t.half_sel, t.pd.retimed, retime_latch_q}, t.retimed_out);
  t.overhead.muxes += 1;

  // ---- coarse control (Fig 8) -------------------------------------------
  t.fsm = digital::build_coarse_fsm(c, "fsm", t.cmp_hi, t.cmp_lo);
  t.overhead.flip_flops += 2;  // the comparator capture flops are DFT adds

  t.ring = digital::build_ring_counter(c, "ring", n_phases, t.fsm.enable, t.fsm.dir);

  t.dll_phases.reserve(n_phases);
  for (std::size_t i = 0; i < n_phases; ++i) {
    const NetId ph = c.net("phase" + std::to_string(i));
    c.make_input(ph);
    t.dll_phases.push_back(ph);
  }
  t.sw = digital::build_switch_matrix(c, "sw", t.dll_phases, t.ring.q);

  t.divider = digital::build_divider(c, "div", 3);

  // DFT: scan-clock mux for the coarse loop (clock path; modelled as a
  // mux gate so it exists in the fault universe).
  const NetId scan_clk = c.net("scan_clk");
  c.make_input(scan_clk);
  const NetId coarse_clk = c.net("coarse_clk");
  c.add_gate(GateType::kMux2, {t.ten, t.divider.tick, scan_clk}, coarse_clk);
  t.overhead.muxes += 1;

  // ---- BIST lock detector (Fig 1 / Section III) --------------------------
  // The shared scan-enable control also feeds the analog side (the
  // charge-pump bias collapse needs Sen and its complement).
  const NetId sen = c.net("sen");
  c.make_input(sen);
  t.sen = sen;
  t.sen_b = c.net("sen_b");
  c.add_gate(GateType::kInv, {sen}, t.sen_b);

  // BIST runs with test mode on but scan shifting off.
  const NetId bist_go = c.net("bist_go");
  c.add_gate(GateType::kAnd, {t.ten, t.sen_b}, bist_go);

  // Counts coarse-correction requests while the BIST runs.
  const NetId lock_inc = c.net("lock_inc");
  c.add_gate(GateType::kAnd, {t.fsm.enable, bist_go}, lock_inc);

  // The counter clears for a fresh BIST whenever scan shifting is on.
  const NetId lock_rst = c.net("lock_rst");
  c.make_input(lock_rst);
  const NetId lock_rst_int = c.net("lock_rst_int");
  c.add_gate(GateType::kOr, {lock_rst, sen}, lock_rst_int);
  t.lockdet = digital::build_saturating_counter(c, "lock", 3, lock_inc, lock_rst_int);
  t.overhead.sat_counters += 1;

  // DFT capture flops for the analog observation bits read over chain B.
  const NetId term_cap_q = c.net("term_cap_q");
  const std::size_t term_cap = c.add_flipflop(FlipFlop{t.cmp_term, term_cap_q, {}, {}, {}});
  const NetId bist_hi_q = c.net("bist_hi_q");
  const NetId bist_lo_q = c.net("bist_lo_q");
  const std::size_t bist_hi_cap = c.add_flipflop(FlipFlop{t.bist_hi, bist_hi_q, {}, {}, {}});
  const std::size_t bist_lo_cap = c.add_flipflop(FlipFlop{t.bist_lo, bist_lo_q, {}, {}, {}});
  t.overhead.flip_flops += 3;

  // Combined BIST fail flag (observable primary output): lock detector
  // saturated or the CP-BIST comparator tripped after lock.
  t.bist_fail = c.net("bist_fail");
  c.add_gate(GateType::kOr, {t.lockdet.saturated, bist_hi_q}, t.bist_fail);
  // hold + sen_b + bist_go + lock_inc + lock_rst_int + bist_fail.
  t.overhead.logic_gates += 5;

  // ---- analog comparator inventory (built in cells/, counted here) ------
  t.overhead.dc_comparators = 4;    // 2x line window (Fig 5) + 2x CP-BIST (Fig 9)
  t.overhead.fast_comparators = 2;  // bias window comparator at scan clock (Fig 6)

  // ---- scan chain membership ---------------------------------------------
  t.chain_a_flops = {tx1, tx2, pr1, pr2};
  t.chain_a_flops.insert(t.chain_a_flops.end(), t.pd.flops.begin(), t.pd.flops.end());

  t.chain_b_flops = {term_cap};
  t.chain_b_flops.insert(t.chain_b_flops.end(), t.fsm.flops.begin(), t.fsm.flops.end());
  t.chain_b_flops.push_back(bist_hi_cap);
  t.chain_b_flops.push_back(bist_lo_cap);
  t.chain_b_flops.insert(t.chain_b_flops.end(), t.ring.flops.begin(), t.ring.flops.end());
  t.chain_b_flops.insert(t.chain_b_flops.end(), t.lockdet.flops.begin(), t.lockdet.flops.end());

  // Chain B lives in the coarse (divided / scan) clock domain: shifting
  // it must not clock the data-path flops and vice versa.
  for (const std::size_t fi : t.chain_b_flops) c.flipflop(fi).domain = 1;
  return t;
}

ScanChains stitch_scan_chains(DigitalTop& top) {
  return ScanChains{digital::ScanChain(top.c, "sca", top.chain_a_flops),
                    digital::ScanChain(top.c, "scb", top.chain_b_flops)};
}

digital::StuckCampaignResult run_digital_campaign(std::size_t patterns, std::uint64_t seed) {
  DigitalTop top = build_digital_top();
  ScanChains chains = stitch_scan_chains(top);
  const std::vector<const digital::ScanChain*> chain_ptrs = {&chains.a, &chains.b};

  std::vector<digital::NetId> pis = {top.data_in, top.ten,     top.half_sel,
                                     top.cmp_hi,  top.cmp_lo,  top.cmp_term,
                                     top.bist_hi, top.bist_lo, top.sen,
                                     *top.c.find_net("scan_clk"),
                                     *top.c.find_net("lock_rst")};
  pis.insert(pis.end(), top.dll_phases.begin(), top.dll_phases.end());

  util::Pcg32 rng(seed);
  auto pats = digital::random_patterns_multi(chain_ptrs, pis, patterns, rng);

  // Targeted extras per the paper's procedures: one-hot ring preloads in
  // both directions (ring-counter test) and per-phase switch-matrix
  // routing checks, with the all-zero preload as the no-clock case.
  const std::size_t n_ring = top.ring.q.size();
  for (std::size_t hot = 0; hot < n_ring; ++hot) {
    for (int variant = 0; variant < 2; ++variant) {
      digital::MultiScanPattern p = pats.front();
      for (auto& b : p.chain_loads[1]) b = digital::Logic::k0;
      // Ring flops sit after term_cap (1) + fsm (2) + bist caps (2).
      p.chain_loads[1].at(5 + hot) = digital::Logic::k1;
      for (auto& [net, v] : p.pi_values) v = digital::Logic::k0;
      // Phase inputs: selected phase distinct from the others, both ways.
      for (std::size_t i = 0; i < top.dll_phases.size(); ++i) {
        p.pi_values.emplace_back(top.dll_phases[i],
                                 digital::from_bool((i == hot) == (variant == 0)));
      }
      p.pi_values.emplace_back(top.cmp_hi, digital::from_bool(variant == 0));
      p.pi_values.emplace_back(top.cmp_lo, digital::from_bool(variant == 1));
      p.capture_cycles = 2;
      pats.push_back(std::move(p));
    }
  }

  // Observation points beyond the chains: the retimed data output, the
  // PD and FSM outputs (they drive the charge pumps, so the analog side
  // observes them), the switch-matrix clock, the launched line data, and
  // the DFT glue outputs.
  const std::vector<digital::NetId> observe = {
      top.retimed_out, top.pd.up, top.pd.dn,   top.fsm.upst, top.fsm.dnst,
      top.sw.out,      top.line_out, top.sen_b, top.bist_fail};

  // The divider is shared across receivers and tested separately (the
  // paper, Section II); clock nets are outside the stuck-at model.
  const auto faults =
      digital::enumerate_stuck_faults(top.c, {"div_", "scan_clk", "coarse_clk"});
  return digital::run_stuck_campaign_multi(top.c, chain_ptrs, pats, faults, observe);
}

}  // namespace lsl::dft
