// Table II: circuit and control-input overhead of the DFT insertion,
// tallied from the actual construction in build_digital_top (not typed
// in by hand).
#pragma once

#include <string>
#include <vector>

#include "dft/digital_top.hpp"

namespace lsl::dft {

struct OverheadRow {
  std::string entity;
  int number = 0;
  int paper_number = 0;  // the value Table II reports, for comparison
};

/// Counts the overhead of a freshly built digital top and pairs each row
/// with the paper's Table II value.
std::vector<OverheadRow> table2_rows();

}  // namespace lsl::dft
