#include "dft/bist_test.hpp"

namespace lsl::dft {

namespace {

constexpr std::uint64_t kBistSeed = 0xb157;

lsl::link::LinkParams with_preload(lsl::link::LinkParams p) {
  // The BIST procedure scan-preloads the ring counter far from the lock
  // point so that coarse acquisition, the lock detector and the PD all
  // get exercised (a lucky power-on phase would mask dead-loop faults).
  p.phase0 = 5;
  p.vc0 = 0.6;
  return p;
}

}  // namespace

const std::array<double, 3>& cp_bist_vc_levels() {
  static const std::array<double, 3> kLevels = {0.45, 0.6, 0.75};
  return kLevels;
}

bool read_cp_bist_bits(const cells::LinkFrontend& fe_in, double vc, bool& hi, bool& lo,
                       const spice::DcOptions& solve, spice::SolveStatus* status,
                       long* iterations, const spice::SolveHints* hints) {
  cells::LinkFrontend fe = fe_in;
  auto& nl = fe.netlist();
  nl.add("bist.clamp_vc", spice::VSource{fe.cp_ports().vc, spice::kGround, vc});
  spice::DcOptions opts = solve;
  if (hints != nullptr) opts.overlay = hints->overlay;
  const std::string seed_key = "bist.vc." + std::to_string(vc);
  spice::arm_warm_start(hints, seed_key, nl);
  const auto r = fe.solve(opts);
  if (r.converged) spice::capture_seed(hints, seed_key, nl, r.x);
  if (status) *status = r.status;
  if (iterations) *iterations += r.iterations;
  if (!r.converged) return false;
  const double th = fe.spec().vdd / 2.0;
  hi = r.v(nl, fe.cp_ports().bist_hi) > th;
  lo = r.v(nl, fe.cp_ports().bist_lo) > th;
  return true;
}

namespace {

/// Strobes the CP-BIST comparator over the Vc levels. Returns false on
/// any non-convergence, leaving the failing status in `status`.
bool read_all_bist_bits(const cells::LinkFrontend& fe,
                        std::array<std::pair<bool, bool>, 3>& bits,
                        const spice::DcOptions& solve = {},
                        spice::SolveStatus* status = nullptr, long* iterations = nullptr,
                        const spice::SolveHints* hints = nullptr) {
  const auto& levels = cp_bist_vc_levels();
  for (std::size_t i = 0; i < levels.size(); ++i) {
    bool hi = false;
    bool lo = false;
    if (!read_cp_bist_bits(fe, levels[i], hi, lo, solve, status, iterations, hints)) {
      return false;
    }
    bits[i] = {hi, lo};
  }
  return true;
}

}  // namespace

BistTestReference bist_test_reference(const cells::LinkFrontend& golden,
                                      const lsl::link::LinkParams& base,
                                      const spice::SolveHints* hints) {
  BistTestReference ref;
  ref.golden = fault::measure_frontend(golden, {}, hints);
  ref.base = with_preload(base);
  if (!ref.golden.converged) return ref;
  if (!read_all_bist_bits(golden, ref.bist_bits, {}, nullptr, nullptr, hints)) return ref;
  lsl::link::Link link(ref.base);
  ref.verdict = link.run_bist(kBistSeed);
  ref.valid = ref.verdict.pass();
  return ref;
}

BistTestOutcome run_bist_test(const cells::LinkFrontend& fe, const BistTestReference& ref,
                              const spice::DcOptions& solve, const spice::SolveHints* hints) {
  BistTestOutcome out;
  const fault::FrontendMeasurements m = fault::measure_frontend(fe, solve, hints);
  out.iterations += m.iterations;
  const fault::BehavioralSignature sig = fault::derive_signature(ref.golden, m);
  if (!sig.characterized) {
    // The faulted circuit has no workable operating point the solver can
    // find — the verdict is not trustworthy either way, so the campaign
    // layer quarantines it instead of claiming a detection.
    out.anomalous = true;
    out.status = sig.status;
    return out;
  }
  const lsl::link::LinkParams p = fault::apply_signature(ref.base, sig);
  lsl::link::Link link(p);
  out.verdict = link.run_bist(kBistSeed);
  out.detected = !out.verdict.pass();

  // Post-lock structural readout of the CP-BIST comparator (Fig 9): the
  // balance node must track Vc across the window, so the readout strobes
  // several locked Vc levels on the faulted netlist.
  std::array<std::pair<bool, bool>, 3> bits{};
  spice::SolveStatus st = spice::SolveStatus::kConverged;
  if (!read_all_bist_bits(fe, bits, solve, &st, &out.iterations, hints)) {
    out.anomalous = true;
    out.status = st;
  } else if (bits != ref.bist_bits) {
    out.detected = true;
  }
  return out;
}

}  // namespace lsl::dft
