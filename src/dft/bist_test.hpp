// The paper's BIST (Section III): run the link at speed with random
// data; the receiver must lock within 2 us; the 3-bit saturating lock
// detector must not saturate; and after lock the CP-BIST window
// comparator must confirm the charge-balance node tracks Vc.
//
// For a structurally faulted frontend, the analog fault characterization
// (fault/characterize) maps the faulted netlist onto behavioral link
// parameters and the at-speed loop runs on those — the standard
// mixed-signal fault-simulation flow.
#pragma once

#include <array>
#include <utility>

#include "cells/link_frontend.hpp"
#include "fault/characterize.hpp"
#include "link/link.hpp"
#include "spice/solve_status.hpp"

namespace lsl::dft {

struct BistTestOutcome {
  /// Genuine BIST failure / readout mismatch on a characterized circuit.
  bool detected = false;
  bool anomalous = false;        // characterization failed to converge
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  long iterations = 0;
  lsl::link::BistVerdict verdict;
};

struct BistTestReference {
  fault::FrontendMeasurements golden;
  lsl::link::LinkParams base;       // healthy behavioral parameters
  lsl::link::BistVerdict verdict;   // golden BIST result (must pass)
  /// CP-BIST comparator bits read from the structural netlist at a set
  /// of locked operating points — lock can settle anywhere inside the
  /// window, and Vp must track Vc across all of it, so the readout
  /// strobes several Vc levels. One (hi, lo) pair per level.
  std::array<std::pair<bool, bool>, 3> bist_bits{};
  bool valid = false;
};

/// The Vc levels the CP-BIST readout strobes (inside the window).
const std::array<double, 3>& cp_bist_vc_levels();

/// Reads the CP-BIST comparator decisions with Vc clamped at `vc`.
/// Returns false on non-convergence; `status`/`iterations` (when
/// non-null) receive the solver status and Newton iteration count.
/// `hints` (optional): golden warm-start seeds / seed capture and the
/// fault's low-rank overlay, keyed "bist.vc.<vc>"; decisions are
/// identical with or without it.
bool read_cp_bist_bits(const cells::LinkFrontend& fe, double vc, bool& hi, bool& lo,
                       const spice::DcOptions& solve = {},
                       spice::SolveStatus* status = nullptr, long* iterations = nullptr,
                       const spice::SolveHints* hints = nullptr);

/// Captures the golden measurements and verifies the healthy BIST
/// passes. The BIST scan-preloads a far-off coarse phase so acquisition
/// is genuinely exercised.
BistTestReference bist_test_reference(const cells::LinkFrontend& golden,
                                      const lsl::link::LinkParams& base = {},
                                      const spice::SolveHints* hints = nullptr);

/// Characterizes the faulted frontend and runs the at-speed BIST.
/// `solve` threads per-fault budgets into the characterization solves.
BistTestOutcome run_bist_test(const cells::LinkFrontend& fe, const BistTestReference& ref,
                              const spice::DcOptions& solve = {},
                              const spice::SolveHints* hints = nullptr);

}  // namespace lsl::dft
