// The paper's scan test of the analog section (Section II-B):
//
//  1. Charge-pump-as-combinational test: scan mode collapses the pump
//     biases; scan chain A forces the PD to assert UP or DN, which must
//     drive Vc to the corresponding rail. De-asserting scan lets the
//     window comparator capture Vc's level into the scan chain B flops.
//     All four (UP, DN) combinations are applied.
//  2. Static scan capture: the receiver comparator decisions for both
//     data vectors are also observable while scan mode is active —
//     covering the comparator-input scan switches themselves.
//  3. Toggling-pattern test at the scan frequency (100 MHz): a transient
//     that exposes dynamic-mismatch faults (e.g. a drain open in one of
//     the transmission-gate termination devices) that leave the DC
//     solution untouched.
//
// Solver failures inside any procedure invalidate the signature and are
// reported through the structured SolveStatus on the signature / outcome
// instead of being folded into "detected".
#pragma once

#include <array>
#include <utility>
#include <vector>

#include "cells/link_frontend.hpp"
#include "spice/seed.hpp"
#include "spice/solve_status.hpp"

namespace lsl::dft {

/// Captured signature of the charge-pump combinational test: the window
/// comparator decisions after each pump drive. The weak combos come
/// through the PD via scan chain A (idle, UP, DN — never both), the
/// strong combos through the FSM outputs on scan chain B (UPst, DNst).
/// The drives are applied IN SEQUENCE: the loop-filter capacitor holds
/// Vc between drives, so a dead pull path leaves Vc at the previous
/// level instead of floating — which is exactly how the real procedure
/// catches a broken sink after first driving Vc high.
struct CpScanSignature {
  // One (hi, lo) pair per combo: idle, UP, DN, UPst, DNst.
  std::array<std::pair<bool, bool>, 5> window;
  bool valid = false;
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  long iterations = 0;
  bool operator==(const CpScanSignature& o) const { return window == o.window; }
};

/// `hints` (here and below, optional): golden warm-start seeds, seed
/// capture for golden reference runs, and the fault's low-rank overlay.
/// Results are identical with or without it — the hints only change how
/// the same solves are carried out (see spice/seed.hpp). Seed keys:
/// "scan.cp.drive.<i>" / "scan.cp.cap.<i>" per pump combo.
CpScanSignature cp_scan_signature(const cells::LinkFrontend& fe,
                                  const spice::DcOptions& solve = {},
                                  const spice::SolveHints* hints = nullptr);

/// Static scan-mode observations for both data vectors.
struct ScanStaticSignature {
  cells::LinkObservation obs1;
  cells::LinkObservation obs0;
  bool valid = false;
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  long iterations = 0;
  /// Scan strobes the same static comparator bits as the DC test (the
  /// CP-BIST bits belong to the post-lock BIST readout).
  bool matches(const ScanStaticSignature& o) const {
    return obs1.same_static(o.obs1) && obs0.same_static(o.obs0);
  }
};

/// Seed keys: "scan.static.1" / "scan.static.0".
ScanStaticSignature scan_static_signature(const cells::LinkFrontend& fe,
                                          const spice::DcOptions& solve = {},
                                          const spice::SolveHints* hints = nullptr);

/// Comparator decisions sampled at the scan clock during the toggling
/// pattern (100 MHz data through the link).
struct ToggleSignature {
  std::vector<bool> data_hi;  // line window comparator, one per sample
  std::vector<bool> data_lo;
  bool valid = false;
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  long iterations = 0;
  bool operator==(const ToggleSignature& o) const {
    return data_hi == o.data_hi && data_lo == o.data_lo;
  }
};

struct ToggleOptions {
  double scan_period = 10e-9;  // 100 MHz
  int cycles = 2;
  double dt = 0.1e-9;
  /// Strobes per cycle. The early-in-half-period strobes are the ones
  /// that expose slowed settling (dynamic mismatch); by mid-half-period
  /// a half-dead transmission gate has already caught up.
  int samples_per_cycle = 4;
  /// Wall-clock budget for the toggle transient. 0 = unlimited.
  double timeout_sec = 0.0;
};

/// Warm-starts the transient's t=0 operating point from the
/// "scan.static.0" seed (scan mode, data low — the toggle's initial
/// state); the per-step path needs no seeding, each step starts from
/// the previous one.
ToggleSignature toggle_signature(const cells::LinkFrontend& fe, const ToggleOptions& opts = {},
                                 const spice::DcOptions& solve = {},
                                 const spice::SolveHints* hints = nullptr);

struct ScanTestOutcome {
  /// Genuine signature mismatch against the golden reference.
  bool detected = false;
  /// Non-convergence in the faulty machine: verdict unreliable.
  bool anomalous = false;
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  long iterations = 0;
};

/// Reference bundle captured once on the golden frontend.
struct ScanTestReference {
  CpScanSignature cp;
  ScanStaticSignature stat;
  ToggleSignature toggle;
  bool with_toggle = true;
};

ScanTestReference scan_test_reference(const cells::LinkFrontend& golden, bool with_toggle = true,
                                      const ToggleOptions& topts = {},
                                      const spice::SolveHints* hints = nullptr);

/// Full scan test of a (faulted) frontend against the reference.
/// `solve` threads per-fault budgets into every DC solve and the
/// transient's per-step Newton.
ScanTestOutcome run_scan_test(const cells::LinkFrontend& fe, const ScanTestReference& ref,
                              const ToggleOptions& topts = {},
                              const spice::DcOptions& solve = {},
                              const spice::SolveHints* hints = nullptr);

}  // namespace lsl::dft
