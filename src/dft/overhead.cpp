#include "dft/overhead.hpp"

namespace lsl::dft {

std::vector<OverheadRow> table2_rows() {
  const DigitalTop top = build_digital_top();
  const DigitalOverhead& o = top.overhead;
  return {
      {"Flip-flop", o.flip_flops, 7},
      {"Comparators (DC)", o.dc_comparators, 4},
      {"Comparators (100 MHz)", o.fast_comparators, 2},
      {"D-Latch", o.d_latches, 1},
      {"2x1 Multiplexer", o.muxes, 2},
      {"3 bit saturating UP counter", o.sat_counters, 1},
      {"Control signals", o.control_signals, 2},
      {"Logic gates", o.logic_gates, 6},
  };
}

}  // namespace lsl::dft
