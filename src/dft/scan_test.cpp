#include "dft/scan_test.hpp"

#include "spice/transient.hpp"

namespace lsl::dft {

using cells::LinkFrontend;
using spice::kGround;
using spice::VSource;

CpScanSignature cp_scan_signature(const LinkFrontend& fe_in, const spice::DcOptions& solve,
                                  const spice::SolveHints* hints) {
  CpScanSignature sig;
  spice::DcOptions opts = solve;
  if (hints != nullptr) opts.overlay = hints->overlay;
  const double th = fe_in.spec().vdd / 2.0;
  struct Combo {
    bool up, dn, upst, dnst;
  };
  // The UP->DN ordering matters: a dead DN path leaves Vc stuck at the
  // rail the UP drive parked it at.
  const std::array<Combo, 5> combos = {Combo{false, false, false, false},
                                       {true, false, false, false},
                                       {false, true, false, false},
                                       {false, false, true, false},
                                       {false, false, false, true}};

  double vc_prev = fe_in.spec().vdd / 2.0;  // pre-test level on the cap
  for (std::size_t i = 0; i < combos.size(); ++i) {
    // Phase 1: scan mode, pump driven as a combinational element. The
    // loop-filter capacitor's memory is modelled as a weak holder at the
    // previous level: any working drive path (kOhm..MOhm) overrides it,
    // a dead path leaves Vc held.
    LinkFrontend fe = fe_in;
    fe.set_scan_mode(true);
    fe.set_pump(combos[i].up, combos[i].dn);
    fe.set_strong_pump(combos[i].upst, combos[i].dnst);
    auto& drive_nl = fe.netlist();
    const auto hold_node = drive_nl.node("scan.vc_hold");
    drive_nl.add("scan.v_hold", VSource{hold_node, kGround, vc_prev});
    drive_nl.add("scan.r_hold", spice::Resistor{hold_node, fe.cp_ports().vc, 1e9});
    const std::string drive_key = "scan.cp.drive." + std::to_string(i);
    spice::arm_warm_start(hints, drive_key, drive_nl);
    const auto r_drive = fe.solve(opts);
    sig.iterations += r_drive.iterations;
    if (!r_drive.converged) {
      sig.status = r_drive.status;
      return sig;  // valid stays false
    }
    spice::capture_seed(hints, drive_key, drive_nl, r_drive.x);
    const double vc_reached = fe.vc(r_drive);
    vc_prev = vc_reached;

    // Phase 2: scan de-asserted for one capture cycle. The cap holds Vc
    // at the driven level while the window comparator decides; model it
    // as a clamp at the reached value.
    LinkFrontend cap = fe_in;
    cap.set_scan_mode(false);
    cap.netlist().add("scan.clamp_vc", VSource{cap.cp_ports().vc, kGround, vc_reached});
    const std::string cap_key = "scan.cp.cap." + std::to_string(i);
    spice::arm_warm_start(hints, cap_key, cap.netlist());
    const auto r_cap = cap.solve(opts);
    sig.iterations += r_cap.iterations;
    if (!r_cap.converged) {
      sig.status = r_cap.status;
      return sig;
    }
    spice::capture_seed(hints, cap_key, cap.netlist(), r_cap.x);
    sig.window[i] = {r_cap.v(cap.netlist(), cap.cp_ports().cmp_hi) > th,
                     r_cap.v(cap.netlist(), cap.cp_ports().cmp_lo) > th};
  }
  sig.valid = true;
  return sig;
}

ScanStaticSignature scan_static_signature(const LinkFrontend& fe_in,
                                          const spice::DcOptions& solve,
                                          const spice::SolveHints* hints) {
  ScanStaticSignature sig;
  spice::DcOptions opts = solve;
  if (hints != nullptr) opts.overlay = hints->overlay;
  LinkFrontend fe = fe_in;
  fe.set_scan_mode(true);
  fe.set_data(true, true);
  spice::arm_warm_start(hints, "scan.static.1", fe.netlist());
  const auto r1 = fe.solve(opts);
  sig.iterations += r1.iterations;
  if (!r1.converged) {
    sig.status = r1.status;
    return sig;
  }
  spice::capture_seed(hints, "scan.static.1", fe.netlist(), r1.x);
  sig.obs1 = fe.observe(r1);
  fe.set_data(false, false);
  spice::arm_warm_start(hints, "scan.static.0", fe.netlist());
  const auto r0 = fe.solve(opts);
  sig.iterations += r0.iterations;
  if (!r0.converged) {
    sig.status = r0.status;
    return sig;
  }
  spice::capture_seed(hints, "scan.static.0", fe.netlist(), r0.x);
  sig.obs0 = fe.observe(r0);
  sig.valid = true;
  return sig;
}

ToggleSignature toggle_signature(const LinkFrontend& fe_in, const ToggleOptions& opts,
                                 const spice::DcOptions& solve,
                                 const spice::SolveHints* hints) {
  ToggleSignature sig;
  LinkFrontend fe = fe_in;
  fe.set_scan_mode(true);
  fe.set_data(false, false);

  const auto& nl = fe.netlist();
  const double vdd = fe.spec().vdd;
  const double th = vdd / 2.0;

  // Drive the data rails with complementary square waves at the scan
  // frequency. The FFE taps and the weak-driver input all toggle.
  std::unordered_map<std::string, spice::Waveform> drives;
  const auto hi_lo = spice::square_wave(0.0, vdd, opts.scan_period);
  const auto lo_hi = spice::square_wave(vdd, 0.0, opts.scan_period);
  drives[fe.src_tap_main_p()] = hi_lo;
  drives[fe.src_drv_in_p()] = lo_hi;
  drives[fe.src_tap_main_n()] = lo_hi;
  drives[fe.src_drv_in_n()] = hi_lo;
  drives["v_tx_tap_alpha_p"] = lo_hi;  // delayed-inverted tap mirrors drv_in
  drives["v_tx_tap_alpha_n"] = hi_lo;

  spice::TransientOptions topts;
  topts.t_stop = opts.cycles * opts.scan_period;
  topts.dt = opts.dt;
  topts.newton = solve;
  if (hints != nullptr) topts.newton.overlay = hints->overlay;
  topts.timeout_sec = opts.timeout_sec;
  topts.probes = {nl.node_name(fe.term_ports().cmp_p_hi), nl.node_name(fe.term_ports().cmp_p_lo),
                  nl.node_name(fe.term_ports().cmp_n_hi), nl.node_name(fe.term_ports().cmp_n_lo)};
  // The transient's t=0 operating point is scan mode with data low —
  // the same state the "scan.static.0" golden seed captured.
  spice::arm_warm_start(hints, "scan.static.0", nl);
  const auto res = spice::run_transient(nl, drives, topts);
  sig.iterations += res.newton_iterations;
  if (!res.ok) {
    sig.status = res.status;
    return sig;
  }

  // Sample at the middle of each half period (where the tester's scan
  // flops capture). Concatenate the four observer decisions.
  const auto& t = res.time;
  const double half = opts.scan_period / 2.0;
  for (int c = 0; c < opts.cycles * opts.samples_per_cycle; ++c) {
    const double ts = (c + 0.5) * half * (2.0 / opts.samples_per_cycle);
    std::size_t idx = static_cast<std::size_t>(ts / opts.dt);
    if (idx >= t.size()) idx = t.size() - 1;
    sig.data_hi.push_back(res.probe(topts.probes[0])[idx] > th);
    sig.data_hi.push_back(res.probe(topts.probes[2])[idx] > th);
    sig.data_lo.push_back(res.probe(topts.probes[1])[idx] > th);
    sig.data_lo.push_back(res.probe(topts.probes[3])[idx] > th);
  }
  sig.valid = true;
  return sig;
}

ScanTestReference scan_test_reference(const LinkFrontend& golden, bool with_toggle,
                                      const ToggleOptions& topts,
                                      const spice::SolveHints* hints) {
  ScanTestReference ref;
  ref.cp = cp_scan_signature(golden, {}, hints);
  ref.stat = scan_static_signature(golden, {}, hints);
  ref.with_toggle = with_toggle;
  if (with_toggle) ref.toggle = toggle_signature(golden, topts, {}, hints);
  return ref;
}

ScanTestOutcome run_scan_test(const LinkFrontend& fe, const ScanTestReference& ref,
                              const ToggleOptions& topts, const spice::DcOptions& solve,
                              const spice::SolveHints* hints) {
  ScanTestOutcome out;

  const CpScanSignature cp = cp_scan_signature(fe, solve, hints);
  out.iterations += cp.iterations;
  if (!cp.valid) {
    out.anomalous = true;
    out.status = cp.status;
    return out;
  }
  if (ref.cp.valid && !(cp == ref.cp)) {
    out.detected = true;
    return out;
  }

  const ScanStaticSignature stat = scan_static_signature(fe, solve, hints);
  out.iterations += stat.iterations;
  if (!stat.valid) {
    out.anomalous = true;
    out.status = stat.status;
    return out;
  }
  if (ref.stat.valid && !stat.matches(ref.stat)) {
    out.detected = true;
    return out;
  }

  if (ref.with_toggle) {
    const ToggleSignature tog = toggle_signature(fe, topts, solve, hints);
    out.iterations += tog.iterations;
    if (!tog.valid) {
      out.anomalous = true;
      out.status = tog.status;
      return out;
    }
    if (ref.toggle.valid && !(tog == ref.toggle)) {
      out.detected = true;
      return out;
    }
  }
  return out;
}

}  // namespace lsl::dft
