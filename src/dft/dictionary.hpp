// Fault dictionary and diagnosis.
//
// Detection asks "is the part bad?"; diagnosis asks "which defect is
// it?" — the question failure analysis puts to the same DFT hardware.
// For every structural fault the dictionary records the full observable
// signature across the paper's three test stages (every comparator bit
// of both DC vectors, the charge-pump scan captures, the toggle-test
// strobes, the post-lock CP-BIST readout, and the BIST verdict flags).
// Faults with identical signatures form an equivalence class: the
// diagnosis resolution of the DFT.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cells/link_frontend.hpp"
#include "dft/bist_test.hpp"
#include "dft/dc_test.hpp"
#include "dft/scan_test.hpp"
#include "fault/structural.hpp"

namespace lsl::dft {

/// References the signature capture needs (built once from the golden).
struct DictionaryContext {
  cells::LinkFrontend golden;         // open-loop (scan/BIST procedures)
  cells::LinkFrontend golden_closed;  // closed-loop (DC test)
  DcTestReference dc_ref;
  ScanTestReference scan_ref;
  BistTestReference bist_ref;
  bool with_toggle = true;

  explicit DictionaryContext(const cells::LinkFrontend& fe, bool with_toggle = true);
};

/// Captures the observable signature of a (faulted) frontend pair.
/// Characters: '0'/'1' = solid levels, 'w' = mid-rail (weak), '!' = a
/// non-convergent stage (itself diagnostic).
std::string capture_signature(const DictionaryContext& ctx, const cells::LinkFrontend& faulty,
                              const cells::LinkFrontend& faulty_closed);

struct DictionaryEntry {
  fault::StructuralFault fault;
  std::string signature;
};

class FaultDictionary {
 public:
  void add(DictionaryEntry entry);

  const std::vector<DictionaryEntry>& entries() const { return entries_; }
  /// Signature of the fault-free machine (for "no defect found").
  void set_golden_signature(std::string sig) { golden_sig_ = std::move(sig); }
  const std::string& golden_signature() const { return golden_sig_; }

  /// All faults whose recorded signature matches an observed one.
  std::vector<const DictionaryEntry*> diagnose(const std::string& observed) const;

  struct Resolution {
    std::size_t faults = 0;            // dictionary size
    std::size_t detected = 0;          // signature differs from golden
    std::size_t classes = 0;           // distinct signatures among detected
    std::size_t uniquely_diagnosed = 0;  // classes of size 1
    std::size_t largest_class = 0;
    double avg_class_size = 0.0;
  };
  Resolution resolution() const;

 private:
  std::vector<DictionaryEntry> entries_;
  std::string golden_sig_;
};

struct DictionaryOptions {
  std::vector<std::string> prefixes;
  bool functional_circuit_only = true;
  std::size_t max_faults = 0;
  bool with_toggle = true;
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Builds the dictionary over the structural fault universe (gate opens
/// use the bulk-leak variant, matching the campaign default).
FaultDictionary build_dictionary(const cells::LinkFrontend& golden,
                                 const DictionaryOptions& opts = {});

}  // namespace lsl::dft
