#include "dft/dictionary.hpp"

#include <algorithm>
#include <map>

#include "fault/characterize.hpp"
#include "link/link.hpp"
#include "util/log.hpp"

namespace lsl::dft {

namespace {

char level_char(double volts, double vdd) {
  if (volts > 2.0 * vdd / 3.0) return '1';
  if (volts < vdd / 3.0) return '0';
  return 'w';
}

void append_observation(std::string& sig, const cells::LinkObservation& o) {
  for (std::size_t b = 0; b < cells::LinkObservation::kBitCount; ++b) {
    sig.push_back(level_char(o.volts[b], o.vdd));
  }
}

}  // namespace

DictionaryContext::DictionaryContext(const cells::LinkFrontend& fe, bool toggle)
    : golden(fe), golden_closed([&fe] {
        cells::LinkFrontendSpec spec = fe.spec();
        spec.close_coarse_loop = true;
        return cells::LinkFrontend(spec);
      }()),
      with_toggle(toggle) {
  dc_ref = dc_test_reference(golden_closed);
  scan_ref = scan_test_reference(golden, with_toggle);
  bist_ref = bist_test_reference(golden);
}

std::string capture_signature(const DictionaryContext& ctx, const cells::LinkFrontend& faulty,
                              const cells::LinkFrontend& faulty_closed) {
  std::string sig;
  sig.reserve(96);

  // --- DC test observations, both vectors, closed loop ------------------
  {
    cells::LinkFrontend fe = faulty_closed;
    for (const bool d : {true, false}) {
      fe.set_data(d, d);
      const auto r = fe.solve();
      if (!r.converged) {
        sig += "!!!!!!!!!!";
      } else {
        append_observation(sig, fe.observe(r));
      }
    }
  }

  // --- charge-pump scan captures ----------------------------------------
  {
    const CpScanSignature cp = cp_scan_signature(faulty);
    if (!cp.valid) {
      sig += "!!!!!!!!!!";
    } else {
      for (const auto& [hi, lo] : cp.window) {
        sig.push_back(hi ? '1' : '0');
        sig.push_back(lo ? '1' : '0');
      }
    }
  }

  // --- static scan observations ------------------------------------------
  {
    const ScanStaticSignature st = scan_static_signature(faulty);
    if (!st.valid) {
      sig += "!!!!!!!!!!!!!!!!!!!!";
    } else {
      append_observation(sig, st.obs1);
      append_observation(sig, st.obs0);
    }
  }

  // --- toggle-test strobes -------------------------------------------------
  if (ctx.with_toggle) {
    const ToggleSignature tog = toggle_signature(faulty);
    if (!tog.valid) {
      sig += "!";
    } else {
      for (const bool b : tog.data_hi) sig.push_back(b ? '1' : '0');
      for (const bool b : tog.data_lo) sig.push_back(b ? '1' : '0');
    }
  }

  // --- CP-BIST post-lock readout + BIST verdict ----------------------------
  {
    bool any_fail = false;
    for (const double vc : cp_bist_vc_levels()) {
      bool hi = false;
      bool lo = false;
      if (!read_cp_bist_bits(faulty, vc, hi, lo)) {
        sig += "!!";
        any_fail = true;
        continue;
      }
      sig.push_back(hi ? '1' : '0');
      sig.push_back(lo ? '1' : '0');
    }
    if (!any_fail) {
      const BistTestOutcome bist = run_bist_test(faulty, ctx.bist_ref);
      sig.push_back(bist.verdict.locked_in_budget ? '1' : '0');
      sig.push_back(bist.verdict.lock_counter_ok ? '1' : '0');
      sig.push_back(bist.verdict.cp_bist_ok ? '1' : '0');
      sig.push_back(bist.verdict.data_ok ? '1' : '0');
    } else {
      sig += "!!!!";
    }
  }
  return sig;
}

void FaultDictionary::add(DictionaryEntry entry) { entries_.push_back(std::move(entry)); }

std::vector<const DictionaryEntry*> FaultDictionary::diagnose(const std::string& observed) const {
  std::vector<const DictionaryEntry*> out;
  for (const auto& e : entries_) {
    if (e.signature == observed) out.push_back(&e);
  }
  return out;
}

FaultDictionary::Resolution FaultDictionary::resolution() const {
  Resolution r;
  r.faults = entries_.size();
  std::map<std::string, std::size_t> classes;
  for (const auto& e : entries_) {
    if (e.signature == golden_sig_) continue;  // undetected: no diagnosis
    ++r.detected;
    ++classes[e.signature];
  }
  r.classes = classes.size();
  for (const auto& [sig, count] : classes) {
    if (count == 1) ++r.uniquely_diagnosed;
    r.largest_class = std::max(r.largest_class, count);
  }
  r.avg_class_size =
      r.classes == 0 ? 0.0 : static_cast<double>(r.detected) / static_cast<double>(r.classes);
  return r;
}

FaultDictionary build_dictionary(const cells::LinkFrontend& golden,
                                 const DictionaryOptions& opts) {
  DictionaryContext ctx(golden, opts.with_toggle);
  FaultDictionary dict;
  dict.set_golden_signature(capture_signature(ctx, ctx.golden, ctx.golden_closed));

  const std::vector<std::string> excludes =
      opts.functional_circuit_only ? fault::test_circuitry_prefixes() : std::vector<std::string>{};
  auto faults = fault::enumerate_structural_faults(golden.netlist(), opts.prefixes, excludes);
  if (opts.max_faults != 0 && faults.size() > opts.max_faults) faults.resize(opts.max_faults);

  const auto vdd_open = *ctx.golden.netlist().find_node("vdd");
  const auto vdd_closed = *ctx.golden_closed.netlist().find_node("vdd");

  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (opts.progress) opts.progress(i, faults.size());
    const auto& f = faults[i];
    cells::LinkFrontend faulty = ctx.golden;
    cells::LinkFrontend faulty_closed = ctx.golden_closed;
    const auto leak = f.needs_leak_variants() ? fault::bulk_leak(ctx.golden.netlist(), f)
                                              : fault::OpenLeak::kToGround;
    if (!fault::inject(faulty.netlist(), f, leak, vdd_open) ||
        !fault::inject(faulty_closed.netlist(), f, leak, vdd_closed)) {
      util::log_error("dictionary: failed to inject " + f.describe());
      continue;
    }
    dict.add({f, capture_signature(ctx, faulty, faulty_closed)});
  }
  return dict;
}

}  // namespace lsl::dft
