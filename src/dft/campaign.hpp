// Full structural-fault campaign over the analog link: enumerates the
// Table-I fault universe, injects each fault into a copy of the golden
// frontend, and applies the paper's three test stages (DC test, scan
// test, BIST). Gate opens run both floating-gate leak variants and
// count as detected by a stage only if BOTH variants are.
//
// The output carries everything needed to regenerate Table I and the
// 50.4% -> 74.3% -> 94.8% coverage progression of Section IV.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cells/link_frontend.hpp"
#include "dft/bist_test.hpp"
#include "dft/dc_test.hpp"
#include "dft/scan_test.hpp"
#include "fault/structural.hpp"
#include "util/stats.hpp"

namespace lsl::dft {

struct CampaignOptions {
  /// Cell prefixes included in the universe (empty = every MOSFET/cap in
  /// the frontend netlist).
  std::vector<std::string> prefixes;
  /// Exclude the DFT observers (DC-test / bias / CP-BIST comparators)
  /// from the universe — the paper's Table I covers the functional
  /// analog circuit; the observers are Table II overhead.
  bool functional_circuit_only = true;
  bool with_scan_toggle = true;
  bool with_bist = true;
  /// 0 = full universe; otherwise only the first N faults (fast tests).
  std::size_t max_faults = 0;
  /// Gate-open handling. Default (false): the floating gate leaks toward
  /// the device bulk (NMOS -> GND, PMOS -> VDD), the physically likely
  /// level. Pessimistic (true): simulate both leak directions and count
  /// a detection only when BOTH are flagged.
  bool pessimistic_gate_opens = false;
  ToggleOptions toggle;
  /// Progress callback (fault index, total), for long campaign runs.
  std::function<void(std::size_t, std::size_t)> progress;
};

struct FaultOutcome {
  fault::StructuralFault fault;
  bool dc = false;
  bool scan = false;
  bool bist = false;
  bool anomalous = false;
  bool detected_any() const { return dc || scan || bist; }
};

struct ClassStats {
  util::Coverage dc;        // detected by the DC test alone
  util::Coverage scan;      // detected by the scan test alone
  util::Coverage bist;      // detected by the BIST alone
  util::Coverage cum_dc;    // cumulative: DC
  util::Coverage cum_scan;  // cumulative: DC + scan
  util::Coverage cum_all;   // cumulative: DC + scan + BIST (Table I)
};

struct CampaignReport {
  std::map<fault::FaultClass, ClassStats> per_class;
  ClassStats total;
  std::size_t anomalous = 0;
  std::vector<FaultOutcome> outcomes;

  std::vector<const FaultOutcome*> undetected() const;
};

CampaignReport run_campaign(const cells::LinkFrontend& golden, const CampaignOptions& opts = {});

}  // namespace lsl::dft
