// Full structural-fault campaign over the analog link: enumerates the
// Table-I fault universe, injects each fault into a copy of the golden
// frontend, and applies the paper's three test stages (DC test, scan
// test, BIST). Gate opens run both floating-gate leak variants and
// count as detected by a stage only if BOTH variants are.
//
// Survival layer: faulted netlists are exactly the inputs that make the
// solver fail, so every fault is partitioned into one of three verdicts:
//   detected    — a genuine signature mismatch on converged solves
//   undetected  — all stages converged and agreed with the golden machine
//   quarantined — the simulation never produced a trustworthy verdict
//                 (solver failure or per-fault budget blown)
// Quarantined faults are excluded from BOTH the numerator and the
// denominator of every coverage figure — counting a non-converged fault
// as "detected" would inflate coverage with faults the tester never
// actually observed. The campaign can checkpoint each outcome to a JSONL
// file and resume from it after an interruption.
//
// The output carries everything needed to regenerate Table I and the
// 50.4% -> 74.3% -> 94.8% coverage progression of Section IV.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cells/link_frontend.hpp"
#include "dft/bist_test.hpp"
#include "dft/dc_test.hpp"
#include "dft/scan_test.hpp"
#include "fault/structural.hpp"
#include "spice/solve_status.hpp"
#include "util/stats.hpp"

namespace lsl::dft {

class FaultDictionary;

/// Final classification of one fault's campaign run.
enum class FaultVerdict { kDetected, kUndetected, kQuarantined };

std::string fault_verdict_name(FaultVerdict v);
bool fault_verdict_from_name(const std::string& name, FaultVerdict& out);

/// Per-fault simulation budgets. A fault that blows a budget is
/// quarantined instead of stalling the whole campaign.
struct CampaignBudget {
  /// Wall-clock seconds per fault (per leak variant). 0 = unlimited.
  double per_fault_sec = 0.0;
  /// Newton iterations per fault (per leak variant). 0 = unlimited.
  long max_newton_per_fault = 0;
};

/// Bit positions of FaultOutcome::stages_run: which stages were actually
/// simulated (as opposed to skipped by a blown budget, a disabled BIST,
/// or the adaptive short-circuit).
enum : unsigned {
  kStageBitDc = 1u,
  kStageBitScan = 2u,
  kStageBitBist = 4u,
};

/// Detection-likelihood / cost model that drives adaptive stage
/// ordering. For each fault class the three stages are ordered by
/// expected detections per unit cost (rate / cost, descending; ties
/// resolve to the canonical DC -> scan -> BIST order), so the stage
/// most likely to detect cheaply runs first and a detection can
/// short-circuit the rest. The ordering is decided once per campaign
/// from these priors — a pure function of the fault class — so it is
/// identical on every thread and across checkpoint/resume, preserving
/// the campaign's determinism contract. The default-constructed priors
/// (all rates equal) therefore reproduce the canonical order exactly.
struct StagePriors {
  struct Rates {
    double dc = 0.5;
    double scan = 0.5;
    double bist = 0.5;
  };
  /// Per-class detection-rate estimates; classes absent from the map
  /// use the (uniform) defaults.
  std::map<fault::FaultClass, Rates> rates;
  /// Relative stage costs (DC: 2 solves; scan: ~12 solves + a
  /// transient; BIST: characterization + behavioral run + readout).
  double cost_dc = 1.0;
  double cost_scan = 10.0;
  double cost_bist = 15.0;
};

/// Seeds StagePriors from a fault dictionary's recorded signatures: the
/// per-class fraction of faults whose signature differs from the golden
/// in each stage's region (DC observations / scan captures / BIST
/// readout+verdict), Laplace-smoothed so tiny dictionaries cannot pin a
/// rate to 0 or 1.
StagePriors stage_priors_from_dictionary(const FaultDictionary& dict);

struct CampaignOptions {
  /// Campaign executor width. 1 (default) runs the classic serial loop
  /// on the calling thread; 0 resolves to hardware_concurrency; N > 1
  /// runs N pool workers, each with its own cloned golden frontends and
  /// solver scratch. Coverage reports are byte-identical (after
  /// canonical ordering) at every thread count as long as the per-fault
  /// wall-clock budget is unlimited — a wall-clock budget can time out
  /// differently under load, which is inherent, not a scheduler bug.
  ///
  /// Threading contract for the callbacks below: with num_threads != 1,
  /// `progress` and `abort_check` are invoked from worker threads but
  /// always serialized under the campaign's writer mutex (the same lock
  /// that guards checkpoint appends), so existing single-threaded
  /// callbacks stay race-free — they just must not call back into the
  /// campaign. `progress` reports faults as workers pick them up, so
  /// indices arrive out of order; treat the first argument as an
  /// identifier, not a monotone counter.
  std::size_t num_threads = 1;
  /// Cell prefixes included in the universe (empty = every MOSFET/cap in
  /// the frontend netlist).
  std::vector<std::string> prefixes;
  /// Exclude the DFT observers (DC-test / bias / CP-BIST comparators)
  /// from the universe — the paper's Table I covers the functional
  /// analog circuit; the observers are Table II overhead.
  bool functional_circuit_only = true;
  bool with_scan_toggle = true;
  bool with_bist = true;
  /// 0 = full universe; otherwise only the first N faults (fast tests).
  std::size_t max_faults = 0;
  /// Gate-open handling. Default (false): the floating gate leaks toward
  /// the device bulk (NMOS -> GND, PMOS -> VDD), the physically likely
  /// level. Pessimistic (true): simulate both leak directions and count
  /// a detection only when BOTH are flagged.
  bool pessimistic_gate_opens = false;
  ToggleOptions toggle;
  /// Per-fault simulation budgets (blown budget => quarantine).
  CampaignBudget budget;
  /// JSONL checkpoint file: each completed fault appends one line.
  /// Empty = no checkpointing.
  std::string checkpoint_path;
  /// Load outcomes already present in `checkpoint_path` and skip those
  /// faults instead of re-running them.
  bool resume = false;
  /// Progress callback (fault index, total), for long campaign runs.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Cooperative interruption: polled before each fault; returning true
  /// stops the campaign (report.complete = false). Combined with
  /// checkpointing this makes campaigns kill-and-resume safe.
  std::function<bool()> abort_check;

  // --- Incremental-engine kill switches (all default ON) ---------------
  //
  // Each mechanism is independently disableable and verdict-preserving:
  // any combination produces the identical detected / undetected /
  // quarantined partition and identical per-class Table I coverage —
  // the switches change how fast the campaign runs, never what it
  // concludes (DESIGN.md, "Why incremental fault simulation preserves
  // verdicts"). As with thread counts, the guarantee assumes unlimited
  // wall-clock/iteration budgets: a finite budget can run out at a
  // different point when the work is ordered differently, which is
  // inherent to budgets, not to the mechanisms.

  /// Capture the golden operating points once per stage stimulus while
  /// building the references, share them read-only (immutable SeedBank)
  /// across workers, and warm-start every faulted solve from the golden
  /// solution ("golden-warm-start" ladder rung; failures fall through
  /// to the unchanged cold-start ladder).
  bool reuse_golden = true;
  /// Solve short-class faults as rank-1 conductance updates over the
  /// golden structure via Sherman-Morrison-Woodbury against the cached
  /// golden factorization (fault::low_rank_overlay). Guarded by the
  /// same backward-error gate as the sparse engine: a residual reject
  /// falls back to the exact full-stamp path and is counted in
  /// campaign.smw.fallbacks.
  bool low_rank_injection = true;
  /// Pre-partition the universe into structural equivalence classes
  /// (fault::collapse_equivalences on BOTH frontends — open and closed
  /// wiring differ — intersected) and simulate one representative per
  /// class, fanning the bit-identical outcome out to the members
  /// (FaultOutcome::collapsed_into names the representative).
  bool collapse_faults = true;
  /// Order the DC / scan / BIST stages per fault class by `priors`
  /// (detections per unit cost) and short-circuit the remaining stages
  /// once a detection is in hand. Never applied to pessimistic gate
  /// opens (their detection is an AND across leak variants, which a
  /// per-variant short-circuit would break).
  bool adaptive_stage_order = true;
  /// Stage-ordering priors for adaptive_stage_order; seed from a fault
  /// dictionary via stage_priors_from_dictionary(), or leave default
  /// (uniform rates => canonical order, short-circuit still active).
  StagePriors priors;
};

struct FaultOutcome {
  fault::StructuralFault fault;
  std::size_t index = 0;  // position in the enumerated universe
  bool dc = false;
  bool scan = false;
  bool bist = false;
  /// Some solve inside a stage failed (even if another stage detected).
  bool anomalous = false;
  FaultVerdict verdict = FaultVerdict::kUndetected;
  /// First failing solver status (kConverged when everything solved).
  spice::SolveStatus status = spice::SolveStatus::kConverged;
  double elapsed_sec = 0.0;
  long newton_iterations = 0;
  bool budget_blown = false;
  /// Bitmask (kStageBitDc | kStageBitScan | kStageBitBist) of stages
  /// actually simulated. A stage absent from the mask contributes a
  /// false detection bit — either it was disabled/budget-skipped (as
  /// before) or the adaptive short-circuit proved it redundant for the
  /// verdict (a detection was already in hand).
  unsigned stages_run = 0;
  /// When structural fault collapsing folded this fault into an
  /// equivalence class simulated once, the representative's fault
  /// index. Unset for representatives, singletons, and collapsing-off
  /// runs; the folded outcome's bits are bit-identical to what a
  /// dedicated simulation would produce (the member netlists differ
  /// only in device names, which stamp nothing).
  std::optional<std::size_t> collapsed_into;
  bool detected_any() const { return dc || scan || bist; }
};

struct ClassStats {
  util::Coverage dc;        // detected by the DC test alone
  util::Coverage scan;      // detected by the scan test alone
  util::Coverage bist;      // detected by the BIST alone
  util::Coverage cum_dc;    // cumulative: DC
  util::Coverage cum_scan;  // cumulative: DC + scan
  util::Coverage cum_all;   // cumulative: DC + scan + BIST (Table I)
  /// Faults excluded from the coverage denominators above.
  std::size_t quarantined = 0;
};

/// How the campaign actually executed: recorded into every report so
/// the benches can serialize the perf trajectory next to the coverage
/// figures.
struct CampaignExecStats {
  /// Resolved worker count (after the 0 = hardware_concurrency mapping).
  std::size_t threads_used = 1;
  /// Faults freshly simulated by each worker (resumed faults excluded).
  std::vector<std::size_t> per_worker_faults;
  /// Work-stealing traffic: faults each worker pulled from another
  /// worker's deque. Empty for the serial path (there is no pool).
  std::vector<std::size_t> per_worker_steals;
  /// Sum of per_worker_steals.
  std::size_t steals = 0;
  /// Wall clock of the whole campaign run.
  double wall_clock_sec = 0.0;
  /// Sum of per-fault simulation time across freshly run faults — the
  /// serial cost of the same work.
  double fault_cpu_sec = 0.0;
  /// Newton iterations summed over freshly simulated faults (resumed
  /// outcomes excluded, like fault_cpu_sec).
  long newton_iterations = 0;
  /// Point-in-time snapshot of the process-wide util::Metrics registry
  /// taken as the campaign finished (see docs/OBSERVABILITY.md for the
  /// schema). Campaign benches embed it next to the coverage figures.
  std::string metrics_json;
  /// Effective speedup over a serial run of the same faults:
  /// fault_cpu_sec / wall_clock_sec (≈1 for the serial path). Absent
  /// when nothing was measured — a default-constructed stats object or
  /// a fully-resumed campaign that simulated zero fresh faults —
  /// instead of a misleading 0.0 or inf.
  std::optional<double> speedup() const {
    if (wall_clock_sec <= 0.0 || fault_cpu_sec <= 0.0) return std::nullopt;
    return fault_cpu_sec / wall_clock_sec;
  }
};

struct CampaignReport {
  std::map<fault::FaultClass, ClassStats> per_class;
  ClassStats total;
  CampaignExecStats exec;
  /// Faults with at least one failed solve (quarantined or not).
  std::size_t anomalous = 0;
  /// Faults excluded from coverage (solver failure or budget blown).
  std::size_t quarantined = 0;
  /// False when an abort_check stopped the campaign before the last
  /// fault; the checkpoint file holds the completed prefix.
  bool complete = true;
  std::vector<FaultOutcome> outcomes;

  std::vector<const FaultOutcome*> undetected() const;
  std::vector<const FaultOutcome*> quarantined_faults() const;
};

CampaignReport run_campaign(const cells::LinkFrontend& golden, const CampaignOptions& opts = {});

/// Canonical (timing-free) JSONL serialization of one outcome: the
/// checkpoint line with elapsed_sec zeroed, so two runs of the same
/// universe produce byte-identical lines regardless of machine load.
std::string outcome_canonical_json(const FaultOutcome& o);

/// Canonical JSONL of a whole report: outcomes sorted by fault index,
/// one canonical line each. Byte-identical across thread counts,
/// checkpoint orderings, and serial<->parallel resume histories — the
/// equality the differential tests and the bench's identity check
/// assert.
std::string report_canonical_jsonl(const CampaignReport& report);

}  // namespace lsl::dft
