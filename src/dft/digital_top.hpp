// The complete digital side of the link with DFT inserted, mirroring
// Fig 1/3/7/8:
//
//   Scan chain A (data path):   TX FFE tap flops -> DFT probe flops ->
//                               (D-latch half-cycle hook) -> Alexander PD
//                               flops -> retiming flop (phi_rx mux).
//   Scan chain B (clock ctrl):  termination-comparator capture flop ->
//                               FSM window-capture flops -> CP-BIST
//                               capture flops -> ring counter ->
//                               lock detector.
//
// Analog comparator outputs enter as primary inputs (on silicon they are
// the Fig 4/5/6/8/9 cells); the campaign substitutes their faulted
// values. Every element added purely for test is tagged so the Table II
// overhead is *counted from the construction*, not asserted.
#pragma once

#include <cstddef>
#include <vector>

#include "digital/blocks.hpp"
#include "digital/circuit.hpp"
#include "digital/scan.hpp"
#include "digital/stuck.hpp"

namespace lsl::dft {

/// Table II rows, counted during construction.
struct DigitalOverhead {
  int flip_flops = 0;        // DFT-only flops
  int dc_comparators = 0;    // analog cells, counted by the top builder
  int fast_comparators = 0;  // 100 MHz (scan-frequency) comparators
  int d_latches = 0;
  int muxes = 0;
  int sat_counters = 0;
  int control_signals = 0;
  int logic_gates = 0;
};

struct DigitalTop {
  digital::Circuit c;

  // Primary inputs.
  digital::NetId data_in = 0;
  digital::NetId ten = 0;            // test-mode enable (Table II ctrl #1)
  digital::NetId half_sel = 0;       // half-cycle retime select
  digital::NetId cmp_hi = 0;         // analog window comparator outputs
  digital::NetId cmp_lo = 0;
  digital::NetId cmp_term = 0;       // termination data comparator output
  digital::NetId bist_hi = 0;        // CP-BIST comparator outputs
  digital::NetId bist_lo = 0;
  std::vector<digital::NetId> dll_phases;  // switch matrix phase inputs

  // Blocks.
  digital::AlexanderPdBlock pd;
  digital::CoarseFsmBlock fsm;
  digital::RingCounterBlock ring;
  digital::SwitchMatrixBlock sw;
  digital::SaturatingCounterBlock lockdet;
  digital::DividerBlock divider;

  // Observables / DFT glue.
  digital::NetId retimed_out = 0;
  digital::NetId line_out = 0;       // TX output into the "interconnect"
  digital::NetId sen = 0;            // shared scan-enable control input
  digital::NetId sen_b = 0;          // its complement (analog hand-off)
  digital::NetId bist_fail = 0;      // combined BIST fail flag

  std::size_t tx_latch = 0;          // latch index (half-cycle hook)

  // Scan chains (created after all flops exist).
  std::vector<std::size_t> chain_a_flops;
  std::vector<std::size_t> chain_b_flops;

  DigitalOverhead overhead;
};

/// Builds the full DFT-inserted digital top. `n_phases` matches the DLL.
DigitalTop build_digital_top(std::size_t n_phases = 10);

/// Stitches the two scan chains (separate call so tests can exercise the
/// pre-scan circuit too). Returns chains bound to top.c.
struct ScanChains {
  digital::ScanChain a;
  digital::ScanChain b;
};
ScanChains stitch_scan_chains(DigitalTop& top);

/// Runs the digital stuck-at campaign over the whole top (faults on
/// every net, observation through both chains simultaneously), backing
/// the paper's "100% stuck-at coverage" claim with a measurement.
digital::StuckCampaignResult run_digital_campaign(std::size_t patterns = 128,
                                                  std::uint64_t seed = 1);

}  // namespace lsl::dft
