# Empty dependencies file for bist_monitor.
# This may be replaced when dependencies are built.
