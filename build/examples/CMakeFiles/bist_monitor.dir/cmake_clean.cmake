file(REMOVE_RECURSE
  "CMakeFiles/bist_monitor.dir/bist_monitor.cpp.o"
  "CMakeFiles/bist_monitor.dir/bist_monitor.cpp.o.d"
  "bist_monitor"
  "bist_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
