# Empty dependencies file for export_decks.
# This may be replaced when dependencies are built.
