file(REMOVE_RECURSE
  "CMakeFiles/export_decks.dir/export_decks.cpp.o"
  "CMakeFiles/export_decks.dir/export_decks.cpp.o.d"
  "export_decks"
  "export_decks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_decks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
