# Empty compiler generated dependencies file for scan_debug.
# This may be replaced when dependencies are built.
