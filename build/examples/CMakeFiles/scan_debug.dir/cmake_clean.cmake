file(REMOVE_RECURSE
  "CMakeFiles/scan_debug.dir/scan_debug.cpp.o"
  "CMakeFiles/scan_debug.dir/scan_debug.cpp.o.d"
  "scan_debug"
  "scan_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
