# Empty compiler generated dependencies file for vcdl_characterization.
# This may be replaced when dependencies are built.
