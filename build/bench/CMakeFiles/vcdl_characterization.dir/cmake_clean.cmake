file(REMOVE_RECURSE
  "CMakeFiles/vcdl_characterization.dir/vcdl_characterization.cpp.o"
  "CMakeFiles/vcdl_characterization.dir/vcdl_characterization.cpp.o.d"
  "vcdl_characterization"
  "vcdl_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcdl_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
