file(REMOVE_RECURSE
  "CMakeFiles/eye_equalization.dir/eye_equalization.cpp.o"
  "CMakeFiles/eye_equalization.dir/eye_equalization.cpp.o.d"
  "eye_equalization"
  "eye_equalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eye_equalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
