# Empty compiler generated dependencies file for eye_equalization.
# This may be replaced when dependencies are built.
