# Empty dependencies file for coverage_progression.
# This may be replaced when dependencies are built.
