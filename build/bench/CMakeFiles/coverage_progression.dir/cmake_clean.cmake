file(REMOVE_RECURSE
  "CMakeFiles/coverage_progression.dir/coverage_progression.cpp.o"
  "CMakeFiles/coverage_progression.dir/coverage_progression.cpp.o.d"
  "coverage_progression"
  "coverage_progression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
