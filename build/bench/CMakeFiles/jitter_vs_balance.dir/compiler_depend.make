# Empty compiler generated dependencies file for jitter_vs_balance.
# This may be replaced when dependencies are built.
