file(REMOVE_RECURSE
  "CMakeFiles/jitter_vs_balance.dir/jitter_vs_balance.cpp.o"
  "CMakeFiles/jitter_vs_balance.dir/jitter_vs_balance.cpp.o.d"
  "jitter_vs_balance"
  "jitter_vs_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitter_vs_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
