file(REMOVE_RECURSE
  "CMakeFiles/multilane_test_time.dir/multilane_test_time.cpp.o"
  "CMakeFiles/multilane_test_time.dir/multilane_test_time.cpp.o.d"
  "multilane_test_time"
  "multilane_test_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilane_test_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
