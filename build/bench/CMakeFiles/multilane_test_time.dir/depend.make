# Empty dependencies file for multilane_test_time.
# This may be replaced when dependencies are built.
