file(REMOVE_RECURSE
  "CMakeFiles/fig2_lock_transient.dir/fig2_lock_transient.cpp.o"
  "CMakeFiles/fig2_lock_transient.dir/fig2_lock_transient.cpp.o.d"
  "fig2_lock_transient"
  "fig2_lock_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lock_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
