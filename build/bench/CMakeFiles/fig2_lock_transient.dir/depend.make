# Empty dependencies file for fig2_lock_transient.
# This may be replaced when dependencies are built.
