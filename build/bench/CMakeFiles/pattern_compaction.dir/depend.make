# Empty dependencies file for pattern_compaction.
# This may be replaced when dependencies are built.
