file(REMOVE_RECURSE
  "CMakeFiles/pattern_compaction.dir/test_compaction.cpp.o"
  "CMakeFiles/pattern_compaction.dir/test_compaction.cpp.o.d"
  "pattern_compaction"
  "pattern_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
