# Empty compiler generated dependencies file for drift_tracking.
# This may be replaced when dependencies are built.
