file(REMOVE_RECURSE
  "CMakeFiles/drift_tracking.dir/drift_tracking.cpp.o"
  "CMakeFiles/drift_tracking.dir/drift_tracking.cpp.o.d"
  "drift_tracking"
  "drift_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
