file(REMOVE_RECURSE
  "CMakeFiles/channel_response.dir/channel_response.cpp.o"
  "CMakeFiles/channel_response.dir/channel_response.cpp.o.d"
  "channel_response"
  "channel_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
