# Empty compiler generated dependencies file for channel_response.
# This may be replaced when dependencies are built.
