file(REMOVE_RECURSE
  "CMakeFiles/offset_montecarlo.dir/offset_montecarlo.cpp.o"
  "CMakeFiles/offset_montecarlo.dir/offset_montecarlo.cpp.o.d"
  "offset_montecarlo"
  "offset_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offset_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
