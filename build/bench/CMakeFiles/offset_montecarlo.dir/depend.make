# Empty dependencies file for offset_montecarlo.
# This may be replaced when dependencies are built.
