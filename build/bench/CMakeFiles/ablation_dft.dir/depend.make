# Empty dependencies file for ablation_dft.
# This may be replaced when dependencies are built.
