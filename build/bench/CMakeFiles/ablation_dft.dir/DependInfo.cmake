
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_dft.cpp" "bench/CMakeFiles/ablation_dft.dir/ablation_dft.cpp.o" "gcc" "bench/CMakeFiles/ablation_dft.dir/ablation_dft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lsl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dft/CMakeFiles/lsl_dft.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/lsl_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/lsl_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lsl_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/lsl_link.dir/DependInfo.cmake"
  "/root/repo/build/src/behav/CMakeFiles/lsl_behav.dir/DependInfo.cmake"
  "/root/repo/build/src/digital/CMakeFiles/lsl_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
