file(REMOVE_RECURSE
  "CMakeFiles/ablation_dft.dir/ablation_dft.cpp.o"
  "CMakeFiles/ablation_dft.dir/ablation_dft.cpp.o.d"
  "ablation_dft"
  "ablation_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
