file(REMOVE_RECURSE
  "CMakeFiles/bist_lock_time.dir/bist_lock_time.cpp.o"
  "CMakeFiles/bist_lock_time.dir/bist_lock_time.cpp.o.d"
  "bist_lock_time"
  "bist_lock_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_lock_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
