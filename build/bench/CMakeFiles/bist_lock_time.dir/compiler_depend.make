# Empty compiler generated dependencies file for bist_lock_time.
# This may be replaced when dependencies are built.
