file(REMOVE_RECURSE
  "CMakeFiles/bathtub.dir/bathtub.cpp.o"
  "CMakeFiles/bathtub.dir/bathtub.cpp.o.d"
  "bathtub"
  "bathtub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bathtub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
