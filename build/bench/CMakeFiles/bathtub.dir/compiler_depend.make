# Empty compiler generated dependencies file for bathtub.
# This may be replaced when dependencies are built.
