# Empty dependencies file for lsl_dft.
# This may be replaced when dependencies are built.
