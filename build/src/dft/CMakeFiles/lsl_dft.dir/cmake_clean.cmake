file(REMOVE_RECURSE
  "CMakeFiles/lsl_dft.dir/bist_test.cpp.o"
  "CMakeFiles/lsl_dft.dir/bist_test.cpp.o.d"
  "CMakeFiles/lsl_dft.dir/campaign.cpp.o"
  "CMakeFiles/lsl_dft.dir/campaign.cpp.o.d"
  "CMakeFiles/lsl_dft.dir/dc_test.cpp.o"
  "CMakeFiles/lsl_dft.dir/dc_test.cpp.o.d"
  "CMakeFiles/lsl_dft.dir/dictionary.cpp.o"
  "CMakeFiles/lsl_dft.dir/dictionary.cpp.o.d"
  "CMakeFiles/lsl_dft.dir/digital_top.cpp.o"
  "CMakeFiles/lsl_dft.dir/digital_top.cpp.o.d"
  "CMakeFiles/lsl_dft.dir/overhead.cpp.o"
  "CMakeFiles/lsl_dft.dir/overhead.cpp.o.d"
  "CMakeFiles/lsl_dft.dir/scan_test.cpp.o"
  "CMakeFiles/lsl_dft.dir/scan_test.cpp.o.d"
  "liblsl_dft.a"
  "liblsl_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
