file(REMOVE_RECURSE
  "liblsl_dft.a"
)
