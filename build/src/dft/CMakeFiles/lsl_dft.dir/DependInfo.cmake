
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dft/bist_test.cpp" "src/dft/CMakeFiles/lsl_dft.dir/bist_test.cpp.o" "gcc" "src/dft/CMakeFiles/lsl_dft.dir/bist_test.cpp.o.d"
  "/root/repo/src/dft/campaign.cpp" "src/dft/CMakeFiles/lsl_dft.dir/campaign.cpp.o" "gcc" "src/dft/CMakeFiles/lsl_dft.dir/campaign.cpp.o.d"
  "/root/repo/src/dft/dc_test.cpp" "src/dft/CMakeFiles/lsl_dft.dir/dc_test.cpp.o" "gcc" "src/dft/CMakeFiles/lsl_dft.dir/dc_test.cpp.o.d"
  "/root/repo/src/dft/dictionary.cpp" "src/dft/CMakeFiles/lsl_dft.dir/dictionary.cpp.o" "gcc" "src/dft/CMakeFiles/lsl_dft.dir/dictionary.cpp.o.d"
  "/root/repo/src/dft/digital_top.cpp" "src/dft/CMakeFiles/lsl_dft.dir/digital_top.cpp.o" "gcc" "src/dft/CMakeFiles/lsl_dft.dir/digital_top.cpp.o.d"
  "/root/repo/src/dft/overhead.cpp" "src/dft/CMakeFiles/lsl_dft.dir/overhead.cpp.o" "gcc" "src/dft/CMakeFiles/lsl_dft.dir/overhead.cpp.o.d"
  "/root/repo/src/dft/scan_test.cpp" "src/dft/CMakeFiles/lsl_dft.dir/scan_test.cpp.o" "gcc" "src/dft/CMakeFiles/lsl_dft.dir/scan_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/lsl_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/digital/CMakeFiles/lsl_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/lsl_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lsl_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/lsl_link.dir/DependInfo.cmake"
  "/root/repo/build/src/behav/CMakeFiles/lsl_behav.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
