file(REMOVE_RECURSE
  "liblsl_util.a"
)
