file(REMOVE_RECURSE
  "CMakeFiles/lsl_util.dir/log.cpp.o"
  "CMakeFiles/lsl_util.dir/log.cpp.o.d"
  "CMakeFiles/lsl_util.dir/prbs.cpp.o"
  "CMakeFiles/lsl_util.dir/prbs.cpp.o.d"
  "CMakeFiles/lsl_util.dir/rng.cpp.o"
  "CMakeFiles/lsl_util.dir/rng.cpp.o.d"
  "CMakeFiles/lsl_util.dir/stats.cpp.o"
  "CMakeFiles/lsl_util.dir/stats.cpp.o.d"
  "CMakeFiles/lsl_util.dir/table.cpp.o"
  "CMakeFiles/lsl_util.dir/table.cpp.o.d"
  "liblsl_util.a"
  "liblsl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
