file(REMOVE_RECURSE
  "CMakeFiles/lsl_fault.dir/characterize.cpp.o"
  "CMakeFiles/lsl_fault.dir/characterize.cpp.o.d"
  "CMakeFiles/lsl_fault.dir/montecarlo.cpp.o"
  "CMakeFiles/lsl_fault.dir/montecarlo.cpp.o.d"
  "CMakeFiles/lsl_fault.dir/structural.cpp.o"
  "CMakeFiles/lsl_fault.dir/structural.cpp.o.d"
  "liblsl_fault.a"
  "liblsl_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
