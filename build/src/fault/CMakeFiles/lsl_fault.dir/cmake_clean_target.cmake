file(REMOVE_RECURSE
  "liblsl_fault.a"
)
