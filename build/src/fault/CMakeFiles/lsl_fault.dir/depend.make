# Empty dependencies file for lsl_fault.
# This may be replaced when dependencies are built.
