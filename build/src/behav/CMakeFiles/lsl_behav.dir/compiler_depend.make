# Empty compiler generated dependencies file for lsl_behav.
# This may be replaced when dependencies are built.
