
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/behav/channel.cpp" "src/behav/CMakeFiles/lsl_behav.dir/channel.cpp.o" "gcc" "src/behav/CMakeFiles/lsl_behav.dir/channel.cpp.o.d"
  "/root/repo/src/behav/pump.cpp" "src/behav/CMakeFiles/lsl_behav.dir/pump.cpp.o" "gcc" "src/behav/CMakeFiles/lsl_behav.dir/pump.cpp.o.d"
  "/root/repo/src/behav/synchronizer.cpp" "src/behav/CMakeFiles/lsl_behav.dir/synchronizer.cpp.o" "gcc" "src/behav/CMakeFiles/lsl_behav.dir/synchronizer.cpp.o.d"
  "/root/repo/src/behav/vcdl.cpp" "src/behav/CMakeFiles/lsl_behav.dir/vcdl.cpp.o" "gcc" "src/behav/CMakeFiles/lsl_behav.dir/vcdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
