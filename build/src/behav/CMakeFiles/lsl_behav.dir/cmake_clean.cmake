file(REMOVE_RECURSE
  "CMakeFiles/lsl_behav.dir/channel.cpp.o"
  "CMakeFiles/lsl_behav.dir/channel.cpp.o.d"
  "CMakeFiles/lsl_behav.dir/pump.cpp.o"
  "CMakeFiles/lsl_behav.dir/pump.cpp.o.d"
  "CMakeFiles/lsl_behav.dir/synchronizer.cpp.o"
  "CMakeFiles/lsl_behav.dir/synchronizer.cpp.o.d"
  "CMakeFiles/lsl_behav.dir/vcdl.cpp.o"
  "CMakeFiles/lsl_behav.dir/vcdl.cpp.o.d"
  "liblsl_behav.a"
  "liblsl_behav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_behav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
