file(REMOVE_RECURSE
  "liblsl_behav.a"
)
