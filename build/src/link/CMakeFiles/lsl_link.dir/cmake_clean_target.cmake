file(REMOVE_RECURSE
  "liblsl_link.a"
)
