
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/link/domain_crossing.cpp" "src/link/CMakeFiles/lsl_link.dir/domain_crossing.cpp.o" "gcc" "src/link/CMakeFiles/lsl_link.dir/domain_crossing.cpp.o.d"
  "/root/repo/src/link/link.cpp" "src/link/CMakeFiles/lsl_link.dir/link.cpp.o" "gcc" "src/link/CMakeFiles/lsl_link.dir/link.cpp.o.d"
  "/root/repo/src/link/multilane.cpp" "src/link/CMakeFiles/lsl_link.dir/multilane.cpp.o" "gcc" "src/link/CMakeFiles/lsl_link.dir/multilane.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/behav/CMakeFiles/lsl_behav.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
