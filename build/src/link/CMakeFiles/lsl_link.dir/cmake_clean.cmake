file(REMOVE_RECURSE
  "CMakeFiles/lsl_link.dir/domain_crossing.cpp.o"
  "CMakeFiles/lsl_link.dir/domain_crossing.cpp.o.d"
  "CMakeFiles/lsl_link.dir/link.cpp.o"
  "CMakeFiles/lsl_link.dir/link.cpp.o.d"
  "CMakeFiles/lsl_link.dir/multilane.cpp.o"
  "CMakeFiles/lsl_link.dir/multilane.cpp.o.d"
  "liblsl_link.a"
  "liblsl_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
