# Empty compiler generated dependencies file for lsl_link.
# This may be replaced when dependencies are built.
