file(REMOVE_RECURSE
  "liblsl_core.a"
)
