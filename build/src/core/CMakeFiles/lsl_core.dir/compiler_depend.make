# Empty compiler generated dependencies file for lsl_core.
# This may be replaced when dependencies are built.
