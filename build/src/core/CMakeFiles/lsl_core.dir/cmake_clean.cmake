file(REMOVE_RECURSE
  "CMakeFiles/lsl_core.dir/testable_link.cpp.o"
  "CMakeFiles/lsl_core.dir/testable_link.cpp.o.d"
  "liblsl_core.a"
  "liblsl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
