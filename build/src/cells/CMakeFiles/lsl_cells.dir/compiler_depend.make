# Empty compiler generated dependencies file for lsl_cells.
# This may be replaced when dependencies are built.
