file(REMOVE_RECURSE
  "CMakeFiles/lsl_cells.dir/charge_pump.cpp.o"
  "CMakeFiles/lsl_cells.dir/charge_pump.cpp.o.d"
  "CMakeFiles/lsl_cells.dir/comparator.cpp.o"
  "CMakeFiles/lsl_cells.dir/comparator.cpp.o.d"
  "CMakeFiles/lsl_cells.dir/link_frontend.cpp.o"
  "CMakeFiles/lsl_cells.dir/link_frontend.cpp.o.d"
  "CMakeFiles/lsl_cells.dir/termination.cpp.o"
  "CMakeFiles/lsl_cells.dir/termination.cpp.o.d"
  "CMakeFiles/lsl_cells.dir/transmitter.cpp.o"
  "CMakeFiles/lsl_cells.dir/transmitter.cpp.o.d"
  "CMakeFiles/lsl_cells.dir/vcdl.cpp.o"
  "CMakeFiles/lsl_cells.dir/vcdl.cpp.o.d"
  "liblsl_cells.a"
  "liblsl_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
