file(REMOVE_RECURSE
  "liblsl_cells.a"
)
