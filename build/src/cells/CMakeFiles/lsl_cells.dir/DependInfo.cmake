
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/charge_pump.cpp" "src/cells/CMakeFiles/lsl_cells.dir/charge_pump.cpp.o" "gcc" "src/cells/CMakeFiles/lsl_cells.dir/charge_pump.cpp.o.d"
  "/root/repo/src/cells/comparator.cpp" "src/cells/CMakeFiles/lsl_cells.dir/comparator.cpp.o" "gcc" "src/cells/CMakeFiles/lsl_cells.dir/comparator.cpp.o.d"
  "/root/repo/src/cells/link_frontend.cpp" "src/cells/CMakeFiles/lsl_cells.dir/link_frontend.cpp.o" "gcc" "src/cells/CMakeFiles/lsl_cells.dir/link_frontend.cpp.o.d"
  "/root/repo/src/cells/termination.cpp" "src/cells/CMakeFiles/lsl_cells.dir/termination.cpp.o" "gcc" "src/cells/CMakeFiles/lsl_cells.dir/termination.cpp.o.d"
  "/root/repo/src/cells/transmitter.cpp" "src/cells/CMakeFiles/lsl_cells.dir/transmitter.cpp.o" "gcc" "src/cells/CMakeFiles/lsl_cells.dir/transmitter.cpp.o.d"
  "/root/repo/src/cells/vcdl.cpp" "src/cells/CMakeFiles/lsl_cells.dir/vcdl.cpp.o" "gcc" "src/cells/CMakeFiles/lsl_cells.dir/vcdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/lsl_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
