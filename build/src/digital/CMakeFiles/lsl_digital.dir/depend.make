# Empty dependencies file for lsl_digital.
# This may be replaced when dependencies are built.
