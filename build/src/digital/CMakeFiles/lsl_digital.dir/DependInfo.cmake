
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/digital/atpg.cpp" "src/digital/CMakeFiles/lsl_digital.dir/atpg.cpp.o" "gcc" "src/digital/CMakeFiles/lsl_digital.dir/atpg.cpp.o.d"
  "/root/repo/src/digital/blocks.cpp" "src/digital/CMakeFiles/lsl_digital.dir/blocks.cpp.o" "gcc" "src/digital/CMakeFiles/lsl_digital.dir/blocks.cpp.o.d"
  "/root/repo/src/digital/circuit.cpp" "src/digital/CMakeFiles/lsl_digital.dir/circuit.cpp.o" "gcc" "src/digital/CMakeFiles/lsl_digital.dir/circuit.cpp.o.d"
  "/root/repo/src/digital/compaction.cpp" "src/digital/CMakeFiles/lsl_digital.dir/compaction.cpp.o" "gcc" "src/digital/CMakeFiles/lsl_digital.dir/compaction.cpp.o.d"
  "/root/repo/src/digital/logic.cpp" "src/digital/CMakeFiles/lsl_digital.dir/logic.cpp.o" "gcc" "src/digital/CMakeFiles/lsl_digital.dir/logic.cpp.o.d"
  "/root/repo/src/digital/scan.cpp" "src/digital/CMakeFiles/lsl_digital.dir/scan.cpp.o" "gcc" "src/digital/CMakeFiles/lsl_digital.dir/scan.cpp.o.d"
  "/root/repo/src/digital/stuck.cpp" "src/digital/CMakeFiles/lsl_digital.dir/stuck.cpp.o" "gcc" "src/digital/CMakeFiles/lsl_digital.dir/stuck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
