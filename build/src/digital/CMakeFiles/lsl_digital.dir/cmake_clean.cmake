file(REMOVE_RECURSE
  "CMakeFiles/lsl_digital.dir/atpg.cpp.o"
  "CMakeFiles/lsl_digital.dir/atpg.cpp.o.d"
  "CMakeFiles/lsl_digital.dir/blocks.cpp.o"
  "CMakeFiles/lsl_digital.dir/blocks.cpp.o.d"
  "CMakeFiles/lsl_digital.dir/circuit.cpp.o"
  "CMakeFiles/lsl_digital.dir/circuit.cpp.o.d"
  "CMakeFiles/lsl_digital.dir/compaction.cpp.o"
  "CMakeFiles/lsl_digital.dir/compaction.cpp.o.d"
  "CMakeFiles/lsl_digital.dir/logic.cpp.o"
  "CMakeFiles/lsl_digital.dir/logic.cpp.o.d"
  "CMakeFiles/lsl_digital.dir/scan.cpp.o"
  "CMakeFiles/lsl_digital.dir/scan.cpp.o.d"
  "CMakeFiles/lsl_digital.dir/stuck.cpp.o"
  "CMakeFiles/lsl_digital.dir/stuck.cpp.o.d"
  "liblsl_digital.a"
  "liblsl_digital.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_digital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
