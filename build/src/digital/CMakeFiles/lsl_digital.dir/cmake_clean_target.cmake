file(REMOVE_RECURSE
  "liblsl_digital.a"
)
