file(REMOVE_RECURSE
  "liblsl_spice.a"
)
