file(REMOVE_RECURSE
  "CMakeFiles/lsl_spice.dir/ac.cpp.o"
  "CMakeFiles/lsl_spice.dir/ac.cpp.o.d"
  "CMakeFiles/lsl_spice.dir/dc.cpp.o"
  "CMakeFiles/lsl_spice.dir/dc.cpp.o.d"
  "CMakeFiles/lsl_spice.dir/export.cpp.o"
  "CMakeFiles/lsl_spice.dir/export.cpp.o.d"
  "CMakeFiles/lsl_spice.dir/matrix.cpp.o"
  "CMakeFiles/lsl_spice.dir/matrix.cpp.o.d"
  "CMakeFiles/lsl_spice.dir/netlist.cpp.o"
  "CMakeFiles/lsl_spice.dir/netlist.cpp.o.d"
  "CMakeFiles/lsl_spice.dir/stamp.cpp.o"
  "CMakeFiles/lsl_spice.dir/stamp.cpp.o.d"
  "CMakeFiles/lsl_spice.dir/transient.cpp.o"
  "CMakeFiles/lsl_spice.dir/transient.cpp.o.d"
  "liblsl_spice.a"
  "liblsl_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsl_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
