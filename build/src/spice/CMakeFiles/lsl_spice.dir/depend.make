# Empty dependencies file for lsl_spice.
# This may be replaced when dependencies are built.
