
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spice/test_ac.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_ac.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_ac.cpp.o.d"
  "/root/repo/tests/spice/test_dc.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_dc.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_dc.cpp.o.d"
  "/root/repo/tests/spice/test_export.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_export.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_export.cpp.o.d"
  "/root/repo/tests/spice/test_matrix.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o.d"
  "/root/repo/tests/spice/test_mosfet.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_mosfet.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_mosfet.cpp.o.d"
  "/root/repo/tests/spice/test_netlist.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_netlist.cpp.o.d"
  "/root/repo/tests/spice/test_transient.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_transient.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/lsl_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
