file(REMOVE_RECURSE
  "CMakeFiles/test_cells.dir/cells/test_charge_pump.cpp.o"
  "CMakeFiles/test_cells.dir/cells/test_charge_pump.cpp.o.d"
  "CMakeFiles/test_cells.dir/cells/test_comparator.cpp.o"
  "CMakeFiles/test_cells.dir/cells/test_comparator.cpp.o.d"
  "CMakeFiles/test_cells.dir/cells/test_link_frontend.cpp.o"
  "CMakeFiles/test_cells.dir/cells/test_link_frontend.cpp.o.d"
  "CMakeFiles/test_cells.dir/cells/test_termination.cpp.o"
  "CMakeFiles/test_cells.dir/cells/test_termination.cpp.o.d"
  "CMakeFiles/test_cells.dir/cells/test_transmitter.cpp.o"
  "CMakeFiles/test_cells.dir/cells/test_transmitter.cpp.o.d"
  "CMakeFiles/test_cells.dir/cells/test_vcdl.cpp.o"
  "CMakeFiles/test_cells.dir/cells/test_vcdl.cpp.o.d"
  "test_cells"
  "test_cells.pdb"
  "test_cells[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
