
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cells/test_charge_pump.cpp" "tests/CMakeFiles/test_cells.dir/cells/test_charge_pump.cpp.o" "gcc" "tests/CMakeFiles/test_cells.dir/cells/test_charge_pump.cpp.o.d"
  "/root/repo/tests/cells/test_comparator.cpp" "tests/CMakeFiles/test_cells.dir/cells/test_comparator.cpp.o" "gcc" "tests/CMakeFiles/test_cells.dir/cells/test_comparator.cpp.o.d"
  "/root/repo/tests/cells/test_link_frontend.cpp" "tests/CMakeFiles/test_cells.dir/cells/test_link_frontend.cpp.o" "gcc" "tests/CMakeFiles/test_cells.dir/cells/test_link_frontend.cpp.o.d"
  "/root/repo/tests/cells/test_termination.cpp" "tests/CMakeFiles/test_cells.dir/cells/test_termination.cpp.o" "gcc" "tests/CMakeFiles/test_cells.dir/cells/test_termination.cpp.o.d"
  "/root/repo/tests/cells/test_transmitter.cpp" "tests/CMakeFiles/test_cells.dir/cells/test_transmitter.cpp.o" "gcc" "tests/CMakeFiles/test_cells.dir/cells/test_transmitter.cpp.o.d"
  "/root/repo/tests/cells/test_vcdl.cpp" "tests/CMakeFiles/test_cells.dir/cells/test_vcdl.cpp.o" "gcc" "tests/CMakeFiles/test_cells.dir/cells/test_vcdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cells/CMakeFiles/lsl_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/lsl_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lsl_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/lsl_link.dir/DependInfo.cmake"
  "/root/repo/build/src/behav/CMakeFiles/lsl_behav.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
