
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/behav/test_channel.cpp" "tests/CMakeFiles/test_behav.dir/behav/test_channel.cpp.o" "gcc" "tests/CMakeFiles/test_behav.dir/behav/test_channel.cpp.o.d"
  "/root/repo/tests/behav/test_pump.cpp" "tests/CMakeFiles/test_behav.dir/behav/test_pump.cpp.o" "gcc" "tests/CMakeFiles/test_behav.dir/behav/test_pump.cpp.o.d"
  "/root/repo/tests/behav/test_synchronizer.cpp" "tests/CMakeFiles/test_behav.dir/behav/test_synchronizer.cpp.o" "gcc" "tests/CMakeFiles/test_behav.dir/behav/test_synchronizer.cpp.o.d"
  "/root/repo/tests/behav/test_vcdl.cpp" "tests/CMakeFiles/test_behav.dir/behav/test_vcdl.cpp.o" "gcc" "tests/CMakeFiles/test_behav.dir/behav/test_vcdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/behav/CMakeFiles/lsl_behav.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
