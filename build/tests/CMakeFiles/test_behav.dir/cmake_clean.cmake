file(REMOVE_RECURSE
  "CMakeFiles/test_behav.dir/behav/test_channel.cpp.o"
  "CMakeFiles/test_behav.dir/behav/test_channel.cpp.o.d"
  "CMakeFiles/test_behav.dir/behav/test_pump.cpp.o"
  "CMakeFiles/test_behav.dir/behav/test_pump.cpp.o.d"
  "CMakeFiles/test_behav.dir/behav/test_synchronizer.cpp.o"
  "CMakeFiles/test_behav.dir/behav/test_synchronizer.cpp.o.d"
  "CMakeFiles/test_behav.dir/behav/test_vcdl.cpp.o"
  "CMakeFiles/test_behav.dir/behav/test_vcdl.cpp.o.d"
  "test_behav"
  "test_behav.pdb"
  "test_behav[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_behav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
