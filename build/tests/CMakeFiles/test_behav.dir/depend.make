# Empty dependencies file for test_behav.
# This may be replaced when dependencies are built.
