
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/link/test_domain_crossing.cpp" "tests/CMakeFiles/test_link.dir/link/test_domain_crossing.cpp.o" "gcc" "tests/CMakeFiles/test_link.dir/link/test_domain_crossing.cpp.o.d"
  "/root/repo/tests/link/test_link.cpp" "tests/CMakeFiles/test_link.dir/link/test_link.cpp.o" "gcc" "tests/CMakeFiles/test_link.dir/link/test_link.cpp.o.d"
  "/root/repo/tests/link/test_multilane.cpp" "tests/CMakeFiles/test_link.dir/link/test_multilane.cpp.o" "gcc" "tests/CMakeFiles/test_link.dir/link/test_multilane.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/link/CMakeFiles/lsl_link.dir/DependInfo.cmake"
  "/root/repo/build/src/behav/CMakeFiles/lsl_behav.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
