file(REMOVE_RECURSE
  "CMakeFiles/test_dft.dir/dft/test_bist_test.cpp.o"
  "CMakeFiles/test_dft.dir/dft/test_bist_test.cpp.o.d"
  "CMakeFiles/test_dft.dir/dft/test_dc_test.cpp.o"
  "CMakeFiles/test_dft.dir/dft/test_dc_test.cpp.o.d"
  "CMakeFiles/test_dft.dir/dft/test_dictionary.cpp.o"
  "CMakeFiles/test_dft.dir/dft/test_dictionary.cpp.o.d"
  "CMakeFiles/test_dft.dir/dft/test_digital_top.cpp.o"
  "CMakeFiles/test_dft.dir/dft/test_digital_top.cpp.o.d"
  "CMakeFiles/test_dft.dir/dft/test_scan_test.cpp.o"
  "CMakeFiles/test_dft.dir/dft/test_scan_test.cpp.o.d"
  "test_dft"
  "test_dft.pdb"
  "test_dft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
