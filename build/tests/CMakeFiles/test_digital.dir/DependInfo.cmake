
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/digital/test_atpg.cpp" "tests/CMakeFiles/test_digital.dir/digital/test_atpg.cpp.o" "gcc" "tests/CMakeFiles/test_digital.dir/digital/test_atpg.cpp.o.d"
  "/root/repo/tests/digital/test_blocks.cpp" "tests/CMakeFiles/test_digital.dir/digital/test_blocks.cpp.o" "gcc" "tests/CMakeFiles/test_digital.dir/digital/test_blocks.cpp.o.d"
  "/root/repo/tests/digital/test_circuit.cpp" "tests/CMakeFiles/test_digital.dir/digital/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/test_digital.dir/digital/test_circuit.cpp.o.d"
  "/root/repo/tests/digital/test_compaction.cpp" "tests/CMakeFiles/test_digital.dir/digital/test_compaction.cpp.o" "gcc" "tests/CMakeFiles/test_digital.dir/digital/test_compaction.cpp.o.d"
  "/root/repo/tests/digital/test_logic.cpp" "tests/CMakeFiles/test_digital.dir/digital/test_logic.cpp.o" "gcc" "tests/CMakeFiles/test_digital.dir/digital/test_logic.cpp.o.d"
  "/root/repo/tests/digital/test_scan.cpp" "tests/CMakeFiles/test_digital.dir/digital/test_scan.cpp.o" "gcc" "tests/CMakeFiles/test_digital.dir/digital/test_scan.cpp.o.d"
  "/root/repo/tests/digital/test_stuck.cpp" "tests/CMakeFiles/test_digital.dir/digital/test_stuck.cpp.o" "gcc" "tests/CMakeFiles/test_digital.dir/digital/test_stuck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/digital/CMakeFiles/lsl_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
