file(REMOVE_RECURSE
  "CMakeFiles/test_digital.dir/digital/test_atpg.cpp.o"
  "CMakeFiles/test_digital.dir/digital/test_atpg.cpp.o.d"
  "CMakeFiles/test_digital.dir/digital/test_blocks.cpp.o"
  "CMakeFiles/test_digital.dir/digital/test_blocks.cpp.o.d"
  "CMakeFiles/test_digital.dir/digital/test_circuit.cpp.o"
  "CMakeFiles/test_digital.dir/digital/test_circuit.cpp.o.d"
  "CMakeFiles/test_digital.dir/digital/test_compaction.cpp.o"
  "CMakeFiles/test_digital.dir/digital/test_compaction.cpp.o.d"
  "CMakeFiles/test_digital.dir/digital/test_logic.cpp.o"
  "CMakeFiles/test_digital.dir/digital/test_logic.cpp.o.d"
  "CMakeFiles/test_digital.dir/digital/test_scan.cpp.o"
  "CMakeFiles/test_digital.dir/digital/test_scan.cpp.o.d"
  "CMakeFiles/test_digital.dir/digital/test_stuck.cpp.o"
  "CMakeFiles/test_digital.dir/digital/test_stuck.cpp.o.d"
  "test_digital"
  "test_digital.pdb"
  "test_digital[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
