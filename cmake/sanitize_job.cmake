# Script-mode job: configure + build + run the concurrency-sensitive
# tests (thread pool, campaign executor) in a nested build tree with
# -DLSL_SANITIZE=<address|thread>. Invoked by the sanitize_* ctest
# entries registered when LSL_SANITIZER_JOBS=ON:
#
#   cmake -DSRC_DIR=... -DBIN_DIR=... -DSANITIZER=thread \
#         -P cmake/sanitize_job.cmake
foreach(var SRC_DIR BIN_DIR SANITIZER)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sanitize_job.cmake requires -D${var}=...")
  endif()
endforeach()

message(STATUS "[sanitize_job] configuring ${SANITIZER} build in ${BIN_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SRC_DIR} -B ${BIN_DIR}
          -DLSL_SANITIZE=${SANITIZER} -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[sanitize_job] configure failed (${SANITIZER})")
endif()

message(STATUS "[sanitize_job] building test_util + test_spice + test_dft + test_fault")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BIN_DIR} --parallel
          --target test_util test_spice test_dft test_fault
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[sanitize_job] build failed (${SANITIZER})")
endif()

# SparseEngine covers the workspace/sparse-LU solve path (including the
# thread-local workspaces campaign workers share); Smw covers the
# low-rank Sherman–Morrison–Woodbury fault-injection path, and the
# Campaign pattern also picks up CampaignIncremental (shared read-only
# seed bank + collapse memo under threads). NewtonAllocation is
# deliberately excluded: its global operator-new counters are
# meaningless under sanitizer allocators.
message(STATUS "[sanitize_job] running ThreadPool/Campaign/McTrials/SparseEngine/Smw tests under ${SANITIZER}")
execute_process(
  COMMAND ctest --test-dir ${BIN_DIR} -R "ThreadPool|Campaign|McTrials|SparseEngine|Smw"
          --output-on-failure
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "[sanitize_job] tests failed under ${SANITIZER}")
endif()
message(STATUS "[sanitize_job] ${SANITIZER} job passed")
