#include "digital/atpg.hpp"

#include <gtest/gtest.h>

namespace lsl::digital {
namespace {

/// A block with a deliberately hard-to-randomly-hit cone: an 6-input AND
/// feeding a capture flop (a random load hits it with p = 1/64), plus an
/// easy XOR cone.
struct Fixture {
  Circuit c;
  std::vector<std::size_t> flops;
  ScanChain* chain = nullptr;

  Fixture() {
    std::vector<NetId> qs;
    for (int i = 0; i < 6; ++i) {
      const NetId q = c.net("q" + std::to_string(i));
      flops.push_back(c.add_flipflop(FlipFlop{q, q, {}, {}, {}}));
      qs.push_back(q);
    }
    const NetId all = c.net("all");
    c.add_gate(GateType::kAnd, qs, all);
    const NetId x = c.net("x");
    c.add_gate(GateType::kXor, {qs[0], qs[1]}, x);
    const NetId cap_and = c.net("cap_and");
    flops.push_back(c.add_flipflop(FlipFlop{all, cap_and, {}, {}, {}}));
    const NetId cap_x = c.net("cap_x");
    flops.push_back(c.add_flipflop(FlipFlop{x, cap_x, {}, {}, {}}));
    chain = new ScanChain(c, "sc", flops);
  }
  ~Fixture() { delete chain; }
};

TEST(Atpg, ScoreDetectsObviousFault) {
  Fixture f;
  MultiScanPattern p;
  p.chain_loads.push_back(logic_vector("11111100"));
  p.capture_cycles = 1;
  bool det = false;
  const auto score = atpg_score(f.c, {f.chain}, p, {*f.c.find_net("all"), Logic::k0},
                                {}, det);
  EXPECT_TRUE(det);  // all-ones load: AND output s@0 flips the capture
  EXPECT_GE(score, 1000000u);
}

TEST(Atpg, ScoreZeroWhenFaultInactive) {
  Fixture f;
  MultiScanPattern p;
  p.chain_loads.push_back(logic_vector("00000000"));
  p.capture_cycles = 1;
  bool det = false;
  // AND output is 0 anyway: s@0 has no effect at all.
  const auto score = atpg_score(f.c, {f.chain}, p, {*f.c.find_net("all"), Logic::k0}, {}, det);
  EXPECT_FALSE(det);
  EXPECT_EQ(score, 0u);
}

TEST(Atpg, HillClimbFindsTheHardCone) {
  // The AND-cone faults need the all-ones corner; hill climbing on error
  // spread walks there from random starts.
  Fixture f;
  const std::vector<StuckFault> targets = {{*f.c.find_net("all"), Logic::k0},
                                           {*f.c.find_net("cap_and"), Logic::k0}};
  const auto r = generate_tests(f.c, {f.chain}, targets, {}, {});
  EXPECT_DOUBLE_EQ(r.coverage.percent(), 100.0);
  EXPECT_TRUE(r.undetected.empty());
  EXPECT_GE(r.patterns.size(), 1u);
}

TEST(Atpg, FaultDroppingReusesPatterns) {
  Fixture f;
  // Two faults detectable by the same pattern: only one pattern results.
  const std::vector<StuckFault> targets = {{*f.c.find_net("all"), Logic::k0},
                                           {*f.c.find_net("all"), Logic::k0}};
  const auto r = generate_tests(f.c, {f.chain}, targets, {}, {});
  EXPECT_DOUBLE_EQ(r.coverage.percent(), 100.0);
  EXPECT_EQ(r.patterns.size(), 1u);
}

TEST(Atpg, ReportsUntestableFault) {
  Fixture f;
  // A constant net's matching polarity is untestable.
  const NetId one = f.c.net("tied");
  f.c.add_gate(GateType::kConst1, {}, one);
  const std::vector<StuckFault> targets = {{one, Logic::k1}};
  AtpgOptions opts;
  opts.restarts = 2;
  const auto r = generate_tests(f.c, {f.chain}, targets, {}, {}, opts);
  EXPECT_DOUBLE_EQ(r.coverage.percent(), 0.0);
  ASSERT_EQ(r.undetected.size(), 1u);
}

TEST(Atpg, FullUniverseOnFixtureCloses) {
  // Every non-redundant stuck-at fault in the fixture is reachable.
  Fixture f;
  const auto faults = enumerate_stuck_faults(f.c);
  const auto r = generate_tests(f.c, {f.chain}, faults, {}, {});
  // Scan-enable s@0 X-masks (hard detection impossible); everything else
  // must close.
  EXPECT_LE(r.undetected.size(), 2u);
  EXPECT_GT(r.coverage.percent(), 91.0);
}

}  // namespace
}  // namespace lsl::digital
