#include "digital/scan.hpp"

#include <gtest/gtest.h>

namespace lsl::digital {
namespace {

/// Builds a 4-flop shift-register-ish circuit with an XOR between
/// stages so captures are distinguishable from shifts.
struct Fixture {
  Circuit c;
  std::vector<std::size_t> flops;
  NetId pi;

  Fixture() {
    pi = c.net("pi");
    c.make_input(pi);
    NetId prev = pi;
    for (int i = 0; i < 4; ++i) {
      const NetId d = c.net("d" + std::to_string(i));
      const NetId q = c.net("q" + std::to_string(i));
      c.add_gate(GateType::kXor, {prev, (i % 2 == 0) ? pi : prev}, d);
      flops.push_back(c.add_flipflop(FlipFlop{d, q, {}, {}, {}}));
      prev = q;
    }
  }
};

TEST(ScanChain, LoadThenReadRoundTrips) {
  Fixture f;
  ScanChain chain(f.c, "sc", f.flops);
  f.c.power_on();
  f.c.set_input(f.pi, false);
  const auto pattern = logic_vector("1011");
  chain.shift(f.c, pattern);
  const auto out = chain.read(f.c);
  EXPECT_EQ(logic_string(out), "1011");  // FIFO semantics
}

TEST(ScanChain, FlopOrderRoundTrips) {
  Fixture f;
  ScanChain chain(f.c, "sc", f.flops);
  f.c.power_on();
  f.c.set_input(f.pi, false);
  chain.load_flop_order(f.c, logic_vector("1100"));
  EXPECT_EQ(f.c.ff_state(f.flops[0]), Logic::k1);
  EXPECT_EQ(f.c.ff_state(f.flops[1]), Logic::k1);
  EXPECT_EQ(f.c.ff_state(f.flops[2]), Logic::k0);
  EXPECT_EQ(f.c.ff_state(f.flops[3]), Logic::k0);
  EXPECT_EQ(logic_string(chain.read_flop_order(f.c)), "1100");
}

TEST(ScanChain, CaptureTakesFunctionalPath) {
  Fixture f;
  ScanChain chain(f.c, "sc", f.flops);
  f.c.power_on();
  f.c.set_input(f.pi, true);
  chain.load_flop_order(f.c, logic_vector("0000"));
  chain.capture(f.c);
  // d0 = pi XOR pi = 0; stages latch combinational functions of state 0s
  // and pi=1. Just assert the response is fully known and differs from a
  // pure shift.
  const auto resp = chain.read_flop_order(f.c);
  for (const Logic b : resp) EXPECT_TRUE(is_known(b));
}

TEST(ScanChain, ShiftOutputReturnsPreviousContent) {
  Fixture f;
  ScanChain chain(f.c, "sc", f.flops);
  f.c.power_on();
  f.c.set_input(f.pi, false);
  chain.shift(f.c, logic_vector("1010"));
  const auto out = chain.shift(f.c, logic_vector("0000"));
  EXPECT_EQ(logic_string(out), "1010");
}

TEST(ScanChain, LengthMismatchThrows) {
  Fixture f;
  ScanChain chain(f.c, "sc", f.flops);
  f.c.power_on();
  EXPECT_THROW(chain.shift(f.c, logic_vector("10")), std::invalid_argument);
}

TEST(ScanChain, DoubleStitchThrows) {
  Fixture f;
  ScanChain chain(f.c, "sc", f.flops);
  EXPECT_THROW(ScanChain(f.c, "sc2", f.flops), std::invalid_argument);
}

TEST(ScanChain, ContinuityDetectsBrokenChain) {
  // The paper's switch-matrix test relies on scan-chain continuity: a
  // chain whose clock/path is broken returns X or constant instead of
  // the marching pattern.
  Fixture f;
  ScanChain chain(f.c, "sc", f.flops);
  f.c.power_on();
  f.c.set_input(f.pi, false);
  // Healthy chain passes a walking-1 continuity check.
  chain.shift(f.c, logic_vector("1000"));
  EXPECT_EQ(logic_string(chain.read(f.c)), "1000");
  // Break the chain: stick the second flop's output.
  f.c.set_stuck(*f.c.find_net("q1"), Logic::k0);
  f.c.power_on();
  chain.shift(f.c, logic_vector("1111"));
  const auto out = chain.read(f.c);
  EXPECT_NE(logic_string(out), "1111");
}

TEST(LogicVector, ParsesAndRejects) {
  EXPECT_EQ(logic_string(logic_vector("01X")), "01X");
  EXPECT_THROW(logic_vector("012"), std::invalid_argument);
}

}  // namespace
}  // namespace lsl::digital
