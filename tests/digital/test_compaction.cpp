#include "digital/compaction.hpp"

#include <gtest/gtest.h>

#include "digital/blocks.hpp"

namespace lsl::digital {
namespace {

/// Small scan-wrapped block: 3-flop chain feeding XOR/AND logic.
struct Fixture {
  Circuit c;
  std::vector<std::size_t> flops;
  ScanChain* chain = nullptr;
  NetId out = 0;

  Fixture() {
    const NetId q0 = c.net("q0");
    const NetId q1 = c.net("q1");
    const NetId q2 = c.net("q2");
    const NetId x = c.net("x");
    const NetId a = c.net("a");
    flops.push_back(c.add_flipflop(FlipFlop{q0, q0, {}, {}, {}}));
    flops.push_back(c.add_flipflop(FlipFlop{q1, q1, {}, {}, {}}));
    c.add_gate(GateType::kXor, {q0, q1}, x);
    c.add_gate(GateType::kAnd, {x, q2}, a);
    flops.push_back(c.add_flipflop(FlipFlop{a, q2, {}, {}, {}}));
    chain = new ScanChain(c, "sc", flops);
  }
  ~Fixture() { delete chain; }
};

std::vector<MultiScanPattern> exhaustive_patterns(std::size_t n_flops) {
  std::vector<MultiScanPattern> pats;
  for (unsigned v = 0; v < (1u << n_flops); ++v) {
    MultiScanPattern p;
    std::vector<Logic> load(n_flops);
    for (std::size_t b = 0; b < n_flops; ++b) load[b] = from_bool((v >> b) & 1u);
    p.chain_loads.push_back(std::move(load));
    pats.push_back(std::move(p));
  }
  return pats;
}

TEST(Compaction, CoversSameFaultsWithFewerPatterns) {
  Fixture f;
  const auto pats = exhaustive_patterns(3);
  const auto faults = enumerate_stuck_faults(f.c);
  const std::vector<const ScanChain*> chains = {f.chain};

  const auto full_curve = coverage_vs_pattern_count(f.c, chains, pats, faults);
  const auto compact = compact_patterns(f.c, chains, pats, faults);

  // The compacted set reaches the same final coverage...
  EXPECT_NEAR(compact.coverage.percent(), full_curve.back(), 1e-9);
  // ...with strictly fewer patterns than the exhaustive pool.
  EXPECT_LT(compact.selected.size(), pats.size());
  EXPECT_GE(compact.selected.size(), 2u);
}

TEST(Compaction, CurveIsMonotone) {
  Fixture f;
  const auto pats = exhaustive_patterns(3);
  const auto faults = enumerate_stuck_faults(f.c);
  const std::vector<const ScanChain*> chains = {f.chain};
  const auto compact = compact_patterns(f.c, chains, pats, faults);
  for (std::size_t i = 1; i < compact.coverage_curve.size(); ++i) {
    EXPECT_GT(compact.coverage_curve[i], compact.coverage_curve[i - 1]);
  }
}

TEST(Compaction, GreedyPicksHighestGainFirst) {
  Fixture f;
  const auto pats = exhaustive_patterns(3);
  const auto faults = enumerate_stuck_faults(f.c);
  const std::vector<const ScanChain*> chains = {f.chain};
  const auto compact = compact_patterns(f.c, chains, pats, faults);
  ASSERT_GE(compact.coverage_curve.size(), 2u);
  // First increment is the largest (greedy property).
  const double first = compact.coverage_curve[0];
  for (std::size_t i = 1; i < compact.coverage_curve.size(); ++i) {
    EXPECT_LE(compact.coverage_curve[i] - compact.coverage_curve[i - 1], first + 1e-9);
  }
}

TEST(Compaction, EmptyCandidatesEmptyResult) {
  Fixture f;
  const auto faults = enumerate_stuck_faults(f.c);
  const std::vector<const ScanChain*> chains = {f.chain};
  const auto compact = compact_patterns(f.c, chains, {}, faults);
  EXPECT_TRUE(compact.selected.empty());
  EXPECT_DOUBLE_EQ(compact.coverage.percent(), 0.0);
}

TEST(CoverageCurve, MatchesCampaignCoverage) {
  Fixture f;
  const auto pats = exhaustive_patterns(3);
  const auto faults = enumerate_stuck_faults(f.c);
  const std::vector<const ScanChain*> chains = {f.chain};
  const auto curve = coverage_vs_pattern_count(f.c, chains, pats, faults);
  // Cross-check against the campaign runner (hard detects only).
  const auto campaign = run_stuck_campaign_multi(f.c, chains, pats, faults);
  EXPECT_NEAR(curve.back(), campaign.hard.percent(), 1e-9);
}

}  // namespace
}  // namespace lsl::digital
