#include "digital/stuck.hpp"

#include <gtest/gtest.h>

#include "digital/blocks.hpp"

namespace lsl::digital {
namespace {

TEST(StuckFaults, UniverseSizeIsTwoPerNet) {
  Circuit c;
  c.net("a");
  c.net("b");
  const auto faults = enumerate_stuck_faults(c);
  EXPECT_EQ(faults.size(), 4u);
}

TEST(StuckFaults, Describe) {
  Circuit c;
  const NetId a = c.net("alpha");
  EXPECT_EQ((StuckFault{a, Logic::k0}).describe(c), "alpha s@0");
  EXPECT_EQ((StuckFault{a, Logic::k1}).describe(c), "alpha s@1");
}

/// A small combinational block behind a scan chain: two flops feeding an
/// XOR captured by a third flop.
struct CampaignFixture {
  Circuit c;
  std::vector<std::size_t> flops;

  CampaignFixture() {
    const NetId q0 = c.net("q0");
    const NetId q1 = c.net("q1");
    const NetId x = c.net("x");
    const NetId q2 = c.net("q2");
    // Flops 0/1 hold pattern bits and recirculate; flop 2 captures XOR.
    flops.push_back(c.add_flipflop(FlipFlop{q0, q0, {}, {}, {}}));
    flops.push_back(c.add_flipflop(FlipFlop{q1, q1, {}, {}, {}}));
    c.add_gate(GateType::kXor, {q0, q1}, x);
    flops.push_back(c.add_flipflop(FlipFlop{x, q2, {}, {}, {}}));
  }
};

TEST(StuckCampaign, ExhaustivePatternsReachFullCoverage) {
  CampaignFixture f;
  ScanChain chain(f.c, "sc", f.flops);

  std::vector<ScanPattern> patterns;
  for (const char* load : {"000", "010", "100", "110"}) {
    ScanPattern p;
    p.chain_load = logic_vector(load);
    patterns.push_back(p);
  }
  const auto faults = enumerate_stuck_faults(f.c);
  const auto result = run_stuck_campaign(f.c, chain, patterns, faults);
  // Every net in this tiny block is controllable and observable; the
  // only non-hard detect is scan-enable s@0, whose X recirculation makes
  // it a "possible" detect (a chain flush pins it on a real tester).
  EXPECT_DOUBLE_EQ(result.combined.percent(), 100.0);
  EXPECT_GE(result.hard.percent(), 90.0);
  EXPECT_TRUE(result.undetected.empty());
}

TEST(StuckCampaign, NoPatternsNoCoverage) {
  CampaignFixture f;
  ScanChain chain(f.c, "sc", f.flops);
  const auto faults = enumerate_stuck_faults(f.c);
  const auto result = run_stuck_campaign(f.c, chain, {}, faults);
  EXPECT_DOUBLE_EQ(result.combined.percent(), 0.0);
  EXPECT_EQ(result.undetected.size(), faults.size());
}

TEST(StuckCampaign, RandomPatternsCoverRingCounter) {
  // The paper's claim: the digital control blocks are simple enough for
  // 100% stuck-at coverage. Check it for the ring counter with random
  // patterns plus the functional stepping implied by preload+clock.
  Circuit c;
  const NetId en = c.net("en");
  const NetId dir = c.net("dir");
  c.make_input(en);
  c.make_input(dir);
  const auto ring = build_ring_counter(c, "rc", 4, en, dir);
  ScanChain chain(c, "sc", ring.flops);

  // Single capture cycle: with an even cycle count on an even-length
  // ring, up and down shifts land on the same state (+-k mod n), hiding
  // the direction input entirely.
  util::Pcg32 rng(2024);
  const auto patterns = random_patterns(c, chain, {en, dir}, 64, rng);
  const auto faults = enumerate_stuck_faults(c);
  const auto result = run_stuck_campaign(c, chain, patterns, faults);
  EXPECT_DOUBLE_EQ(result.combined.percent(), 100.0);
  EXPECT_GT(result.hard.percent(), 95.0);
}

TEST(RandomPatterns, ShapesMatch) {
  Circuit c;
  const NetId a = c.net("a");
  c.make_input(a);
  const NetId q = c.net("q");
  const std::size_t ff = c.add_flipflop(FlipFlop{a, q, {}, {}, {}});
  ScanChain chain(c, "sc", {ff});
  util::Pcg32 rng(7);
  const auto pats = random_patterns(c, chain, {a}, 10, rng);
  ASSERT_EQ(pats.size(), 10u);
  for (const auto& p : pats) {
    EXPECT_EQ(p.chain_load.size(), 1u);
    ASSERT_EQ(p.pi_values.size(), 1u);
    EXPECT_EQ(p.pi_values[0].first, a);
    EXPECT_TRUE(is_known(p.pi_values[0].second));
  }
}

}  // namespace
}  // namespace lsl::digital
