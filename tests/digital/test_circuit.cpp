#include "digital/circuit.hpp"

#include <gtest/gtest.h>

namespace lsl::digital {
namespace {

TEST(Circuit, CombinationalChain) {
  Circuit c;
  const NetId a = c.net("a");
  const NetId b = c.net("b");
  const NetId n1 = c.net("n1");
  const NetId out = c.net("out");
  c.make_input(a);
  c.make_input(b);
  c.add_gate(GateType::kNand, {a, b}, n1);
  c.add_gate(GateType::kInv, {n1}, out);  // out = a AND b
  c.power_on();
  c.set_input(a, true);
  c.set_input(b, true);
  c.settle();
  EXPECT_EQ(c.value(out), Logic::k1);
  c.set_input(b, false);
  c.settle();
  EXPECT_EQ(c.value(out), Logic::k0);
}

TEST(Circuit, XPropagatesFromUndrivenInput) {
  Circuit c;
  const NetId a = c.net("a");
  const NetId out = c.net("out");
  c.make_input(a);
  c.add_gate(GateType::kInv, {a}, out);
  c.power_on();
  c.settle();
  EXPECT_EQ(c.value(out), Logic::kX);
}

TEST(Circuit, FlipFlopCapturesOnStep) {
  Circuit c;
  const NetId d = c.net("d");
  const NetId q = c.net("q");
  c.make_input(d);
  c.add_flipflop(FlipFlop{d, q, {}, {}, {}});
  c.power_on();
  c.set_input(d, true);
  c.settle();
  EXPECT_EQ(c.value(q), Logic::kX);  // power-on state unknown
  c.step();
  EXPECT_EQ(c.value(q), Logic::k1);
  c.set_input(d, false);
  c.step();
  EXPECT_EQ(c.value(q), Logic::k0);
}

TEST(Circuit, FlipFlopReset) {
  Circuit c;
  const NetId d = c.net("d");
  const NetId q = c.net("q");
  const NetId rst = c.net("rst");
  c.make_input(d);
  c.make_input(rst);
  c.add_flipflop(FlipFlop{d, q, {}, {}, rst});
  c.power_on();
  c.set_input(d, true);
  c.set_input(rst, true);
  c.apply_reset();
  EXPECT_EQ(c.value(q), Logic::k0);
  // Reset dominates capture.
  c.step();
  EXPECT_EQ(c.value(q), Logic::k0);
  c.set_input(rst, false);
  c.step();
  EXPECT_EQ(c.value(q), Logic::k1);
}

TEST(Circuit, LatchTransparency) {
  Circuit c;
  const NetId d = c.net("d");
  const NetId en = c.net("en");
  const NetId q = c.net("q");
  c.make_input(d);
  c.make_input(en);
  c.add_latch(Latch{d, q, en});
  c.power_on();
  c.set_input(d, true);
  c.set_input(en, true);
  c.settle();
  EXPECT_EQ(c.value(q), Logic::k1);  // transparent
  c.set_input(en, false);
  c.set_input(d, false);
  c.settle();
  EXPECT_EQ(c.value(q), Logic::k1);  // held
  c.set_input(en, true);
  c.settle();
  EXPECT_EQ(c.value(q), Logic::k0);  // transparent again
}

TEST(Circuit, SrFeedbackSettles) {
  // Cross-coupled NOR SR latch built from gates: stable states settle.
  Circuit c;
  const NetId s = c.net("s");
  const NetId r = c.net("r");
  const NetId q = c.net("q");
  const NetId qb = c.net("qb");
  c.make_input(s);
  c.make_input(r);
  c.add_gate(GateType::kNor, {r, qb}, q);
  c.add_gate(GateType::kNor, {s, q}, qb);
  c.power_on();
  c.set_input(s, true);
  c.set_input(r, false);
  c.settle();
  EXPECT_EQ(c.value(q), Logic::k1);
  EXPECT_EQ(c.value(qb), Logic::k0);
  c.set_input(s, false);
  c.settle();
  EXPECT_EQ(c.value(q), Logic::k1);  // latched
}

TEST(Circuit, OscillationYieldsX) {
  // A single inverter feeding itself cannot settle: output becomes X.
  Circuit c;
  const NetId n = c.net("n");
  c.add_gate(GateType::kInv, {n}, n);
  c.power_on();
  // Seed a known value so the loop actually toggles.
  c.add_gate(GateType::kConst1, {}, n);  // second driver forces a fight
  c.settle();
  EXPECT_EQ(c.value(n), Logic::kX);
}

TEST(Circuit, StuckFaultForcesNet) {
  Circuit c;
  const NetId a = c.net("a");
  const NetId out = c.net("out");
  c.make_input(a);
  c.add_gate(GateType::kInv, {a}, out);
  c.set_stuck(out, Logic::k1);
  c.power_on();
  c.set_input(a, true);
  c.settle();
  EXPECT_EQ(c.value(out), Logic::k1);  // would be 0 fault-free
  c.clear_faults();
  c.settle();
  EXPECT_EQ(c.value(out), Logic::k0);
}

TEST(Circuit, StuckFaultOnInput) {
  Circuit c;
  const NetId a = c.net("a");
  const NetId out = c.net("out");
  c.make_input(a);
  c.add_gate(GateType::kBuf, {a}, out);
  c.set_stuck(a, Logic::k0);
  c.power_on();
  c.set_input(a, true);
  c.settle();
  EXPECT_EQ(c.value(out), Logic::k0);
}

TEST(Circuit, DuplicateNetNameThrows) {
  Circuit c;
  c.net("a");
  EXPECT_THROW(c.net("a"), std::invalid_argument);
  EXPECT_EQ(c.net_or_new("a"), *c.find_net("a"));
}

TEST(Circuit, SetInputOnNonInputThrows) {
  Circuit c;
  const NetId a = c.net("a");
  EXPECT_THROW(c.set_input(a, true), std::invalid_argument);
}

TEST(Circuit, MuxGate) {
  Circuit c;
  const NetId sel = c.net("sel");
  const NetId d0 = c.net("d0");
  const NetId d1 = c.net("d1");
  const NetId out = c.net("out");
  for (const NetId n : {sel, d0, d1}) c.make_input(n);
  c.add_gate(GateType::kMux2, {sel, d0, d1}, out);
  c.power_on();
  c.set_input(d0, false);
  c.set_input(d1, true);
  c.set_input(sel, false);
  c.settle();
  EXPECT_EQ(c.value(out), Logic::k0);
  c.set_input(sel, true);
  c.settle();
  EXPECT_EQ(c.value(out), Logic::k1);
}

}  // namespace
}  // namespace lsl::digital
