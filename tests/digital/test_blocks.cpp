#include "digital/blocks.hpp"

#include <gtest/gtest.h>

#include <string>

namespace lsl::digital {
namespace {

std::string onehot_state(const Circuit& c, const RingCounterBlock& b) {
  std::string s;
  for (const NetId q : b.q) s.push_back(logic_char(c.value(q)));
  return s;
}

struct RingFixture {
  Circuit c;
  NetId en;
  NetId dir;
  RingCounterBlock ring;

  explicit RingFixture(std::size_t n = 4) {
    en = c.net("en");
    dir = c.net("dir");
    c.make_input(en);
    c.make_input(dir);
    ring = build_ring_counter(c, "rc", n, en, dir);
  }

  void preload(const std::string& bits) {
    for (std::size_t i = 0; i < bits.size(); ++i) {
      c.set_ff_state(ring.flops[i], bits[i] == '1' ? Logic::k1 : Logic::k0);
    }
    c.settle();
  }
};

TEST(RingCounter, HoldsWhenDisabled) {
  RingFixture f;
  f.c.power_on();
  f.c.set_input(f.en, false);
  f.c.set_input(f.dir, true);
  f.preload("0100");
  f.c.step();
  EXPECT_EQ(onehot_state(f.c, f.ring), "0100");
}

TEST(RingCounter, ShiftsUp) {
  RingFixture f;
  f.c.power_on();
  f.c.set_input(f.en, true);
  f.c.set_input(f.dir, true);
  f.preload("1000");
  f.c.step();
  EXPECT_EQ(onehot_state(f.c, f.ring), "0100");
  f.c.step();
  EXPECT_EQ(onehot_state(f.c, f.ring), "0010");
}

TEST(RingCounter, ShiftsDownAndWraps) {
  RingFixture f;
  f.c.power_on();
  f.c.set_input(f.en, true);
  f.c.set_input(f.dir, false);
  f.preload("1000");
  f.c.step();
  EXPECT_EQ(onehot_state(f.c, f.ring), "0001");
  f.c.step();
  EXPECT_EQ(onehot_state(f.c, f.ring), "0010");
}

TEST(RingCounter, AllZeroStaysAllZero) {
  // The switch-matrix test preloads all zeroes: no phase selected, and
  // shifting keeps it that way.
  RingFixture f;
  f.c.power_on();
  f.c.set_input(f.en, true);
  f.c.set_input(f.dir, true);
  f.preload("0000");
  f.c.step();
  EXPECT_EQ(onehot_state(f.c, f.ring), "0000");
}

TEST(SaturatingCounter, CountsAndSaturates) {
  Circuit c;
  const NetId inc = c.net("inc");
  const NetId rst = c.net("rst");
  c.make_input(inc);
  c.make_input(rst);
  const auto ctr = build_saturating_counter(c, "lk", 3, inc, rst);
  c.power_on();
  c.set_input(rst, true);
  c.apply_reset();
  c.set_input(rst, false);
  c.set_input(inc, true);
  for (int expected = 1; expected <= 7; ++expected) {
    c.step();
    int value = 0;
    for (std::size_t b = 0; b < 3; ++b) {
      if (c.value(ctr.q[b]) == Logic::k1) value |= 1 << b;
    }
    EXPECT_EQ(value, expected);
  }
  EXPECT_EQ(c.value(ctr.saturated), Logic::k1);
  c.step();  // must hold at 7
  int value = 0;
  for (std::size_t b = 0; b < 3; ++b) {
    if (c.value(ctr.q[b]) == Logic::k1) value |= 1 << b;
  }
  EXPECT_EQ(value, 7);
}

TEST(SaturatingCounter, HoldsWithoutInc) {
  Circuit c;
  const NetId inc = c.net("inc");
  const NetId rst = c.net("rst");
  c.make_input(inc);
  c.make_input(rst);
  const auto ctr = build_saturating_counter(c, "lk", 3, inc, rst);
  c.power_on();
  c.set_input(rst, true);
  c.apply_reset();
  c.set_input(rst, false);
  c.set_input(inc, false);
  c.step();
  c.step();
  for (std::size_t b = 0; b < 3; ++b) EXPECT_EQ(c.value(ctr.q[b]), Logic::k0);
}

TEST(CoarseFsm, DecodesWindowComparator) {
  Circuit c;
  const NetId hi = c.net("hi");
  const NetId lo = c.net("lo");
  c.make_input(hi);
  c.make_input(lo);
  const auto fsm = build_coarse_fsm(c, "fsm", hi, lo);
  c.power_on();
  // Vc above VH: coarse step up + strong discharge.
  c.set_input(hi, true);
  c.set_input(lo, false);
  c.step();
  EXPECT_EQ(c.value(fsm.enable), Logic::k1);
  EXPECT_EQ(c.value(fsm.dir), Logic::k1);
  EXPECT_EQ(c.value(fsm.dnst), Logic::k1);
  EXPECT_EQ(c.value(fsm.upst), Logic::k0);
  // Inside window: idle.
  c.set_input(hi, false);
  c.step();
  EXPECT_EQ(c.value(fsm.enable), Logic::k0);
  EXPECT_EQ(c.value(fsm.upst), Logic::k0);
  EXPECT_EQ(c.value(fsm.dnst), Logic::k0);
  // Below VL: coarse step down + strong charge.
  c.set_input(lo, true);
  c.step();
  EXPECT_EQ(c.value(fsm.enable), Logic::k1);
  EXPECT_EQ(c.value(fsm.dir), Logic::k0);
  EXPECT_EQ(c.value(fsm.upst), Logic::k1);
}

TEST(SwitchMatrix, RoutesSelectedPhase) {
  Circuit c;
  std::vector<NetId> phases;
  std::vector<NetId> sel;
  for (int i = 0; i < 4; ++i) {
    phases.push_back(c.net("ph" + std::to_string(i)));
    sel.push_back(c.net("s" + std::to_string(i)));
    c.make_input(phases.back());
    c.make_input(sel.back());
  }
  const auto sm = build_switch_matrix(c, "sm", phases, sel);
  c.power_on();
  for (int i = 0; i < 4; ++i) {
    c.set_input(phases[i], i == 2);  // only phase 2 is high
    c.set_input(sel[i], false);
  }
  c.set_input(sel[2], true);
  c.settle();
  EXPECT_EQ(c.value(sm.out), Logic::k1);
  c.set_input(sel[2], false);
  c.set_input(sel[1], true);
  c.settle();
  EXPECT_EQ(c.value(sm.out), Logic::k0);
}

TEST(SwitchMatrix, NoSelectionNoClock) {
  Circuit c;
  std::vector<NetId> phases;
  std::vector<NetId> sel;
  for (int i = 0; i < 3; ++i) {
    phases.push_back(c.net("ph" + std::to_string(i)));
    sel.push_back(c.net("s" + std::to_string(i)));
    c.make_input(phases.back());
    c.make_input(sel.back());
    }
  const auto sm = build_switch_matrix(c, "sm", phases, sel);
  c.power_on();
  for (int i = 0; i < 3; ++i) {
    c.set_input(phases[i], true);
    c.set_input(sel[i], false);
  }
  c.settle();
  EXPECT_EQ(c.value(sm.out), Logic::k0);
}

TEST(Divider, BinaryCountSequence) {
  Circuit c;
  const auto div = build_divider(c, "dv", 3);
  c.power_on();
  for (const std::size_t f : div.flops) c.set_ff_state(f, Logic::k0);
  c.settle();
  // The MSB toggles every 4 cycles (divide by 8 overall).
  std::vector<Logic> msb;
  for (int k = 0; k < 16; ++k) {
    c.step();
    msb.push_back(c.value(div.tick));
  }
  // Counting from 0: MSB=1 for counts 4..7 and 12..15.
  for (int k = 0; k < 16; ++k) {
    const int count = k + 1;
    const bool expect_hi = (count % 8) >= 4;
    EXPECT_EQ(msb[k], from_bool(expect_hi)) << "cycle " << k;
  }
}

TEST(AlexanderPd, UpDnDecode) {
  Circuit c;
  const NetId data = c.net("data");
  const NetId edge = c.net("edge");
  c.make_input(data);
  c.make_input(edge);
  const auto pd = build_alexander_pd(c, "pd", data, edge);
  c.power_on();
  // Sequence: prev=0, cur=1 (rising data), edge sample = 0 (early clock):
  // expect UP.
  c.set_input(data, false);
  c.set_input(edge, false);
  c.step();  // cur=0
  c.step();  // prev=0
  c.set_input(data, true);
  c.set_input(edge, false);  // edge sample equals prev -> early
  c.step();
  c.settle();
  EXPECT_EQ(c.value(pd.up), Logic::k1);
  EXPECT_EQ(c.value(pd.dn), Logic::k0);
  // Late clock: edge sample equals the new symbol.
  c.power_on();
  c.set_input(data, false);
  c.set_input(edge, false);
  c.step();
  c.step();
  c.set_input(data, true);
  c.set_input(edge, true);
  c.step();
  c.settle();
  EXPECT_EQ(c.value(pd.up), Logic::k0);
  EXPECT_EQ(c.value(pd.dn), Logic::k1);
}

TEST(AlexanderPd, NoTransitionNoPump) {
  Circuit c;
  const NetId data = c.net("data");
  const NetId edge = c.net("edge");
  c.make_input(data);
  c.make_input(edge);
  const auto pd = build_alexander_pd(c, "pd", data, edge);
  c.power_on();
  c.set_input(data, true);
  c.set_input(edge, true);
  for (int k = 0; k < 4; ++k) c.step();
  EXPECT_EQ(c.value(pd.up), Logic::k0);
  EXPECT_EQ(c.value(pd.dn), Logic::k0);
}

}  // namespace
}  // namespace lsl::digital
