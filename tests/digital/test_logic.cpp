#include "digital/logic.hpp"

#include <gtest/gtest.h>

namespace lsl::digital {
namespace {

TEST(Logic, NotTruthTable) {
  EXPECT_EQ(logic_not(Logic::k0), Logic::k1);
  EXPECT_EQ(logic_not(Logic::k1), Logic::k0);
  EXPECT_EQ(logic_not(Logic::kX), Logic::kX);
}

TEST(Logic, AndTruthTable) {
  EXPECT_EQ(logic_and(Logic::k1, Logic::k1), Logic::k1);
  EXPECT_EQ(logic_and(Logic::k1, Logic::k0), Logic::k0);
  EXPECT_EQ(logic_and(Logic::k0, Logic::kX), Logic::k0);  // controlling value
  EXPECT_EQ(logic_and(Logic::k1, Logic::kX), Logic::kX);
  EXPECT_EQ(logic_and(Logic::kX, Logic::kX), Logic::kX);
}

TEST(Logic, OrTruthTable) {
  EXPECT_EQ(logic_or(Logic::k0, Logic::k0), Logic::k0);
  EXPECT_EQ(logic_or(Logic::k1, Logic::kX), Logic::k1);  // controlling value
  EXPECT_EQ(logic_or(Logic::k0, Logic::kX), Logic::kX);
}

TEST(Logic, XorTruthTable) {
  EXPECT_EQ(logic_xor(Logic::k0, Logic::k1), Logic::k1);
  EXPECT_EQ(logic_xor(Logic::k1, Logic::k1), Logic::k0);
  EXPECT_EQ(logic_xor(Logic::k1, Logic::kX), Logic::kX);
  EXPECT_EQ(logic_xor(Logic::kX, Logic::k0), Logic::kX);
}

TEST(Logic, MuxSelectsAndPessimism) {
  EXPECT_EQ(logic_mux(Logic::k0, Logic::k1, Logic::k0), Logic::k1);
  EXPECT_EQ(logic_mux(Logic::k1, Logic::k1, Logic::k0), Logic::k0);
  EXPECT_EQ(logic_mux(Logic::kX, Logic::k1, Logic::k1), Logic::k1);  // agree
  EXPECT_EQ(logic_mux(Logic::kX, Logic::k1, Logic::k0), Logic::kX);  // disagree
  EXPECT_EQ(logic_mux(Logic::kX, Logic::kX, Logic::kX), Logic::kX);
}

TEST(Logic, ToBoolThrowsOnX) {
  EXPECT_TRUE(to_bool(Logic::k1));
  EXPECT_FALSE(to_bool(Logic::k0));
  EXPECT_THROW(to_bool(Logic::kX), std::logic_error);
}

TEST(Logic, CharRendering) {
  EXPECT_EQ(logic_char(Logic::k0), '0');
  EXPECT_EQ(logic_char(Logic::k1), '1');
  EXPECT_EQ(logic_char(Logic::kX), 'X');
}

}  // namespace
}  // namespace lsl::digital
