#include "spice/netlist.hpp"

#include <gtest/gtest.h>

namespace lsl::spice {
namespace {

TEST(Netlist, GroundIsNodeZero) {
  Netlist nl;
  EXPECT_EQ(nl.node("0"), kGround);
  EXPECT_EQ(nl.node_count(), 1u);
}

TEST(Netlist, NodeCreationIsIdempotent) {
  Netlist nl;
  const NodeId a = nl.node("a");
  EXPECT_EQ(nl.node("a"), a);
  EXPECT_EQ(nl.node_count(), 2u);
  EXPECT_EQ(nl.node_name(a), "a");
}

TEST(Netlist, FindNodeMissing) {
  Netlist nl;
  EXPECT_FALSE(nl.find_node("nope").has_value());
}

TEST(Netlist, FreshNodesAreUnique) {
  Netlist nl;
  const NodeId a = nl.fresh_node("x");
  const NodeId b = nl.fresh_node("x");
  EXPECT_NE(a, b);
  EXPECT_NE(nl.node_name(a), nl.node_name(b));
}

TEST(Netlist, DuplicateDeviceNameThrows) {
  Netlist nl;
  nl.add("r1", Resistor{nl.node("a"), kGround, 1e3});
  EXPECT_THROW(nl.add("r1", Resistor{nl.node("b"), kGround, 1e3}), std::invalid_argument);
}

TEST(Netlist, UnknownCountCountsBranches) {
  Netlist nl;
  nl.add("v1", VSource{nl.node("a"), kGround, 1.0});
  nl.add("r1", Resistor{nl.node("a"), nl.node("b"), 1e3});
  nl.add("e1", Vcvs{nl.node("c"), kGround, nl.node("b"), kGround, 2.0});
  // Nodes a,b,c => 3 voltage unknowns; v1 and e1 => 2 branch currents.
  EXPECT_EQ(nl.unknown_count(), 5u);
}

TEST(Netlist, DisabledDeviceHasNoBranch) {
  Netlist nl;
  const std::size_t vi = nl.add("v1", VSource{nl.node("a"), kGround, 1.0});
  EXPECT_EQ(nl.unknown_count(), 2u);
  nl.device(vi).enabled = false;
  nl.reindex();
  EXPECT_EQ(nl.unknown_count(), 1u);
  EXPECT_THROW(nl.branch_index(vi), std::invalid_argument);
}

TEST(Netlist, ValueCopyIsIndependent) {
  Netlist a;
  a.add("r1", Resistor{a.node("n"), kGround, 100.0});
  Netlist b = a;
  std::get<Resistor>(b.device(0).impl).ohms = 999.0;
  EXPECT_DOUBLE_EQ(std::get<Resistor>(a.device(0).impl).ohms, 100.0);
  EXPECT_DOUBLE_EQ(std::get<Resistor>(b.device(0).impl).ohms, 999.0);
}

TEST(Netlist, FindDeviceByName) {
  Netlist nl;
  nl.add("m1", Mosfet{nl.node("d"), nl.node("g"), kGround, MosType::kNmos, 1e-6, 0.5e-6, 0.0});
  ASSERT_TRUE(nl.find_device("m1").has_value());
  EXPECT_EQ(*nl.find_device("m1"), 0u);
  EXPECT_FALSE(nl.find_device("m2").has_value());
}

TEST(Netlist, VoltageIndexOfGroundThrows) {
  Netlist nl;
  EXPECT_THROW(nl.voltage_index(kGround), std::invalid_argument);
}

}  // namespace
}  // namespace lsl::spice
