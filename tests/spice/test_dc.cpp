#include "spice/dc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lsl::spice {
namespace {

TEST(Dc, VoltageDivider) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId mid = nl.node("mid");
  nl.add("v1", VSource{vin, kGround, 1.2});
  nl.add("r1", Resistor{vin, mid, 10e3});
  nl.add("r2", Resistor{mid, kGround, 30e3});
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.v(nl, "mid"), 0.9, 1e-6);
  // Branch current through v1: 1.2V over 40k = 30uA flowing out of the
  // source's + terminal, i.e. -30uA p->n through the source.
  EXPECT_NEAR(r.i(nl, "v1"), -30e-6, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Netlist nl;
  const NodeId out = nl.node("out");
  // 10uA pulled from ground through the source into node out.
  nl.add("i1", ISource{kGround, out, 10e-6});
  nl.add("r1", Resistor{out, kGround, 50e3});
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.v(nl, "out"), 0.5, 1e-6);
}

TEST(Dc, VcvsGain) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("v1", VSource{in, kGround, 0.25});
  nl.add("e1", Vcvs{out, kGround, in, kGround, 4.0});
  nl.add("rl", Resistor{out, kGround, 1e3});
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.v(nl, "out"), 1.0, 1e-6);
}

TEST(Dc, CapacitorIsOpenAtDc) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add("v1", VSource{a, kGround, 1.2});
  nl.add("c1", Capacitor{a, b, 1e-12});
  nl.add("r1", Resistor{b, kGround, 1e3});
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  // No DC path through the cap: b sits at ground.
  EXPECT_NEAR(r.v(nl, "b"), 0.0, 1e-6);
}

TEST(Dc, FloatingNodeSettlesViaGmin) {
  Netlist nl;
  nl.node("orphan");
  nl.add("v1", VSource{nl.node("a"), kGround, 1.0});
  nl.add("r1", Resistor{nl.node("a"), kGround, 1e3});
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.v(nl, "orphan"), 0.0, 1e-6);
}

TEST(Dc, SeriesResistorLadder) {
  // 12 equal resistors from 1.2V to ground: node k sits at 1.2*(12-k)/12.
  Netlist nl;
  nl.add("v1", VSource{nl.node("n0"), kGround, 1.2});
  for (int k = 0; k < 12; ++k) {
    const NodeId a = nl.node("n" + std::to_string(k));
    const NodeId b = (k == 11) ? kGround : nl.node("n" + std::to_string(k + 1));
    nl.add("r" + std::to_string(k), Resistor{a, b, 1e3});
  }
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  for (int k = 0; k < 12; ++k) {
    EXPECT_NEAR(r.v(nl, "n" + std::to_string(k)), 1.2 * (12 - k) / 12.0, 1e-6) << "node " << k;
  }
}

TEST(Dc, SweepWarmStarts) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("vin", VSource{in, kGround, 0.0});
  nl.add("r1", Resistor{in, out, 1e3});
  nl.add("r2", Resistor{out, kGround, 1e3});
  std::vector<double> values;
  for (int i = 0; i <= 12; ++i) values.push_back(0.1 * i);
  const auto results = dc_sweep(nl, "vin", values);
  ASSERT_EQ(results.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(results[i].converged) << "point " << i;
    EXPECT_NEAR(results[i].v(nl, "out"), values[i] / 2.0, 1e-6);
  }
}

TEST(Dc, NonPositiveResistanceThrows) {
  Netlist nl;
  nl.add("r1", Resistor{nl.node("a"), kGround, 0.0});
  nl.add("v1", VSource{nl.node("a"), kGround, 1.0});
  EXPECT_THROW(solve_dc(nl), std::invalid_argument);
}

}  // namespace
}  // namespace lsl::spice
