// Sparse-engine tests: CSR/symbolic-LU units, sparse-vs-dense
// equivalence on randomized fixed-seed netlists, symbolic-cache
// invalidation across every supported mutation path, and the
// zero-allocation guarantee of the warm Newton inner loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "spice/dc.hpp"
#include "spice/matrix.hpp"
#include "spice/sparse.hpp"
#include "spice/stamp.hpp"
#include "spice/workspace.hpp"
#include "util/rng.hpp"

// Global allocation counter: every operator new in this test binary
// funnels through here, so a warm Newton loop can be asserted
// allocation-free without any instrumentation in the solver itself.
namespace {
std::atomic<long> g_alloc_count{0};
}

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lsl::spice {
namespace {

/// Restores the global solver tuning on scope exit, so tests that flip
/// force_dense/force_sparse cannot leak state into each other.
struct ScopedTuning {
  SolverTuning saved = solver_tuning();
  ~ScopedTuning() { solver_tuning() = saved; }
};

/// Same generators as test_invariants.cpp: fixed-seed random RC ladder.
Netlist make_random_rc(util::Pcg32& rng, std::size_t n_nodes) {
  Netlist nl;
  const NodeId vin = nl.node("in");
  nl.add("vin", VSource{vin, kGround, rng.next_range(0.3, 1.2)});
  NodeId prev = vin;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const NodeId cur = nl.node("n" + std::to_string(i));
    nl.add("r" + std::to_string(i), Resistor{prev, cur, rng.next_range(100.0, 10e3)});
    if (rng.next_bool()) {
      nl.add("rg" + std::to_string(i), Resistor{cur, kGround, rng.next_range(1e3, 100e3)});
    }
    nl.add("c" + std::to_string(i), Capacitor{cur, kGround, rng.next_range(0.1e-12, 5e-12)});
    prev = cur;
  }
  return nl;
}

/// Fixed-seed random MOSFET chain (nonlinear: exercises the split
/// linear/nonlinear stamping, not just the linear base).
Netlist make_random_mos(util::Pcg32& rng, std::size_t n_stages) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  nl.add("v_vdd", VSource{vdd, kGround, 1.2});
  const NodeId in = nl.node("g0");
  nl.add("v_in", VSource{in, kGround, rng.next_range(0.0, 1.2)});
  NodeId gate = in;
  for (std::size_t s = 0; s < n_stages; ++s) {
    const NodeId out = nl.node("o" + std::to_string(s));
    const double w = rng.next_range(0.2e-6, 2.0e-6);
    const double l = rng.next_range(0.2e-6, 1.0e-6);
    const double r_load = rng.next_range(1e3, 50e3);
    if (rng.next_bool()) {
      nl.add("mn" + std::to_string(s), Mosfet{out, gate, kGround, MosType::kNmos, w, l, 0.0});
      nl.add("rl" + std::to_string(s), Resistor{out, vdd, r_load});
    } else {
      nl.add("mp" + std::to_string(s), Mosfet{out, gate, vdd, MosType::kPmos, w, l, 0.0});
      nl.add("rl" + std::to_string(s), Resistor{out, kGround, r_load});
    }
    gate = out;
  }
  return nl;
}

// --- SparseMatrix / SparseLu units ------------------------------------

TEST(SparseEngine, PatternDedupesAndSortsSlots) {
  SparseMatrix m;
  m.begin_pattern(3);
  m.note(0, 2);
  m.note(0, 2);  // duplicate folds into one slot
  m.note(2, 0);
  m.finalize_pattern();
  // 3 diagonal slots + (0,2) + (2,0).
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_NE(m.slot(0, 2), kNoSlot);
  EXPECT_NE(m.slot(2, 0), kNoSlot);
  EXPECT_EQ(m.slot(1, 2), kNoSlot);
  // Row 0 slots are column-sorted: diagonal before (0,2).
  EXPECT_LT(m.slot(0, 0), m.slot(0, 2));
}

TEST(SparseEngine, LuMatchesDenseOnCraftedSystem) {
  // 4x4 with an MNA-like shape: SPD-ish node block plus a voltage-source
  // branch row/column whose diagonal is a structural zero.
  //   [ 2  -1   0   1 ] [x0]   [ 0]
  //   [-1   3  -1   0 ] [x1] = [ 1]
  //   [ 0  -1   2   0 ] [x2]   [ 0]
  //   [ 1   0   0   0 ] [x3]   [ 2]
  SparseMatrix m;
  m.begin_pattern(4);
  m.note(0, 1);
  m.note(1, 0);
  m.note(1, 2);
  m.note(2, 1);
  m.note(0, 3);
  m.note(3, 0);
  m.finalize_pattern();
  m.zero();
  m.add(m.slot(0, 0), 2.0);
  m.add(m.slot(0, 1), -1.0);
  m.add(m.slot(0, 3), 1.0);
  m.add(m.slot(1, 0), -1.0);
  m.add(m.slot(1, 1), 3.0);
  m.add(m.slot(1, 2), -1.0);
  m.add(m.slot(2, 1), -1.0);
  m.add(m.slot(2, 2), 2.0);
  m.add(m.slot(3, 0), 1.0);
  const std::vector<double> b = {0.0, 1.0, 0.0, 2.0};

  SparseLu lu;
  lu.analyze(m, 3);  // unknowns 0..2 are "node voltages", 3 is a branch
  ASSERT_TRUE(lu.factor(m, 1e-18));
  std::vector<double> x(4, 0.0);
  lu.solve(b, x);

  Matrix d(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const std::size_t s = m.slot(r, c);
      d.at(r, c) = s == kNoSlot ? 0.0 : m.values()[s];
    }
  }
  std::vector<double> x_ref;
  ASSERT_TRUE(lu_solve(d, b, x_ref));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-12) << "unknown " << i;
  }
}

TEST(SparseEngine, FactorRejectsSingularMatrix) {
  // Two identical rows -> exactly singular.
  SparseMatrix m;
  m.begin_pattern(2);
  m.note(0, 1);
  m.note(1, 0);
  m.finalize_pattern();
  m.zero();
  m.add(m.slot(0, 0), 1.0);
  m.add(m.slot(0, 1), 1.0);
  m.add(m.slot(1, 0), 1.0);
  m.add(m.slot(1, 1), 1.0);
  SparseLu lu;
  lu.analyze(m, 2);
  EXPECT_FALSE(lu.factor(m, 1e-18));
}

TEST(SparseEngine, ResidualWalkMatchesDenseDefinition) {
  util::Pcg32 rng(7);
  const Netlist nl = make_random_mos(rng, 3);
  StampContext ctx;
  ctx.nl = &nl;
  std::vector<double> x(nl.unknown_count());
  for (auto& v : x) v = rng.next_range(-0.5, 1.5);

  // Reference: dense stamp + full row sweep (the pre-sparse definition).
  Matrix g;
  std::vector<double> b;
  stamp_system(ctx, x, g, b);
  const std::size_t n = nl.unknown_count();
  const std::vector<double> r = mna_residual(ctx, x);
  ASSERT_EQ(r.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = -b[i];
    for (std::size_t j = 0; j < n; ++j) acc += g.at(i, j) * x[j];
    EXPECT_NEAR(r[i], acc, 1e-12 + 1e-9 * std::fabs(acc)) << "row " << i;
  }
}

// --- sparse vs dense equivalence --------------------------------------

TEST(SparseEngine, DcSolutionsMatchDenseOnRandomNetlists) {
  ScopedTuning guard;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Pcg32 rng_a(seed);
    util::Pcg32 rng_b(seed);
    const Netlist nl_rc = make_random_rc(rng_a, 4 + seed % 8);
    const Netlist nl_mos = make_random_mos(rng_b, 2 + seed % 4);
    for (const Netlist* nl : {&nl_rc, &nl_mos}) {
      solver_tuning().force_sparse = true;
      solver_tuning().force_dense = false;
      SolverWorkspace ws_sparse;
      const DcResult rs = solve_dc(*nl, {}, ws_sparse);

      solver_tuning().force_sparse = false;
      solver_tuning().force_dense = true;
      SolverWorkspace ws_dense;
      const DcResult rd = solve_dc(*nl, {}, ws_dense);

      ASSERT_EQ(rs.converged, rd.converged) << "seed " << seed;
      ASSERT_TRUE(rs.converged) << "seed " << seed;
      ASSERT_EQ(rs.x.size(), rd.x.size());
      EXPECT_GT(ws_sparse.stats().sparse_solves, 0u);
      EXPECT_EQ(ws_sparse.stats().dense_fallbacks, 0u) << "seed " << seed;
      EXPECT_EQ(ws_dense.stats().sparse_solves, 0u);
      for (std::size_t i = 0; i < rs.x.size(); ++i) {
        EXPECT_NEAR(rs.x[i], rd.x[i], 1e-6) << "seed " << seed << " unknown " << i;
      }
    }
  }
}

TEST(SparseEngine, WarmSolveBitIdenticalToCold) {
  ScopedTuning guard;
  solver_tuning().force_sparse = true;
  util::Pcg32 rng(42);
  const Netlist nl = make_random_mos(rng, 4);

  SolverWorkspace cold;
  const DcResult first = solve_dc(nl, {}, cold);
  ASSERT_TRUE(first.converged);

  // Same workspace, now warm: every cache hits, and the numbers must be
  // EXACTLY the bits of the cold solve (caches only skip work that
  // would have produced identical values).
  const DcResult warm = solve_dc(nl, {}, cold);
  ASSERT_TRUE(warm.converged);
  EXPECT_GT(cold.stats().symbolic_reuse, 0u);
  ASSERT_EQ(first.x.size(), warm.x.size());
  for (std::size_t i = 0; i < first.x.size(); ++i) {
    EXPECT_EQ(first.x[i], warm.x[i]) << "unknown " << i;
  }
  EXPECT_EQ(first.iterations, warm.iterations);
}

// --- symbolic cache invalidation --------------------------------------

TEST(SparseEngine, CacheInvalidatedByAddDevice) {
  ScopedTuning guard;
  solver_tuning().force_sparse = true;
  util::Pcg32 rng(5);
  Netlist nl = make_random_rc(rng, 5);
  SolverWorkspace ws;

  ASSERT_TRUE(solve_dc(nl, {}, ws).converged);
  EXPECT_EQ(ws.stats().symbolic_builds, 1u);
  ASSERT_TRUE(solve_dc(nl, {}, ws).converged);
  EXPECT_EQ(ws.stats().symbolic_builds, 1u);  // reused
  EXPECT_GT(ws.stats().symbolic_reuse, 0u);

  nl.add("r_extra", Resistor{nl.node("n0"), nl.node("n3"), 2e3});
  ASSERT_TRUE(solve_dc(nl, {}, ws).converged);
  EXPECT_EQ(ws.stats().symbolic_builds, 2u);
}

TEST(SparseEngine, CacheInvalidatedByEnabledToggle) {
  ScopedTuning guard;
  solver_tuning().force_sparse = true;
  util::Pcg32 rng(6);
  Netlist nl = make_random_rc(rng, 5);
  SolverWorkspace ws;

  const DcResult before = solve_dc(nl, {}, ws);
  ASSERT_TRUE(before.converged);
  EXPECT_EQ(ws.stats().symbolic_builds, 1u);

  const auto di = nl.find_device("c2");
  ASSERT_TRUE(di.has_value());
  nl.device(*di).enabled = false;  // non-const access refreshes generation
  const DcResult after = solve_dc(nl, {}, ws);
  ASSERT_TRUE(after.converged);
  EXPECT_EQ(ws.stats().symbolic_builds, 2u);
}

TEST(SparseEngine, CacheInvalidatedByFaultStyleFreshNodeEdit) {
  ScopedTuning guard;
  solver_tuning().force_sparse = true;
  util::Pcg32 rng(8);
  Netlist nl = make_random_rc(rng, 6);
  SolverWorkspace ws;
  ASSERT_TRUE(solve_dc(nl, {}, ws).converged);
  EXPECT_EQ(ws.stats().symbolic_builds, 1u);

  // Series-open style fault edit: splice a fresh node into a resistor.
  const auto di = nl.find_device("r2");
  ASSERT_TRUE(di.has_value());
  const NodeId mid = nl.fresh_node("open_r2");
  auto& r2 = std::get<Resistor>(nl.device(*di).impl);
  const NodeId old_b = r2.b;
  r2.b = mid;
  nl.add("r2_open", Resistor{mid, old_b, 1e9});

  const DcResult after = solve_dc(nl, {}, ws);
  ASSERT_TRUE(after.converged);
  EXPECT_EQ(ws.stats().symbolic_builds, 2u);
}

TEST(SparseEngine, DcSweepSharesOneSymbolicFactorization) {
  ScopedTuning guard;
  solver_tuning().force_sparse = true;
  util::Pcg32 rng(9);
  const Netlist nl = make_random_rc(rng, 6);
  SolverWorkspace ws;

  std::vector<double> points;
  for (int i = 0; i <= 20; ++i) points.push_back(0.05 * i);
  const auto sweep = dc_sweep(nl, "vin", points, {}, ws);
  ASSERT_EQ(sweep.size(), points.size());
  for (const auto& r : sweep) ASSERT_TRUE(r.converged);
  // dc_sweep copies the netlist once; every point mutates the source
  // value through the generation-preserving setter, so the whole sweep
  // is served by a single symbolic analysis.
  EXPECT_EQ(ws.stats().symbolic_builds, 1u);
  EXPECT_GT(ws.stats().symbolic_reuse, 0u);
  EXPECT_EQ(ws.stats().dense_fallbacks, 0u);
}

// --- zero allocations in the warm Newton loop -------------------------

// Separate suite name: the sanitizer CI job runs the SparseEngine suite
// but skips these — allocation counts under ASan/TSan interceptors are
// not meaningful.
TEST(NewtonAllocation, WarmNewtonSolveIsAllocationFree) {
  ScopedTuning guard;
  solver_tuning().force_sparse = true;
  util::Pcg32 rng(11);
  const Netlist nl = make_random_mos(rng, 4);
  SolverWorkspace ws;

  StampContext ctx;
  ctx.nl = &nl;
  std::vector<double> x(nl.unknown_count(), 0.0);
  std::vector<double> x_new;

  // Warm-up: builds the pattern, symbolic LU, linear base, and buffers.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ws.solve_newton_system(ctx, x, x_new));

  const long before = g_alloc_count.load();
  for (int i = 0; i < 50; ++i) {
    if (!ws.solve_newton_system(ctx, x, x_new)) {
      ASSERT_TRUE(false) << "solve failed on warm iteration " << i;
    }
    // Nudge the iterate so the nonlinear restamp sees fresh voltages.
    for (std::size_t k = 0; k + 1 < x.size(); ++k) x[k] = 0.9 * x[k] + 0.1 * x_new[k];
  }
  const long after = g_alloc_count.load();
  EXPECT_EQ(after, before) << "warm sparse Newton iterations allocated";
  EXPECT_EQ(ws.stats().dense_fallbacks, 0u);
}

TEST(NewtonAllocation, WarmDensePathIsAllocationFreeToo) {
  ScopedTuning guard;
  solver_tuning().force_dense = true;
  util::Pcg32 rng(12);
  const Netlist nl = make_random_rc(rng, 5);
  SolverWorkspace ws;

  StampContext ctx;
  ctx.nl = &nl;
  std::vector<double> x(nl.unknown_count(), 0.0);
  std::vector<double> x_new;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ws.solve_newton_system(ctx, x, x_new));

  const long before = g_alloc_count.load();
  for (int i = 0; i < 50; ++i) {
    if (!ws.solve_newton_system(ctx, x, x_new)) {
      ASSERT_TRUE(false) << "solve failed on warm iteration " << i;
    }
  }
  const long after = g_alloc_count.load();
  EXPECT_EQ(after, before) << "warm dense Newton iterations allocated";
}

}  // namespace
}  // namespace lsl::spice
