// Property tests for the MNA core, on randomized (fixed-seed) netlists:
//
//  1. KCL invariant — at every accepted DC and transient solution the
//     nonlinear residual G(x)·x − b(x) over the node rows is below
//     tolerance. Newton converges on |dV|, not on the residual, so this
//     is a genuinely independent check of the stamps (a sign error in a
//     companion model or Jacobian remainder shows up here even when the
//     iteration happily "converges").
//  2. Integrator cross-check — backward Euler and trapezoidal are two
//     independent discretizations; both must track the analytic RC step
//     response within their theoretical error bounds and agree with
//     each other.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "spice/dc.hpp"
#include "spice/stamp.hpp"
#include "spice/transient.hpp"
#include "util/rng.hpp"

namespace lsl::spice {
namespace {

/// KCL tolerance in amperes. Newton stops at |dV| < 1e-9 V; with branch
/// conductances up to ~1 S (capacitor companions at C/dt) the residual
/// bound is ||J||·|dV|·n ≈ 1e-7 — 1e-6 has margin without hiding bugs
/// (a wrong companion model gives residuals of order the branch
/// current, i.e. 1e-3 and up).
constexpr double kKclTol = 1e-6;

/// Random RC ladder: a driven resistor chain with random grounded
/// resistors and capacitors hanging off every node. Always well-posed
/// (every node reaches the source through the chain).
Netlist make_random_rc(util::Pcg32& rng, std::size_t n_nodes) {
  Netlist nl;
  const NodeId vin = nl.node("in");
  nl.add("vin", VSource{vin, kGround, rng.next_range(0.3, 1.2)});
  NodeId prev = vin;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const NodeId cur = nl.node("n" + std::to_string(i));
    nl.add("r" + std::to_string(i), Resistor{prev, cur, rng.next_range(100.0, 10e3)});
    if (rng.next_bool()) {
      nl.add("rg" + std::to_string(i), Resistor{cur, kGround, rng.next_range(1e3, 100e3)});
    }
    nl.add("c" + std::to_string(i), Capacitor{cur, kGround, rng.next_range(0.1e-12, 5e-12)});
    prev = cur;
  }
  return nl;
}

/// Random MOSFET chain: alternating common-source stages (NMOS with
/// resistive pull-up / PMOS with resistive pull-down) with random
/// geometry, each gate driven by the previous stage's output.
Netlist make_random_mos(util::Pcg32& rng, std::size_t n_stages) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  nl.add("v_vdd", VSource{vdd, kGround, 1.2});
  const NodeId in = nl.node("g0");
  nl.add("v_in", VSource{in, kGround, rng.next_range(0.0, 1.2)});
  NodeId gate = in;
  for (std::size_t s = 0; s < n_stages; ++s) {
    const NodeId out = nl.node("o" + std::to_string(s));
    const double w = rng.next_range(0.2e-6, 2.0e-6);
    const double l = rng.next_range(0.2e-6, 1.0e-6);
    const double r_load = rng.next_range(1e3, 50e3);
    if (rng.next_bool()) {
      nl.add("mn" + std::to_string(s), Mosfet{out, gate, kGround, MosType::kNmos, w, l, 0.0});
      nl.add("rl" + std::to_string(s), Resistor{out, vdd, r_load});
    } else {
      nl.add("mp" + std::to_string(s), Mosfet{out, gate, vdd, MosType::kPmos, w, l, 0.0});
      nl.add("rl" + std::to_string(s), Resistor{out, kGround, r_load});
    }
    gate = out;
  }
  return nl;
}

/// Residual of solve_dc's final system: gmin_final to ground, sources
/// at full scale.
double dc_residual(const Netlist& nl, const DcResult& r, const DcOptions& opts) {
  StampContext ctx;
  ctx.nl = &nl;
  ctx.gmin = opts.gmin_final;
  return kcl_residual_norm(ctx, r.x);
}

TEST(KclInvariant, RandomRcLaddersAtDc) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Pcg32 rng(seed);
    const Netlist nl = make_random_rc(rng, 3 + seed % 6);
    const DcOptions opts;
    const DcResult r = solve_dc(nl, opts);
    ASSERT_TRUE(r.converged) << "seed " << seed;
    EXPECT_LT(dc_residual(nl, r, opts), kKclTol) << "seed " << seed;
  }
}

TEST(KclInvariant, RandomMosfetChainsAtDc) {
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    util::Pcg32 rng(seed);
    const Netlist nl = make_random_mos(rng, 2 + seed % 4);
    const DcOptions opts;
    const DcResult r = solve_dc(nl, opts);
    ASSERT_TRUE(r.converged) << "seed " << seed;
    EXPECT_LT(dc_residual(nl, r, opts), kKclTol) << "seed " << seed;
  }
}

TEST(KclInvariant, RandomRcTransientEveryAcceptedStep) {
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    util::Pcg32 rng(seed);
    const Netlist nl = make_random_rc(rng, 4);
    for (const Integrator method : {Integrator::kBackwardEuler, Integrator::kTrapezoidal}) {
      TransientOptions opts;
      opts.t_stop = 50e-9;
      opts.dt = 0.5e-9;
      opts.integrator = method;
      opts.record_kcl_residual = true;
      const TransientResult r =
          run_transient(nl, {{"vin", square_wave(0.0, 1.0, 20e-9)}}, opts);
      ASSERT_TRUE(r.ok) << "seed " << seed;
      EXPECT_GT(r.steps_accepted, 0);
      EXPECT_LT(r.max_kcl_residual, kKclTol)
          << "seed " << seed << (method == Integrator::kTrapezoidal ? " trap" : " be");
    }
  }
}

TEST(KclInvariant, MosfetTransientEveryAcceptedStep) {
  util::Pcg32 rng(4242);
  Netlist nl = make_random_mos(rng, 3);
  // Capacitive load on the last stage output so both companions engage.
  nl.add("cl", Capacitor{*nl.find_node("o2"), kGround, 50e-15});
  for (const Integrator method : {Integrator::kBackwardEuler, Integrator::kTrapezoidal}) {
    TransientOptions opts;
    opts.t_stop = 20e-9;
    opts.dt = 0.1e-9;
    opts.integrator = method;
    opts.record_kcl_residual = true;
    const TransientResult r =
        run_transient(nl, {{"v_in", square_wave(0.1, 1.1, 10e-9)}}, opts);
    ASSERT_TRUE(r.ok);
    EXPECT_LT(r.max_kcl_residual, kKclTol);
  }
}

/// Analytic cross-check: series R into grounded C, input ramping
/// 0 -> 1 V over t_r (corner on the output grid), then flat:
///   t <= t_r:  v = (t - tau(1 - e^{-t/tau})) / t_r
///   t >= t_r:  v = 1 - (tau/t_r)(1 - e^{-t_r/tau}) e^{-(t-t_r)/tau}
/// A hard step at t=0 would be unfair to trapezoidal: its current
/// history i_0 = 0 is consistent with the pre-step input, so the
/// discontinuity costs it an O(dt/2tau) startup offset no matter how
/// correct the companion model is. A piecewise-linear input with the
/// corner on a grid point keeps both methods at their theoretical
/// orders.
TEST(IntegratorCrossCheck, RcRampResponseMatchesAnalyticSolution) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("vin", VSource{in, kGround, 0.0});
  nl.add("r", Resistor{in, out, 1e3});
  nl.add("c", Capacitor{out, kGround, 1e-9});  // tau = 1 us

  constexpr double t_r = 100e-9;  // ramp end: 2 output steps
  TransientOptions base;
  base.t_stop = 3e-6;
  base.dt = 50e-9;  // tau / 20
  base.probes = {"out"};
  const auto step = pwl_wave({{0.0, 0.0}, {t_r, 1.0}});

  base.integrator = Integrator::kBackwardEuler;
  const TransientResult be = run_transient(nl, {{"vin", step}}, base);
  base.integrator = Integrator::kTrapezoidal;
  const TransientResult tr = run_transient(nl, {{"vin", step}}, base);
  ASSERT_TRUE(be.ok);
  ASSERT_TRUE(tr.ok);
  ASSERT_EQ(be.time.size(), tr.time.size());

  const double tau = 1e3 * 1e-9;
  double be_err = 0.0;
  double tr_err = 0.0;
  double diff = 0.0;
  for (std::size_t k = 1; k < be.time.size(); ++k) {
    const double t = be.time[k];
    const double analytic =
        t <= t_r ? (t - tau * (1.0 - std::exp(-t / tau))) / t_r
                 : 1.0 - (tau / t_r) * (1.0 - std::exp(-t_r / tau)) * std::exp(-(t - t_r) / tau);
    be_err = std::max(be_err, std::fabs(be.probe("out")[k] - analytic));
    tr_err = std::max(tr_err, std::fabs(tr.probe("out")[k] - analytic));
    diff = std::max(diff, std::fabs(be.probe("out")[k] - tr.probe("out")[k]));
  }
  // First-order method at h = tau/20: O(h/2tau) ~ 2%. Second-order:
  // O(h^2/12tau^2) ~ 0.02%.
  EXPECT_LT(be_err, 0.03);
  EXPECT_LT(tr_err, 1e-3);
  EXPECT_LT(tr_err, be_err);  // trapezoidal is strictly more accurate here
  EXPECT_LT(diff, 0.03);      // the two discretizations agree within BE's bound
}

}  // namespace
}  // namespace lsl::spice
