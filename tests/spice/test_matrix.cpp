#include "spice/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace lsl::spice {
namespace {

TEST(Matrix, StoresAndRetrieves) {
  Matrix m(2, 3);
  m.at(0, 0) = 1.5;
  m.at(1, 2) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(Matrix, FillAndResize) {
  Matrix m(2, 2);
  m.fill(7.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 7.0);
  m.resize(3, 3);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
}

TEST(LuSolve, Identity) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  std::vector<double> b{1.0, 2.0, 3.0};
  std::vector<double> x;
  ASSERT_TRUE(lu_solve(a, b, x));
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(LuSolve, KnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(lu_solve(a, {5, 10}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  std::vector<double> x;
  ASSERT_TRUE(lu_solve(a, {2, 3}, x));
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuSolve, SingularRejected) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  std::vector<double> x{99.0};
  EXPECT_FALSE(lu_solve(a, {1, 2}, x));
}

TEST(LuSolve, EmptyAndMismatchedRejected) {
  Matrix a;
  std::vector<double> x;
  EXPECT_FALSE(lu_solve(a, {}, x));
  Matrix b(2, 2);
  EXPECT_FALSE(lu_solve(b, {1.0}, x));
}

TEST(LuSolve, RandomRoundTrip) {
  // Property: for random well-conditioned A and x_true, solving A x = A
  // x_true recovers x_true.
  util::Pcg32 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(8);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.next_range(-1.0, 1.0);
      a.at(r, r) += 4.0;  // diagonally dominant => well conditioned
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.next_range(-10.0, 10.0);
    std::vector<double> b(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) b[r] += a.at(r, c) * x_true[c];
    }
    std::vector<double> x;
    ASSERT_TRUE(lu_solve(a, b, x));
    for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(x[k], x_true[k], 1e-9);
  }
}

}  // namespace
}  // namespace lsl::spice
