// Fallback-ladder and failure-taxonomy tests: deliberately pathological
// netlists must come back with the right SolveStatus — never a throw, a
// hang, or a silent `false`.
#include <gtest/gtest.h>

#include <string>

#include "spice/dc.hpp"
#include "spice/transient.hpp"

namespace lsl::spice {
namespace {

/// Three-stage CMOS inverter chain: a well-posed nonlinear circuit the
/// solver handles easily at default settings.
Netlist inverter_chain(int stages = 3) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  nl.add("v_vdd", VSource{vdd, kGround, 1.2});
  const NodeId in = nl.node("in");
  nl.add("v_in", VSource{in, kGround, 0.0});
  NodeId prev = in;
  for (int k = 0; k < stages; ++k) {
    const NodeId out = nl.node("out" + std::to_string(k));
    nl.add("mp" + std::to_string(k), Mosfet{out, prev, vdd, MosType::kPmos, 1.0e-6, 0.5e-6});
    nl.add("mn" + std::to_string(k), Mosfet{out, prev, kGround, MosType::kNmos, 0.5e-6, 0.5e-6});
    prev = out;
  }
  return nl;
}

TEST(SolverRobustness, HealthyCircuitReportsConvergedWithDiagnostics) {
  const Netlist nl = inverter_chain();
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.status, SolveStatus::kConverged);
  EXPECT_TRUE(solve_ok(r.status));
  EXPECT_GT(r.diag.iterations, 0);
  EXPECT_EQ(r.iterations, r.diag.iterations);
  // No initial guess: the ladder starts at the gmin-stepping rung.
  EXPECT_EQ(r.diag.fallback, "gmin-step");
  EXPECT_EQ(r.diag.fallback_depth, 1);
  EXPECT_LT(r.diag.final_max_dv, 1e-9);
  EXPECT_FALSE(r.diag.worst_node.empty());
}

TEST(SolverRobustness, ContradictorySourcesReportSingularMatrix) {
  // Two parallel voltage sources demanding different voltages on the
  // same node: the MNA branch rows are linearly dependent, so every
  // ladder rung hits a zero pivot. Must classify, not throw.
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add("v1", VSource{a, kGround, 1.0});
  nl.add("v2", VSource{a, kGround, 2.0});
  nl.add("r1", Resistor{a, kGround, 1e3});
  const DcResult r = solve_dc(nl);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status, SolveStatus::kSingularMatrix);
  EXPECT_FALSE(solve_ok(r.status));
}

TEST(SolverRobustness, TightIterationBudgetReportsMaxIterations) {
  // With 2 iterations and damped steps the solver cannot move the rails
  // up to 1.2 V on any rung (heavy damping gets 6 iterations of at most
  // 0.05 V each). The ladder must exhaust and say why.
  const Netlist nl = inverter_chain();
  DcOptions opts;
  opts.max_iterations = 2;
  const DcResult r = solve_dc(nl, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status, SolveStatus::kMaxIterations);
  EXPECT_EQ(r.diag.fallback, "exhausted");
  EXPECT_GT(r.diag.iterations, 0);
}

TEST(SolverRobustness, DisabledLadderRungsAreSkipped) {
  const Netlist nl = inverter_chain();
  DcOptions opts;
  opts.max_iterations = 2;
  opts.allow_source_stepping = false;
  opts.allow_heavy_damping = false;
  opts.allow_relaxed_tol = false;
  const DcResult shallow = solve_dc(nl, opts);
  EXPECT_FALSE(shallow.converged);

  DcOptions full;
  full.max_iterations = 2;
  const DcResult deep = solve_dc(nl, full);
  // The deeper ladder spends strictly more Newton iterations.
  EXPECT_GT(deep.diag.iterations, shallow.diag.iterations);
}

TEST(SolverRobustness, WallClockDeadlineReportsTimeout) {
  const Netlist nl = inverter_chain();
  DcOptions opts;
  opts.timeout_sec = 1e-12;  // expires before the first iteration
  const DcResult r = solve_dc(nl, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status, SolveStatus::kTimeout);
}

TEST(SolverRobustness, TransientHalvesStepsAndStaysOnGrid) {
  // A 1.2 V ramp across one 1 ns grid step with a 3-iteration Newton
  // budget: the full step needs 4 damped iterations, the halved step
  // fits. The run must succeed via sub-stepping and still sample on the
  // k*dt grid.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("v_in", VSource{in, kGround, 0.0});
  nl.add("r1", Resistor{in, out, 1e3});
  nl.add("c1", Capacitor{out, kGround, 1e-15});

  TransientOptions opts;
  opts.t_stop = 3e-9;
  opts.dt = 1e-9;
  opts.newton.max_iterations = 3;
  opts.probes = {"in", "out"};
  const auto drive = pwl_wave({{0.0, 0.0}, {1e-9, 1.2}});
  const TransientResult res = run_transient(nl, {{"v_in", drive}}, opts);

  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.status, SolveStatus::kConverged);
  EXPECT_GT(res.step_halvings, 0);
  EXPECT_GT(res.steps_accepted, 3);  // more sub-steps than grid steps
  ASSERT_EQ(res.time.size(), 4u);    // t = 0, 1, 2, 3 ns exactly
  for (std::size_t k = 0; k < res.time.size(); ++k) {
    EXPECT_NEAR(res.time[k], static_cast<double>(k) * 1e-9, 1e-18);
  }
  EXPECT_NEAR(res.final_v("in"), 1.2, 1e-6);
}

TEST(SolverRobustness, UnresolvableEdgeReportsTimestepUnderflow) {
  // A vertical edge (duplicate PWL timestamps) with a 2-iteration Newton
  // budget: whatever the sub-step, some step contains the full 1.2 V
  // jump, which damped Newton cannot traverse in 2 iterations. The
  // halving ladder must bottom out and classify the failure.
  Netlist nl;
  const NodeId in = nl.node("in");
  nl.add("v_in", VSource{in, kGround, 0.0});
  nl.add("r1", Resistor{in, kGround, 1e3});

  TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = 1e-9;
  opts.newton.max_iterations = 2;
  opts.max_step_halvings = 4;
  opts.probes = {"in"};
  const auto drive = pwl_wave({{0.0, 0.0}, {0.5e-9, 0.0}, {0.5e-9, 1.2}, {2e-9, 1.2}});
  const TransientResult res = run_transient(nl, {{"v_in", drive}}, opts);

  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.status, SolveStatus::kTimestepUnderflow);
  EXPECT_LT(res.t_reached, opts.t_stop);
  // The partial waveform up to the failure is retained.
  EXPECT_FALSE(res.time.empty());
}

TEST(SolverRobustness, StatusNamesRoundTrip) {
  for (const SolveStatus st :
       {SolveStatus::kConverged, SolveStatus::kSingularMatrix, SolveStatus::kMaxIterations,
        SolveStatus::kTimestepUnderflow, SolveStatus::kNonFinite, SolveStatus::kTimeout}) {
    SolveStatus back = SolveStatus::kConverged;
    ASSERT_TRUE(solve_status_from_string(to_string(st), back)) << to_string(st);
    EXPECT_EQ(back, st);
  }
  SolveStatus ignored = SolveStatus::kConverged;
  EXPECT_FALSE(solve_status_from_string("bogus", ignored));
}

}  // namespace
}  // namespace lsl::spice
