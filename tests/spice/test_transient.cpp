#include "spice/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lsl::spice {
namespace {

TEST(Waveforms, DcWave) {
  const Waveform w = dc_wave(0.7);
  EXPECT_DOUBLE_EQ(w(0.0), 0.7);
  EXPECT_DOUBLE_EQ(w(1e-3), 0.7);
}

TEST(Waveforms, SquareWave) {
  const Waveform w = square_wave(0.0, 1.2, 10e-9, 1e-9);
  EXPECT_DOUBLE_EQ(w(0.0), 0.0);       // before delay
  EXPECT_DOUBLE_EQ(w(2e-9), 1.2);      // first high phase
  EXPECT_DOUBLE_EQ(w(7e-9), 0.0);      // low phase
  EXPECT_DOUBLE_EQ(w(12e-9), 1.2);     // next period
}

TEST(Waveforms, PwlInterpolatesAndClamps) {
  const Waveform w = pwl_wave({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(w(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w(2.0), 2.0);
  EXPECT_DOUBLE_EQ(w(9.0), 2.0);
}

TEST(Waveforms, PwlDuplicateTimestampsAreAVerticalEdge) {
  // Regression: a repeated timestamp used to divide by zero and poison
  // the waveform with NaN. It must instead snap to the later point.
  const Waveform w = pwl_wave({{0.0, 0.0}, {1.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(w(0.5), 0.0);
  EXPECT_DOUBLE_EQ(w(1.5), 2.0);
  EXPECT_DOUBLE_EQ(w(3.0), 2.0);
  for (double t = -0.5; t <= 3.5; t += 0.01) {
    ASSERT_TRUE(std::isfinite(w(t))) << "t = " << t;
  }
}

TEST(Transient, RcChargingMatchesAnalytic) {
  // R = 1k, C = 1nF, step 0 -> 1V at t=0+: v(t) = 1 - exp(-t/RC).
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("vin", VSource{in, kGround, 0.0});
  nl.add("r1", Resistor{in, out, 1e3});
  nl.add("c1", Capacitor{out, kGround, 1e-9});

  TransientOptions opts;
  opts.t_stop = 5e-6;
  opts.dt = 5e-9;
  opts.probes = {"out"};
  // Drive: starts at 1V from the first step (t=0 OP uses 1V too, so
  // instead use a PWL that is 0 until 10ns then steps).
  const auto res = run_transient(nl, {{"vin", pwl_wave({{0.0, 0.0}, {9e-9, 0.0}, {10e-9, 1.0}})}},
                                 opts);
  ASSERT_TRUE(res.ok);
  const double tau = 1e3 * 1e-9;
  for (std::size_t i = 0; i < res.time.size(); i += 50) {
    const double t = res.time[i] - 10e-9;
    if (t < 5.0 * opts.dt) continue;  // skip the ramp region
    const double expected = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(res.v.at("out")[i], expected, 0.02) << "t=" << res.time[i];
  }
  // At ~5 tau the analytic residue is e^-5 ~ 0.7%.
  EXPECT_NEAR(res.final_v("out"), 1.0, 0.01);
}

TEST(Transient, RcDividerHighPassBehaviour) {
  // A series cap into a resistor passes edges and decays: after a step
  // the output spikes then returns to 0.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("vin", VSource{in, kGround, 0.0});
  nl.add("c1", Capacitor{in, out, 1e-12});
  nl.add("r1", Resistor{out, kGround, 10e3});

  TransientOptions opts;
  opts.t_stop = 500e-9;
  opts.dt = 0.2e-9;
  opts.probes = {"out"};
  const auto res =
      run_transient(nl, {{"vin", pwl_wave({{0.0, 0.0}, {50e-9, 0.0}, {50.2e-9, 1.0}})}}, opts);
  ASSERT_TRUE(res.ok);
  // Peak shortly after the edge, decayed by 5 tau (tau = 10ns).
  double peak = 0.0;
  for (std::size_t i = 0; i < res.time.size(); ++i) peak = std::max(peak, res.v.at("out")[i]);
  EXPECT_GT(peak, 0.5);
  EXPECT_NEAR(res.final_v("out"), 0.0, 0.01);
}

TEST(Transient, CmosInverterDrivesRailToRail) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("vdd", VSource{vdd, kGround, 1.2});
  nl.add("vin", VSource{in, kGround, 0.0});
  nl.add("mp", Mosfet{out, in, vdd, MosType::kPmos, 2e-6, 0.13e-6, 0.0});
  nl.add("mn", Mosfet{out, in, kGround, MosType::kNmos, 1e-6, 0.13e-6, 0.0});
  nl.add("cl", Capacitor{out, kGround, 10e-15});

  TransientOptions opts;
  opts.t_stop = 40e-9;
  opts.dt = 20e-12;
  opts.probes = {"out"};
  const auto res = run_transient(nl, {{"vin", square_wave(0.0, 1.2, 20e-9, 2e-9)}}, opts);
  ASSERT_TRUE(res.ok);
  // Out is inverted: low while in high (2..12ns), high while in low.
  const auto& t = res.time;
  const auto& vout = res.v.at("out");
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] > 6e-9 && t[i] < 11e-9) {
      EXPECT_LT(vout[i], 0.1) << "t=" << t[i];
    }
    if (t[i] > 16e-9 && t[i] < 21e-9) {
      EXPECT_GT(vout[i], 1.1) << "t=" << t[i];
    }
  }
}

TEST(Transient, UnknownDriveThrows) {
  Netlist nl;
  nl.add("v1", VSource{nl.node("a"), kGround, 0.0});
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = 1e-10;
  EXPECT_THROW(run_transient(nl, {{"nope", dc_wave(0.0)}}, opts), std::invalid_argument);
}

TEST(Transient, UnknownProbeThrows) {
  Netlist nl;
  nl.add("v1", VSource{nl.node("a"), kGround, 0.0});
  TransientOptions opts;
  opts.t_stop = 1e-9;
  opts.dt = 1e-10;
  opts.probes = {"missing"};
  EXPECT_THROW(run_transient(nl, {}, opts), std::invalid_argument);
}

}  // namespace
}  // namespace lsl::spice
