#include "spice/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lsl::spice {
namespace {

TEST(LogFrequencies, SpansDecades) {
  const auto f = log_frequencies(1e3, 1e6, 4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_NEAR(f[0], 1e3, 1e-6);
  EXPECT_NEAR(f[1], 1e4, 1e-3);
  EXPECT_NEAR(f[3], 1e6, 1e-1);
}

TEST(Ac, RcLowPassPole) {
  // R = 1k, C = 159.15 pF -> f_3dB = 1 MHz.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("vin", VSource{in, kGround, 0.0});
  nl.add("r1", Resistor{in, out, 1e3});
  nl.add("c1", Capacitor{out, kGround, 159.155e-12});

  const auto freqs = std::vector<double>{1e4, 1e6, 1e8};
  const auto r = run_ac(nl, "vin", freqs, {"out"});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.mag_db("out", 0), 0.0, 0.1);    // passband
  EXPECT_NEAR(r.mag_db("out", 1), -3.01, 0.1);  // pole
  EXPECT_NEAR(r.mag_db("out", 2), -40.0, 0.5);  // -20 dB/dec, 2 decades
  // Phase: -45 degrees at the pole.
  EXPECT_NEAR(r.phase_deg("out", 1), -45.0, 1.0);
}

TEST(Ac, CrHighPassZero) {
  // C = 1 nF into R = 1k: f_3dB = 159 kHz, passband at high f.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("vin", VSource{in, kGround, 0.0});
  nl.add("c1", Capacitor{in, out, 1e-9});
  nl.add("r1", Resistor{out, kGround, 1e3});
  const auto r = run_ac(nl, "vin", {1e3, 159.155e3, 1e8}, {"out"});
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.mag_db("out", 0), -40.0);
  EXPECT_NEAR(r.mag_db("out", 1), -3.01, 0.1);
  EXPECT_NEAR(r.mag_db("out", 2), 0.0, 0.05);
}

TEST(Ac, VoltageDividerFlat) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("vin", VSource{in, kGround, 0.0});
  nl.add("r1", Resistor{in, out, 3e3});
  nl.add("r2", Resistor{out, kGround, 1e3});
  const auto r = run_ac(nl, "vin", log_frequencies(1e3, 1e9, 5), {"out"});
  ASSERT_TRUE(r.ok);
  for (std::size_t i = 0; i < r.freq.size(); ++i) {
    EXPECT_NEAR(r.mag("out", i), 0.25, 1e-9) << "f=" << r.freq[i];
  }
}

TEST(Ac, CommonSourceAmpGain) {
  // Resistor-loaded NMOS common-source stage biased in saturation: the
  // low-frequency AC gain must equal gm*(RL || ro) from the model.
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add("vdd", VSource{vdd, kGround, 1.2});
  nl.add("vin", VSource{in, kGround, 0.55});  // bias above VT
  nl.add("rl", Resistor{vdd, out, 30e3});
  nl.add("m1", Mosfet{out, in, kGround, MosType::kNmos, 2e-6, 0.5e-6, 0.0});

  const auto r = run_ac(nl, "vin", {1e3}, {"out"});
  ASSERT_TRUE(r.ok);
  const double gain = r.mag("out", 0);
  EXPECT_GT(gain, 2.0);   // a real amplifier
  EXPECT_LT(gain, 60.0);  // bounded by gm*RL for these sizes

  // Adding load capacitance must roll the gain off.
  nl.add("cl", Capacitor{out, kGround, 1e-12});
  const auto hi = run_ac(nl, "vin", {1e3, 1e9}, {"out"});
  ASSERT_TRUE(hi.ok);
  EXPECT_LT(hi.mag("out", 1), 0.5 * hi.mag("out", 0));
}

TEST(Ac, UnknownSourceThrows) {
  Netlist nl;
  nl.add("v1", VSource{nl.node("a"), kGround, 0.0});
  EXPECT_THROW(run_ac(nl, "nope", {1e6}), std::invalid_argument);
}

TEST(Ac, UnknownProbeThrows) {
  Netlist nl;
  nl.add("v1", VSource{nl.node("a"), kGround, 0.0});
  EXPECT_THROW(run_ac(nl, "v1", {1e6}, {"missing"}), std::invalid_argument);
}

}  // namespace
}  // namespace lsl::spice
