#include "spice/export.hpp"

#include <gtest/gtest.h>

namespace lsl::spice {
namespace {

Netlist tiny() {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId out = nl.node("n.1");  // punctuation in the name
  nl.add("v_vdd", VSource{vdd, kGround, 1.2});
  nl.add("r1", Resistor{vdd, out, 10e3});
  nl.add("c1", Capacitor{out, kGround, 1e-12});
  nl.add("m1", Mosfet{out, vdd, kGround, MosType::kNmos, 1e-6, 0.5e-6, 0.0});
  nl.add("e1", Vcvs{nl.node("buf"), kGround, out, kGround, 2.0});
  nl.add("i1", ISource{vdd, out, 1e-6});
  return nl;
}

TEST(Export, ContainsEveryDeviceWithPrefix) {
  const std::string deck = export_spice(tiny());
  EXPECT_NE(deck.find("Vv_vdd vdd 0 DC 1.2"), std::string::npos);
  EXPECT_NE(deck.find("Rr1 vdd n_1 10000"), std::string::npos);
  EXPECT_NE(deck.find("Cc1 n_1 0 1e-12"), std::string::npos);
  EXPECT_NE(deck.find("Mm1 n_1 vdd 0 0 lsl_nmos"), std::string::npos);
  EXPECT_NE(deck.find("Ee1 buf 0 n_1 0 2"), std::string::npos);
  EXPECT_NE(deck.find("Ii1 vdd n_1 DC 1e-06"), std::string::npos);
  EXPECT_NE(deck.find(".END"), std::string::npos);
}

TEST(Export, ModelCardsPresent) {
  const std::string deck = export_spice(tiny());
  EXPECT_NE(deck.find(".MODEL lsl_nmos NMOS"), std::string::npos);
  EXPECT_NE(deck.find(".MODEL lsl_pmos PMOS"), std::string::npos);
  ExportOptions opts;
  opts.with_models = false;
  EXPECT_EQ(export_spice(tiny(), opts).find(".MODEL"), std::string::npos);
}

TEST(Export, GroundIsNodeZero) {
  Netlist nl;
  nl.add("r1", Resistor{nl.node("a"), kGround, 1.0});
  const std::string deck = export_spice(nl);
  EXPECT_NE(deck.find("Rr1 a 0 1"), std::string::npos);
}

TEST(Export, DisabledDeviceCommented) {
  Netlist nl;
  const std::size_t i = nl.add("r1", Resistor{nl.node("a"), kGround, 1.0});
  nl.device(i).enabled = false;
  const std::string deck = export_spice(nl);
  EXPECT_NE(deck.find("* (disabled) Rr1"), std::string::npos);
  ExportOptions opts;
  opts.keep_disabled_as_comments = false;
  EXPECT_EQ(export_spice(nl, opts).find("Rr1"), std::string::npos);
}

TEST(Export, TitleOnFirstLine) {
  ExportOptions opts;
  opts.title = "faulted frontend";
  const std::string deck = export_spice(tiny(), opts);
  EXPECT_EQ(deck.rfind("* faulted frontend\n", 0), 0u);
}

}  // namespace
}  // namespace lsl::spice
