#include <gtest/gtest.h>

#include <cmath>

#include "spice/dc.hpp"
#include "spice/stamp.hpp"

namespace lsl::spice {
namespace {

constexpr double kVdd = 1.2;

ModelCard card() { return ModelCard{}; }

TEST(MosfetEval, NmosCutoff) {
  Mosfet m{1, 2, kGround, MosType::kNmos, 1e-6, 0.5e-6, 0.0};
  const MosEval e = eval_mosfet(m, card(), 1.2, 0.0, 0.0);
  EXPECT_NEAR(e.id, 0.0, 1e-9);
}

TEST(MosfetEval, NmosSaturationSquareLaw) {
  Mosfet m{1, 2, kGround, MosType::kNmos, 1e-6, 0.5e-6, 0.0};
  const ModelCard c = card();
  const double vgs = 0.8;
  const double vds = 1.2;  // > vov = 0.46 => saturation
  const MosEval e = eval_mosfet(m, c, vds, vgs, 0.0);
  const double beta = c.kp_n * (1e-6 / 0.5e-6);
  const double vov = vgs - c.vt_n;
  const double expected = 0.5 * beta * vov * vov * (1.0 + c.lambda_n * vds);
  EXPECT_NEAR(e.id, expected, 1e-12);
  EXPECT_GT(e.d_vg, 0.0);  // gm positive
  EXPECT_GT(e.d_vd, 0.0);  // output conductance positive
}

TEST(MosfetEval, NmosTriodeCurrentBelowSaturation) {
  Mosfet m{1, 2, kGround, MosType::kNmos, 1e-6, 0.5e-6, 0.0};
  const ModelCard c = card();
  const MosEval triode = eval_mosfet(m, c, 0.05, 1.2, 0.0);
  const MosEval sat = eval_mosfet(m, c, 1.2, 1.2, 0.0);
  EXPECT_GT(sat.id, triode.id);
  EXPECT_GT(triode.id, 0.0);
}

TEST(MosfetEval, ReverseConductionIsAntisymmetric) {
  // Swapping drain and source voltages must flip the current sign
  // (square-law device is symmetric).
  Mosfet m{1, 2, 3, MosType::kNmos, 1e-6, 0.5e-6, 0.0};
  const MosEval fwd = eval_mosfet(m, card(), 0.6, 1.2, 0.1);
  const MosEval rev = eval_mosfet(m, card(), 0.1, 1.2, 0.6);
  EXPECT_NEAR(fwd.id, -rev.id, 1e-15);
}

TEST(MosfetEval, PmosConductsWithLowGate) {
  Mosfet m{1, 2, 3, MosType::kPmos, 1e-6, 0.5e-6, 0.0};
  // Source at VDD, gate at 0, drain at 0.6: PMOS on, current flows
  // source->drain, i.e. negative in the d->s convention.
  const MosEval e = eval_mosfet(m, card(), 0.6, 0.0, kVdd);
  EXPECT_LT(e.id, 0.0);
}

TEST(MosfetEval, PmosOffWithHighGate) {
  Mosfet m{1, 2, 3, MosType::kPmos, 1e-6, 0.5e-6, 0.0};
  const MosEval e = eval_mosfet(m, card(), 0.6, kVdd, kVdd);
  EXPECT_NEAR(e.id, 0.0, 1e-9);
}

TEST(MosfetEval, DerivativesMatchFiniteDifference) {
  // Property check across bias points and both device types.
  const ModelCard c = card();
  const double h = 1e-7;
  for (const MosType type : {MosType::kNmos, MosType::kPmos}) {
    Mosfet m{1, 2, 3, type, 2e-6, 0.5e-6, 0.0};
    for (double vd : {0.0, 0.2, 0.61, 1.2}) {
      for (double vg : {0.0, 0.45, 0.8, 1.2}) {
        for (double vs : {0.0, 0.3, 1.2}) {
          const MosEval e = eval_mosfet(m, c, vd, vg, vs);
          const double dd =
              (eval_mosfet(m, c, vd + h, vg, vs).id - eval_mosfet(m, c, vd - h, vg, vs).id) /
              (2 * h);
          const double dg =
              (eval_mosfet(m, c, vd, vg + h, vs).id - eval_mosfet(m, c, vd, vg - h, vs).id) /
              (2 * h);
          const double ds =
              (eval_mosfet(m, c, vd, vg, vs + h).id - eval_mosfet(m, c, vd, vg, vs - h).id) /
              (2 * h);
          const double tol = 1e-4 * (std::fabs(e.id) + 1e-6) / 1e-6 * 1e-6 + 1e-7;
          EXPECT_NEAR(e.d_vd, dd, tol) << "vd=" << vd << " vg=" << vg << " vs=" << vs;
          EXPECT_NEAR(e.d_vg, dg, tol) << "vd=" << vd << " vg=" << vg << " vs=" << vs;
          EXPECT_NEAR(e.d_vs, ds, tol) << "vd=" << vd << " vg=" << vg << " vs=" << vs;
        }
      }
    }
  }
}

TEST(MosfetDc, NmosInverterSwitches) {
  // Resistor-loaded NMOS inverter: output high with gate low, low with
  // gate high.
  auto build = [](double vin) {
    Netlist nl;
    const NodeId vdd = nl.node("vdd");
    const NodeId out = nl.node("out");
    const NodeId in = nl.node("in");
    nl.add("vdd", VSource{vdd, kGround, kVdd});
    nl.add("vin", VSource{in, kGround, vin});
    nl.add("rl", Resistor{vdd, out, 100e3});
    nl.add("m1", Mosfet{out, in, kGround, MosType::kNmos, 2e-6, 0.5e-6, 0.0});
    return nl;
  };
  {
    const Netlist nl = build(0.0);
    const DcResult r = solve_dc(nl);
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.v(nl, "out"), 1.1);
  }
  {
    const Netlist nl = build(kVdd);
    const DcResult r = solve_dc(nl);
    ASSERT_TRUE(r.converged);
    EXPECT_LT(r.v(nl, "out"), 0.2);
  }
}

TEST(MosfetDc, CmosInverterTransfersMonotonically) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId out = nl.node("out");
  const NodeId in = nl.node("in");
  nl.add("vdd", VSource{vdd, kGround, kVdd});
  nl.add("vin", VSource{in, kGround, 0.0});
  nl.add("mp", Mosfet{out, in, vdd, MosType::kPmos, 2e-6, 0.5e-6, 0.0});
  nl.add("mn", Mosfet{out, in, kGround, MosType::kNmos, 1e-6, 0.5e-6, 0.0});

  std::vector<double> values;
  for (int i = 0; i <= 24; ++i) values.push_back(kVdd * i / 24.0);
  const auto results = dc_sweep(nl, "vin", values);
  double prev = kVdd + 0.1;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].converged) << "vin=" << values[i];
    const double vout = results[i].v(nl, "out");
    EXPECT_LE(vout, prev + 1e-6) << "vin=" << values[i];
    prev = vout;
  }
  EXPECT_GT(results.front().v(nl, "out"), 1.15);
  EXPECT_LT(results.back().v(nl, "out"), 0.05);
}

TEST(MosfetDc, DiodeConnectedBias) {
  // Diode-connected NMOS with a current source: VGS settles above VT.
  Netlist nl;
  const NodeId n = nl.node("bias");
  const NodeId vdd = nl.node("vdd");
  nl.add("vdd", VSource{vdd, kGround, kVdd});
  nl.add("r1", Resistor{vdd, n, 20e3});
  nl.add("m1", Mosfet{n, n, kGround, MosType::kNmos, 1e-6, 0.5e-6, 0.0});
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  const double vbias = r.v(nl, "bias");
  EXPECT_GT(vbias, 0.34);
  EXPECT_LT(vbias, 0.9);
}

TEST(MosfetDc, CurrentMirrorCopies) {
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId ref = nl.node("ref");
  const NodeId out = nl.node("out");
  nl.add("vdd", VSource{vdd, kGround, kVdd});
  nl.add("iref", ISource{vdd, ref, 20e-6});
  nl.add("m1", Mosfet{ref, ref, kGround, MosType::kNmos, 2e-6, 0.5e-6, 0.0});
  nl.add("m2", Mosfet{out, ref, kGround, MosType::kNmos, 2e-6, 0.5e-6, 0.0});
  nl.add("vmeas", VSource{vdd, out, 0.5});  // holds out at 0.7V, measures current
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  // Mirror output current within ~20% of reference (lambda mismatch
  // between VDS of the two legs accounts for the error).
  EXPECT_NEAR(r.i(nl, "vmeas"), 20e-6, 5e-6);
}

}  // namespace
}  // namespace lsl::spice
