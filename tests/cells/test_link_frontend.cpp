#include "cells/link_frontend.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lsl::cells {
namespace {

TEST(LinkFrontend, GoldenOperatingPointConverges) {
  LinkFrontend link;
  const auto r = link.solve();
  ASSERT_TRUE(r.converged);
}

TEST(LinkFrontend, LineDifferentialFollowsData) {
  LinkFrontend link;
  link.set_data(true, true);
  auto r = link.solve();
  ASSERT_TRUE(r.converged);
  const double diff1 = link.line_diff(r);
  EXPECT_GT(diff1, 0.02);   // tens of millivolts of low-swing signal
  EXPECT_LT(diff1, 0.20);

  link.set_data(false, false);
  r = link.solve();
  ASSERT_TRUE(r.converged);
  const double diff0 = link.line_diff(r);
  EXPECT_LT(diff0, -0.02);
  // The swing is symmetric to first order.
  EXPECT_NEAR(diff1, -diff0, 0.03);
}

TEST(LinkFrontend, DataComparatorsToggleBetweenVectors) {
  LinkFrontend link;
  link.set_data(true, true);
  auto r = link.solve();
  ASSERT_TRUE(r.converged);
  const auto obs1 = link.observe(r);
  EXPECT_TRUE(obs1.p_hi());
  EXPECT_FALSE(obs1.p_lo());
  EXPECT_FALSE(obs1.n_hi());
  EXPECT_TRUE(obs1.n_lo());

  link.set_data(false, false);
  r = link.solve();
  ASSERT_TRUE(r.converged);
  const auto obs0 = link.observe(r);
  EXPECT_FALSE(obs0.p_hi());
  EXPECT_TRUE(obs0.p_lo());
  EXPECT_TRUE(obs0.n_hi());
  EXPECT_FALSE(obs0.n_lo());
}

TEST(LinkFrontend, BiasWindowComparatorQuietWhenHealthy) {
  LinkFrontend link;
  const auto r = link.solve();
  ASSERT_TRUE(r.converged);
  const auto obs = link.observe(r);
  // Matching dividers: inside the window on both vectors.
  EXPECT_FALSE(obs.bias_hi());
  EXPECT_FALSE(obs.bias_lo());
}

TEST(LinkFrontend, ScanModeForcesVcWindowQuiet) {
  LinkFrontend link;
  link.set_scan_mode(true);
  const auto r = link.solve();
  ASSERT_TRUE(r.converged);
  const auto obs = link.observe(r);
  // The scan mux parks the comparator input at the threshold midpoint:
  // the paper's forced "00".
  EXPECT_FALSE(obs.vc_hi());
  EXPECT_FALSE(obs.vc_lo());
}

TEST(LinkFrontend, ScanModePumpDrivesVcToRails) {
  LinkFrontend link;
  link.set_scan_mode(true);
  // In scan mode the collapsed biases turn the pump into switches: UP
  // drives Vc to VDD, DN to GND. Observe via the window comparator by
  // reading Vc directly (the comparator input is parked mid-threshold in
  // scan mode; the DFT layer briefly de-asserts scan to capture).
  link.set_pump(true, false);
  auto r = link.solve();
  ASSERT_TRUE(r.converged);
  EXPECT_GT(link.vc(r), 1.0);

  link.set_pump(false, true);
  r = link.solve();
  ASSERT_TRUE(r.converged);
  EXPECT_LT(link.vc(r), 0.2);
}

TEST(LinkFrontend, NormalModeStrongPumpMovesVc) {
  LinkFrontend link;
  link.set_strong_pump(true, false);
  auto r = link.solve();
  ASSERT_TRUE(r.converged);
  const double vc_up = link.vc(r);

  link.set_strong_pump(false, true);
  r = link.solve();
  ASSERT_TRUE(r.converged);
  const double vc_dn = link.vc(r);
  EXPECT_GT(vc_up, vc_dn + 0.5);
}

TEST(LinkFrontend, VcWindowComparatorTracksVc) {
  LinkFrontend link;
  // Drive Vc to the top rail: cmp_hi must trip (Vc > VH).
  link.set_strong_pump(true, false);
  auto r = link.solve();
  ASSERT_TRUE(r.converged);
  auto obs = link.observe(r);
  EXPECT_TRUE(obs.vc_hi());
  EXPECT_FALSE(obs.vc_lo());
  // Bottom rail: cmp_lo trips.
  link.set_strong_pump(false, true);
  r = link.solve();
  ASSERT_TRUE(r.converged);
  obs = link.observe(r);
  EXPECT_FALSE(obs.vc_hi());
  EXPECT_TRUE(obs.vc_lo());
}

TEST(LinkFrontend, BalanceAmpTracksVcInNormalOperation) {
  LinkFrontend link;
  // Park Vc mid-range with the strong pump off and weak pump idle; the
  // steering branch + amplifier must hold Vp within the BIST window.
  link.set_strong_pump(true, false);
  auto r = link.solve();
  ASSERT_TRUE(r.converged);
  const double vc = link.vc(r);
  const double vp = link.vp(r);
  EXPECT_NEAR(vp, vc, 0.25);
}

TEST(LinkFrontend, CopyIsIndependentForFaultInjection) {
  LinkFrontend golden;
  LinkFrontend faulty = golden;
  // Mutate the copy: short the main FFE cap of the P arm.
  auto& nl = faulty.netlist();
  const auto ci = nl.find_device("tx.p.c_main");
  ASSERT_TRUE(ci.has_value());
  const auto cap = std::get<spice::Capacitor>(nl.device(*ci).impl);
  nl.device(*ci).enabled = false;
  nl.add("fault_short", spice::Resistor{cap.a, cap.b, 1.0});

  golden.set_data(true, true);
  faulty.set_data(true, true);
  const auto rg = golden.solve();
  const auto rf = faulty.solve();
  ASSERT_TRUE(rg.converged);
  ASSERT_TRUE(rf.converged);
  // The shorted cap ties the rail to the line: big differential shift.
  EXPECT_GT(std::fabs(faulty.line_diff(rf) - golden.line_diff(rg)), 0.05);
}

}  // namespace
}  // namespace lsl::cells
