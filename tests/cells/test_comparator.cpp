#include "cells/comparator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/dc.hpp"

namespace lsl::cells {
namespace {

using spice::DcResult;
using spice::kGround;
using spice::Netlist;
using spice::NodeId;
using spice::solve_dc;
using spice::VSource;

constexpr double kVdd = 1.2;
constexpr double kVcm = 0.75;

/// Comparator test bench: differential sources around a common mode.
struct Bench {
  Netlist nl;
  NodeId vdd;
  NodeId in_p;
  NodeId in_n;
  std::size_t src_p;
  std::size_t src_n;
  NodeId vbn;

  Bench() {
    vdd = nl.node("vdd");
    nl.add("v_vdd", VSource{vdd, kGround, kVdd});
    in_p = nl.node("inp");
    in_n = nl.node("inn");
    src_p = nl.add("v_inp", VSource{in_p, kGround, kVcm});
    src_n = nl.add("v_inn", VSource{in_n, kGround, kVcm});
    vbn = build_nbias(nl, "bias", vdd, 130e3);
  }

  void set_diff(double vd) {
    std::get<VSource>(nl.device(src_p).impl).volts = kVcm + vd / 2.0;
    std::get<VSource>(nl.device(src_n).impl).volts = kVcm - vd / 2.0;
  }
};

TEST(NBias, ProducesSaneGateBias) {
  Bench b;
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  const double vbn = r.v(b.nl, b.vbn);
  EXPECT_GT(vbn, 0.35);  // above VT so mirrors conduct
  EXPECT_LT(vbn, 0.7);
}

TEST(OffsetComparator, DecidesWithProgrammedOffset) {
  Bench b;
  const ComparatorPorts c =
      build_offset_comparator(b.nl, "cmp", b.vdd, b.vbn, b.in_p, b.in_n, ComparatorSpec{});
  // Well above the offset: output high.
  b.set_diff(0.06);
  DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.v(b.nl, c.out), 1.0);
  // Well below (negative diff): output low.
  b.set_diff(-0.06);
  r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.v(b.nl, c.out), 0.2);
  // At zero differential the deliberate mismatch must hold the output
  // low (the wide device on in- wins).
  b.set_diff(0.0);
  r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.v(b.nl, c.out), 0.2);
}

TEST(OffsetComparator, TripPointIsPositiveAndBounded) {
  Bench b;
  const ComparatorPorts c =
      build_offset_comparator(b.nl, "cmp", b.vdd, b.vbn, b.in_p, b.in_n, ComparatorSpec{});
  // Binary-search the trip point of the rail output.
  double lo = 0.0;
  double hi = 0.12;
  spice::DcOptions opts;
  for (int it = 0; it < 24; ++it) {
    const double mid = 0.5 * (lo + hi);
    b.set_diff(mid);
    const DcResult r = solve_dc(b.nl, opts);
    ASSERT_TRUE(r.converged);
    if (r.v(b.nl, c.out) > kVdd / 2.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double offset = 0.5 * (lo + hi);
  // The 0.8u-vs-0.5u mismatch programs a deliberate positive offset; the
  // paper quotes ~15 mV in UMC 130 nm. Our square-law model lands in the
  // same decade.
  EXPECT_GT(offset, 0.005);
  EXPECT_LT(offset, 0.08);
}

TEST(OffsetComparator, MirroredSpecFlipsOffsetSign) {
  Bench b;
  ComparatorSpec spec;
  spec.offset_on_minus = false;  // wide device on in+: trips at negative diff
  const ComparatorPorts c = build_offset_comparator(b.nl, "cmp", b.vdd, b.vbn, b.in_p, b.in_n, spec);
  b.set_diff(0.0);
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  // With the wide device on in+, zero differential already trips high.
  EXPECT_GT(r.v(b.nl, c.out), 1.0);
}

TEST(WindowComparator, ThreeRegions) {
  Bench b;
  const WindowComparatorPorts w =
      build_window_comparator(b.nl, "win", b.vdd, b.vbn, b.in_p, b.in_n, ComparatorSpec{});
  const double th = kVdd / 2.0;
  // Inside the window: both low.
  b.set_diff(0.0);
  DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.v(b.nl, w.out_hi), th);
  EXPECT_LT(r.v(b.nl, w.out_lo), th);
  // Above: hi trips, lo stays low.
  b.set_diff(0.1);
  r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.v(b.nl, w.out_hi), th);
  EXPECT_LT(r.v(b.nl, w.out_lo), th);
  // Below: lo trips.
  b.set_diff(-0.1);
  r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.v(b.nl, w.out_hi), th);
  EXPECT_GT(r.v(b.nl, w.out_lo), th);
}

TEST(CpBistSpec, WindowIsWiderThanDcSpec) {
  // Measure both trip points; the Fig-9 spec must give a much larger
  // offset than the Fig-5 spec (the paper: 150 mV vs 15 mV).
  auto trip = [](const ComparatorSpec& spec) {
    Bench b;
    const ComparatorPorts c = build_offset_comparator(b.nl, "cmp", b.vdd, b.vbn, b.in_p, b.in_n, spec);
    double lo = 0.0;
    double hi = 0.4;
    for (int it = 0; it < 22; ++it) {
      const double mid = 0.5 * (lo + hi);
      b.set_diff(mid);
      const DcResult r = solve_dc(b.nl);
      if (!r.converged) return -1.0;
      if (r.v(b.nl, c.out) > kVdd / 2.0) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return 0.5 * (lo + hi);
  };
  const double dc_offset = trip(ComparatorSpec{});
  const double bist_offset = trip(cp_bist_spec());
  ASSERT_GT(dc_offset, 0.0);
  ASSERT_GT(bist_offset, 0.0);
  EXPECT_GT(bist_offset, 2.5 * dc_offset);
}

}  // namespace
}  // namespace lsl::cells
