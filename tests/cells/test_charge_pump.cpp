#include "cells/charge_pump.hpp"

#include <gtest/gtest.h>

#include "spice/dc.hpp"

namespace lsl::cells {
namespace {

using spice::DcResult;
using spice::kGround;
using spice::Netlist;
using spice::NodeId;
using spice::solve_dc;
using spice::VSource;

/// Standalone charge-pump bench with all control rails drivable.
struct Bench {
  Netlist nl;
  NodeId vdd;
  ChargePumpPorts cp;
  std::size_t s_up, s_upb, s_dn, s_dnb, s_upst, s_dnst, s_sen, s_senb;

  Bench() {
    vdd = nl.node("vdd");
    nl.add("v_vdd", VSource{vdd, kGround, 1.2});
    ChargePumpControls ctl;
    auto rail = [&](const char* name, std::size_t& idx) {
      const NodeId n = nl.node(name);
      idx = nl.add(std::string("v_") + name, VSource{n, kGround, 0.0});
      return n;
    };
    ctl.up_gate = rail("up", s_up);
    ctl.up_b_gate = rail("upb", s_upb);
    ctl.dn_gate = rail("dn", s_dn);
    ctl.dn_b_gate = rail("dnb", s_dnb);
    ctl.upst_gate = rail("upst", s_upst);
    ctl.dnst_gate = rail("dnst", s_dnst);
    ctl.sen = rail("sen", s_sen);
    ctl.sen_b = rail("senb", s_senb);
    cp = build_charge_pump(nl, "cp", vdd, ctl);
    set(s_up, 1.2);   // UP off (PMOS, active low)
    set(s_upb, 0.0);  // steering on
    set(s_dn, 0.0);   // DN off
    set(s_dnb, 1.2);  // steering on
    set(s_upst, 1.2);
    set(s_dnst, 0.0);
    set(s_sen, 0.0);
    set(s_senb, 1.2);
  }

  void set(std::size_t idx, double v) { std::get<VSource>(nl.device(idx).impl).volts = v; }

  /// Adds a Vc clamp and returns its branch current (+ = pump sourcing).
  double pump_current(double vc) {
    Netlist work = nl;
    work.add("clamp", VSource{cp.vc, kGround, vc});
    const DcResult r = solve_dc(work);
    EXPECT_TRUE(r.converged);
    return r.i(work, "clamp");
  }
};

TEST(ChargePumpCell, ReferenceLadderLevels) {
  Bench b;
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.v(b.nl, b.cp.vh), 0.8, 0.01);
  EXPECT_NEAR(r.v(b.nl, b.cp.vl), 0.4, 0.01);
  EXPECT_NEAR(r.v(b.nl, b.cp.vmid), 0.6, 0.01);
}

TEST(ChargePumpCell, WeakPumpCurrentsMicroampClass) {
  Bench b;
  const double idle = b.pump_current(0.6);
  // UP on: main switch closed, steering complement open.
  b.set(b.s_up, 0.0);
  b.set(b.s_upb, 1.2);
  const double up = b.pump_current(0.6) - idle;
  b.set(b.s_up, 1.2);
  b.set(b.s_upb, 0.0);
  // DN on, its steering off.
  b.set(b.s_dn, 1.2);
  b.set(b.s_dnb, 0.0);
  const double dn = -(b.pump_current(0.6) - idle);
  EXPECT_GT(up, 1e-6);
  EXPECT_LT(up, 40e-6);
  EXPECT_GT(dn, 1e-6);
  EXPECT_LT(dn, 40e-6);
}

TEST(ChargePumpCell, StrongPumpIsStronger) {
  Bench b;
  const double idle = b.pump_current(0.6);
  b.set(b.s_up, 0.0);
  b.set(b.s_upb, 1.2);
  const double up = b.pump_current(0.6) - idle;
  b.set(b.s_up, 1.2);
  b.set(b.s_upb, 0.0);
  b.set(b.s_upst, 0.0);
  const double upst = b.pump_current(0.6) - idle;
  EXPECT_GT(upst, 2.0 * up);
}

TEST(ChargePumpCell, BalanceAmpHoldsVpNearVc) {
  Bench b;
  for (const double vc : {0.45, 0.6, 0.75}) {
    Netlist work = b.nl;
    work.add("clamp", VSource{b.cp.vc, kGround, vc});
    const DcResult r = solve_dc(work);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.v(work, b.cp.vp), vc, 0.15) << "vc=" << vc;
  }
}

TEST(ChargePumpCell, ScanCollapseTurnsSourcesIntoSwitches) {
  Bench b;
  b.set(b.s_sen, 1.2);
  b.set(b.s_senb, 0.0);
  // UP drives Vc to the top rail.
  b.set(b.s_up, 0.0);
  b.set(b.s_upb, 1.2);
  DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.v(b.nl, b.cp.vc), 1.05);
  // DN to the bottom rail.
  b.set(b.s_up, 1.2);
  b.set(b.s_dn, 1.2);
  b.set(b.s_dnb, 0.0);
  r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.v(b.nl, b.cp.vc), 0.15);
}

TEST(ChargePumpCell, ScanMuxParksComparatorInput) {
  Bench b;
  b.set(b.s_sen, 1.2);
  b.set(b.s_senb, 0.0);
  // Drive vc to the rail: the comparator input must stay at vmid.
  b.set(b.s_up, 0.0);
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  const auto cmp_in = b.nl.find_node("cp.cmp_in");
  ASSERT_TRUE(cmp_in.has_value());
  EXPECT_NEAR(r.v(b.nl, *cmp_in), 0.6, 0.05);
  const double th = 0.6;
  EXPECT_LT(r.v(b.nl, b.cp.cmp_hi), th);
  EXPECT_LT(r.v(b.nl, b.cp.cmp_lo), th);
}

TEST(ChargePumpCell, CpBistWindowAroundVc) {
  Bench b;
  // Clamp both Vc and Vp; sweep their separation.
  auto bist_bits = [&](double vc, double vp) {
    Netlist work = b.nl;
    work.add("clamp_vc", VSource{b.cp.vc, kGround, vc});
    work.add("clamp_vp", VSource{b.cp.vp, kGround, vp});
    const DcResult r = solve_dc(work);
    EXPECT_TRUE(r.converged);
    return std::pair{r.v(work, b.cp.bist_hi) > 0.6, r.v(work, b.cp.bist_lo) > 0.6};
  };
  // Inside the 150 mV-class window: quiet.
  EXPECT_EQ(bist_bits(0.6, 0.65), (std::pair{false, false}));
  // Vp far above Vc: hi side trips.
  EXPECT_EQ(bist_bits(0.5, 0.95), (std::pair{true, false}));
  // Vp far below: lo side trips.
  EXPECT_EQ(bist_bits(0.8, 0.35), (std::pair{false, true}));
}

}  // namespace
}  // namespace lsl::cells
