#include "cells/vcdl.hpp"

#include <gtest/gtest.h>

#include "fault/montecarlo.hpp"
#include "fault/structural.hpp"
#include "spice/transient.hpp"

namespace lsl::cells {
namespace {

TEST(Vcdl, DelayIsSubNanosecond) {
  const double d = measure_vcdl_delay({}, 0.9);
  ASSERT_GT(d, 0.0);
  EXPECT_LT(d, 2e-9);
  EXPECT_GT(d, 20e-12);
}

TEST(Vcdl, MoreControlCurrentLessDelay) {
  // Current-starved line: raising the footer gate speeds it up. (The
  // loop-polarity mapping to the behavioral delay-up-with-Vc model is
  // handled by the pump orientation.)
  const double slow = measure_vcdl_delay({}, 0.55);
  const double mid = measure_vcdl_delay({}, 0.75);
  const double fast = measure_vcdl_delay({}, 1.1);
  ASSERT_GT(slow, 0.0);
  ASSERT_GT(mid, 0.0);
  ASSERT_GT(fast, 0.0);
  EXPECT_GT(slow, mid);
  EXPECT_GT(mid, fast);
}

TEST(Vcdl, TuningRangeCoversDllPhaseStep) {
  // The paper's design rule: the VCDL range over the control span must
  // exceed one DLL phase step (40 ps for a 10-phase, 400 ps clock).
  const double slow = measure_vcdl_delay({}, 0.55);
  const double fast = measure_vcdl_delay({}, 1.1);
  ASSERT_GT(slow, 0.0);
  ASSERT_GT(fast, 0.0);
  EXPECT_GT(slow - fast, 40e-12);
}

TEST(Vcdl, TapDelaysMonotoneAndUniform) {
  const auto taps = measure_tap_delays({}, 0.9);
  ASSERT_EQ(taps.size(), 4u);
  EXPECT_TRUE(dll_taps_uniform(taps));
}

TEST(Vcdl, StageFaultBreaksTapUniformity) {
  // Kill one stage's starving footer: that stage slows dramatically (it
  // only pulls down through leakage), and the stand-alone DLL test
  // catches the non-uniform spacing — the paper's refs [11][12] check.
  VcdlSpec spec;
  spice::Netlist nl;
  const auto vdd = nl.node("vdd");
  nl.add("v_vdd", spice::VSource{vdd, spice::kGround, 1.2});
  const auto vctl = nl.node("vctl");
  nl.add("v_ctl", spice::VSource{vctl, spice::kGround, 0.9});
  const auto in = nl.node("in");
  nl.add("v_in", spice::VSource{in, spice::kGround, 0.0});
  const auto out = nl.node("out");
  build_vcdl(nl, "vcdl", vdd, vctl, in, out, spec);
  ASSERT_TRUE(fault::inject(nl, {"vcdl.m_s1", fault::FaultClass::kSourceOpen},
                            fault::OpenLeak::kToGround, vdd));

  spice::TransientOptions opts;
  opts.t_stop = 8e-9;
  opts.dt = 2e-12;
  opts.probes = {"vcdl.s0", "vcdl.s1", "vcdl.s2", "out"};
  const auto res = spice::run_transient(
      nl, {{"v_in", spice::pwl_wave({{0.0, 0.0}, {1e-9, 0.0}, {1.02e-9, 1.2}})}}, opts);
  ASSERT_TRUE(res.ok);
  // The broken stage never completes its falling transition in-window:
  // its downstream tap misses the deadline entirely, which the
  // uniformity check reports as a failure (empty / non-monotone taps).
  const double v_s1_end = res.final_v("vcdl.s1");
  EXPECT_GT(v_s1_end, 0.4);  // stuck mid/high instead of pulled low
}

TEST(DllTapCheck, RejectsNonMonotone) {
  EXPECT_FALSE(dll_taps_uniform({100e-12, 90e-12, 150e-12}));
}

TEST(DllTapCheck, RejectsSkewedSpacing) {
  EXPECT_FALSE(dll_taps_uniform({100e-12, 140e-12, 260e-12}));
  EXPECT_TRUE(dll_taps_uniform({100e-12, 140e-12, 182e-12}));
}

TEST(DllTapCheck, RejectsTooFewTaps) {
  EXPECT_FALSE(dll_taps_uniform({100e-12}));
}

TEST(Vcdl, MismatchKeepsUniformityWithinTolerance) {
  // Process mismatch alone must not fail the stand-alone DLL test (it is
  // a defect screen, not a parametric screen).
  VcdlSpec spec;
  util::Pcg32 rng(33);
  spice::Netlist nl;
  const auto vdd = nl.node("vdd");
  nl.add("v_vdd", spice::VSource{vdd, spice::kGround, 1.2});
  const auto vctl = nl.node("vctl");
  nl.add("v_ctl", spice::VSource{vctl, spice::kGround, 0.9});
  const auto in = nl.node("in");
  nl.add("v_in", spice::VSource{in, spice::kGround, 0.0});
  const auto out = nl.node("out");
  build_vcdl(nl, "vcdl", vdd, vctl, in, out, spec);
  fault::apply_vt_mismatch(nl, {"vcdl."}, {}, rng);

  spice::TransientOptions opts;
  opts.t_stop = 8e-9;
  opts.dt = 2e-12;
  opts.probes = {"vcdl.s0", "vcdl.s1", "vcdl.s2", "out"};
  const auto res = spice::run_transient(
      nl, {{"v_in", spice::pwl_wave({{0.0, 0.0}, {1e-9, 0.0}, {1.02e-9, 1.2}})}}, opts);
  ASSERT_TRUE(res.ok);
  // All four taps toggle.
  EXPECT_LT(res.final_v("vcdl.s0"), 0.2);
  EXPECT_GT(res.final_v("vcdl.s1"), 1.0);
  EXPECT_LT(res.final_v("vcdl.s2"), 0.2);
  EXPECT_GT(res.final_v("out"), 1.0);
}

}  // namespace
}  // namespace lsl::cells
