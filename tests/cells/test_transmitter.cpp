#include "cells/transmitter.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "spice/dc.hpp"
#include "spice/transient.hpp"

namespace lsl::cells {
namespace {

using spice::Capacitor;
using spice::DcResult;
using spice::kGround;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;
using spice::solve_dc;
using spice::VSource;

struct Bench {
  Netlist nl;
  NodeId vdd;
  NodeId line;
  TransmitterArmPorts arm;
  std::size_t s_main, s_alpha, s_drv;

  Bench() {
    vdd = nl.node("vdd");
    nl.add("v_vdd", VSource{vdd, kGround, 1.2});
    line = nl.node("line");
    // Simple receiving side: termination to a bias.
    const NodeId vmid = nl.node("vmid");
    nl.add("v_vmid", VSource{vmid, kGround, 0.75});
    nl.add("r_term", Resistor{line, vmid, 7e3});
    nl.add("c_line", Capacitor{line, kGround, 1e-12});

    const NodeId main = nl.node("main");
    const NodeId alpha = nl.node("alpha");
    const NodeId drv = nl.node("drv");
    s_main = nl.add("v_main", VSource{main, kGround, 0.0});
    s_alpha = nl.add("v_alpha", VSource{alpha, kGround, 1.2});
    s_drv = nl.add("v_drv", VSource{drv, kGround, 1.2});
    arm = build_transmitter_arm(nl, "tx", vdd, main, alpha, drv, line);
  }

  void set(std::size_t idx, double v) { std::get<VSource>(nl.device(idx).impl).volts = v; }
};

TEST(Transmitter, CapsIsolateRailsAtDc) {
  Bench b;
  // Even with the rail taps driven, only the weak driver moves the DC
  // line level — the caps are open at DC.
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  const double v_line = r.v(b.nl, "line");
  // drv input high -> inverter output low -> line pulled below vmid.
  EXPECT_LT(v_line, 0.75);
  EXPECT_GT(v_line, 0.60);  // weak: tens of mV below the bias, not rail
}

TEST(Transmitter, WeakDriverSetsPolarity) {
  Bench b;
  b.set(b.s_drv, 0.0);  // data 1: inverter pulls up
  DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  const double hi = r.v(b.nl, "line");
  b.set(b.s_drv, 1.2);  // data 0
  r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  const double lo = r.v(b.nl, "line");
  EXPECT_GT(hi, 0.75);
  EXPECT_LT(lo, 0.75);
  // Low-swing: tens of millivolts about the bias.
  EXPECT_LT(hi - lo, 0.2);
  EXPECT_GT(hi - lo, 0.02);
}

TEST(Transmitter, MainCapKicksTheLineOnEdges) {
  Bench b;
  spice::TransientOptions opts;
  opts.t_stop = 30e-9;
  opts.dt = 0.05e-9;
  opts.probes = {"line"};
  // Step the main tap at 10 ns; hold everything else.
  const auto res = spice::run_transient(
      b.nl, {{"v_main", spice::pwl_wave({{0.0, 0.0}, {10e-9, 0.0}, {10.1e-9, 1.2}})}}, opts);
  ASSERT_TRUE(res.ok);
  // Find the peak deviation after the edge.
  double before = 0.0;
  double peak = -1e9;
  for (std::size_t i = 0; i < res.time.size(); ++i) {
    if (res.time[i] < 9.9e-9) before = res.v.at("line")[i];
    if (res.time[i] > 10e-9) peak = std::max(peak, res.v.at("line")[i]);
  }
  // The cap divider kicks the line by roughly Cs/(Cs+Cline)*Vdd ~ 0.1 V.
  EXPECT_GT(peak - before, 0.05);
  // And it decays back toward the weak-driver level.
  EXPECT_LT(res.final_v("line") - before, 0.03);
}

TEST(Transmitter, AlphaCapKicksOppositeSizing) {
  Bench b;
  spice::TransientOptions opts;
  opts.t_stop = 30e-9;
  opts.dt = 0.05e-9;
  opts.probes = {"line"};
  const auto main_kick = spice::run_transient(
      b.nl, {{"v_main", spice::pwl_wave({{0.0, 0.0}, {10e-9, 0.0}, {10.1e-9, 1.2}})}}, opts);
  const auto alpha_kick = spice::run_transient(
      b.nl, {{"v_alpha", spice::pwl_wave({{0.0, 1.2}, {10e-9, 1.2}, {10.1e-9, 0.0}})}}, opts);
  ASSERT_TRUE(main_kick.ok);
  ASSERT_TRUE(alpha_kick.ok);
  auto peak_dev = [](const spice::TransientResult& r) {
    double before = 0.0;
    double peak = 0.0;
    for (std::size_t i = 0; i < r.time.size(); ++i) {
      if (r.time[i] < 9.9e-9) before = r.v.at("line")[i];
      if (r.time[i] > 10e-9) peak = std::max(peak, std::fabs(r.v.at("line")[i] - before));
    }
    return peak;
  };
  // The alpha cap (Cs*alpha < Cs) kicks less than the main cap.
  EXPECT_LT(peak_dev(alpha_kick), peak_dev(main_kick));
  EXPECT_GT(peak_dev(alpha_kick), 0.01);
}

TEST(RcLine, DcDropIsZeroUnloaded) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId z = nl.node("z");
  nl.add("v1", VSource{a, kGround, 1.0});
  build_rc_line(nl, "w", a, z, {});
  const DcResult r = solve_dc(nl);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.v(nl, "z"), 1.0, 1e-6);  // no load: no drop
}

TEST(RcLine, SectionCountMatchesSpec) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId z = nl.node("z");
  RcLineSpec spec;
  spec.sections = 7;
  const std::size_t before = nl.devices().size();
  build_rc_line(nl, "w", a, z, spec);
  EXPECT_EQ(nl.devices().size() - before, 14u);  // R + C per section
}

}  // namespace
}  // namespace lsl::cells
