#include "cells/termination.hpp"

#include <gtest/gtest.h>

#include "spice/dc.hpp"

namespace lsl::cells {
namespace {

using spice::DcResult;
using spice::kGround;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;
using spice::solve_dc;
using spice::VSource;

/// Termination test bench: lines driven through source resistors, a
/// matching clock-recovery bias divider.
struct Bench {
  Netlist nl;
  NodeId vdd;
  NodeId line_p;
  NodeId line_n;
  std::size_t src_p;
  std::size_t src_n;
  TerminationPorts term;

  Bench() {
    vdd = nl.node("vdd");
    nl.add("v_vdd", VSource{vdd, kGround, 1.2});
    const NodeId vbn = build_nbias(nl, "bias", vdd, 130e3);
    line_p = nl.node("lp");
    line_n = nl.node("ln");
    const NodeId dp = nl.node("dp");
    const NodeId dn = nl.node("dn");
    src_p = nl.add("v_dp", VSource{dp, kGround, 0.75});
    src_n = nl.add("v_dn", VSource{dn, kGround, 0.75});
    nl.add("r_sp", Resistor{dp, line_p, 100e3});
    nl.add("r_sn", Resistor{dn, line_n, 100e3});
    const NodeId vmid_cr = nl.node("vmid_cr");
    TerminationSpec spec;
    nl.add("cr_t", Resistor{vdd, vmid_cr, spec.r_div_top});
    nl.add("cr_b", Resistor{vmid_cr, kGround, spec.r_div_bot});
    term = build_termination(nl, "term", vdd, vbn, line_p, line_n, vmid_cr, spec);
  }

  void drive(double vp, double vn) {
    std::get<VSource>(nl.device(src_p).impl).volts = vp;
    std::get<VSource>(nl.device(src_n).impl).volts = vn;
  }
};

TEST(Termination, BiasDividerSitsAtDesignPoint) {
  Bench b;
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.v(b.nl, b.term.vmid_rx), 1.2 * 20.0 / 32.0, 0.01);
}

TEST(Termination, TgatesPullLinesTowardBias) {
  Bench b;
  b.drive(1.2, 0.0);  // hard drive through 100k
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  const double vmid = r.v(b.nl, b.term.vmid_rx);
  const double lp = r.v(b.nl, b.line_p);
  const double ln = r.v(b.nl, b.line_n);
  // Low termination impedance: the lines stay within ~100 mV of the bias
  // even with a rail-to-rail source behind 100k.
  EXPECT_LT(std::abs(lp - vmid), 0.12);
  EXPECT_LT(std::abs(ln - vmid), 0.12);
  EXPECT_GT(lp, vmid);  // but they do move in the driven direction
  EXPECT_LT(ln, vmid);
}

TEST(Termination, TerminationResistanceInExpectedRange) {
  // Measure the small-signal termination resistance from two DC points.
  Bench b;
  b.drive(0.75, 0.75);
  const DcResult r0 = solve_dc(b.nl);
  ASSERT_TRUE(r0.converged);
  b.drive(1.2, 0.75);
  const DcResult r1 = solve_dc(b.nl);
  ASSERT_TRUE(r1.converged);
  const double dv_line = r1.v(b.nl, b.line_p) - r0.v(b.nl, b.line_p);
  const double i = (1.2 - 0.75) / 100e3 * (1.0 - dv_line / 0.45);  // approx current change
  const double r_term = dv_line / ((1.2 - r1.v(b.nl, b.line_p)) / 100e3);
  (void)i;
  EXPECT_GT(r_term, 1e3);
  EXPECT_LT(r_term, 40e3);
}

TEST(Termination, PerArmComparatorsDecideAgainstBias) {
  Bench b;
  // Drive the P line well above and the N line well below the bias.
  b.drive(1.2, 0.0);
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  const double th = 0.6;
  EXPECT_GT(r.v(b.nl, b.term.cmp_p_hi), th);
  EXPECT_LT(r.v(b.nl, b.term.cmp_p_lo), th);
  EXPECT_LT(r.v(b.nl, b.term.cmp_n_hi), th);
  EXPECT_GT(r.v(b.nl, b.term.cmp_n_lo), th);
}

TEST(Termination, ComparatorsQuietAtBias) {
  Bench b;
  b.drive(0.75, 0.75);
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  const double th = 0.6;
  // Both lines sit at the bias: every per-arm comparator inside its
  // offset window.
  EXPECT_LT(r.v(b.nl, b.term.cmp_p_hi), th);
  EXPECT_LT(r.v(b.nl, b.term.cmp_p_lo), th);
  EXPECT_LT(r.v(b.nl, b.term.cmp_n_hi), th);
  EXPECT_LT(r.v(b.nl, b.term.cmp_n_lo), th);
}

TEST(Termination, BiasWindowFlagsDividerMismatch) {
  Bench b;
  // Break the local divider: vmid_rx collapses, the bias window trips.
  std::get<Resistor>(b.nl.device(*b.nl.find_device("term.r_divt")).impl).ohms = 200e3;
  const DcResult r = solve_dc(b.nl);
  ASSERT_TRUE(r.converged);
  const double th = 0.6;
  const bool hi = r.v(b.nl, b.term.cmp_bias_hi) > th;
  const bool lo = r.v(b.nl, b.term.cmp_bias_lo) > th;
  EXPECT_TRUE(hi || lo);
}

}  // namespace
}  // namespace lsl::cells
