// Smoke test of the sparse-engine contract on the golden netlist: a
// warm dc_sweep of the full analog frontend must run entirely on the
// sparse path (one symbolic analysis shared by every point, zero dense
// fallbacks), and the solver.dc.* instruments must see it.
#include <gtest/gtest.h>

#include <vector>

#include "cells/link_frontend.hpp"
#include "spice/dc.hpp"
#include "spice/workspace.hpp"
#include "util/metrics.hpp"

namespace lsl::cells {
namespace {

TEST(SolverSmoke, WarmDcSweepReusesSymbolicAnalysisWithoutFallbacks) {
  LinkFrontend fe;
  spice::SolverWorkspace ws;  // private workspace: stats start at zero

  std::vector<double> points;
  for (int i = 0; i <= 20; ++i) points.push_back(1.2 * i / 20.0);

  auto& m = util::metrics();
  const auto reuse_before = m.counter("solver.dc.symbolic_reuse").value();
  const auto fallbacks_before = m.counter("solver.dc.dense_fallbacks").value();

  const auto results =
      spice::dc_sweep(fe.netlist(), fe.src_tap_main_p(), points, spice::DcOptions{}, ws);
  ASSERT_EQ(results.size(), points.size());
  for (const auto& r : results) EXPECT_TRUE(r.converged);

  // The golden netlist sits above the dense crossover: everything runs
  // sparse, against a single cached symbolic factorization.
  EXPECT_EQ(ws.stats().symbolic_builds, 1u);
  EXPECT_GT(ws.stats().symbolic_reuse, 0u);
  EXPECT_GT(ws.stats().sparse_solves, 0u);
  EXPECT_EQ(ws.stats().dense_fallbacks, 0u);
  EXPECT_EQ(ws.stats().dense_solves, 0u);

  // The same story must be visible through the metrics registry.
  EXPECT_GT(m.counter("solver.dc.symbolic_reuse").value(), reuse_before);
  EXPECT_EQ(m.counter("solver.dc.dense_fallbacks").value(), fallbacks_before);
}

TEST(SolverSmoke, GoldenWarmStartPathIsSmwFree) {
  // The campaign's fault-free warm path: re-solving the golden netlist
  // from its own converged solution. No overlay is in play, so the SMW
  // machinery must stay completely out of the way — zero SMW solves and
  // zero SMW fallbacks — while the warm-start rung lands first try.
  LinkFrontend fe;
  spice::SolverWorkspace ws;
  const auto cold = spice::solve_dc(fe.netlist(), {}, ws);
  ASSERT_TRUE(cold.converged);

  auto& m = util::metrics();
  const auto hits_before = m.counter("campaign.warm_start.hits").value();
  const auto rejects_before = m.counter("campaign.warm_start.rejects").value();

  ws.seed_from(cold.x);
  const auto warm = spice::solve_dc(fe.netlist(), {}, ws);
  ASSERT_TRUE(warm.converged);

  EXPECT_EQ(ws.stats().smw_solves, 0u);
  EXPECT_EQ(ws.stats().smw_fallbacks, 0u);
  EXPECT_EQ(m.counter("campaign.warm_start.hits").value(), hits_before + 1);
  EXPECT_EQ(m.counter("campaign.warm_start.rejects").value(), rejects_before);
  // Warm-starting from the answer costs (far) fewer iterations.
  EXPECT_LT(warm.iterations, cold.iterations);
  ASSERT_EQ(warm.x.size(), cold.x.size());
  for (std::size_t i = 0; i < cold.x.size(); ++i) {
    EXPECT_NEAR(warm.x[i], cold.x[i], 1e-9);
  }
}

}  // namespace
}  // namespace lsl::cells
