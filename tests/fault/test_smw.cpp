// Property test for the low-rank (Sherman–Morrison–Woodbury) fault
// injection path: on randomized netlists, every injectable (short-class)
// fault solved through its LowRankOverlay must agree with the ordinary
// full-refactorization solve of the same faulted netlist to 1e-9 per
// unknown — the overlay only redirects *how* the system is solved.
// Opens change the unknown count and must never produce an overlay.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "fault/structural.hpp"
#include "spice/dc.hpp"
#include "spice/stamp.hpp"
#include "spice/workspace.hpp"

namespace lsl::fault {
namespace {

using spice::Capacitor;
using spice::kGround;
using spice::Mosfet;
using spice::MosType;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;
using spice::VSource;

/// Random connected resistor/MOSFET/capacitor network, sized above the
/// dense crossover so the sparse + SMW machinery is actually exercised.
/// Every node reaches ground through the resistor spanning tree, so the
/// golden system is well-posed for any seed.
Netlist random_netlist(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> log_r(2.0, 5.0);  // 100 ohm .. 100 kohm
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  nl.add("v_vdd", VSource{vdd, kGround, 1.2});

  std::vector<NodeId> nodes{vdd};
  const std::size_t n_nodes = 20 + rng() % 8;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    nodes.push_back(nl.node("n" + std::to_string(i)));
  }
  // Spanning tree: each node hangs off an earlier one.
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const NodeId prev = nodes[rng() % i];
    nl.add("r_tree" + std::to_string(i),
           Resistor{prev, nodes[i], std::pow(10.0, log_r(rng))});
  }
  // A few anchors to ground and random cross links.
  for (int i = 0; i < 4; ++i) {
    nl.add("r_gnd" + std::to_string(i),
           Resistor{nodes[1 + rng() % n_nodes], kGround, std::pow(10.0, log_r(rng))});
  }
  for (int i = 0; i < 6; ++i) {
    nl.add("r_x" + std::to_string(i),
           Resistor{nodes[rng() % nodes.size()], nodes[rng() % nodes.size()],
                    std::pow(10.0, log_r(rng))});
  }
  // Nonlinear devices so the SMW path runs inside a genuine Newton loop.
  for (int i = 0; i < 5; ++i) {
    const NodeId d = nodes[rng() % nodes.size()];
    const NodeId g = nodes[rng() % nodes.size()];
    const NodeId s = (rng() % 2 == 0) ? kGround : nodes[rng() % nodes.size()];
    const MosType type = (rng() % 2 == 0) ? MosType::kNmos : MosType::kPmos;
    nl.add("m" + std::to_string(i), Mosfet{d, g, s, type, 2e-6, 0.5e-6, 0.0});
  }
  for (int i = 0; i < 3; ++i) {
    nl.add("c" + std::to_string(i), Capacitor{nodes[rng() % nodes.size()], kGround, 1e-12});
  }
  return nl;
}

bool is_short_class(FaultClass c) {
  return c == FaultClass::kGateDrainShort || c == FaultClass::kGateSourceShort ||
         c == FaultClass::kDrainSourceShort || c == FaultClass::kCapacitorShort;
}

TEST(SmwEngine, OverlaySolveMatchesFullRefactorizationOnRandomNetlists) {
  std::uint64_t smw_solves_total = 0;
  std::set<FaultClass> compared_classes;

  for (const std::uint32_t seed : {11u, 22u, 33u}) {
    const Netlist golden = random_netlist(seed);
    const NodeId vdd = *golden.find_node("vdd");
    const auto faults = enumerate_structural_faults(golden);
    ASSERT_FALSE(faults.empty());

    for (const StructuralFault& f : faults) {
      Netlist faulted = golden;
      InjectionSpec spec;
      ASSERT_TRUE(inject(faulted, f, OpenLeak::kToGround, vdd, spec)) << f.describe();
      const auto overlay = low_rank_overlay(faulted, f);

      if (!is_short_class(f.cls)) {
        // Opens add unknowns: never low-rank-expressible.
        EXPECT_FALSE(overlay.has_value()) << f.describe();
        continue;
      }
      ASSERT_TRUE(overlay.has_value()) << f.describe();
      // The touched-row report backs the rank bound the SMW path relies on.
      EXPECT_LE(spec.touched_unknowns().size(), 4u) << f.describe();
      EXPECT_LE(overlay->terms.size(), 4u) << f.describe();

      // Both solves converge far below the comparison tolerance so the
      // two paths' fixed points are distinguishable from iteration noise.
      spice::DcOptions opts;
      opts.abs_tol = 1e-12;

      spice::SolverWorkspace ws_smw;
      spice::DcOptions smw_opts = opts;
      smw_opts.overlay = &*overlay;
      const auto r_smw = spice::solve_dc(faulted, smw_opts, ws_smw);

      spice::SolverWorkspace ws_full;
      const auto r_full = spice::solve_dc(faulted, opts, ws_full);

      ASSERT_EQ(r_smw.converged, r_full.converged) << f.describe();
      if (!r_full.converged) continue;  // pathological short: both reject
      ASSERT_EQ(r_smw.x.size(), r_full.x.size()) << f.describe();
      for (std::size_t i = 0; i < r_full.x.size(); ++i) {
        EXPECT_NEAR(r_smw.x[i], r_full.x[i], 1e-9)
            << f.describe() << " unknown " << i << " (seed " << seed << ")";
      }
      compared_classes.insert(f.cls);
      smw_solves_total += ws_smw.stats().smw_solves;
    }
  }

  // The property must have exercised the SMW fast path (not just its
  // dense fallback) and covered every injectable short class.
  EXPECT_GT(smw_solves_total, 0u);
  EXPECT_EQ(compared_classes.size(), 4u);
}

TEST(SmwEngine, ExtremeBridgeConductanceNeverChangesAConvergedAnswer) {
  // A 1 micro-ohm bridge stresses the backward-error gate: the rank-1
  // update is near-singular against the base factorization. The paths
  // may legitimately differ in *whether* the pathological circuit
  // converges (different Newton trajectories), but whenever both do,
  // the fixed point must agree — a gate-rejected SMW iterate silently
  // producing a wrong converged answer is the failure mode under test.
  const Netlist golden = random_netlist(7u);
  const NodeId vdd = *golden.find_node("vdd");
  const auto faults = enumerate_structural_faults(golden);
  InjectionSpec spec;
  spec.r_short = 1e-6;
  std::size_t compared = 0;
  for (const StructuralFault& f : faults) {
    if (!is_short_class(f.cls)) continue;
    Netlist faulted = golden;
    ASSERT_TRUE(inject(faulted, f, OpenLeak::kToGround, vdd, spec));
    const auto overlay = low_rank_overlay(faulted, f);
    ASSERT_TRUE(overlay.has_value());
    spice::DcOptions opts;
    opts.abs_tol = 1e-12;
    opts.allow_relaxed_tol = false;  // compare strictly-converged answers only
    spice::SolverWorkspace ws;
    spice::DcOptions smw_opts = opts;
    smw_opts.overlay = &*overlay;
    const auto r_smw = spice::solve_dc(faulted, smw_opts, ws);
    const auto r_full = spice::solve_dc(faulted, opts);
    if (!r_smw.converged || !r_full.converged) continue;
    ++compared;
    // The 1e6 S bridge puts ~6 decades of conditioning between the
    // Newton tolerance and the achievable agreement, so the bound here
    // is loose; a *wrong* operating point would be off by ~volts. The
    // tight 1e-9 property is asserted at the nominal bridge above.
    for (std::size_t i = 0; i < r_full.x.size(); ++i) {
      EXPECT_NEAR(r_smw.x[i], r_full.x[i], 1e-4) << f.describe() << " unknown " << i;
    }
  }
  EXPECT_GT(compared, 0u);
}

}  // namespace
}  // namespace lsl::fault
