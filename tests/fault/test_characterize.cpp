#include "fault/characterize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fault/structural.hpp"

namespace lsl::fault {
namespace {

cells::LinkFrontend faulted(const cells::LinkFrontend& golden, const StructuralFault& f,
                            OpenLeak leak = OpenLeak::kToGround) {
  cells::LinkFrontend fe = golden;
  const auto vdd = *fe.netlist().find_node("vdd");
  EXPECT_TRUE(inject(fe.netlist(), f, leak, vdd));
  return fe;
}

class CharacterizeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    golden_ = new cells::LinkFrontend();
    golden_m_ = new FrontendMeasurements(measure_frontend(*golden_));
  }
  static void TearDownTestSuite() {
    delete golden_;
    delete golden_m_;
    golden_ = nullptr;
    golden_m_ = nullptr;
  }
  static cells::LinkFrontend* golden_;
  static FrontendMeasurements* golden_m_;
};

cells::LinkFrontend* CharacterizeFixture::golden_ = nullptr;
FrontendMeasurements* CharacterizeFixture::golden_m_ = nullptr;

TEST_F(CharacterizeFixture, GoldenMeasuresHealthy) {
  const FrontendMeasurements& m = *golden_m_;
  ASSERT_TRUE(m.converged);
  EXPECT_GT(m.diff1, 0.02);
  EXPECT_LT(m.diff0, -0.02);
  EXPECT_GT(m.i_up, 1e-6);   // microamp-class pump currents
  EXPECT_GT(m.i_dn, 1e-6);
  EXPECT_GT(m.i_upst, 2.0 * m.i_up);  // strong pump really is stronger
  EXPECT_GT(m.i_dnst, 2.0 * m.i_dn);
  EXPECT_LT(std::fabs(m.leak), 0.2e-6);
  EXPECT_NEAR(m.vp_at_mid, 0.6, 0.25);
  // Window comparator truth table.
  EXPECT_TRUE(m.win_hi_at_high);
  EXPECT_FALSE(m.win_hi_at_mid);
  EXPECT_TRUE(m.win_lo_at_low);
  EXPECT_FALSE(m.win_lo_at_mid);
}

TEST_F(CharacterizeFixture, GoldenSignatureIsNeutral) {
  const BehavioralSignature sig = derive_signature(*golden_m_, *golden_m_);
  ASSERT_TRUE(sig.characterized);
  EXPECT_NEAR(sig.swing_scale, 1.0, 1e-9);
  EXPECT_NEAR(sig.offset_shift, 0.0, 1e-9);
  EXPECT_NEAR(sig.i_up_scale, 1.0, 1e-9);
  EXPECT_NEAR(sig.i_dn_scale, 1.0, 1e-9);
  EXPECT_NEAR(sig.leak, 0.0, 1e-15);
  EXPECT_FALSE(sig.balance_broken);
  EXPECT_FALSE(sig.sync_faults.window_dead);
}

TEST_F(CharacterizeFixture, WeakDriverOpenShrinksSwing) {
  const auto fe = faulted(*golden_, {"tx.p.m_drvn", FaultClass::kSourceOpen});
  const auto m = measure_frontend(fe);
  ASSERT_TRUE(m.converged);
  const auto sig = derive_signature(*golden_m_, m);
  // Losing the P-arm pulldown skews the differential swing.
  EXPECT_LT(sig.swing_scale, 0.95);
}

TEST_F(CharacterizeFixture, PumpSourceOpenKillsUpCurrent) {
  const auto fe = faulted(*golden_, {"cp.m_srcp", FaultClass::kDrainOpen});
  const auto m = measure_frontend(fe);
  ASSERT_TRUE(m.converged);
  const auto sig = derive_signature(*golden_m_, m);
  EXPECT_LT(sig.i_up_scale, 0.1);
  // The strong pump path is independent and must stay healthy.
  EXPECT_GT(sig.strong_scale, 0.7);
}

TEST_F(CharacterizeFixture, PumpSwitchDsShortLeaks) {
  // D-S short on the weak UP switch: the current source is permanently
  // connected to Vc -> leakage charges Vc up.
  const auto fe = faulted(*golden_, {"cp.m_swup", FaultClass::kDrainSourceShort});
  const auto m = measure_frontend(fe);
  ASSERT_TRUE(m.converged);
  const auto sig = derive_signature(*golden_m_, m);
  EXPECT_GT(sig.leak, 1e-6);
}

TEST_F(CharacterizeFixture, BalancePathFaultOffsetsVp) {
  // Break the DN steering branch: only the P source feeds Vp, which
  // drifts toward VDD — the exact failure the CP-BIST watches.
  const auto fe = faulted(*golden_, {"cp.m_swdnb", FaultClass::kDrainOpen});
  const auto m = measure_frontend(fe);
  ASSERT_TRUE(m.converged);
  const auto sig = derive_signature(*golden_m_, m);
  EXPECT_GT(std::fabs(sig.vp_offset), 0.1);
}

TEST_F(CharacterizeFixture, WindowComparatorFaultFlagsDeadSide) {
  // Open the hi comparator's output-inverter PMOS drain: the output can
  // never pull high, so the comparator can never assert.
  const auto fe = faulted(*golden_, {"cp.cmp_hi.m_invp", FaultClass::kDrainOpen});
  const auto m = measure_frontend(fe);
  ASSERT_TRUE(m.converged);
  EXPECT_FALSE(m.win_hi_at_high);
}

TEST_F(CharacterizeFixture, ApplySignatureMapsOntoLinkParams) {
  BehavioralSignature sig;
  sig.swing_scale = 0.5;
  sig.offset_shift = 0.01;
  sig.i_up_scale = 0.2;
  sig.leak = 2e-6;
  sig.vp_offset = 0.4;
  sig.balance_broken = true;
  const lsl::link::LinkParams base;
  const lsl::link::LinkParams p = apply_signature(base, sig);
  EXPECT_DOUBLE_EQ(p.channel.drive_scale_p, 0.5);
  EXPECT_DOUBLE_EQ(p.slicer_offset, 0.01);
  EXPECT_DOUBLE_EQ(p.sync.pump.i_up, base.sync.pump.i_up * 0.2);
  EXPECT_DOUBLE_EQ(p.sync.pump.leak, 2e-6);
  EXPECT_TRUE(p.sync.pump.balance_broken);
  EXPECT_GT(p.sync.pump.vp_drift, 0.0);
}

TEST_F(CharacterizeFixture, UncharacterizableFaultReported) {
  FrontendMeasurements bad;
  bad.converged = false;
  const auto sig = derive_signature(*golden_m_, bad);
  EXPECT_FALSE(sig.characterized);
}

}  // namespace
}  // namespace lsl::fault
