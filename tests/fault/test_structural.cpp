#include "fault/structural.hpp"

#include <gtest/gtest.h>

#include "spice/dc.hpp"

namespace lsl::fault {
namespace {

using spice::kGround;
using spice::Mosfet;
using spice::MosType;
using spice::Netlist;
using spice::NodeId;
using spice::Resistor;
using spice::VSource;

/// NMOS common-source stage: vdd - R - out, NMOS(out, in, gnd).
struct Stage {
  Netlist nl;
  NodeId vdd;
  NodeId out;
  NodeId in;

  Stage() {
    vdd = nl.node("vdd");
    out = nl.node("out");
    in = nl.node("in");
    nl.add("v_vdd", VSource{vdd, kGround, 1.2});
    // Finite driver impedance, as in the real link frontend: a 1-ohm
    // short at the gate must win against the driver.
    const NodeId in_drv = nl.node("in_drv");
    nl.add("v_in", VSource{in_drv, kGround, 1.2});
    nl.add("r_drv", Resistor{in_drv, in, 2e3});
    nl.add("r_load", Resistor{vdd, out, 100e3});
    nl.add("m1", Mosfet{out, in, kGround, MosType::kNmos, 2e-6, 0.5e-6, 0.0});
    nl.add("c1", spice::Capacitor{out, kGround, 1e-12});
  }

  double vout() {
    const auto r = spice::solve_dc(nl);
    EXPECT_TRUE(r.converged);
    return r.v(nl, "out");
  }
};

TEST(Enumerate, SixPerMosfetOnePerCap) {
  Stage s;
  const auto faults = enumerate_structural_faults(s.nl);
  // One MOSFET (6) + one capacitor (1).
  EXPECT_EQ(faults.size(), 7u);
  for (const FaultClass c : kAllFaultClasses) {
    EXPECT_EQ(count_class(faults, c), 1u) << fault_class_name(c);
  }
}

TEST(Enumerate, PrefixFilter) {
  Stage s;
  EXPECT_TRUE(enumerate_structural_faults(s.nl, {"zz."}).empty());
  EXPECT_EQ(enumerate_structural_faults(s.nl, {"m"}).size(), 6u);
  EXPECT_EQ(enumerate_structural_faults(s.nl, {"m", "c"}).size(), 7u);
}

TEST(Inject, DrainSourceShortPullsOutputLow) {
  Stage s;
  // Gate low: transistor off, out = vdd. A D-S short defeats that.
  std::get<VSource>(s.nl.device(*s.nl.find_device("v_in")).impl).volts = 0.0;
  EXPECT_GT(s.vout(), 1.1);
  Stage f;
  std::get<VSource>(f.nl.device(*f.nl.find_device("v_in")).impl).volts = 0.0;
  ASSERT_TRUE(inject(f.nl, {"m1", FaultClass::kDrainSourceShort}, OpenLeak::kToGround, f.vdd));
  EXPECT_LT(f.vout(), 0.1);
}

TEST(Inject, DrainOpenKillsPullDown) {
  Stage f;
  ASSERT_TRUE(inject(f.nl, {"m1", FaultClass::kDrainOpen}, OpenLeak::kToGround, f.vdd));
  // Gate high but drain disconnected: output floats to vdd via load.
  EXPECT_GT(f.vout(), 1.1);
}

TEST(Inject, SourceOpenKillsPullDown) {
  Stage f;
  ASSERT_TRUE(inject(f.nl, {"m1", FaultClass::kSourceOpen}, OpenLeak::kToGround, f.vdd));
  EXPECT_GT(f.vout(), 1.1);
}

TEST(Inject, GateOpenVariantsDiffer) {
  // Leak to ground: NMOS off, out high. Leak to vdd: NMOS on, out low.
  Stage a;
  ASSERT_TRUE(inject(a.nl, {"m1", FaultClass::kGateOpen}, OpenLeak::kToGround, a.vdd));
  EXPECT_GT(a.vout(), 1.1);
  Stage b;
  ASSERT_TRUE(inject(b.nl, {"m1", FaultClass::kGateOpen}, OpenLeak::kToVdd, b.vdd));
  EXPECT_LT(b.vout(), 0.3);
}

TEST(Inject, GateSourceShortTurnsDeviceOff) {
  Stage f;
  ASSERT_TRUE(inject(f.nl, {"m1", FaultClass::kGateSourceShort}, OpenLeak::kToGround, f.vdd));
  // Vgs = 0: off despite the driven gate. Output floats high. (The gate
  // drive source now fights the 1-ohm bridge, but the bridge wins at the
  // transistor terminal.)
  EXPECT_GT(f.vout(), 1.1);
}

TEST(Inject, GateDrainShortDiodeConnects) {
  // Fault-free the output sits near ground (gate hard on). The G-D short
  // diode-connects the device: the output rises to the diode bias point
  // set by the pull-up paths — clearly distinguishable from both rails.
  Stage healthy;
  EXPECT_LT(healthy.vout(), 0.1);
  Stage f;
  ASSERT_TRUE(inject(f.nl, {"m1", FaultClass::kGateDrainShort}, OpenLeak::kToGround, f.vdd));
  const double v = f.vout();
  EXPECT_GT(v, 0.4);
  EXPECT_LT(v, 1.1);
}

TEST(Inject, CapacitorShortMakesDcPath) {
  Stage f;
  std::get<VSource>(f.nl.device(*f.nl.find_device("v_in")).impl).volts = 0.0;
  ASSERT_TRUE(inject(f.nl, {"c1", FaultClass::kCapacitorShort}, OpenLeak::kToGround, f.vdd));
  // The shorted cap ties out to ground even with the NMOS off.
  EXPECT_LT(f.vout(), 0.1);
}

TEST(Inject, MissingDeviceRejected) {
  Stage f;
  EXPECT_FALSE(inject(f.nl, {"nope", FaultClass::kDrainOpen}, OpenLeak::kToGround, f.vdd));
}

TEST(Inject, WrongKindRejected) {
  Stage f;
  EXPECT_FALSE(inject(f.nl, {"r_load", FaultClass::kDrainOpen}, OpenLeak::kToGround, f.vdd));
  EXPECT_FALSE(inject(f.nl, {"m1", FaultClass::kCapacitorShort}, OpenLeak::kToGround, f.vdd));
}

TEST(FaultClassNames, AllDistinct) {
  std::vector<std::string> names;
  for (const FaultClass c : kAllFaultClasses) names.push_back(fault_class_name(c));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace lsl::fault
