#include "fault/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cells/comparator.hpp"
#include "spice/dc.hpp"

namespace lsl::fault {
namespace {

TEST(VtSigma, PelgromScaling) {
  spice::Mosfet small{0, 0, 0, spice::MosType::kNmos, 0.5e-6, 0.5e-6, 0.0};
  spice::Mosfet big{0, 0, 0, spice::MosType::kNmos, 2.0e-6, 2.0e-6, 0.0};
  const MismatchSpec spec;
  // sigma = 3.5 mV*um / 0.5 um = 7 mV for the minimum device.
  EXPECT_NEAR(vt_sigma(small, spec), 7e-3, 1e-4);
  // 4x the area halves sigma... 16x here: quarter.
  EXPECT_NEAR(vt_sigma(big, spec), 7e-3 / 4.0, 1e-4);
}

TEST(ApplyMismatch, PerturbsOnlyMatchingMosfets) {
  spice::Netlist nl;
  nl.add("a.m1", spice::Mosfet{nl.node("x"), nl.node("y"), spice::kGround,
                               spice::MosType::kNmos, 1e-6, 0.5e-6, 0.0});
  nl.add("b.m1", spice::Mosfet{nl.node("x"), nl.node("y"), spice::kGround,
                               spice::MosType::kNmos, 1e-6, 0.5e-6, 0.0});
  nl.add("a.r1", spice::Resistor{nl.node("x"), spice::kGround, 1e3});
  util::Pcg32 rng(7);
  const std::size_t n = apply_vt_mismatch(nl, {"a."}, {}, rng);
  EXPECT_EQ(n, 1u);
  EXPECT_NE(std::get<spice::Mosfet>(nl.device(0).impl).vt_delta, 0.0);
  EXPECT_EQ(std::get<spice::Mosfet>(nl.device(1).impl).vt_delta, 0.0);
}

TEST(ApplyMismatch, DeltasAreZeroMeanAndScaled) {
  spice::Netlist nl;
  for (int i = 0; i < 400; ++i) {
    nl.add("m" + std::to_string(i),
           spice::Mosfet{nl.node("x"), nl.node("y"), spice::kGround, spice::MosType::kNmos,
                         0.5e-6, 0.5e-6, 0.0});
  }
  util::Pcg32 rng(11);
  apply_vt_mismatch(nl, {}, {}, rng);
  double sum = 0.0;
  double sq = 0.0;
  for (const auto& d : nl.devices()) {
    const double v = std::get<spice::Mosfet>(d.impl).vt_delta;
    sum += v;
    sq += v * v;
  }
  const double mean = sum / 400.0;
  const double rms = std::sqrt(sq / 400.0);
  EXPECT_NEAR(mean, 0.0, 1.5e-3);
  EXPECT_NEAR(rms, 7e-3, 1.5e-3);
}

TEST(McTrials, ResultsIdenticalAtAnyThreadCount) {
  // Per-trial PCG32 streams make the draw sequence a function of
  // (seed, trial) only, so the tally and every per-trial measurement
  // must be bit-identical whether run serially or on four workers.
  const auto run = [](std::size_t threads, std::vector<double>& out) {
    McRunOptions opts;
    opts.num_threads = threads;
    opts.seed = 77;
    out.assign(40, 0.0);
    return run_mc_trials(40, opts, [&out](std::size_t t, util::Pcg32& rng) {
      spice::Netlist nl;
      const auto n = nl.node("x");
      nl.add("v", spice::VSource{nl.node("in"), spice::kGround, 1.0});
      nl.add("r", spice::Resistor{nl.node("in"), n, 1e3});
      nl.add("m", spice::Mosfet{n, nl.node("in"), spice::kGround,
                                spice::MosType::kNmos, 1e-6, 0.5e-6, 0.0});
      apply_vt_mismatch(nl, {}, {}, rng);
      const auto r = spice::solve_dc(nl);
      out[t] = r.converged ? r.v(nl, n) : -1.0;
      return r.status;
    });
  };
  std::vector<double> serial_v;
  std::vector<double> parallel_v;
  const McTally serial = run(1, serial_v);
  const McTally parallel = run(4, parallel_v);
  EXPECT_EQ(serial.ok, parallel.ok);
  EXPECT_EQ(serial.failed, parallel.failed);
  EXPECT_EQ(serial_v, parallel_v);  // bit-exact, not just statistically close
  EXPECT_EQ(serial.trials(), 40u);
}

TEST(ApplyMismatch, ComparatorOffsetPolaritySurvivesMismatch) {
  // The paper's design rule, on a sample of Monte-Carlo instances: the
  // deliberate 0.65u-vs-0.5u skew keeps the comparator decision at zero
  // differential on the intended side despite random VT mismatch.
  util::Pcg32 rng(2024);
  int correct = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    spice::Netlist nl;
    const auto vdd = nl.node("vdd");
    nl.add("v_vdd", spice::VSource{vdd, spice::kGround, 1.2});
    const auto in = nl.node("in");
    nl.add("v_in", spice::VSource{in, spice::kGround, 0.75});
    const auto vbn = cells::build_nbias(nl, "bias", vdd, 130e3);
    cells::ComparatorSpec spec;
    spec.w_offset = 0.65e-6;
    const auto c = cells::build_offset_comparator(nl, "cmp", vdd, vbn, in, in, spec);
    apply_vt_mismatch(nl, {"cmp."}, {}, rng);
    const auto r = spice::solve_dc(nl);
    if (!r.converged) continue;
    // Zero differential: the deliberate offset must hold the output low.
    if (r.v(nl, c.out) < 0.6) ++correct;
  }
  EXPECT_GE(correct, trials - 2);  // a rare 3-sigma escape is acceptable
}

}  // namespace
}  // namespace lsl::fault
