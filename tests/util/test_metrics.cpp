// Metrics registry: log-scale histogram bucket edges, snapshot stats,
// reset-keeps-references, JSON shape, threaded counter exactness.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace {

using lsl::util::Counter;
using lsl::util::MetricHistogram;
using lsl::util::Metrics;

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { Metrics::instance().reset(); }
  void TearDown() override {
    Metrics::instance().reset();
    Metrics::set_detailed_timing(false);
  }
};

TEST_F(MetricsTest, BucketEdgesArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(MetricHistogram::bucket_edge(0), std::ldexp(1.0, MetricHistogram::kMinExp));
  EXPECT_DOUBLE_EQ(MetricHistogram::bucket_edge(30), 1.0);  // 2^(-30+30)
  EXPECT_DOUBLE_EQ(MetricHistogram::bucket_edge(31), 2.0);
  // Edges span sub-nanosecond to hours when observing seconds.
  EXPECT_LT(MetricHistogram::bucket_edge(0), 1e-9);
  EXPECT_GT(MetricHistogram::bucket_edge(MetricHistogram::kBucketCount - 1), 8e9);
}

TEST_F(MetricsTest, BucketIndexUsesLessOrEqualEdges) {
  // A value exactly on an edge belongs to that bucket ("le" semantics).
  for (int i = 0; i < MetricHistogram::kBucketCount; ++i) {
    EXPECT_EQ(MetricHistogram::bucket_index(MetricHistogram::bucket_edge(i)), i) << "edge " << i;
  }
  // Just above an edge spills into the next bucket.
  for (int i = 0; i + 1 < MetricHistogram::kBucketCount; ++i) {
    const double above = std::nextafter(MetricHistogram::bucket_edge(i),
                                        std::numeric_limits<double>::infinity());
    EXPECT_EQ(MetricHistogram::bucket_index(above), i + 1) << "just above edge " << i;
  }
  // Degenerate inputs land in the edge buckets instead of being dropped.
  EXPECT_EQ(MetricHistogram::bucket_index(0.0), 0);
  EXPECT_EQ(MetricHistogram::bucket_index(-3.0), 0);
  EXPECT_EQ(MetricHistogram::bucket_index(1e300), MetricHistogram::kBucketCount - 1);
}

TEST_F(MetricsTest, HistogramSnapshotTracksCountSumMinMax) {
  auto& h = Metrics::instance().histogram("test.h");
  h.observe(1.0);
  h.observe(4.0);
  h.observe(0.25);
  const MetricHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 5.25);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  std::uint64_t total = 0;
  for (const auto b : s.buckets) total += b;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(s.buckets[MetricHistogram::bucket_index(1.0)], 1u);
  EXPECT_EQ(s.buckets[MetricHistogram::bucket_index(4.0)], 1u);
  EXPECT_EQ(s.buckets[MetricHistogram::bucket_index(0.25)], 1u);
}

TEST_F(MetricsTest, ResetZeroesButKeepsReferencesValid) {
  Counter& c = Metrics::instance().counter("test.reset");
  c.add(7);
  auto& h = Metrics::instance().histogram("test.reset_h");
  h.observe(2.0);
  Metrics::instance().reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0u);
  // Same instrument object after reset: the cached reference still works
  // and the registry hands back the same address.
  c.add(1);
  EXPECT_EQ(Metrics::instance().counter("test.reset").value(), 1);
  EXPECT_EQ(&Metrics::instance().counter("test.reset"), &c);
  EXPECT_EQ(&Metrics::instance().histogram("test.reset_h"), &h);
}

TEST_F(MetricsTest, SnapshotJsonHasAllThreeSections) {
  Metrics::instance().counter("test.c").add(3);
  Metrics::instance().gauge("test.g").set(1.5);
  Metrics::instance().histogram("test.h").observe(2.0);
  const std::string json = Metrics::instance().snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.c\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.g\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
}

TEST_F(MetricsTest, CountersAreExactUnderConcurrency) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  Counter& c = Metrics::instance().counter("test.concurrent");
  auto& h = Metrics::instance().histogram("test.concurrent_h");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        c.add(1);
        h.observe(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
  const MetricHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(kThreads) * kAddsPerThread);
  EXPECT_EQ(s.buckets[MetricHistogram::bucket_index(1.0)], s.count);
}

TEST_F(MetricsTest, DetailedTimingTogglesGlobally) {
  EXPECT_FALSE(Metrics::detailed_timing());
  Metrics::set_detailed_timing(true);
  EXPECT_TRUE(Metrics::detailed_timing());
  Metrics::set_detailed_timing(false);
  EXPECT_FALSE(Metrics::detailed_timing());
}

}  // namespace
