#include "util/log.hpp"

#include <gtest/gtest.h>

namespace lsl::util {
namespace {

/// Restores the global level after each test.
class LogLevelGuard : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

using LogTest = LogLevelGuard;

TEST_F(LogTest, DefaultLevelIsWarn) {
  // The library default keeps fault campaigns quiet.
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kWarn));
}

TEST_F(LogTest, SetAndGetRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kDebug));
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kOff));
}

TEST_F(LogTest, SuppressedMessagesDoNotCrash) {
  set_log_level(LogLevel::kOff);
  log_debug("dropped");
  log_info("dropped");
  log_warn("dropped");
  log_error("dropped");
}

TEST_F(LogTest, EmittedMessagesGoToStderr) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  log_error("boom");
  log_debug("trace");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[error] boom"), std::string::npos);
  EXPECT_NE(err.find("[debug] trace"), std::string::npos);
}

TEST_F(LogTest, ThresholdFilters) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  log_warn("hidden");
  log_error("shown");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("shown"), std::string::npos);
}

}  // namespace
}  // namespace lsl::util
