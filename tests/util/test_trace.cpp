// Tracer: span nesting, cross-thread merge ordering, ring-full drops,
// disabled-mode zero allocation, JSON export shape.
#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

// Counts every global allocation in this test binary so the
// disabled-mode test can assert the span fast path allocates nothing.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using lsl::util::TraceEvent;
using lsl::util::Tracer;
using lsl::util::TraceSpan;

void spin_us(int us) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::instance().stop();
    Tracer::instance().drain();  // leave nothing for the next test
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothingAndNeverAllocate) {
  Tracer::instance().stop();
  Tracer::instance().drain();
  const std::uint64_t before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("noop", "test");
    span.arg("k", 1.0);
  }
  EXPECT_EQ(g_allocs.load(), before) << "disabled span fast path allocated";
  EXPECT_TRUE(Tracer::instance().drain().empty());
}

// Everything below exercises *enabled* tracing, which -DLSL_TRACE=OFF
// compiles out (start() refuses, spans are empty inline bodies).
#if LSL_TRACE_ENABLED

TEST_F(TraceTest, NestedSpansStayWithinParentAndSortParentFirst) {
  Tracer::instance().start();
  {
    TraceSpan outer("outer", "test");
    spin_us(50);
    {
      TraceSpan inner("inner", "test");
      spin_us(50);
    }
    spin_us(50);
  }
  const std::vector<TraceEvent> events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 2u);
  // Same thread; parent starts first and sorts first despite being
  // recorded second (spans are recorded at destruction).
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us, events[1].ts_us + events[1].dur_us);
}

TEST_F(TraceTest, CrossThreadDrainMergesSortedByStartTime) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  Tracer::instance().start();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("work", "test");
        spin_us(5);
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::vector<TraceEvent> events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kSpansPerThread));
  std::vector<std::uint32_t> tids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) EXPECT_LE(events[i - 1].ts_us, events[i].ts_us) << "merge not time-sorted at " << i;
    tids.push_back(events[i].tid);
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, RingFullCountsDropsAndKeepsNewestEvents) {
  Tracer::instance().start(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("s", "test");
    span.arg("i", static_cast<double>(i));
  }
  EXPECT_EQ(Tracer::instance().dropped(), 6u);
  const std::vector<TraceEvent> events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 4u);
  // The ring overwrites oldest-first: the survivors are spans 6..9.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].arg1, static_cast<double>(i + 6));
  }
  EXPECT_EQ(Tracer::instance().dropped(), 0u) << "drain should reset the drop count";
}

TEST_F(TraceTest, CloseEndsEarlyAndIsIdempotent) {
  Tracer::instance().start();
  {
    TraceSpan span("early", "test");
    spin_us(20);
    span.close();
    span.close();  // second close must not double-record
    spin_us(200);
  }
  const std::vector<TraceEvent> events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 1u);
  // The span ended at close(), well before the 200us tail.
  EXPECT_LT(events[0].dur_us, 150.0);
}

TEST_F(TraceTest, JsonHasTraceEventsArrayWithThreadNames) {
  Tracer::instance().start();
  Tracer::set_thread_name("test-main");
  {
    TraceSpan span("op", "cat");
    span.arg("x", 2.5);
  }
  const std::string json = Tracer::instance().json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"op\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat\""), std::string::npos);
  EXPECT_NE(json.find("\"x\":2.5"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("test-main"), std::string::npos);
}

TEST_F(TraceTest, StartClearsEventsFromPreviousSession) {
  Tracer::instance().start();
  { TraceSpan span("stale", "test"); }
  Tracer::instance().stop();
  Tracer::instance().start();
  { TraceSpan span("fresh", "test"); }
  const std::vector<TraceEvent> events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "fresh");
}

#endif  // LSL_TRACE_ENABLED

}  // namespace
