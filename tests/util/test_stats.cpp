#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace lsl::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesBatchComputation) {
  Pcg32 rng(31);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_range(-5.0, 5.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-10);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(1.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 3.0);
}

TEST(Histogram, QuantileOfUniform) {
  Histogram h(0.0, 1.0, 100);
  Pcg32 rng(7);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string s = h.ascii(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("[0, 1)"), std::string::npos);
}

TEST(Coverage, PercentMath) {
  Coverage c;
  EXPECT_DOUBLE_EQ(c.percent(), 0.0);
  c.add(true);
  c.add(true);
  c.add(false);
  c.add(true);
  EXPECT_EQ(c.detected, 3u);
  EXPECT_EQ(c.total, 4u);
  EXPECT_DOUBLE_EQ(c.percent(), 75.0);
}

TEST(Coverage, Merge) {
  Coverage a;
  a.add(true);
  a.add(false);
  Coverage b;
  b.add(true);
  b.add(true);
  a.merge(b);
  EXPECT_EQ(a.detected, 3u);
  EXPECT_EQ(a.total, 4u);
}

}  // namespace
}  // namespace lsl::util
