// Thread-pool unit tests: task-count conservation, exception
// propagation out of worker tasks, destruction with queued work, and
// the zero-thread (inline) degenerate mode.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lsl::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  EXPECT_EQ(pool.worker_slots(), 4u);
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.for_each(kTasks, [&](std::size_t i, std::size_t worker) {
    ASSERT_LT(worker, pool.worker_slots());
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, SubmitConservesCount) {
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ForEachRethrowsLowestIndexedFailure) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.for_each(64, [&](std::size_t i, std::size_t) {
      ran.fetch_add(1);
      if (i == 7) throw std::invalid_argument("seven");
      if (i == 40) throw std::runtime_error("forty");
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "seven");  // lowest index wins, deterministically
  }
  // A throwing task does not cancel its siblings: every index still ran.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ZeroThreadsRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  EXPECT_EQ(pool.worker_slots(), 1u);

  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  std::vector<std::size_t> order;
  pool.for_each(5, [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    seen.insert(std::this_thread::get_id());
    order.push_back(i);
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));  // in-order, serial

  // submit() in inline mode has completed by the time it returns.
  bool ran = false;
  auto fut = pool.submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_NO_THROW(fut.get());
}

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ThreadPool, StealingBalancesOneSlowWorker) {
  // One long task pinned at the head of the round-robin order must not
  // serialize the remaining short tasks behind it: idle workers steal.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  const auto t0 = std::chrono::steady_clock::now();
  pool.for_each(41, [&](std::size_t i, std::size_t) {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.fetch_add(1);
  });
  const double sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(done.load(), 41);
  // Serial would be ~240 ms even on one core; stealing keeps the short
  // tasks flowing while the slow one blocks a single worker. Generous
  // bound (single-core CI still passes: sleeps overlap, CPU is idle).
  EXPECT_LT(sec, 1.5);
}

}  // namespace
}  // namespace lsl::util
