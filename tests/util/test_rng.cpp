#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace lsl::util {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, StreamsDiffer) {
  Pcg32 a(123, 1);
  Pcg32 b(123, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, NextBelowInRange) {
  Pcg32 rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Pcg32, NextBelowCoversAllValues) {
  Pcg32 rng(5);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.next_below(7)];
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, RangeRespected) {
  Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_range(-2.5, 3.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 3.5);
  }
}

TEST(Pcg32, MeanOfUniformNearHalf) {
  Pcg32 rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Pcg32, GaussianMomentsSane) {
  Pcg32 rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(Pcg32, BoolRoughlyFair) {
  Pcg32 rng(19);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.next_bool() ? 1 : 0;
  EXPECT_NEAR(ones, 5000, 300);
}

}  // namespace
}  // namespace lsl::util
