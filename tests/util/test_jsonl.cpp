#include "util/jsonl.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace lsl::util {
namespace {

TEST(JsonObject, SerializesInInsertionOrder) {
  JsonObject j;
  j.set("name", "tx.m_p1");
  j.set("index", std::size_t{42});
  j.set("elapsed", 0.5);
  j.set("detected", true);
  EXPECT_EQ(j.str(), "{\"name\":\"tx.m_p1\",\"index\":42,\"elapsed\":0.5,\"detected\":true}");
}

TEST(JsonObject, RoundTripsThroughParse) {
  JsonObject j;
  j.set("device", "cp.m_src \"quoted\"\n");
  j.set("count", std::int64_t{-7});
  j.set("ratio", 0.125);
  j.set("flag", false);
  JsonObject back;
  ASSERT_TRUE(JsonObject::parse(j.str(), back));
  std::string device;
  double count = 0.0;
  double ratio = 0.0;
  bool flag = true;
  ASSERT_TRUE(back.get_string("device", device));
  ASSERT_TRUE(back.get_number("count", count));
  ASSERT_TRUE(back.get_number("ratio", ratio));
  ASSERT_TRUE(back.get_bool("flag", flag));
  EXPECT_EQ(device, "cp.m_src \"quoted\"\n");
  EXPECT_DOUBLE_EQ(count, -7.0);
  EXPECT_DOUBLE_EQ(ratio, 0.125);
  EXPECT_FALSE(flag);
}

TEST(JsonObject, TypedGettersRejectWrongTypes) {
  JsonObject j;
  ASSERT_TRUE(JsonObject::parse("{\"s\": \"x\", \"n\": 3, \"b\": true}", j));
  double num = 0.0;
  std::string str;
  bool b = false;
  std::size_t u = 0;
  EXPECT_FALSE(j.get_number("s", num));
  EXPECT_FALSE(j.get_string("n", str));
  EXPECT_FALSE(j.get_bool("n", b));
  EXPECT_FALSE(j.get_uint("missing", u));
  EXPECT_TRUE(j.get_uint("n", u));
  EXPECT_EQ(u, 3u);
  EXPECT_TRUE(j.has("b"));
  EXPECT_FALSE(j.has("z"));
}

TEST(JsonObject, RejectsMalformedAndNestedInput) {
  JsonObject j;
  EXPECT_FALSE(JsonObject::parse("", j));
  EXPECT_FALSE(JsonObject::parse("{\"torn\": \"li", j));
  EXPECT_FALSE(JsonObject::parse("{\"a\": 1,}", j));
  EXPECT_FALSE(JsonObject::parse("{\"a\": [1, 2]}", j));
  EXPECT_FALSE(JsonObject::parse("{\"a\": {\"b\": 1}}", j));
  EXPECT_FALSE(JsonObject::parse("not json at all", j));
}

TEST(Jsonl, AppendAndReadLinesRoundTrip) {
  const std::string path = testing::TempDir() + "jsonl_roundtrip.jsonl";
  std::remove(path.c_str());
  EXPECT_TRUE(read_lines(path).empty());  // missing file is not an error
  ASSERT_TRUE(append_line(path, "{\"a\":1}"));
  ASSERT_TRUE(append_line(path, "{\"b\":2}"));
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"b\":2}");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lsl::util
