#include "util/prbs.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lsl::util {
namespace {

TEST(Prbs, Prbs7HasFullPeriod) {
  // A maximal-length LFSR of order 7 revisits its start state after
  // exactly 127 steps and not before.
  PrbsGenerator gen(PrbsOrder::kPrbs7, 1);
  std::vector<bool> first(127);
  for (auto&& b : first) b = gen.next_bit();
  std::vector<bool> second(127);
  for (auto&& b : second) b = gen.next_bit();
  EXPECT_EQ(first, second);
  EXPECT_EQ(gen.period(), 127u);
}

TEST(Prbs, Prbs7BalancedOnes) {
  // Maximal-length sequence has 64 ones and 63 zeros per period.
  PrbsGenerator gen(PrbsOrder::kPrbs7, 1);
  int ones = 0;
  for (int i = 0; i < 127; ++i) ones += gen.next_bit() ? 1 : 0;
  EXPECT_EQ(ones, 64);
}

TEST(Prbs, Prbs9BalancedOnes) {
  PrbsGenerator gen(PrbsOrder::kPrbs9, 3);
  int ones = 0;
  for (int i = 0; i < 511; ++i) ones += gen.next_bit() ? 1 : 0;
  EXPECT_EQ(ones, 256);
}

TEST(Prbs, Prbs15StatePeriodProperty) {
  // Walk 2^15-1 steps: every nonzero state must be visited exactly once,
  // checked via the output stream repeating.
  PrbsGenerator gen(PrbsOrder::kPrbs15, 77);
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) first.push_back(gen.next_bit());
  // Advance the remainder of a full period.
  for (std::uint64_t i = 200; i < gen.period(); ++i) gen.next_bit();
  for (int i = 0; i < 200; ++i) EXPECT_EQ(gen.next_bit(), first[i]) << "i=" << i;
}

TEST(Prbs, ZeroSeedAvoidsLockup) {
  PrbsGenerator gen(PrbsOrder::kPrbs7, 0);
  bool any_one = false;
  for (int i = 0; i < 127; ++i) any_one |= gen.next_bit();
  EXPECT_TRUE(any_one);
}

TEST(Prbs, BitsVectorMatchesStream) {
  PrbsGenerator a(PrbsOrder::kPrbs7, 21);
  PrbsGenerator b(PrbsOrder::kPrbs7, 21);
  const auto vec = a.bits(50);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(vec[i], b.next_bit());
}

TEST(Prbs, DifferentSeedsDifferentPhases) {
  PrbsGenerator a(PrbsOrder::kPrbs7, 1);
  PrbsGenerator b(PrbsOrder::kPrbs7, 64);
  const auto va = a.bits(64);
  const auto vb = b.bits(64);
  EXPECT_NE(va, vb);
}

TEST(TogglePattern, Alternates) {
  TogglePattern t(false);
  EXPECT_FALSE(t.next_bit());
  EXPECT_TRUE(t.next_bit());
  EXPECT_FALSE(t.next_bit());
  TogglePattern u(true);
  EXPECT_TRUE(u.next_bit());
  EXPECT_FALSE(u.next_bit());
}

class PrbsAllOrders : public ::testing::TestWithParam<PrbsOrder> {};

TEST_P(PrbsAllOrders, RunLengthBounded) {
  // No run of identical bits can exceed the LFSR order.
  PrbsGenerator gen(GetParam(), 123);
  const int order = static_cast<int>(GetParam());
  int run = 0;
  bool prev = gen.next_bit();
  for (int i = 0; i < 100000; ++i) {
    const bool b = gen.next_bit();
    if (b == prev) {
      ++run;
      EXPECT_LE(run, order) << "at step " << i;
    } else {
      run = 0;
    }
    prev = b;
  }
}

TEST_P(PrbsAllOrders, RoughlyBalanced) {
  PrbsGenerator gen(GetParam(), 5);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += gen.next_bit() ? 1 : 0;
  EXPECT_NEAR(ones, n / 2, n / 50);
}

INSTANTIATE_TEST_SUITE_P(Orders, PrbsAllOrders,
                         ::testing::Values(PrbsOrder::kPrbs7, PrbsOrder::kPrbs9,
                                           PrbsOrder::kPrbs15, PrbsOrder::kPrbs23,
                                           PrbsOrder::kPrbs31));

}  // namespace
}  // namespace lsl::util
