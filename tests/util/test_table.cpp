#include "util/table.hpp"

#include <gtest/gtest.h>

namespace lsl::util {
namespace {

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(87.76, 1), "87.8");
  EXPECT_EQ(Table::pct(94.81, 1), "94.8%");
}

TEST(Table, AlignsColumns) {
  Table t({"Defect", "Coverage"});
  t.add_row({"Gate open", "87.8%"});
  t.add_row({"Drain open", "93.9%"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| Defect     | Coverage |"), std::string::npos);
  EXPECT_NE(s.find("| Gate open  | 87.8%    |"), std::string::npos);
}

TEST(Table, TitleShown) {
  Table t({"a"});
  t.set_title("TABLE I");
  EXPECT_EQ(t.str().rfind("TABLE I\n", 0), 0u);
}

TEST(Table, ShortRowPadded) {
  Table t({"x", "y"});
  t.add_row({"only"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| only |"), std::string::npos);
}

}  // namespace
}  // namespace lsl::util
