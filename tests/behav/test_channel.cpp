#include "behav/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lsl::behav {
namespace {

TEST(Channel, ReachesTargetOnLongRuns) {
  ChannelParams p;
  Channel ch(p);
  for (int i = 0; i < 64; ++i) ch.push_bit(true);
  EXPECT_NEAR(ch.value(), p.swing, 1e-3);
  for (int i = 0; i < 64; ++i) ch.push_bit(false);
  EXPECT_NEAR(ch.value(), -p.swing, 1e-3);
}

TEST(Channel, RcDominatedWithoutFfeShowsIsi) {
  // tau ~ 3.75 UI: after a single opposite bit the line cannot reach the
  // new level.
  ChannelParams p;
  p.ffe_kick = 0.0;
  Channel ch(p);
  for (int i = 0; i < 64; ++i) ch.push_bit(false);
  ch.push_bit(true);  // single 1 after a long run of 0s
  EXPECT_LT(ch.value(), 0.0);  // has not even crossed zero
}

TEST(Channel, FfeKickRestoresTransition) {
  ChannelParams p;  // default kick
  Channel ch(p);
  for (int i = 0; i < 64; ++i) ch.push_bit(false);
  ch.push_bit(true);
  EXPECT_GT(ch.value(), 0.0);  // the capacitive kick crosses the slicer
}

TEST(Channel, WaveformLengthMatchesOversample) {
  ChannelParams p;
  p.oversample = 8;
  Channel ch(p);
  ch.push_bit(true);
  EXPECT_EQ(ch.last_ui_waveform().size(), 8u);
}

TEST(Channel, DriveScaleReducesSwing) {
  ChannelParams weak;
  weak.drive_scale_p = 0.5;
  weak.drive_scale_n = 0.5;
  Channel ch(weak);
  for (int i = 0; i < 64; ++i) ch.push_bit(true);
  EXPECT_NEAR(ch.value(), weak.swing * 0.5, 1e-3);
}

TEST(Eye, OpenWithFfeClosedWithout) {
  ChannelParams with_ffe;
  EyeResult open = analyze_eye(with_ffe, 2000);
  EXPECT_GT(open.best_height, 0.01);
  EXPECT_GT(open.width_frac, 0.3);

  ChannelParams no_ffe = with_ffe;
  no_ffe.ffe_kick = 0.0;
  EyeResult closed = analyze_eye(no_ffe, 2000);
  EXPECT_LT(closed.best_height, open.best_height * 0.5);
}

TEST(Eye, NoiseShrinksEye) {
  ChannelParams clean;
  ChannelParams noisy = clean;
  noisy.noise_rms = 0.01;
  const EyeResult e_clean = analyze_eye(clean, 2000);
  const EyeResult e_noisy = analyze_eye(noisy, 2000);
  EXPECT_LT(e_noisy.best_height, e_clean.best_height);
}

TEST(Eye, PhaseGridCoversUi) {
  ChannelParams p;
  p.oversample = 12;
  const EyeResult e = analyze_eye(p, 500);
  ASSERT_EQ(e.phases.size(), 12u);
  EXPECT_DOUBLE_EQ(e.phases.front().phase_frac, 0.0);
  EXPECT_NEAR(e.phases.back().phase_frac, 11.0 / 12.0, 1e-12);
}

class EyeKickSweep : public ::testing::TestWithParam<double> {};

TEST_P(EyeKickSweep, StrongerKickNeverHurtsThisChannel) {
  // Property over the FFE strength: in this heavily RC-limited channel,
  // kicks up to the optimum monotonically improve the eye.
  ChannelParams base;
  base.ffe_kick = GetParam();
  ChannelParams weaker = base;
  weaker.ffe_kick = GetParam() * 0.5;
  const EyeResult strong = analyze_eye(base, 1500);
  const EyeResult weak = analyze_eye(weaker, 1500);
  EXPECT_GE(strong.best_height, weak.best_height - 1e-6) << "kick=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Kicks, EyeKickSweep, ::testing::Values(0.4, 0.7, 1.0, 1.2));

}  // namespace
}  // namespace lsl::behav
