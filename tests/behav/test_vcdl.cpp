#include "behav/vcdl.hpp"

#include <gtest/gtest.h>

namespace lsl::behav {
namespace {

TEST(Vcdl, DelayIsAffineInControl) {
  Vcdl v;
  const double d0 = v.delay(0.0);
  const double d1 = v.delay(1.0);
  EXPECT_DOUBLE_EQ(d0, 20e-12);
  EXPECT_DOUBLE_EQ(d1, 20e-12 + 150e-12);
  EXPECT_DOUBLE_EQ(v.delay(0.5), 20e-12 + 75e-12);
}

TEST(Vcdl, ClampsNegativeControl) {
  Vcdl v;
  EXPECT_DOUBLE_EQ(v.delay(-1.0), v.delay(0.0));
}

TEST(Vcdl, FaultHooksApply) {
  VcdlParams p;
  p.gain_scale = 0.5;
  p.extra_delay = 10e-12;
  Vcdl v(p);
  EXPECT_DOUBLE_EQ(v.delay(1.0), 20e-12 + 10e-12 + 75e-12);
}

TEST(Vcdl, RangeExceedsDllPhaseStepOverWindow) {
  // The paper's design rule: VCDL range over the window-comparator span
  // must exceed one DLL phase step, or the coarse/fine handoff can fail.
  Vcdl v;
  Dll d;
  EXPECT_GT(v.range(0.4, 0.8), d.phase_step());
}

TEST(Dll, PhasesSpanThePeriod) {
  Dll d;
  EXPECT_EQ(d.n_phases(), 10u);
  EXPECT_DOUBLE_EQ(d.phase_step(), 40e-12);
  EXPECT_DOUBLE_EQ(d.phase_offset(0), 0.0);
  EXPECT_DOUBLE_EQ(d.phase_offset(9), 360e-12);
  EXPECT_THROW(d.phase_offset(10), std::out_of_range);
}

}  // namespace
}  // namespace lsl::behav
