#include "behav/pump.hpp"

#include <gtest/gtest.h>

namespace lsl::behav {
namespace {

TEST(ChargePump, UpRaisesVc) {
  ChargePump p({}, 0.6);
  const double before = p.vc();
  p.pump(true, false, 400e-12);
  // 8uA for 200ps into 1pF = 1.6 mV.
  EXPECT_NEAR(p.vc() - before, 1.6e-3, 1e-5);
}

TEST(ChargePump, DnLowersVc) {
  ChargePump p({}, 0.6);
  p.pump(false, true, 400e-12);
  EXPECT_NEAR(p.vc(), 0.6 - 1.6e-3, 1e-5);
}

TEST(ChargePump, UpAndDnCancel) {
  ChargePump p({}, 0.6);
  p.pump(true, true, 400e-12);
  EXPECT_NEAR(p.vc(), 0.6, 1e-9);
}

TEST(ChargePump, MismatchedCurrentsDrift) {
  PumpParams params;
  params.i_up = 6e-6;
  params.i_dn = 4e-6;
  ChargePump p(params, 0.6);
  p.pump(true, true, 400e-12);
  EXPECT_GT(p.vc(), 0.6);  // net positive charge
}

TEST(ChargePump, ClampsAtRails) {
  ChargePump p({}, 1.19);
  for (int i = 0; i < 1000; ++i) p.pump(true, false, 400e-12);
  EXPECT_DOUBLE_EQ(p.vc(), 1.2);
  ChargePump q({}, 0.01);
  for (int i = 0; i < 1000; ++i) q.pump(false, true, 400e-12);
  EXPECT_DOUBLE_EQ(q.vc(), 0.0);
}

TEST(ChargePump, StrongIsFaster) {
  ChargePump weak({}, 0.6);
  ChargePump strong({}, 0.6);
  weak.pump(true, false, 400e-12);
  strong.strong(true, false, 400e-12);
  // Strong: 4x current and no pulse gating.
  EXPECT_GT(strong.vc() - 0.6, 4.0 * (weak.vc() - 0.6) - 1e-9);
}

TEST(ChargePump, LeakageDriftsWithoutActivity) {
  PumpParams params;
  params.leak = 1e-6;
  ChargePump p(params, 0.6);
  for (int i = 0; i < 100; ++i) p.pump(false, false, 400e-12);
  // 1uA * 40ns / 1pF = 40 mV upward drift.
  EXPECT_NEAR(p.vc(), 0.64, 1e-3);
}

TEST(ChargePump, BalanceNodeTracksVc) {
  ChargePump p({}, 0.5);
  p.pump(true, false, 400e-12);
  EXPECT_NEAR(p.vp(), p.vc(), 1e-12);
}

TEST(ChargePump, BalanceOffsetFault) {
  PumpParams params;
  params.vp_offset = 0.2;
  ChargePump p(params, 0.5);
  p.pump(false, false, 400e-12);
  EXPECT_NEAR(p.vp() - p.vc(), 0.2, 1e-12);
}

TEST(ChargePump, BrokenBalanceDrifts) {
  PumpParams params;
  params.balance_broken = true;
  params.vp_drift = 1e6;  // 1 V/us toward VDD
  ChargePump p(params, 0.5);
  for (int i = 0; i < 2500; ++i) p.pump(false, false, 400e-12);
  // 1 us of drift saturates Vp at the rail while Vc stays put.
  EXPECT_DOUBLE_EQ(p.vp(), 1.2);
  EXPECT_NEAR(p.vc(), 0.5, 1e-6);
}

}  // namespace
}  // namespace lsl::behav
