#include "behav/synchronizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lsl::behav {
namespace {

constexpr std::size_t kMaxUi = 8000;  // > the paper's 5000-cycle budget

SyncParams default_params() { return SyncParams{}; }

TEST(Synchronizer, LocksFromBenignStart) {
  SyncParams p = default_params();
  Synchronizer sync(p, /*eye_center=*/100e-12, /*vc0=*/0.6, /*phase0=*/0);
  util::Pcg32 rng(1);
  const SyncResult r = sync.run(kMaxUi, rng);
  EXPECT_TRUE(r.locked);
  EXPECT_LT(std::fabs(r.final_phase_error), 0.8 * Dll{p.dll}.phase_step());
}

TEST(Synchronizer, LocksWithinPaperBudgetFromAllPhases) {
  // The paper's BIST expectation: lock within 2 us (5000 UI at 2.5 Gb/s)
  // from any initial condition, with at most n_phases/2 coarse steps'
  // worth of corrections recorded by the lock detector.
  SyncParams p = default_params();
  for (std::size_t k0 = 0; k0 < 10; ++k0) {
    Synchronizer sync(p, 180e-12, 0.6, k0);
    util::Pcg32 rng(100 + k0);
    const SyncResult r = sync.run(5000, rng);
    EXPECT_TRUE(r.locked) << "phase0=" << k0;
    EXPECT_LE(r.lock_time, 2e-6) << "phase0=" << k0;
    EXPECT_FALSE(r.lock_counter_saturated) << "phase0=" << k0;
  }
}

TEST(Synchronizer, TraceShowsSawtoothAndPhaseSteps) {
  // Fig 2: Vc ramps between the window thresholds; each crossing causes
  // a coarse phase step.
  SyncParams p = default_params();
  Synchronizer sync(p, 399e-12, 0.6, 5);  // far-away eye forces coarse steps
  util::Pcg32 rng(7);
  const SyncResult r = sync.run(kMaxUi, rng, /*record_trace=*/true);
  EXPECT_TRUE(r.locked);
  EXPECT_GE(r.coarse_corrections, 1);
  ASSERT_FALSE(r.trace.empty());
  int events = 0;
  for (const auto& pt : r.trace) {
    EXPECT_GE(pt.vc, 0.0);
    EXPECT_LE(pt.vc, 1.2);
    if (pt.coarse_event) ++events;
  }
  EXPECT_EQ(events, r.coarse_corrections);
}

TEST(Synchronizer, NoCoarseStepWhenEyeReachableByFineLoop) {
  SyncParams p = default_params();
  // Start with sampling ~ eye center: phase 0 at vc=0.6 samples at
  // 20 + 90 = 110 ps.
  Synchronizer sync(p, 110e-12, 0.6, 0);
  util::Pcg32 rng(3);
  const SyncResult r = sync.run(kMaxUi, rng);
  EXPECT_TRUE(r.locked);
  EXPECT_EQ(r.coarse_corrections, 0);
  EXPECT_EQ(r.lock_counter, 0);
}

TEST(Synchronizer, PdStuckUpSaturatesLockDetector) {
  SyncParams p = default_params();
  p.faults.pd_up_stuck = true;
  Synchronizer sync(p, 110e-12, 0.6, 0);
  util::Pcg32 rng(5);
  const SyncResult r = sync.run(kMaxUi, rng);
  EXPECT_FALSE(r.locked);
  EXPECT_TRUE(r.lock_counter_saturated);
}

TEST(Synchronizer, WindowDeadPinsVcAtRail) {
  SyncParams p = default_params();
  p.faults.window_dead = true;
  Synchronizer sync(p, 399e-12, 0.6, 5);  // needs coarse steps it can't make
  util::Pcg32 rng(11);
  const SyncResult r = sync.run(kMaxUi, rng);
  EXPECT_FALSE(r.locked);
  EXPECT_EQ(r.coarse_corrections, 0);
  EXPECT_TRUE(r.final_vc <= 0.01 || r.final_vc >= 1.19);
}

TEST(Synchronizer, CounterStuckCycles) {
  SyncParams p = default_params();
  p.faults.counter_stuck = true;
  Synchronizer sync(p, 399e-12, 0.6, 5);
  util::Pcg32 rng(13);
  const SyncResult r = sync.run(kMaxUi, rng);
  EXPECT_FALSE(r.locked);
  EXPECT_TRUE(r.lock_counter_saturated);
}

TEST(Synchronizer, BrokenBalanceTripsCpBist) {
  SyncParams p = default_params();
  p.pump.balance_broken = true;
  p.pump.vp_drift = 0.5e6;
  Synchronizer sync(p, 110e-12, 0.6, 0);
  util::Pcg32 rng(17);
  const SyncResult r = sync.run(kMaxUi, rng);
  // Vp rails: the CP-BIST window flags it, and the charge-sharing
  // glitches it induces may even cost the lock — detected either way.
  EXPECT_TRUE(r.cp_bist_flag);
  if (r.locked) {
    EXPECT_GT(r.jitter_rms, 2e-12);  // visibly degraded clock
  }
}

TEST(Synchronizer, SwitchMatrixDeadFreezes) {
  SyncParams p = default_params();
  p.faults.switch_matrix_dead = true;
  Synchronizer sync(p, 200e-12, 0.6, 0);
  util::Pcg32 rng(19);
  const SyncResult r = sync.run(kMaxUi, rng);
  EXPECT_FALSE(r.locked);
  EXPECT_EQ(r.coarse_corrections, 0);
  EXPECT_DOUBLE_EQ(r.final_vc, 0.6);
}

TEST(Synchronizer, WeakPumpCurrentLossSlowsLock) {
  SyncParams healthy = default_params();
  SyncParams weak = default_params();
  weak.pump.i_up *= 0.25;
  weak.pump.i_dn *= 0.25;
  // A start that needs a long fine ramp.
  Synchronizer s1(healthy, 399e-12, 0.6, 5);
  Synchronizer s2(weak, 399e-12, 0.6, 5);
  util::Pcg32 r1(23);
  util::Pcg32 r2(23);
  const SyncResult a = s1.run(20000, r1);
  const SyncResult b = s2.run(20000, r2);
  ASSERT_TRUE(a.locked);
  if (b.locked) {
    EXPECT_GT(b.lock_time, a.lock_time);
  }
}

TEST(Synchronizer, BackgroundLoopTracksDrift) {
  // The paper's motivation (its ref [8]): the background coarse+fine
  // loop follows environmental drift during normal operation. 40 ps of
  // eye drift per microsecond over 40 us sweeps the eye by 4 DLL phase
  // steps; the tracking receiver must stay inside the eye throughout.
  SyncParams p = default_params();
  p.eye_drift_rate = 40e-12 / 1e-6;
  Synchronizer sync(p, 110e-12, 0.6, 0);
  util::Pcg32 rng(41);
  const SyncResult r = sync.run(100000, rng);  // 40 us
  EXPECT_TRUE(r.locked);
  EXPECT_GE(r.coarse_corrections, 2);  // it really did hand off phases
  EXPECT_EQ(r.ui_outside_eye_after_lock, 0u);
  EXPECT_LT(r.max_err_after_lock, 100e-12);
}

TEST(Synchronizer, FrozenForegroundCalibrationLosesTheEye) {
  // One-shot (foreground) calibration under the same drift: the frozen
  // receiver walks out of the eye.
  SyncParams p = default_params();
  p.eye_drift_rate = 40e-12 / 1e-6;
  p.freeze_after_lock = true;
  Synchronizer sync(p, 110e-12, 0.6, 0);
  util::Pcg32 rng(41);
  const SyncResult r = sync.run(100000, rng);
  EXPECT_GT(r.ui_outside_eye_after_lock, 1000u);
  EXPECT_GT(r.max_err_after_lock, 150e-12);
}

TEST(Synchronizer, JitterStatsPopulatedAfterLock) {
  SyncParams p = default_params();
  Synchronizer sync(p, 110e-12, 0.6, 0);
  util::Pcg32 rng(47);
  const SyncResult r = sync.run(20000, rng);
  ASSERT_TRUE(r.locked);
  EXPECT_GT(r.jitter_rms, 0.0);
  EXPECT_LT(r.jitter_rms, 20e-12);  // healthy loop: ps-class dither
  EXPECT_GE(r.jitter_pp, r.jitter_rms);
}

TEST(Synchronizer, BalanceOffsetRaisesJitter) {
  // The paper: a drifted balance node pushes a current source into its
  // linear region and "causes increased jitter in the recovered clock".
  SyncParams healthy = default_params();
  SyncParams sick = default_params();
  sick.pump.vp_offset = 0.4;
  Synchronizer s1(healthy, 110e-12, 0.6, 0);
  Synchronizer s2(sick, 110e-12, 0.6, 0);
  util::Pcg32 r1(53);
  util::Pcg32 r2(53);
  const SyncResult a = s1.run(40000, r1);
  const SyncResult b = s2.run(40000, r2);
  ASSERT_TRUE(a.locked);
  ASSERT_TRUE(b.locked);
  EXPECT_GT(b.jitter_rms, 1.5 * a.jitter_rms);
  EXPECT_TRUE(b.cp_bist_flag);  // and the Fig-9 window catches it
}

TEST(Synchronizer, NoDriftNoCoarseHandoffAfterLock) {
  SyncParams p = default_params();
  Synchronizer sync(p, 110e-12, 0.6, 0);
  util::Pcg32 rng(43);
  const SyncResult r = sync.run(50000, rng);
  EXPECT_TRUE(r.locked);
  EXPECT_EQ(r.coarse_corrections, 0);
  EXPECT_EQ(r.ui_outside_eye_after_lock, 0u);
}

class SyncEyeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SyncEyeSweep, LocksForEyeCentersAcrossThePeriod) {
  // Property: the synchronizer acquires for any eye-center position.
  const double frac = GetParam() / 16.0;
  SyncParams p = default_params();
  Synchronizer sync(p, frac * p.dll.clock_period, 0.6, 3);
  util::Pcg32 rng(31 + GetParam());
  const SyncResult r = sync.run(10000, rng);
  EXPECT_TRUE(r.locked) << "eye frac " << frac;
  EXPECT_LT(std::fabs(r.final_phase_error), 0.8 * Dll{p.dll}.phase_step());
}

INSTANTIATE_TEST_SUITE_P(EyeCenters, SyncEyeSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace lsl::behav
