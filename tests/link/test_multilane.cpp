#include "link/multilane.hpp"

#include <gtest/gtest.h>

namespace lsl::link {
namespace {

TEST(MultiLane, AllLanesPassWhenHealthy) {
  MultiLaneParams p;
  p.lanes = 4;
  MultiLaneLink bus(p);
  const auto report = bus.test_all(500);
  ASSERT_EQ(report.lanes.size(), 4u);
  EXPECT_TRUE(report.all_pass);
  for (const auto& lane : report.lanes) {
    EXPECT_TRUE(lane.bist.pass()) << "lane " << lane.lane;
    EXPECT_EQ(lane.traffic.errors, 0u) << "lane " << lane.lane;
  }
}

TEST(MultiLane, SkewMakesLanesLockDifferentPhases) {
  // 55 ps of skew per lane across 8 lanes spans > 4 DLL phase steps:
  // the per-lane synchronizers must absorb it with different coarse
  // selections.
  MultiLaneParams p;
  p.lanes = 8;
  MultiLaneLink bus(p);
  const auto report = bus.test_all(200);
  EXPECT_GE(report.distinct_phases, 3u);
}

TEST(MultiLane, LaneParamsApplySkew) {
  MultiLaneParams p;
  MultiLaneLink bus(p);
  const auto p0 = bus.lane_params(0);
  const auto p3 = bus.lane_params(3);
  EXPECT_DOUBLE_EQ(p3.latency - p0.latency, 3 * p.skew_per_lane);
}

TEST(MultiLane, ConcurrentBistSchedulingWins) {
  MultiLaneParams p;
  p.lanes = 16;
  MultiLaneLink bus(p);
  const auto report = bus.test_all(100);
  EXPECT_LT(report.test_time_scheduled, report.test_time_sequential);
  // The saving is (n-1) BIST slots.
  EXPECT_NEAR(report.test_time_sequential - report.test_time_scheduled,
              15.0 * p.bist_time_per_lane, 1e-12);
}

TEST(MultiLane, BrokenLaneFlagsTheBus) {
  MultiLaneParams p;
  p.lanes = 3;
  p.base.sync.faults.pd_dead = true;  // every lane's PD broken
  MultiLaneLink bus(p);
  const auto report = bus.test_all(200);
  EXPECT_FALSE(report.all_pass);
}

}  // namespace
}  // namespace lsl::link
