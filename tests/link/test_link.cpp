#include "link/link.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lsl::link {
namespace {

TEST(Link, HealthyLinkRunsErrorFree) {
  Link link;
  const TrafficResult r = link.run_traffic(2000, util::PrbsOrder::kPrbs7, 42);
  ASSERT_TRUE(r.sync.locked);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.bits, 2000u);
}

TEST(Link, HealthyBistPasses) {
  Link link;
  const BistVerdict v = link.run_bist(7);
  EXPECT_TRUE(v.locked_in_budget);
  EXPECT_TRUE(v.lock_counter_ok);
  EXPECT_TRUE(v.cp_bist_ok);
  EXPECT_TRUE(v.data_ok);
  EXPECT_TRUE(v.pass());
}

TEST(Link, BistFailsWithoutEqualization) {
  LinkParams p;
  p.channel.ffe_kick = 0.0;  // dead FFE caps: the eye closes
  Link link(p);
  const BistVerdict v = link.run_bist(7);
  EXPECT_FALSE(v.data_ok);
  EXPECT_FALSE(v.pass());
}

TEST(Link, BistFailsWithDeadPd) {
  LinkParams p;
  p.sync.faults.pd_dead = true;
  // Preload a far-off coarse phase (the BIST can scan-load the ring
  // counter): with the PD dead, acquisition is impossible. From a lucky
  // initial phase the fault would escape — which is why the DFT
  // procedure forces the preload.
  p.phase0 = 5;
  Link link(p);
  const BistVerdict v = link.run_bist(7);
  EXPECT_FALSE(v.pass());
}

TEST(Link, BistFlagsBrokenChargeBalance) {
  LinkParams p;
  p.sync.pump.balance_broken = true;
  p.sync.pump.vp_drift = 1e6;
  Link link(p);
  const BistVerdict v = link.run_bist(7);
  EXPECT_FALSE(v.cp_bist_ok);
  EXPECT_FALSE(v.pass());
}

TEST(Link, SlicerOffsetFaultCausesErrors) {
  LinkParams p;
  p.slicer_offset = 0.15;  // way beyond the eye amplitude
  Link link(p);
  const TrafficResult r = link.run_traffic(500, util::PrbsOrder::kPrbs7, 11);
  EXPECT_GT(r.errors, 0u);
}

TEST(Link, HalfCycleLatchShiftsEyeCenter) {
  LinkParams base;
  LinkParams delayed = base;
  delayed.tx_half_cycle_delay = true;
  Link a(base);
  Link b(delayed);
  const double period = base.sync.dll.clock_period;
  double diff = b.eye_center() - a.eye_center();
  diff = std::fmod(std::fmod(diff, period) + period, period);
  EXPECT_NEAR(diff, 0.5 * base.channel.ui, 1e-12);
}

TEST(Link, LocksFromEveryInitialPhase) {
  for (std::size_t k = 0; k < 10; ++k) {
    LinkParams p;
    p.phase0 = k;
    Link link(p);
    const TrafficResult r = link.run_traffic(200, util::PrbsOrder::kPrbs7, 100 + k);
    EXPECT_TRUE(r.sync.locked) << "phase0=" << k;
    EXPECT_EQ(r.errors, 0u) << "phase0=" << k;
  }
}

TEST(Link, UnlockedTrafficCountsAllBitsAsErrors) {
  LinkParams p;
  p.sync.faults.switch_matrix_dead = true;
  Link link(p);
  const TrafficResult r = link.run_traffic(100, util::PrbsOrder::kPrbs7, 3);
  EXPECT_FALSE(r.sync.locked);
  EXPECT_EQ(r.errors, 100u);
}

}  // namespace
}  // namespace lsl::link
