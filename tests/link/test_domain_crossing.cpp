#include "link/domain_crossing.hpp"

#include <gtest/gtest.h>

namespace lsl::link {
namespace {

constexpr double kT = 400e-12;

TEST(DomainCrossing, EarlySampleUsesFullCycle) {
  // Sample just after the receiver edge: plenty of slack to the next
  // rising edge.
  const CrossingDecision d = decide_crossing(0.1 * kT, kT);
  EXPECT_EQ(d.mode, RetimeMode::kFullCycle);
  EXPECT_NEAR(d.slack, 0.9 * kT, 1e-15);
  EXPECT_DOUBLE_EQ(d.latency_cycles, 1.0);
}

TEST(DomainCrossing, LateSampleUsesHalfCycle) {
  // Sample close to the next receiver edge: the paper's half-cycle rule.
  const CrossingDecision d = decide_crossing(0.9 * kT, kT);
  EXPECT_EQ(d.mode, RetimeMode::kHalfCycle);
  EXPECT_DOUBLE_EQ(d.latency_cycles, 0.5);
}

TEST(DomainCrossing, BoundaryAtHalfPeriod) {
  const CrossingDecision just_before = decide_crossing(0.499 * kT, kT);
  const CrossingDecision just_after = decide_crossing(0.501 * kT, kT);
  EXPECT_EQ(just_before.mode, RetimeMode::kFullCycle);
  EXPECT_EQ(just_after.mode, RetimeMode::kHalfCycle);
}

TEST(DomainCrossing, WrapsModuloPeriod) {
  const CrossingDecision a = decide_crossing(0.25 * kT, kT);
  const CrossingDecision b = decide_crossing(2.25 * kT, kT);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_NEAR(a.slack, b.slack, 1e-15);
  const CrossingDecision c = decide_crossing(-0.75 * kT, kT);
  EXPECT_EQ(a.mode, c.mode);
}

TEST(DomainCrossing, SlackAlwaysAtLeastHalfPeriod) {
  // Property: the half/full-cycle rule guarantees >= T/2 slack at every
  // sampling position — the whole point of the retiming mux.
  for (int i = 0; i < 200; ++i) {
    const double s = kT * i / 200.0;
    const CrossingDecision d = decide_crossing(s, kT);
    EXPECT_GE(d.slack, kT / 2.0 - 1e-15) << "offset " << s;
    EXPECT_TRUE(crossing_is_safe(d, kT / 2.0 - 1e-15));
  }
}

}  // namespace
}  // namespace lsl::link
