// Differential tests for the incremental campaign engine: golden
// warm-starts, low-rank (SMW) injection, structural fault collapsing and
// adaptive stage ordering are pure accelerations — the verdict
// partition (detected / undetected / quarantined) and the per-class
// cumulative Table-I coverage must be identical with every mechanism
// on, off, or alone, at any thread count, and across checkpoint/resume.
//
// Per-stage attribution is the one thing short-circuiting is allowed to
// change (a skipped stage reports no detection of its own), so these
// tests compare partitions and cumulative coverage across configs, and
// demand full byte-identity (canonical JSONL) only within one config.
#include "dft/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "dft/dictionary.hpp"
#include "util/jsonl.hpp"
#include "util/metrics.hpp"

namespace lsl::dft {
namespace {

class CampaignIncrementalFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    golden_ = new cells::LinkFrontend();
    baseline_ = new CampaignReport(run_campaign(*golden_, all_off(1)));
  }
  static void TearDownTestSuite() {
    delete baseline_;
    baseline_ = nullptr;
    delete golden_;
    golden_ = nullptr;
  }

  /// Small DC+scan universe (TX drivers + FFE caps): deterministic and
  /// fast, while still exercising seeds, overlays, and stage ordering.
  static CampaignOptions base_opts(std::size_t threads) {
    CampaignOptions opts;
    opts.prefixes = {"tx."};
    opts.with_bist = false;
    opts.with_scan_toggle = false;
    opts.max_faults = 10;
    opts.num_threads = threads;
    return opts;
  }

  static CampaignOptions all_off(std::size_t threads) {
    CampaignOptions opts = base_opts(threads);
    opts.reuse_golden = false;
    opts.low_rank_injection = false;
    opts.collapse_faults = false;
    opts.adaptive_stage_order = false;
    return opts;
  }

  /// The cross-config contract: identical verdict partition and
  /// identical cumulative (Table-I) coverage, overall and per class.
  static void expect_same_partition(const CampaignReport& a, const CampaignReport& b) {
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      const FaultOutcome& x = a.outcomes[i];
      const FaultOutcome& y = b.outcomes[i];
      EXPECT_EQ(x.index, y.index);
      EXPECT_EQ(x.fault.device, y.fault.device);
      EXPECT_EQ(x.verdict, y.verdict) << x.fault.describe();
    }
    EXPECT_EQ(a.quarantined, b.quarantined);
    EXPECT_EQ(a.total.cum_dc.detected, b.total.cum_dc.detected);
    EXPECT_EQ(a.total.cum_scan.detected, b.total.cum_scan.detected);
    EXPECT_EQ(a.total.cum_all.detected, b.total.cum_all.detected);
    EXPECT_EQ(a.total.cum_all.total, b.total.cum_all.total);
    ASSERT_EQ(a.per_class.size(), b.per_class.size());
    for (const auto& [cls, sa] : a.per_class) {
      const auto it = b.per_class.find(cls);
      ASSERT_NE(it, b.per_class.end()) << fault::fault_class_name(cls);
      EXPECT_EQ(sa.cum_dc.detected, it->second.cum_dc.detected)
          << fault::fault_class_name(cls);
      EXPECT_EQ(sa.cum_scan.detected, it->second.cum_scan.detected)
          << fault::fault_class_name(cls);
      EXPECT_EQ(sa.cum_all.detected, it->second.cum_all.detected)
          << fault::fault_class_name(cls);
      EXPECT_EQ(sa.cum_all.total, it->second.cum_all.total)
          << fault::fault_class_name(cls);
      EXPECT_EQ(sa.quarantined, it->second.quarantined) << fault::fault_class_name(cls);
    }
  }

  static cells::LinkFrontend* golden_;
  static CampaignReport* baseline_;  // every mechanism off, serial
};

cells::LinkFrontend* CampaignIncrementalFixture::golden_ = nullptr;
CampaignReport* CampaignIncrementalFixture::baseline_ = nullptr;

TEST_F(CampaignIncrementalFixture, DefaultsPreservePartitionAcrossThreadCounts) {
  std::string canonical_serial;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const CampaignReport incremental = run_campaign(*golden_, base_opts(threads));
    ASSERT_TRUE(incremental.complete);
    expect_same_partition(*baseline_, incremental);
    // Within the defaults-on config the full canonical serialization —
    // per-stage bits, stages_run, collapsed_into included — must be
    // byte-identical at every thread count.
    const std::string canon = report_canonical_jsonl(incremental);
    if (threads == 1) {
      canonical_serial = canon;
    } else {
      EXPECT_EQ(canon, canonical_serial) << "thread count " << threads;
    }
  }
}

TEST_F(CampaignIncrementalFixture, EachMechanismAlonePreservesPartition) {
  for (int mech = 0; mech < 4; ++mech) {
    CampaignOptions opts = all_off(1);
    switch (mech) {
      case 0: opts.reuse_golden = true; break;
      case 1: opts.low_rank_injection = true; break;
      case 2: opts.collapse_faults = true; break;
      case 3: opts.adaptive_stage_order = true; break;
    }
    const CampaignReport report = run_campaign(*golden_, opts);
    ASSERT_TRUE(report.complete) << "mechanism " << mech;
    expect_same_partition(*baseline_, report);
  }
}

TEST_F(CampaignIncrementalFixture, GoldenWarmStartsActuallyFire) {
  auto& m = util::metrics();
  const auto hits_before = m.counter("campaign.warm_start.hits").value();
  CampaignOptions opts = all_off(1);
  opts.reuse_golden = true;
  const CampaignReport report = run_campaign(*golden_, opts);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(m.counter("campaign.warm_start.hits").value(), hits_before)
      << "reuse_golden produced no warm-start hits";
}

TEST_F(CampaignIncrementalFixture, FoldedOutcomesMirrorTheirRepresentative) {
  CampaignOptions opts = all_off(1);
  opts.collapse_faults = true;
  const CampaignReport report = run_campaign(*golden_, opts);
  ASSERT_TRUE(report.complete);
  for (const FaultOutcome& o : report.outcomes) {
    if (!o.collapsed_into.has_value()) continue;
    const std::size_t rep = *o.collapsed_into;
    ASSERT_LT(rep, report.outcomes.size());
    const FaultOutcome& r = report.outcomes[rep];
    EXPECT_FALSE(r.collapsed_into.has_value()) << "representative is itself folded";
    EXPECT_EQ(o.dc, r.dc);
    EXPECT_EQ(o.scan, r.scan);
    EXPECT_EQ(o.bist, r.bist);
    EXPECT_EQ(o.verdict, r.verdict);
    EXPECT_EQ(o.newton_iterations, r.newton_iterations);
  }
}

TEST_F(CampaignIncrementalFixture, CheckpointResumePreservesDefaultsRun) {
  const std::string path = testing::TempDir() + "campaign_incremental_resume.jsonl";
  std::remove(path.c_str());

  const CampaignReport full = run_campaign(*golden_, base_opts(1));
  ASSERT_TRUE(full.complete);

  CampaignOptions interrupted = base_opts(2);
  interrupted.checkpoint_path = path;
  int calls = 0;
  interrupted.abort_check = [&calls]() { return ++calls > 4; };
  const CampaignReport partial = run_campaign(*golden_, interrupted);
  ASSERT_FALSE(partial.complete);

  CampaignOptions resumed_opts = base_opts(4);
  resumed_opts.checkpoint_path = path;
  resumed_opts.resume = true;
  const CampaignReport resumed = run_campaign(*golden_, resumed_opts);
  ASSERT_TRUE(resumed.complete);
  expect_same_partition(*baseline_, resumed);
  EXPECT_EQ(report_canonical_jsonl(resumed), report_canonical_jsonl(full));
  std::remove(path.c_str());
}

TEST_F(CampaignIncrementalFixture, StagesRunRecordsWhatActuallyExecuted) {
  const CampaignReport report = run_campaign(*golden_, base_opts(1));
  ASSERT_TRUE(report.complete);
  for (const FaultOutcome& o : report.outcomes) {
    // The DC stage leads the canonical order under uniform priors, so it
    // always runs; BIST is disabled in this universe.
    EXPECT_TRUE(o.stages_run & kStageBitDc) << o.fault.describe();
    EXPECT_FALSE(o.stages_run & kStageBitBist) << o.fault.describe();
    // A stage that never ran cannot claim a detection.
    if (!(o.stages_run & kStageBitScan)) {
      EXPECT_FALSE(o.scan) << o.fault.describe();
    }
  }
}

TEST_F(CampaignIncrementalFixture, DictionaryPriorsKeepThePartitionInvariant) {
  // Non-uniform, dictionary-seeded priors may reorder stages per class;
  // the verdict partition and cum_all must still match (per-stage
  // cumulative columns are order-sensitive by design, so only the
  // order-free figures are compared here).
  DictionaryOptions dopts;
  dopts.prefixes = {"tx."};
  dopts.max_faults = 10;
  dopts.with_toggle = false;
  const FaultDictionary dict = build_dictionary(*golden_, dopts);
  CampaignOptions opts = base_opts(1);
  opts.priors = stage_priors_from_dictionary(dict);
  const CampaignReport report = run_campaign(*golden_, opts);
  ASSERT_TRUE(report.complete);
  ASSERT_EQ(report.outcomes.size(), baseline_->outcomes.size());
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    EXPECT_EQ(report.outcomes[i].verdict, baseline_->outcomes[i].verdict)
        << report.outcomes[i].fault.describe();
  }
  EXPECT_EQ(report.total.cum_all.detected, baseline_->total.cum_all.detected);
  EXPECT_EQ(report.total.cum_all.total, baseline_->total.cum_all.total);
}

TEST(StagePriorsFromDictionary, RatesAreLaplaceSmoothedAndBounded) {
  FaultDictionary dict;
  dict.set_golden_signature("00000000000000000000" + std::string(10, '0') +
                            std::string(10, '0'));
  // One fault that differs only in the DC region.
  DictionaryEntry e;
  e.fault = {"m1", fault::FaultClass::kDrainSourceShort};
  e.signature = dict.golden_signature();
  e.signature[3] = '1';
  dict.add(e);
  const StagePriors priors = stage_priors_from_dictionary(dict);
  const auto it = priors.rates.find(fault::FaultClass::kDrainSourceShort);
  ASSERT_NE(it, priors.rates.end());
  // (1 hit + 1) / (1 + 2) for DC; (0 + 1) / (1 + 2) elsewhere.
  EXPECT_DOUBLE_EQ(it->second.dc, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(it->second.scan, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(it->second.bist, 1.0 / 3.0);
  // Unseen classes keep the uninformative default.
  EXPECT_EQ(priors.rates.count(fault::FaultClass::kGateOpen), 0u);
}

}  // namespace
}  // namespace lsl::dft
