#include "dft/dictionary.hpp"

#include <gtest/gtest.h>

namespace lsl::dft {
namespace {

class DictionaryFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    golden_ = new cells::LinkFrontend();
    // No toggle test: keeps the fixture fast; the signature is still
    // 60+ characters of DC/scan/BIST observables.
    ctx_ = new DictionaryContext(*golden_, /*with_toggle=*/false);
  }
  static void TearDownTestSuite() {
    delete ctx_;
    delete golden_;
    ctx_ = nullptr;
    golden_ = nullptr;
  }

  static std::pair<cells::LinkFrontend, cells::LinkFrontend> faulted(
      const fault::StructuralFault& f) {
    cells::LinkFrontend open = ctx_->golden;
    cells::LinkFrontend closed = ctx_->golden_closed;
    const auto leak = fault::OpenLeak::kToGround;
    EXPECT_TRUE(fault::inject(open.netlist(), f, leak, *open.netlist().find_node("vdd")));
    EXPECT_TRUE(fault::inject(closed.netlist(), f, leak, *closed.netlist().find_node("vdd")));
    return {std::move(open), std::move(closed)};
  }

  static cells::LinkFrontend* golden_;
  static DictionaryContext* ctx_;
};

cells::LinkFrontend* DictionaryFixture::golden_ = nullptr;
DictionaryContext* DictionaryFixture::ctx_ = nullptr;

TEST_F(DictionaryFixture, GoldenSignatureIsCleanAndStable) {
  const std::string a = capture_signature(*ctx_, ctx_->golden, ctx_->golden_closed);
  const std::string b = capture_signature(*ctx_, ctx_->golden, ctx_->golden_closed);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find('!'), std::string::npos);
  EXPECT_GT(a.size(), 50u);
}

TEST_F(DictionaryFixture, DistinctFaultsDistinctSignatures) {
  const auto [a_open, a_closed] = faulted({"tx.p.c_main", fault::FaultClass::kCapacitorShort});
  const auto [b_open, b_closed] = faulted({"cp.m_swup", fault::FaultClass::kDrainOpen});
  const std::string sa = capture_signature(*ctx_, a_open, a_closed);
  const std::string sb = capture_signature(*ctx_, b_open, b_closed);
  const std::string g = capture_signature(*ctx_, ctx_->golden, ctx_->golden_closed);
  EXPECT_NE(sa, g);
  EXPECT_NE(sb, g);
  EXPECT_NE(sa, sb);
}

TEST_F(DictionaryFixture, DiagnoseFindsTheInjectedFault) {
  DictionaryOptions opts;
  opts.prefixes = {"tx."};  // small universe for speed
  opts.with_toggle = false;
  FaultDictionary dict = build_dictionary(*golden_, opts);
  ASSERT_GT(dict.entries().size(), 10u);

  // "Silicon" comes back with a defect: capture its signature and ask
  // the dictionary.
  const fault::StructuralFault injected{"tx.n.m_drvp", fault::FaultClass::kDrainSourceShort};
  const auto [open, closed] = faulted(injected);
  const std::string observed = capture_signature(*ctx_, open, closed);
  const auto candidates = dict.diagnose(observed);
  ASSERT_FALSE(candidates.empty());
  bool found = false;
  for (const auto* c : candidates) {
    found |= c->fault.device == injected.device && c->fault.cls == injected.cls;
  }
  EXPECT_TRUE(found);
}

TEST_F(DictionaryFixture, ResolutionStatsAreConsistent) {
  DictionaryOptions opts;
  opts.prefixes = {"tx.", "term.term"};
  opts.with_toggle = false;
  FaultDictionary dict = build_dictionary(*golden_, opts);
  const auto r = dict.resolution();
  EXPECT_EQ(r.faults, dict.entries().size());
  EXPECT_LE(r.detected, r.faults);
  EXPECT_LE(r.classes, r.detected);
  EXPECT_LE(r.uniquely_diagnosed, r.classes);
  EXPECT_GE(r.largest_class, 1u);
  EXPECT_GE(r.avg_class_size, 1.0);
}

TEST(FaultDictionary, EmptyDiagnosis) {
  FaultDictionary dict;
  dict.set_golden_signature("000");
  EXPECT_TRUE(dict.diagnose("111").empty());
  const auto r = dict.resolution();
  EXPECT_EQ(r.faults, 0u);
  EXPECT_EQ(r.classes, 0u);
}

}  // namespace
}  // namespace lsl::dft
