// Observability must never perturb campaign results: a campaign run
// with tracing + detailed metrics timing enabled produces the exact
// same canonical JSONL as one with observability off. Also covers the
// exec-stats additions (metrics snapshot, steal counts, optional
// speedup).
#include <gtest/gtest.h>

#include <string>

#include "dft/campaign.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace lsl::dft {
namespace {

/// Same bounded fault universe as the parallel differential tests:
/// TX cells, DC stage only, no wall-clock budget — fully deterministic.
CampaignOptions small_opts(std::size_t threads) {
  CampaignOptions opts;
  opts.prefixes = {"tx."};
  opts.with_bist = false;
  opts.with_scan_toggle = false;
  opts.max_faults = 8;
  opts.num_threads = threads;
  return opts;
}

TEST(CampaignTrace, TracingOnAndOffYieldByteIdenticalCanonicalReports) {
  const cells::LinkFrontend golden;

  const CampaignReport plain = run_campaign(golden, small_opts(2));

  util::Tracer::instance().start();
  util::Metrics::set_detailed_timing(true);
  const CampaignReport traced = run_campaign(golden, small_opts(2));
  util::Metrics::set_detailed_timing(false);
  util::Tracer::instance().stop();

  EXPECT_EQ(report_canonical_jsonl(plain), report_canonical_jsonl(traced));

#if LSL_TRACE_ENABLED
  // The traced run actually recorded spans (per-fault + campaign).
  const auto events = util::Tracer::instance().drain();
  EXPECT_FALSE(events.empty());
  bool saw_fault_span = false;
  for (const auto& e : events) {
    if (std::string(e.name) == "fault") saw_fault_span = true;
  }
  EXPECT_TRUE(saw_fault_span);
#endif
}

TEST(CampaignTrace, ExecStatsCarryMetricsSnapshotAndStealCounts) {
  const cells::LinkFrontend golden;
  const CampaignReport report = run_campaign(golden, small_opts(4));

  EXPECT_FALSE(report.exec.metrics_json.empty());
  EXPECT_NE(report.exec.metrics_json.find("campaign.faults"), std::string::npos);
  EXPECT_NE(report.exec.metrics_json.find("solver.dc.newton_per_solve"), std::string::npos);

  // One steal counter per pool worker; total matches the sum.
  EXPECT_EQ(report.exec.per_worker_steals.size(), report.exec.threads_used);
  std::size_t total = 0;
  for (const std::size_t s : report.exec.per_worker_steals) total += s;
  EXPECT_EQ(report.exec.steals, total);

  // Fresh faults were simulated, so Newton work was recorded and the
  // cpu-over-wall speedup is measurable.
  EXPECT_GT(report.exec.newton_iterations, 0);
  EXPECT_TRUE(report.exec.speedup().has_value());
}

TEST(CampaignTrace, SerialPathHasNoPoolAndNoSteals) {
  const cells::LinkFrontend golden;
  const CampaignReport report = run_campaign(golden, small_opts(1));
  EXPECT_TRUE(report.exec.per_worker_steals.empty());
  EXPECT_EQ(report.exec.steals, 0u);
  EXPECT_FALSE(report.exec.metrics_json.empty());
}

TEST(CampaignTrace, SpeedupIsAbsentWhenNothingWasMeasured) {
  const CampaignExecStats empty;
  EXPECT_FALSE(empty.speedup().has_value());

  CampaignExecStats resumed;  // fully-resumed campaign: wall time but no fresh fault CPU
  resumed.wall_clock_sec = 1.0;
  resumed.fault_cpu_sec = 0.0;
  EXPECT_FALSE(resumed.speedup().has_value());

  CampaignExecStats measured;
  measured.wall_clock_sec = 2.0;
  measured.fault_cpu_sec = 6.0;
  ASSERT_TRUE(measured.speedup().has_value());
  EXPECT_DOUBLE_EQ(*measured.speedup(), 3.0);
}

}  // namespace
}  // namespace lsl::dft
