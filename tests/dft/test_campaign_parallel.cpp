// Differential regression tests for the parallel campaign executor:
// the same bounded fault universe run at num_threads 1, 2, and 4 must
// produce identical reports — verdict partition, coverage figures, and
// canonical (index-ordered, timing-free) checkpoint JSONL — and resume
// must work across serial->parallel and parallel->serial restarts.
//
// Determinism holds because per-fault budgets stay unlimited here; a
// wall-clock budget is the one documented source of thread-count
// dependence.
#include "dft/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <string>

#include "spice/workspace.hpp"
#include "util/jsonl.hpp"

namespace lsl::dft {
namespace {

class ParallelCampaignFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    golden_ = new cells::LinkFrontend();
    serial_ = new CampaignReport(run_campaign(*golden_, small_opts(1)));
  }
  static void TearDownTestSuite() {
    delete serial_;
    serial_ = nullptr;
    delete golden_;
    golden_ = nullptr;
  }

  /// Small universe (TX cells), DC stage only: seconds, not minutes,
  /// and fully deterministic (no wall-clock budgets).
  static CampaignOptions small_opts(std::size_t threads) {
    CampaignOptions opts;
    opts.prefixes = {"tx."};
    opts.with_bist = false;
    opts.with_scan_toggle = false;
    opts.max_faults = 8;
    opts.num_threads = threads;
    return opts;
  }

  static void expect_identical(const CampaignReport& a, const CampaignReport& b) {
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      const FaultOutcome& x = a.outcomes[i];
      const FaultOutcome& y = b.outcomes[i];
      EXPECT_EQ(x.index, y.index);
      EXPECT_EQ(x.fault.device, y.fault.device);
      EXPECT_EQ(x.fault.cls, y.fault.cls);
      EXPECT_EQ(x.dc, y.dc) << x.fault.describe();
      EXPECT_EQ(x.scan, y.scan) << x.fault.describe();
      EXPECT_EQ(x.bist, y.bist) << x.fault.describe();
      EXPECT_EQ(x.anomalous, y.anomalous) << x.fault.describe();
      EXPECT_EQ(x.verdict, y.verdict) << x.fault.describe();
      EXPECT_EQ(x.newton_iterations, y.newton_iterations) << x.fault.describe();
    }
    EXPECT_EQ(a.anomalous, b.anomalous);
    EXPECT_EQ(a.quarantined, b.quarantined);
    EXPECT_EQ(a.total.cum_dc.detected, b.total.cum_dc.detected);
    EXPECT_EQ(a.total.cum_scan.detected, b.total.cum_scan.detected);
    EXPECT_EQ(a.total.cum_all.detected, b.total.cum_all.detected);
    EXPECT_EQ(a.total.cum_all.total, b.total.cum_all.total);
    EXPECT_EQ(a.per_class.size(), b.per_class.size());
    // The strongest form: the canonical serialization is byte-identical.
    EXPECT_EQ(report_canonical_jsonl(a), report_canonical_jsonl(b));
  }

  static cells::LinkFrontend* golden_;
  static CampaignReport* serial_;  // reference run at num_threads = 1
};

cells::LinkFrontend* ParallelCampaignFixture::golden_ = nullptr;
CampaignReport* ParallelCampaignFixture::serial_ = nullptr;

TEST_F(ParallelCampaignFixture, ThreadCountsOneTwoFourAreBitExact) {
  for (const std::size_t threads : {2u, 4u}) {
    const CampaignReport parallel = run_campaign(*golden_, small_opts(threads));
    ASSERT_TRUE(parallel.complete);
    expect_identical(*serial_, parallel);
    EXPECT_EQ(parallel.exec.threads_used, threads);
    EXPECT_EQ(parallel.exec.per_worker_faults.size(), threads);
    const std::size_t fresh =
        std::accumulate(parallel.exec.per_worker_faults.begin(),
                        parallel.exec.per_worker_faults.end(), std::size_t{0});
    EXPECT_EQ(fresh, parallel.outcomes.size());
    EXPECT_GT(parallel.exec.wall_clock_sec, 0.0);
    EXPECT_GT(parallel.exec.fault_cpu_sec, 0.0);
  }
}

TEST_F(ParallelCampaignFixture, SerialExecStatsRecorded) {
  EXPECT_EQ(serial_->exec.threads_used, 1u);
  ASSERT_EQ(serial_->exec.per_worker_faults.size(), 1u);
  EXPECT_EQ(serial_->exec.per_worker_faults[0], serial_->outcomes.size());
  EXPECT_GT(serial_->exec.wall_clock_sec, 0.0);
}

TEST_F(ParallelCampaignFixture, CheckpointReserializesCanonicallyAtAnyThreadCount) {
  const std::string path = testing::TempDir() + "campaign_canon.jsonl";
  for (const std::size_t threads : {1u, 2u, 4u}) {
    std::remove(path.c_str());
    CampaignOptions opts = small_opts(threads);
    opts.checkpoint_path = path;
    const CampaignReport report = run_campaign(*golden_, opts);
    ASSERT_TRUE(report.complete);

    // Parse the JSONL back (lines may be in completion order), rebuild
    // outcomes, and canonicalize: identical to the serial reference.
    const auto lines = util::read_lines(path);
    ASSERT_EQ(lines.size(), report.outcomes.size());
    CampaignReport from_ckpt;
    // Feed a resume-only run: full checkpoint means zero fresh faults.
    CampaignOptions resume_opts = small_opts(threads);
    resume_opts.checkpoint_path = path;
    resume_opts.resume = true;
    from_ckpt = run_campaign(*golden_, resume_opts);
    expect_identical(*serial_, from_ckpt);
    EXPECT_EQ(report_canonical_jsonl(from_ckpt), report_canonical_jsonl(*serial_));
  }
  std::remove(path.c_str());
}

TEST_F(ParallelCampaignFixture, ResumeAcrossThreadCountChanges) {
  const std::string path = testing::TempDir() + "campaign_xthread.jsonl";

  // parallel(2, aborted) -> serial resume
  {
    std::remove(path.c_str());
    CampaignOptions interrupted = small_opts(2);
    interrupted.checkpoint_path = path;
    int calls = 0;
    interrupted.abort_check = [&calls]() { return ++calls > 3; };
    const CampaignReport partial = run_campaign(*golden_, interrupted);
    ASSERT_FALSE(partial.complete);
    ASSERT_LT(partial.outcomes.size(), serial_->outcomes.size());

    CampaignOptions resumed = small_opts(1);
    resumed.checkpoint_path = path;
    resumed.resume = true;
    const CampaignReport full = run_campaign(*golden_, resumed);
    ASSERT_TRUE(full.complete);
    expect_identical(*serial_, full);
  }

  // serial(aborted) -> parallel(4) resume
  {
    std::remove(path.c_str());
    CampaignOptions interrupted = small_opts(1);
    interrupted.checkpoint_path = path;
    int calls = 0;
    interrupted.abort_check = [&calls]() { return ++calls > 3; };
    const CampaignReport partial = run_campaign(*golden_, interrupted);
    ASSERT_FALSE(partial.complete);
    ASSERT_EQ(partial.outcomes.size(), 3u);

    // Torn tail from a kill mid-write must not poison the resume.
    ASSERT_TRUE(util::append_line(path, "{\"index\": 4, \"device\": \"tx"));

    CampaignOptions resumed = small_opts(4);
    resumed.checkpoint_path = path;
    resumed.resume = true;
    const CampaignReport full = run_campaign(*golden_, resumed);
    ASSERT_TRUE(full.complete);
    expect_identical(*serial_, full);
  }
  std::remove(path.c_str());
}

TEST_F(ParallelCampaignFixture, ProgressAndAbortSerializedUnderWriterMutex) {
  // The threading contract: callbacks fire from worker threads but are
  // serialized, so an unsynchronized counter in the callback must end
  // up exactly at the call count (TSan-visible race otherwise).
  CampaignOptions opts = small_opts(4);
  std::size_t progress_calls = 0;  // deliberately NOT atomic
  opts.progress = [&progress_calls](std::size_t, std::size_t) { ++progress_calls; };
  std::size_t abort_calls = 0;  // deliberately NOT atomic
  opts.abort_check = [&abort_calls]() {
    ++abort_calls;
    return false;
  };
  const CampaignReport report = run_campaign(*golden_, opts);
  ASSERT_TRUE(report.complete);
  EXPECT_EQ(progress_calls, report.outcomes.size());
  EXPECT_EQ(abort_calls, report.outcomes.size());
  expect_identical(*serial_, report);
}

TEST_F(ParallelCampaignFixture, CampaignRunsOnTheSparseEngine) {
  // The frontend netlist sits well above the dense crossover, so a
  // campaign must be served overwhelmingly by the sparse path, with
  // cached symbolic analyses reused across faults. Fault circuits that
  // mix short and open conductances can defeat the no-pivot
  // factorization — those take the dense fallback by design — but
  // they must stay a small minority. A serial run executes on this
  // thread, so its tls() workspace is ours.
  auto& ws = spice::SolverWorkspace::tls();
  const auto before = ws.stats();
  const CampaignReport report = run_campaign(*golden_, small_opts(1));
  ASSERT_TRUE(report.complete);
  const auto after = ws.stats();
  const auto sparse = after.sparse_solves - before.sparse_solves;
  const auto fallbacks = after.dense_fallbacks - before.dense_fallbacks;
  EXPECT_GT(sparse, 0u);
  EXPECT_GT(after.symbolic_reuse, before.symbolic_reuse);
  EXPECT_LT(fallbacks * 10, sparse) << "dense fallbacks should be <10% of sparse solves";
  expect_identical(*serial_, report);
}

TEST_F(ParallelCampaignFixture, SparseAndForcedDenseEnginesAgreeOnEveryVerdict) {
  // Differential check of the two solver engines end to end: forcing
  // every linear solve onto the dense reference path must reproduce the
  // same detection story. (Engines agree to solver tolerance, not to
  // the last bit, so this compares verdicts and coverage — the
  // byte-identity contract applies within one engine, and is covered by
  // the thread-count and resume tests above.)
  auto& tuning = spice::solver_tuning();
  const spice::SolverTuning saved = tuning;
  tuning.force_dense = true;
  for (const std::size_t threads : {1u, 4u}) {
    const CampaignReport dense = run_campaign(*golden_, small_opts(threads));
    EXPECT_TRUE(dense.complete);
    ASSERT_EQ(dense.outcomes.size(), serial_->outcomes.size());
    for (std::size_t i = 0; i < dense.outcomes.size(); ++i) {
      const FaultOutcome& s = serial_->outcomes[i];
      const FaultOutcome& d = dense.outcomes[i];
      EXPECT_EQ(s.index, d.index);
      EXPECT_EQ(s.dc, d.dc) << s.fault.describe();
      EXPECT_EQ(s.scan, d.scan) << s.fault.describe();
      EXPECT_EQ(s.bist, d.bist) << s.fault.describe();
      EXPECT_EQ(s.verdict, d.verdict) << s.fault.describe();
    }
    EXPECT_EQ(dense.total.cum_all.detected, serial_->total.cum_all.detected);
    EXPECT_EQ(dense.total.cum_all.total, serial_->total.cum_all.total);
  }
  tuning = saved;
}

TEST(CanonicalJson, StripsElapsedOnly) {
  FaultOutcome o;
  o.fault.device = "tx.m1";
  o.fault.cls = fault::FaultClass::kDrainOpen;
  o.index = 3;
  o.dc = true;
  o.verdict = FaultVerdict::kDetected;
  o.elapsed_sec = 1.2345;
  o.newton_iterations = 42;
  const std::string canon = outcome_canonical_json(o);
  EXPECT_NE(canon.find("\"elapsed_sec\":0"), std::string::npos) << canon;
  EXPECT_NE(canon.find("\"newton_iterations\":42"), std::string::npos) << canon;
  FaultOutcome other = o;
  other.elapsed_sec = 99.0;
  EXPECT_EQ(canon, outcome_canonical_json(other));
}

}  // namespace
}  // namespace lsl::dft
