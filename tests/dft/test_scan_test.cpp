#include "dft/scan_test.hpp"

#include <gtest/gtest.h>

#include "fault/structural.hpp"

namespace lsl::dft {
namespace {

class ScanTestFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    golden_ = new cells::LinkFrontend();
    ref_ = new ScanTestReference(scan_test_reference(*golden_, /*with_toggle=*/true));
  }
  static void TearDownTestSuite() {
    delete golden_;
    delete ref_;
    golden_ = nullptr;
    ref_ = nullptr;
  }

  cells::LinkFrontend faulted(const fault::StructuralFault& f) {
    cells::LinkFrontend fe = *golden_;
    const auto vdd = *fe.netlist().find_node("vdd");
    EXPECT_TRUE(fault::inject(fe.netlist(), f, fault::OpenLeak::kToGround, vdd));
    return fe;
  }

  static cells::LinkFrontend* golden_;
  static ScanTestReference* ref_;
};

cells::LinkFrontend* ScanTestFixture::golden_ = nullptr;
ScanTestReference* ScanTestFixture::ref_ = nullptr;

TEST_F(ScanTestFixture, GoldenCpSignatureMatchesPaperSemantics) {
  ASSERT_TRUE(ref_->cp.valid);
  // Combo order: 00, 10 (UP), 01 (DN), 11.
  // UP drives Vc to VDD: the capture sees Vc above VH -> (hi, lo) = (1, 0).
  EXPECT_EQ(ref_->cp.window[1], (std::pair{true, false}));
  // DN drives Vc to GND -> below VL -> (0, 1).
  EXPECT_EQ(ref_->cp.window[2], (std::pair{false, true}));
}

TEST_F(ScanTestFixture, GoldenPassesItsOwnScanTest) {
  const ScanTestOutcome out = run_scan_test(*golden_, *ref_);
  EXPECT_FALSE(out.detected);
}

TEST_F(ScanTestFixture, PumpSwitchOpenDetectedByCpTest) {
  // The weak UP switch open: scan mode cannot drive Vc high any more.
  const auto out = run_scan_test(faulted({"cp.m_swup", fault::FaultClass::kDrainOpen}), *ref_);
  EXPECT_TRUE(out.detected);
}

TEST_F(ScanTestFixture, PumpSourceDsShortMaskedInScanMode) {
  // The paper: using the current sources as switches during scan MASKS a
  // drain-source short in the source transistors (they are "always on"
  // in scan mode anyway) — that fault is BIST territory.
  const auto out =
      run_scan_test(faulted({"cp.m_srcp", fault::FaultClass::kDrainSourceShort}), *ref_);
  EXPECT_FALSE(out.detected);
}

TEST_F(ScanTestFixture, ScanInputSwitchFaultDetected) {
  // The tgate that parks the window-comparator input at vmid during scan:
  // a D-S short keeps it permanently connected, so the comparator input
  // no longer follows Vc during the capture phase.
  const auto out = run_scan_test(
      faulted({"cp.sw_md.m_tn", fault::FaultClass::kDrainSourceShort}), *ref_);
  EXPECT_TRUE(out.detected);
}

TEST_F(ScanTestFixture, TgateDynamicMismatchCaughtByToggle) {
  // The DC-invisible tgate drain open: the toggling pattern at the scan
  // frequency exposes the asymmetric settling.
  const auto fe = faulted({"term.termp.m_tgn", fault::FaultClass::kDrainOpen});
  const auto out = run_scan_test(fe, *ref_);
  EXPECT_TRUE(out.detected);
}

TEST_F(ScanTestFixture, ToggleSignatureTogglesInGoldenMachine) {
  ASSERT_TRUE(ref_->toggle.valid);
  ASSERT_GE(ref_->toggle.data_hi.size(), 4u);
  // The line comparator decisions must alternate with the data.
  bool any_hi = false;
  bool any_lo = false;
  for (std::size_t i = 0; i < ref_->toggle.data_hi.size(); ++i) {
    any_hi |= ref_->toggle.data_hi[i];
    any_lo |= ref_->toggle.data_lo[i];
  }
  EXPECT_TRUE(any_hi);
  EXPECT_TRUE(any_lo);
}

}  // namespace
}  // namespace lsl::dft
