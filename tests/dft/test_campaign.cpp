// Campaign survival-layer tests: verdict partitioning, per-fault
// budgets, and JSONL checkpoint/resume (an interrupted campaign resumed
// from its checkpoint must reproduce the uninterrupted report exactly).
#include "dft/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/jsonl.hpp"

namespace lsl::dft {
namespace {

class CampaignFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { golden_ = new cells::LinkFrontend(); }
  static void TearDownTestSuite() {
    delete golden_;
    golden_ = nullptr;
  }

  /// Small universe (TX drivers + FFE caps), DC stage only: seconds, not
  /// minutes, and detection behavior on it is deterministic.
  static CampaignOptions small_opts() {
    CampaignOptions opts;
    opts.prefixes = {"tx."};
    opts.with_bist = false;
    opts.with_scan_toggle = false;
    opts.max_faults = 8;
    return opts;
  }

  static void expect_same_report(const CampaignReport& a, const CampaignReport& b) {
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
      const FaultOutcome& x = a.outcomes[i];
      const FaultOutcome& y = b.outcomes[i];
      EXPECT_EQ(x.index, y.index);
      EXPECT_EQ(x.fault.device, y.fault.device);
      EXPECT_EQ(x.fault.cls, y.fault.cls);
      EXPECT_EQ(x.dc, y.dc) << x.fault.describe();
      EXPECT_EQ(x.scan, y.scan) << x.fault.describe();
      EXPECT_EQ(x.bist, y.bist) << x.fault.describe();
      EXPECT_EQ(x.anomalous, y.anomalous) << x.fault.describe();
      EXPECT_EQ(x.verdict, y.verdict) << x.fault.describe();
    }
    EXPECT_EQ(a.anomalous, b.anomalous);
    EXPECT_EQ(a.quarantined, b.quarantined);
    EXPECT_EQ(a.total.cum_all.detected, b.total.cum_all.detected);
    EXPECT_EQ(a.total.cum_all.total, b.total.cum_all.total);
    EXPECT_EQ(a.total.cum_dc.detected, b.total.cum_dc.detected);
    EXPECT_EQ(a.total.quarantined, b.total.quarantined);
    EXPECT_EQ(a.per_class.size(), b.per_class.size());
  }

  static cells::LinkFrontend* golden_;
};

cells::LinkFrontend* CampaignFixture::golden_ = nullptr;

TEST_F(CampaignFixture, PartitionsEveryFaultIntoExactlyOneVerdict) {
  const CampaignReport report = run_campaign(*golden_, small_opts());
  ASSERT_EQ(report.outcomes.size(), 8u);
  EXPECT_TRUE(report.complete);
  std::size_t detected = 0;
  std::size_t undetected = 0;
  std::size_t quarantined = 0;
  for (const auto& o : report.outcomes) {
    switch (o.verdict) {
      case FaultVerdict::kDetected:
        ++detected;
        EXPECT_TRUE(o.detected_any());
        break;
      case FaultVerdict::kUndetected: ++undetected; break;
      case FaultVerdict::kQuarantined: ++quarantined; break;
    }
  }
  EXPECT_EQ(detected + undetected + quarantined, report.outcomes.size());
  EXPECT_EQ(report.quarantined, quarantined);
  // Quarantined faults are outside the coverage denominator.
  EXPECT_EQ(report.total.cum_all.total, detected + undetected);
  EXPECT_EQ(report.total.cum_all.detected, detected);
  EXPECT_EQ(report.undetected().size(), undetected);
  EXPECT_EQ(report.quarantined_faults().size(), quarantined);
}

TEST_F(CampaignFixture, BlownWallClockBudgetQuarantinesEverything) {
  CampaignOptions opts = small_opts();
  opts.max_faults = 4;
  opts.budget.per_fault_sec = 1e-9;  // expires before the first stage
  const CampaignReport report = run_campaign(*golden_, opts);
  ASSERT_EQ(report.outcomes.size(), 4u);
  for (const auto& o : report.outcomes) {
    EXPECT_TRUE(o.budget_blown) << o.fault.describe();
    EXPECT_EQ(o.verdict, FaultVerdict::kQuarantined) << o.fault.describe();
  }
  EXPECT_EQ(report.quarantined, 4u);
  EXPECT_EQ(report.total.cum_all.total, 0u);  // nothing left to cover
}

TEST_F(CampaignFixture, IterationBudgetSkipsLaterStages) {
  CampaignOptions opts = small_opts();
  opts.max_faults = 4;
  opts.budget.max_newton_per_fault = 1;  // always blown after the DC stage
  const CampaignReport report = run_campaign(*golden_, opts);
  ASSERT_EQ(report.outcomes.size(), 4u);
  for (const auto& o : report.outcomes) {
    EXPECT_TRUE(o.budget_blown) << o.fault.describe();
    EXPECT_FALSE(o.scan) << o.fault.describe();  // stage skipped
    // A genuine DC detection survives the blown budget; anything else
    // quarantines rather than claiming "undetected".
    EXPECT_EQ(o.verdict, o.dc ? FaultVerdict::kDetected : FaultVerdict::kQuarantined)
        << o.fault.describe();
  }
}

TEST_F(CampaignFixture, AbortCheckStopsEarlyAndMarksIncomplete) {
  CampaignOptions opts = small_opts();
  int calls = 0;
  opts.abort_check = [&calls]() { return ++calls > 3; };
  const CampaignReport report = run_campaign(*golden_, opts);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.outcomes.size(), 3u);
}

TEST_F(CampaignFixture, ResumeFromCheckpointMatchesUninterruptedRun) {
  const std::string path = testing::TempDir() + "campaign_resume.jsonl";
  std::remove(path.c_str());

  const CampaignReport full = run_campaign(*golden_, small_opts());
  ASSERT_TRUE(full.complete);

  // Interrupted run: checkpoint on, killed after 3 faults.
  CampaignOptions interrupted = small_opts();
  interrupted.checkpoint_path = path;
  int calls = 0;
  interrupted.abort_check = [&calls]() { return ++calls > 3; };
  const CampaignReport partial = run_campaign(*golden_, interrupted);
  ASSERT_FALSE(partial.complete);
  ASSERT_EQ(partial.outcomes.size(), 3u);
  ASSERT_EQ(util::read_lines(path).size(), 3u);

  // Simulate a kill mid-write: a torn (truncated) trailing line must be
  // skipped on resume, not crash it.
  ASSERT_TRUE(util::append_line(path, "{\"index\": 3, \"device\": \"tx"));

  CampaignOptions resumed_opts = small_opts();
  resumed_opts.checkpoint_path = path;
  resumed_opts.resume = true;
  const CampaignReport resumed = run_campaign(*golden_, resumed_opts);
  EXPECT_TRUE(resumed.complete);
  expect_same_report(full, resumed);

  // The checkpoint now covers the whole universe: resuming again runs
  // zero new faults and still reproduces the same report.
  const CampaignReport replayed = run_campaign(*golden_, resumed_opts);
  expect_same_report(full, replayed);
  std::remove(path.c_str());
}

TEST_F(CampaignFixture, CheckpointLinesRoundTripThroughJson) {
  const std::string path = testing::TempDir() + "campaign_roundtrip.jsonl";
  std::remove(path.c_str());
  CampaignOptions opts = small_opts();
  opts.max_faults = 2;
  opts.checkpoint_path = path;
  const CampaignReport report = run_campaign(*golden_, opts);
  const auto lines = util::read_lines(path);
  ASSERT_EQ(lines.size(), report.outcomes.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    util::JsonObject j;
    ASSERT_TRUE(util::JsonObject::parse(lines[i], j)) << lines[i];
    std::string device;
    std::string verdict;
    ASSERT_TRUE(j.get_string("device", device));
    ASSERT_TRUE(j.get_string("verdict", verdict));
    EXPECT_EQ(device, report.outcomes[i].fault.device);
    EXPECT_EQ(verdict, fault_verdict_name(report.outcomes[i].verdict));
  }
  std::remove(path.c_str());
}

TEST(CampaignVerdict, NamesRoundTrip) {
  for (const FaultVerdict v :
       {FaultVerdict::kDetected, FaultVerdict::kUndetected, FaultVerdict::kQuarantined}) {
    FaultVerdict back = FaultVerdict::kDetected;
    ASSERT_TRUE(fault_verdict_from_name(fault_verdict_name(v), back));
    EXPECT_EQ(back, v);
  }
  FaultVerdict ignored = FaultVerdict::kDetected;
  EXPECT_FALSE(fault_verdict_from_name("maybe", ignored));
}

}  // namespace
}  // namespace lsl::dft
