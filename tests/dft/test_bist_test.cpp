#include "dft/bist_test.hpp"

#include <gtest/gtest.h>

#include "fault/structural.hpp"

namespace lsl::dft {
namespace {

class BistTestFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    golden_ = new cells::LinkFrontend();
    ref_ = new BistTestReference(bist_test_reference(*golden_));
  }
  static void TearDownTestSuite() {
    delete golden_;
    delete ref_;
    golden_ = nullptr;
    ref_ = nullptr;
  }

  cells::LinkFrontend faulted(const fault::StructuralFault& f) {
    cells::LinkFrontend fe = *golden_;
    const auto vdd = *fe.netlist().find_node("vdd");
    EXPECT_TRUE(fault::inject(fe.netlist(), f, fault::OpenLeak::kToGround, vdd));
    return fe;
  }

  static cells::LinkFrontend* golden_;
  static BistTestReference* ref_;
};

cells::LinkFrontend* BistTestFixture::golden_ = nullptr;
BistTestReference* BistTestFixture::ref_ = nullptr;

TEST_F(BistTestFixture, GoldenReferencePasses) {
  ASSERT_TRUE(ref_->valid);
  EXPECT_TRUE(ref_->verdict.pass());
}

TEST_F(BistTestFixture, GoldenFrontendPassesBist) {
  const BistTestOutcome out = run_bist_test(*golden_, *ref_);
  EXPECT_FALSE(out.detected);
}

TEST_F(BistTestFixture, PumpSourceDsShortCaughtByBist) {
  // The fault the scan test provably masks: D-S short on the weak pump's
  // current source. At speed it leaks Vc continuously and wrecks lock.
  const auto out = run_bist_test(faulted({"cp.m_swup", fault::FaultClass::kDrainSourceShort}),
                                 *ref_);
  EXPECT_TRUE(out.detected);
}

TEST_F(BistTestFixture, BalancePathFaultCaughtByCpBist) {
  const auto out = run_bist_test(faulted({"cp.m_swdnb", fault::FaultClass::kDrainOpen}), *ref_);
  EXPECT_TRUE(out.detected);
}

TEST_F(BistTestFixture, FfeCapShortWrecksDataPath) {
  // A shorted series cap ties the rail-level tap straight onto the line:
  // the slicer offset it induces swamps the low-swing eye, so the BIST's
  // error-checked burst fails.
  const auto out = run_bist_test(faulted({"tx.p.c_main", fault::FaultClass::kCapacitorShort}),
                                 *ref_);
  EXPECT_TRUE(out.detected);
}

}  // namespace
}  // namespace lsl::dft
