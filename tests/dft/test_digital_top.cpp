#include "dft/digital_top.hpp"

#include <gtest/gtest.h>

#include "dft/overhead.hpp"

namespace lsl::dft {
namespace {

using digital::Logic;

TEST(DigitalTop, BuildsWithExpectedChains) {
  DigitalTop top = build_digital_top();
  // Chain A: 2 TX + 2 probe + 4 PD flops.
  EXPECT_EQ(top.chain_a_flops.size(), 8u);
  // Chain B: term cap + 2 FSM + 2 BIST caps + 10 ring + 3 lock.
  EXPECT_EQ(top.chain_b_flops.size(), 18u);
}

TEST(DigitalTop, ScanChainsShiftIndependently) {
  DigitalTop top = build_digital_top();
  ScanChains chains = stitch_scan_chains(top);
  top.c.power_on();
  for (const auto n : {top.data_in, top.ten, top.half_sel, top.cmp_hi, top.cmp_lo, top.cmp_term,
                       top.bist_hi, top.bist_lo}) {
    top.c.set_input(n, false);
  }
  for (const auto n : top.dll_phases) top.c.set_input(n, false);
  top.c.set_input(*top.c.find_net("scan_clk"), false);
  top.c.set_input(top.sen, false);
  top.c.set_input(*top.c.find_net("lock_rst"), false);

  chains.a.load_flop_order(top.c, digital::logic_vector("10110010"));
  chains.b.load_flop_order(top.c, digital::logic_vector("101100101100101100"));
  EXPECT_EQ(digital::logic_string(chains.a.read_flop_order(top.c)), "10110010");
  EXPECT_EQ(digital::logic_string(chains.b.read_flop_order(top.c)), "101100101100101100");
}

TEST(DigitalTop, PdUpDnTwoPassTest) {
  // The paper's two-pass phase-detector test: in pass 1 the latch is
  // transparent, in pass 2 it delays the data by half a cycle, which
  // flips the PD's UP/DN decision — so both decode paths get exercised.
  DigitalTop top = build_digital_top();
  top.c.power_on();
  auto set_all_low = [&] {
    for (const auto n : {top.data_in, top.ten, top.half_sel, top.cmp_hi, top.cmp_lo,
                         top.cmp_term, top.bist_hi, top.bist_lo}) {
      top.c.set_input(n, false);
    }
    for (const auto n : top.dll_phases) top.c.set_input(n, false);
    top.c.set_input(*top.c.find_net("scan_clk"), false);
  top.c.set_input(top.sen, false);
    top.c.set_input(*top.c.find_net("lock_rst"), false);
  };
  set_all_low();

  // Pass 1: latch transparent; toggling data at the scan frequency makes
  // the PD assert only UP (the paper's observation).
  bool saw_dn = false;
  bool saw_up = false;
  bool d = false;
  for (int k = 0; k < 10; ++k) {
    d = !d;
    top.c.set_input(top.data_in, d);
    top.c.step();
    if (k < 4) continue;  // let X flush out of the pipeline
    if (top.c.value(top.pd.dn) == Logic::k1) saw_dn = true;
    if (top.c.value(top.pd.up) == Logic::k1) saw_up = true;
  }
  EXPECT_TRUE(saw_up);
  EXPECT_FALSE(saw_dn);

  // Pass 2: the half-cycle latch delays the launched data, flipping the
  // PD decision to DN — covering the other decode path.
  top.c.power_on();
  set_all_low();
  top.c.set_input(top.ten, true);
  top.c.set_input(top.half_sel, true);
  saw_dn = false;
  saw_up = false;
  d = false;
  for (int k = 0; k < 10; ++k) {
    d = !d;
    top.c.set_input(top.data_in, d);
    top.c.step();
    if (k < 4) continue;
    if (top.c.value(top.pd.dn) == Logic::k1) saw_dn = true;
    if (top.c.value(top.pd.up) == Logic::k1) saw_up = true;
  }
  EXPECT_TRUE(saw_dn);
  EXPECT_FALSE(saw_up);
}

TEST(DigitalTop, SwitchMatrixContinuityStory) {
  // Preloading all zeroes selects no phase: the switch-matrix output is
  // stuck low regardless of the phases (no clock for chain A, which the
  // continuity test then notices).
  DigitalTop top = build_digital_top();
  ScanChains chains = stitch_scan_chains(top);
  top.c.power_on();
  for (const auto n : {top.data_in, top.ten, top.half_sel, top.cmp_hi, top.cmp_lo, top.cmp_term,
                       top.bist_hi, top.bist_lo}) {
    top.c.set_input(n, false);
  }
  for (const auto n : top.dll_phases) top.c.set_input(n, true);
  top.c.set_input(*top.c.find_net("scan_clk"), false);
  top.c.set_input(top.sen, false);
  top.c.set_input(*top.c.find_net("lock_rst"), false);
  chains.b.load_flop_order(top.c, digital::logic_vector("000000000000000000"));
  top.c.settle();
  EXPECT_EQ(top.c.value(top.sw.out), Logic::k0);

  // One-hot preload routes the selected phase through.
  auto load = digital::logic_vector("000000000000000000");
  load[5] = Logic::k1;  // first ring flop (after term cap, 2 FSM, 2 BIST caps)
  chains.b.load_flop_order(top.c, load);
  top.c.settle();
  EXPECT_EQ(top.c.value(top.sw.out), Logic::k1);
}

TEST(DigitalTop, LockDetectorCountsCoarseRequestsInTestMode) {
  DigitalTop top = build_digital_top();
  top.c.power_on();
  for (const auto n : {top.data_in, top.half_sel, top.cmp_lo, top.cmp_term, top.bist_hi,
                       top.bist_lo}) {
    top.c.set_input(n, false);
  }
  for (const auto n : top.dll_phases) top.c.set_input(n, false);
  top.c.set_input(*top.c.find_net("scan_clk"), false);
  top.c.set_input(top.sen, false);
  top.c.set_input(top.ten, true);
  top.c.set_input(top.cmp_hi, false);
  // Flush power-on X out of the FSM capture flops, then reset the
  // counter (on silicon the BIST sequence does exactly this).
  top.c.step();
  top.c.set_input(*top.c.find_net("lock_rst"), true);
  top.c.apply_reset();
  top.c.step();
  top.c.set_input(*top.c.find_net("lock_rst"), false);

  // Three one-cycle coarse requests (cmp_hi pulses on the divided clock).
  for (int k = 0; k < 3; ++k) {
    top.c.set_input(top.cmp_hi, true);
    top.c.step();  // FSM captures the request
    top.c.set_input(top.cmp_hi, false);
    top.c.step();  // lock detector counts it; FSM capture clears
  }
  int value = 0;
  for (std::size_t b = 0; b < 3; ++b) {
    if (top.c.value(top.lockdet.q[b]) == Logic::k1) value |= 1 << b;
  }
  EXPECT_EQ(value, 3);
}

TEST(Overhead, MatchesPaperTable2) {
  const auto rows = table2_rows();
  ASSERT_EQ(rows.size(), 8u);
  for (const auto& r : rows) {
    EXPECT_EQ(r.number, r.paper_number) << r.entity;
  }
}

TEST(DigitalCampaign, NearFullStuckCoverage) {
  const auto result = run_digital_campaign(96, 11);
  // The paper: "the circuits are logically simple... 100% coverage".
  EXPECT_GT(result.combined.percent(), 97.0);
  EXPECT_GT(result.hard.percent(), 90.0);
}

}  // namespace
}  // namespace lsl::dft
