#include "dft/dc_test.hpp"

#include <gtest/gtest.h>

#include "fault/structural.hpp"

namespace lsl::dft {
namespace {

class DcTestFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The DC test runs with the coarse loop closed (mission-mode DC
    // operating point), as in the campaign.
    cells::LinkFrontendSpec spec;
    spec.close_coarse_loop = true;
    golden_ = new cells::LinkFrontend(spec);
    ref_ = new DcTestReference(dc_test_reference(*golden_));
  }
  static void TearDownTestSuite() {
    delete golden_;
    delete ref_;
    golden_ = nullptr;
    ref_ = nullptr;
  }

  cells::LinkFrontend faulted(const fault::StructuralFault& f,
                              fault::OpenLeak leak = fault::OpenLeak::kToGround) {
    cells::LinkFrontend fe = *golden_;
    const auto vdd = *fe.netlist().find_node("vdd");
    EXPECT_TRUE(fault::inject(fe.netlist(), f, leak, vdd));
    return fe;
  }

  static cells::LinkFrontend* golden_;
  static DcTestReference* ref_;
};

cells::LinkFrontend* DcTestFixture::golden_ = nullptr;
DcTestReference* DcTestFixture::ref_ = nullptr;

TEST_F(DcTestFixture, ReferenceIsValidAndToggles) {
  ASSERT_TRUE(ref_->valid);
  // The data comparators must toggle between the two vectors — the basis
  // of the whole DC test.
  // Data = 1: P arm above the bias, N arm below; data = 0 mirrors.
  EXPECT_TRUE(ref_->obs1.p_hi());
  EXPECT_FALSE(ref_->obs1.p_lo());
  EXPECT_FALSE(ref_->obs1.n_hi());
  EXPECT_TRUE(ref_->obs1.n_lo());
  EXPECT_TRUE(ref_->obs0.p_lo());
  EXPECT_TRUE(ref_->obs0.n_hi());
}

TEST_F(DcTestFixture, GoldenPassesItsOwnTest) {
  const DcTestOutcome out = run_dc_test(*golden_, *ref_);
  EXPECT_FALSE(out.detected);
  EXPECT_FALSE(out.anomalous);
}

TEST_F(DcTestFixture, FfeCapShortDetected) {
  // The paper: "Any fault in the weak driver or the series capacitors
  // ... results in a mismatch ... detected by the comparators."
  const auto out = run_dc_test(faulted({"tx.p.c_main", fault::FaultClass::kCapacitorShort}),
                               *ref_);
  EXPECT_TRUE(out.detected);
}

TEST_F(DcTestFixture, WeakDriverDsShortDetected) {
  const auto out = run_dc_test(
      faulted({"tx.n.m_drvp", fault::FaultClass::kDrainSourceShort}), *ref_);
  EXPECT_TRUE(out.detected);
}

TEST_F(DcTestFixture, TerminationBiasFaultDetectedViaWindowComparator) {
  // Shorting the receiver bias divider shifts vmid_rx away from the
  // clock-recovery bias: the Fig-6 window comparator flags it.
  cells::LinkFrontend fe = *golden_;
  auto& nl = fe.netlist();
  const auto ri = nl.find_device("term.r_divt");
  ASSERT_TRUE(ri.has_value());
  std::get<spice::Resistor>(nl.device(*ri).impl).ohms = 1.0;  // collapsed divider
  const auto out = run_dc_test(fe, *ref_);
  EXPECT_TRUE(out.detected);
}

TEST_F(DcTestFixture, TgateDrainOpenEscapesDc) {
  // The paper's canonical DC escape: a drain open in ONE device of the
  // transmission-gate termination leaves the DC solution intact (the
  // parallel device still conducts); only the dynamic test sees it.
  const auto out = run_dc_test(faulted({"term.termp.m_tgn", fault::FaultClass::kDrainOpen}),
                               *ref_);
  EXPECT_FALSE(out.detected);
}

TEST_F(DcTestFixture, PumpSwitchFaultInvisibleAtDcTest) {
  // With the pumps idle during the DC vectors, a weak-pump switch open
  // has nothing to disturb — it is scan/BIST territory.
  const auto out = run_dc_test(faulted({"cp.m_swup", fault::FaultClass::kDrainOpen}), *ref_);
  EXPECT_FALSE(out.detected);
}

}  // namespace
}  // namespace lsl::dft
