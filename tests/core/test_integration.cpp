// Integration tests walking the paper's narrative end to end on small
// fault universes (the full campaign lives in the benches).
#include <gtest/gtest.h>

#include "core/testable_link.hpp"

namespace lsl::core {
namespace {

TEST(Integration, CoverageIsCumulativeAcrossStages) {
  TestableLink link;
  dft::CampaignOptions opts;
  opts.prefixes = {"tx.", "term.term"};  // drivers, caps, tgates
  const auto report = link.run_fault_campaign(opts);
  ASSERT_GT(report.total.cum_all.total, 20u);
  // Monotone progression, as in Section IV.
  EXPECT_LE(report.total.cum_dc.detected, report.total.cum_scan.detected);
  EXPECT_LE(report.total.cum_scan.detected, report.total.cum_all.detected);
  // This subset is the DC test's home turf: the three stages end high.
  EXPECT_GT(report.total.cum_all.percent(), 85.0);
}

TEST(Integration, EveryFfeCapShortCaughtByDc) {
  // The paper: "Any fault in the weak driver or the series capacitors
  // ... detected by the comparators."
  TestableLink link;
  dft::CampaignOptions opts;
  opts.prefixes = {"tx."};
  opts.with_bist = false;
  opts.with_scan_toggle = false;
  const auto report = link.run_fault_campaign(opts);
  const auto it = report.per_class.find(fault::FaultClass::kCapacitorShort);
  ASSERT_NE(it, report.per_class.end());
  EXPECT_DOUBLE_EQ(it->second.cum_dc.percent(), 100.0);
}

TEST(Integration, ScanBistSetsIntersectWithoutContainment) {
  // "The fault sets covered by the scan test and BIST are intersecting
  // but not subsets of each other" — visible even on the pump subset.
  TestableLink link;
  dft::CampaignOptions opts;
  opts.prefixes = {"cp.m_s"};  // sources, switches, steering, scan switches
  // This test measures what each stage *would* detect, so every stage
  // must actually run: disable the detection short-circuit (which only
  // preserves verdicts and cumulative coverage, not per-stage sets).
  opts.adaptive_stage_order = false;
  const auto report = link.run_fault_campaign(opts);
  std::size_t scan_only = 0;
  std::size_t bist_only = 0;
  std::size_t both = 0;
  for (const auto& o : report.outcomes) {
    if (o.scan && !o.bist) ++scan_only;
    if (o.bist && !o.scan) ++bist_only;
    if (o.scan && o.bist) ++both;
  }
  EXPECT_GT(scan_only, 0u);
  EXPECT_GT(bist_only, 0u);
  EXPECT_GT(both, 0u);
}

TEST(Integration, PessimisticGateOpensNeverExceedDefault) {
  TestableLink link;
  dft::CampaignOptions fast;
  fast.prefixes = {"cp.m_s"};
  fast.with_scan_toggle = false;
  dft::CampaignOptions pessimistic = fast;
  pessimistic.pessimistic_gate_opens = true;
  const auto a = link.run_fault_campaign(fast);
  const auto b = link.run_fault_campaign(pessimistic);
  const auto ga = a.per_class.at(fault::FaultClass::kGateOpen).cum_all;
  const auto gb = b.per_class.at(fault::FaultClass::kGateOpen).cum_all;
  EXPECT_LE(gb.detected, ga.detected);
}

TEST(Integration, SelfTestAgreesWithCampaignGolden) {
  // The golden machine must pass the exact procedures the campaign uses
  // as references — otherwise every fault would be "detected".
  TestableLink link;
  EXPECT_TRUE(link.self_test().all_pass());
  dft::CampaignOptions opts;
  opts.max_faults = 6;
  opts.with_scan_toggle = false;
  const auto report = link.run_fault_campaign(opts);
  // A tiny universe still produces coherent accounting.
  EXPECT_EQ(report.total.cum_all.total, 6u);
}

}  // namespace
}  // namespace lsl::core
