#include "core/testable_link.hpp"

#include <gtest/gtest.h>

namespace lsl::core {
namespace {

TEST(TestableLink, HealthySelfTestPasses) {
  TestableLink link;
  const SelfTestResult r = link.self_test();
  EXPECT_TRUE(r.dc_pass);
  EXPECT_TRUE(r.scan_pass);
  EXPECT_TRUE(r.bist_pass);
  EXPECT_TRUE(r.all_pass());
}

TEST(TestableLink, OverheadHasEightRows) {
  TestableLink link;
  const auto rows = link.overhead();
  EXPECT_EQ(rows.size(), 8u);
}

TEST(TestableLink, LockTransientRecordsTrace) {
  TestableLink link;
  const auto r = link.lock_transient(0.95, 3);
  EXPECT_TRUE(r.locked);
  EXPECT_FALSE(r.trace.empty());
  // The trace must be time-ordered.
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GT(r.trace[i].t, r.trace[i - 1].t);
  }
}

TEST(TestableLink, EyeRespondsToFfe) {
  TestableLink link;
  const auto open = link.eye();
  const auto closed = link.eye(0.0);
  EXPECT_GT(open.best_height, closed.best_height);
}

TEST(TestableLink, TrafficErrorFree) {
  TestableLink link;
  const auto t = link.run_traffic(1000);
  EXPECT_TRUE(t.sync.locked);
  EXPECT_EQ(t.errors, 0u);
}

TEST(TestableLink, SmallCampaignSubsetRuns) {
  TestableLink link;
  dft::CampaignOptions opts;
  opts.max_faults = 12;
  opts.with_scan_toggle = false;  // keep the unit test quick
  opts.with_bist = false;
  const auto report = link.run_fault_campaign(opts);
  EXPECT_EQ(report.total.cum_all.total, 12u);
}

TEST(TestableLink, DigitalCampaignNearFull) {
  TestableLink link;
  const auto r = link.run_digital_campaign(64, 3);
  EXPECT_GT(r.combined.percent(), 97.0);
}

}  // namespace
}  // namespace lsl::core
