// Quickstart: build the testable link, check it is healthy, move data
// across it, and peek at the synchronizer acquisition.
//
//   $ ./build/examples/quickstart
//
#include <cstdio>

#include "core/testable_link.hpp"

int main() {
  std::printf("== Testable repeaterless low-swing link: quickstart ==\n\n");

  // Everything is defaulted to the paper's operating point: 1.2 V,
  // 2.5 Gb/s, 10-phase DLL, ~60 mV-class differential swing.
  lsl::core::TestableLink link;

  // 1. Production-style self-test: DC vectors, scan procedures, BIST.
  const auto health = link.self_test();
  std::printf("self-test: DC %s, scan %s, BIST %s\n", health.dc_pass ? "pass" : "FAIL",
              health.scan_pass ? "pass" : "FAIL", health.bist_pass ? "pass" : "FAIL");

  // 2. Move data: the link acquires lock, then slices PRBS traffic.
  const auto traffic = link.run_traffic(10000);
  std::printf("traffic: locked at %.3f us, %zu bits, %zu errors (BER %.2e)\n",
              traffic.sync.lock_time * 1e6, traffic.bits, traffic.errors, traffic.ber());
  std::printf("retime: %s-cycle crossing, %.0f ps slack\n",
              traffic.crossing.mode == lsl::link::RetimeMode::kHalfCycle ? "half" : "full",
              traffic.crossing.slack * 1e12);

  // 3. Watch the synchronizer acquire from a hostile initial condition.
  const auto sync = link.lock_transient(/*vc0=*/1.1, /*phase0=*/5);
  std::printf("acquisition from (vc=1.1 V, phi5): %s in %.3f us after %d coarse steps\n",
              sync.locked ? "locked" : "NO LOCK", sync.lock_time * 1e6,
              sync.coarse_corrections);

  // 4. The eye the receiver actually sees.
  const auto eye = link.eye();
  std::printf("eye: %.1f mV high at phase %.2f UI (width %.0f%% of UI)\n",
              eye.best_height * 1e3, eye.best_phase_frac, eye.width_frac * 100.0);

  return health.all_pass() && traffic.errors == 0 ? 0 : 1;
}
