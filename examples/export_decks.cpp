// Exports the golden analog frontend and a faulted copy as SPICE decks,
// so any external simulator can cross-check this library's netlists —
// and so a faulted circuit is reviewable as a text diff.
//
//   $ ./build/examples/export_decks [outdir]
//
#include <cstdio>
#include <fstream>
#include <string>

#include "cells/link_frontend.hpp"
#include "fault/structural.hpp"
#include "spice/export.hpp"

int main(int argc, char** argv) {
  const std::string outdir = argc > 1 ? argv[1] : ".";

  lsl::cells::LinkFrontend golden;
  lsl::spice::ExportOptions opts;
  opts.title = "lsl link frontend (golden)";
  const std::string golden_deck = lsl::spice::export_spice(golden.netlist(), opts);

  lsl::cells::LinkFrontend faulty = golden;
  const lsl::fault::StructuralFault fault{"cp.m_swup", lsl::fault::FaultClass::kDrainSourceShort};
  lsl::fault::inject(faulty.netlist(), fault, lsl::fault::OpenLeak::kToGround,
                     *faulty.netlist().find_node("vdd"));
  opts.title = "lsl link frontend (" + fault.describe() + ")";
  const std::string faulty_deck = lsl::spice::export_spice(faulty.netlist(), opts);

  const std::string golden_path = outdir + "/frontend_golden.sp";
  const std::string faulty_path = outdir + "/frontend_faulted.sp";
  std::ofstream(golden_path) << golden_deck;
  std::ofstream(faulty_path) << faulty_deck;

  std::printf("wrote %s (%zu bytes) and %s (%zu bytes)\n", golden_path.c_str(),
              golden_deck.size(), faulty_path.c_str(), faulty_deck.size());
  std::printf("\nfirst lines of the faulted deck:\n");
  std::size_t shown = 0;
  for (std::size_t pos = 0; pos < faulty_deck.size() && shown < 8; ++shown) {
    const std::size_t nl = faulty_deck.find('\n', pos);
    std::printf("  %s\n", faulty_deck.substr(pos, nl - pos).c_str());
    pos = nl + 1;
  }
  std::printf("  ...\ndiff the two decks to see exactly what the fault edit did.\n");
  return 0;
}
