// In-field BIST monitoring scenario: the link's analog parameters
// degrade over life (bias drift, pump current loss, swing compression).
// Sweep degradation levels and show where each BIST criterion starts
// failing — the margin view a product engineer wants from the paper's
// low-overhead BIST.
//
//   $ ./build/examples/bist_monitor
//
#include <cstdio>

#include "link/link.hpp"
#include "util/table.hpp"

namespace {

const char* mark(bool ok) { return ok ? "ok" : "FAIL"; }

lsl::link::BistVerdict bist_at(const lsl::link::LinkParams& params) {
  lsl::link::LinkParams p = params;
  p.phase0 = 5;  // the BIST preloads a far-off coarse phase
  lsl::link::Link link(p);
  return link.run_bist(77);
}

}  // namespace

int main() {
  std::printf("== BIST as an in-field health monitor ==\n\n");

  // 1. Weak-pump current degradation (device aging).
  {
    lsl::util::Table t({"pump current (x nominal)", "lock<2us", "counter", "CP-BIST", "data"});
    t.set_title("Charge-pump current degradation");
    for (const double scale : {1.0, 0.6, 0.3, 0.15, 0.08, 0.04}) {
      lsl::link::LinkParams p;
      p.sync.pump.i_up *= scale;
      p.sync.pump.i_dn *= scale;
      const auto v = bist_at(p);
      t.add_row({lsl::util::Table::num(scale, 2), mark(v.locked_in_budget),
                 mark(v.lock_counter_ok), mark(v.cp_bist_ok), mark(v.data_ok)});
    }
    t.print();
  }

  // 2. Vc leakage (gate-oxide degradation on the loop cap / switches).
  {
    lsl::util::Table t({"leakage (uA)", "lock<2us", "counter", "CP-BIST", "data"});
    t.set_title("Loop-filter leakage");
    for (const double leak_ua : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      lsl::link::LinkParams p;
      p.sync.pump.leak = leak_ua * 1e-6;
      const auto v = bist_at(p);
      t.add_row({lsl::util::Table::num(leak_ua, 1), mark(v.locked_in_budget),
                 mark(v.lock_counter_ok), mark(v.cp_bist_ok), mark(v.data_ok)});
    }
    t.print();
  }

  // 3. Swing compression (driver aging / supply droop at the TX).
  {
    lsl::util::Table t({"swing (x nominal)", "lock<2us", "counter", "CP-BIST", "data"});
    t.set_title("Transmit swing compression");
    for (const double scale : {1.0, 0.7, 0.5, 0.35, 0.25, 0.15}) {
      lsl::link::LinkParams p;
      p.channel.drive_scale_p = scale;
      p.channel.drive_scale_n = scale;
      p.slicer_offset = 0.012;  // a realistic residual slicer offset
      const auto v = bist_at(p);
      t.add_row({lsl::util::Table::num(scale, 2), mark(v.locked_in_budget),
                 mark(v.lock_counter_ok), mark(v.cp_bist_ok), mark(v.data_ok)});
    }
    t.print();
  }

  // 4. Charge-balance drift (the fault class the CP-BIST window exists for).
  {
    lsl::util::Table t({"Vp offset (mV)", "lock<2us", "counter", "CP-BIST", "data"});
    t.set_title("Charge-balance (Vp) offset");
    for (const double off_mv : {0.0, 60.0, 120.0, 180.0, 300.0}) {
      lsl::link::LinkParams p;
      p.sync.pump.vp_offset = off_mv * 1e-3;
      const auto v = bist_at(p);
      t.add_row({lsl::util::Table::num(off_mv, 0), mark(v.locked_in_budget),
                 mark(v.lock_counter_ok), mark(v.cp_bist_ok), mark(v.data_ok)});
    }
    t.print();
  }

  std::printf(
      "\nReading: the 150 mV CP-BIST window trips before the loop functionally\n"
      "fails, and the lock detector flags acquisition pathologies — together\n"
      "they give early warning well before user-visible data errors.\n");
  return 0;
}
