// Fault-injection walkthrough: pick a structural fault (by device name
// and class), inject it into a copy of the golden analog frontend, and
// watch which of the paper's three test stages flags it.
//
//   $ ./build/examples/fault_injection                      # a default tour
//   $ ./build/examples/fault_injection cp.m_swup drain-open # one fault
//
#include <cstdio>
#include <cstring>
#include <string>

#include "core/testable_link.hpp"
#include "dft/bist_test.hpp"
#include "dft/dc_test.hpp"
#include "dft/scan_test.hpp"

namespace {

using lsl::fault::FaultClass;

bool parse_class(const std::string& s, FaultClass& out) {
  for (const FaultClass c : lsl::fault::kAllFaultClasses) {
    if (lsl::fault::fault_class_name(c) == s) {
      out = c;
      return true;
    }
  }
  return false;
}

struct References {
  lsl::dft::DcTestReference dc;
  lsl::dft::ScanTestReference scan;
  lsl::dft::BistTestReference bist;
  lsl::cells::LinkFrontend golden_closed;
};

void show_fault(const lsl::core::TestableLink& link, const References& refs,
                const std::string& device, FaultClass cls) {
  lsl::cells::LinkFrontend faulty = link.frontend();
  lsl::cells::LinkFrontend faulty_closed = refs.golden_closed;
  const auto vdd = *faulty.netlist().find_node("vdd");
  const lsl::fault::StructuralFault fault{device, cls};
  const auto leak = lsl::fault::bulk_leak(faulty.netlist(), fault);
  if (!lsl::fault::inject(faulty.netlist(), fault, leak, vdd) ||
      !lsl::fault::inject(faulty_closed.netlist(), fault, leak,
                          *faulty_closed.netlist().find_node("vdd"))) {
    std::printf("%-40s  cannot inject (no such device / wrong kind)\n", fault.describe().c_str());
    return;
  }
  const auto dc = lsl::dft::run_dc_test(faulty_closed, refs.dc);
  const auto scan = lsl::dft::run_scan_test(faulty, refs.scan);
  const auto bist = lsl::dft::run_bist_test(faulty, refs.bist);
  std::printf("%-40s  DC:%-4s scan:%-4s BIST:%-4s -> %s\n", fault.describe().c_str(),
              dc.detected ? "HIT" : "-", scan.detected ? "HIT" : "-",
              bist.detected ? "HIT" : "-",
              (dc.detected || scan.detected || bist.detected) ? "DETECTED" : "ESCAPES");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Structural fault injection tour ==\n");
  std::printf("building golden references (a few seconds of MNA solves)...\n\n");

  lsl::core::TestableLink link;
  lsl::cells::LinkFrontendSpec closed_spec = link.config().analog;
  closed_spec.close_coarse_loop = true;
  References refs{lsl::dft::DcTestReference{}, lsl::dft::ScanTestReference{},
                  lsl::dft::BistTestReference{}, lsl::cells::LinkFrontend(closed_spec)};
  refs.dc = lsl::dft::dc_test_reference(refs.golden_closed);
  refs.scan = lsl::dft::scan_test_reference(link.frontend());
  refs.bist = lsl::dft::bist_test_reference(link.frontend());

  if (argc == 3) {
    FaultClass cls;
    if (!parse_class(argv[2], cls)) {
      std::printf("unknown fault class '%s'\n", argv[2]);
      std::printf("classes: ");
      for (const FaultClass c : lsl::fault::kAllFaultClasses) {
        std::printf("%s ", lsl::fault::fault_class_name(c).c_str());
      }
      std::printf("\n");
      return 1;
    }
    show_fault(link, refs, argv[1], cls);
    return 0;
  }

  // A curated tour mirroring the paper's discussion.
  std::printf("-- faults the DC test catches (mismatch at the termination) --\n");
  show_fault(link, refs, "tx.p.c_main", FaultClass::kCapacitorShort);
  show_fault(link, refs, "tx.n.m_drvp", FaultClass::kDrainSourceShort);
  show_fault(link, refs, "tx.p.m_drvn", FaultClass::kSourceOpen);

  std::printf("\n-- DC-invisible dynamic faults (the 100 MHz toggle test) --\n");
  show_fault(link, refs, "term.termp.m_tgn", FaultClass::kDrainOpen);
  show_fault(link, refs, "term.termn.m_tgp", FaultClass::kDrainOpen);

  std::printf("\n-- charge-pump faults via the scan bias-collapse procedure --\n");
  show_fault(link, refs, "cp.m_swup", FaultClass::kDrainOpen);
  show_fault(link, refs, "cp.m_srcn", FaultClass::kSourceOpen);

  std::printf("\n-- faults only the at-speed BIST sees --\n");
  show_fault(link, refs, "cp.m_srcp", FaultClass::kDrainSourceShort);
  show_fault(link, refs, "cp.m_swdnb", FaultClass::kDrainOpen);
  show_fault(link, refs, "cp.m_a_inp", FaultClass::kDrainOpen);

  std::printf("\n-- genuine escapes (redundant or function-preserving) --\n");
  show_fault(link, refs, "cp.m_bpd", FaultClass::kGateDrainShort);
  show_fault(link, refs, "cp.m_serp", FaultClass::kDrainSourceShort);
  return 0;
}
