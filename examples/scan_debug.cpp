// Scan-chain walkthrough on the digital control logic: shift patterns
// through chains A and B, run the paper's named procedures (ring-counter
// preload, switch-matrix continuity, PD two-pass test) and show the
// chain contents at each step — the view a test engineer gets from the
// tester.
//
//   $ ./build/examples/scan_debug
//
#include <cstdio>

#include "dft/digital_top.hpp"

using lsl::dft::DigitalTop;
using lsl::dft::ScanChains;
using namespace lsl::digital;

namespace {

void set_defaults(DigitalTop& top) {
  for (const auto n : {top.data_in, top.ten, top.half_sel, top.cmp_hi, top.cmp_lo, top.cmp_term,
                       top.bist_hi, top.bist_lo, top.sen}) {
    top.c.set_input(n, false);
  }
  for (const auto n : top.dll_phases) top.c.set_input(n, false);
  top.c.set_input(*top.c.find_net("scan_clk"), false);
  top.c.set_input(*top.c.find_net("lock_rst"), false);
}

void show(const char* tag, const std::vector<Logic>& bits) {
  std::printf("  %-26s %s\n", tag, logic_string(bits).c_str());
}

}  // namespace

int main() {
  std::printf("== Scan-chain walkthrough (chains A and B of Fig 1) ==\n\n");

  DigitalTop top = lsl::dft::build_digital_top();
  ScanChains chains = lsl::dft::stitch_scan_chains(top);
  top.c.power_on();
  set_defaults(top);

  std::printf("chain A (data path): %zu flops = 2 TX taps + 2 probe flops + 4 PD flops\n",
              chains.a.length());
  std::printf("chain B (clock ctl): %zu flops = term cap + 2 FSM + 2 CP-BIST + 10 ring + 3 lock\n\n",
              chains.b.length());

  // 1. Chain continuity (flush test).
  std::printf("1. continuity flush: walking pattern through both chains\n");
  chains.a.load_flop_order(top.c, logic_vector("10000001"));
  chains.b.load_flop_order(top.c, logic_vector("100000000000000001"));
  show("chain A readback:", chains.a.read_flop_order(top.c));
  show("chain B readback:", chains.b.read_flop_order(top.c));

  // 2. Ring counter preload test (paper Section II-B): preload one-hot,
  //    clock with a coarse request, read back the shifted position.
  std::printf("\n2. ring-counter preload test (one-hot at position 0, request UP)\n");
  auto load_b = logic_vector("000000000000000000");
  load_b[5] = Logic::k1;  // ring flop 0 (after term cap + 2 FSM + 2 CP-BIST)
  chains.b.load_flop_order(top.c, load_b);
  top.c.set_input(top.cmp_hi, true);  // coarse request, direction up
  top.c.step();                       // FSM captures
  top.c.step();                       // ring shifts
  top.c.set_input(top.cmp_hi, false);
  show("chain B after 1 UP step:", chains.b.read_flop_order(top.c));
  std::printf("  (the hot bit moved from ring position 0 to 1)\n");

  // 3. Switch-matrix continuity: all-zero preload selects no phase.
  std::printf("\n3. switch-matrix test: all-zero ring preload = no clock out\n");
  for (const auto n : top.dll_phases) top.c.set_input(n, true);
  chains.b.load_flop_order(top.c, logic_vector("000000000000000000"));
  top.c.settle();
  std::printf("  switch matrix out with no selection: %c (phases all driven 1)\n",
              logic_char(top.c.value(top.sw.out)));
  load_b = logic_vector("000000000000000000");
  load_b[5 + 4] = Logic::k1;
  chains.b.load_flop_order(top.c, load_b);
  top.c.settle();
  std::printf("  switch matrix out with ring[4] hot:  %c\n", logic_char(top.c.value(top.sw.out)));

  // 4. PD two-pass test via the TX half-cycle latch.
  std::printf("\n4. Alexander PD two-pass test (toggling data at scan frequency)\n");
  for (int pass = 0; pass < 2; ++pass) {
    top.c.power_on();
    set_defaults(top);
    if (pass == 1) {
      top.c.set_input(top.ten, true);
      top.c.set_input(top.half_sel, true);
    }
    bool up = false;
    bool dn = false;
    bool d = false;
    for (int k = 0; k < 10; ++k) {
      d = !d;
      top.c.set_input(top.data_in, d);
      top.c.step();
      if (k < 4) continue;
      up |= top.c.value(top.pd.up) == Logic::k1;
      dn |= top.c.value(top.pd.dn) == Logic::k1;
    }
    std::printf("  pass %d (%-24s): UP %s, DN %s\n", pass + 1,
                pass == 0 ? "latch transparent" : "half-cycle delay on", up ? "fires" : "quiet",
                dn ? "fires" : "quiet");
  }
  std::printf("  (pass 1 exercises the UP decode path, pass 2 the DN path)\n");

  // 5. Lock-detector BIST readout.
  std::printf("\n5. lock detector: 3 coarse requests then chain-B readout\n");
  top.c.power_on();
  set_defaults(top);
  top.c.set_input(top.ten, true);
  top.c.step();
  top.c.set_input(*top.c.find_net("lock_rst"), true);
  top.c.apply_reset();
  top.c.step();
  top.c.set_input(*top.c.find_net("lock_rst"), false);
  for (int k = 0; k < 3; ++k) {
    top.c.set_input(top.cmp_hi, true);
    top.c.step();
    top.c.set_input(top.cmp_hi, false);
    top.c.step();
  }
  const auto readout = chains.b.read_flop_order(top.c);
  show("chain B (last 3 = counter):", readout);
  std::printf("  BIST fail flag: %c (saturation would set it)\n",
              logic_char(top.c.value(top.bist_fail)));
  return 0;
}
