// Section III, quantified: "Any faults in [the charge-balancing] path or
// in the amplifier ... result in the node Vp drifting towards VDD or
// GND. This pushes one of the current sources to the linear region and
// as a result causes increased jitter in the recovered clock."
//
// Sweep the balance-node offset and report the recovered sampling-clock
// jitter plus whether the 150 mV CP-BIST window flags the part — the
// window is sized so the flag fires before the jitter hurts the link.
#include <cstdio>

#include "behav/synchronizer.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Recovered-clock jitter vs charge-balance offset (50 us locked)\n\n");

  lsl::util::Table table({"Vp offset (mV)", "jitter rms (ps)", "jitter p-p (ps)",
                          "CP-BIST flag", "eye violations"});
  table.set_title("Jitter degradation from a failing balance path");

  for (const double off_mv : {0.0, 50.0, 100.0, 150.0, 250.0, 400.0, 600.0}) {
    lsl::behav::SyncParams p;
    p.pump.vp_offset = off_mv * 1e-3;
    lsl::behav::Synchronizer sync(p, 110e-12, 0.6, 0);
    lsl::util::Pcg32 rng(9);
    const auto r = sync.run(125000, rng);  // 50 us at 2.5 Gb/s
    table.add_row({lsl::util::Table::num(off_mv, 0),
                   lsl::util::Table::num(r.jitter_rms * 1e12, 2),
                   lsl::util::Table::num(r.jitter_pp * 1e12, 1),
                   r.cp_bist_flag ? "TRIPPED" : "quiet",
                   std::to_string(r.ui_outside_eye_after_lock)});
  }
  table.print();

  std::printf(
      "\nThe jitter grows with the balance offset, and the CP-BIST window\n"
      "(150 mV) trips before the jitter produces eye violations — the margin\n"
      "the paper's Fig-9 comparator is sized for.\n");
  return 0;
}
