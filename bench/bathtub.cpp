// BER vs sampling phase across the UI — the link-margin view behind the
// paper's "sample at the center of the data eye" requirement. In this
// channel the capacitive kick plus RC settling make the eye grow through
// the UI, so mis-sampling early costs orders of magnitude of BER: the
// synchronizer's phase acquisition is worth exactly this curve. Run with
// elevated noise so the error floor is measurable in reasonable time.
#include <cmath>
#include <cstdio>

#include "behav/channel.hpp"
#include "util/prbs.hpp"
#include "util/table.hpp"

namespace {

/// BER at every sampling phase of the UI for one channel configuration.
std::vector<double> bathtub(const lsl::behav::ChannelParams& params, std::size_t n_bits) {
  lsl::behav::Channel ch(params, 99);
  lsl::util::PrbsGenerator prbs(lsl::util::PrbsOrder::kPrbs15, 3);
  const auto os = static_cast<std::size_t>(params.oversample);
  std::vector<std::size_t> errors(os, 0);
  const std::size_t warmup = 64;
  for (std::size_t i = 0; i < n_bits + warmup; ++i) {
    const bool b = prbs.next_bit();
    ch.push_bit(b);
    if (i < warmup) continue;
    const auto& wave = ch.last_ui_waveform();
    for (std::size_t k = 0; k < os; ++k) {
      if ((wave[k] > 0.0) != b) ++errors[k];
    }
  }
  std::vector<double> ber(os);
  for (std::size_t k = 0; k < os; ++k) {
    ber[k] = static_cast<double>(errors[k]) / static_cast<double>(n_bits);
  }
  return ber;
}

std::string ber_str(double ber, std::size_t n_bits) {
  if (ber <= 0.0) return "< " + lsl::util::Table::num(std::log10(1.0 / n_bits), 1) + " (clean)";
  return lsl::util::Table::num(std::log10(ber), 1);
}

}  // namespace

int main() {
  constexpr std::size_t kBits = 200000;
  std::printf("log10(BER) vs sampling phase (PRBS-15, %zu bits, 5 mV rms noise)\n\n",
              kBits);

  // Use equalizer settings where the eye partially closes within the UI
  // (kick 0.8: ~69% open) so the bathtub has walls, and stress the noise
  // so the floor is measurable in 2e5 bits.
  lsl::behav::ChannelParams with_ffe;
  with_ffe.ffe_kick = 0.8;
  with_ffe.noise_rms = 5e-3;
  lsl::behav::ChannelParams weak_ffe = with_ffe;
  weak_ffe.ffe_kick = 0.6;

  const auto strong = bathtub(with_ffe, kBits);
  const auto weak = bathtub(weak_ffe, kBits);

  lsl::util::Table table({"phase (UI)", "log10 BER, kick 0.8", "log10 BER, kick 0.6"});
  table.set_title("BER vs sampling phase");
  for (std::size_t k = 0; k < strong.size(); ++k) {
    const double frac = static_cast<double>(k) / static_cast<double>(strong.size());
    table.add_row({lsl::util::Table::num(frac, 3), ber_str(strong[k], kBits),
                   ber_str(weak[k], kBits)});
  }
  table.print();

  // Horizontal opening at BER <= 1e-3.
  auto opening = [&](const std::vector<double>& ber) {
    std::size_t open = 0;
    for (const double b : ber) {
      if (b <= 1e-3) ++open;
    }
    return 100.0 * static_cast<double>(open) / static_cast<double>(ber.size());
  };
  std::printf("\nPhases with BER <= 1e-3: kick 0.8 -> %.0f%% UI, kick 0.6 -> %.0f%% UI\n",
              opening(strong), opening(weak));
  std::printf("Sampling at the wrong phase costs ~2 decades of BER: this is the margin\n"
              "the clock synchronizer buys.\n");
  return 0;
}
