// Supporting experiment for Section II / Fig 3: the capacitive
// feed-forward equalizer is what keeps the eye open on the RC-dominated
// line at 2.5 Gb/s. Sweeps the FFE strength and prints eye height and
// width; also prints the eye contour with and without equalization.
#include <cstdio>

#include "core/testable_link.hpp"
#include "util/table.hpp"

int main() {
  std::printf("FFE equalization benefit on the RC-dominated interconnect\n");
  std::printf("(2.5 Gb/s PRBS-7, tau ~ 3.75 UI, differential swing ~156 mV pk-pk)\n\n");

  lsl::core::TestableLink link;

  lsl::util::Table table({"FFE kick (x swing)", "Eye height (mV)", "Eye width (% UI)"});
  table.set_title("Eye opening vs equalizer strength");
  for (const double kick : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.7}) {
    const auto eye = link.eye(kick);
    table.add_row({lsl::util::Table::num(kick, 1), lsl::util::Table::num(eye.best_height * 1e3, 1),
                   lsl::util::Table::num(eye.width_frac * 100.0, 0)});
  }
  table.print();

  auto contour = [&](double kick, const char* label) {
    const auto eye = link.eye(kick);
    std::printf("\nEye height across the UI, %s (mV; '.' = closed):\n  ", label);
    for (const auto& p : eye.phases) {
      if (p.height <= 0.0) {
        std::printf("   . ");
      } else {
        std::printf("%4.0f ", p.height * 1e3);
      }
    }
    std::printf("\n");
  };
  contour(1.2, "with FFE (kick 1.2)");
  contour(0.0, "without FFE");

  std::printf(
      "\nThe paper's premise holds: without the series-capacitor FFE the eye\n"
      "collapses from inter-symbol interference; with it the receiver gets the\n"
      "~60 mV-class eye the comparators and synchronizer are designed for.\n");
  return 0;
}
