// Background-vs-foreground synchronization under environmental drift —
// the motivating comparison of Section I: foreground calibration (the
// paper's ref [4]) "cannot track environmental changes without breaking
// normal operation", while the mixed coarse/fine background loop (ref
// [8], the receiver this paper makes testable) follows the drift during
// live traffic.
//
// Sweep the drift rate; report tracking error and eye violations for
// both receiver styles.
#include <cstdio>

#include "behav/synchronizer.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Background tracking vs one-shot foreground calibration under drift\n");
  std::printf("(40 us of traffic; eye half-width 100 ps; 40 ps drift = one DLL step)\n\n");

  lsl::util::Table table({"drift (ps/us)", "receiver", "max |err| (ps)", "UIs outside eye",
                          "coarse handoffs"});
  table.set_title("Tracking under environmental drift");

  for (const double rate_ps_us : {0.0, 10.0, 20.0, 40.0, 80.0}) {
    for (const bool frozen : {false, true}) {
      lsl::behav::SyncParams p;
      p.eye_drift_rate = rate_ps_us * 1e-12 / 1e-6;
      p.freeze_after_lock = frozen;
      lsl::behav::Synchronizer sync(p, 110e-12, 0.6, 0);
      lsl::util::Pcg32 rng(5);
      const auto r = sync.run(100000, rng);
      table.add_row({lsl::util::Table::num(rate_ps_us, 0),
                     frozen ? "foreground (frozen)" : "background (tracking)",
                     lsl::util::Table::num(r.max_err_after_lock * 1e12, 1),
                     std::to_string(r.ui_outside_eye_after_lock),
                     std::to_string(r.coarse_corrections)});
    }
  }
  table.print();

  std::printf(
      "\nThe background loop hands off DLL phases on the fly (coarse events\n"
      "during traffic) and keeps the sampling instant inside the eye at every\n"
      "drift rate; the frozen receiver accumulates out-of-eye UIs as soon as\n"
      "the drift exceeds its residual margin.\n");
  return 0;
}
