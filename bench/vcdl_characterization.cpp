// Transistor-level VCDL characterization: delay vs control voltage of
// the current-starved line, the design rule that its tuning range must
// exceed one DLL phase step (40 ps), and the stand-alone DLL tap
// uniformity check the paper defers to its refs [11][12].
#include <cstdio>

#include "cells/vcdl.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Current-starved VCDL characterization (4 stages, 130 nm-class)\n\n");

  lsl::cells::VcdlSpec spec;
  lsl::util::Table table({"Vctl (V)", "delay (ps)"});
  table.set_title("Delay vs control voltage");
  double d_slow = 0.0;
  double d_fast = 1e9;
  for (const double v : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2}) {
    const double d = lsl::cells::measure_vcdl_delay(spec, v);
    if (d < 0.0) {
      table.add_row({lsl::util::Table::num(v, 2), "no transition"});
      continue;
    }
    d_slow = std::max(d_slow, d);
    d_fast = std::min(d_fast, d);
    table.add_row({lsl::util::Table::num(v, 2), lsl::util::Table::num(d * 1e12, 1)});
  }
  table.print();

  std::printf("\nTuning range: %.1f ps (design rule: > 40 ps DLL phase step: %s)\n",
              (d_slow - d_fast) * 1e12, (d_slow - d_fast) > 40e-12 ? "PASS" : "FAIL");

  const auto taps = lsl::cells::measure_tap_delays(spec, 0.9);
  std::printf("\nPer-tap delays at Vctl = 0.9 V: ");
  for (const double t : taps) std::printf("%.1f ps  ", t * 1e12);
  std::printf("\nStand-alone DLL tap-uniformity check ([11][12]): %s\n",
              lsl::cells::dll_taps_uniform(taps) ? "PASS" : "FAIL");
  return 0;
}
