// Regenerates the paper's Fig. 2: evolution of the fine-correction
// control voltage Vc and the coarse-correction DLL phase from startup to
// lock. Prints the (time, Vc, phase) series plus an ASCII rendering of
// the Vc sawtooth between the window thresholds VL and VH.
#include <algorithm>
#include <cstdio>

#include "core/testable_link.hpp"

int main() {
  std::printf("Reproducing Fig. 2: Vc and DLL phase from startup to lock\n");
  std::printf("(2.5 Gb/s, 10-phase DLL, VL = 0.4 V, VH = 0.8 V)\n\n");

  lsl::core::TestableLink link;
  // The paper's startup condition: Vc begins near the rail, several DLL
  // phases away from the eye.
  const auto r = link.lock_transient(/*vc0=*/0.95, /*phase0=*/3, /*max_ui=*/8000);

  std::printf("time(us)  Vc(V)   phase  coarse_event\n");
  for (const auto& pt : r.trace) {
    std::printf("%8.4f  %5.3f   phi%-2zu  %s\n", pt.t * 1e6, pt.vc, pt.phase,
                pt.coarse_event ? "<-- coarse step" : "");
  }

  std::printf("\nASCII Vc trace (x = time, each column ~%.0f ns; rows top=1.0V bottom=0.2V):\n",
              r.trace.empty() ? 0.0 : r.trace.back().t * 1e9 / 72.0);
  const int kCols = 72;
  const int kRows = 17;
  if (!r.trace.empty()) {
    const double t_end = r.trace.back().t;
    std::vector<std::string> grid(kRows, std::string(kCols, ' '));
    for (const auto& pt : r.trace) {
      int col = static_cast<int>(pt.t / t_end * (kCols - 1));
      int row = static_cast<int>((1.0 - (pt.vc - 0.2) / 0.8) * (kRows - 1));
      row = std::clamp(row, 0, kRows - 1);
      col = std::clamp(col, 0, kCols - 1);
      grid[row][col] = pt.coarse_event ? '#' : '*';
    }
    const int row_vh = static_cast<int>((1.0 - (0.8 - 0.2) / 0.8) * (kRows - 1));
    const int row_vl = static_cast<int>((1.0 - (0.4 - 0.2) / 0.8) * (kRows - 1));
    for (int rr = 0; rr < kRows; ++rr) {
      const char* label = rr == row_vh ? "VH" : (rr == row_vl ? "VL" : "  ");
      std::printf("%s |%s|\n", label, grid[rr].c_str());
    }
  }

  std::printf("\nLock achieved: %s at t = %.3f us (paper expects < 2 us)\n",
              r.locked ? "yes" : "NO", r.lock_time * 1e6);
  std::printf("Coarse corrections: %d (lock detector count %d, saturated: %s)\n",
              r.coarse_corrections, r.lock_counter, r.lock_counter_saturated ? "yes" : "no");
  std::printf("Final phase: phi%zu, final Vc = %.3f V, residual phase error = %.1f ps\n",
              r.final_phase, r.final_vc, r.final_phase_error * 1e12);
  return r.locked ? 0 : 1;
}
