// Multi-lane production-test scheduling: the paper's DFT splits into
// tester-serialized scan procedures and self-contained per-lane BIST,
// and shares the divider across receivers. This bench shows what that
// buys on a wide bus: per-lane phase absorption of routing skew, and
// test time vs lane count under naive-sequential vs scan-serial +
// BIST-concurrent scheduling.
#include <cstdio>

#include "link/multilane.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Multi-lane bus: skew absorption and production test time\n\n");

  // A 16-lane bus with realistic per-lane routing skew.
  {
    lsl::link::MultiLaneParams p;
    p.lanes = 16;
    lsl::link::MultiLaneLink bus(p);
    const auto report = bus.test_all(1000);

    lsl::util::Table table({"lane", "locked phase", "BIST", "traffic errors"});
    table.set_title("16-lane bus, 55 ps skew per lane");
    for (const auto& lane : report.lanes) {
      table.add_row({std::to_string(lane.lane), "phi" + std::to_string(lane.locked_phase),
                     lane.bist.pass() ? "pass" : "FAIL", std::to_string(lane.traffic.errors)});
    }
    table.print();
    std::printf("distinct coarse phases used: %zu (the per-lane synchronizers absorb the skew)\n\n",
                report.distinct_phases);
  }

  // Test-time scaling.
  {
    lsl::util::Table table({"lanes", "sequential (us)", "scan-serial + BIST-concurrent (us)",
                            "saving"});
    table.set_title("Production test time vs lane count");
    for (const std::size_t lanes : {1u, 4u, 8u, 16u, 32u}) {
      lsl::link::MultiLaneParams p;
      p.lanes = lanes;
      lsl::link::MultiLaneLink bus(p);
      const auto report = bus.test_all(50);
      const double seq = report.test_time_sequential * 1e6;
      const double sch = report.test_time_scheduled * 1e6;
      table.add_row({std::to_string(lanes), lsl::util::Table::num(seq, 2),
                     lsl::util::Table::num(sch, 2),
                     lsl::util::Table::pct(100.0 * (seq - sch) / seq, 0)});
    }
    table.print();
  }
  std::printf("\nThe BIST being self-contained per receiver is what makes the wide-bus\n"
              "test time flat in the BIST term — the low overhead of Table II, at scale.\n");
  return 0;
}
