// Regenerates the Section IV coverage progression: DC test alone, then
// + scan, then + BIST — the paper's 50.4% -> 74.3% -> 94.8% — plus the
// digital stuck-at figure (paper: 100%).
//
// Flags:  --fast       cap the analog universe at 80 faults (smoke run)
//         --threads N  campaign workers (0 = all hardware cores; default 0)
//         --trace <path>    Chrome trace_event JSON of the run (Perfetto)
//         --metrics <path>  util::Metrics snapshot JSON at exit
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/testable_link.hpp"
#include "observability.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  lsl::dft::CampaignOptions opts;
  opts.num_threads = 0;  // all hardware cores unless --threads says otherwise
  lsl::bench::Observability obs;
  for (int i = 1; i < argc; ++i) {
    if (obs.parse_flag(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--fast") == 0) opts.max_faults = 80;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.num_threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  opts.progress = [](std::size_t i, std::size_t n) {
    if (i % 50 == 0) std::fprintf(stderr, "  fault %zu / %zu\n", i, n);
  };

  std::printf("Reproducing Section IV: cumulative structural fault coverage per test stage\n\n");

  obs.start();
  lsl::core::TestableLink link;
  const auto report = link.run_fault_campaign(opts);
  char speedup[32] = "n/a";
  if (const auto sp = report.exec.speedup()) std::snprintf(speedup, sizeof(speedup), "%.2fx", *sp);
  std::fprintf(stderr, "campaign: %zu faults on %zu thread(s), %.1fs wall, %.1fs fault CPU (%s)\n",
               report.outcomes.size(), report.exec.threads_used, report.exec.wall_clock_sec,
               report.exec.fault_cpu_sec, speedup);

  lsl::util::Table table({"Test stage", "Coverage (measured)", "Coverage (paper)"});
  table.set_title("Cumulative analog structural-fault coverage");
  table.add_row({"DC test (2 vectors)", lsl::util::Table::pct(report.total.cum_dc.percent()),
                 "50.4%"});
  table.add_row({"+ scan test", lsl::util::Table::pct(report.total.cum_scan.percent()), "74.3%"});
  table.add_row({"+ BIST", lsl::util::Table::pct(report.total.cum_all.percent()), "94.8%"});
  table.print();

  // The paper: "The fault sets covered by the scan test and BIST are
  // intersecting but not subsets of each other."
  std::size_t scan_only = 0;
  std::size_t bist_only = 0;
  std::size_t both = 0;
  for (const auto& o : report.outcomes) {
    if (o.scan && !o.bist) ++scan_only;
    if (o.bist && !o.scan) ++bist_only;
    if (o.scan && o.bist) ++both;
  }
  std::printf("\nScan/BIST fault-set relation: scan-only %zu, BIST-only %zu, both %zu\n",
              scan_only, bist_only, both);
  std::printf("(both counts nonzero = intersecting but neither is a subset, as the paper notes)\n");

  std::printf("\nDigital control logic (scan chains A and B), single stuck-at:\n");
  const auto digital = link.run_digital_campaign(128, 7);
  lsl::util::Table dtable({"Metric", "Measured", "Paper"});
  dtable.add_row({"Stuck-at coverage (hard + potential)",
                  lsl::util::Table::pct(digital.combined.percent()), "100%"});
  dtable.add_row({"Stuck-at coverage (hard only)", lsl::util::Table::pct(digital.hard.percent()),
                  "-"});
  dtable.print();
  if (!digital.undetected.empty()) {
    std::printf("Undetected digital faults: %zu\n", digital.undetected.size());
  }
  obs.finish();
  return 0;
}
