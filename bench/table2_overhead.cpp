// Regenerates the paper's TABLE II: circuit and control-input overhead
// of the DFT insertion, counted from the actual construction of the
// digital top (not hand-typed).
#include <cstdio>

#include "core/testable_link.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Reproducing TABLE II: circuit and control input overhead\n\n");

  lsl::core::TestableLink link;
  lsl::util::Table table({"Entity", "Number (measured)", "Number (paper)"});
  table.set_title("TABLE II: Circuit and control input overhead");
  for (const auto& row : link.overhead()) {
    table.add_row({row.entity, std::to_string(row.number), std::to_string(row.paper_number)});
  }
  table.print();

  std::printf(
      "\nMapping: probe flops (2) + FSM capture flops (2) + termination capture\n"
      "flop (1) + CP-BIST capture flops (2) = 7 flip-flops; the four per-arm\n"
      "line observers are the DC comparators; the bias window comparator pair\n"
      "runs at the 100 MHz scan clock; the Fig-9 CP-BIST comparator pair is\n"
      "part of the BIST block (not separately itemized by the paper either).\n");
  return 0;
}
