// Diagnosis resolution of the paper's DFT: with the same observers used
// for detection (DC comparators, scan captures, toggle strobes, CP-BIST
// readout, BIST verdict), how precisely can failure analysis name the
// defect? Builds the full fault dictionary and reports the equivalence
// structure, then demonstrates a diagnosis round-trip.
//
// Flags:  --fast   cap the universe (smoke run)
#include <cstdio>
#include <cstring>

#include "dft/dictionary.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  lsl::dft::DictionaryOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) opts.max_faults = 60;
  }
  opts.progress = [](std::size_t i, std::size_t n) {
    if (i % 50 == 0) std::fprintf(stderr, "  fault %zu / %zu\n", i, n);
  };

  std::printf("Fault dictionary and diagnosis resolution of the DFT observers\n\n");

  lsl::cells::LinkFrontend golden;
  const auto dict = lsl::dft::build_dictionary(golden, opts);
  const auto r = dict.resolution();

  lsl::util::Table table({"Metric", "Value"});
  table.set_title("Diagnosis resolution");
  table.add_row({"faults in dictionary", std::to_string(r.faults)});
  table.add_row({"detected (signature != golden)", std::to_string(r.detected)});
  table.add_row({"distinct signatures", std::to_string(r.classes)});
  table.add_row({"uniquely diagnosable faults", std::to_string(r.uniquely_diagnosed)});
  table.add_row({"largest ambiguity class", std::to_string(r.largest_class)});
  table.add_row({"average class size", lsl::util::Table::num(r.avg_class_size, 2)});
  table.print();

  // Round-trip demo: a "failed part" comes back; the dictionary names
  // the candidates. Use a detected fault that is actually in the
  // dictionary (works under --fast too).
  lsl::dft::DictionaryContext ctx(golden, opts.with_toggle);
  lsl::fault::StructuralFault injected{"tx.p.c_main", lsl::fault::FaultClass::kCapacitorShort};
  for (const auto& e : dict.entries()) {
    if (e.signature != dict.golden_signature()) {
      injected = e.fault;
      break;
    }
  }
  lsl::cells::LinkFrontend bad = ctx.golden;
  lsl::cells::LinkFrontend bad_closed = ctx.golden_closed;
  lsl::fault::inject(bad.netlist(), injected, lsl::fault::OpenLeak::kToGround,
                     *bad.netlist().find_node("vdd"));
  lsl::fault::inject(bad_closed.netlist(), injected, lsl::fault::OpenLeak::kToGround,
                     *bad_closed.netlist().find_node("vdd"));
  const std::string observed = lsl::dft::capture_signature(ctx, bad, bad_closed);
  const auto candidates = dict.diagnose(observed);
  std::printf("\nDiagnosis round-trip for an injected '%s':\n", injected.describe().c_str());
  std::printf("  %zu candidate(s):\n", candidates.size());
  for (const auto* c : candidates) std::printf("    %s\n", c->fault.describe().c_str());
  return 0;
}
