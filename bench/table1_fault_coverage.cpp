// Regenerates the paper's TABLE I: structural fault coverage per defect
// class after all three test stages (DC + scan + BIST).
//
// Flags:  --fast        cap the universe at 80 faults (smoke run)
//         --pessimistic use the both-leak-variants gate-open convention
//         --checkpoint <path>  JSONL checkpoint; resume if the file exists
//         --threads N   campaign workers (0 = all hardware cores; default 0)
//         --json <path> append a flat-JSON result line (threads, per-worker
//                       fault counts, wall clock, speedup) for bench tracking
//         --compare-serial  run serial first, then parallel, and verify the
//                       canonical reports are byte-identical; records the
//                       measured parallel speedup over the serial run
//         --no-incremental  disable every incremental-campaign mechanism
//                       (golden warm starts, low-rank injection, fault
//                       collapsing, adaptive stage order) — the A/B
//                       baseline for the incremental engine
//         --trace <path>    Chrome trace_event JSON of the run (Perfetto)
//         --metrics <path>  util::Metrics snapshot JSON at exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/testable_link.hpp"
#include "observability.hpp"
#include "util/jsonl.hpp"
#include "util/table.hpp"

namespace {

/// One flat JSON line per campaign execution (nested arrays are not
/// supported by the writer, so per-worker counts are comma-joined).
void append_bench_json(const std::string& path, const char* mode,
                       const lsl::dft::CampaignReport& report,
                       double serial_wall_sec) {
  const auto& exec = report.exec;
  lsl::util::JsonObject o;
  o.set("bench", "table1_fault_coverage");
  o.set("mode", mode);
  o.set("threads_used", exec.threads_used);
  std::string per_worker;
  for (std::size_t i = 0; i < exec.per_worker_faults.size(); ++i) {
    if (i) per_worker += ",";
    per_worker += std::to_string(exec.per_worker_faults[i]);
  }
  o.set("per_worker_faults", per_worker);
  o.set("faults", report.outcomes.size());
  o.set("wall_clock_sec", exec.wall_clock_sec);
  o.set("fault_cpu_sec", exec.fault_cpu_sec);
  if (const auto speedup = exec.speedup()) o.set("cpu_over_wall_speedup", *speedup);
  if (serial_wall_sec > 0.0 && exec.wall_clock_sec > 0.0) {
    o.set("measured_speedup_vs_serial", serial_wall_sec / exec.wall_clock_sec);
  }
  o.set("coverage_pct", report.total.cum_all.percent());
  o.set("complete", report.complete);
  if (!lsl::util::append_line(path, o.str())) {
    std::fprintf(stderr, "warning: could not append bench JSON to %s\n", path.c_str());
  }
}

}  // namespace

namespace {

struct PaperRow {
  lsl::fault::FaultClass cls;
  const char* name;
  double paper;
};

constexpr PaperRow kPaperRows[] = {
    {lsl::fault::FaultClass::kGateOpen, "Gate open", 87.8},
    {lsl::fault::FaultClass::kDrainOpen, "Drain open", 93.9},
    {lsl::fault::FaultClass::kSourceOpen, "Source open", 93.9},
    {lsl::fault::FaultClass::kGateDrainShort, "Gate drain short", 93.9},
    {lsl::fault::FaultClass::kGateSourceShort, "Gate source short", 100.0},
    {lsl::fault::FaultClass::kDrainSourceShort, "Drain source short", 100.0},
    {lsl::fault::FaultClass::kCapacitorShort, "Capacitor short", 100.0},
};

}  // namespace

int main(int argc, char** argv) {
  lsl::dft::CampaignOptions opts;
  opts.num_threads = 0;  // all hardware cores unless --threads says otherwise
  std::string json_path;
  bool compare_serial = false;
  lsl::bench::Observability obs;
  for (int i = 1; i < argc; ++i) {
    if (obs.parse_flag(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--fast") == 0) opts.max_faults = 80;
    if (std::strcmp(argv[i], "--pessimistic") == 0) opts.pessimistic_gate_opens = true;
    if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      opts.checkpoint_path = argv[++i];
      opts.resume = true;
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.num_threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    if (std::strcmp(argv[i], "--compare-serial") == 0) compare_serial = true;
    if (std::strcmp(argv[i], "--no-incremental") == 0) {
      opts.reuse_golden = false;
      opts.low_rank_injection = false;
      opts.collapse_faults = false;
      opts.adaptive_stage_order = false;
    }
  }
  // Survival defaults for the full sweep: no single fault may stall the
  // campaign for more than a minute. (Note: a finite budget is the one
  // thing that can make parallel and serial runs differ — a fault that
  // times out under load may pass when run alone — so --compare-serial
  // lifts it.)
  opts.budget.per_fault_sec = compare_serial ? 0.0 : 60.0;
  opts.progress = [](std::size_t i, std::size_t n) {
    if (i % 50 == 0) std::fprintf(stderr, "  fault %zu / %zu\n", i, n);
  };

  std::printf("Reproducing TABLE I: coverage of different types of faults\n");
  std::printf("(structural fault campaign over the analog link frontend)\n\n");
  obs.start();

  lsl::core::TestableLink link;
  lsl::dft::CampaignReport report;
  if (compare_serial) {
    std::fprintf(stderr, "serial reference run (num_threads = 1)...\n");
    lsl::dft::CampaignOptions serial_opts = opts;
    serial_opts.num_threads = 1;
    serial_opts.checkpoint_path.clear();  // must not skip the parallel run's work
    const auto serial = link.run_fault_campaign(serial_opts);
    const double serial_wall_sec = serial.exec.wall_clock_sec;
    std::fprintf(stderr, "parallel run (num_threads = %zu requested)...\n", opts.num_threads);
    report = link.run_fault_campaign(opts);
    const bool identical = lsl::dft::report_canonical_jsonl(serial) ==
                           lsl::dft::report_canonical_jsonl(report);
    const double speedup = report.exec.wall_clock_sec > 0.0
                               ? serial_wall_sec / report.exec.wall_clock_sec
                               : 0.0;
    std::printf("Serial/parallel canonical reports identical: %s\n", identical ? "yes" : "NO");
    std::printf("Speedup: %.2fx (%zu threads, serial %.1fs -> parallel %.1fs)\n\n", speedup,
                report.exec.threads_used, serial_wall_sec, report.exec.wall_clock_sec);
    if (!json_path.empty()) {
      append_bench_json(json_path, "serial_reference", serial, 0.0);
      append_bench_json(json_path, "parallel", report, serial_wall_sec);
    }
    if (!identical) {
      obs.finish();
      std::fprintf(stderr, "ERROR: parallel campaign diverged from serial reference\n");
      return 1;
    }
  } else {
    report = link.run_fault_campaign(opts);
    if (!json_path.empty()) append_bench_json(json_path, "single", report, 0.0);
  }
  obs.finish();

  lsl::util::Table table({"Defect", "Faults", "Coverage (measured)", "Coverage (paper)"});
  table.set_title("TABLE I: Coverage of different types of faults");
  for (const auto& row : kPaperRows) {
    const auto it = report.per_class.find(row.cls);
    if (it == report.per_class.end()) continue;
    table.add_row({row.name, std::to_string(it->second.cum_all.total),
                   lsl::util::Table::pct(it->second.cum_all.percent()),
                   lsl::util::Table::pct(row.paper)});
  }
  table.add_row({"Total", std::to_string(report.total.cum_all.total),
                 lsl::util::Table::pct(report.total.cum_all.percent()),
                 lsl::util::Table::pct(94.8)});
  table.print();

  std::printf("\nFaults with at least one failed solve: %zu\n", report.anomalous);
  std::printf("Quarantined (no trustworthy verdict, excluded from coverage): %zu\n",
              report.quarantined);
  for (const auto* o : report.quarantined_faults()) {
    std::printf("  %s [%s]\n", o->fault.describe().c_str(),
                lsl::spice::to_string(o->status).c_str());
  }
  const auto undetected = report.undetected();
  std::printf("Undetected faults: %zu\n", undetected.size());
  for (const auto* o : undetected) std::printf("  %s\n", o->fault.describe().c_str());
  return 0;
}
