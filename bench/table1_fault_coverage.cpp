// Regenerates the paper's TABLE I: structural fault coverage per defect
// class after all three test stages (DC + scan + BIST).
//
// Flags:  --fast        cap the universe at 80 faults (smoke run)
//         --pessimistic use the both-leak-variants gate-open convention
//         --checkpoint <path>  JSONL checkpoint; resume if the file exists
#include <cstdio>
#include <cstring>

#include "core/testable_link.hpp"
#include "util/table.hpp"

namespace {

struct PaperRow {
  lsl::fault::FaultClass cls;
  const char* name;
  double paper;
};

constexpr PaperRow kPaperRows[] = {
    {lsl::fault::FaultClass::kGateOpen, "Gate open", 87.8},
    {lsl::fault::FaultClass::kDrainOpen, "Drain open", 93.9},
    {lsl::fault::FaultClass::kSourceOpen, "Source open", 93.9},
    {lsl::fault::FaultClass::kGateDrainShort, "Gate drain short", 93.9},
    {lsl::fault::FaultClass::kGateSourceShort, "Gate source short", 100.0},
    {lsl::fault::FaultClass::kDrainSourceShort, "Drain source short", 100.0},
    {lsl::fault::FaultClass::kCapacitorShort, "Capacitor short", 100.0},
};

}  // namespace

int main(int argc, char** argv) {
  lsl::dft::CampaignOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) opts.max_faults = 80;
    if (std::strcmp(argv[i], "--pessimistic") == 0) opts.pessimistic_gate_opens = true;
    if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      opts.checkpoint_path = argv[++i];
      opts.resume = true;
    }
  }
  // Survival defaults for the full sweep: no single fault may stall the
  // campaign for more than a minute.
  opts.budget.per_fault_sec = 60.0;
  opts.progress = [](std::size_t i, std::size_t n) {
    if (i % 50 == 0) std::fprintf(stderr, "  fault %zu / %zu\n", i, n);
  };

  std::printf("Reproducing TABLE I: coverage of different types of faults\n");
  std::printf("(structural fault campaign over the analog link frontend)\n\n");

  lsl::core::TestableLink link;
  const auto report = link.run_fault_campaign(opts);

  lsl::util::Table table({"Defect", "Faults", "Coverage (measured)", "Coverage (paper)"});
  table.set_title("TABLE I: Coverage of different types of faults");
  for (const auto& row : kPaperRows) {
    const auto it = report.per_class.find(row.cls);
    if (it == report.per_class.end()) continue;
    table.add_row({row.name, std::to_string(it->second.cum_all.total),
                   lsl::util::Table::pct(it->second.cum_all.percent()),
                   lsl::util::Table::pct(row.paper)});
  }
  table.add_row({"Total", std::to_string(report.total.cum_all.total),
                 lsl::util::Table::pct(report.total.cum_all.percent()),
                 lsl::util::Table::pct(94.8)});
  table.print();

  std::printf("\nFaults with at least one failed solve: %zu\n", report.anomalous);
  std::printf("Quarantined (no trustworthy verdict, excluded from coverage): %zu\n",
              report.quarantined);
  for (const auto* o : report.quarantined_faults()) {
    std::printf("  %s [%s]\n", o->fault.describe().c_str(),
                lsl::spice::to_string(o->status).c_str());
  }
  const auto undetected = report.undetected();
  std::printf("Undetected faults: %zu\n", undetected.size());
  for (const auto* o : undetected) std::printf("  %s\n", o->fault.describe().c_str());
  return 0;
}
