// Transistor-level frequency response of the transmitter + interconnect
// + termination, from AC analysis of the actual netlist — the paper's
// Section II premise at structural level: the weak-driver path is
// RC-limited to a few tens of MHz, and the series capacitors provide the
// high-frequency feed-forward path that carries the 1.25 GHz fundamental
// of 2.5 Gb/s data.
//
// The composite data->line transfer uses superposition over the three
// drive paths: H(w) = H_main(w) - e^{-jwT} H_alpha(w) - H_drv(w)
// (the alpha tap carries the one-UI-delayed inverted bit; the weak
// driver inverts its input).
#include <cmath>
#include <complex>
#include <cstdio>

#include "cells/link_frontend.hpp"
#include "spice/ac.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Data -> line transfer function of the transistor-level frontend\n\n");

  lsl::cells::LinkFrontend fe;
  fe.set_data(false, false);
  // AC characterization bias: park the weak-driver input mid-rail so the
  // inverter is in its switching (high-gm) region — the standard bias
  // point for small-signal analysis of a large-signal switching path.
  {
    auto& nl = fe.netlist();
    for (const char* src : {"v_tx_drv_in_p", "v_tx_drv_in_n"}) {
      const auto di = nl.find_device(src);
      std::get<lsl::spice::VSource>(nl.device(*di).impl).volts = 0.6;
    }
  }
  const auto freqs = lsl::spice::log_frequencies(1e6, 10e9, 25);
  const std::vector<std::string> probes = {"line_p_rx"};

  const auto h_main = lsl::spice::run_ac(fe.netlist(), fe.src_tap_main_p(), freqs, probes);
  const auto h_alpha = lsl::spice::run_ac(fe.netlist(), "v_tx_tap_alpha_p", freqs, probes);
  const auto h_drv = lsl::spice::run_ac(fe.netlist(), fe.src_drv_in_p(), freqs, probes);
  if (!h_main.ok || !h_alpha.ok || !h_drv.ok) {
    std::printf("AC analysis failed\n");
    return 1;
  }

  const double kUi = 400e-12;
  lsl::util::Table table(
      {"freq", "|H| driver only (dB)", "|H| FFE caps only (dB)", "|H| composite (dB)"});
  table.set_title("Frequency response at the receiver end of the line");

  auto fmt_freq = [](double f) {
    if (f >= 1e9) return lsl::util::Table::num(f / 1e9, 2) + " GHz";
    return lsl::util::Table::num(f / 1e6, 1) + " MHz";
  };
  auto db = [](std::complex<double> h) {
    return 20.0 * std::log10(std::max(std::abs(h), 1e-30));
  };

  double drv_at_dcish = 0.0;
  double drv_at_nyquist = 0.0;
  double comp_at_dcish = 0.0;
  double comp_at_nyquist = 0.0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double w = 2.0 * M_PI * freqs[i];
    const std::complex<double> delay = std::exp(std::complex<double>(0.0, -w * kUi));
    const std::complex<double> main = h_main.probe("line_p_rx")[i];
    const std::complex<double> alpha = h_alpha.probe("line_p_rx")[i];
    const std::complex<double> drv = h_drv.probe("line_p_rx")[i];
    const std::complex<double> caps = main - delay * alpha;
    const std::complex<double> composite = caps - drv;  // drv path inverts

    table.add_row({fmt_freq(freqs[i]), lsl::util::Table::num(db(-drv), 1),
                   lsl::util::Table::num(db(caps), 1), lsl::util::Table::num(db(composite), 1)});
    if (i == 0) {
      drv_at_dcish = db(-drv);
      comp_at_dcish = db(composite);
    }
    if (std::fabs(freqs[i] - 1.25e9) / 1.25e9 < 0.35) {
      drv_at_nyquist = db(-drv);
      comp_at_nyquist = db(composite);
    }
  }
  table.print();

  std::printf(
      "\nDriver-only loss from low frequency to ~1.25 GHz: %.1f dB\n"
      "Composite (with FFE caps) loss over the same span:  %.1f dB\n"
      "The capacitive feed-forward path recovers %.1f dB at the data rate —\n"
      "that is the equalization the paper's link depends on.\n",
      drv_at_dcish - drv_at_nyquist, comp_at_dcish - comp_at_nyquist,
      (drv_at_dcish - drv_at_nyquist) - (comp_at_dcish - comp_at_nyquist));
  return 0;
}
