// Ablations of the DFT design choices called out in DESIGN.md:
//   1. scan test without the 100 MHz toggling pattern (loses the
//      dynamic-mismatch faults, e.g. single-device tgate opens);
//   2. no BIST stage at all (loses the charge-pump faults the scan test
//      provably masks);
//   3. pessimistic both-leak-variants gate-open scoring.
//
// Runs the full universe by default (a few minutes); pass --fast for a
// reduced smoke run.
#include <cstdio>
#include <cstring>

#include "core/testable_link.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  std::size_t cap = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) cap = 150;
  }

  std::printf("DFT design-choice ablations (structural fault campaign%s)\n\n",
              cap ? ", reduced universe" : "");

  lsl::core::TestableLink link;
  lsl::util::Table table({"Configuration", "DC", "+scan", "+BIST (total)"});
  table.set_title("Cumulative coverage under ablations");

  auto run = [&](const char* label, lsl::dft::CampaignOptions opts) {
    opts.max_faults = cap;
    std::fprintf(stderr, "running: %s\n", label);
    const auto r = link.run_fault_campaign(opts);
    table.add_row({label, lsl::util::Table::pct(r.total.cum_dc.percent()),
                   lsl::util::Table::pct(r.total.cum_scan.percent()),
                   lsl::util::Table::pct(r.total.cum_all.percent())});
  };

  run("full DFT (baseline)", {});
  {
    lsl::dft::CampaignOptions o;
    o.with_scan_toggle = false;
    run("no 100 MHz toggle test", o);
  }
  {
    lsl::dft::CampaignOptions o;
    o.with_bist = false;
    run("no BIST stage", o);
  }
  {
    lsl::dft::CampaignOptions o;
    o.pessimistic_gate_opens = true;
    run("pessimistic gate opens", o);
  }
  table.print();

  std::printf(
      "\nReadings: dropping the toggle test strands the DC-invisible dynamic\n"
      "faults; dropping the BIST strands the charge-pump faults that the\n"
      "bias-collapse scan mode provably masks; the pessimistic gate-open\n"
      "convention is the floor of the gate-open row in Table I.\n");
  return 0;
}
