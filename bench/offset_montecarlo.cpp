// Monte-Carlo verification of the paper's comparator sizing rule: "The
// input transistor sizes are 0.5u/0.5u and 0.8u/0.5u, which is
// sufficient to overcome any mismatch due to the manufacturing
// process." Samples Pelgrom VT mismatch over the offset comparator and
// histograms the measured trip point; the deliberate skew must keep
// every instance's offset positive (same decision polarity) and below
// the fault-free input (so real faults still flip it).
//
// Flags:  --threads N       MC workers (0 = all hardware cores; default 0)
//         --trace <path>    Chrome trace_event JSON of the run (Perfetto)
//         --metrics <path>  util::Metrics snapshot JSON at exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "cells/comparator.hpp"
#include "fault/montecarlo.hpp"
#include "observability.hpp"
#include "spice/dc.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

/// Binary-searches the comparator trip point on a mismatched instance.
/// Returns the trip point; a failed solve reports through `status` and
/// leaves the value meaningless.
double measure_offset(lsl::util::Pcg32& rng, double w_offset, lsl::spice::SolveStatus& status) {
  lsl::spice::Netlist nl;
  const auto vdd = nl.node("vdd");
  nl.add("v_vdd", lsl::spice::VSource{vdd, lsl::spice::kGround, 1.2});
  const auto inp = nl.node("inp");
  const auto inn = nl.node("inn");
  const std::size_t sp = nl.add("v_inp", lsl::spice::VSource{inp, lsl::spice::kGround, 0.75});
  const std::size_t sn = nl.add("v_inn", lsl::spice::VSource{inn, lsl::spice::kGround, 0.75});
  const auto vbn = lsl::cells::build_nbias(nl, "bias", vdd, 130e3);
  lsl::cells::ComparatorSpec spec;
  spec.w_offset = w_offset;
  const auto c = lsl::cells::build_offset_comparator(nl, "cmp", vdd, vbn, inp, inn, spec);
  lsl::fault::apply_vt_mismatch(nl, {"cmp."}, {}, rng);

  double lo = -0.08;
  double hi = 0.10;
  for (int it = 0; it < 20; ++it) {
    const double mid = 0.5 * (lo + hi);
    std::get<lsl::spice::VSource>(nl.device(sp).impl).volts = 0.75 + mid / 2.0;
    std::get<lsl::spice::VSource>(nl.device(sn).impl).volts = 0.75 - mid / 2.0;
    const auto r = lsl::spice::solve_dc(nl);
    status = r.status;
    if (!r.converged) return -1.0;
    if (r.v(nl, c.out) > 0.6) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kTrials = 60;
  std::size_t threads = 0;  // all hardware cores unless --threads says otherwise
  lsl::bench::Observability obs;
  for (int i = 1; i < argc; ++i) {
    if (obs.parse_flag(argc, argv, i)) continue;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  obs.start();
  std::printf("Monte-Carlo comparator offset under Pelgrom VT mismatch (%zu instances)\n",
              kTrials);
  std::printf("(A_VT = 3.5 mV*um; fault-free comparator input ~ +39 mV)\n\n");

  lsl::util::Table table(
      {"design", "mean offset (mV)", "sigma (mV)", "min (mV)", "max (mV)", "wrong-polarity"});
  table.set_title("Trip-point distribution");

  for (const double w_off : {0.65e-6, 0.5e-6}) {
    // Trials run on the pool; each writes only its own slot, and the
    // per-trial RNG streams make the histogram thread-count-invariant.
    std::vector<double> offsets(kTrials, -1.0);
    lsl::fault::McRunOptions mc;
    mc.num_threads = threads;
    mc.seed = 777;
    const lsl::fault::McTally tally = lsl::fault::run_mc_trials(
        kTrials, mc, [&offsets, w_off](std::size_t t, lsl::util::Pcg32& rng) {
          auto status = lsl::spice::SolveStatus::kConverged;
          offsets[t] = measure_offset(rng, w_off, status);
          return status;
        });
    lsl::util::RunningStats stats;
    int wrong = 0;
    for (const double off : offsets) {
      if (off < -0.5) continue;  // failed solve: classified in the tally, not dropped silently
      stats.add(off * 1e3);
      if (off <= 0.0) ++wrong;
    }
    std::printf("  %s: %s\n", w_off > 0.55e-6 ? "deliberate skew" : "no skew",
                tally.summary().c_str());
    table.add_row({w_off > 0.55e-6 ? "deliberate skew (0.65u)" : "no skew (0.50u)",
                   lsl::util::Table::num(stats.mean(), 1),
                   lsl::util::Table::num(stats.stddev(), 1),
                   lsl::util::Table::num(stats.min(), 1), lsl::util::Table::num(stats.max(), 1),
                   std::to_string(wrong)});
  }
  table.print();

  std::printf(
      "\nWith the deliberate skew the trip point stays positive and below the\n"
      "39 mV fault-free input across process; without it, the polarity is a\n"
      "coin flip — the paper's sizing rule. The rare tail escape is what the\n"
      "paper's remark about common-centroid layout (which halves the random\n"
      "sigma) is for.\n");
  obs.finish();
  return 0;
}
