// Section III check: the receiver must lock within 2 us (5000 cycles at
// 2.5 Gb/s) from ANY initial condition, with the number of coarse
// corrections bounded by half the DLL phase count. Sweeps every initial
// coarse phase x a grid of initial Vc levels.
#include <cstdio>

#include "core/testable_link.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  std::printf("BIST lock-time budget: sweep of initial conditions\n");
  std::printf("(paper: lock within 2 us = 5000 cycles; <= n_phases/2 coarse steps)\n\n");

  lsl::core::TestableLink link;
  lsl::util::RunningStats lock_times;
  lsl::util::Histogram hist(0.0, 2.0, 10);  // us
  int failures = 0;
  int saturated = 0;
  int max_coarse = 0;

  lsl::util::Table table({"phase0", "vc0", "lock time (us)", "coarse steps", "residual err (ps)"});
  for (std::size_t phase0 = 0; phase0 < 10; ++phase0) {
    for (const double vc0 : {0.1, 0.45, 0.6, 0.75, 1.1}) {
      const auto r = link.lock_transient(vc0, phase0, 8000, 17 + phase0);
      if (!r.locked || r.lock_time > 2e-6) ++failures;
      if (r.lock_counter_saturated) ++saturated;
      max_coarse = std::max(max_coarse, r.coarse_corrections);
      if (r.locked) {
        lock_times.add(r.lock_time * 1e6);
        hist.add(r.lock_time * 1e6);
      }
      table.add_row({std::to_string(phase0), lsl::util::Table::num(vc0, 2),
                     r.locked ? lsl::util::Table::num(r.lock_time * 1e6, 3) : "NO LOCK",
                     std::to_string(r.coarse_corrections),
                     lsl::util::Table::num(r.final_phase_error * 1e12, 1)});
    }
  }
  table.print();

  std::printf("\nLock time: mean %.3f us, max %.3f us over %zu conditions\n", lock_times.mean(),
              lock_times.max(), lock_times.count());
  std::printf("Budget violations (> 2 us or no lock): %d\n", failures);
  std::printf("Lock-detector saturations: %d\n", saturated);
  std::printf("Max coarse corrections: %d (bound: n_phases/2 + reset hysteresis)\n", max_coarse);
  std::printf("\nLock-time distribution (us):\n%s", hist.ascii(40).c_str());
  return failures == 0 ? 0 : 1;
}
