// Test-set compaction on the link's digital control logic: how many
// scan patterns does production test actually need? Compares the
// random-pattern coverage curve against the greedy-compacted set.
// Test time on ATE is dominated by scan shifting (26 bits per pattern
// across chains A+B here), so this is the test-cost view of the paper's
// DFT architecture.
#include <cstdio>

#include "digital/atpg.hpp"
#include "digital/compaction.hpp"
#include "dft/digital_top.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Scan-pattern compaction for the digital control logic\n\n");

  lsl::dft::DigitalTop top = lsl::dft::build_digital_top();
  lsl::dft::ScanChains chains = lsl::dft::stitch_scan_chains(top);
  const std::vector<const lsl::digital::ScanChain*> chain_ptrs = {&chains.a, &chains.b};

  std::vector<lsl::digital::NetId> pis = {top.data_in, top.ten,     top.half_sel, top.cmp_hi,
                                          top.cmp_lo,  top.cmp_term, top.bist_hi,  top.bist_lo,
                                          top.sen,     *top.c.find_net("scan_clk"),
                                          *top.c.find_net("lock_rst")};
  pis.insert(pis.end(), top.dll_phases.begin(), top.dll_phases.end());
  const std::vector<lsl::digital::NetId> observe = {
      top.retimed_out, top.pd.up, top.pd.dn,   top.fsm.upst, top.fsm.dnst,
      top.sw.out,      top.line_out, top.sen_b, top.bist_fail};

  lsl::util::Pcg32 rng(2024);
  const auto candidates = lsl::digital::random_patterns_multi(chain_ptrs, pis, 96, rng);
  const auto faults =
      lsl::digital::enumerate_stuck_faults(top.c, {"div_", "scan_clk", "coarse_clk"});

  std::printf("candidate pool: %zu random patterns; fault universe: %zu stuck-at faults\n\n",
              candidates.size(), faults.size());

  const auto random_curve =
      lsl::digital::coverage_vs_pattern_count(top.c, chain_ptrs, candidates, faults, observe);
  const auto compact =
      lsl::digital::compact_patterns(top.c, chain_ptrs, candidates, faults, observe);

  lsl::util::Table table({"patterns applied", "random order", "greedy compacted"});
  table.set_title("Hard stuck-at coverage vs pattern count");
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
                              std::size_t{16}, std::size_t{32}, std::size_t{64},
                              candidates.size()}) {
    const std::size_t ci = std::min(k, compact.coverage_curve.size()) - 1;
    table.add_row({std::to_string(k), lsl::util::Table::pct(random_curve[k - 1]),
                   lsl::util::Table::pct(compact.coverage_curve[ci])});
  }
  table.print();

  std::printf("\nGreedy set needs %zu patterns for its final %.1f%% (random order: %zu).\n",
              compact.selected.size(), compact.coverage.percent(), candidates.size());
  std::printf("Scan cost: %zu vs %zu shift cycles (26-bit chains).\n",
              compact.selected.size() * 26, candidates.size() * 26);

  // Close the residual faults deterministically: simulation-based ATPG
  // (hill climbing on error spread) targets exactly what the random pool
  // missed.
  std::vector<lsl::digital::StuckFault> residual;
  {
    const auto campaign =
        lsl::digital::run_stuck_campaign_multi(top.c, chain_ptrs, candidates, faults, observe);
    residual = campaign.undetected;
    // Also target faults that were only "possibly" detected (X-masked).
    (void)campaign;
  }
  std::printf("\nATPG stage: %zu faults left undetected by the random pool\n", residual.size());
  const auto atpg = lsl::digital::generate_tests(top.c, chain_ptrs, residual, pis, observe);
  std::printf("ATPG closed %zu of them with %zu extra patterns; %zu remain:\n",
              residual.size() - atpg.undetected.size(), atpg.patterns.size(),
              atpg.undetected.size());
  for (const auto& f : atpg.undetected) {
    std::printf("  %s (X-masked or redundant)\n", f.describe(top.c).c_str());
  }
  return 0;
}
