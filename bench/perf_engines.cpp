// Microbenchmarks of the simulation engines backing the reproduction.
//
// Two modes:
//  - Default: google-benchmark microbenchmarks (MNA DC solve, transient
//    stepping, gate-level scan, behavioral acquisition, BIST) — these
//    bound the fault-campaign wall-clock.
//  - `--json [path]`: a self-timed solver-engine report written as JSON
//    (default BENCH_solver.json): throughput and workspace cache
//    statistics for the DC-sweep, transient, and fault-campaign
//    workloads on the sparse engine. With `--compare-dense`, each
//    workload is re-run with every linear solve forced onto the dense
//    path (spice::solver_tuning().force_dense) and the report gains
//    dense timings plus the sparse-vs-dense speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "behav/synchronizer.hpp"
#include "cells/link_frontend.hpp"
#include "dft/campaign.hpp"
#include "dft/digital_top.hpp"
#include "link/link.hpp"
#include "spice/transient.hpp"
#include "spice/workspace.hpp"

namespace {

void BM_FrontendDcSolve(benchmark::State& state) {
  lsl::cells::LinkFrontend fe;
  fe.set_data(true, true);
  for (auto _ : state) {
    const auto r = fe.solve();
    benchmark::DoNotOptimize(r.converged);
  }
}
BENCHMARK(BM_FrontendDcSolve);

void BM_FrontendDcSolveWarmStart(benchmark::State& state) {
  lsl::cells::LinkFrontend fe;
  fe.set_data(true, true);
  lsl::spice::DcOptions opts;
  const auto first = fe.solve();
  opts.initial_guess = first.x;
  for (auto _ : state) {
    const auto r = fe.solve(opts);
    benchmark::DoNotOptimize(r.converged);
  }
}
BENCHMARK(BM_FrontendDcSolveWarmStart);

void BM_TransientToggle2Cycles(benchmark::State& state) {
  lsl::cells::LinkFrontend fe;
  lsl::spice::TransientOptions opts;
  opts.t_stop = 20e-9;
  opts.dt = 0.2e-9;
  opts.probes = {"line_p_rx"};
  const auto wave = lsl::spice::square_wave(0.0, 1.2, 10e-9);
  for (auto _ : state) {
    const auto r = lsl::spice::run_transient(fe.netlist(), {{fe.src_tap_main_p(), wave}}, opts);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_TransientToggle2Cycles);

void BM_DigitalScanLoadReadChainB(benchmark::State& state) {
  lsl::dft::DigitalTop top = lsl::dft::build_digital_top();
  lsl::dft::ScanChains chains = lsl::dft::stitch_scan_chains(top);
  top.c.power_on();
  const auto pattern = std::vector<lsl::digital::Logic>(18, lsl::digital::Logic::k1);
  for (auto _ : state) {
    chains.b.load_flop_order(top.c, pattern);
    benchmark::DoNotOptimize(chains.b.read_flop_order(top.c));
  }
}
BENCHMARK(BM_DigitalScanLoadReadChainB);

void BM_SynchronizerAcquisition5000Ui(benchmark::State& state) {
  lsl::behav::SyncParams p;
  for (auto _ : state) {
    lsl::behav::Synchronizer sync(p, 180e-12, 0.6, 5);
    lsl::util::Pcg32 rng(1);
    benchmark::DoNotOptimize(sync.run(5000, rng));
  }
}
BENCHMARK(BM_SynchronizerAcquisition5000Ui);

void BM_LinkBist(benchmark::State& state) {
  lsl::link::LinkParams p;
  p.phase0 = 5;
  lsl::link::Link link(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.run_bist(7));
  }
}
BENCHMARK(BM_LinkBist);

// ---------------------------------------------------------------------------
// Solver-engine A/B report (--json / --compare-dense).

using Clock = std::chrono::steady_clock;

struct EngineRun {
  double seconds = 0.0;
  std::uint64_t linear_solves = 0;  // Newton linear systems solved
  lsl::spice::SolverWorkspace::Stats stats;  // workspace deltas
};

/// Times `work` (after one untimed warm-up) and captures the workspace
/// stat deltas for the timed repetitions.
template <typename Fn>
EngineRun timed_run(int reps, Fn&& work) {
  auto& ws = lsl::spice::SolverWorkspace::tls();
  work();  // warm-up: symbolic analysis, linear base, OS caches
  const auto before = ws.stats();
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) work();
  EngineRun run;
  run.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  const auto after = ws.stats();
  auto delta = [](std::uint64_t a, std::uint64_t b) { return a - b; };
  run.stats.symbolic_builds = delta(after.symbolic_builds, before.symbolic_builds);
  run.stats.symbolic_reuse = delta(after.symbolic_reuse, before.symbolic_reuse);
  run.stats.linear_stamp_builds = delta(after.linear_stamp_builds, before.linear_stamp_builds);
  run.stats.linear_stamp_reuse = delta(after.linear_stamp_reuse, before.linear_stamp_reuse);
  run.stats.sparse_solves = delta(after.sparse_solves, before.sparse_solves);
  run.stats.dense_solves = delta(after.dense_solves, before.dense_solves);
  run.stats.dense_fallbacks = delta(after.dense_fallbacks, before.dense_fallbacks);
  run.stats.refinement_steps = delta(after.refinement_steps, before.refinement_steps);
  run.linear_solves =
      run.stats.sparse_solves + run.stats.dense_solves + run.stats.dense_fallbacks;
  return run;
}

void run_dc_sweep_workload() {
  static lsl::cells::LinkFrontend fe;
  std::vector<double> points;
  for (int i = 0; i <= 40; ++i) points.push_back(1.2 * i / 40.0);
  const auto results =
      lsl::spice::dc_sweep(fe.netlist(), fe.src_tap_main_p(), points, lsl::spice::DcOptions{});
  benchmark::DoNotOptimize(results.size());
}

void run_transient_workload() {
  static lsl::cells::LinkFrontend fe;
  lsl::spice::TransientOptions opts;
  opts.t_stop = 20e-9;
  opts.dt = 0.2e-9;
  opts.probes = {"line_p_rx"};
  const auto wave = lsl::spice::square_wave(0.0, 1.2, 10e-9);
  const auto r = lsl::spice::run_transient(fe.netlist(), {{fe.src_tap_main_p(), wave}}, opts);
  benchmark::DoNotOptimize(r.ok);
}

void run_campaign_workload() {
  static lsl::cells::LinkFrontend golden;
  lsl::dft::CampaignOptions opts;
  opts.prefixes = {"tx."};
  opts.with_bist = false;
  opts.with_scan_toggle = false;
  opts.max_faults = 8;
  opts.num_threads = 1;  // serial: keeps the timing comparable and on this thread
  const auto report = lsl::dft::run_campaign(golden, opts);
  benchmark::DoNotOptimize(report.outcomes.size());
}

struct Workload {
  const char* name;
  int reps;
  void (*fn)();
};

void append_run_json(std::string& out, const char* key, const EngineRun& run) {
  char buf[512];
  const double sps = run.seconds > 0.0 ? static_cast<double>(run.linear_solves) / run.seconds : 0.0;
  const double reuse_den =
      static_cast<double>(run.stats.symbolic_builds + run.stats.symbolic_reuse);
  const double reuse_rate = reuse_den > 0.0 ? run.stats.symbolic_reuse / reuse_den : 0.0;
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"seconds\":%.6f,\"linear_solves\":%llu,\"solves_per_sec\":%.1f,"
                "\"symbolic_builds\":%llu,\"symbolic_reuse\":%llu,\"symbolic_reuse_rate\":%.4f,"
                "\"linear_stamp_reuse\":%llu,\"sparse_solves\":%llu,\"dense_solves\":%llu,"
                "\"dense_fallbacks\":%llu,\"refinement_steps\":%llu}",
                key, run.seconds, static_cast<unsigned long long>(run.linear_solves), sps,
                static_cast<unsigned long long>(run.stats.symbolic_builds),
                static_cast<unsigned long long>(run.stats.symbolic_reuse), reuse_rate,
                static_cast<unsigned long long>(run.stats.linear_stamp_reuse),
                static_cast<unsigned long long>(run.stats.sparse_solves),
                static_cast<unsigned long long>(run.stats.dense_solves),
                static_cast<unsigned long long>(run.stats.dense_fallbacks),
                static_cast<unsigned long long>(run.stats.refinement_steps));
  out += buf;
}

int run_solver_report(const std::string& json_path, bool compare_dense) {
  const Workload workloads[] = {
      {"dc_sweep", 5, run_dc_sweep_workload},
      {"transient", 3, run_transient_workload},
      {"fault_campaign", 2, run_campaign_workload},
  };

  auto& tuning = lsl::spice::solver_tuning();
  const lsl::spice::SolverTuning saved = tuning;

  std::string json = "{\n";
  bool first = true;
  bool all_speedups_ok = true;
  for (const Workload& w : workloads) {
    tuning = saved;
    tuning.force_dense = false;
    const EngineRun sparse = timed_run(w.reps, w.fn);

    EngineRun dense;
    if (compare_dense) {
      tuning.force_dense = true;
      dense = timed_run(w.reps, w.fn);
      tuning.force_dense = false;
    }

    if (!first) json += ",\n";
    first = false;
    json += "  \"" + std::string(w.name) + "\":{";
    append_run_json(json, "sparse", sparse);
    if (compare_dense) {
      json += ",";
      append_run_json(json, "dense", dense);
      const double speedup = sparse.seconds > 0.0 ? dense.seconds / sparse.seconds : 0.0;
      char buf[64];
      std::snprintf(buf, sizeof(buf), ",\"speedup\":%.2f", speedup);
      json += buf;
      std::printf("%-16s sparse %8.4fs  dense %8.4fs  speedup %5.2fx\n", w.name, sparse.seconds,
                  dense.seconds, speedup);
      if (speedup < 2.0) all_speedups_ok = false;
    } else {
      std::printf("%-16s sparse %8.4fs  (%llu linear solves)\n", w.name, sparse.seconds,
                  static_cast<unsigned long long>(sparse.linear_solves));
    }
    json += "}";
  }
  json += "\n}\n";
  tuning = saved;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", json_path.c_str());
  if (compare_dense && !all_speedups_ok) {
    std::fprintf(stderr, "WARNING: a workload fell short of 2x over dense\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_mode = false;
  bool compare_dense = false;
  std::string json_path = "BENCH_solver.json";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (arg == "--compare-dense") {
      json_mode = true;
      compare_dense = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (json_mode) return run_solver_report(json_path, compare_dense);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
