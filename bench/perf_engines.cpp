// Microbenchmarks of the simulation engines backing the reproduction.
//
// Two modes:
//  - Default: google-benchmark microbenchmarks (MNA DC solve, transient
//    stepping, gate-level scan, behavioral acquisition, BIST) — these
//    bound the fault-campaign wall-clock.
//  - `--json [path]`: a self-timed solver-engine report written as JSON
//    (default BENCH_solver.json): throughput and workspace cache
//    statistics for the DC-sweep, transient, and fault-campaign
//    workloads on the sparse engine. With `--compare-dense`, each
//    workload is re-run with every linear solve forced onto the dense
//    path (spice::solver_tuning().force_dense) and the report gains
//    dense timings plus the sparse-vs-dense speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "behav/synchronizer.hpp"
#include "cells/link_frontend.hpp"
#include "core/testable_link.hpp"
#include "dft/campaign.hpp"
#include "dft/digital_top.hpp"
#include "link/link.hpp"
#include "spice/transient.hpp"
#include "spice/workspace.hpp"
#include "util/metrics.hpp"

namespace {

void BM_FrontendDcSolve(benchmark::State& state) {
  lsl::cells::LinkFrontend fe;
  fe.set_data(true, true);
  for (auto _ : state) {
    const auto r = fe.solve();
    benchmark::DoNotOptimize(r.converged);
  }
}
BENCHMARK(BM_FrontendDcSolve);

void BM_FrontendDcSolveWarmStart(benchmark::State& state) {
  lsl::cells::LinkFrontend fe;
  fe.set_data(true, true);
  lsl::spice::DcOptions opts;
  const auto first = fe.solve();
  opts.initial_guess = first.x;
  for (auto _ : state) {
    const auto r = fe.solve(opts);
    benchmark::DoNotOptimize(r.converged);
  }
}
BENCHMARK(BM_FrontendDcSolveWarmStart);

void BM_TransientToggle2Cycles(benchmark::State& state) {
  lsl::cells::LinkFrontend fe;
  lsl::spice::TransientOptions opts;
  opts.t_stop = 20e-9;
  opts.dt = 0.2e-9;
  opts.probes = {"line_p_rx"};
  const auto wave = lsl::spice::square_wave(0.0, 1.2, 10e-9);
  for (auto _ : state) {
    const auto r = lsl::spice::run_transient(fe.netlist(), {{fe.src_tap_main_p(), wave}}, opts);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_TransientToggle2Cycles);

void BM_DigitalScanLoadReadChainB(benchmark::State& state) {
  lsl::dft::DigitalTop top = lsl::dft::build_digital_top();
  lsl::dft::ScanChains chains = lsl::dft::stitch_scan_chains(top);
  top.c.power_on();
  const auto pattern = std::vector<lsl::digital::Logic>(18, lsl::digital::Logic::k1);
  for (auto _ : state) {
    chains.b.load_flop_order(top.c, pattern);
    benchmark::DoNotOptimize(chains.b.read_flop_order(top.c));
  }
}
BENCHMARK(BM_DigitalScanLoadReadChainB);

void BM_SynchronizerAcquisition5000Ui(benchmark::State& state) {
  lsl::behav::SyncParams p;
  for (auto _ : state) {
    lsl::behav::Synchronizer sync(p, 180e-12, 0.6, 5);
    lsl::util::Pcg32 rng(1);
    benchmark::DoNotOptimize(sync.run(5000, rng));
  }
}
BENCHMARK(BM_SynchronizerAcquisition5000Ui);

void BM_LinkBist(benchmark::State& state) {
  lsl::link::LinkParams p;
  p.phase0 = 5;
  lsl::link::Link link(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.run_bist(7));
  }
}
BENCHMARK(BM_LinkBist);

// ---------------------------------------------------------------------------
// Solver-engine A/B report (--json / --compare-dense).

using Clock = std::chrono::steady_clock;

struct EngineRun {
  double seconds = 0.0;
  std::uint64_t linear_solves = 0;  // Newton linear systems solved
  lsl::spice::SolverWorkspace::Stats stats;  // workspace deltas
};

/// Times `work` (after one untimed warm-up) and captures the workspace
/// stat deltas for the timed repetitions.
template <typename Fn>
EngineRun timed_run(int reps, Fn&& work) {
  auto& ws = lsl::spice::SolverWorkspace::tls();
  work();  // warm-up: symbolic analysis, linear base, OS caches
  const auto before = ws.stats();
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) work();
  EngineRun run;
  run.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  const auto after = ws.stats();
  auto delta = [](std::uint64_t a, std::uint64_t b) { return a - b; };
  run.stats.symbolic_builds = delta(after.symbolic_builds, before.symbolic_builds);
  run.stats.symbolic_reuse = delta(after.symbolic_reuse, before.symbolic_reuse);
  run.stats.linear_stamp_builds = delta(after.linear_stamp_builds, before.linear_stamp_builds);
  run.stats.linear_stamp_reuse = delta(after.linear_stamp_reuse, before.linear_stamp_reuse);
  run.stats.sparse_solves = delta(after.sparse_solves, before.sparse_solves);
  run.stats.dense_solves = delta(after.dense_solves, before.dense_solves);
  run.stats.dense_fallbacks = delta(after.dense_fallbacks, before.dense_fallbacks);
  run.stats.refinement_steps = delta(after.refinement_steps, before.refinement_steps);
  run.linear_solves =
      run.stats.sparse_solves + run.stats.dense_solves + run.stats.dense_fallbacks;
  return run;
}

void run_dc_sweep_workload() {
  static lsl::cells::LinkFrontend fe;
  std::vector<double> points;
  for (int i = 0; i <= 40; ++i) points.push_back(1.2 * i / 40.0);
  const auto results =
      lsl::spice::dc_sweep(fe.netlist(), fe.src_tap_main_p(), points, lsl::spice::DcOptions{});
  benchmark::DoNotOptimize(results.size());
}

void run_transient_workload() {
  static lsl::cells::LinkFrontend fe;
  lsl::spice::TransientOptions opts;
  opts.t_stop = 20e-9;
  opts.dt = 0.2e-9;
  opts.probes = {"line_p_rx"};
  const auto wave = lsl::spice::square_wave(0.0, 1.2, 10e-9);
  const auto r = lsl::spice::run_transient(fe.netlist(), {{fe.src_tap_main_p(), wave}}, opts);
  benchmark::DoNotOptimize(r.ok);
}

void run_campaign_workload() {
  static lsl::cells::LinkFrontend golden;
  lsl::dft::CampaignOptions opts;
  opts.prefixes = {"tx."};
  opts.with_bist = false;
  opts.with_scan_toggle = false;
  opts.max_faults = 8;
  opts.num_threads = 1;  // serial: keeps the timing comparable and on this thread
  const auto report = lsl::dft::run_campaign(golden, opts);
  benchmark::DoNotOptimize(report.outcomes.size());
}

struct Workload {
  const char* name;
  int reps;
  void (*fn)();
};

void append_run_json(std::string& out, const char* key, const EngineRun& run) {
  char buf[512];
  const double sps = run.seconds > 0.0 ? static_cast<double>(run.linear_solves) / run.seconds : 0.0;
  const double reuse_den =
      static_cast<double>(run.stats.symbolic_builds + run.stats.symbolic_reuse);
  const double reuse_rate = reuse_den > 0.0 ? run.stats.symbolic_reuse / reuse_den : 0.0;
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"seconds\":%.6f,\"linear_solves\":%llu,\"solves_per_sec\":%.1f,"
                "\"symbolic_builds\":%llu,\"symbolic_reuse\":%llu,\"symbolic_reuse_rate\":%.4f,"
                "\"linear_stamp_reuse\":%llu,\"sparse_solves\":%llu,\"dense_solves\":%llu,"
                "\"dense_fallbacks\":%llu,\"refinement_steps\":%llu}",
                key, run.seconds, static_cast<unsigned long long>(run.linear_solves), sps,
                static_cast<unsigned long long>(run.stats.symbolic_builds),
                static_cast<unsigned long long>(run.stats.symbolic_reuse), reuse_rate,
                static_cast<unsigned long long>(run.stats.linear_stamp_reuse),
                static_cast<unsigned long long>(run.stats.sparse_solves),
                static_cast<unsigned long long>(run.stats.dense_solves),
                static_cast<unsigned long long>(run.stats.dense_fallbacks),
                static_cast<unsigned long long>(run.stats.refinement_steps));
  out += buf;
}

std::string run_campaign_incremental_report();

int run_solver_report(const std::string& json_path, bool compare_dense,
                      bool campaign_incremental) {
  const Workload workloads[] = {
      {"dc_sweep", 5, run_dc_sweep_workload},
      {"transient", 3, run_transient_workload},
      {"fault_campaign", 2, run_campaign_workload},
  };

  auto& tuning = lsl::spice::solver_tuning();
  const lsl::spice::SolverTuning saved = tuning;

  std::string json = "{\n";
  bool first = true;
  bool all_speedups_ok = true;
  for (const Workload& w : workloads) {
    tuning = saved;
    tuning.force_dense = false;
    const EngineRun sparse = timed_run(w.reps, w.fn);

    EngineRun dense;
    if (compare_dense) {
      tuning.force_dense = true;
      dense = timed_run(w.reps, w.fn);
      tuning.force_dense = false;
    }

    if (!first) json += ",\n";
    first = false;
    json += "  \"" + std::string(w.name) + "\":{";
    append_run_json(json, "sparse", sparse);
    if (compare_dense) {
      json += ",";
      append_run_json(json, "dense", dense);
      const double speedup = sparse.seconds > 0.0 ? dense.seconds / sparse.seconds : 0.0;
      char buf[64];
      std::snprintf(buf, sizeof(buf), ",\"speedup\":%.2f", speedup);
      json += buf;
      std::printf("%-16s sparse %8.4fs  dense %8.4fs  speedup %5.2fx\n", w.name, sparse.seconds,
                  dense.seconds, speedup);
      if (speedup < 2.0) all_speedups_ok = false;
    } else {
      std::printf("%-16s sparse %8.4fs  (%llu linear solves)\n", w.name, sparse.seconds,
                  static_cast<unsigned long long>(sparse.linear_solves));
    }
    json += "}";
  }
  if (campaign_incremental) {
    json += ",\n";
    json += run_campaign_incremental_report();
  }
  json += "\n}\n";
  tuning = saved;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", json_path.c_str());
  if (compare_dense && !all_speedups_ok) {
    std::fprintf(stderr, "WARNING: a workload fell short of 2x over dense\n");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Incremental-campaign A/B report (--campaign-incremental).

/// One incremental-engine configuration timed over the reduced universe,
/// with the per-mechanism counter deltas that explain the timing.
struct IncrementalRun {
  double seconds = 0.0;
  std::int64_t warm_start_hits = 0;
  std::int64_t warm_start_rejects = 0;
  std::int64_t smw_solves = 0;
  std::int64_t smw_fallbacks = 0;
  std::int64_t collapse_classes = 0;
  std::int64_t collapse_faults_folded = 0;
  std::int64_t stage_skips = 0;
  std::size_t detected = 0;
  std::size_t total = 0;
  std::size_t quarantined = 0;
};

template <typename RunFn>
IncrementalRun timed_campaign_impl(const RunFn& run_fn) {
  auto& m = lsl::util::metrics();
  const auto counter = [&m](const char* name) { return m.counter(name).value(); };
  const std::int64_t wh = counter("campaign.warm_start.hits");
  const std::int64_t wr = counter("campaign.warm_start.rejects");
  const std::int64_t ss = counter("campaign.smw.solves");
  const std::int64_t sf = counter("campaign.smw.fallbacks");
  const std::int64_t cc = counter("campaign.collapse.classes");
  const std::int64_t cf = counter("campaign.collapse.faults_folded");
  const std::int64_t sk = counter("campaign.stage_skips");
  const auto t0 = Clock::now();
  const lsl::dft::CampaignReport report = run_fn();
  IncrementalRun run;
  // The campaign's own fault-loop wall clock, when available: golden
  // reference construction is identical across configs and would only
  // dilute the A/B ratio. Fall back to end-to-end time otherwise.
  run.seconds = report.exec.wall_clock_sec > 0.0
                    ? report.exec.wall_clock_sec
                    : std::chrono::duration<double>(Clock::now() - t0).count();
  run.warm_start_hits = counter("campaign.warm_start.hits") - wh;
  run.warm_start_rejects = counter("campaign.warm_start.rejects") - wr;
  run.smw_solves = counter("campaign.smw.solves") - ss;
  run.smw_fallbacks = counter("campaign.smw.fallbacks") - sf;
  run.collapse_classes = counter("campaign.collapse.classes") - cc;
  run.collapse_faults_folded = counter("campaign.collapse.faults_folded") - cf;
  run.stage_skips = counter("campaign.stage_skips") - sk;
  run.detected = report.total.cum_all.detected;
  run.total = report.total.cum_all.total;
  run.quarantined = report.quarantined;
  return run;
}

IncrementalRun timed_campaign(const lsl::dft::CampaignOptions& opts) {
  static lsl::cells::LinkFrontend golden;
  return timed_campaign_impl([&]() { return lsl::dft::run_campaign(golden, opts); });
}

/// The acceptance workload: the full TABLE-I universe (DC + scan + BIST
/// over the whole link).
IncrementalRun timed_table1(const lsl::dft::CampaignOptions& opts) {
  static lsl::core::TestableLink link;
  return timed_campaign_impl([&]() { return link.run_fault_campaign(opts); });
}

void append_incremental_json(std::string& out, const char* key, const IncrementalRun& run,
                             double all_off_seconds) {
  char buf[640];
  const double speedup = run.seconds > 0.0 ? all_off_seconds / run.seconds : 0.0;
  std::snprintf(
      buf, sizeof(buf),
      "\"%s\":{\"seconds\":%.6f,\"speedup_vs_all_off\":%.2f,"
      "\"warm_start_hits\":%lld,\"warm_start_rejects\":%lld,"
      "\"smw_solves\":%lld,\"smw_fallbacks\":%lld,"
      "\"collapse_classes\":%lld,\"collapse_faults_folded\":%lld,\"stage_skips\":%lld,"
      "\"detected\":%zu,\"total\":%zu,\"quarantined\":%zu}",
      key, run.seconds, speedup, static_cast<long long>(run.warm_start_hits),
      static_cast<long long>(run.warm_start_rejects), static_cast<long long>(run.smw_solves),
      static_cast<long long>(run.smw_fallbacks), static_cast<long long>(run.collapse_classes),
      static_cast<long long>(run.collapse_faults_folded),
      static_cast<long long>(run.stage_skips), run.detected, run.total, run.quarantined);
  out += buf;
}

/// A/B section over the incremental-campaign mechanisms: every
/// mechanism off, the default-on configuration, and each mechanism
/// alone, all over the same reduced serial universe. The verdict
/// partition is config-invariant (tests/dft/test_campaign_incremental);
/// this report captures what that invariance *costs or buys* in time.
std::string run_campaign_incremental_report() {
  const auto base = []() {
    lsl::dft::CampaignOptions opts;
    opts.prefixes = {"tx.", "cp.m_s"};
    opts.with_bist = false;
    opts.with_scan_toggle = false;
    opts.num_threads = 1;
    opts.reuse_golden = false;
    opts.low_rank_injection = false;
    opts.collapse_faults = false;
    opts.adaptive_stage_order = false;
    return opts;
  };

  struct Config {
    const char* name;
    lsl::dft::CampaignOptions opts;
  };
  std::vector<Config> configs;
  configs.push_back({"all_off", base()});
  {
    lsl::dft::CampaignOptions o = base();
    o.reuse_golden = true;
    o.low_rank_injection = true;
    o.collapse_faults = true;
    o.adaptive_stage_order = true;
    configs.push_back({"defaults", o});
  }
  {
    lsl::dft::CampaignOptions o = base();
    o.reuse_golden = true;
    configs.push_back({"reuse_golden_only", o});
  }
  {
    lsl::dft::CampaignOptions o = base();
    o.low_rank_injection = true;
    configs.push_back({"low_rank_only", o});
  }
  {
    lsl::dft::CampaignOptions o = base();
    o.collapse_faults = true;
    configs.push_back({"collapse_only", o});
  }
  {
    lsl::dft::CampaignOptions o = base();
    o.adaptive_stage_order = true;
    configs.push_back({"adaptive_order_only", o});
  }

  timed_campaign(base());  // warm-up: symbolic analyses, OS caches

  // Two round-robin passes, minimum per config: the counter deltas are
  // deterministic across reps, the wall clocks are not.
  std::vector<IncrementalRun> best(configs.size());
  for (int rep = 0; rep < 2; ++rep) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const IncrementalRun run = timed_campaign(configs[i].opts);
      if (rep == 0 || run.seconds < best[i].seconds) best[i] = run;
    }
  }

  std::string json = "  \"campaign_incremental\":{";
  double all_off_seconds = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    const IncrementalRun& run = best[i];
    if (std::string(c.name) == "all_off") all_off_seconds = run.seconds;
    if (!first) json += ",";
    first = false;
    append_incremental_json(json, c.name, run, all_off_seconds);
    std::printf("%-20s %8.4fs  speedup %5.2fx  warm %lld/%lld  smw %lld/%lld  "
                "folded %lld  skips %lld\n",
                c.name, run.seconds,
                run.seconds > 0.0 ? all_off_seconds / run.seconds : 0.0,
                static_cast<long long>(run.warm_start_hits),
                static_cast<long long>(run.warm_start_rejects),
                static_cast<long long>(run.smw_solves),
                static_cast<long long>(run.smw_fallbacks),
                static_cast<long long>(run.collapse_faults_folded),
                static_cast<long long>(run.stage_skips));
  }

  // Acceptance measurement: the full TABLE-I campaign, defaults-on vs
  // all-off at the same (serial) thread count.
  lsl::dft::CampaignOptions t1;
  t1.num_threads = 1;
  t1.budget.per_fault_sec = 60.0;
  lsl::dft::CampaignOptions t1_off = t1;
  t1_off.reuse_golden = false;
  t1_off.low_rank_injection = false;
  t1_off.collapse_faults = false;
  t1_off.adaptive_stage_order = false;
  // Three interleaved A/B pairs, minimum per config: the workload is
  // seconds long, so a single sample is at the mercy of machine noise,
  // and interleaving makes a load spike hit both configs alike.
  IncrementalRun t1_base, t1_def;
  for (int rep = 0; rep < 3; ++rep) {
    const IncrementalRun off_run = timed_table1(t1_off);
    const IncrementalRun def_run = timed_table1(t1);
    if (rep == 0 || off_run.seconds < t1_base.seconds) t1_base = off_run;
    if (rep == 0 || def_run.seconds < t1_def.seconds) t1_def = def_run;
  }
  json += ",";
  append_incremental_json(json, "table1_all_off", t1_base, t1_base.seconds);
  json += ",";
  append_incremental_json(json, "table1_defaults", t1_def, t1_base.seconds);
  std::printf("%-20s %8.4fs  speedup %5.2fx\n", "table1_all_off", t1_base.seconds, 1.0);
  std::printf("%-20s %8.4fs  speedup %5.2fx  warm %lld/%lld  smw %lld/%lld  "
              "folded %lld  skips %lld\n",
              "table1_defaults", t1_def.seconds,
              t1_def.seconds > 0.0 ? t1_base.seconds / t1_def.seconds : 0.0,
              static_cast<long long>(t1_def.warm_start_hits),
              static_cast<long long>(t1_def.warm_start_rejects),
              static_cast<long long>(t1_def.smw_solves),
              static_cast<long long>(t1_def.smw_fallbacks),
              static_cast<long long>(t1_def.collapse_faults_folded),
              static_cast<long long>(t1_def.stage_skips));

  json += "}";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_mode = false;
  bool compare_dense = false;
  bool campaign_incremental = false;
  std::string json_path = "BENCH_solver.json";
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (arg == "--compare-dense") {
      json_mode = true;
      compare_dense = true;
    } else if (arg == "--campaign-incremental") {
      json_mode = true;
      campaign_incremental = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (json_mode) return run_solver_report(json_path, compare_dense, campaign_incremental);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
