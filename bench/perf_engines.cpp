// google-benchmark microbenchmarks of the simulation engines backing the
// reproduction: MNA DC solves of the full analog frontend, transient
// stepping, gate-level scan simulation, and the behavioral acquisition
// loop. These bound the fault-campaign wall-clock.
#include <benchmark/benchmark.h>

#include "cells/link_frontend.hpp"
#include "dft/digital_top.hpp"
#include "spice/transient.hpp"
#include "behav/synchronizer.hpp"
#include "link/link.hpp"

namespace {

void BM_FrontendDcSolve(benchmark::State& state) {
  lsl::cells::LinkFrontend fe;
  fe.set_data(true, true);
  for (auto _ : state) {
    const auto r = fe.solve();
    benchmark::DoNotOptimize(r.converged);
  }
}
BENCHMARK(BM_FrontendDcSolve);

void BM_FrontendDcSolveWarmStart(benchmark::State& state) {
  lsl::cells::LinkFrontend fe;
  fe.set_data(true, true);
  lsl::spice::DcOptions opts;
  const auto first = fe.solve();
  opts.initial_guess = first.x;
  for (auto _ : state) {
    const auto r = fe.solve(opts);
    benchmark::DoNotOptimize(r.converged);
  }
}
BENCHMARK(BM_FrontendDcSolveWarmStart);

void BM_TransientToggle2Cycles(benchmark::State& state) {
  lsl::cells::LinkFrontend fe;
  lsl::spice::TransientOptions opts;
  opts.t_stop = 20e-9;
  opts.dt = 0.2e-9;
  opts.probes = {"line_p_rx"};
  const auto wave = lsl::spice::square_wave(0.0, 1.2, 10e-9);
  for (auto _ : state) {
    const auto r = lsl::spice::run_transient(fe.netlist(), {{fe.src_tap_main_p(), wave}}, opts);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_TransientToggle2Cycles);

void BM_DigitalScanLoadReadChainB(benchmark::State& state) {
  lsl::dft::DigitalTop top = lsl::dft::build_digital_top();
  lsl::dft::ScanChains chains = lsl::dft::stitch_scan_chains(top);
  top.c.power_on();
  const auto pattern = std::vector<lsl::digital::Logic>(18, lsl::digital::Logic::k1);
  for (auto _ : state) {
    chains.b.load_flop_order(top.c, pattern);
    benchmark::DoNotOptimize(chains.b.read_flop_order(top.c));
  }
}
BENCHMARK(BM_DigitalScanLoadReadChainB);

void BM_SynchronizerAcquisition5000Ui(benchmark::State& state) {
  lsl::behav::SyncParams p;
  for (auto _ : state) {
    lsl::behav::Synchronizer sync(p, 180e-12, 0.6, 5);
    lsl::util::Pcg32 rng(1);
    benchmark::DoNotOptimize(sync.run(5000, rng));
  }
}
BENCHMARK(BM_SynchronizerAcquisition5000Ui);

void BM_LinkBist(benchmark::State& state) {
  lsl::link::LinkParams p;
  p.phase0 = 5;
  lsl::link::Link link(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.run_bist(7));
  }
}
BENCHMARK(BM_LinkBist);

}  // namespace
