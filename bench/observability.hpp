// Shared --trace/--metrics flag handling for the bench binaries.
//
//   --trace <file>    capture a Chrome trace_event JSON (Perfetto-loadable)
//                     of the whole run; see docs/OBSERVABILITY.md
//   --metrics <file>  write a util::Metrics snapshot JSON at exit
//
// Either flag also switches on Metrics detailed timing (the extra clock
// reads for stamp-vs-factorization attribution and per-step wall time).
// Usage: call parse_flag() from the argv loop, start() before the
// workload, finish() after it (pools joined).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace lsl::bench {

struct Observability {
  std::string trace_path;
  std::string metrics_path;

  /// Consumes "--trace <file>" / "--metrics <file>" at argv[i]
  /// (advancing i past the value); returns false on any other flag.
  bool parse_flag(int argc, char** argv, int& i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
      return true;
    }
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
      return true;
    }
    return false;
  }

  void start() const {
    if (trace_path.empty() && metrics_path.empty()) return;
    util::Metrics::set_detailed_timing(true);
    if (!trace_path.empty()) {
      util::Tracer::instance().start();
      util::Tracer::set_thread_name("main");
      if (!util::Tracer::instance().enabled()) {
        std::fprintf(stderr, "warning: tracer compiled out (LSL_TRACE=OFF); %s not written\n",
                     trace_path.c_str());
      }
    }
  }

  void finish() const {
    if (!trace_path.empty() && util::Tracer::instance().enabled()) {
      auto& tracer = util::Tracer::instance();
      tracer.stop();
      const std::uint64_t dropped = tracer.dropped();
      if (tracer.write_json(trace_path)) {
        std::fprintf(stderr, "trace written to %s", trace_path.c_str());
        if (dropped > 0) {
          std::fprintf(stderr, " (%llu events dropped — ring full)",
                       static_cast<unsigned long long>(dropped));
        }
        std::fprintf(stderr, "\n");
      } else {
        std::fprintf(stderr, "warning: could not write trace to %s\n", trace_path.c_str());
      }
    }
    if (!metrics_path.empty()) {
      if (util::Metrics::instance().write_json(metrics_path)) {
        std::fprintf(stderr, "metrics snapshot written to %s\n", metrics_path.c_str());
      } else {
        std::fprintf(stderr, "warning: could not write metrics to %s\n", metrics_path.c_str());
      }
    }
  }
};

}  // namespace lsl::bench
